package payload

import "io"

// DefaultChunkSize is the chunk granularity Writer uses when the caller
// does not specify one. 256 KiB keeps chunk-descriptor overhead
// negligible for checkpoint-sized images while avoiding the quadratic
// re-copying a growing contiguous buffer would pay.
const DefaultChunkSize = 256 << 10

// firstChunkSize is where small-write chunk sizing starts (it grows
// geometrically up to the writer's chunkSize). Message-framed encoders
// (gob) open with a handful of tiny descriptor writes before the bulk
// payload arrives as one large write; starting small means those
// openers neither zero nor pin a mostly-empty full-size chunk.
const firstChunkSize = 4 << 10

// Writer accumulates written bytes into chunks and hands them over as a
// Bytes rope without a final exact-size copy. It replaces the
// bytes.Buffer + defensive-copy pattern in checkpoint encoding: encode
// through the Writer, then Take() the image.
//
// Chunk geometry is an implementation detail (ropes are
// chunking-agnostic): small writes coalesce into chunks of roughly
// chunkSize, while any single write of at least chunkSize bytes becomes
// its own exactly-sized chunk, copied once with no spare capacity — and
// therefore no zeroing of memory the copy would overwrite anyway. gob
// emits each message as one Write, so the bulk of a checkpoint image
// takes that path.
//
// The zero value is ready to use (DefaultChunkSize granularity).
type Writer struct {
	done      [][]byte // completed chunks, ownership with the writer
	cur       []byte   // partially filled chunk (len < cap)
	length    int
	chunkSize int
	grown     int // chunks completed since the last Seal/Take, drives geometric sizing
}

var _ io.Writer = (*Writer)(nil)

// NewWriter returns a Writer with the given chunk granularity
// (DefaultChunkSize if chunkSize <= 0).
func NewWriter(chunkSize int) *Writer {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &Writer{chunkSize: chunkSize}
}

// Write appends p to the accumulated content. It never fails.
//
//dvc:hotpath
func (w *Writer) Write(p []byte) (int, error) {
	if w.chunkSize <= 0 {
		w.chunkSize = DefaultChunkSize
	}
	written := len(p)
	w.length += written
	for len(p) > 0 {
		if w.cur == nil {
			// Large-write fast path: the write becomes its own
			// exactly-sized chunk. append over a nil destination
			// allocates capacity == length, which the runtime does not
			// zero first — unlike make-with-spare-capacity, which pays a
			// full memclr for bytes the stream may never write.
			if len(p) >= w.chunkSize {
				//lint:allow noalloc the single sanctioned copy-in: one exactly-sized chunk per large write
				c := append([]byte(nil), p...)
				//lint:allow noalloc done grows one descriptor per chunk, amortized by geometric chunk sizing
				w.done = append(w.done, c[:len(c):len(c)])
				w.grown++
				return written, nil
			}
			// Small-write chunks grow geometrically from firstChunkSize
			// up to chunkSize, so short streams stay cheap without
			// penalising long ones. The counter resets at every
			// Seal/Take so chunk geometry — and therefore chunk content
			// identity — is local to a sealed section.
			size := w.chunkSize
			if n := w.grown; n < 7 {
				if g := firstChunkSize << uint(n); g < size {
					size = g
				}
			}
			//lint:allow noalloc one geometric chunk per fill, not per byte; see the sizing comment above
			w.cur = make([]byte, 0, size)
		}
		room := cap(w.cur) - len(w.cur)
		n := len(p)
		if n > room {
			n = room
		}
		w.cur = append(w.cur, p[:n]...) //lint:allow noalloc n is clamped to spare capacity; this append never grows
		p = p[n:]
		if len(w.cur) == cap(w.cur) {
			//lint:allow noalloc done grows one descriptor per sealed chunk, amortized by geometric chunk sizing
			w.done = append(w.done, w.cur)
			w.cur = nil
			w.grown++
		}
	}
	return written, nil
}

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return w.length }

// Seal closes the partially filled chunk (shrunk to its exact size) and
// restarts geometric sizing, so the next write opens a fresh chunk at
// firstChunkSize. Sealing at a logical section boundary makes each
// section's chunking a pure function of that section's bytes: an
// unchanged section re-encoded later produces byte-identical chunks —
// and therefore identical ChunkIDs — no matter what preceded it in the
// stream. That is the property content-addressed checkpoint dedup
// rests on.
func (w *Writer) Seal() {
	if len(w.cur) > 0 {
		c := w.cur
		if len(c)*2 < cap(c) {
			c = append([]byte(nil), c...)
		}
		w.done = append(w.done, c[:len(c):len(c)])
	}
	w.cur = nil
	w.grown = 0
}

// Take returns the accumulated content as a Bytes rope, transferring
// chunk ownership to the rope (per the package immutability contract the
// chunks must not be mutated afterwards), and resets the Writer for
// reuse.
func (w *Writer) Take() Bytes {
	chunks := w.done
	if len(w.cur) > 0 {
		c := w.cur
		if len(c)*2 < cap(c) {
			// A mostly-empty tail chunk would pin its whole backing
			// array for the life of the rope; shrink it to size.
			c = append([]byte(nil), c...)
		}
		// Clip capacity so a future Flatten of a single-chunk rope
		// cannot expose writable spare capacity.
		chunks = append(chunks, c[:len(c):len(c)])
	}
	out := Bytes{chunks: chunks, length: w.length}
	if len(chunks) == 0 {
		out = Bytes{}
	}
	w.done, w.cur, w.length, w.grown = nil, nil, 0, 0
	return out
}

// Reader streams a Bytes rope as an io.Reader without copying ahead of
// the consumer's reads. It is the decode-side counterpart of Writer:
// gob.NewDecoder(payload.NewReader(img)) decodes a chunked image without
// first flattening it.
type Reader struct {
	b  Bytes
	ci int // current chunk index
	co int // offset within current chunk
}

var _ io.Reader = (*Reader)(nil)

// NewReader returns a Reader over b starting at offset 0.
func NewReader(b Bytes) *Reader { return &Reader{b: b} }

// Read copies up to len(p) bytes into p, returning io.EOF at the end.
func (r *Reader) Read(p []byte) (int, error) {
	if r.ci >= len(r.b.chunks) {
		return 0, io.EOF
	}
	total := 0
	for total < len(p) && r.ci < len(r.b.chunks) {
		c := r.b.chunks[r.ci]
		n := copy(p[total:], c[r.co:])
		total += n
		r.co += n
		if r.co == len(c) {
			r.ci, r.co = r.ci+1, 0
		}
	}
	return total, nil
}
