// Package payload provides the zero-copy byte containers of the data
// plane: an immutable chunked byte rope (Bytes) that the mpi, guest, tcp
// and vm layers share instead of copying payload bytes at every layer
// boundary, plus a chunked Writer for building large images (checkpoint
// encodes) without exact-size defensive copies.
//
// # Immutability contract
//
// A []byte handed to Wrap (directly or via the layers built on it —
// guest.Send, mpi.Send, tcp WritePayload) transfers *visibility*, not a
// copy: the same backing array may simultaneously sit in a sender's TCP
// retransmission queue, on the simulated wire, in the receiver's
// reassembly ring and in the receiving application's hands. This is safe
// under two rules the simulation already enforces:
//
//  1. Chunks are never mutated after entering a Bytes. Producers build a
//     fresh buffer per message (the hpcc kernels all do); consumers treat
//     received data as read-only. Flatten of a single-chunk rope returns
//     the chunk itself with capacity clipped to its length, so an
//     append by the consumer copies instead of growing into shared space.
//  2. All access happens on one kernel's event loop. Simulation state is
//     single-threaded by design (one sim.Kernel per trial, kernels never
//     cross goroutines — the dvclint noconcurrency rule and the
//     internal/fleet sanction), so sharing needs no synchronisation.
//
// See DESIGN.md "Data plane" for how the layers use these types.
package payload

import "fmt"

// Bytes is an immutable rope of byte chunks: cheap to slice, concatenate
// and share, flattened to a contiguous []byte only at true boundaries
// (application delivery of multi-segment reads, checkpoint images).
//
// The zero value is an empty rope. Bytes values are compared with Equal,
// not ==.
type Bytes struct {
	chunks [][]byte // every chunk is non-empty
	length int
}

// Wrap makes a single-chunk rope referencing b without copying. The
// caller gives up the right to mutate b (see the package contract); an
// empty or nil b yields the empty rope.
func Wrap(b []byte) Bytes {
	if len(b) == 0 {
		return Bytes{}
	}
	return Bytes{chunks: [][]byte{b}, length: len(b)}
}

// FromChunks makes a rope referencing the given parts without copying
// (empty parts are skipped). It is the constructor the transport queues
// use to assemble segment views that span chunk boundaries.
func FromChunks(parts ...[]byte) Bytes {
	n := 0
	for _, p := range parts {
		if len(p) > 0 {
			n++
		}
	}
	if n == 0 {
		return Bytes{}
	}
	chunks := make([][]byte, 0, n)
	length := 0
	for _, p := range parts {
		if len(p) > 0 {
			chunks = append(chunks, p)
			length += len(p)
		}
	}
	return Bytes{chunks: chunks, length: length}
}

// Len returns the total byte length.
func (b Bytes) Len() int { return b.length }

// NumChunks reports how many chunks back the rope (0 for the empty rope).
func (b Bytes) NumChunks() int { return len(b.chunks) }

// Chunks returns the backing chunks in order. The returned slices are
// shared: callers must treat both the descriptor slice and the chunk
// contents as read-only.
func (b Bytes) Chunks() [][]byte { return b.chunks[:len(b.chunks):len(b.chunks)] }

// At returns the byte at index i (panics if out of range).
func (b Bytes) At(i int) byte {
	if i < 0 || i >= b.length {
		panic(fmt.Sprintf("payload: index %d out of range [0,%d)", i, b.length))
	}
	for _, c := range b.chunks {
		if i < len(c) {
			return c[i]
		}
		i -= len(c)
	}
	panic("payload: corrupted rope") // unreachable: length matches chunks
}

// Slice returns the sub-rope [i, j) as a view over the same chunks — no
// bytes are copied. It panics on an invalid range, mirroring b[i:j].
func (b Bytes) Slice(i, j int) Bytes {
	if i < 0 || j < i || j > b.length {
		panic(fmt.Sprintf("payload: slice [%d:%d] of %d bytes", i, j, b.length))
	}
	if i == j {
		return Bytes{}
	}
	out := Bytes{length: j - i}
	// Walk to the chunk containing i, then collect until j is covered.
	for ci := 0; ci < len(b.chunks); ci++ {
		c := b.chunks[ci]
		if i >= len(c) {
			i -= len(c)
			j -= len(c)
			continue
		}
		if j <= len(c) {
			out.chunks = [][]byte{c[i:j:j]}
			return out
		}
		parts := make([][]byte, 0, 2)
		parts = append(parts, c[i:len(c):len(c)])
		j -= len(c)
		for ci++; ci < len(b.chunks); ci++ {
			c = b.chunks[ci]
			if j <= len(c) {
				parts = append(parts, c[:j:j])
				out.chunks = parts
				return out
			}
			parts = append(parts, c)
			j -= len(c)
		}
		break
	}
	panic("payload: corrupted rope") // unreachable: length matches chunks
}

// Concat returns the concatenation of b and q, sharing both ropes'
// chunks.
func (b Bytes) Concat(q Bytes) Bytes {
	if b.length == 0 {
		return q
	}
	if q.length == 0 {
		return b
	}
	chunks := make([][]byte, 0, len(b.chunks)+len(q.chunks))
	chunks = append(chunks, b.chunks...)
	chunks = append(chunks, q.chunks...)
	return Bytes{chunks: chunks, length: b.length + q.length}
}

// Flatten returns the rope's content as one contiguous []byte. A
// single-chunk rope returns its chunk directly (capacity clipped, no
// copy); multi-chunk ropes copy once. The result is governed by the
// package immutability contract either way.
func (b Bytes) Flatten() []byte {
	switch len(b.chunks) {
	case 0:
		return []byte{}
	case 1:
		c := b.chunks[0]
		return c[:len(c):len(c)]
	}
	out := make([]byte, b.length)
	off := 0
	for _, c := range b.chunks {
		off += copy(out[off:], c)
	}
	return out
}

// AppendTo appends the rope's content to dst and returns the result,
// copying through chunk boundaries.
func (b Bytes) AppendTo(dst []byte) []byte {
	for _, c := range b.chunks {
		dst = append(dst, c...)
	}
	return dst
}

// CopyTo copies the rope into dst (which must be at least Len() bytes)
// and returns the number of bytes copied.
func (b Bytes) CopyTo(dst []byte) int {
	off := 0
	for _, c := range b.chunks {
		off += copy(dst[off:], c)
	}
	return off
}

// Equal reports whether two ropes hold the same byte content, regardless
// of chunking.
func (b Bytes) Equal(q Bytes) bool {
	if b.length != q.length {
		return false
	}
	bi, bo := 0, 0 // chunk index, offset within chunk
	qi, qo := 0, 0
	for bi < len(b.chunks) {
		bc, qc := b.chunks[bi][bo:], q.chunks[qi][qo:]
		n := len(bc)
		if len(qc) < n {
			n = len(qc)
		}
		for k := 0; k < n; k++ {
			if bc[k] != qc[k] {
				return false
			}
		}
		if bo += n; bo == len(b.chunks[bi]) {
			bi, bo = bi+1, 0
		}
		if qo += n; qo == len(q.chunks[qi]) {
			qi, qo = qi+1, 0
		}
	}
	return true
}

// GobEncode implements gob.GobEncoder: a rope travels as its flattened
// content, so checkpoint images stay self-describing byte strings.
func (b Bytes) GobEncode() ([]byte, error) { return b.Flatten(), nil }

// GobDecode implements gob.GobDecoder, wrapping the decoded content as a
// single chunk. gob allocates a fresh slice per decoded value, so the
// rope takes ownership without copying.
func (b *Bytes) GobDecode(data []byte) error {
	*b = Wrap(data)
	return nil
}

// String renders a short diagnostic form (not the content).
func (b Bytes) String() string {
	return fmt.Sprintf("payload.Bytes{len=%d chunks=%d}", b.length, len(b.chunks))
}
