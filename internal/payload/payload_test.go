package payload

import (
	"bytes"
	"encoding/gob"
	"io"
	"math/rand"
	"testing"
)

// TestBytesModel property-tests the rope against a plain []byte model:
// every sequence of Wrap/FromChunks/Slice/Concat operations must produce
// a rope whose Flatten equals the model's result, with At/Len/Equal/
// CopyTo/AppendTo agreeing along the way.
func TestBytesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type pair struct {
		rope  Bytes
		model []byte
	}
	fill := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return b
	}
	check := func(t *testing.T, p pair) {
		t.Helper()
		if p.rope.Len() != len(p.model) {
			t.Fatalf("Len=%d model=%d", p.rope.Len(), len(p.model))
		}
		if got := p.rope.Flatten(); !bytes.Equal(got, p.model) {
			t.Fatalf("Flatten mismatch: %d vs %d bytes", len(got), len(p.model))
		}
		if !p.rope.Equal(Wrap(append([]byte(nil), p.model...))) {
			t.Fatalf("Equal(model wrap) = false")
		}
		if n := len(p.model); n > 0 {
			for _, i := range []int{0, n / 2, n - 1} {
				if p.rope.At(i) != p.model[i] {
					t.Fatalf("At(%d)=%d model=%d", i, p.rope.At(i), p.model[i])
				}
			}
			dst := make([]byte, n)
			if c := p.rope.CopyTo(dst); c != n || !bytes.Equal(dst, p.model) {
				t.Fatalf("CopyTo copied %d/%d or mismatched", c, n)
			}
		}
		if got := p.rope.AppendTo([]byte{0xEE}); !bytes.Equal(got, append([]byte{0xEE}, p.model...)) {
			t.Fatalf("AppendTo mismatch")
		}
	}

	pool := []pair{{Bytes{}, nil}}
	for step := 0; step < 2000; step++ {
		var next pair
		switch rng.Intn(4) {
		case 0: // fresh Wrap
			b := fill(rng.Intn(64))
			next = pair{Wrap(b), b}
		case 1: // fresh FromChunks with some empty parts
			nparts := rng.Intn(5)
			parts := make([][]byte, nparts)
			var model []byte
			for i := range parts {
				parts[i] = fill(rng.Intn(16))
				model = append(model, parts[i]...)
			}
			next = pair{FromChunks(parts...), model}
		case 2: // Slice of a random pool member
			p := pool[rng.Intn(len(pool))]
			i := rng.Intn(len(p.model) + 1)
			j := i + rng.Intn(len(p.model)-i+1)
			next = pair{p.rope.Slice(i, j), append([]byte(nil), p.model[i:j]...)}
		case 3: // Concat of two pool members
			a, b := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
			next = pair{a.rope.Concat(b.rope), append(append([]byte(nil), a.model...), b.model...)}
		}
		check(t, next)
		pool = append(pool, next)
		if len(pool) > 64 {
			pool = pool[len(pool)-64:]
		}
	}
}

// TestEqualChunkingAgnostic pins that Equal compares content, not
// chunk layout.
func TestEqualChunkingAgnostic(t *testing.T) {
	content := []byte("the quick brown fox jumps over the lazy dog")
	a := Wrap(content)
	b := FromChunks(content[:7], content[7:7], content[7:19], content[19:])
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatalf("differently chunked equal content compared unequal")
	}
	c := b.Slice(0, b.Len()-1).Concat(Wrap([]byte("G")))
	if a.Equal(c) || c.Equal(a) {
		t.Fatalf("different content compared equal")
	}
	if !(Bytes{}).Equal(Wrap(nil)) {
		t.Fatalf("empty ropes unequal")
	}
}

// TestSliceZeroCopy verifies slicing and single-chunk flattening share
// the original backing array rather than copying.
func TestSliceZeroCopy(t *testing.T) {
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = byte(i)
	}
	r := Wrap(buf)
	s := r.Slice(10, 20)
	if s.NumChunks() != 1 {
		t.Fatalf("NumChunks=%d, want 1", s.NumChunks())
	}
	f := s.Flatten()
	if &f[0] != &buf[10] {
		t.Fatalf("single-chunk Flatten copied")
	}
	if cap(f) != len(f) {
		t.Fatalf("Flatten leaked spare capacity: cap=%d len=%d", cap(f), len(f))
	}
}

// TestSlicePanics pins the panic behaviour mirroring b[i:j].
func TestSlicePanics(t *testing.T) {
	r := Wrap([]byte{1, 2, 3})
	for _, tc := range [][2]int{{-1, 2}, {2, 1}, {0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Slice(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			r.Slice(tc[0], tc[1])
		}()
	}
}

// TestWriterChunking drives the Writer with writes that straddle chunk
// boundaries and verifies Take() returns the exact content (chunk
// geometry is an implementation detail, but it must stay bounded), and
// that the Writer resets for reuse.
func TestWriterChunking(t *testing.T) {
	w := NewWriter(8)
	var model []byte
	rng := rand.New(rand.NewSource(7))
	writes := 0
	for i := 0; i < 50; i++ {
		p := make([]byte, rng.Intn(13))
		for j := range p {
			p[j] = byte(rng.Intn(256))
		}
		n, err := w.Write(p)
		if n != len(p) || err != nil {
			t.Fatalf("Write=%d,%v want %d,nil", n, err, len(p))
		}
		model = append(model, p...)
		writes++
		if w.Len() != len(model) {
			t.Fatalf("Len=%d model=%d", w.Len(), len(model))
		}
	}
	got := w.Take()
	if !bytes.Equal(got.Flatten(), model) {
		t.Fatalf("Take content mismatch")
	}
	// Small writes coalesce, large writes split: never more chunks than
	// writes plus the per-chunk ceiling.
	if max := writes + (len(model)+7)/8; got.NumChunks() > max {
		t.Fatalf("NumChunks=%d exceeds bound %d", got.NumChunks(), max)
	}
	if w.Len() != 0 || w.Take().Len() != 0 {
		t.Fatalf("Writer did not reset after Take")
	}
	// Zero value works.
	var zw Writer
	zw.Write([]byte("ok"))
	if zw.Take().Len() != 2 {
		t.Fatalf("zero-value Writer broken")
	}
}

// TestWriterLargeWriteFastPath verifies that a write of at least one
// chunk becomes its own exactly-sized chunk (no spare capacity for the
// rope to pin), and that content round-trips across mixed small/large
// writes.
func TestWriterLargeWriteFastPath(t *testing.T) {
	w := NewWriter(16)
	var model []byte
	small := []byte("abc")
	big := bytes.Repeat([]byte("x"), 100)
	for _, p := range [][]byte{small, big, small, big, big} {
		w.Write(p)
		model = append(model, p...)
	}
	got := w.Take()
	if !bytes.Equal(got.Flatten(), model) {
		t.Fatal("content mismatch")
	}
	for _, c := range got.Chunks() {
		if cap(c) != len(c) {
			t.Fatalf("chunk with spare capacity: len=%d cap=%d", len(c), cap(c))
		}
	}
}

// TestWriterTakeShrinksSparseTail verifies a mostly-empty tail chunk is
// copied down to size instead of pinning its backing array.
func TestWriterTakeShrinksSparseTail(t *testing.T) {
	w := NewWriter(DefaultChunkSize)
	w.Write([]byte("tiny"))
	got := w.Take()
	if got.NumChunks() != 1 {
		t.Fatalf("NumChunks=%d", got.NumChunks())
	}
	if c := got.Chunks()[0]; cap(c) > 2*len(c) {
		t.Fatalf("tail chunk pins cap=%d for len=%d", cap(c), len(c))
	}
}

// TestReaderStreams verifies Reader yields the full content through
// io.ReadAll and through small odd-sized reads.
func TestReaderStreams(t *testing.T) {
	content := []byte("0123456789abcdefghij")
	r := FromChunks(content[:3], content[3:11], content[11:])
	all, err := io.ReadAll(NewReader(r))
	if err != nil || !bytes.Equal(all, content) {
		t.Fatalf("ReadAll = %q, %v", all, err)
	}
	rd := NewReader(r)
	var got []byte
	buf := make([]byte, 7)
	for {
		n, err := rd.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("chunked reads = %q", got)
	}
}

// TestGobRoundTrip pins that a rope travels through gob as its content
// and decodes without copying (single chunk, fresh backing).
func TestGobRoundTrip(t *testing.T) {
	type env struct {
		Name string
		Body Bytes
	}
	in := env{"x", FromChunks([]byte("hello, "), []byte("world"))}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out env
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Body.Equal(in.Body) || out.Body.NumChunks() != 1 {
		t.Fatalf("round trip: %v chunks=%d", out.Body, out.Body.NumChunks())
	}
}
