package payload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// ChunkID is the stable content identity of one rope chunk: the SHA-256
// of its bytes (ChunkIDOf) or of a synthetic preimage (DeriveChunkID).
// Two chunks with equal content — across epochs, across VMs, across
// stores — share one ChunkID, which is what makes the storage layer's
// dedup a pure function of content rather than of write order.
//
// ChunkIDs are comparable with == and sort with bytes.Compare over
// id[:]; deterministic iteration over a map keyed by ChunkID must sort
// the keys first (the usual mapiter rule).
type ChunkID [32]byte

// ChunkIDOf returns the content identity of one chunk.
//
//dvc:hotpath
func ChunkIDOf(chunk []byte) ChunkID { return sha256.Sum256(chunk) }

// DeriveChunkID returns a synthetic chunk identity from a fixed-width
// preimage: a domain-separation tag byte followed by three little-endian
// uint64s. The modelled dirty-page machinery uses it to name page-range
// chunks it never materialises (tag 'P' with the page lineage, index and
// version; tag 'T'/'Z' for template and zero ranges), keeping identity
// assignment allocation-free and independent of encoding byte layout.
//
//dvc:hotpath
func DeriveChunkID(tag byte, a, b, c uint64) ChunkID {
	var pre [25]byte
	pre[0] = tag
	binary.LittleEndian.PutUint64(pre[1:9], a)
	binary.LittleEndian.PutUint64(pre[9:17], b)
	binary.LittleEndian.PutUint64(pre[17:25], c)
	return sha256.Sum256(pre[:])
}

// ChunkRef names one chunk of a manifest: its content identity plus its
// size. Sizes ride along so accounting (logical bytes, transfer bytes)
// never needs to resolve an ID against a store.
type ChunkRef struct {
	ID    ChunkID
	Bytes int64
}

// String renders a short hex prefix for diagnostics.
func (id ChunkID) String() string { return hex.EncodeToString(id[:6]) }

// AppendChunkIDs appends the content identity of every chunk backing b
// to dst and returns the result. Chunk geometry is observable here by
// design: callers that need stable identities across encodes must seal
// their section boundaries (Writer.Seal) so equal sections yield equal
// chunkings.
func (b Bytes) AppendChunkIDs(dst []ChunkID) []ChunkID {
	for _, c := range b.chunks {
		dst = append(dst, ChunkIDOf(c))
	}
	return dst
}
