package payload

import (
	"bytes"
	"testing"
)

// TestChunkIDContentAddressed pins the identity contract: equal content
// means equal ID regardless of which buffer holds it, and any content
// change moves the ID.
func TestChunkIDContentAddressed(t *testing.T) {
	a := []byte("the quick brown fox")
	b := append([]byte(nil), a...)
	if ChunkIDOf(a) != ChunkIDOf(b) {
		t.Fatalf("equal content produced different ChunkIDs")
	}
	b[0] ^= 1
	if ChunkIDOf(a) == ChunkIDOf(b) {
		t.Fatalf("different content produced equal ChunkIDs")
	}
	if ChunkIDOf(nil) != ChunkIDOf([]byte{}) {
		t.Fatalf("nil and empty chunk disagree")
	}
}

// TestDeriveChunkID pins domain separation: every component of the
// preimage (tag and all three words) feeds the identity, and the
// function is a pure function of its arguments.
func TestDeriveChunkID(t *testing.T) {
	base := DeriveChunkID('P', 1, 2, 3)
	if base != DeriveChunkID('P', 1, 2, 3) {
		t.Fatalf("DeriveChunkID not deterministic")
	}
	for _, alt := range []ChunkID{
		DeriveChunkID('T', 1, 2, 3),
		DeriveChunkID('P', 9, 2, 3),
		DeriveChunkID('P', 1, 9, 3),
		DeriveChunkID('P', 1, 2, 9),
	} {
		if alt == base {
			t.Fatalf("preimage component did not change the ChunkID")
		}
	}
	// Synthetic identities must not collide with the content hash of
	// their own preimage-sized buffers by construction accident.
	if DeriveChunkID('P', 0, 0, 0) == ChunkIDOf(make([]byte, 25)) {
		t.Fatalf("tagged preimage collided with zero buffer hash")
	}
}

// TestAppendChunkIDs checks that rope chunk identities line up with the
// underlying chunk geometry and append to an existing slice.
func TestAppendChunkIDs(t *testing.T) {
	c1, c2 := []byte("alpha"), []byte("beta")
	b := FromChunks(c1, c2)
	ids := b.AppendChunkIDs([]ChunkID{DeriveChunkID('X', 0, 0, 0)})
	if len(ids) != 3 {
		t.Fatalf("got %d ids, want 3", len(ids))
	}
	if ids[1] != ChunkIDOf(c1) || ids[2] != ChunkIDOf(c2) {
		t.Fatalf("chunk ids do not match chunk content")
	}
	if Bytes.AppendChunkIDs(Bytes{}, nil) != nil {
		t.Fatalf("empty rope appended ids")
	}
}

// TestWriterSealSectionLocalChunking is the determinism property the
// delta pipeline needs: a section's chunking depends only on that
// section's bytes. Writing A then Seal then B must give B the same
// chunks (same content, same boundaries) as writing B alone — even
// though A consumed part of the geometric size ramp.
func TestWriterSealSectionLocalChunking(t *testing.T) {
	section := func(seed byte, n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = seed + byte(i*7)
		}
		return out
	}
	a, b := section(1, 10_000), section(2, 30_000)

	var solo Writer
	solo.Write(b)
	solo.Seal()
	want := solo.Take().Chunks()

	var w Writer
	w.Write(a)
	w.Seal()
	w.Write(b)
	w.Seal()
	all := w.Take()
	// Skip past section A's chunks, then compare B's chunk geometry.
	var aLen int
	got := all.Chunks()
	for len(got) > 0 && aLen < len(a) {
		aLen += len(got[0])
		got = got[1:]
	}
	if aLen != len(a) {
		t.Fatalf("Seal did not close section A on a chunk boundary (covered %d of %d bytes)", aLen, len(a))
	}
	if len(got) != len(want) {
		t.Fatalf("section B chunk count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("section B chunk %d differs from solo encode", i)
		}
		if ChunkIDOf(got[i]) != ChunkIDOf(want[i]) {
			t.Fatalf("section B chunk %d id differs from solo encode", i)
		}
	}
}

// TestWriterSealEmptyAndContent checks Seal's edge cases: sealing with
// no pending bytes is a no-op on content, and sealed content round-trips
// byte-identically.
func TestWriterSealEmptyAndContent(t *testing.T) {
	var w Writer
	w.Seal()
	w.Write([]byte("abc"))
	w.Seal()
	w.Seal()
	w.Write([]byte("def"))
	w.Seal()
	got := w.Take()
	if string(got.Flatten()) != "abcdef" {
		t.Fatalf("sealed content = %q", got.Flatten())
	}
	if got.NumChunks() != 2 {
		t.Fatalf("got %d chunks, want one per sealed section", got.NumChunks())
	}
	if w.Len() != 0 {
		t.Fatalf("Take did not reset the writer")
	}
}
