package obs

import (
	"encoding/json"
	"sort"

	"dvc/internal/metrics"
)

// Registry is a counter/gauge/histogram registry with stable sorted
// output. Like the Tracer it is single-threaded and deterministic: the
// snapshot order is the sorted metric name, never map order.
type Registry struct {
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*metrics.Sample
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*metrics.Sample),
	}
}

// Inc adds delta to a counter (creating it at zero).
func (r *Registry) Inc(name string, delta float64) {
	if r == nil {
		return
	}
	r.counters[name] += delta
}

// Set stores a gauge value.
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.gauges[name] = v
}

// Observe appends an observation to a histogram.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	s := r.hists[name]
	if s == nil {
		s = &metrics.Sample{}
		r.hists[name] = s
	}
	s.Add(v)
}

// Counter reads a counter's current value (0 when absent).
func (r *Registry) Counter(name string) float64 {
	if r == nil {
		return 0
	}
	return r.counters[name]
}

// GaugeValue reads a gauge's current value (0 when absent).
func (r *Registry) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	return r.gauges[name]
}

// Histogram returns the named histogram's sample (nil when absent).
func (r *Registry) Histogram(name string) *metrics.Sample {
	if r == nil {
		return nil
	}
	return r.hists[name]
}

// merge folds another registry into this one, reproducing what a serial
// run would have accumulated: counters add, gauges overwrite (the merged
// registry is "later"), histogram observations append in their recorded
// order. Iteration is over sorted keys — the values are order-independent,
// but the determinism lint (mapiter) applies here like everywhere else.
func (r *Registry) merge(c *Registry) {
	if r == nil || c == nil {
		return
	}
	for _, name := range sortedKeys(c.counters) {
		r.counters[name] += c.counters[name]
	}
	for _, name := range sortedKeys(c.gauges) {
		r.gauges[name] = c.gauges[name]
	}
	for _, name := range sortedKeys(c.hists) {
		s := r.hists[name]
		if s == nil {
			s = &metrics.Sample{}
			r.hists[name] = s
		}
		s.Merge(c.hists[name])
	}
}

// Point is one metric in a registry snapshot. Histograms carry the
// span-summary statistics (count/mean/percentiles) the LSC epoch
// analysis uses; counters and gauges carry Value.
type Point struct {
	Kind  string  `json:"kind"` // "counter" | "gauge" | "histogram"
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot returns every metric sorted by (name, kind) — stable across
// runs by construction.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	pts := make([]Point, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, name := range sortedKeys(r.counters) {
		pts = append(pts, Point{Kind: "counter", Name: name, Value: r.counters[name]})
	}
	for _, name := range sortedKeys(r.gauges) {
		pts = append(pts, Point{Kind: "gauge", Name: name, Value: r.gauges[name]})
	}
	for _, name := range sortedKeys(r.hists) {
		s := r.hists[name]
		pts = append(pts, Point{
			Kind: "histogram", Name: name,
			Count: s.N(), Mean: s.Mean(), P50: s.Percentile(50), P99: s.Percentile(99), Max: s.Max(),
		})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Name != pts[j].Name {
			return pts[i].Name < pts[j].Name
		}
		return pts[i].Kind < pts[j].Kind
	})
	return pts
}

// Table renders the snapshot as a metrics table, for merging into the
// experiment harness output.
func (r *Registry) Table() *metrics.Table {
	tbl := metrics.NewTable("observability registry", "kind", "name", "value", "count", "mean", "p50", "p99", "max")
	for _, p := range r.Snapshot() {
		if p.Kind == "histogram" {
			tbl.Row(p.Kind, p.Name, "-", p.Count, p.Mean, p.P50, p.P99, p.Max)
		} else {
			tbl.Row(p.Kind, p.Name, p.Value, "-", "-", "-", "-", "-")
		}
	}
	return tbl
}

// MarshalJSON renders the snapshot as a sorted JSON array.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// sortedKeys returns a map's keys in sorted order (the collect-and-sort
// idiom from the determinism invariants).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
