package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Perfetto / Chrome trace_events export.
//
// Mapping: one trace "process" per physical node and one "thread" per
// VM/domain, so the per-VM pause/save/restore events of one coordinated
// checkpoint line up vertically and the save skew is visually
// inspectable in ui.perfetto.dev. Records with an empty node land in a
// synthetic "site" process (LSC coordinator spans, RM activity, fabric
// drops); records with an empty domain land on the node's host thread.
//
// Determinism: pid/tid assignment is by sorted name, events are emitted
// sorted by (ts, seq), and encoding/json's formatting is a pure function
// of the values — identical runs export identical bytes.

// pfEvent is one Chrome trace_events entry. Field order is fixed.
type pfEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"` // microseconds of virtual time
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"`    // instant scope
	Args any     `json:"args,omitempty"` // kvList or {"value": v}
}

// pfCounterArgs is the numeric payload of a counter-track sample.
type pfCounterArgs struct {
	Value float64 `json:"value"`
}

type pfDoc struct {
	TraceEvents     []pfEvent `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
}

// WritePerfetto writes the trace as Chrome/Perfetto trace_events JSON,
// loadable in ui.perfetto.dev or chrome://tracing. Like WriteJSONL this
// needs the full record stream, so only a memory-backed tracer can
// export; streaming runs convert their JSONL offline with
// dvctrace -convert (ConvertJSONL), which produces the same bytes.
func (t *Tracer) WritePerfetto(w io.Writer) error {
	if t == nil {
		return nil
	}
	if t.mem == nil {
		return fmt.Errorf("obs: tracer is not memory-backed; convert the streamed JSONL with dvctrace -convert")
	}
	return WritePerfettoRecords(w, t.mem.recs)
}

// WritePerfettoRecords writes a record slice as trace_events JSON — the
// same bytes Tracer.WritePerfetto produces for the same records.
func WritePerfettoRecords(w io.Writer, recs []Record) error {
	doc := pfDoc{TraceEvents: perfettoEvents(recs), DisplayTimeUnit: "ms"}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}

// ConvertJSONL converts a JSONL trace to trace_events JSON offline. The
// pid/tid metadata needs the full node/domain universe and the event
// stream is (ts, seq)-sorted, so conversion reads the whole trace; the
// output is byte-identical to the in-process exporter's for the same
// records (the golden-file test pins this).
func ConvertJSONL(r io.Reader, w io.Writer) error {
	recs, err := ReadJSONL(r)
	if err != nil {
		return err
	}
	return WritePerfettoRecords(w, recs)
}

// perfettoEvents builds the metadata + event stream.
func perfettoEvents(recs []Record) []pfEvent {
	// Assign pids: sorted node names, with "" (site) first.
	nodeSet := map[string]bool{}
	threadSet := map[string]map[string]bool{} // node -> dom set
	for i := range recs {
		r := &recs[i]
		nodeSet[r.Node] = true
		if threadSet[r.Node] == nil {
			threadSet[r.Node] = map[string]bool{}
		}
		threadSet[r.Node][r.Dom] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes) // "" sorts first: the site process gets pid 1

	pid := map[string]int{}
	tid := map[string]map[string]int{}
	var meta []pfEvent
	for i, n := range nodes {
		pid[n] = i + 1
		pname := "node " + n
		if n == "" {
			pname = "site"
		}
		meta = append(meta, pfEvent{Name: "process_name", Ph: "M", Pid: pid[n], Tid: 0,
			Args: kvList{{"name", pname}}})

		doms := make([]string, 0, len(threadSet[n]))
		for d := range threadSet[n] {
			doms = append(doms, d)
		}
		sort.Strings(doms) // "" sorts first: the host thread gets tid 1
		tid[n] = map[string]int{}
		for j, d := range doms {
			tid[n][d] = j + 1
			tname := d
			if d == "" {
				tname = "(host)"
			}
			meta = append(meta, pfEvent{Name: "thread_name", Ph: "M", Pid: pid[n], Tid: tid[n][d],
				Args: kvList{{"name", tname}}})
		}
	}

	// Event stream sorted by (ts, seq). Emission order is already time-
	// ordered within one kernel, but a multi-trial trace restarts virtual
	// time per trial; the stable sort keeps the file's ts monotonic.
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := &recs[order[a]], &recs[order[b]]
		if ra.TS != rb.TS {
			return ra.TS < rb.TS
		}
		return ra.Seq < rb.Seq
	})

	events := meta
	for _, i := range order {
		r := &recs[i]
		name := r.Name
		if name == "" {
			name = string(r.Type)
		}
		ev := pfEvent{
			Name: name,
			Cat:  categoryOf(r.Type),
			Ph:   string(rune(r.Ph)),
			TS:   float64(r.TS) / 1e3,
			Pid:  pid[r.Node],
			Tid:  tid[r.Node][r.Dom],
		}
		switch r.Ph {
		case PhaseInstant:
			ev.S = "t" // thread-scoped instant
			if len(r.Attrs) > 0 {
				ev.Args = kvList(r.Attrs)
			}
		case PhaseBegin, PhaseEnd:
			if len(r.Attrs) > 0 {
				ev.Args = kvList(r.Attrs)
			}
		case PhaseCounter:
			ev.Args = pfCounterArgs{Value: r.Value}
		}
		events = append(events, ev)
	}
	return events
}

// categoryOf maps an event type to its subsystem prefix ("vm", "lsc",
// "tcp", ...), used as the Perfetto category.
func categoryOf(t EventType) string {
	s := string(t)
	if i := strings.IndexByte(s, '.'); i > 0 {
		return s[:i]
	}
	return s
}
