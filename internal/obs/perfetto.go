package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strings"
)

// Perfetto / Chrome trace_events export.
//
// Mapping: one trace "process" per physical node and one "thread" per
// VM/domain, so the per-VM pause/save/restore events of one coordinated
// checkpoint line up vertically and the save skew is visually
// inspectable in ui.perfetto.dev. Records with an empty node land in a
// synthetic "site" process (LSC coordinator spans, RM activity, fabric
// drops); records with an empty domain land on the node's host thread.
//
// Determinism: pid/tid assignment is by sorted name, events are emitted
// sorted by (ts, seq), and encoding/json's formatting is a pure function
// of the values — identical runs export identical bytes.

// pfEvent is one Chrome trace_events entry. Field order is fixed.
type pfEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"` // microseconds of virtual time
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"`    // instant scope
	Args any     `json:"args,omitempty"` // kvList or {"value": v}
}

// pfCounterArgs is the numeric payload of a counter-track sample.
type pfCounterArgs struct {
	Value float64 `json:"value"`
}

type pfDoc struct {
	TraceEvents     []pfEvent `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
}

// WritePerfetto writes the trace as Chrome/Perfetto trace_events JSON,
// loadable in ui.perfetto.dev or chrome://tracing.
func (t *Tracer) WritePerfetto(w io.Writer) error {
	if t == nil {
		return nil
	}
	doc := pfDoc{TraceEvents: t.perfettoEvents(), DisplayTimeUnit: "ms"}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}

// perfettoEvents builds the metadata + event stream.
func (t *Tracer) perfettoEvents() []pfEvent {
	// Assign pids: sorted node names, with "" (site) first.
	nodeSet := map[string]bool{}
	threadSet := map[string]map[string]bool{} // node -> dom set
	for i := range t.recs {
		r := &t.recs[i]
		nodeSet[r.Node] = true
		if threadSet[r.Node] == nil {
			threadSet[r.Node] = map[string]bool{}
		}
		threadSet[r.Node][r.Dom] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes) // "" sorts first: the site process gets pid 1

	pid := map[string]int{}
	tid := map[string]map[string]int{}
	var meta []pfEvent
	for i, n := range nodes {
		pid[n] = i + 1
		pname := "node " + n
		if n == "" {
			pname = "site"
		}
		meta = append(meta, pfEvent{Name: "process_name", Ph: "M", Pid: pid[n], Tid: 0,
			Args: kvList{{"name", pname}}})

		doms := make([]string, 0, len(threadSet[n]))
		for d := range threadSet[n] {
			doms = append(doms, d)
		}
		sort.Strings(doms) // "" sorts first: the host thread gets tid 1
		tid[n] = map[string]int{}
		for j, d := range doms {
			tid[n][d] = j + 1
			tname := d
			if d == "" {
				tname = "(host)"
			}
			meta = append(meta, pfEvent{Name: "thread_name", Ph: "M", Pid: pid[n], Tid: tid[n][d],
				Args: kvList{{"name", tname}}})
		}
	}

	// Event stream sorted by (ts, seq). Emission order is already time-
	// ordered within one kernel, but a multi-trial trace restarts virtual
	// time per trial; the stable sort keeps the file's ts monotonic.
	order := make([]int, len(t.recs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := &t.recs[order[a]], &t.recs[order[b]]
		if ra.TS != rb.TS {
			return ra.TS < rb.TS
		}
		return ra.Seq < rb.Seq
	})

	events := meta
	for _, i := range order {
		r := &t.recs[i]
		name := r.Name
		if name == "" {
			name = string(r.Type)
		}
		ev := pfEvent{
			Name: name,
			Cat:  categoryOf(r.Type),
			Ph:   string(rune(r.Ph)),
			TS:   float64(r.TS) / 1e3,
			Pid:  pid[r.Node],
			Tid:  tid[r.Node][r.Dom],
		}
		switch r.Ph {
		case PhaseInstant:
			ev.S = "t" // thread-scoped instant
			if len(r.Attrs) > 0 {
				ev.Args = kvList(r.Attrs)
			}
		case PhaseBegin, PhaseEnd:
			if len(r.Attrs) > 0 {
				ev.Args = kvList(r.Attrs)
			}
		case PhaseCounter:
			ev.Args = pfCounterArgs{Value: r.Value}
		}
		events = append(events, ev)
	}
	return events
}

// categoryOf maps an event type to its subsystem prefix ("vm", "lsc",
// "tcp", ...), used as the Perfetto category.
func categoryOf(t EventType) string {
	s := string(t)
	if i := strings.IndexByte(s, '.'); i > 0 {
		return s[:i]
	}
	return s
}
