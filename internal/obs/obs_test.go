package obs

import (
	"bytes"
	"strings"
	"testing"

	"dvc/internal/sim"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(1, EvVMPause, "n0", "d0", "pause")
	id := tr.Begin(2, EvLSCEpoch, "", "t", "epoch")
	if id != 0 {
		t.Fatalf("nil Begin returned %d, want 0", id)
	}
	tr.End(3, id)
	tr.Counter(4, EvSimProbe, "", "", "x", 1)
	tr.Inc("c", 1)
	tr.Gauge("g", 1)
	tr.Observe("h", 1)
	if tr.Len() != 0 || tr.Records() != nil || tr.Registry() != nil {
		t.Fatal("nil tracer recorded something")
	}
	var p *KernelProbe
	p.Stop() // must not panic
}

func TestSpanPairing(t *testing.T) {
	tr := NewTracer()
	tr.Emit(10, EvVMBoot, "n0", "d0", "boot", Str("os", "native"))
	outer := tr.Begin(20, EvLSCEpoch, "", "vc", "epoch", Int("gen", 0))
	inner := tr.Begin(30, EvLSCStore, "", "vc", "store")
	tr.End(40, inner, Uint("bytes", 1024))
	tr.End(50, outer)

	recs := tr.Records()
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	b, e := recs[1], recs[4]
	if b.Ph != PhaseBegin || e.Ph != PhaseEnd {
		t.Fatalf("outer phases %c/%c", b.Ph, e.Ph)
	}
	if e.Span != b.Seq || e.Type != b.Type || e.Node != b.Node || e.Dom != b.Dom || e.Name != b.Name {
		t.Fatalf("end record does not mirror begin: %+v vs %+v", e, b)
	}
	ib, ie := recs[2], recs[3]
	if ie.Span != ib.Seq {
		t.Fatalf("inner span mismatch: end.Span=%d begin.Seq=%d", ie.Span, ib.Seq)
	}
	if len(ie.Attrs) != 1 || ie.Attrs[0].K != "bytes" || ie.Attrs[0].V != "1024" {
		t.Fatalf("end attrs = %+v", ie.Attrs)
	}
}

func TestEndGuards(t *testing.T) {
	tr := NewTracer()
	tr.End(5, 0)  // zero id
	tr.End(5, 99) // out of range
	tr.Emit(1, EvVMBoot, "n", "d", "boot")
	tr.End(5, SpanID(1)) // record 0 is not a Begin
	if tr.Len() != 1 {
		t.Fatalf("guarded End emitted records: len=%d", tr.Len())
	}
}

func TestAttrHelpers(t *testing.T) {
	cases := []struct {
		kv   KV
		k, v string
	}{
		{Str("a", "b"), "a", "b"},
		{Int("i", -7), "i", "-7"},
		{Uint("u", 7), "u", "7"},
		{Float("f", 0.5), "f", "0.5"},
		{Dur("d", sim.Time(1500)), "d", "1500"},
	}
	for _, c := range cases {
		if c.kv.K != c.k || c.kv.V != c.v {
			t.Errorf("got %q=%q, want %q=%q", c.kv.K, c.kv.V, c.k, c.v)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.Emit(100, EvTCPRetransmit, "n1", "d2", "rexmit", Str("conn", "c0"), Int("try", 2))
	id := tr.Begin(200, EvLSCEpoch, "", "t", "epoch")
	tr.Counter(250, EvSimProbe, "", "", "sim.queue_depth", 3.5)
	tr.End(300, id, Str("outcome", "commit"))

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Records()
	if len(got) != len(want) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Seq != w.Seq || g.TS != w.TS || g.Ph != w.Ph || g.Type != w.Type ||
			g.Node != w.Node || g.Dom != w.Dom || g.Name != w.Name || g.Span != w.Span || g.Value != w.Value {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, g, w)
		}
		if len(g.Attrs) != len(w.Attrs) {
			t.Fatalf("record %d attrs length %d, want %d", i, len(g.Attrs), len(w.Attrs))
		}
		for j := range w.Attrs {
			if g.Attrs[j] != w.Attrs[j] {
				t.Fatalf("record %d attr %d = %+v, want %+v", i, j, g.Attrs[j], w.Attrs[j])
			}
		}
	}
}

func TestJSONLByteStability(t *testing.T) {
	build := func() []byte {
		tr := NewTracer()
		tr.Emit(1, EvVMPause, "n0", "dom-a", "pause", Str("why", "lsc"))
		id := tr.Begin(2, EvLSCEpoch, "", "t", "epoch", Int("gen", 3))
		tr.End(9, id)
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical traces serialized differently:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(string(a), `"attrs":{"why":"lsc"}`) {
		t.Fatalf("attrs not serialized in order: %s", a)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Inc("z.count", 2)
	r.Inc("a.count", 1)
	r.Set("m.gauge", 4)
	r.Observe("h.lat", 10)
	r.Observe("h.lat", 20)
	r.Observe("h.lat", 30)

	pts := r.Snapshot()
	if len(pts) != 4 {
		t.Fatalf("snapshot has %d points, want 4", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Name > pts[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", pts[i-1].Name, pts[i].Name)
		}
	}
	if pts[0].Name != "a.count" || pts[0].Value != 1 {
		t.Fatalf("pts[0] = %+v", pts[0])
	}
	var h Point
	for _, p := range pts {
		if p.Kind == "histogram" {
			h = p
		}
	}
	if h.Name != "h.lat" || h.Count != 3 || h.Mean != 20 || h.Max != 30 {
		t.Fatalf("histogram point = %+v", h)
	}
	if r.Counter("z.count") != 2 || r.GaugeValue("m.gauge") != 4 || r.Histogram("h.lat") == nil {
		t.Fatal("registry readbacks wrong")
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Inc("c", 1)
	r.Set("g", 1)
	r.Observe("h", 1)
	if r.Counter("c") != 0 || r.GaugeValue("g") != 0 || r.Histogram("h") != nil || r.Snapshot() != nil {
		t.Fatal("nil registry not inert")
	}
}

func TestKernelProbeDeterministic(t *testing.T) {
	run := func() []byte {
		k := sim.NewKernel(1)
		tr := NewTracer()
		p := StartKernelProbe(k, tr, 100)
		for i := 0; i < 5; i++ {
			k.At(sim.Time(i*150), func() {})
		}
		k.RunUntil(500)
		p.Stop()
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("probe trace not deterministic:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(string(a), "sim.queue_depth") {
		t.Fatalf("probe emitted no queue-depth samples: %s", a)
	}
}

func TestKernelProbeDisabled(t *testing.T) {
	k := sim.NewKernel(1)
	if p := StartKernelProbe(k, nil, 100); p != nil {
		t.Fatal("nil tracer produced a live probe")
	}
	if p := StartKernelProbe(k, NewTracer(), 0); p != nil {
		t.Fatal("non-positive interval produced a live probe")
	}
	if k.Pending() != 0 {
		t.Fatalf("disabled probe scheduled events: pending=%d", k.Pending())
	}
}
