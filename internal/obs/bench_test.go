package obs

import (
	"testing"
)

// BenchmarkTracerDisabled measures the instrumented-hot-path cost when
// tracing is off: a nil *Tracer must reduce every call to a nil check
// with zero allocations (the variadic attribute slice must not escape).
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(1, EvTCPRetransmit, "n0", "d0", "rexmit", Str("conn", "c0"), Int("try", 2))
		id := tr.Begin(2, EvLSCEpoch, "", "t", "epoch")
		tr.End(3, id, Str("outcome", "commit"))
		tr.Counter(4, EvSimProbe, "", "", "sim.queue_depth", 1)
		tr.Inc("tcp.retransmits", 1)
		tr.Observe("lat", 5)
	}
}

// BenchmarkTracerEnabled is the reference point for the enabled path.
func BenchmarkTracerEnabled(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(1, EvTCPRetransmit, "n0", "d0", "rexmit", Str("conn", "c0"))
	}
}

// TestTracerDisabledZeroAlloc pins the nil-path allocation count so a
// regression fails tests, not just a benchmark someone has to read.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(1, EvTCPRetransmit, "n0", "d0", "rexmit", Str("conn", "c0"), Int("try", 2))
		id := tr.Begin(2, EvLSCEpoch, "", "t", "epoch")
		tr.End(3, id, Str("outcome", "commit"))
		tr.Counter(4, EvSimProbe, "", "", "sim.queue_depth", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates: %v allocs/op", allocs)
	}
}
