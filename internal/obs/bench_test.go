package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"
)

// BenchmarkTracerDisabled measures the instrumented-hot-path cost when
// tracing is off: a nil *Tracer must reduce every call to a nil check
// with zero allocations (the variadic attribute slice must not escape).
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(1, EvTCPRetransmit, "n0", "d0", "rexmit", Str("conn", "c0"), Int("try", 2))
		id := tr.Begin(2, EvLSCEpoch, "", "t", "epoch")
		tr.End(3, id, Str("outcome", "commit"))
		tr.Counter(4, EvSimProbe, "", "", "sim.queue_depth", 1)
		tr.Inc("tcp.retransmits", 1)
		tr.Observe("lat", 5)
	}
}

// BenchmarkTracerEnabled measures the enabled path into the memory sink:
// one instant with one attribute per op. With DVC_BENCH_JSON set the
// ns/record and allocs/record land in the BENCH_obs artifact.
func BenchmarkTracerEnabled(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(1, EvTCPRetransmit, "n0", "d0", "rexmit", Str("conn", "c0"))
	}
	reportObsBenchJSON(b, "TracerEnabled")
}

// BenchmarkTracerEnabledSpan measures a Begin/End pair on the enabled
// path — the span table's allocate/free cycle plus two records.
func BenchmarkTracerEnabledSpan(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := tr.Begin(1, EvLSCEpoch, "", "t", "epoch")
		tr.End(2, id)
	}
	reportObsBenchJSON(b, "TracerEnabledSpan")
}

// BenchmarkTracerStreaming measures the full streaming pipeline: emit →
// JSON encode → fixed buffer → discard. This is the per-record cost a
// large traced run pays instead of O(records) memory.
func BenchmarkTracerStreaming(b *testing.B) {
	tr := NewTracerWithSink(NewJSONLSink(io.Discard, 0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(1, EvTCPRetransmit, "n0", "d0", "rexmit", Str("conn", "c0"))
	}
	if err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
	reportObsBenchJSON(b, "TracerStreaming")
}

// TestTracerDisabledZeroAlloc pins the nil-path allocation count so a
// regression fails tests, not just a benchmark someone has to read.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(1, EvTCPRetransmit, "n0", "d0", "rexmit", Str("conn", "c0"), Int("try", 2))
		id := tr.Begin(2, EvLSCEpoch, "", "t", "epoch")
		tr.End(3, id, Str("outcome", "commit"))
		tr.Counter(4, EvSimProbe, "", "", "sim.queue_depth", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates: %v allocs/op", allocs)
	}
}

// tracerOverheadCeiling is the enabled-path gate: one instant record
// with one attribute, streamed through a JSONLSink into io.Discard, must
// cost less than this per record. The true cost is a few hundred
// nanoseconds (dominated by encoding/json); the ceiling is generous so
// the gate only fires on structural regressions (a new allocation per
// record, an accidental O(n) scan), not scheduler noise on a busy CI
// runner.
const tracerOverheadCeiling = 20 * time.Microsecond

// TestTracerEnabledOverhead is the ns/record gate for the enabled
// streaming path. Skipped under -race (instrumentation dominates) and
// with -short.
func TestTracerEnabledOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates per-record cost")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in short mode")
	}
	const records = 200000
	tr := NewTracerWithSink(NewJSONLSink(io.Discard, 0))
	start := time.Now()
	for i := 0; i < records; i++ {
		tr.Emit(1, EvTCPRetransmit, "n0", "d0", "rexmit", Str("conn", "c0"))
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	perRecord := time.Since(start) / records
	t.Logf("enabled streaming path: %v/record (ceiling %v)", perRecord, tracerOverheadCeiling)
	if perRecord > tracerOverheadCeiling {
		t.Fatalf("enabled path costs %v/record, ceiling %v", perRecord, tracerOverheadCeiling)
	}
}

// TestTracerMemoryBounded pins the streaming memory contract: a long
// emit stream through a JSONLSink allocates O(buffer), not O(records) —
// the tracer retains no record slice and the span table stays at the
// high-water mark of concurrently-open spans.
func TestTracerMemoryBounded(t *testing.T) {
	tr := NewTracerWithSink(NewJSONLSink(io.Discard, 4096))
	for i := 0; i < 100000; i++ {
		id := tr.Begin(1, EvLSCEpoch, "", "t", "epoch")
		tr.End(2, id)
	}
	if tr.Records() != nil {
		t.Fatal("streaming tracer retained records")
	}
	if len(tr.open) != 1 {
		t.Fatalf("span table grew to %d slots for fully-nested spans, want 1", len(tr.open))
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}

// reportObsBenchJSON appends one benchmark record to the DVC_BENCH_JSON
// artifact (BENCH_obs.json in CI): ns and heap bytes per record.
func reportObsBenchJSON(b *testing.B, name string) {
	path := os.Getenv("DVC_BENCH_JSON")
	if path == "" {
		return
	}
	doc := struct {
		Benchmark string  `json:"benchmark"`
		N         int     `json:"n"`
		NsPerOp   float64 `json:"ns_per_op"`
	}{name, b.N, float64(b.Elapsed().Nanoseconds()) / float64(b.N)}
	data, err := json.Marshal(doc)
	if err != nil {
		b.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n", data)
}
