package obs

import (
	"bytes"
	"testing"
)

// TestMergeMatchesSerialEmission: recording each partition's events into
// a private child and merging by (TS, child index, child seq) must
// produce the exact bytes of one tracer emitting the same global
// schedule directly — the property that keeps partitioned traces
// byte-identical to the serial engine's.
func TestMergeMatchesSerialEmission(t *testing.T) {
	parent := NewTracer()
	c0, c1, c2 := parent.Child(), parent.Child(), parent.Child()

	// Partition schedules, with a timestamp tie at t=10 (c0 before c1 by
	// partition index) and spans that interleave across partitions.
	c0.Emit(10, EvVMBoot, "p0-n0", "vm0", "boot")
	s0 := c0.Begin(20, EvLSCEpoch, "", "p0", "epoch")
	c0.Counter(35, EvSimProbe, "p0-n0", "", "queue", 3)
	c0.End(40, s0, Str("outcome", "commit"))
	c0.Inc("events", 4)
	c0.Gauge("last_partition", 0)

	c1.Emit(10, EvVMBoot, "p1-n0", "vm0", "boot")
	s1 := c1.Begin(15, EvLSCStore, "", "p1", "store")
	c1.End(30, s1, Str("outcome", "ok"))
	c1.Inc("events", 3)
	c1.Gauge("last_partition", 1)

	c2.Emit(25, EvVMDestroy, "p2-n0", "vm0", "destroy")
	c2.Inc("events", 1)
	c2.Gauge("last_partition", 2)

	parent.Merge(c0, c1, c2)

	// The same global schedule emitted serially, in (TS, partition) order.
	serial := NewTracer()
	serial.Emit(10, EvVMBoot, "p0-n0", "vm0", "boot")
	serial.Emit(10, EvVMBoot, "p1-n0", "vm0", "boot")
	t1 := serial.Begin(15, EvLSCStore, "", "p1", "store")
	t0 := serial.Begin(20, EvLSCEpoch, "", "p0", "epoch")
	serial.Emit(25, EvVMDestroy, "p2-n0", "vm0", "destroy")
	serial.End(30, t1, Str("outcome", "ok"))
	serial.Counter(35, EvSimProbe, "p0-n0", "", "queue", 3)
	serial.End(40, t0, Str("outcome", "commit"))

	var a, b bytes.Buffer
	if err := serial.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := parent.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merged trace differs from serial emission:\nserial:\n%s\nmerged:\n%s", a.String(), b.String())
	}

	// Seqs dense from 0, span references intact across the interleave.
	recs := parent.Records()
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d (seqs must be re-assigned densely)", i, r.Seq)
		}
		if r.Ph == PhaseBegin && r.Span != r.Seq {
			t.Fatalf("begin record %d has span %d, want self-reference", i, r.Span)
		}
		if r.Ph == PhaseEnd {
			begin := recs[r.Span]
			if begin.Ph != PhaseBegin || begin.Type != r.Type || begin.Name != r.Name {
				t.Fatalf("end record %d references seq %d which is not its begin", i, r.Span)
			}
		}
	}

	// Registry merges in partition order: counters add, gauges
	// last-write-wins on partition index.
	if got := parent.Registry().Counter("events"); got != 8 {
		t.Errorf("counter merge: got %v, want 8", got)
	}
	if got := parent.Registry().GaugeValue("last_partition"); got != 2 {
		t.Errorf("gauge merge is not last-write-wins in partition order: got %v", got)
	}
}

// TestMergeDeterministic: merging the same children (same argument
// order) into fresh parents yields identical bytes — the merge depends
// only on (TS, partition index, partition seq), never on anything
// runtime-dependent.
func TestMergeDeterministic(t *testing.T) {
	build := func() []*Tracer {
		c0, c1 := NewTracer(), NewTracer()
		c0.Emit(5, EvVMBoot, "a", "vm0", "boot")
		s := c1.Begin(5, EvLSCEpoch, "", "t", "epoch")
		c1.End(9, s)
		c0.Emit(9, EvVMDestroy, "a", "vm0", "destroy")
		return []*Tracer{c0, c1}
	}
	var out [2]bytes.Buffer
	for i := range out {
		p := NewTracer()
		p.Merge(build()...)
		if err := p.WriteJSONL(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatalf("repeated merges diverge:\n%s\nvs\n%s", out[0].String(), out[1].String())
	}
}

// TestMergeNilSafety: nil parents and nil children are inert, matching
// Splice.
func TestMergeNilSafety(t *testing.T) {
	var nilT *Tracer
	nilT.Merge(NewTracer()) // must not panic

	parent := NewTracer()
	c := parent.Child()
	c.Emit(1, EvVMBoot, "n0", "vm0", "boot")
	parent.Merge(nil, c, nil)
	if parent.Len() != 1 {
		t.Fatalf("merge with nil children recorded %d, want 1", parent.Len())
	}
}

// TestMergeRejectsStreamingChild: children must be memory-backed — a
// streaming child has already shipped its records and cannot be merged.
func TestMergeRejectsStreamingChild(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merge accepted a non-memory-backed child")
		}
	}()
	var buf bytes.Buffer
	NewTracer().Merge(NewTracerWithSink(NewJSONLSink(&buf, 0)))
}
