package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"dvc/internal/sim"
)

// The JSONL trace format: one JSON object per line, in emission order.
// Field order is fixed by the struct declaration and attribute order by
// the KV slice, so two identical runs produce byte-identical files —
// the replay-digest tests depend on this.
//
//	{"seq":12,"ts":2000013000,"ph":"B","ev":"lsc.epoch","dom":"t","name":"epoch","span":12,"attrs":{"gen":"0"}}
type jsonRecord struct {
	Seq   uint64   `json:"seq"`
	TS    int64    `json:"ts"` // virtual nanoseconds
	Ph    string   `json:"ph"`
	Ev    string   `json:"ev"`
	Node  string   `json:"node,omitempty"`
	Dom   string   `json:"dom,omitempty"`
	Name  string   `json:"name,omitempty"`
	Span  uint64   `json:"span,omitempty"`
	Value *float64 `json:"val,omitempty"`
	Attrs kvList   `json:"attrs,omitempty"`
}

// kvList marshals an ordered attribute list as a JSON object whose key
// order is the slice order (encoding/json would sort a map; we want
// emission order, which is deterministic by construction).
type kvList []KV

// MarshalJSON writes {"k":"v",...} in slice order.
func (l kvList) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, kv := range l {
		if i > 0 {
			b.WriteByte(',')
		}
		k, err := json.Marshal(kv.K)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(kv.V)
		if err != nil {
			return nil, err
		}
		b.Write(k)
		b.WriteByte(':')
		b.Write(v)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON reads an object back preserving key order.
func (l *kvList) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("obs: attrs is not an object")
	}
	out := kvList{}
	for dec.More() {
		kt, err := dec.Token()
		if err != nil {
			return err
		}
		key, ok := kt.(string)
		if !ok {
			return fmt.Errorf("obs: attrs key is not a string")
		}
		vt, err := dec.Token()
		if err != nil {
			return err
		}
		val, ok := vt.(string)
		if !ok {
			return fmt.Errorf("obs: attrs value for %q is not a string", key)
		}
		out = append(out, KV{key, val})
	}
	*l = out
	return nil
}

// WriteJSONL writes the trace as one JSON object per line in emission
// order. Output bytes are a pure function of the recorded events — and
// identical to what a JSONLSink would have streamed, record for record
// (both paths go through toJSONRecord and json.Encoder). Only a
// memory-backed tracer can export after the fact; a streaming tracer
// already sent its records to its sink.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	if t.mem == nil {
		return fmt.Errorf("obs: tracer is not memory-backed; attach a JSONLSink to stream instead")
	}
	return WriteRecordsJSONL(w, t.mem.recs)
}

// WriteRecordsJSONL writes a record slice as JSONL, the same bytes per
// record as Tracer.WriteJSONL and JSONLSink.
func WriteRecordsJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for i := range recs {
		if err := enc.Encode(toJSONRecord(&recs[i])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func toJSONRecord(r *Record) jsonRecord {
	jr := jsonRecord{
		Seq:  r.Seq,
		TS:   int64(r.TS),
		Ph:   string(rune(r.Ph)),
		Ev:   string(r.Type),
		Node: r.Node,
		Dom:  r.Dom,
		Name: r.Name,
		Span: r.Span,
	}
	if r.Ph == PhaseCounter {
		v := r.Value
		jr.Value = &v
	}
	if len(r.Attrs) > 0 {
		jr.Attrs = kvList(r.Attrs)
	}
	return jr
}

// DecodeJSONL streams a JSONL trace through fn one record at a time,
// holding only the current line in memory — large traces never
// materialize as a slice. The record passed to fn is reused across
// calls except for its Attrs; copy it if it must outlive the call.
// Returning a non-nil error from fn stops the scan and propagates.
func DecodeJSONL(r io.Reader, fn func(rec *Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	var rec Record
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal(raw, &jr); err != nil {
			return fmt.Errorf("obs: line %d: %w", line, err)
		}
		if len(jr.Ph) != 1 {
			return fmt.Errorf("obs: line %d: bad phase %q", line, jr.Ph)
		}
		rec = Record{
			Seq:  jr.Seq,
			TS:   sim.Time(jr.TS),
			Ph:   jr.Ph[0],
			Type: EventType(jr.Ev),
			Node: jr.Node,
			Dom:  jr.Dom,
			Name: jr.Name,
			Span: jr.Span,
		}
		if jr.Value != nil {
			rec.Value = *jr.Value
		}
		if len(jr.Attrs) > 0 {
			rec.Attrs = []KV(jr.Attrs)
		}
		if err := fn(&rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ReadJSONL parses a JSONL trace back into a record slice. Tooling that
// only needs one pass should prefer DecodeJSONL, which does not hold the
// whole trace.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	err := DecodeJSONL(r, func(rec *Record) error {
		out = append(out, *rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
