package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"dvc/internal/sim"
)

// emitFixture replays a fixed little event stream onto tr: instants on
// two nodes, a nested span pair, a counter, and a registry touch.
func emitFixture(tr *Tracer) {
	tr.Emit(10, EvVMBoot, "n0", "d0", "boot", Str("os", "native"))
	ep := tr.Begin(20, EvLSCEpoch, "", "vc", "epoch", Int("gen", 0))
	sv := tr.Begin(30, EvVMSave, "n0", "d0", "save")
	tr.Counter(35, EvSimProbe, "", "", "sim.queue_depth", 2)
	tr.End(40, sv, Uint("bytes", 4096))
	tr.Emit(45, EvTCPRetransmit, "n1", "", "rexmit", Str("conn", "c0"))
	tr.End(50, ep, Str("outcome", "commit"))
	tr.Inc("lsc.commits", 1)
	tr.Gauge("vm.count", 2)
}

func TestJSONLSinkMatchesMemoryExport(t *testing.T) {
	mem := NewTracer()
	emitFixture(mem)
	var want bytes.Buffer
	if err := mem.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}

	// A tiny 64-byte buffer forces many mid-run flushes; bytes must not
	// change.
	var got bytes.Buffer
	st := NewTracerWithSink(NewJSONLSink(&got, 64))
	emitFixture(st)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("streaming sink bytes differ from memory export:\n got: %s\nwant: %s", got.Bytes(), want.Bytes())
	}
	if st.Records() != nil {
		t.Fatal("streaming tracer retained records")
	}
	if st.Len() != mem.Len() {
		t.Fatalf("streaming Len=%d, memory Len=%d", st.Len(), mem.Len())
	}
}

func TestStreamingTracerRejectsInProcessExport(t *testing.T) {
	st := NewTracerWithSink(NewJSONLSink(&bytes.Buffer{}, 0))
	emitFixture(st)
	if err := st.WriteJSONL(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteJSONL on a streaming tracer did not error")
	}
	if err := st.WritePerfetto(&bytes.Buffer{}); err == nil {
		t.Fatal("WritePerfetto on a streaming tracer did not error")
	}
	var nilTr *Tracer
	if err := nilTr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil tracer WriteJSONL = %v", err)
	}
}

// failWriter fails after n successful writes.
type failWriter struct {
	n   int
	err error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

func TestTracerSinkErrorIsSticky(t *testing.T) {
	wantErr := errors.New("disk full")
	// Buffer of 1 byte → every record forces a write through.
	st := NewTracerWithSink(NewJSONLSink(&failWriter{n: 0, err: wantErr}, 1))
	emitFixture(st)
	if err := st.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("Flush = %v, want %v", err, wantErr)
	}
	if err := st.Err(); !errors.Is(err, wantErr) {
		t.Fatalf("Err = %v, want %v", err, wantErr)
	}
}

func TestFlightSinkRetainsTail(t *testing.T) {
	fs := NewFlightSink(3)
	tr := NewTracerWithSink(fs)
	for i := 0; i < 10; i++ {
		tr.Emit(sim.Time(i), EvNetDrop, "n0", "", "drop", Int("i", int64(i)))
	}
	if fs.Total() != 10 || fs.Retained() != 3 {
		t.Fatalf("Total=%d Retained=%d, want 10/3", fs.Total(), fs.Retained())
	}
	var buf bytes.Buffer
	if err := fs.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("dump has %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if want := uint64(7 + i); r.Seq != want {
			t.Fatalf("dump[%d].Seq = %d, want %d (oldest-first tail)", i, r.Seq, want)
		}
	}
}

func TestFlightSinkPartialFill(t *testing.T) {
	fs := NewFlightSink(8)
	tr := NewTracerWithSink(fs)
	tr.Emit(1, EvNetDrop, "", "", "drop")
	tr.Emit(2, EvNetDrop, "", "", "drop")
	if fs.Total() != 2 || fs.Retained() != 2 {
		t.Fatalf("Total=%d Retained=%d, want 2/2", fs.Total(), fs.Retained())
	}
	if NewFlightSink(0).ring == nil || len(NewFlightSink(-5).ring) != 1 {
		t.Fatal("size clamp broken")
	}
}

func TestFilterConfigMatch(t *testing.T) {
	mk := func(seq uint64, ph byte, typ EventType, node, dom string, ts sim.Time) *Record {
		return &Record{Seq: seq, TS: ts, Ph: ph, Type: typ, Node: node, Dom: dom}
	}
	cases := []struct {
		name string
		cfg  FilterConfig
		rec  *Record
		want bool
	}{
		{"empty keeps all", FilterConfig{}, mk(0, PhaseInstant, EvNetDrop, "", "", 5), true},
		{"exact type", FilterConfig{Types: []EventType{EvVMPause}}, mk(0, PhaseInstant, EvVMPause, "", "", 0), true},
		{"category match", FilterConfig{Types: []EventType{"lsc"}}, mk(0, PhaseInstant, EvLSCCommit, "", "", 0), true},
		{"type miss", FilterConfig{Types: []EventType{EvVMPause}}, mk(0, PhaseInstant, EvNetDrop, "", "", 0), false},
		{"node match", FilterConfig{Nodes: []string{"n1"}}, mk(0, PhaseInstant, EvNetDrop, "n1", "", 0), true},
		{"node miss", FilterConfig{Nodes: []string{"n1"}}, mk(0, PhaseInstant, EvNetDrop, "n2", "", 0), false},
		{"dom match", FilterConfig{Doms: []string{"d0"}}, mk(0, PhaseInstant, EvVMPause, "n", "d0", 0), true},
		{"dom miss", FilterConfig{Doms: []string{"d0"}}, mk(0, PhaseInstant, EvVMPause, "n", "d1", 0), false},
		{"before From", FilterConfig{From: 10}, mk(0, PhaseInstant, EvNetDrop, "", "", 9), false},
		{"at From", FilterConfig{From: 10}, mk(0, PhaseInstant, EvNetDrop, "", "", 10), true},
		{"after To", FilterConfig{To: 10}, mk(0, PhaseInstant, EvNetDrop, "", "", 11), false},
		{"zero To unbounded", FilterConfig{}, mk(0, PhaseInstant, EvNetDrop, "", "", 1<<40), true},
		{"everyN keeps seq%N==0", FilterConfig{EveryN: 4}, mk(8, PhaseInstant, EvNetDrop, "", "", 0), true},
		{"everyN drops others", FilterConfig{EveryN: 4}, mk(9, PhaseInstant, EvNetDrop, "", "", 0), false},
		{"everyN drops counters", FilterConfig{EveryN: 4}, mk(9, PhaseCounter, EvSimProbe, "", "", 0), false},
		{"everyN passes Begin", FilterConfig{EveryN: 4}, mk(9, PhaseBegin, EvLSCEpoch, "", "", 0), true},
		{"everyN passes End", FilterConfig{EveryN: 4}, mk(9, PhaseEnd, EvLSCEpoch, "", "", 0), true},
	}
	for _, c := range cases {
		if got := c.cfg.Match(c.rec); got != c.want {
			t.Errorf("%s: Match = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFilterSinkAndTee(t *testing.T) {
	all := NewMemorySink()
	drops := NewMemorySink()
	sink := Tee(all, NewFilterSink(drops, FilterConfig{Types: []EventType{EvNetDrop}}))
	tr := NewTracerWithSink(sink)
	tr.Emit(1, EvNetDrop, "", "", "drop")
	tr.Emit(2, EvVMPause, "n", "d", "pause")
	tr.Emit(3, EvNetDrop, "", "", "drop")
	if len(all.Records()) != 3 {
		t.Fatalf("tee main leg has %d records, want 3", len(all.Records()))
	}
	got := drops.Records()
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 2 {
		t.Fatalf("filtered leg = %+v", got)
	}
	// Tee with one sink returns it unwrapped.
	if Tee(all) != Sink(all) {
		t.Fatal("single-sink Tee did not unwrap")
	}
}

func TestFilterSamplingIsDeterministic(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		tr := NewTracerWithSink(NewFilterSink(NewJSONLSink(&buf, 0), FilterConfig{EveryN: 3}))
		for i := 0; i < 20; i++ {
			tr.Emit(sim.Time(i), EvNetDrop, "n", "", "drop", Int("i", int64(i)))
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("sampled output not deterministic:\n%s\n---\n%s", a, b)
	}
	recs, err := ReadJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 { // seq 0,3,6,9,12,15,18
		t.Fatalf("sampler kept %d of 20, want 7", len(recs))
	}
}

func TestSummaryStreaming(t *testing.T) {
	ss := NewSummarySink()
	tr := NewTracerWithSink(ss)
	emitFixture(tr)
	if ss.Total() != 7 {
		t.Fatalf("Total = %d, want 7", ss.Total())
	}
	if ss.CountByType(EvLSCEpoch) != 2 || ss.CountByType(EvNetDrop) != 0 {
		t.Fatalf("counts: epoch=%d drop=%d", ss.CountByType(EvLSCEpoch), ss.CountByType(EvNetDrop))
	}
	if got := ss.SpanNames(); len(got) != 2 || got[0] != "epoch" || got[1] != "save" {
		t.Fatalf("SpanNames = %v", got)
	}
	d := ss.Spans("epoch")
	if d == nil || d.N() != 1 || d.Max() != sim.Time(30).Seconds() {
		t.Fatalf("epoch durations = %+v", d)
	}

	// Marshalled shape is deterministic and carries the percentiles.
	a, err := json.Marshal(&ss.Summary)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(&ss.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("summary JSON not stable:\n%s\n---\n%s", a, b)
	}
	var doc struct {
		Records int                       `json:"records"`
		Events  map[string]int            `json:"events"`
		Spans   map[string]map[string]any `json:"spans"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Records != 7 || doc.Events["lsc.epoch"] != 2 || doc.Spans["save"] == nil {
		t.Fatalf("summary doc = %s", a)
	}
}

func TestSpanSlotReuse(t *testing.T) {
	tr := NewTracer()
	a := tr.Begin(1, EvLSCEpoch, "", "t", "epoch")
	tr.End(2, a)
	b := tr.Begin(3, EvLSCStore, "", "t", "store")
	if a != b {
		t.Fatalf("freed slot not reused: first=%d second=%d", a, b)
	}
	// Double-End is inert; the reused slot's new identity is what Ends.
	tr.End(4, a)
	tr.End(5, a) // already closed
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	if recs[3].Type != EvLSCStore || recs[3].Span != recs[2].Seq {
		t.Fatalf("reused-slot End = %+v", recs[3])
	}
}

func TestSpliceIntoStreamingParent(t *testing.T) {
	// Serial reference: everything emitted on one memory tracer.
	serial := NewTracer()
	emitFixture(serial)
	emitFixture(serial)
	var want bytes.Buffer
	if err := serial.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}

	// Streaming parent; two children spliced in order.
	var got bytes.Buffer
	parent := NewTracerWithSink(NewJSONLSink(&got, 128))
	c1, c2 := parent.Child(), parent.Child()
	emitFixture(c1)
	emitFixture(c2)
	parent.Splice(c1, c2)
	if err := parent.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("spliced streaming output differs from serial:\n got: %s\nwant: %s", got.Bytes(), want.Bytes())
	}
	if parent.Registry().Counter("lsc.commits") != 2 {
		t.Fatalf("registry merge lost counts: %v", parent.Registry().Counter("lsc.commits"))
	}
}

func TestSpliceRejectsStreamingChild(t *testing.T) {
	parent := NewTracer()
	bad := NewTracerWithSink(NewJSONLSink(&bytes.Buffer{}, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("Splice accepted a non-memory child")
		}
	}()
	parent.Splice(bad)
}

func TestDecodeJSONLStreams(t *testing.T) {
	tr := NewTracer()
	emitFixture(tr)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	err := DecodeJSONL(bytes.NewReader(buf.Bytes()), func(rec *Record) error {
		seqs = append(seqs, rec.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != tr.Len() {
		t.Fatalf("decoded %d records, want %d", len(seqs), tr.Len())
	}
	// Early-exit error propagates.
	stop := errors.New("stop")
	n := 0
	err = DecodeJSONL(bytes.NewReader(buf.Bytes()), func(rec *Record) error {
		n++
		if n == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || n != 2 {
		t.Fatalf("early exit: err=%v n=%d", err, n)
	}
}
