package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenTrace builds a small fixed trace exercising every record phase,
// the site process (empty node), host threads (empty dom), and a
// second-trial timestamp restart that the exporter must re-sort.
func goldenTrace() *Tracer {
	tr := NewTracer()
	ep := tr.Begin(0, EvLSCEpoch, "", "t", "epoch", Int("gen", 0))
	tr.Emit(1000, EvVMPause, "nodeB", "vm1", "pause")
	tr.Emit(1500, EvVMPause, "nodeA", "vm0", "pause")
	sv := tr.Begin(2000, EvVMSave, "nodeA", "vm0", "save")
	tr.Counter(2500, EvSimProbe, "", "", "sim.queue_depth", 4)
	tr.End(3000, sv, Uint("bytes", 4096))
	tr.Emit(3500, EvTCPRetransmit, "nodeB", "", "rexmit", Str("conn", "c0"))
	tr.End(4000, ep, Str("outcome", "commit"))
	// Second trial: virtual time restarts at zero.
	tr.Emit(500, EvNetDrop, "", "", "drop", Str("reason", "loss"))
	return tr
}

func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "perfetto_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("perfetto output differs from golden file:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestPerfettoValidAndSorted(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   float64         `json:"ts"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	// Metadata first, then the event stream with monotonically
	// non-decreasing timestamps.
	lastTS := -1.0
	sawMeta, sawEvent := 0, 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			sawMeta++
			if sawEvent > 0 {
				t.Fatal("metadata event after the event stream started")
			}
			continue
		}
		sawEvent++
		if ev.TS < lastTS {
			t.Fatalf("event %q has ts %v after %v", ev.Name, ev.TS, lastTS)
		}
		lastTS = ev.TS
		if ev.Pid == 0 || ev.Tid == 0 {
			t.Fatalf("event %q missing pid/tid: %+v", ev.Name, ev)
		}
	}
	// 3 processes (site, nodeA, nodeB) + their threads.
	if sawMeta < 6 {
		t.Fatalf("only %d metadata events", sawMeta)
	}
	if sawEvent != 9 {
		t.Fatalf("got %d stream events, want 9", sawEvent)
	}
}

func TestPerfettoPidTidAssignment(t *testing.T) {
	tr := goldenTrace()
	events := perfettoEvents(tr.Records())

	// pid 1 must be the synthetic site process, and its tid 1 the host
	// thread; named nodes follow in sorted order.
	names := map[int]string{}
	for _, ev := range events {
		if ev.Ph == "M" && ev.Name == "process_name" {
			names[ev.Pid] = ev.Args.(kvList)[0].V
		}
	}
	if names[1] != "site" || names[2] != "node nodeA" || names[3] != "node nodeB" {
		t.Fatalf("pid assignment = %v", names)
	}
}

func TestCategoryOf(t *testing.T) {
	cases := []struct {
		in   EventType
		want string
	}{
		{EvVMPause, "vm"},
		{EvLSCEpoch, "lsc"},
		{EvTCPRetransmit, "tcp"},
		{EvSimProbe, "sim"},
		{EventType("x"), "x"},
	}
	for _, c := range cases {
		if got := categoryOf(c.in); got != c.want {
			t.Errorf("categoryOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
