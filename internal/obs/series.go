package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"

	"dvc/internal/sim"
)

// Series is a windowed time-series of registry metrics: at each sample
// instant (the kernel probe's virtual-time tick) the registry's counters
// and gauges are snapshotted into one compact row. Columns are metric
// names discovered in deterministic (sorted) order; rows are plain
// float64 slices, so a long run costs a few words per metric per window
// instead of a Record per sample.
//
// The serialized form is columnar JSONL: a header line naming the
// columns, then one JSON array per row — [ts, v0, v1, ...] — padded to
// the final column count. Like the trace itself, the bytes are a pure
// function of the sampled values, so same-seed runs produce identical
// series files.
type Series struct {
	index map[string]int
	cols  []string
	rows  []seriesRow
}

type seriesRow struct {
	ts sim.Time
	// vals is indexed by column; rows sampled before a column existed
	// are shorter than len(cols) and pad with zero at write time.
	vals []float64
}

// NewSeries creates an empty series.
func NewSeries() *Series {
	return &Series{index: make(map[string]int)}
}

// col returns the column index for a metric name, adding the column if
// it is new. Discovery order is the caller's iteration order, which is
// sorted — so column order is deterministic.
func (s *Series) col(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	i := len(s.cols)
	s.cols = append(s.cols, name)
	s.index[name] = i
	return i
}

// Sample snapshots the registry's counters and gauges into one row at
// virtual time ts. Counters are visited first, gauges second, each in
// sorted name order; a name present as both counter and gauge records
// the gauge value (the later write, as Registry.Snapshot would order
// them). Nil receivers and registries are inert.
func (s *Series) Sample(ts sim.Time, r *Registry) {
	if s == nil || r == nil {
		return
	}
	counters := sortedKeys(r.counters)
	gauges := sortedKeys(r.gauges)
	for _, name := range counters {
		s.col(name)
	}
	for _, name := range gauges {
		s.col(name)
	}
	vals := make([]float64, len(s.cols))
	for _, name := range counters {
		vals[s.index[name]] = r.counters[name]
	}
	for _, name := range gauges {
		vals[s.index[name]] = r.gauges[name]
	}
	s.rows = append(s.rows, seriesRow{ts: ts, vals: vals})
}

// Merge appends another series' rows to this one in their recorded
// order, remapping columns by name — the series half of Tracer.Splice.
// Nil receivers and children are inert.
func (s *Series) Merge(c *Series) {
	if s == nil || c == nil {
		return
	}
	for _, name := range c.cols {
		s.col(name)
	}
	for _, row := range c.rows {
		vals := make([]float64, len(s.cols))
		for i, v := range row.vals {
			vals[s.index[c.cols[i]]] = v
		}
		s.rows = append(s.rows, seriesRow{ts: row.ts, vals: vals})
	}
}

// Len reports the number of sampled rows.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.rows)
}

// Cols returns the column names in discovery order (without the leading
// implicit "ts" column of the serialized form).
func (s *Series) Cols() []string {
	if s == nil {
		return nil
	}
	return s.cols
}

// Value reads one cell: the named metric's value in row i (0 when the
// column did not exist yet at sample time).
func (s *Series) Value(i int, name string) float64 {
	if s == nil || i < 0 || i >= len(s.rows) {
		return 0
	}
	col, ok := s.index[name]
	if !ok || col >= len(s.rows[i].vals) {
		return 0
	}
	return s.rows[i].vals[col]
}

// TS reads row i's sample timestamp.
func (s *Series) TS(i int) sim.Time {
	if s == nil || i < 0 || i >= len(s.rows) {
		return 0
	}
	return s.rows[i].ts
}

// WriteJSONL writes the columnar form: a header object naming the
// columns, then one array per row. Floats use strconv's shortest
// round-trip formatting ('g', like obs.Float), so the bytes are a pure
// function of the sampled values.
func (s *Series) WriteJSONL(w io.Writer) error {
	if s == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	header := struct {
		Cols []string `json:"cols"`
	}{Cols: append([]string{"ts"}, s.cols...)}
	hb, err := json.Marshal(header)
	if err != nil {
		return err
	}
	bw.Write(hb)
	bw.WriteByte('\n')
	var line []byte
	for _, row := range s.rows {
		line = line[:0]
		line = append(line, '[')
		line = strconv.AppendInt(line, int64(row.ts), 10)
		for col := range s.cols {
			line = append(line, ',')
			v := 0.0
			if col < len(row.vals) {
				v = row.vals[col]
			}
			line = strconv.AppendFloat(line, v, 'g', -1, 64)
		}
		line = append(line, ']', '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSeriesJSONL parses a serialized series back into column names and
// rows (ts plus values), for tooling and tests.
func ReadSeriesJSONL(r io.Reader) (cols []string, ts []sim.Time, rows [][]float64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	first := true
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if first {
			first = false
			var header struct {
				Cols []string `json:"cols"`
			}
			if err := json.Unmarshal(raw, &header); err != nil {
				return nil, nil, nil, err
			}
			cols = header.Cols
			continue
		}
		var vals []float64
		if err := json.Unmarshal(raw, &vals); err != nil {
			return nil, nil, nil, err
		}
		if len(vals) == 0 {
			continue
		}
		ts = append(ts, sim.Time(vals[0]))
		rows = append(rows, vals[1:])
	}
	return cols, ts, rows, sc.Err()
}
