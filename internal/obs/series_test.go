package obs

import (
	"bytes"
	"testing"

	"dvc/internal/sim"
)

func TestSeriesSampleAndReadBack(t *testing.T) {
	r := NewRegistry()
	s := NewSeries()

	r.Inc("a.count", 1)
	r.Set("z.gauge", 10)
	s.Sample(100, r)

	r.Inc("a.count", 2)
	r.Inc("b.count", 5) // new column appears mid-series
	r.Set("z.gauge", 11)
	s.Sample(200, r)

	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// Counters first, gauges second, each sorted; b.count discovered later
	// so it sits after the first sample's columns.
	if got := s.Cols(); len(got) != 3 || got[0] != "a.count" || got[1] != "z.gauge" || got[2] != "b.count" {
		t.Fatalf("Cols = %v", got)
	}
	if s.Value(0, "a.count") != 1 || s.Value(0, "z.gauge") != 10 || s.Value(0, "b.count") != 0 {
		t.Fatalf("row 0 = %v %v %v", s.Value(0, "a.count"), s.Value(0, "z.gauge"), s.Value(0, "b.count"))
	}
	if s.Value(1, "a.count") != 3 || s.Value(1, "b.count") != 5 || s.TS(1) != 200 {
		t.Fatalf("row 1 wrong")
	}

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	cols, ts, rows, err := ReadSeriesJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 4 || cols[0] != "ts" || cols[3] != "b.count" {
		t.Fatalf("read cols = %v", cols)
	}
	if len(ts) != 2 || ts[0] != 100 || ts[1] != 200 {
		t.Fatalf("read ts = %v", ts)
	}
	// The short first row pads with zero at write time.
	if len(rows[0]) != 3 || rows[0][2] != 0 || rows[1][2] != 5 {
		t.Fatalf("read rows = %v", rows)
	}
}

func TestSeriesBytesStable(t *testing.T) {
	build := func() []byte {
		r := NewRegistry()
		s := NewSeries()
		for i := 1; i <= 4; i++ {
			r.Inc("events", float64(i))
			r.Set("depth", float64(10-i)/3)
			s.Sample(sim.Time(i*100), r)
		}
		var buf bytes.Buffer
		if err := s.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("series bytes not stable:\n%s\n---\n%s", a, b)
	}
}

func TestSeriesMerge(t *testing.T) {
	parent := NewSeries()
	r1 := NewRegistry()
	r1.Inc("x", 1)
	parent.Sample(10, r1)

	child := NewSeries()
	r2 := NewRegistry()
	r2.Inc("y", 7) // column unknown to the parent
	r2.Inc("x", 2)
	child.Sample(20, r2)

	parent.Merge(child)
	if parent.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", parent.Len())
	}
	if parent.Value(1, "x") != 2 || parent.Value(1, "y") != 7 || parent.TS(1) != 20 {
		t.Fatalf("merged row = x=%v y=%v ts=%v", parent.Value(1, "x"), parent.Value(1, "y"), parent.TS(1))
	}
	if parent.Value(0, "y") != 0 {
		t.Fatal("pre-merge row leaked a child column value")
	}

	// Nil-safety both directions.
	var nilSeries *Series
	nilSeries.Merge(child)
	parent.Merge(nil)
	nilSeries.Sample(1, r1)
	if nilSeries.Len() != 0 || nilSeries.Cols() != nil || nilSeries.TS(0) != 0 || nilSeries.Value(0, "x") != 0 {
		t.Fatal("nil series not inert")
	}
}

func TestTracerSeriesViaProbe(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer()
	p := StartKernelProbe(k, tr, 100)
	for i := 0; i < 5; i++ {
		k.At(sim.Time(i*150), func() {})
	}
	k.RunUntil(500)
	p.Stop()

	s := tr.Series()
	if s == nil || s.Len() == 0 {
		t.Fatal("probe sampled no series rows")
	}
	found := false
	for _, c := range s.Cols() {
		if c == "sim.queue_depth" {
			found = true
		}
	}
	if !found {
		t.Fatalf("series cols = %v, want sim.queue_depth", s.Cols())
	}
	var nilTr *Tracer
	if nilTr.Series() != nil {
		t.Fatal("nil tracer has a series")
	}
	nilTr.SampleSeries(1) // must not panic
}
