package obs

import (
	"bytes"
	"fmt"
	"testing"

	"dvc/internal/sim"
)

// emitTrial records a representative per-trial event mix (instants, a
// nested span pair, counters, registry updates) onto tr.
func emitTrial(tr *Tracer, trial int) {
	base := sim.Time(trial) * sim.Second
	node := fmt.Sprintf("n%d", trial)
	tr.Emit(base, EvVMBoot, node, "vm0", "boot", Int("trial", int64(trial)))
	outer := tr.Begin(base+1, EvLSCEpoch, "", "t", "epoch", Int("gen", 0))
	inner := tr.Begin(base+2, EvLSCStore, "", "t", "store")
	tr.Counter(base+3, EvSimProbe, node, "", "queue", float64(trial))
	tr.End(base+4, inner, Str("outcome", "ok"))
	tr.End(base+5, outer, Str("outcome", "commit"))
	tr.Inc("trials", 1)
	tr.Gauge("last_trial", float64(trial))
	tr.Observe("skew_ms", float64(trial)*0.5)
}

// TestSpliceMatchesSerialEmission: recording N trials into per-trial
// child tracers and splicing them back in trial order must produce the
// exact bytes (JSONL) and registry snapshot of recording the same trials
// sequentially into one tracer — the property that keeps parallel trial
// execution byte-identical to the serial loop.
func TestSpliceMatchesSerialEmission(t *testing.T) {
	const trials = 5

	serial := NewTracer()
	for i := 0; i < trials; i++ {
		emitTrial(serial, i)
	}

	parent := NewTracer()
	children := make([]*Tracer, trials)
	for i := 0; i < trials; i++ {
		children[i] = parent.Child()
		emitTrial(children[i], i)
	}
	parent.Splice(children...)

	var a, b bytes.Buffer
	if err := serial.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := parent.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("spliced trace differs from serial emission:\nserial:\n%s\nspliced:\n%s", a.String(), b.String())
	}

	// Seqs must be dense from 0 and span references intact.
	for i, r := range parent.Records() {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d (seqs must be re-assigned densely)", i, r.Seq)
		}
		if r.Ph == PhaseBegin && r.Span != r.Seq {
			t.Fatalf("begin record %d has span %d, want self-reference", i, r.Span)
		}
		if r.Ph == PhaseEnd {
			begin := parent.Records()[r.Span]
			if begin.Ph != PhaseBegin || begin.Type != r.Type || begin.Name != r.Name {
				t.Fatalf("end record %d references seq %d which is not its begin", i, r.Span)
			}
		}
	}

	// Registry: counters added, gauges last-write-wins, histograms merged.
	sa, sb := serial.Registry().Snapshot(), parent.Registry().Snapshot()
	if fmt.Sprint(sa) != fmt.Sprint(sb) {
		t.Fatalf("registry snapshots diverge:\nserial:  %v\nspliced: %v", sa, sb)
	}
	if got := parent.Registry().Counter("trials"); got != trials {
		t.Errorf("counter merge: got %v, want %d", got, trials)
	}
	if got := parent.Registry().GaugeValue("last_trial"); got != trials-1 {
		t.Errorf("gauge merge is not last-write-wins: got %v", got)
	}
	if got := parent.Registry().Histogram("skew_ms").N(); got != trials {
		t.Errorf("histogram merge: got %d observations, want %d", got, trials)
	}
}

// TestSpliceNilSafety: nil parents, nil children and the Child of a nil
// parent must all be inert, so untraced runs never allocate.
func TestSpliceNilSafety(t *testing.T) {
	var nilT *Tracer
	if nilT.Child() != nil {
		t.Fatal("nil.Child() must be nil")
	}
	nilT.Splice(NewTracer()) // must not panic

	parent := NewTracer()
	c := parent.Child()
	emitTrial(c, 0)
	parent.Splice(nil, c, nil) // nil children skipped
	if parent.Len() != c.Len() {
		t.Fatalf("splice with nil children recorded %d, want %d", parent.Len(), c.Len())
	}
}

// TestSpliceInterleavedWithDirectEmission: records emitted directly on
// the parent before and after a splice keep a single dense seq space.
func TestSpliceInterleavedWithDirectEmission(t *testing.T) {
	parent := NewTracer()
	parent.Emit(0, EvVMBoot, "n0", "vm0", "boot")
	c := parent.Child()
	emitTrial(c, 1)
	parent.Splice(c)
	parent.Emit(sim.Hour, EvVMDestroy, "n0", "vm0", "destroy")
	for i, r := range parent.Records() {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if got := parent.Len(); got != c.Len()+2 {
		t.Fatalf("parent has %d records, want %d", got, c.Len()+2)
	}
}
