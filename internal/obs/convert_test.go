package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestConvertJSONLMatchesGolden pins the offline conversion pipeline:
// stream the golden trace as JSONL (what a JSONLSink run would leave on
// disk), convert it with ConvertJSONL, and require byte-equality with
// both the in-process exporter and the committed golden file. This is
// the contract that lets dvcsim stop holding records for Perfetto —
// dvctrace -convert reproduces the exact same bytes after the fact.
func TestConvertJSONLMatchesGolden(t *testing.T) {
	tr := goldenTrace()

	var inProcess bytes.Buffer
	if err := tr.WritePerfetto(&inProcess); err != nil {
		t.Fatal(err)
	}

	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	var converted bytes.Buffer
	if err := ConvertJSONL(bytes.NewReader(jsonl.Bytes()), &converted); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(converted.Bytes(), inProcess.Bytes()) {
		t.Fatalf("offline conversion differs from in-process exporter:\n got: %s\nwant: %s",
			converted.Bytes(), inProcess.Bytes())
	}

	want, err := os.ReadFile(filepath.Join("testdata", "perfetto_golden.json"))
	if err != nil {
		t.Fatalf("%v (run TestPerfettoGolden with -update-golden first)", err)
	}
	if !bytes.Equal(converted.Bytes(), want) {
		t.Fatalf("offline conversion differs from golden file:\n got: %s\nwant: %s", converted.Bytes(), want)
	}
}

// TestConvertJSONLStreamedInput runs the conversion over JSONL produced
// by a streaming sink rather than the memory exporter — the actual
// production path.
func TestConvertJSONLStreamedInput(t *testing.T) {
	var jsonl bytes.Buffer
	st := NewTracerWithSink(NewJSONLSink(&jsonl, 64))
	ep := st.Begin(0, EvLSCEpoch, "", "t", "epoch", Int("gen", 0))
	st.Emit(1000, EvVMPause, "nodeB", "vm1", "pause")
	st.End(4000, ep, Str("outcome", "commit"))
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	mem := NewTracer()
	ep2 := mem.Begin(0, EvLSCEpoch, "", "t", "epoch", Int("gen", 0))
	mem.Emit(1000, EvVMPause, "nodeB", "vm1", "pause")
	mem.End(4000, ep2, Str("outcome", "commit"))
	var want bytes.Buffer
	if err := mem.WritePerfetto(&want); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	if err := ConvertJSONL(bytes.NewReader(jsonl.Bytes()), &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("conversion of streamed JSONL differs:\n got: %s\nwant: %s", got.Bytes(), want.Bytes())
	}
}
