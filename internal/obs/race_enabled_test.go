//go:build race

package obs

// raceEnabled reports whether the race detector is compiled in. The
// enabled-path overhead gate skips under -race: instrumentation inflates
// per-record cost far past what the tracer itself spends.
const raceEnabled = true
