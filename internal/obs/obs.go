// Package obs is the deterministic observability layer for the DVC
// simulation core: a structured event/span recorder (Tracer) keyed off
// sim.Time, a counter/gauge/histogram registry (Registry) with stable
// sorted output, a windowed time-series of registry metrics (Series),
// and a pluggable record pipeline (Sink) that decides where records go —
// buffered in memory, streamed as JSONL through a fixed-size buffer,
// retained in a flight-recorder ring, or filtered/sampled
// deterministically.
//
// Determinism is part of the contract. Every record is timestamped with
// virtual time supplied by the caller (components already hold the
// kernel), sequence numbers are assigned in emission order, and both
// exporters (JSONL and Chrome/Perfetto trace_events JSON) produce
// byte-identical output for identical runs — the seed-replay tests in
// internal/experiments hash the trace bytes of two runs and require
// equality. The same holds per sink: the streaming JSONL sink emits the
// exact bytes the memory sink would have exported, sampling is keyed on
// record sequence numbers (never a random draw), and the flight
// recorder's retained window is a pure function of the stream. The
// tracer never reads the host clock and never spawns goroutines, so it
// passes the dvclint determinism suite like the rest of the simulation
// core.
//
// A nil *Tracer is the disabled tracer: every method is nil-receiver
// safe and returns immediately, so instrumented hot paths pay only a
// nil-check when tracing is off (BenchmarkTracerDisabled and the
// //dvc:hotpath annotations guard this — zero allocations on the nil
// path).
package obs

import (
	"strconv"

	"dvc/internal/sim"
)

// EventType names one kind of event in the trace taxonomy. The dotted
// prefix groups events by subsystem and doubles as the Perfetto category.
type EventType string

// The event taxonomy (see DESIGN.md "Observability").
const (
	// VM lifecycle (internal/vm). One Perfetto thread per domain.
	EvVMBoot    EventType = "vm.boot"
	EvVMPause   EventType = "vm.pause"
	EvVMUnpause EventType = "vm.unpause"
	EvVMSave    EventType = "vm.save"
	EvVMRestore EventType = "vm.restore"
	EvVMDestroy EventType = "vm.destroy"

	// LSC coordination (internal/core). Spans are per virtual cluster.
	EvLSCEpoch   EventType = "lsc.epoch"   // span: checkpoint begin → commit/abort
	EvLSCStore   EventType = "lsc.store"   // span: image set → shared storage
	EvLSCRestore EventType = "lsc.restore" // span: staged restore of a generation
	EvLSCCommit  EventType = "lsc.commit"
	EvLSCAbort   EventType = "lsc.abort"

	// Pre-copy live migration (internal/core).
	EvLiveMigrate EventType = "live.migrate" // span: start → switch-over
	EvLiveRound   EventType = "live.round"   // one pre-copy round of one domain

	// Transport (internal/tcp).
	EvTCPRetransmit EventType = "tcp.retransmit"
	EvTCPRTOBackoff EventType = "tcp.rto-backoff"
	EvTCPReset      EventType = "tcp.reset"

	// Resource manager (internal/rm).
	EvRMSubmit   EventType = "rm.submit"
	EvRMSchedule EventType = "rm.schedule"
	EvRMDispatch EventType = "rm.dispatch"
	EvRMComplete EventType = "rm.complete"
	EvRMRequeue  EventType = "rm.requeue"
	EvRMFail     EventType = "rm.fail"

	// Interconnect (internal/netsim).
	EvNetDrop EventType = "net.drop"

	// Kernel probe (obs.StartKernelProbe): counter samples.
	EvSimProbe EventType = "sim.probe"
)

// Record phases, mirroring the Chrome trace_events phase letter.
const (
	PhaseInstant byte = 'i' // point event
	PhaseBegin   byte = 'B' // span begin
	PhaseEnd     byte = 'E' // span end
	PhaseCounter byte = 'C' // counter sample
)

// KV is one ordered attribute. Attribute order is part of the trace's
// byte identity, so attributes are a slice, never a map.
type KV struct {
	K, V string
}

// Str builds a string attribute.
func Str(k, v string) KV { return KV{k, v} }

// Int builds an integer attribute.
func Int(k string, v int64) KV { return KV{k, strconv.FormatInt(v, 10)} }

// Uint builds an unsigned integer attribute.
func Uint(k string, v uint64) KV { return KV{k, strconv.FormatUint(v, 10)} }

// Float builds a float attribute (shortest round-trip formatting, so the
// bytes are a pure function of the value).
func Float(k string, v float64) KV { return KV{k, strconv.FormatFloat(v, 'g', -1, 64)} }

// Dur builds a duration attribute in integer nanoseconds of virtual time.
func Dur(k string, t sim.Time) KV { return KV{k, strconv.FormatInt(int64(t), 10)} }

// Record is one trace entry: an instant event, a span boundary, or a
// counter sample. Records are immutable once emitted.
type Record struct {
	Seq  uint64   // emission order, dense from 0
	TS   sim.Time // virtual time supplied by the instrumented component
	Ph   byte     // PhaseInstant | PhaseBegin | PhaseEnd | PhaseCounter
	Type EventType
	Node string // physical node id; "" = site-level
	Dom  string // VM/domain (or VC/job) name; "" = node-level
	Name string // short human label ("pause", "epoch", ...)

	// Span identifies begin/end pairs: a Begin record carries its own
	// Seq here; the matching End record carries the Begin's Seq.
	Span uint64

	// Value is the sample for PhaseCounter records.
	Value float64

	Attrs []KV
}

// SpanID refers to an open span. The zero SpanID is inert: Ending it is
// a no-op, which is what Begin on a disabled tracer returns. SpanIDs are
// slots in a small open-span table, reused after End — hold one only
// between its Begin and its End.
type SpanID uint64

// openSpan is the identity a Begin leaves behind so its End can mirror
// it without the tracer retaining the record stream (the streaming sinks
// depend on this: memory is bounded by concurrently-open spans, not by
// trace length).
type openSpan struct {
	seq             uint64
	typ             EventType
	node, dom, name string
	live            bool
}

// Tracer records events and spans in emission order and forwards every
// record to its Sink. It is single-threaded like the simulation kernel
// it observes; a nil *Tracer is the disabled tracer and every method
// no-ops.
type Tracer struct {
	sink Sink
	mem  *MemorySink // non-nil when sink retains records in memory
	next uint64      // next sequence number (== records emitted)
	open []openSpan  // open-span table; SpanID = slot+1
	free []int32     // reusable slots
	err  error       // first sink error, sticky

	reg    *Registry
	series *Series
}

// NewTracer creates an enabled tracer buffering records in memory (a
// MemorySink), with an empty registry and series — the default for tests
// and for runs that export Perfetto in-process.
func NewTracer() *Tracer { return NewTracerWithSink(NewMemorySink()) }

// NewTracerWithSink creates an enabled tracer forwarding records to
// sink. With any sink other than a MemorySink the tracer retains no
// records: Records returns nil and the exporters that need the full
// stream (WriteJSONL, WritePerfetto) report an error — stream the JSONL
// through a JSONLSink and convert offline with dvctrace instead.
func NewTracerWithSink(sink Sink) *Tracer {
	t := &Tracer{sink: sink, reg: NewRegistry(), series: NewSeries()}
	if m, ok := sink.(*MemorySink); ok {
		t.mem = m
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Registry returns the tracer's metric registry (nil when disabled).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Series returns the tracer's windowed metric time-series (nil when
// disabled). The kernel probe samples into it at every tick.
func (t *Tracer) Series() *Series {
	if t == nil {
		return nil
	}
	return t.series
}

// Records returns the recorded entries in emission order when the tracer
// is memory-backed, nil otherwise. The slice is shared; callers must not
// mutate it.
func (t *Tracer) Records() []Record {
	if t == nil || t.mem == nil {
		return nil
	}
	return t.mem.recs
}

// Len reports how many records have been emitted (through any sink).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return int(t.next)
}

// Err returns the first error a sink reported, if any. Instrumented
// components cannot handle I/O errors mid-simulation, so the tracer
// records the first failure and drops subsequent records; the run's
// driver checks Err (via Flush) after the run.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// Flush drains the sink's buffers and reports the first error seen on
// the record path. Call after the run, before closing the underlying
// writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	if err := t.sink.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Emit records an instant event at virtual time ts.
//
//dvc:hotpath
func (t *Tracer) Emit(ts sim.Time, typ EventType, node, dom, name string, kv ...KV) {
	if t == nil {
		return
	}
	t.emitInstant(ts, typ, node, dom, name, kv)
}

// Begin opens a span at ts and returns its id for End. Spans nest
// naturally: inner Begin/End pairs sit inside outer ones on the same
// (node, dom) timeline.
//
//dvc:hotpath
func (t *Tracer) Begin(ts sim.Time, typ EventType, node, dom, name string, kv ...KV) SpanID {
	if t == nil {
		return 0
	}
	return t.begin(ts, typ, node, dom, name, kv)
}

// End closes a span opened by Begin, copying its identity so exporters
// can pair the records without global state.
//
//dvc:hotpath
func (t *Tracer) End(ts sim.Time, id SpanID, kv ...KV) {
	if t == nil || id == 0 {
		return
	}
	t.end(ts, id, kv)
}

// Counter records a counter sample (a Perfetto counter-track point).
//
//dvc:hotpath
func (t *Tracer) Counter(ts sim.Time, typ EventType, node, dom, name string, v float64) {
	if t == nil {
		return
	}
	t.counter(ts, typ, node, dom, name, v)
}

// Inc adds delta to the named registry counter.
//
//dvc:hotpath
func (t *Tracer) Inc(name string, delta float64) {
	if t == nil {
		return
	}
	t.reg.Inc(name, delta)
}

// Gauge sets the named registry gauge.
//
//dvc:hotpath
func (t *Tracer) Gauge(name string, v float64) {
	if t == nil {
		return
	}
	t.reg.Set(name, v)
}

// Observe adds an observation to the named registry histogram.
//
//dvc:hotpath
func (t *Tracer) Observe(name string, v float64) {
	if t == nil {
		return
	}
	t.reg.Observe(name, v)
}

// SampleSeries snapshots the registry's counters and gauges into the
// time-series at virtual time ts (the kernel probe's per-tick hook).
func (t *Tracer) SampleSeries(ts sim.Time) {
	if t == nil {
		return
	}
	t.series.Sample(ts, t.reg)
}

// emitInstant is Emit's enabled path.
func (t *Tracer) emitInstant(ts sim.Time, typ EventType, node, dom, name string, kv []KV) {
	t.emit(Record{TS: ts, Ph: PhaseInstant, Type: typ, Node: node, Dom: dom, Name: name, Attrs: cloneKV(kv)})
}

// begin is Begin's enabled path: emit the Begin record (its Span field
// self-references its own seq) and park the span's identity in the
// open-span table for End to mirror.
func (t *Tracer) begin(ts sim.Time, typ EventType, node, dom, name string, kv []KV) SpanID {
	seq := t.emit(Record{TS: ts, Ph: PhaseBegin, Type: typ, Node: node, Dom: dom, Name: name, Span: t.next, Attrs: cloneKV(kv)})
	var slot int32
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.open = append(t.open, openSpan{})
		slot = int32(len(t.open) - 1)
	}
	t.open[slot] = openSpan{seq: seq, typ: typ, node: node, dom: dom, name: name, live: true}
	return SpanID(slot + 1)
}

// end is End's enabled path: mirror the Begin's identity from the
// open-span table and release the slot. Ids that are out of range or
// already ended are ignored, like the zero SpanID.
func (t *Tracer) end(ts sim.Time, id SpanID, kv []KV) {
	if int(id) > len(t.open) {
		return
	}
	s := &t.open[id-1]
	if !s.live {
		return
	}
	t.emit(Record{TS: ts, Ph: PhaseEnd, Type: s.typ, Node: s.node, Dom: s.dom, Name: s.name, Span: s.seq, Attrs: cloneKV(kv)})
	s.live = false
	t.free = append(t.free, int32(id-1))
}

// counter is Counter's enabled path.
func (t *Tracer) counter(ts sim.Time, typ EventType, node, dom, name string, v float64) {
	t.emit(Record{TS: ts, Ph: PhaseCounter, Type: typ, Node: node, Dom: dom, Name: name, Value: v})
}

// Child returns a fresh, empty memory-backed tracer intended for one
// parallel trial. A nil (disabled) parent returns a nil child, so
// untraced runs stay untraced all the way down. Children are independent
// single-threaded tracers; after the trial completes, hand them back to
// the parent with Splice in trial order. Children buffer in memory by
// design — splicing needs the whole trial in order — so the parent's
// sink (streaming or otherwise) sees one trial at a time, in trial
// order.
func (t *Tracer) Child() *Tracer {
	if t == nil {
		return nil
	}
	return NewTracer()
}

// Splice appends each child's records to t in argument order, exactly as
// if every event had been emitted directly on t: sequence numbers are
// re-assigned densely in splice order and span references (Begin's
// self-reference, End's back-reference) are remapped by the same offset,
// so begin/end pairing — and therefore the exporters' byte output — is
// preserved. Child registries merge in the same order: counters add,
// gauges take the later child's value (last-write-wins, as a serial run
// would), histograms append their observations. Child series rows append
// in the same order.
//
// This is what keeps the JSONL replay contract byte-identical under
// parallel trial execution: trials record into private children
// concurrently, and the parent splices them back in trial-index order,
// reproducing the emission order of the serial loop — and with a
// streaming parent sink the records flow straight out, so the parent
// never holds more than the sink's fixed buffer. Nil children (from a
// disabled parent, or trials skipped by a panic) are ignored; calling
// Splice on a nil tracer is a no-op. Children must be memory-backed
// (Child guarantees this).
func (t *Tracer) Splice(children ...*Tracer) {
	if t == nil {
		return
	}
	for _, c := range children {
		if c == nil {
			continue
		}
		if c.mem == nil {
			panic("obs: Splice child is not memory-backed; children must come from Child()")
		}
		off := t.next
		for i := range c.mem.recs {
			r := c.mem.recs[i]
			r.Seq += off
			if r.Ph == PhaseBegin || r.Ph == PhaseEnd {
				r.Span += off
			}
			t.write(&r)
		}
		t.next = off + uint64(len(c.mem.recs))
		t.reg.merge(c.reg)
		t.series.Merge(c.series)
	}
}

// Merge interleaves the children's records into t ordered by
// (virtual time, child index, child sequence) — the canonical ordering
// of a partitioned run, where each child is one partition's private
// tracer. Unlike Splice (which concatenates whole children), Merge
// produces the single global schedule: records of different partitions
// sort by timestamp, ties break on the stable partition index given by
// argument order, and each partition's own emission order is preserved.
// That triple is a pure function of the simulation, never of goroutine
// arrival order, which is what keeps partitioned traces byte-identical
// to each other at any worker count.
//
// Sequence numbers are re-assigned densely in merge order and span
// references are remapped through a per-child table (a Begin's new seq
// is recorded when it lands; its End looks the mapping up), so
// begin/end pairing survives the interleave. A span's Begin always
// precedes its End in the merged stream because each child's timestamps
// are non-decreasing — true of a partition tracer, whose records carry
// its own kernel's monotone clock. Child registries and series merge in
// argument order, exactly as Splice merges them: counters add, gauges
// last-write-wins in partition order, histograms append, series rows
// append. Nil children are ignored; Merge on a nil tracer is a no-op.
// Children must be memory-backed (Child guarantees this).
func (t *Tracer) Merge(children ...*Tracer) {
	if t == nil {
		return
	}
	type cursor struct {
		recs  []Record
		i     int
		remap []uint64 // child Begin seq -> merged seq
	}
	cs := make([]*cursor, 0, len(children))
	for _, c := range children {
		if c == nil {
			continue
		}
		if c.mem == nil {
			panic("obs: Merge child is not memory-backed; children must come from Child()")
		}
		cs = append(cs, &cursor{recs: c.mem.recs, remap: make([]uint64, len(c.mem.recs))})
	}
	for {
		best := -1
		for j, c := range cs {
			if c.i >= len(c.recs) {
				continue
			}
			if best < 0 || c.recs[c.i].TS < cs[best].recs[cs[best].i].TS {
				best = j
			}
		}
		if best < 0 {
			break
		}
		c := cs[best]
		r := c.recs[c.i]
		c.i++
		switch r.Ph {
		case PhaseBegin:
			c.remap[r.Seq] = t.next
			r.Span = t.next
		case PhaseEnd:
			r.Span = c.remap[r.Span]
		}
		r.Seq = t.next
		t.next++
		t.write(&r)
	}
	for _, c := range children {
		if c == nil {
			continue
		}
		t.reg.merge(c.reg)
		t.series.Merge(c.series)
	}
}

// emit assigns the next sequence number and forwards the record.
func (t *Tracer) emit(r Record) uint64 {
	r.Seq = t.next
	t.next++
	t.write(&r)
	return r.Seq
}

// write forwards one finished record to the sink, capturing the first
// error.
func (t *Tracer) write(r *Record) {
	if t.err != nil {
		return
	}
	if err := t.sink.WriteRecord(r); err != nil {
		t.err = err
	}
}

// cloneKV copies the caller's attribute list so the variadic slice never
// escapes at call sites (keeping the disabled path allocation-free). The
// clone is capacity-exact: make+copy allocates len(kv) entries, where
// append-to-nil would round the capacity up to the next size class and
// waste a slot per record on the enabled hot path.
func cloneKV(kv []KV) []KV {
	if len(kv) == 0 {
		return nil
	}
	out := make([]KV, len(kv))
	copy(out, kv)
	return out
}
