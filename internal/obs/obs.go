// Package obs is the deterministic observability layer for the DVC
// simulation core: a structured event/span recorder (Tracer) keyed off
// sim.Time and a counter/gauge/histogram registry (Registry) with stable
// sorted output.
//
// Determinism is part of the contract. Every record is timestamped with
// virtual time supplied by the caller (components already hold the
// kernel), sequence numbers are assigned in emission order, and both
// exporters (JSONL and Chrome/Perfetto trace_events JSON) produce
// byte-identical output for identical runs — the seed-replay tests in
// internal/experiments hash the trace bytes of two runs and require
// equality. The tracer never reads the host clock and never spawns
// goroutines, so it passes the dvclint determinism suite like the rest of
// the simulation core.
//
// A nil *Tracer is the disabled tracer: every method is nil-receiver
// safe and returns immediately, so instrumented hot paths pay only a
// nil-check when tracing is off (BenchmarkTracerDisabled guards this —
// zero allocations on the nil path).
package obs

import (
	"strconv"

	"dvc/internal/sim"
)

// EventType names one kind of event in the trace taxonomy. The dotted
// prefix groups events by subsystem and doubles as the Perfetto category.
type EventType string

// The event taxonomy (see DESIGN.md "Observability").
const (
	// VM lifecycle (internal/vm). One Perfetto thread per domain.
	EvVMBoot    EventType = "vm.boot"
	EvVMPause   EventType = "vm.pause"
	EvVMUnpause EventType = "vm.unpause"
	EvVMSave    EventType = "vm.save"
	EvVMRestore EventType = "vm.restore"
	EvVMDestroy EventType = "vm.destroy"

	// LSC coordination (internal/core). Spans are per virtual cluster.
	EvLSCEpoch   EventType = "lsc.epoch"   // span: checkpoint begin → commit/abort
	EvLSCStore   EventType = "lsc.store"   // span: image set → shared storage
	EvLSCRestore EventType = "lsc.restore" // span: staged restore of a generation
	EvLSCCommit  EventType = "lsc.commit"
	EvLSCAbort   EventType = "lsc.abort"

	// Pre-copy live migration (internal/core).
	EvLiveMigrate EventType = "live.migrate" // span: start → switch-over
	EvLiveRound   EventType = "live.round"   // one pre-copy round of one domain

	// Transport (internal/tcp).
	EvTCPRetransmit EventType = "tcp.retransmit"
	EvTCPRTOBackoff EventType = "tcp.rto-backoff"
	EvTCPReset      EventType = "tcp.reset"

	// Resource manager (internal/rm).
	EvRMSubmit   EventType = "rm.submit"
	EvRMSchedule EventType = "rm.schedule"
	EvRMDispatch EventType = "rm.dispatch"
	EvRMComplete EventType = "rm.complete"
	EvRMRequeue  EventType = "rm.requeue"
	EvRMFail     EventType = "rm.fail"

	// Interconnect (internal/netsim).
	EvNetDrop EventType = "net.drop"

	// Kernel probe (obs.StartKernelProbe): counter samples.
	EvSimProbe EventType = "sim.probe"
)

// Record phases, mirroring the Chrome trace_events phase letter.
const (
	PhaseInstant byte = 'i' // point event
	PhaseBegin   byte = 'B' // span begin
	PhaseEnd     byte = 'E' // span end
	PhaseCounter byte = 'C' // counter sample
)

// KV is one ordered attribute. Attribute order is part of the trace's
// byte identity, so attributes are a slice, never a map.
type KV struct {
	K, V string
}

// Str builds a string attribute.
func Str(k, v string) KV { return KV{k, v} }

// Int builds an integer attribute.
func Int(k string, v int64) KV { return KV{k, strconv.FormatInt(v, 10)} }

// Uint builds an unsigned integer attribute.
func Uint(k string, v uint64) KV { return KV{k, strconv.FormatUint(v, 10)} }

// Float builds a float attribute (shortest round-trip formatting, so the
// bytes are a pure function of the value).
func Float(k string, v float64) KV { return KV{k, strconv.FormatFloat(v, 'g', -1, 64)} }

// Dur builds a duration attribute in integer nanoseconds of virtual time.
func Dur(k string, t sim.Time) KV { return KV{k, strconv.FormatInt(int64(t), 10)} }

// Record is one trace entry: an instant event, a span boundary, or a
// counter sample. Records are immutable once appended.
type Record struct {
	Seq  uint64   // emission order, dense from 0
	TS   sim.Time // virtual time supplied by the instrumented component
	Ph   byte     // PhaseInstant | PhaseBegin | PhaseEnd | PhaseCounter
	Type EventType
	Node string // physical node id; "" = site-level
	Dom  string // VM/domain (or VC/job) name; "" = node-level
	Name string // short human label ("pause", "epoch", ...)

	// Span identifies begin/end pairs: a Begin record carries its own
	// Seq here; the matching End record carries the Begin's Seq.
	Span uint64

	// Value is the sample for PhaseCounter records.
	Value float64

	Attrs []KV
}

// SpanID refers to an open span. The zero SpanID is inert: Ending it is
// a no-op, which is what Begin on a disabled tracer returns.
type SpanID uint64

// Tracer records events and spans in emission order. It is single-
// threaded like the simulation kernel it observes; a nil *Tracer is the
// disabled tracer and every method no-ops.
type Tracer struct {
	recs []Record
	reg  *Registry
}

// NewTracer creates an enabled tracer with an empty registry.
func NewTracer() *Tracer { return &Tracer{reg: NewRegistry()} }

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Registry returns the tracer's metric registry (nil when disabled).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Records returns the recorded entries in emission order. The slice is
// shared; callers must not mutate it.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	return t.recs
}

// Len reports how many records have been emitted.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.recs)
}

// Emit records an instant event at virtual time ts.
func (t *Tracer) Emit(ts sim.Time, typ EventType, node, dom, name string, kv ...KV) {
	if t == nil {
		return
	}
	t.append(Record{TS: ts, Ph: PhaseInstant, Type: typ, Node: node, Dom: dom, Name: name, Attrs: cloneKV(kv)})
}

// Begin opens a span at ts and returns its id for End. Spans nest
// naturally: inner Begin/End pairs sit inside outer ones on the same
// (node, dom) timeline.
func (t *Tracer) Begin(ts sim.Time, typ EventType, node, dom, name string, kv ...KV) SpanID {
	if t == nil {
		return 0
	}
	seq := t.append(Record{TS: ts, Ph: PhaseBegin, Type: typ, Node: node, Dom: dom, Name: name, Attrs: cloneKV(kv)})
	t.recs[len(t.recs)-1].Span = seq
	return SpanID(len(t.recs)) // index+1, so the zero SpanID stays inert
}

// End closes a span opened by Begin, copying its identity so exporters
// can pair the records without global state.
func (t *Tracer) End(ts sim.Time, id SpanID, kv ...KV) {
	if t == nil || id == 0 || int(id) > len(t.recs) {
		return
	}
	b := t.recs[id-1]
	if b.Ph != PhaseBegin {
		return
	}
	t.append(Record{TS: ts, Ph: PhaseEnd, Type: b.Type, Node: b.Node, Dom: b.Dom, Name: b.Name, Span: b.Seq, Attrs: cloneKV(kv)})
}

// Counter records a counter sample (a Perfetto counter-track point).
func (t *Tracer) Counter(ts sim.Time, typ EventType, node, dom, name string, v float64) {
	if t == nil {
		return
	}
	t.append(Record{TS: ts, Ph: PhaseCounter, Type: typ, Node: node, Dom: dom, Name: name, Value: v})
}

// Inc adds delta to the named registry counter.
func (t *Tracer) Inc(name string, delta float64) {
	if t == nil {
		return
	}
	t.reg.Inc(name, delta)
}

// Gauge sets the named registry gauge.
func (t *Tracer) Gauge(name string, v float64) {
	if t == nil {
		return
	}
	t.reg.Set(name, v)
}

// Observe adds an observation to the named registry histogram.
func (t *Tracer) Observe(name string, v float64) {
	if t == nil {
		return
	}
	t.reg.Observe(name, v)
}

// Child returns a fresh, empty tracer intended for one parallel trial.
// A nil (disabled) parent returns a nil child, so untraced runs stay
// untraced all the way down. Children are independent single-threaded
// tracers; after the trial completes, hand them back to the parent with
// Splice in trial order.
func (t *Tracer) Child() *Tracer {
	if t == nil {
		return nil
	}
	return NewTracer()
}

// Splice appends each child's records to t in argument order, exactly as
// if every event had been emitted directly on t: sequence numbers are
// re-assigned densely in splice order and span references (Begin's
// self-reference, End's back-reference) are remapped by the same offset,
// so begin/end pairing — and therefore the exporters' byte output — is
// preserved. Child registries merge in the same order: counters add,
// gauges take the later child's value (last-write-wins, as a serial run
// would), histograms append their observations.
//
// This is what keeps the JSONL replay contract byte-identical under
// parallel trial execution: trials record into private children
// concurrently, and the parent splices them back in trial-index order,
// reproducing the emission order of the serial loop. Nil children (from
// a disabled parent, or trials skipped by a panic) are ignored; calling
// Splice on a nil tracer is a no-op.
func (t *Tracer) Splice(children ...*Tracer) {
	if t == nil {
		return
	}
	for _, c := range children {
		if c == nil {
			continue
		}
		off := uint64(len(t.recs))
		for _, r := range c.recs {
			r.Seq += off
			if r.Ph == PhaseBegin || r.Ph == PhaseEnd {
				r.Span += off
			}
			t.recs = append(t.recs, r)
		}
		t.reg.merge(c.reg)
	}
}

// append assigns the next sequence number and stores the record.
func (t *Tracer) append(r Record) uint64 {
	r.Seq = uint64(len(t.recs))
	t.recs = append(t.recs, r)
	return r.Seq
}

// cloneKV copies the caller's attribute list so the variadic slice never
// escapes at call sites (keeping the disabled path allocation-free).
func cloneKV(kv []KV) []KV {
	if len(kv) == 0 {
		return nil
	}
	return append([]KV(nil), kv...)
}
