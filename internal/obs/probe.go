package obs

import (
	"dvc/internal/sim"
)

// KernelProbe periodically samples the simulation kernel — events fired
// so far and current queue depth — into counter tracks and registry
// gauges. The probe schedules ordinary kernel events, so its samples are
// part of the deterministic schedule: two traced runs sample at the same
// instants and record the same values.
type KernelProbe struct {
	k     *sim.Kernel
	t     *Tracer
	every sim.Time
	stop  bool
	timer *sim.Timer
}

// StartKernelProbe begins sampling k into t every interval. A nil tracer
// (or non-positive interval) returns a nil probe — the disabled probe
// schedules nothing, so an untraced run's event schedule is untouched.
func StartKernelProbe(k *sim.Kernel, t *Tracer, every sim.Time) *KernelProbe {
	if t == nil || every <= 0 {
		return nil
	}
	p := &KernelProbe{k: k, t: t, every: every}
	p.timer = sim.NewTimer(k, p.sample)
	p.sample() // an immediate t=now sample, then one per interval
	return p
}

// Stop cancels future samples. Nil-safe.
func (p *KernelProbe) Stop() {
	if p == nil {
		return
	}
	p.stop = true
	p.timer.Stop()
}

func (p *KernelProbe) sample() {
	if p.stop {
		return
	}
	now := p.k.Now()
	fired := float64(p.k.Fired())
	depth := float64(p.k.Pending())
	p.t.Counter(now, EvSimProbe, "", "", "sim.events_fired", fired)
	p.t.Counter(now, EvSimProbe, "", "", "sim.queue_depth", depth)
	p.t.Gauge("sim.events_fired", fired)
	p.t.Gauge("sim.queue_depth", depth)
	p.t.Observe("sim.queue_depth_samples", depth)
	p.t.SampleSeries(now)
	p.timer.Reset(p.every)
}
