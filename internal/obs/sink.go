package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"

	"dvc/internal/metrics"
	"dvc/internal/sim"
)

// Sink consumes trace records in final sequence order. The tracer owns
// sequencing and span pairing; a sink only decides where the records go
// (memory, a streaming writer, a flight-recorder ring) or which subset
// survives (filter/sample). Sinks are single-threaded like the tracer
// that feeds them and must be deterministic: the same record stream must
// produce the same observable output, byte for byte where the output is
// bytes.
//
// Records handed to WriteRecord are owned by the tracer; a sink that
// retains one past the call must copy the Record value (the Attrs slice
// is immutable once emitted, so a shallow copy is sufficient — this is
// what MemorySink and FlightSink do).
type Sink interface {
	WriteRecord(r *Record) error
	// Flush forces buffered output down to the underlying writer. The
	// tracer calls it from Tracer.Flush; sinks without buffering return
	// nil.
	Flush() error
}

// MemorySink buffers every record in memory — the pre-streaming tracer
// behavior, kept as the default because tests and the in-process
// Perfetto exporter need the full record slice.
type MemorySink struct {
	recs []Record
}

// NewMemorySink creates an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// WriteRecord appends a copy of the record.
func (s *MemorySink) WriteRecord(r *Record) error {
	s.recs = append(s.recs, *r)
	return nil
}

// Flush is a no-op.
func (s *MemorySink) Flush() error { return nil }

// Records returns the buffered records in emission order. The slice is
// shared; callers must not mutate it.
func (s *MemorySink) Records() []Record { return s.recs }

// JSONLSink streams records as JSONL through a fixed-size buffer: one
// encoded line per record, flushed whenever the buffer fills. Its output
// is byte-identical to Tracer.WriteJSONL over the same record stream
// (both feed toJSONRecord into an encoding/json Encoder), so switching a
// run from the memory sink to the streaming sink changes peak tracer
// memory from O(records) to O(bufSize) without moving a single output
// byte — the sink-equivalence tests in internal/experiments prove this
// on a full E2 run at several -parallel values.
type JSONLSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// DefaultJSONLBuffer is the streaming sink's buffer size when the caller
// passes bufSize <= 0.
const DefaultJSONLBuffer = 256 << 10

// NewJSONLSink creates a streaming JSONL sink over w with a fixed
// bufSize-byte buffer (<= 0 selects DefaultJSONLBuffer).
func NewJSONLSink(w io.Writer, bufSize int) *JSONLSink {
	if bufSize <= 0 {
		bufSize = DefaultJSONLBuffer
	}
	bw := bufio.NewWriterSize(w, bufSize)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// WriteRecord encodes one record as a JSONL line.
func (s *JSONLSink) WriteRecord(r *Record) error {
	return s.enc.Encode(toJSONRecord(r))
}

// Flush drains the buffer to the underlying writer.
func (s *JSONLSink) Flush() error { return s.bw.Flush() }

// FlightSink is a fixed-size ring buffer holding the most recent
// records — a flight recorder. It costs O(size) memory no matter how
// long the run is; when something goes wrong (a panic, a failed shape
// check) Dump writes the retained window as JSONL so the last moments
// before the failure are inspectable with the same dvctrace tooling as
// a full trace. Dump output is deterministic: it is a pure function of
// the record stream and the ring size.
type FlightSink struct {
	ring  []Record
	total int
}

// NewFlightSink creates a flight recorder retaining the last size
// records (size < 1 is clamped to 1).
func NewFlightSink(size int) *FlightSink {
	if size < 1 {
		size = 1
	}
	return &FlightSink{ring: make([]Record, size)}
}

// WriteRecord stores a copy of the record, evicting the oldest once the
// ring is full.
func (s *FlightSink) WriteRecord(r *Record) error {
	s.ring[s.total%len(s.ring)] = *r
	s.total++
	return nil
}

// Flush is a no-op.
func (s *FlightSink) Flush() error { return nil }

// Total reports how many records passed through the recorder (not how
// many are retained).
func (s *FlightSink) Total() int { return s.total }

// Retained reports how many records the ring currently holds.
func (s *FlightSink) Retained() int {
	if s.total < len(s.ring) {
		return s.total
	}
	return len(s.ring)
}

// Dump writes the retained window, oldest record first, as JSONL.
func (s *FlightSink) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	n := s.Retained()
	start := s.total - n
	for i := 0; i < n; i++ {
		r := &s.ring[(start+i)%len(s.ring)]
		if err := enc.Encode(toJSONRecord(r)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FilterConfig selects a deterministic subset of a record stream. All
// predicates are pure functions of the record itself — matching never
// consults a clock, a random source, or any out-of-band state — so the
// same stream filters to the same subset on every run.
type FilterConfig struct {
	// Types keeps only records whose event type matches one entry
	// exactly, or whose category (the dotted prefix: "lsc" matches
	// "lsc.epoch") matches one entry. Empty keeps every type.
	Types []EventType
	// Nodes keeps only records on the named physical nodes. Empty keeps
	// every node (including site-level records with Node == "").
	Nodes []string
	// Doms keeps only records on the named VM/domain timelines. Empty
	// keeps every domain.
	Doms []string
	// From/To bound the record's virtual timestamp: From <= TS <= To.
	// A zero To means unbounded.
	From, To sim.Time
	// EveryN keeps one instant/counter record in N, keyed on the
	// record's sequence number (Seq%EveryN == 0) — never on a random
	// draw, so sampling is part of the deterministic contract. Span
	// Begin/End records always pass the sampler: dropping one half of a
	// pair would corrupt span pairing downstream. 0 and 1 keep
	// everything.
	EveryN uint64
}

// Match reports whether the record survives the filter.
func (c *FilterConfig) Match(r *Record) bool {
	if len(c.Types) > 0 {
		ok := false
		cat := categoryOf(r.Type)
		for _, t := range c.Types {
			if r.Type == t || cat == string(t) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(c.Nodes) > 0 && !containsString(c.Nodes, r.Node) {
		return false
	}
	if len(c.Doms) > 0 && !containsString(c.Doms, r.Dom) {
		return false
	}
	if r.TS < c.From {
		return false
	}
	if c.To > 0 && r.TS > c.To {
		return false
	}
	if c.EveryN > 1 && (r.Ph == PhaseInstant || r.Ph == PhaseCounter) && r.Seq%c.EveryN != 0 {
		return false
	}
	return true
}

func containsString(set []string, s string) bool {
	for _, v := range set {
		if v == s {
			return true
		}
	}
	return false
}

// FilterSink forwards the records matching cfg to the next sink.
type FilterSink struct {
	cfg  FilterConfig
	next Sink
}

// NewFilterSink wraps next with a deterministic filter/sampler.
func NewFilterSink(next Sink, cfg FilterConfig) *FilterSink {
	return &FilterSink{cfg: cfg, next: next}
}

// WriteRecord forwards matching records.
func (s *FilterSink) WriteRecord(r *Record) error {
	if !s.cfg.Match(r) {
		return nil
	}
	return s.next.WriteRecord(r)
}

// Flush flushes the wrapped sink.
func (s *FilterSink) Flush() error { return s.next.Flush() }

// teeSink fans each record out to several sinks in order.
type teeSink struct {
	sinks []Sink
}

// Tee composes sinks: every record goes to each sink in argument order,
// and Flush flushes them in the same order. A single sink is returned
// unwrapped; zero sinks tee to nothing.
func Tee(sinks ...Sink) Sink {
	if len(sinks) == 1 {
		return sinks[0]
	}
	return &teeSink{sinks: sinks}
}

func (s *teeSink) WriteRecord(r *Record) error {
	for _, next := range s.sinks {
		if err := next.WriteRecord(r); err != nil {
			return err
		}
	}
	return nil
}

func (s *teeSink) Flush() error {
	for _, next := range s.sinks {
		if err := next.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Summary accumulates the streaming per-type record counts and
// per-span-name duration statistics of a trace without retaining the
// records themselves: O(event types + span names + open spans) memory
// for arbitrarily long traces. It backs the run report's trace summary
// and dvctrace's streaming statistics.
type Summary struct {
	total  int
	byType map[EventType]int
	open   map[uint64]sim.Time        // begin seq -> begin TS
	spans  map[string]*metrics.Sample // span name -> durations (seconds)
}

// NewSummary creates an empty trace summary.
func NewSummary() *Summary {
	return &Summary{
		byType: make(map[EventType]int),
		open:   make(map[uint64]sim.Time),
		spans:  make(map[string]*metrics.Sample),
	}
}

// Add folds one record into the summary.
func (s *Summary) Add(r *Record) {
	s.total++
	s.byType[r.Type]++
	switch r.Ph {
	case PhaseBegin:
		s.open[r.Span] = r.TS
	case PhaseEnd:
		if begin, ok := s.open[r.Span]; ok {
			delete(s.open, r.Span)
			name := r.Name
			if name == "" {
				name = string(r.Type)
			}
			sample := s.spans[name]
			if sample == nil {
				sample = &metrics.Sample{}
				s.spans[name] = sample
			}
			sample.AddTime(r.TS - begin)
		}
	}
}

// Total reports how many records were summarised.
func (s *Summary) Total() int { return s.total }

// CountByType returns the record count for one event type.
func (s *Summary) CountByType(t EventType) int { return s.byType[t] }

// Types returns the observed event types in sorted order.
func (s *Summary) Types() []EventType {
	names := make([]string, 0, len(s.byType))
	for t := range s.byType {
		names = append(names, string(t))
	}
	sort.Strings(names)
	out := make([]EventType, len(names))
	for i, n := range names {
		out[i] = EventType(n)
	}
	return out
}

// SpanNames returns the completed span names in sorted order.
func (s *Summary) SpanNames() []string {
	names := make([]string, 0, len(s.spans))
	for n := range s.spans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Spans returns the duration sample for one completed span name (nil
// when absent).
func (s *Summary) Spans(name string) *metrics.Sample { return s.spans[name] }

// summarySpan is the marshalled shape of one span-name entry.
type summarySpan struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_s"`
	P90   float64 `json:"p90_s"`
	P99   float64 `json:"p99_s"`
	Max   float64 `json:"max_s"`
}

// MarshalJSON renders the summary with sorted keys (encoding/json sorts
// map keys, so the bytes are a pure function of the accumulated state).
func (s *Summary) MarshalJSON() ([]byte, error) {
	events := make(map[string]int, len(s.byType))
	for _, t := range s.Types() {
		events[string(t)] = s.byType[t]
	}
	spans := make(map[string]summarySpan, len(s.spans))
	for _, name := range s.SpanNames() {
		d := s.spans[name]
		spans[name] = summarySpan{
			Count: d.N(), P50: d.Percentile(50), P90: d.Percentile(90),
			P99: d.Percentile(99), Max: d.Max(),
		}
	}
	return json.Marshal(struct {
		Records int                    `json:"records"`
		Events  map[string]int         `json:"events"`
		Spans   map[string]summarySpan `json:"spans"`
	}{s.total, events, spans})
}

// SummarySink folds every record into a Summary as it streams past.
type SummarySink struct {
	Summary
}

// NewSummarySink creates a summarising sink.
func NewSummarySink() *SummarySink {
	return &SummarySink{Summary: *NewSummary()}
}

// WriteRecord folds the record into the summary.
func (s *SummarySink) WriteRecord(r *Record) error {
	s.Add(r)
	return nil
}

// Flush is a no-op.
func (s *SummarySink) Flush() error { return nil }
