// Package ckpt models the checkpointing-method taxonomy of the paper's
// §2 — application level, user level (libckpt-style), kernel level
// (CRAK/BLCR-style) and whole-VM (DVC) — so experiment E5 can compare
// "the efficiency of DVC checkpoints vs. application specific checkpoints
// for common applications".
//
// The trade the paper describes is monotone in both directions:
// image size (and hence save/restore time) grows App < User < Kernel < VM,
// while the burden on the programmer shrinks in the same order, with only
// the VM level giving completely transparent *parallel* checkpoints.
package ckpt

import (
	"encoding/gob"
	"fmt"
	"io"

	"dvc/internal/sim"
)

// Method is a checkpointing approach.
type Method int

// The four methods of the paper's taxonomy.
const (
	AppLevel Method = iota
	UserLevel
	KernelLevel
	VMLevel
)

func (m Method) String() string {
	switch m {
	case AppLevel:
		return "application"
	case UserLevel:
		return "user-level"
	case KernelLevel:
		return "kernel-level"
	case VMLevel:
		return "vm-level"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists all methods in increasing-transparency order.
func Methods() []Method { return []Method{AppLevel, UserLevel, KernelLevel, VMLevel} }

// Requirements captures what a method demands of the application and
// system — the transparency axis.
type Requirements struct {
	// SourceChanges: the programmer writes checkpoint code (app level).
	SourceChanges bool
	// Relink: the binary must be linked against a checkpoint library
	// (libckpt, BLCR) and restricted MPI implementations.
	Relink bool
	// KernelModule: a kernel module must be loaded (CRAK, BLCR).
	KernelModule bool
	// TransparentParallel: arbitrary *parallel* jobs checkpoint without
	// any of the above. Only the VM level achieves this (§2.1).
	TransparentParallel bool
	// SavesKernelState: open files, sockets, kernel buffers survive.
	SavesKernelState bool
}

// Requirements returns the method's demands.
func (m Method) Requirements() Requirements {
	switch m {
	case AppLevel:
		return Requirements{SourceChanges: true}
	case UserLevel:
		return Requirements{Relink: true}
	case KernelLevel:
		return Requirements{KernelModule: true, SavesKernelState: true}
	default:
		return Requirements{TransparentParallel: true, SavesKernelState: true}
	}
}

// Footprint describes one process/VM's memory layout, the sizes the four
// methods select between.
type Footprint struct {
	// LiveData is the minimal restart state the application itself would
	// save (for HPL: the remaining matrix panels).
	LiveData int64
	// WorkingSet is the process's touched memory: live data plus heap
	// slack, buffers, stacks.
	WorkingSet int64
	// CodeAndLibs is the text/rodata the user/kernel checkpointers dump.
	CodeAndLibs int64
	// KernelState is in-kernel per-process state (descriptors, socket
	// buffers) a kernel-level checkpoint adds.
	KernelState int64
	// GuestRAM is the VM's total memory — what a whole-VM save writes,
	// regardless of how much of it the application uses.
	GuestRAM int64
}

// DefaultFootprint builds a footprint for an application with the given
// live data on a guest with ramBytes of memory, using 2007-era process
// overheads.
func DefaultFootprint(liveData, ramBytes int64) Footprint {
	return Footprint{
		LiveData:    liveData,
		WorkingSet:  liveData + liveData/8 + 64<<20,
		CodeAndLibs: 48 << 20,
		KernelState: 8 << 20,
		GuestRAM:    ramBytes,
	}
}

// ImageBytes returns the checkpoint image size the method writes.
func (m Method) ImageBytes(fp Footprint) int64 {
	switch m {
	case AppLevel:
		return fp.LiveData
	case UserLevel:
		return fp.WorkingSet + fp.CodeAndLibs
	case KernelLevel:
		return fp.WorkingSet + fp.CodeAndLibs + fp.KernelState
	default:
		return fp.GuestRAM
	}
}

// Estimate is a per-method cost prediction.
type Estimate struct {
	Method      Method
	ImageBytes  int64
	SaveTime    sim.Time
	RestoreTime sim.Time
	Requirements
}

// Estimates computes all four methods' costs for a footprint at the given
// storage bandwidth (bytes/s).
func Estimates(fp Footprint, bw float64) []Estimate {
	out := make([]Estimate, 0, 4)
	for _, m := range Methods() {
		size := m.ImageBytes(fp)
		d := sim.Time(float64(size) / bw * float64(sim.Second))
		out = append(out, Estimate{
			Method:       m,
			ImageBytes:   size,
			SaveTime:     d,
			RestoreTime:  d,
			Requirements: m.Requirements(),
		})
	}
	return out
}

// GobSize measures the actual encoded size of a value — used to ground
// the LiveData estimate in the real application state rather than a
// guess. (Our guest programs are pure data, so this is exactly what an
// application-level checkpointer would write.)
//
// The encoder streams into a counting writer: only the size is wanted,
// so buffering the whole encoding (the pre-rewrite bytes.Buffer) spent
// an allocation proportional to the state being measured on every E5
// probe, for bytes that were thrown away immediately.
func GobSize(v any) (int64, error) {
	var cw countingWriter
	if err := gob.NewEncoder(&cw).Encode(v); err != nil {
		return 0, fmt.Errorf("ckpt: measuring state: %w", err)
	}
	return int64(cw), nil
}

// countingWriter discards bytes and counts them.
type countingWriter int64

var _ io.Writer = (*countingWriter)(nil)

func (w *countingWriter) Write(p []byte) (int, error) {
	*w += countingWriter(len(p))
	return len(p), nil
}
