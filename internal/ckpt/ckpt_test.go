package ckpt

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"

	"dvc/internal/guest"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

func TestSizeOrdering(t *testing.T) {
	fp := DefaultFootprint(100<<20, 1<<30)
	var prev int64 = -1
	for _, m := range Methods() {
		size := m.ImageBytes(fp)
		if size <= prev {
			t.Fatalf("%v image (%d) not larger than previous (%d)", m, size, prev)
		}
		prev = size
	}
}

func TestTransparencyOrdering(t *testing.T) {
	if !AppLevel.Requirements().SourceChanges {
		t.Fatal("app level should need source changes")
	}
	if !UserLevel.Requirements().Relink || UserLevel.Requirements().SourceChanges {
		t.Fatal("user level should need relink only")
	}
	kr := KernelLevel.Requirements()
	if !kr.KernelModule || kr.Relink || kr.SourceChanges {
		t.Fatal("kernel level should need only a kernel module")
	}
	vr := VMLevel.Requirements()
	if vr.SourceChanges || vr.Relink || vr.KernelModule {
		t.Fatal("VM level must be fully transparent")
	}
	if !vr.TransparentParallel {
		t.Fatal("only VM level gives transparent parallel checkpoints")
	}
	for _, m := range []Method{AppLevel, UserLevel, KernelLevel} {
		if m.Requirements().TransparentParallel {
			t.Fatalf("%v should not be transparently parallel", m)
		}
	}
}

func TestKernelStatePreservation(t *testing.T) {
	if AppLevel.Requirements().SavesKernelState || UserLevel.Requirements().SavesKernelState {
		t.Fatal("app/user level cannot save kernel state")
	}
	if !KernelLevel.Requirements().SavesKernelState || !VMLevel.Requirements().SavesKernelState {
		t.Fatal("kernel/VM level must save kernel state")
	}
}

func TestVMLevelSizeIsRAMNotWorkingSet(t *testing.T) {
	small := DefaultFootprint(1<<20, 2<<30) // tiny app, 2GiB guest
	if VMLevel.ImageBytes(small) != 2<<30 {
		t.Fatal("VM image must be whole guest RAM")
	}
	// The paper's point: VM checkpoints pay for unused memory.
	if VMLevel.ImageBytes(small) < 100*AppLevel.ImageBytes(small) {
		t.Fatal("tiny app in big VM should show >100x size gap")
	}
}

func TestEstimatesTimesScaleWithSize(t *testing.T) {
	fp := DefaultFootprint(200<<20, 1<<30)
	ests := Estimates(fp, 60e6)
	if len(ests) != 4 {
		t.Fatalf("got %d estimates", len(ests))
	}
	for i := 1; i < len(ests); i++ {
		if ests[i].SaveTime <= ests[i-1].SaveTime {
			t.Fatalf("save time not increasing: %v then %v", ests[i-1], ests[i])
		}
	}
	// 1GiB at 60MB/s ≈ 17.9s for the VM level.
	vm := ests[3]
	if vm.SaveTime < 15*sim.Second || vm.SaveTime > 20*sim.Second {
		t.Fatalf("VM save time %v, want ~18s", vm.SaveTime)
	}
	if vm.RestoreTime != vm.SaveTime {
		t.Fatal("restore should match save at symmetric bandwidth")
	}
}

func TestGobSizeMeasuresRealState(t *testing.T) {
	type appState struct {
		Matrix []float64
		K      int
	}
	fill := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = 1.1 * float64(i+1)
		}
		return v
	}
	small, err := GobSize(&appState{Matrix: fill(100)})
	if err != nil {
		t.Fatal(err)
	}
	big, err := GobSize(&appState{Matrix: fill(100000)})
	if err != nil {
		t.Fatal(err)
	}
	if big <= small || big < 700000 {
		t.Fatalf("gob sizes implausible: small=%d big=%d", small, big)
	}
}

func TestMethodStrings(t *testing.T) {
	want := map[Method]string{
		AppLevel: "application", UserLevel: "user-level",
		KernelLevel: "kernel-level", VMLevel: "vm-level",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("%d.String() = %q", int(m), m.String())
		}
	}
}

// Property: for any footprint, image sizes are monotone across methods
// and every size is at least the live data.
func TestPropertySizeMonotone(t *testing.T) {
	f := func(liveMB uint16, slackMB uint16) bool {
		live := int64(liveMB) << 20
		// A guest always has more RAM than the kernel-level image it
		// would hold (the app plus code plus kernel state must fit).
		ram := live + live/8 + (121 << 20) + int64(slackMB)<<20
		fp := DefaultFootprint(live, ram)
		prev := int64(-1)
		for _, m := range Methods() {
			s := m.ImageBytes(fp)
			if s < live || s <= prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGobSizeMatchesEncodedLength pins the counting-writer rewrite of
// GobSize to the buffered encoder it replaced: the size it reports must
// be exactly the length of the real encoded stream. A guest snapshot —
// the most structurally involved gob value in the tree — is used as the
// probe. (It used to compare against guest.EncodeImage, which was a
// single gob stream at the time; the image format is now sectioned —
// several independent gob streams plus a trailer — so the reference is
// a direct buffered encode of the same value, which is exactly what
// GobSize's counting writer replaced.)
func TestGobSizeMatchesEncodedLength(t *testing.T) {
	snap := &guest.Snapshot{
		NextPID: 7,
		FDs:     map[int]tcp.ConnKey{3: {}},
		NextFD:  4,
		Accepts: map[uint16][]tcp.ConnKey{80: nil},
		Listens: []uint16{80},
		Jiffies: 12345,
		Stack:   &tcp.StackSnapshot{NextPort: 40000},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	size, err := GobSize(snap)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(buf.Len()) {
		t.Fatalf("GobSize=%d, encoded stream is %d bytes", size, buf.Len())
	}
}
