package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"dvc/internal/analysis"
	"dvc/internal/analysis/analysistest"
)

// Each analyzer is exercised against a fixture package with both positive
// (// want) and negative cases, including the //lint:allow escape hatch.

func TestNoWallClock(t *testing.T)   { analysistest.Run(t, analysis.NoWallClock, "nowallclock") }
func TestNoGlobalRand(t *testing.T)  { analysistest.Run(t, analysis.NoGlobalRand, "noglobalrand") }
func TestMapIter(t *testing.T)       { analysistest.Run(t, analysis.MapIter, "mapiter") }
func TestNoConcurrency(t *testing.T) { analysistest.Run(t, analysis.NoConcurrency, "noconcurrency") }
func TestGobSafe(t *testing.T)       { analysistest.Run(t, analysis.GobSafe, "gobsafe") }

// The dvclint v2 analyzers: whole-type-graph reachability, hot-path
// allocation, and fleet capture scope.

func TestSnapshotState(t *testing.T) { analysistest.Run(t, analysis.SnapshotState, "snapshotstate") }
func TestNoAlloc(t *testing.T)       { analysistest.Run(t, analysis.NoAlloc, "noalloc") }
func TestFleetScope(t *testing.T)    { analysistest.Run(t, analysis.FleetScope, "fleetscope") }

// TestSnapshotStateCatchesWhatGobsafeMisses is the ISSUE's acceptance
// proof that the closure view strictly extends the call-site view: in
// the gobgap fixture the only gob call encodes `any`, so gobsafe sees
// nothing, while snapshotstate reaches the nested unexported field from
// the declared root.
func TestSnapshotStateCatchesWhatGobsafeMisses(t *testing.T) {
	pkg := analysistest.Load(t, "gobgap")
	gob, err := analysis.Run(pkg, []*analysis.Analyzer{analysis.GobSafe})
	if err != nil {
		t.Fatal(err)
	}
	if len(gob) != 0 {
		t.Fatalf("gobsafe unexpectedly found %d diagnostic(s) in gobgap: %v", len(gob), gob)
	}
	snap, err := analysis.Run(pkg, []*analysis.Analyzer{analysis.SnapshotState})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("snapshotstate found nothing in gobgap; the closure must reach Header.dirty")
	}
	found := false
	for _, d := range snap {
		if strings.Contains(d.Message, "Header.dirty") {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshotstate diagnostics do not mention Header.dirty: %v", snap)
	}
}

func TestByName(t *testing.T) {
	for _, a := range analysis.All() {
		if analysis.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if analysis.ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func TestAllCount(t *testing.T) {
	if got := len(analysis.All()); got != 8 {
		t.Errorf("suite has %d analyzers, want 8 (five v1 checks plus snapshotstate, noalloc, fleetscope)", got)
	}
}

func TestScoping(t *testing.T) {
	if !analysis.IsSimPackage("dvc/internal/sim") {
		t.Error("internal/sim must be a sim package")
	}
	if analysis.IsSimPackage("dvc/cmd/dvcsim") {
		t.Error("cmd/ must not be a sim package (wall-clock allowlist)")
	}
	if analysis.IsSimPackage("dvc/internal/fleet") {
		t.Error("internal/fleet is the sanctioned concurrency package and must not be a sim package (see simPackages in rules.go)")
	}
	if got := len(analysis.AnalyzersFor("dvc/internal/core")); got != 8 {
		t.Errorf("sim packages get all 8 analyzers, got %d", got)
	}
	if got := len(analysis.AnalyzersFor("dvc/cmd/dvctrace")); got != 6 {
		t.Errorf("cmd packages get 6 analyzers, got %d", got)
	}
	if !analysis.InModule("dvc") || !analysis.InModule("dvc/internal/sim") || analysis.InModule("fmt") {
		t.Error("InModule misclassifies")
	}
}

// loadSource type-checks an in-memory file as package "p" with no
// imports, for directive-mechanics tests that don't need a fixture
// directory.
func loadSource(t *testing.T, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	var conf types.Config
	files := []*ast.File{f}
	tpkg, err := conf.Check("p", fset, files, info)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Package{PkgPath: "p", Fset: fset, Files: files, Types: tpkg, Info: info}
}

// TestAllowRequiresJustification pins the directive-parser contract from
// the ISSUE: a //lint:allow with no <why> text does not suppress and is
// itself reported, a justified one suppresses, and a justified one that
// suppresses nothing is reported stale.
func TestAllowRequiresJustification(t *testing.T) {
	const src = `package p

//dvc:hotpath
func unjustified(b []byte) []byte {
	//lint:allow noalloc
	return append(b, 1)
}

//dvc:hotpath
func justified(b []byte) []byte {
	//lint:allow noalloc amortized growth, measured in the slab benchmark
	return append(b, 2)
}

//dvc:hotpath
func stale(n int) int {
	//lint:allow noalloc nothing on this line allocates
	return n + 1
}

func unknown(n int) int {
	//lint:allow nosuchanalyzer it does not exist
	return n
}
`
	pkg := loadSource(t, src)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{analysis.NoAlloc})
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := map[string][]string{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d.Message+" @"+pos.String())
	}
	// The unjustified allow must not suppress: exactly one noalloc
	// finding survives (justified's append is suppressed).
	if got := len(byAnalyzer["noalloc"]); got != 1 {
		t.Fatalf("noalloc findings = %d, want 1 (unjustified allow must not suppress)\nall: %v", got, byAnalyzer)
	}
	if !strings.Contains(byAnalyzer["noalloc"][0], "append") {
		t.Fatalf("surviving noalloc finding = %v", byAnalyzer["noalloc"])
	}
	// Directive vetting: missing justification, stale, unknown name.
	joined := strings.Join(byAnalyzer[analysis.DirectiveAnalyzer], "\n")
	for _, want := range []string{"no justification", "stale suppression", "unknown analyzer"} {
		if !strings.Contains(joined, want) {
			t.Errorf("lintdirective diagnostics missing %q:\n%s", want, joined)
		}
	}
	if got := len(byAnalyzer[analysis.DirectiveAnalyzer]); got != 3 {
		t.Errorf("lintdirective findings = %d, want 3:\n%s", got, joined)
	}
}
