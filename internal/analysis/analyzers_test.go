package analysis_test

import (
	"testing"

	"dvc/internal/analysis"
	"dvc/internal/analysis/analysistest"
)

// Each analyzer is exercised against a fixture package with both positive
// (// want) and negative cases, including the //lint:allow escape hatch.

func TestNoWallClock(t *testing.T)   { analysistest.Run(t, analysis.NoWallClock, "nowallclock") }
func TestNoGlobalRand(t *testing.T)  { analysistest.Run(t, analysis.NoGlobalRand, "noglobalrand") }
func TestMapIter(t *testing.T)       { analysistest.Run(t, analysis.MapIter, "mapiter") }
func TestNoConcurrency(t *testing.T) { analysistest.Run(t, analysis.NoConcurrency, "noconcurrency") }
func TestGobSafe(t *testing.T)       { analysistest.Run(t, analysis.GobSafe, "gobsafe") }

func TestByName(t *testing.T) {
	for _, a := range analysis.All() {
		if analysis.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if analysis.ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func TestScoping(t *testing.T) {
	if !analysis.IsSimPackage("dvc/internal/sim") {
		t.Error("internal/sim must be a sim package")
	}
	if analysis.IsSimPackage("dvc/cmd/dvcsim") {
		t.Error("cmd/ must not be a sim package (wall-clock allowlist)")
	}
	if analysis.IsSimPackage("dvc/internal/fleet") {
		t.Error("internal/fleet is the sanctioned concurrency package and must not be a sim package (see simPackages in rules.go)")
	}
	if got := len(analysis.AnalyzersFor("dvc/internal/core")); got != 5 {
		t.Errorf("sim packages get all 5 analyzers, got %d", got)
	}
	if got := len(analysis.AnalyzersFor("dvc/cmd/dvctrace")); got != 3 {
		t.Errorf("cmd packages get 3 analyzers, got %d", got)
	}
	if !analysis.InModule("dvc") || !analysis.InModule("dvc/internal/sim") || analysis.InModule("fmt") {
		t.Error("InModule misclassifies")
	}
}
