package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc is the hot-path allocation analyzer. Functions marked
//
//	//dvc:hotpath
//
// are the zero-allocation paths PR 4/5 carved out (the kernel's slab and
// timer heap, the payload writer, the TCP rings, netsim delivery). The
// runtime gates (testing.AllocsPerObject-style benchmarks) catch a
// regression only on the inputs a benchmark happens to exercise; this
// analyzer flags the allocating constructs themselves, at the line that
// introduces them:
//
//   - function literals that capture variables (the captures force a
//     heap-allocated closure environment)
//   - method value expressions (x.M used as a value allocates a bound
//     closure)
//   - fmt.* calls (every fmt call allocates for its variadic boxing and
//     formatting state)
//   - append (growth reallocates; amortized-growth sites carry a
//     //lint:allow with the reasoning)
//   - make / new (always suspicious in a hot path; doubly so inside a
//     loop, which the message calls out)
//   - composite literals whose address escapes via &T{...}
//   - interface boxing: a concrete, non-pointer-shaped value converted
//     to an interface (argument, assignment, return or explicit
//     conversion) allocates unless the escape analyzer saves it
//
// Arguments of panic(...) calls are exempt: a panicking hot path is
// already off the fast path, and the alternative (pre-formatting every
// assertion message) would be worse.
//
// The check is intra-procedural and conservative in the "flag it and
// make the author justify it" direction: some flagged sites do not
// escape and cost nothing, and the sanctioned ones carry a justified
// //lint:allow so the next reader sees the reasoning.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "flag allocating constructs (closures, boxing, fmt, append, make) " +
		"inside functions marked //dvc:hotpath",
	Run: runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, HotPathDirective) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

// checkHotFunc walks one //dvc:hotpath function body.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Collect the source ranges of panic(...) arguments first; anything
	// inside them is cold-path and exempt from every check below.
	type span struct{ lo, hi token.Pos }
	var cold []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || builtinName(info, call) != "panic" {
			return true
		}
		for _, arg := range call.Args {
			cold = append(cold, span{arg.Pos(), arg.End()})
		}
		return true
	})
	isCold := func(pos token.Pos) bool {
		for _, s := range cold {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}

	// Track loop nesting so make/new inside a loop gets the sharper
	// message, and record which function literals sit where so capture
	// analysis can tell "declared in fd but outside the literal".
	var loopDepth func(pos token.Pos) int
	{
		var loops []span
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, span{n.Body.Pos(), n.Body.End()})
			case *ast.RangeStmt:
				loops = append(loops, span{n.Body.Pos(), n.Body.End()})
			}
			return true
		})
		loopDepth = func(pos token.Pos) int {
			d := 0
			for _, s := range loops {
				if s.lo <= pos && pos < s.hi {
					d++
				}
			}
			return d
		}
	}

	// reportedFmt remembers fmt call expressions already flagged, so the
	// interface-boxing check does not pile a second diagnostic onto each
	// variadic argument of an already-flagged fmt call. callees remembers
	// call-expression callees: a called selector x.M() has Selection kind
	// MethodVal too, and only the uncalled form allocates a bound closure.
	reportedCalls := make(map[*ast.CallExpr]bool)
	callees := make(map[ast.Expr]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if isCold(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if caps := captures(info, fd, n); len(caps) > 0 {
				pass.Reportf(n.Pos(), "hot path %s: function literal captures %s, forcing a heap-allocated closure (pass state explicitly or hoist the literal)",
					fd.Name.Name, joinNames(caps))
			}
			return false // the literal's own body is not the hot path
		case *ast.CallExpr:
			callees[ast.Unparen(n.Fun)] = true
			if isConversion(info, n) {
				if tv, ok := info.Types[n.Fun]; ok {
					for _, arg := range n.Args {
						reportBoxed(pass, fd, arg, tv.Type)
					}
				}
				return true
			}
			if verb := builtinName(info, n); verb != "" {
				switch verb {
				case "append":
					pass.Reportf(n.Pos(), "hot path %s: append may grow and reallocate; pre-size the slice or justify amortized growth with //lint:allow",
						fd.Name.Name)
				case "make", "new":
					if loopDepth(n.Pos()) > 0 {
						pass.Reportf(n.Pos(), "hot path %s: %s inside a loop allocates on every iteration; hoist it or reuse a pooled buffer",
							fd.Name.Name, verb)
					} else {
						pass.Reportf(n.Pos(), "hot path %s: %s allocates; reuse a pooled or pre-sized buffer",
							fd.Name.Name, verb)
					}
				}
				// No boxing check on builtin calls: panic's any parameter
				// is cold by definition and the rest do not box.
				return true
			}
			if name, ok := pkgObject(info, n.Fun, "fmt"); ok {
				pass.Reportf(n.Pos(), "hot path %s: fmt.%s allocates for formatting and variadic boxing; precompute the string or move it off the hot path",
					fd.Name.Name, name)
				reportedCalls[n] = true
				return true
			}
			if !reportedCalls[n] {
				checkCallBoxing(pass, fd, n)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path %s: &composite literal escapes to the heap; reuse a pooled object",
						fd.Name.Name)
				}
			}
		case *ast.SelectorExpr:
			if !callees[n] && isMethodValue(info, n) {
				pass.Reportf(n.Pos(), "hot path %s: method value %s.%s allocates a bound closure; mint it once at setup time",
					fd.Name.Name, exprText(n.X), n.Sel.Name)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break
				}
				lt := info.TypeOf(n.Lhs[i])
				reportBoxed(pass, fd, rhs, lt)
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				lt := info.TypeOf(n.Type)
				for _, v := range n.Values {
					reportBoxed(pass, fd, v, lt)
				}
			}
		case *ast.ReturnStmt:
			sig, _ := info.Defs[fd.Name].Type().(*types.Signature)
			if sig == nil || sig.Results() == nil || len(n.Results) != sig.Results().Len() {
				break
			}
			for i, r := range n.Results {
				reportBoxed(pass, fd, r, sig.Results().At(i).Type())
			}
		}
		return true
	})
}

// checkCallBoxing flags concrete values boxed into interface parameters
// of an ordinary call.
func checkCallBoxing(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // []T passed whole, no boxing
			} else if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		reportBoxed(pass, fd, arg, pt)
	}
}

// reportBoxed flags expr when assigning it to an interface-typed slot
// would box a concrete, non-pointer-shaped value.
func reportBoxed(pass *Pass, fd *ast.FuncDecl, expr ast.Expr, to types.Type) {
	if to == nil {
		return
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return
	}
	from := pass.TypesInfo.TypeOf(expr)
	if from == nil {
		return
	}
	if b, ok := from.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if _, ok := from.Underlying().(*types.Interface); ok {
		return // interface-to-interface, no new box
	}
	if pointerShaped(from) {
		return
	}
	pass.Reportf(expr.Pos(), "hot path %s: %s boxed into %s allocates; pass a pointer or avoid the interface on this path",
		fd.Name.Name, from.String(), to.String())
}

// pointerShaped reports whether values of t fit in an interface word
// without allocating a box.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// captures returns the names of variables a function literal closes
// over: identifiers inside lit resolving to variables declared inside
// the enclosing function but outside the literal. Package-level
// variables and struct fields do not force a closure environment.
func captures(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := make(map[*types.Var]bool)
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		pos := v.Pos()
		inEnclosing := enclosing.Pos() <= pos && pos < enclosing.End()
		inLit := lit.Pos() <= pos && pos < lit.End()
		if inEnclosing && !inLit {
			seen[v] = true
			out = append(out, v.Name())
		}
		return true
	})
	return out
}

// isMethodValue reports whether sel is a method value expression
// (x.M referenced as a value, not called).
func isMethodValue(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	}
	return "value"
}
