// Package loader turns Go package patterns into type-checked
// analysis.Packages without any dependency outside the standard library.
//
// The usual way to drive analyzers is golang.org/x/tools/go/packages;
// this module is deliberately dependency-free, so the loader re-creates
// the essential subset: it shells out to `go list -deps -export -json`,
// which both describes the package graph and compiles export data for
// every dependency into the build cache, then parses the target packages
// from source and type-checks them with go/types, resolving imports
// through the export data via go/importer's lookup hook.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"dvc/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (in dir), type-checks the
// non-dependency ones from source, and returns them in a deterministic
// (import-path sorted by `go list`) order.
func Load(dir string, patterns ...string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	// The gc importer resolves every import through the export data that
	// `go list -export` just wrote into the build cache.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q (not a dependency of the lint targets?)", path)
		}
		return os.Open(file)
	})

	var out []*analysis.Package
	for _, p := range targets {
		pkg, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList runs `go list -deps -export -json` and splits the result into
// the target packages (named by the patterns) and an export-data index
// covering the whole dependency graph.
func goList(dir string, patterns []string) ([]*listPackage, map[string]string, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var targets []*listPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pp := p
			targets = append(targets, &pp)
		}
	}
	return targets, exports, nil
}

// typeCheck parses a package's (non-test) files and runs go/types over
// them.
func typeCheck(fset *token.FileSet, imp types.Importer, p *listPackage) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) {}, // collect via the returned error below
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &analysis.Package{
		PkgPath: p.ImportPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// ModuleRoot locates the directory containing go.mod starting from dir,
// so dvclint and tests can run `go list` from the module root regardless
// of the working directory.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module (go env GOMOD is empty)")
	}
	return filepath.Dir(gomod), nil
}
