package loader_test

import (
	"fmt"
	"testing"

	"dvc/internal/analysis"
	"dvc/internal/analysis/loader"
)

// TestLoadSimPackage proves the go-list/export-data pipeline produces a
// fully type-checked package.
func TestLoadSimPackage(t *testing.T) {
	root, err := loader.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(root, "dvc/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "dvc/internal/sim" {
		t.Fatalf("want exactly dvc/internal/sim, got %v", pkgs)
	}
	pkg := pkgs[0]
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Kernel") == nil {
		t.Fatal("type information missing: sim.Kernel not found in package scope")
	}
	if len(pkg.Files) == 0 || len(pkg.Info.Uses) == 0 {
		t.Fatal("parsed files or Uses map empty")
	}
}

// TestRepoIsLintClean is the acceptance gate: `go run ./cmd/dvclint ./...`
// must exit 0, and running it as part of `go test ./...` keeps every
// future PR honest without needing a separate CI step to catch drift.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	root, err := loader.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected the whole module (>20 packages), got %d", len(pkgs))
	}
	clean := true
	for _, pkg := range pkgs {
		if !analysis.InModule(pkg.PkgPath) {
			continue
		}
		diags, err := analysis.Run(pkg, analysis.AnalyzersFor(pkg.PkgPath))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			clean = false
			t.Errorf("%s: %s (%s)", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if clean {
		fmt.Println("dvclint: module is clean")
	}
}
