// Package analysis is dvclint's determinism lint suite for the DVC
// reproduction.
//
// The simulation kernel (internal/sim) promises that a run with a fixed
// seed is reproducible bit for bit. That promise is only as strong as the
// conventions the rest of the tree follows: virtual time instead of the
// host clock, explicit *rand.Rand plumbing instead of the global source,
// sorted map iteration wherever order can leak into event scheduling or
// output, no hidden concurrency inside the deterministic core, and
// gob-safe checkpoint state. This package turns each convention into a
// static analyzer:
//
//	nowallclock   - no time.Now/Sleep/After/... inside simulation packages
//	noglobalrand  - no package-level math/rand (rand.Intn, rand.Seed, ...)
//	mapiter       - no effectful iteration over maps in unspecified order
//	noconcurrency - no goroutines/channels/sync in the deterministic core
//	gobsafe       - no silently-dropped or unencodable checkpoint fields
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic, analysistest-style fixtures) but is
// self-contained on the standard library so the module stays
// dependency-free. Type information comes from go/types; package loading
// (cmd/dvclint, internal/analysis/loader) resolves imports through the
// build cache's export data via `go list -export`.
//
// # Suppression
//
// A finding can be waived with a justification comment on the flagged
// line or the line immediately above it:
//
//	//lint:allow <analyzer>[,<analyzer>...] <why this is safe>
//
// Suppressions are meant to be rare and auditable; grep for lint:allow.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors the x/tools analysis.Analyzer
// shape so the checks could be ported onto the real driver verbatim if
// the dependency ever becomes available.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the check over a single package and reports findings
	// through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer

	// PkgPath is the package's import path (e.g. "dvc/internal/sim").
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	// TypesInfo has Types, Defs, Uses and Selections populated.
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package bundles the inputs shared by every analyzer run over one
// package. Loaders (internal/analysis/loader, analysistest) construct it.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// NewInfo returns a types.Info with all the maps analyzers rely on
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run executes the analyzers over the package, filters findings through
// the //lint:allow directives found in the sources, deduplicates, and
// returns the surviving diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			PkgPath:   pkg.PkgPath,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	allows := collectAllows(pkg.Fset, pkg.Files)
	out := diags[:0]
	seen := make(map[string]bool)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if allows.allowed(d.Analyzer, pos) {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s:%s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// allowSet records, per file and line, which analyzers have been waived.
type allowSet map[string]map[int]map[string]bool // file -> line -> analyzer

// AllowDirective is the comment prefix of a suppression.
const AllowDirective = "lint:allow"

func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowDirective))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					set[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					byLine[pos.Line] = names
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						names[name] = true
					}
				}
			}
		}
	}
	return set
}

// allowed reports whether a diagnostic from the named analyzer at pos is
// suppressed: an allow directive counts when it sits on the same line
// (trailing comment) or on the line immediately above the finding.
func (s allowSet) allowed(analyzer string, pos token.Position) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := byLine[line]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// --- shared helpers used by several analyzers ---

// pkgFunc reports whether expr is a direct reference to a package-level
// function or other object of the package with the given import path
// (e.g. time.Now, rand.Intn), returning its name.
func pkgObject(info *types.Info, expr ast.Expr, pkgPath string) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// isConversion reports whether call is a type conversion rather than a
// function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the name of the builtin being called ("append",
// "len", ...) or "" if the callee is not a builtin.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}
