// Package analysis is dvclint's determinism lint suite for the DVC
// reproduction.
//
// The simulation kernel (internal/sim) promises that a run with a fixed
// seed is reproducible bit for bit. That promise is only as strong as the
// conventions the rest of the tree follows: virtual time instead of the
// host clock, explicit *rand.Rand plumbing instead of the global source,
// sorted map iteration wherever order can leak into event scheduling or
// output, no hidden concurrency inside the deterministic core, and
// gob-safe checkpoint state. This package turns each convention into a
// static analyzer:
//
//	nowallclock   - no time.Now/Sleep/After/... inside simulation packages
//	noglobalrand  - no package-level math/rand (rand.Intn, rand.Seed, ...)
//	mapiter       - no effectful iteration over maps in unspecified order
//	noconcurrency - no goroutines/channels/sync in the deterministic core
//	gobsafe       - no silently-dropped or unencodable checkpoint fields
//	snapshotstate - whole-graph reachability from //dvc:checkpoint-root
//	                types and gob.Register payloads; also generates the
//	                committed STATE_MANIFEST.txt golden file
//	noalloc       - no allocating constructs in //dvc:hotpath functions
//	fleetscope    - fleet worker closures must not capture kernel state
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic, analysistest-style fixtures) but is
// self-contained on the standard library so the module stays
// dependency-free. Type information comes from go/types; package loading
// (cmd/dvclint, internal/analysis/loader) resolves imports through the
// build cache's export data via `go list -export`.
//
// # Suppression
//
// A finding can be waived with a justification comment on the flagged
// line or the line immediately above it:
//
//	//lint:allow <analyzer>[,<analyzer>...] <why this is safe>
//
// The <why> text is mandatory: an unjustified directive does not suppress
// and is itself reported, as are directives naming unknown analyzers and
// stale directives that no longer suppress anything (all under the
// pseudo-analyzer "lintdirective"). Suppressions are meant to be rare and
// auditable; grep for lint:allow.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors the x/tools analysis.Analyzer
// shape so the checks could be ported onto the real driver verbatim if
// the dependency ever becomes available.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the check over a single package and reports findings
	// through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer

	// PkgPath is the package's import path (e.g. "dvc/internal/sim").
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	// TypesInfo has Types, Defs, Uses and Selections populated.
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package bundles the inputs shared by every analyzer run over one
// package. Loaders (internal/analysis/loader, analysistest) construct it.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// NewInfo returns a types.Info with all the maps analyzers rely on
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run executes the analyzers over the package, filters findings through
// the //lint:allow directives found in the sources, deduplicates, and
// returns the surviving diagnostics sorted by position.
//
// The directives themselves are vetted too, under the pseudo-analyzer
// name DirectiveAnalyzer: a suppression without a justification does not
// suppress and is reported, as is one naming an unknown analyzer, and a
// justified suppression that suppressed nothing (relative to the
// analyzers that actually ran) is reported as stale.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			PkgPath:   pkg.PkgPath,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	allows := collectAllows(pkg.Fset, pkg.Files)
	out := diags[:0]
	seen := make(map[string]bool)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if allows.allowed(d.Analyzer, pos) {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s:%s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	out = append(out, allows.vet(ran)...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos       token.Pos
	names     []string // analyzer names (or "all")
	justified bool     // non-empty <why> text followed the names
	used      bool     // suppressed at least one diagnostic this run
}

// allowSet indexes the directives by file and line for suppression
// lookup, keeping the full list for directive vetting.
type allowSet struct {
	byLine map[string]map[int][]*allowDirective
	list   []*allowDirective
}

// AllowDirective is the comment prefix of a suppression.
const AllowDirective = "lint:allow"

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed,
// unknown-name and stale //lint:allow directives are reported. It is not
// itself suppressible: the directive checks exist to keep the
// suppression inventory auditable.
const DirectiveAnalyzer = "lintdirective"

func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	set := &allowSet{byLine: make(map[string]map[int][]*allowDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowDirective))
				fields := strings.Fields(rest)
				d := &allowDirective{pos: c.Pos(), justified: len(fields) >= 2}
				if len(fields) > 0 {
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							d.names = append(d.names, name)
						}
					}
				}
				set.list = append(set.list, d)
				pos := fset.Position(c.Pos())
				byLine := set.byLine[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*allowDirective)
					set.byLine[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return set
}

// allowed reports whether a diagnostic from the named analyzer at pos is
// suppressed: a justified allow directive counts when it sits on the
// same line (trailing comment) or on the line immediately above the
// finding. An unjustified directive never suppresses.
func (s *allowSet) allowed(analyzer string, pos token.Position) bool {
	byLine := s.byLine[pos.Filename]
	if byLine == nil {
		return false
	}
	ok := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if !d.justified {
				continue
			}
			for _, name := range d.names {
				if name == analyzer || name == "all" {
					d.used = true
					ok = true
				}
			}
		}
	}
	return ok
}

// vet turns directive problems into diagnostics: missing justification,
// unknown analyzer names, and justified suppressions that suppressed
// nothing (judged only against the analyzers that ran, so a partial
// -run invocation never misreports staleness).
func (s *allowSet) vet(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{Pos: pos, Analyzer: DirectiveAnalyzer, Message: fmt.Sprintf(format, args...)})
	}
	for _, d := range s.list {
		if len(d.names) == 0 {
			report(d.pos, "malformed suppression: //lint:allow needs an analyzer list and a justification (//lint:allow <analyzer>[,<analyzer>] <why this is safe>)")
			continue
		}
		for _, name := range d.names {
			if name != "all" && ByName(name) == nil {
				report(d.pos, "suppression names unknown analyzer %q (run dvclint -list for the suite)", name)
			}
		}
		if !d.justified {
			report(d.pos, "suppression of %s has no justification: every //lint:allow must say why the pattern is safe (//lint:allow %s <why>)",
				strings.Join(d.names, ","), strings.Join(d.names, ","))
			continue
		}
		if d.used {
			continue
		}
		// Stale only when every named analyzer actually ran. An "all"
		// directive is never judged: any analyzer outside this run could
		// be its reason for existing (one more reason to prefer naming
		// analyzers explicitly).
		judgeable := true
		for _, name := range d.names {
			if name == "all" || !ran[name] {
				judgeable = false
			}
		}
		if judgeable {
			report(d.pos, "stale suppression: //lint:allow %s matches no finding on this line; delete it",
				strings.Join(d.names, ","))
		}
	}
	return out
}

// --- shared helpers used by several analyzers ---

// pkgFunc reports whether expr is a direct reference to a package-level
// function or other object of the package with the given import path
// (e.g. time.Now, rand.Intn), returning its name.
func pkgObject(info *types.Info, expr ast.Expr, pkgPath string) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// isConversion reports whether call is a type conversion rather than a
// function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the name of the builtin being called ("append",
// "len", ...) or "" if the callee is not a builtin.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}
