package analysis

import (
	"go/ast"
	"strings"
)

// Source directives recognised by the suite. They use the standard Go
// tool-directive shape (no space after //, tool:name), so gofmt leaves
// them alone and they never render as doc text.
const (
	// HotPathDirective marks a function as part of a zero-allocation hot
	// path. The noalloc analyzer flags allocating constructs inside it:
	//
	//	//dvc:hotpath
	//	func (k *Kernel) Step() bool { ... }
	HotPathDirective = "dvc:hotpath"

	// CheckpointRootDirective marks a type as a checkpoint root: the
	// snapshotstate analyzer computes the full reachability closure of
	// its field graph and holds every reachable field to the gob
	// round-trip rules, and the driver emits the closure as
	// STATE_MANIFEST.txt:
	//
	//	//dvc:checkpoint-root
	//	type Snapshot struct { ... }
	CheckpointRootDirective = "dvc:checkpoint-root"
)

// hasDirective reports whether the comment group contains the directive
// as its own line (`//dvc:hotpath`, optionally followed by free text
// after a space).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}
