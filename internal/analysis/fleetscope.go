package analysis

import (
	"go/ast"
	"go/types"
)

// FleetScope verifies the fleet concurrency sanction structurally.
// internal/fleet is the one package allowed to use goroutines (trials
// are embarrassingly parallel and each worker owns its trial's entire
// simulation world), and until now the rule "kernels never cross
// goroutines" lived in a comment in rules.go. This analyzer checks it:
// a function literal passed to a fleet entry point (fleet.Map,
// fleet.ForEach, or the experiments wrapper forEachTrial) must not
// capture a variable whose type reaches simulation kernel state —
// sim.Kernel, sim.Timer, or math/rand.Rand, directly or through struct
// fields, pointers, slices, arrays or maps.
//
// Capturing such a variable means every worker goroutine shares one
// kernel or one RNG stream: the trials race, and worse, the interleaving
// silently reorders rand draws and event scheduling, destroying the
// bit-for-bit reproducibility the fixed seed promises. The correct shape
// — construct the whole world inside the closure, per trial — captures
// only configuration (options, specs, tracers), which this analyzer
// leaves alone.
//
// Method values passed as the worker function are held to the same
// rule via their receiver.
var FleetScope = &Analyzer{
	Name: "fleetscope",
	Doc: "closures passed to fleet.Map/ForEach must not capture kernel " +
		"state (sim.Kernel, sim.Timer, *rand.Rand) across goroutines",
	Run: runFleetScope,
}

// fleetEntryPoints maps package path -> function names whose func-typed
// arguments run on worker goroutines. An empty set means every function
// in the package is an entry point.
// Partition.Send is deliberately NOT an entry point: its closure runs on
// the destination partition's goroutine and legitimately captures the
// destination's state (that is the message's whole job); the exchange
// protocol, not capture analysis, is what orders it.
var fleetEntryPoints = map[string]map[string]bool{
	"dvc/internal/fleet":         nil, // every exported func fans out
	"dvc/internal/experiments":   {"forEachTrial": true},
	"dvc/internal/sim/partition": {"Run": true}, // drivers run on partition goroutines
}

func runFleetScope(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		// Map each FuncLit to its enclosing FuncDecl so capture analysis
		// knows where "outside the closure" begins.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || isConversion(info, call) || !isFleetEntryPoint(info, call) {
					return true
				}
				for _, arg := range call.Args {
					switch a := ast.Unparen(arg).(type) {
					case *ast.FuncLit:
						checkFleetClosure(pass, fd, a)
					case *ast.SelectorExpr:
						if isMethodValue(info, a) {
							if rt := info.TypeOf(a.X); rt != nil && reachesKernelState(rt) {
								pass.Reportf(a.Pos(), "method value %s.%s passed to fleet carries receiver type %s, which reaches kernel state; kernels never cross goroutines — construct per-trial state inside the worker",
									exprText(a.X), a.Sel.Name, rt.String())
							}
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// isFleetEntryPoint reports whether call targets a function that fans
// its func arguments out to worker goroutines.
func isFleetEntryPoint(info *types.Info, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
		if obj == nil {
			obj = info.Defs[fun]
		}
	case *ast.IndexExpr: // generic instantiation fleet.Map[T](...)
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.SelectorExpr:
			obj = info.Uses[x.Sel]
		case *ast.Ident:
			obj = info.Uses[x]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	names, ok := fleetEntryPoints[fn.Pkg().Path()]
	if !ok {
		return false
	}
	return names == nil || names[fn.Name()]
}

// checkFleetClosure flags captured variables whose types reach kernel
// state.
func checkFleetClosure(pass *Pass, enclosing *ast.FuncDecl, lit *ast.FuncLit) {
	info := pass.TypesInfo
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		pos := v.Pos()
		inEnclosing := enclosing.Pos() <= pos && pos < enclosing.End()
		inLit := lit.Pos() <= pos && pos < lit.End()
		if !inEnclosing || inLit {
			return true
		}
		seen[v] = true
		if reachesKernelState(v.Type()) {
			pass.Reportf(id.Pos(), "fleet worker closure captures %q (type %s), which reaches kernel state; kernels never cross goroutines — construct the kernel and RNG inside the per-trial closure",
				v.Name(), v.Type().String())
		}
		return true
	})
}

// kernelStateAnchors are the types whose presence anywhere in a
// captured variable's type graph makes sharing it across trial
// goroutines a determinism bug.
var kernelStateAnchors = map[string]bool{
	"dvc/internal/sim.Kernel": true,
	"dvc/internal/sim.Timer":  true,
	"math/rand.Rand":          true,
}

// reachesKernelState reports whether t transitively contains one of the
// kernel state anchors. Struct fields, pointers, slices, arrays and maps
// are walked; function signatures and interfaces are opaque (a func
// value's captures are beyond static reach, and interfaces carry no
// field graph).
func reachesKernelState(t types.Type) bool {
	return reaches(t, make(map[types.Type]bool))
}

func reaches(t types.Type, visited map[types.Type]bool) bool {
	if t == nil || visited[t] {
		return false
	}
	visited[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && kernelStateAnchors[obj.Pkg().Path()+"."+obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return reaches(u.Elem(), visited)
	case *types.Slice:
		return reaches(u.Elem(), visited)
	case *types.Array:
		return reaches(u.Elem(), visited)
	case *types.Map:
		return reaches(u.Key(), visited) || reaches(u.Elem(), visited)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if reaches(u.Field(i).Type(), visited) {
				return true
			}
		}
	}
	return false
}
