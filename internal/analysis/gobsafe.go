package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GobSafe vets the types that flow into encoding/gob — the serialization
// layer under every LSC checkpoint image (internal/ckpt, internal/guest,
// internal/vm). gob has two failure modes that corrupt save/restore
// without any error at encode time:
//
//  1. Unexported struct fields are silently dropped. A checkpoint that
//     loses a field restores a VM whose guest state diverges from the
//     saved one — the exact bug class LSC exists to prevent.
//  2. func and chan fields cannot be encoded at all; depending on where
//     they sit, the failure is either a runtime error mid-checkpoint or a
//     silently nil field after restore.
//
// The analyzer inspects the static type of every argument to
// gob.Register, gob.RegisterName, Encoder.Encode and Decoder.Decode and
// walks its struct graph. Types that implement gob.GobEncoder or
// encoding.BinaryMarshaler opt out: they have taken manual control of
// their wire format.
var GobSafe = &Analyzer{
	Name: "gobsafe",
	Doc: "flag unexported, func- or chan-typed fields in types passed to " +
		"encoding/gob (checkpoint state must round-trip losslessly)",
	Run: runGobSafe,
}

func runGobSafe(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || isConversion(info, call) {
				return true
			}
			arg, ok := gobPayload(info, call)
			if !ok {
				return true
			}
			t := info.TypeOf(arg)
			if t == nil {
				return true
			}
			checkGobType(pass, call.Pos(), t)
			return true
		})
	}
	return nil
}

// gobPayload returns the argument expression whose type will be encoded,
// if call is one of the encoding/gob entry points.
func gobPayload(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/gob" {
		return nil, false
	}
	switch obj.Name() {
	case "Register":
		if len(call.Args) == 1 {
			return call.Args[0], true
		}
	case "RegisterName":
		if len(call.Args) == 2 {
			return call.Args[1], true
		}
	case "Encode", "Decode", "EncodeValue", "DecodeValue":
		// Methods on *gob.Encoder / *gob.Decoder.
		if recv := obj.Type().(*types.Signature).Recv(); recv != nil && len(call.Args) == 1 {
			return call.Args[0], true
		}
	}
	return nil, false
}

// checkGobType walks the struct graph reachable from t and reports fields
// gob would drop or reject.
func checkGobType(pass *Pass, pos token.Pos, t types.Type) {
	visited := make(map[types.Type]bool)
	var walk func(t types.Type, path string)
	walk = func(t types.Type, path string) {
		if visited[t] {
			return
		}
		visited[t] = true
		t = deref(t)
		if hasCustomWireFormat(t) {
			return
		}
		named, _ := t.(*types.Named)
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			// Non-struct payloads (slices, maps, basics, interfaces):
			// descend through containers looking for func/chan elements.
			switch u := t.Underlying().(type) {
			case *types.Slice:
				walk(u.Elem(), path)
			case *types.Array:
				walk(u.Elem(), path)
			case *types.Map:
				walk(u.Key(), path)
				walk(u.Elem(), path)
			case *types.Signature:
				pass.Reportf(pos, "gob cannot encode func value%s", at(path))
			case *types.Chan:
				pass.Reportf(pos, "gob cannot encode chan value%s", at(path))
			}
			return
		}
		typeName := "struct"
		if named != nil {
			typeName = named.Obj().Name()
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" {
				continue
			}
			fieldPath := typeName + "." + f.Name()
			if !f.Exported() && !f.Embedded() {
				pass.Reportf(pos,
					"gob silently drops unexported field %s: checkpoint state would not survive save/restore (export it, or implement GobEncoder/GobDecoder)",
					fieldPath)
				continue
			}
			if bad, kind := containsBadKind(f.Type(), make(map[types.Type]bool)); bad {
				pass.Reportf(pos,
					"field %s contains a %s, which gob cannot encode: checkpointing this type will fail or restore nil",
					fieldPath, kind)
				continue
			}
			// Recurse into exported struct-typed fields so nested
			// checkpoint state is held to the same rules.
			walk(f.Type(), fieldPath)
		}
	}
	walk(t, "")
}

func at(path string) string {
	if path == "" {
		return ""
	}
	return " at " + path
}

func deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// hasCustomWireFormat reports whether t (or *t) provides its own gob or
// binary encoding, making field-level inspection moot.
func hasCustomWireFormat(t types.Type) bool {
	for _, name := range []string{"GobEncode", "MarshalBinary"} {
		for _, recv := range []types.Type{t, types.NewPointer(t)} {
			obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, name)
			if fn, ok := obj.(*types.Func); ok {
				sig := fn.Type().(*types.Signature)
				if sig.Params().Len() == 0 && sig.Results().Len() == 2 {
					return true
				}
			}
		}
	}
	return false
}

// containsBadKind reports whether t transitively contains a func or chan
// (through pointers, slices, arrays, maps and struct fields), returning
// the offending kind.
func containsBadKind(t types.Type, visited map[types.Type]bool) (bool, string) {
	if visited[t] {
		return false, ""
	}
	visited[t] = true
	switch u := t.Underlying().(type) {
	case *types.Signature:
		return true, "func"
	case *types.Chan:
		return true, "chan"
	case *types.Pointer:
		return containsBadKind(u.Elem(), visited)
	case *types.Slice:
		return containsBadKind(u.Elem(), visited)
	case *types.Array:
		return containsBadKind(u.Elem(), visited)
	case *types.Map:
		if bad, kind := containsBadKind(u.Key(), visited); bad {
			return true, kind
		}
		return containsBadKind(u.Elem(), visited)
	case *types.Struct:
		if hasCustomWireFormat(t) {
			return false, ""
		}
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() && !f.Embedded() {
				continue // reported separately by the unexported check
			}
			if bad, kind := containsBadKind(f.Type(), visited); bad {
				return true, fmt.Sprintf("%s (via %s)", kind, f.Name())
			}
		}
	}
	return false, ""
}
