package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// MapIter flags `range` over a map when the loop body has effects whose
// outcome depends on iteration order: calling functions or methods (which
// may schedule kernel events, emit output, or mutate shared state),
// appending to a slice that is never sorted afterwards, or assigning to
// state that outlives the loop. Go randomizes map iteration order per
// run, so any such loop is a direct determinism leak.
//
// The analyzer recognizes the repo's established safe idioms:
//
//   - Collect-and-sort (phys.Site.Nodes, vm.Hypervisor.Domains): appends
//     into a slice that is later passed to sort.Strings / sort.Ints /
//     sort.Float64s / sort.Slice / sort.SliceStable / sort.Sort /
//     slices.Sort / slices.SortFunc / slices.SortStableFunc within the
//     same function.
//   - Distinct-key writes: m2[k] = ... indexed by the range key touches a
//     different element every iteration, so the final contents are a set,
//     independent of order.
//   - Same-constant writes: found = true (set-membership tests, union
//     builds) — every write stores the identical constant, so the last
//     writer does not matter.
//   - Order-independent reductions: `:=` definitions, loop-local
//     mutation, delete, x++/x--, and commutative compound assignment
//     (+=, -=, *=, |=, &=, ^=, &^=) on integer or boolean accumulators.
//     Floating-point accumulation is NOT exempt: float addition is
//     non-associative, so summing in a random order changes low bits and
//     breaks bit-for-bit replay.
//   - Calls to pure string/number helpers (strings.*, strconv.*, math.*,
//     unicode.*, fmt.Sprintf/Sprint/Errorf) that cannot have ordered
//     effects.
//
// Everything else — kernel scheduling, I/O, arbitrary method calls —
// must either iterate a sorted snapshot of the keys or carry a
// //lint:allow mapiter justification.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flag effectful iteration over maps in unspecified order; " +
		"collect and sort keys first (see phys.Site.Nodes)",
	Run: runMapIter,
}

func runMapIter(pass *Pass) error {
	for _, f := range pass.Files {
		// Walk with an explicit stack of enclosing function bodies so the
		// sorted-later check can scan the rest of the function.
		var funcStack []ast.Node
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcStack = append(funcStack, n)
				ast.Inspect(funcBody(n), visit)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok && len(funcStack) > 0 {
						checkMapRange(pass, n, funcBody(funcStack[len(funcStack)-1]))
					}
				}
			}
			return true
		}
		for _, decl := range f.Decls {
			ast.Inspect(decl, visit)
		}
	}
	return nil
}

func funcBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body != nil {
			return n.Body
		}
	case *ast.FuncLit:
		return n.Body
	}
	return &ast.BlockStmt{}
}

// plainWrite is one `=` assignment to an outer object, buffered so the
// same-constant exemption can consider all writes to the object at once.
type plainWrite struct {
	stmt  *ast.AssignStmt
	obj   types.Object
	value constant.Value // nil if not constant
}

// checkMapRange inspects one range-over-map statement.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, enclosing ast.Node) {
	info := pass.TypesInfo

	// isLoopLocal reports whether the object is declared within the range
	// statement (the key/value variables or anything defined in the body).
	isLoopLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
	}
	keyObj := rangeKeyObject(info, rs)

	var plains []plainWrite
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, n, enclosing, isLoopLocal, keyObj, &plains)
			// Still visit RHS expressions for calls; LHS handled above.
			for _, rhs := range n.Rhs {
				ast.Inspect(rhs, visit)
			}
			return false
		case *ast.IncDecStmt:
			// x++ / x-- add a fixed delta per iteration; the result is
			// independent of order for any numeric type.
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: delivery order follows map order")
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launched inside map iteration: spawn order follows map order")
			return false
		case *ast.CallExpr:
			checkCall(pass, n)
			return true
		}
		return true
	}
	ast.Inspect(rs.Body, visit)

	// Same-constant exemption: if every plain write to an object stores
	// the identical constant, the last writer is irrelevant.
	byObj := make(map[types.Object][]plainWrite)
	for _, w := range plains {
		byObj[w.obj] = append(byObj[w.obj], w)
	}
	for _, w := range plains {
		ws := byObj[w.obj]
		if allSameConstant(ws) {
			// Report once per object? No: suppress entirely.
			continue
		}
		pass.Reportf(w.stmt.Pos(),
			"assignment to %q inside map iteration: last-writer depends on the randomized map order",
			w.obj.Name())
	}
}

func allSameConstant(ws []plainWrite) bool {
	for _, w := range ws {
		if w.value == nil {
			return false
		}
	}
	for _, w := range ws[1:] {
		if constant.Compare(ws[0].value, token.NEQ, w.value) {
			return false
		}
	}
	return true
}

// rangeKeyObject returns the object bound to the range key variable, or
// nil when the key is blank or absent.
func rangeKeyObject(info *types.Info, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// commutativeAssignOps are compound assignment operators whose repeated
// application is order-independent (over integers and booleans).
var commutativeAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN:     true, // +=
	token.SUB_ASSIGN:     true, // -=
	token.MUL_ASSIGN:     true, // *=
	token.OR_ASSIGN:      true, // |=
	token.AND_ASSIGN:     true, // &=
	token.XOR_ASSIGN:     true, // ^=
	token.AND_NOT_ASSIGN: true, // &^=
}

func checkAssign(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, enclosing ast.Node,
	isLoopLocal func(types.Object) bool, keyObj types.Object, plains *[]plainWrite) {
	info := pass.TypesInfo
	if as.Tok == token.DEFINE {
		return // declares loop-local state
	}
	for i, lhs := range as.Lhs {
		root := lvalueRoot(lhs)
		obj := rootObject(info, root)
		if obj == nil || isLoopLocal(obj) {
			continue
		}
		// Distinct-key writes: indexing by the range key touches a
		// different element each iteration, so order cannot matter.
		if indexedByKey(info, lhs, keyObj) {
			continue
		}
		// s = append(s, ...) into an outer slice: fine iff the slice is
		// sorted later in the same function (the collect-and-sort idiom).
		if i < len(as.Rhs) {
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok && builtinName(info, call) == "append" {
				if sortedLater(pass, obj, rs.End(), enclosing) {
					continue
				}
				pass.Reportf(as.Pos(),
					"append to %q inside map iteration without sorting it afterwards: element order follows the randomized map order (collect keys and sort, as in phys.Site.Nodes)",
					obj.Name())
				continue
			}
		}
		if commutativeAssignOps[as.Tok] {
			if t := info.TypeOf(lhs); t != nil && orderIndependentType(t) {
				continue // integer/bool reduction, order-independent
			}
			pass.Reportf(as.Pos(),
				"compound assignment to %q of non-integer type inside map iteration: accumulation order follows the randomized map order",
				obj.Name())
			continue
		}
		if as.Tok == token.ASSIGN {
			var val constant.Value
			if i < len(as.Rhs) {
				if tv, ok := info.Types[as.Rhs[i]]; ok {
					val = tv.Value
				}
			}
			*plains = append(*plains, plainWrite{stmt: as, obj: obj, value: val})
			continue
		}
		pass.Reportf(as.Pos(),
			"assignment to %q inside map iteration: last-writer depends on the randomized map order",
			obj.Name())
	}
}

// indexedByKey reports whether the lvalue is (possibly through field
// selectors) an index expression whose index is exactly the range key
// variable.
func indexedByKey(info *types.Info, lhs ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(x.Index).(*ast.Ident); ok {
				if info.Uses[id] == keyObj {
					return true
				}
			}
			lhs = x.X
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		default:
			return false
		}
	}
}

// safeBuiltins are builtin calls that cannot make a map-ordered loop
// nondeterministic on their own. delete is order-independent because the
// final map contents are a set; append is handled at the assignment.
var safeBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true,
	"delete": true, "append": true, "make": true, "new": true,
	"real": true, "imag": true, "complex": true,
}

// purePackages contain only side-effect-free package-level functions
// (string/number manipulation); calling them in map order is harmless.
var purePackages = map[string]bool{
	"strings": true, "strconv": true, "math": true, "math/bits": true,
	"unicode": true, "unicode/utf8": true,
}

// pureFmtFuncs are the fmt functions that only build values.
var pureFmtFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

func checkCall(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if isConversion(info, call) {
		return
	}
	if b := builtinName(info, call); b != "" {
		if safeBuiltins[b] {
			return
		}
		pass.Reportf(call.Pos(), "call to %s inside map iteration: effect order follows the randomized map order", b)
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if purePackages[fn.Pkg().Path()] {
				return
			}
			if fn.Pkg().Path() == "fmt" && pureFmtFuncs[fn.Name()] {
				return
			}
		}
	}
	// We cannot see inside an arbitrary function or method, so every call
	// is treated as effectful (it may schedule kernel events, print, or
	// mutate shared state). Sorted-iteration helpers that *return* the
	// ordered view (e.g. ranging over h.Domains()) do not range over a
	// map and are never flagged.
	pass.Reportf(call.Pos(),
		"call to %s inside map iteration: if it schedules events, emits output, or mutates shared state, the effect order follows the randomized map order (iterate sorted keys instead)",
		calleeName(info, call))
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "function value"
}

// lvalueRoot strips selectors, indexes, derefs and parens down to the
// base expression being written through.
func lvalueRoot(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

func rootObject(info *types.Info, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	return nil
}

// orderIndependentType reports whether commutative compound assignment on
// values of t is exactly order-independent: integers and booleans yes,
// floats/complex/strings no (non-associative or concatenation).
func orderIndependentType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// sortEstablishers lists package functions that establish a deterministic
// order over their first argument. A slice, not a map: dvclint lints
// itself, and iterating a map here would be its own (harmless, but
// embarrassing) finding.
var sortEstablishers = []struct {
	path  string
	names map[string]bool
}{
	{"sort", map[string]bool{
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	}},
	{"slices", map[string]bool{
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	}},
}

// sortedLater reports whether obj is passed to a recognized sort function
// somewhere after pos within the enclosing function.
func sortedLater(pass *Pass, obj types.Object, pos token.Pos, enclosing ast.Node) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		for _, se := range sortEstablishers {
			if name, ok := pkgObject(info, sel, se.path); ok && se.names[name] {
				if argObj := rootObject(info, ast.Unparen(call.Args[0])); argObj == obj {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
