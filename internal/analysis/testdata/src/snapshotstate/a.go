// Fixture for the snapshotstate analyzer: reachability closure from
// //dvc:checkpoint-root types and gob.Register payloads, across nested
// structs, unexported embedding, map values, slices and pointers.
// Diagnostics land on the root declaration (or the gob.Register call),
// naming the reached field.
package snapshotstate

import "encoding/gob"

// Inner is reached through Root.Nested; its unexported field is two
// levels away from the root.
type Inner struct {
	ID    int
	state []byte
}

// Leaf is reached only as a map value.
type Leaf struct {
	Val  float64
	meta string
}

type base struct{ X int }

// Deep exercises unexported embedding and a map-of-slice-of-struct
// chain.
type Deep struct {
	base
	Weights map[string][]Matrix
}

type Matrix struct{ Rows []Row }

type Row struct {
	Vals []float64
	tag  byte
}

// Blob owns its wire format; the walk must stop at it.
type Blob struct{ raw []byte }

func (b Blob) GobEncode() ([]byte, error) { return b.raw, nil }
func (b *Blob) GobDecode(p []byte) error  { b.raw = append(b.raw[:0], p...); return nil }

// Root is a checkpoint root; every problem in its closure is reported
// here, in field-walk order.
//
//dvc:checkpoint-root
type Root struct { // want `Inner\.state is unexported` `Leaf\.meta is unexported` `Deep\.base is an unexported embedded field` `Row\.tag is unexported` `Root\.Signal contains a chan` `Root\.hidden is unexported`
	Name    string
	Data    Blob
	Nested  Inner
	Table   map[string]Leaf
	Items   []*Deep
	Payload any
	Signal  chan int
	hidden  int
}

// CleanRoot's closure is entirely gob-safe: no diagnostics.
//
//dvc:checkpoint-root
type CleanRoot struct {
	ID   int
	Tags []string
	Meta map[string]float64
	Self *CleanRoot
}

// RegisteredPayload becomes a root through gob.Register, not a
// directive; the problem is reported at the Register call.
type RegisteredPayload struct {
	Kind  string
	cache []byte
}

func init() {
	gob.Register(RegisteredPayload{}) // want `RegisteredPayload\.cache is unexported`
}
