// Fixture proving snapshotstate's closure is a strict superset of
// gobsafe's call-site view. The only gob call site here encodes a value
// of static type any, so gobsafe has nothing to walk and reports
// nothing; snapshotstate starts from the declared root and still finds
// the nested unexported field. The comparison test
// (TestSnapshotStateCatchesWhatGobsafeMisses) runs both analyzers over
// this package and asserts gobsafe=0, snapshotstate>0 — so this file
// deliberately carries no want comments.
package gobgap

import (
	"bytes"
	"encoding/gob"
)

// Image is checkpoint state: Save is always called with an *Image.
//
//dvc:checkpoint-root
type Image struct {
	Header Header
}

// Header hides a field gob will silently drop.
type Header struct {
	Version int
	dirty   bool
}

// Save erases the payload's static type before gob ever sees it.
func Save(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
