// Fixture for the fleetscope analyzer, built against the real
// dvc/internal/fleet and dvc/internal/sim types: worker closures must
// not capture kernel-reaching state from the enclosing scope, and the
// sanctioned shape — construct the whole world inside the per-trial
// closure — passes clean.
package fleetscope

import (
	"math/rand"

	"dvc/internal/fleet"
	"dvc/internal/sim"
	"dvc/internal/sim/partition"
)

// world reaches kernel state through a field; capturing it is as bad as
// capturing the kernel itself.
type world struct {
	K   *sim.Kernel
	RNG *rand.Rand
}

// config is plain configuration: capturing it is the sanctioned shape.
type config struct {
	Nodes int
	Seed  int64
}

func bad(k *sim.Kernel, w world, rng *rand.Rand) []int {
	return fleet.Map(4, 8, func(trial int) int {
		k.Step()        // want `captures "k"`
		_ = w.K         // want `captures "w"`
		_ = rng.Int63() // want `captures "rng"`
		return int(k.Now())
	})
}

func good(cfg config, seeds []int64) []int {
	return fleet.Map(4, len(seeds), func(trial int) int {
		k := sim.NewKernel(seeds[trial] + cfg.Seed)
		rng := k.Rand()
		_ = rng
		return cfg.Nodes + int(k.Now())
	})
}

type harness struct{ K *sim.Kernel }

func (h *harness) run(trial int) {}

func badMethodValue(h *harness) {
	fleet.ForEach(2, 4, h.run) // want `method value h\.run .* reaches kernel state`
}

// badPartitionDriver: a driver closure handed to the partition
// coordinator runs on a partition goroutine and is held to exactly the
// fleet worker rule — no kernel-reaching state captured from outside.
func badPartitionDriver(c *partition.Coordinator, k *sim.Kernel) {
	c.Run(func(p *partition.Partition) {
		k.Step() // want `captures "k"`
	})
}

// goodPartitionDriver is the sanctioned shape: each driver builds its
// own sub-kernel from plain configuration and binds it to its partition.
func goodPartitionDriver(c *partition.Coordinator, seeds []int64) {
	c.Run(func(p *partition.Partition) {
		k := sim.NewKernel(seeds[p.ID()])
		p.Bind(k)
		k.Run()
	})
}

// notFleet proves the rule only applies at fleet entry points: the same
// capture passed to a local higher-order function is not flagged.
func notFleet(k *sim.Kernel) {
	apply := func(fn func(int) int) { fn(0) }
	apply(func(trial int) int {
		k.Step()
		return trial
	})
}
