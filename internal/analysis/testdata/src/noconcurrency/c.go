// Fixture: the kernel's pooled-slab idiom — a value slab threaded by an
// intrusive free list, an implicit index heap, and pooled records with
// pre-bound callbacks (internal/sim's event slab, netsim's delivery pool)
// — is single-threaded object reuse, not concurrency. None of it may be
// flagged: the analyzer must distinguish hand-rolled pooling from the
// sync.Pool / worker-pool shapes it exists to reject. The one diagnostic
// below pins the boundary: reaching for sync.Pool to "optimise" the same
// idiom inside a sim package is still an error, because sync.Pool's
// per-P caches make reuse order scheduler-dependent.
package noconcurrency

import "sync"

type slabEntry struct {
	when int64
	seq  uint64
	fn   func()
	next int32
	live bool
}

type pool struct {
	slab []slabEntry
	free int32
	heap []int32
}

// alloc pops the intrusive free list, growing the slab when dry. This is
// the steady-state-allocation-free idiom the kernel hot path uses; it
// must lint clean.
func (p *pool) alloc() int32 {
	if p.free >= 0 {
		slot := p.free
		p.free = p.slab[slot].next
		return slot
	}
	p.slab = append(p.slab, slabEntry{next: -1})
	return int32(len(p.slab) - 1)
}

// release pushes a slot back; clearing the callback drops captured state.
func (p *pool) release(slot int32) {
	p.slab[slot].fn = nil
	p.slab[slot].live = false
	p.slab[slot].next = p.free
	p.free = slot
}

// schedule reuses a slot and sifts an implicit index heap — pure slice
// and index manipulation, nothing for the analyzer to see.
func (p *pool) schedule(when int64, seq uint64, fn func()) int32 {
	slot := p.alloc()
	e := &p.slab[slot]
	e.when, e.seq, e.fn, e.live = when, seq, fn, true
	p.heap = append(p.heap, slot)
	for i := len(p.heap) - 1; i > 0; {
		parent := (i - 1) / 4
		a, b := &p.slab[p.heap[i]], &p.slab[p.heap[parent]]
		if a.when > b.when || (a.when == b.when && a.seq > b.seq) {
			break
		}
		p.heap[i], p.heap[parent] = p.heap[parent], p.heap[i]
		i = parent
	}
	return slot
}

// recycled records with a pre-bound callback (netsim's delivery pool
// shape): the closure is created once per record, then reused.
type record struct {
	payload any
	next    *record
	run     func()
}

type recordPool struct{ free *record }

func (rp *recordPool) get() *record {
	if r := rp.free; r != nil {
		rp.free = r.next
		r.next = nil
		return r
	}
	r := &record{}
	r.run = func() { r.payload = nil }
	return r
}

func (rp *recordPool) put(r *record) {
	r.payload = nil
	r.next = rp.free
	rp.free = r
}

// badSyncPool: the "same" optimisation with sync.Pool is still rejected —
// per-P caches make reuse order depend on the host scheduler.
func badSyncPool() *record {
	var p sync.Pool                          // want `use of sync\.Pool in deterministic core`
	p.New = func() any { return &record{} }  // want `use of sync\.New in deterministic core`
	return p.Get().(*record)                 // want `use of sync\.Get in deterministic core`
}
