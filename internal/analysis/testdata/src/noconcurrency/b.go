// Fixture: the bounded worker-pool idiom — goroutine fan-out over an
// atomic work-index with a WaitGroup barrier — is exactly what
// dvc/internal/fleet implements, and fleet is the ONE package sanctioned
// to do it (it is deliberately absent from the simPackages map in
// rules.go). The same shape written inside a simulation package must
// still be flagged: a kernel touched from a worker goroutine is a
// determinism bug no seed can fix.
package noconcurrency

import (
	"sync"
	"sync/atomic"
)

func badWorkerPool(n int) []int {
	out := make([]int, n)
	var next atomic.Int64 // want `use of atomic\.Int64 in deterministic core`
	var wg sync.WaitGroup // want `use of sync\.WaitGroup in deterministic core`
	for w := 0; w < 4; w++ {
		wg.Add(1)   // want `use of sync\.Add in deterministic core`
		go func() { // want `go statement in deterministic core`
			defer wg.Done() // want `use of sync\.Done in deterministic core`
			for {
				i := int(next.Add(1)) - 1 // want `use of atomic\.Add in deterministic core`
				if i >= n {
					return
				}
				out[i] = i * i
			}
		}()
	}
	wg.Wait() // want `use of sync\.Wait in deterministic core`
	return out
}
