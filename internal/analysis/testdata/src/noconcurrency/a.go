// Fixture for the noconcurrency analyzer: goroutines, channels, select
// and sync primitives are flagged inside the deterministic core.
package noconcurrency

import "sync"

func badGo() {
	go func() {}() // want `go statement in deterministic core`
}

func badChannels(ch chan int) { // want `channel type in deterministic core`
	ch <- 1        // want `channel send in deterministic core`
	_ = <-ch       // want `channel receive in deterministic core`
	close(ch)      // want `close of channel in deterministic core`
	for range ch { // want `range over channel in deterministic core`
	}
}

func badMake() {
	_ = make(chan string, 4) // want `make\(chan\) in deterministic core` `channel type in deterministic core`
}

func badSelect(a, b chan int) { // want `channel type in deterministic core`
	select { // want `select in deterministic core`
	case <-a: // want `channel receive in deterministic core`
	case <-b: // want `channel receive in deterministic core`
	}
}

type badState struct {
	mu sync.Mutex // want `use of sync\.Mutex in deterministic core`
}

func (s *badState) badLock() {
	s.mu.Lock()         // want `use of sync\.Lock in deterministic core`
	defer s.mu.Unlock() // want `use of sync\.Unlock in deterministic core`
}

func badOnce() {
	var once sync.Once // want `use of sync\.Once in deterministic core`
	once.Do(func() {}) // want `use of sync\.Do in deterministic core`
}

// badBarrier is the partition coordinator's barrier idiom (mutex +
// condition variable), sanctioned only inside dvc/internal/sim/partition
// — anywhere in the deterministic core it is still flagged.
type badBarrier struct {
	mu   sync.Mutex // want `use of sync\.Mutex in deterministic core`
	cond *sync.Cond // want `use of sync\.Cond in deterministic core`
}

func (b *badBarrier) wait(ready func() bool) {
	b.mu.Lock() // want `use of sync\.Lock in deterministic core`
	for !ready() {
		b.cond.Wait() // want `use of sync\.Wait in deterministic core`
	}
	b.cond.Signal()     // want `use of sync\.Signal in deterministic core`
	defer b.mu.Unlock() // want `use of sync\.Unlock in deterministic core`
}

// good: plain single-threaded event-style code.
type queue struct{ items []int }

func (q *queue) push(v int) { q.items = append(q.items, v) }

func good() {
	var q queue
	for i := 0; i < 3; i++ {
		q.push(i)
	}
}

func waived(done chan struct{}) { //lint:allow noconcurrency fixture proves the escape hatch works
	<-done //lint:allow noconcurrency fixture proves the escape hatch works
}
