// Fixture for the noglobalrand analyzer: package-level draws from the
// process-global source are flagged; explicit *rand.Rand plumbing is not.
package noglobalrand

import "math/rand"

func bad() {
	_ = rand.Intn(10)     // want `rand\.Intn uses the process-global math/rand source`
	_ = rand.Float64()    // want `rand\.Float64 uses the process-global math/rand source`
	_ = rand.Int63()      // want `rand\.Int63 uses the process-global math/rand source`
	rand.Seed(42)         // want `rand\.Seed uses the process-global math/rand source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle uses the process-global math/rand source`
	_ = rand.Perm(5)      // want `rand\.Perm uses the process-global math/rand source`
	_ = rand.NormFloat64() // want `rand\.NormFloat64 uses the process-global math/rand source`
}

// good mirrors internal/sim/rand.go: an explicit source threaded through.
func good() {
	rng := rand.New(rand.NewSource(7))
	_ = rng.Intn(10)
	_ = rng.Float64()
	z := rand.NewZipf(rng, 1.1, 1, 100)
	_ = z.Uint64()
}

// Types from math/rand are fine; only the global-source functions are not.
func alsoGood(rng *rand.Rand, src rand.Source) *rand.Rand {
	_ = src.Int63()
	return rng
}

func waived() {
	_ = rand.Intn(3) //lint:allow noglobalrand fixture proves the escape hatch works
}
