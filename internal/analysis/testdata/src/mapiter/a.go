// Fixture for the mapiter analyzer: effectful iteration over maps in
// randomized order is flagged; the collect-and-sort idiom and
// order-independent reductions are not.
package mapiter

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

type kernel struct{ events []string }

func (k *kernel) Schedule(name string) { k.events = append(k.events, name) }

type domain struct {
	name string
	ram  int64
}

// badSchedule schedules kernel events in map order: the classic leak.
func badSchedule(k *kernel, domains map[string]*domain) {
	for name := range domains {
		k.Schedule(name) // want `call to k\.Schedule inside map iteration`
	}
}

// badPrint emits output in map order.
func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `call to fmt\.Println inside map iteration`
	}
}

// badAppend collects values but never sorts them.
func badAppend(m map[string]*domain) []*domain {
	var out []*domain
	for _, d := range m {
		out = append(out, d) // want `append to "out" inside map iteration without sorting`
	}
	return out
}

// badLastWriter: whichever key iterates last wins.
func badLastWriter(m map[string]int) int {
	var last int
	for _, v := range m {
		last = v // want `assignment to "last" inside map iteration`
	}
	return last
}

// badFloatSum: float addition is non-associative, so the low bits depend
// on iteration order.
func badFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `compound assignment to "sum" of non-integer type`
	}
	return sum
}

// goodCollectAndSort is the phys.Site.Nodes idiom the analyzer must
// recognize: keys gathered, then sorted before use.
func goodCollectAndSort(m map[string]*domain) []*domain {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*domain, len(ids))
	for i, id := range ids {
		out[i] = m[id]
	}
	return out
}

// goodSortSlice collects values and establishes order afterwards.
func goodSortSlice(m map[string]*domain) []*domain {
	var out []*domain
	for _, d := range m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// goodIntReduction: integer sums and counters are order-independent.
func goodIntReduction(m map[string]*domain) (int64, int) {
	var free int64
	n := 0
	for _, d := range m {
		free -= d.ram
		n++
	}
	return free, n
}

// goodLocals: defining and mutating loop-local state is fine.
func goodLocals(m map[string]int) bool {
	for k, v := range m {
		doubled := v * 2
		if doubled > 10 && len(k) > 1 {
			_ = doubled
		}
	}
	return true
}

// goodDelete: deleting from the ranged map leaves a set, not a sequence.
func goodDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// goodDistinctKeys: writes indexed by the range key touch a different
// element each iteration; the final contents are order-independent.
func goodDistinctKeys(m map[string]int) map[string]int {
	inverted := make(map[string]int, len(m))
	for k, v := range m {
		inverted[k] = v * 2
	}
	return inverted
}

// goodSameConstant: set-membership tests write the identical constant, so
// the last writer does not matter.
func goodSameConstant(m map[string]int, port int) bool {
	inUse := false
	for _, v := range m {
		if v == port {
			inUse = true
		}
	}
	return inUse
}

// badMixedConstants: different constants make the last writer matter again.
func badMixedConstants(m map[string]int) int {
	x := 0
	for _, v := range m {
		if v > 0 {
			x = 1 // want `assignment to "x" inside map iteration`
		} else {
			x = 2 // want `assignment to "x" inside map iteration`
		}
	}
	return x
}

// goodPureCalls: string/number helpers have no ordered effects.
func goodPureCalls(m map[string]int) int {
	n := 0
	for k := range m {
		if strings.HasPrefix(k, "lsc/") && len(strconv.Itoa(len(k))) > 1 {
			n++
		}
	}
	return n
}

// waived documents an intentionally order-dependent-looking effect that
// the author has judged safe.
func waived(m map[string]int) {
	for k := range m {
		fmt.Println(k) //lint:allow mapiter fixture proves the escape hatch works
	}
}
