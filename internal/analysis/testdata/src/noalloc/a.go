// Fixture for the noalloc analyzer: allocating constructs are flagged
// only inside //dvc:hotpath functions, panic arguments are exempt, and
// a justified //lint:allow waives a finding.
package noalloc

import "fmt"

type T struct{ N int }

func (T) M() {}

//dvc:hotpath
func hot(buf []byte, n int) []byte {
	x := n
	f := func() int { return x } // want `function literal captures x`
	_ = f
	buf = append(buf, 1) // want `append may grow`
	m := make([]int, n)  // want `make allocates`
	_ = m
	for i := 0; i < n; i++ {
		p := make([]byte, 8) // want `make inside a loop`
		_ = p
	}
	fmt.Println(n)   // want `fmt\.Println allocates`
	var sink any = n // want `int boxed into any`
	_ = sink
	var ptr any = &x // pointer-shaped: no box, no finding
	_ = ptr
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // cold path: panic args are exempt
	}
	return buf
}

//dvc:hotpath
func hotAssign(n int, sink *any) {
	*sink = n // want `int boxed into any`
}

//dvc:hotpath
func hotMethodValue(t T) func() {
	return t.M // want `method value t\.M allocates a bound closure`
}

//dvc:hotpath
func hotComposite() *T {
	return &T{N: 1} // want `&composite literal escapes`
}

//dvc:hotpath
func hotCleanLit() func(int) int {
	return func(v int) int { return v * 2 } // captures nothing: no finding
}

//dvc:hotpath
func hotAllowed(buf []byte) []byte {
	//lint:allow noalloc amortized growth is the fixture's sanctioned pattern
	return append(buf, 42)
}

// cold has no directive: the same constructs pass unflagged.
func cold(n int) []byte {
	b := make([]byte, n)
	fmt.Println(n)
	var sink any = n
	_ = sink
	return append(b, 1)
}
