// Fixture for the nowallclock analyzer: wall-clock reads and waits are
// flagged; virtual-time arithmetic on time.Duration is not.
package nowallclock

import "time"

func bad() {
	_ = time.Now()                 // want `time\.Now reads the host clock`
	time.Sleep(time.Second)        // want `time\.Sleep blocks on the host clock`
	<-time.After(time.Millisecond) // want `time\.After waits on the host clock`
	_ = time.Since(time.Time{})    // want `time\.Since reads the host clock`
	_ = time.Until(time.Time{})    // want `time\.Until reads the host clock`
	t := time.NewTicker(time.Second) // want `time\.NewTicker ticks on the host clock`
	t.Stop()
	_ = time.NewTimer(time.Second) // want `time\.NewTimer waits on the host clock`
	_ = time.Tick(time.Second)     // want `time\.Tick ticks on the host clock`
	time.AfterFunc(time.Second, func() {}) // want `time\.AfterFunc schedules on the host clock`
}

// passingAround is just as bad as calling: the function value still reads
// the host clock at every call site.
func passingAround() func() time.Time {
	return time.Now // want `time\.Now reads the host clock`
}

func good() {
	// Pure conversions and formatting never touch the host clock.
	d := 5 * time.Second
	_ = d.String()
	_ = time.Duration(42)
	_ = time.Unix(0, 0)
	var ts time.Time
	_ = ts.Format(time.RFC3339)
}

func waived() {
	_ = time.Now() //lint:allow nowallclock fixture proves the escape hatch works
}
