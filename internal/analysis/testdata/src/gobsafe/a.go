// Fixture for the gobsafe analyzer: checkpoint payload types must not
// have unexported fields (gob drops them silently) or func/chan fields
// (gob cannot encode them).
package gobsafe

import (
	"bytes"
	"encoding/gob"
)

// Snapshot mirrors a guest checkpoint image: all exported, gob-safe.
type Snapshot struct {
	PC    int
	Rows  map[int][]float64
	Notes []string
}

// Hidden loses state on every save/restore cycle.
type Hidden struct {
	PC      int
	cursor  int // silently dropped
	pending []string
}

// Unencodable cannot round-trip at all.
type Unencodable struct {
	Name   string
	Resume func() error
	Wake   chan int
}

// Nested hides the problem one level down.
type Nested struct {
	Meta  string
	Inner struct {
		Callback func()
	}
}

// SelfMarshal controls its own wire format, so field rules do not apply.
type SelfMarshal struct {
	secret int
}

func (s *SelfMarshal) GobEncode() ([]byte, error) { return []byte{byte(s.secret)}, nil }
func (s *SelfMarshal) GobDecode(b []byte) error   { s.secret = int(b[0]); return nil }

func register() {
	gob.Register(&Snapshot{})
	gob.Register(&Hidden{})      // want `gob silently drops unexported field Hidden\.cursor` `gob silently drops unexported field Hidden\.pending`
	gob.Register(&Unencodable{}) // want `field Unencodable\.Resume contains a func` `field Unencodable\.Wake contains a chan`
	gob.Register(&Nested{})      // want `field Nested\.Inner contains a func \(via Callback\)`
	gob.Register(&SelfMarshal{})
	gob.RegisterName("hidden", Hidden{}) // want `gob silently drops unexported field Hidden\.cursor` `gob silently drops unexported field Hidden\.pending`
}

func encode(buf *bytes.Buffer, snap *Snapshot, h *Hidden) error {
	enc := gob.NewEncoder(buf)
	if err := enc.Encode(snap); err != nil {
		return err
	}
	return enc.Encode(h) // want `gob silently drops unexported field Hidden\.cursor` `gob silently drops unexported field Hidden\.pending`
}

// Encoding through an interface is opaque to static analysis; the
// analyzer must stay quiet rather than guess.
func encodeAny(buf *bytes.Buffer, v any) error {
	return gob.NewEncoder(buf).Encode(v)
}

func waived(buf *bytes.Buffer, h *Hidden) error {
	return gob.NewEncoder(buf).Encode(h) //lint:allow gobsafe fixture proves the escape hatch works
}
