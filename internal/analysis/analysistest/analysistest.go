// Package analysistest runs an analyzer over a fixture package under
// testdata/src and checks its diagnostics against `// want` expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library only.
//
// Expectation syntax (a trailing comment on the flagged line):
//
//	x := time.Now() // want `wall clock`
//	a, b := f(), g() // want `first` `second`
//
// Each backquoted or double-quoted string is a regexp that must match one
// diagnostic reported on that line, in column order; lines without a
// want comment must produce no diagnostics. //lint:allow suppression is
// applied before matching, so fixtures can (and do) test the escape
// hatch by expecting nothing on an allowed line.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"dvc/internal/analysis"
)

// Run loads testdata/src/<pkg> (relative to the test's working
// directory), applies the analyzer, and reports mismatches against the
// // want comments through t.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	p := Load(t, pkg)
	diags, err := analysis.Run(p, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	check(t, p.Fset, p.Files, diags)
}

// Load parses and type-checks the fixture package testdata/src/<pkg>,
// for tests that need to run several analyzers over one fixture and
// compare their outputs directly (e.g. proving snapshotstate's closure
// covers findings gobsafe's call-site view misses) rather than match
// // want comments.
func Load(t *testing.T, pkg string) *analysis.Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}

	info := analysis.NewInfo()
	conf := types.Config{Importer: exportImporter(t, fset, files)}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: type-checking %s: %v", dir, err)
	}
	return &analysis.Package{
		PkgPath: pkg,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
}

type key struct {
	file string
	line int
}

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()

	// Group diagnostics by (file, line), keeping column order.
	got := make(map[key][]analysis.Diagnostic)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d)
	}

	// Collect // want expectations.
	want := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, pat := range parseWants(t, pos, strings.TrimPrefix(text, "want")) {
					want[k] = append(want[k], pat)
				}
			}
		}
	}

	// Every line with expectations must match; every diagnostic must be
	// expected.
	var lines []key
	seen := make(map[key]bool)
	for k := range want {
		if !seen[k] {
			seen[k] = true
			lines = append(lines, k)
		}
	}
	for k := range got {
		if !seen[k] {
			seen[k] = true
			lines = append(lines, k)
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].file != lines[j].file {
			return lines[i].file < lines[j].file
		}
		return lines[i].line < lines[j].line
	})

	for _, k := range lines {
		ds, ws := got[k], want[k]
		if len(ds) != len(ws) {
			var msgs []string
			for _, d := range ds {
				msgs = append(msgs, fmt.Sprintf("%s: %s", d.Analyzer, d.Message))
			}
			t.Errorf("%s:%d: got %d diagnostic(s), want %d\n  got: %s",
				k.file, k.line, len(ds), len(ws), strings.Join(msgs, "\n       "))
			continue
		}
		for i, w := range ws {
			if !w.MatchString(ds[i].Message) {
				t.Errorf("%s:%d: diagnostic %q does not match want %q",
					k.file, k.line, ds[i].Message, w)
			}
		}
	}
}

// parseWants extracts the quoted regexps from the text after "want".
func parseWants(t *testing.T, pos token.Position, text string) []*regexp.Regexp {
	t.Helper()
	var pats []*regexp.Regexp
	for {
		text = strings.TrimSpace(text)
		if text == "" {
			break
		}
		var raw string
		switch text[0] {
		case '`':
			end := strings.IndexByte(text[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated backquote in want comment", pos)
			}
			raw = text[1 : 1+end]
			text = text[2+end:]
		case '"':
			var err error
			var rest int
			for rest = 1; rest < len(text); rest++ {
				if text[rest] == '"' && text[rest-1] != '\\' {
					break
				}
			}
			if rest == len(text) {
				t.Fatalf("%s: unterminated quote in want comment", pos)
			}
			raw, err = strconv.Unquote(text[:rest+1])
			if err != nil {
				t.Fatalf("%s: bad want string: %v", pos, err)
			}
			text = text[rest+1:]
		default:
			t.Fatalf("%s: want expectations must be quoted or backquoted regexps, got %q", pos, text)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
		}
		pats = append(pats, re)
	}
	return pats
}

// exportImporter builds an importer that serves the fixture files'
// imports — standard library or this module's own packages — from
// build-cache export data, produced by one `go list -deps -export`
// invocation (fixtures like fleetscope import dvc/internal/fleet and
// dvc/internal/sim to exercise the real types).
func exportImporter(t *testing.T, fset *token.FileSet, files []*ast.File) types.Importer {
	t.Helper()
	pathSet := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				pathSet[p] = true
			}
		}
	}
	var paths []string
	for p := range pathSet {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	exports := make(map[string]string)
	if len(paths) > 0 {
		args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export", "--"}, paths...)
		cmd := exec.Command("go", args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("analysistest: go list: %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(&stdout)
		for dec.More() {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err != nil {
				t.Fatalf("analysistest: go list decode: %v", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysistest: fixture imports %q, which was not listed", path)
		}
		return os.Open(file)
	})
}
