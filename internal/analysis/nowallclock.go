package analysis

import (
	"go/ast"
)

// NoWallClock forbids reading or waiting on the host's wall clock inside
// simulation packages. Simulated components live in virtual time
// (sim.Time); consulting time.Now or sleeping on the host clock makes a
// run depend on scheduler and machine speed, destroying bit-for-bit
// reproducibility. The driver applies this analyzer only to the
// deterministic simulation packages; cmd/ CLIs and _test.go files (which
// legitimately report wall-clock durations to humans) are exempt.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc: "forbid wall clock access (time.Now, time.Sleep, time.After, ...) " +
		"in simulation packages; use the sim.Kernel's virtual time instead",
	Run: runNoWallClock,
}

// forbiddenTimeFuncs are the package-level time functions that read or
// wait on the host clock. Pure conversions and formatting helpers
// (time.Duration, time.Unix, d.String, ...) remain allowed.
var forbiddenTimeFuncs = map[string]string{
	"Now":       "reads the host clock",
	"Since":     "reads the host clock",
	"Until":     "reads the host clock",
	"Sleep":     "blocks on the host clock",
	"After":     "waits on the host clock",
	"AfterFunc": "schedules on the host clock",
	"Tick":      "ticks on the host clock",
	"NewTicker": "ticks on the host clock",
	"NewTimer":  "waits on the host clock",
}

func runNoWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := pkgObject(pass.TypesInfo, sel, "time")
			if !ok {
				return true
			}
			if why, bad := forbiddenTimeFuncs[name]; bad {
				pass.Reportf(sel.Pos(),
					"time.%s %s: simulation code must use the kernel's virtual wall clock (sim.Kernel.Now/After)",
					name, why)
			}
			return true
		})
	}
	return nil
}
