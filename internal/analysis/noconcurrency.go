package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoConcurrency forbids goroutines, channel operations, select, and the
// sync package inside the deterministic core. The discrete-event kernel
// is single-threaded by design: event order is (time, schedule seq), and
// that total order is the entire determinism story. A goroutine or a
// channel handoff inside the core reintroduces the host scheduler as a
// hidden source of ordering, which no amount of seeding can make
// reproducible. sync/atomic is likewise banned here (same reasoning);
// CLIs and tests are exempt via the driver's package scoping.
var NoConcurrency = &Analyzer{
	Name: "noconcurrency",
	Doc: "forbid go statements, channel operations, select, and sync " +
		"primitives inside the deterministic simulation core",
	Run: runNoConcurrency,
}

func runNoConcurrency(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in deterministic core: the host scheduler would decide event order")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in deterministic core: use kernel events (sim.Kernel.After) for handoffs")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in deterministic core: use kernel events (sim.Kernel.After) for handoffs")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select in deterministic core: case choice is scheduler-dependent")
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over channel in deterministic core")
					}
				}
			case *ast.CallExpr:
				if builtinName(info, n) == "close" {
					pass.Reportf(n.Pos(), "close of channel in deterministic core")
				}
				if builtinName(info, n) == "make" && len(n.Args) > 0 {
					if t := info.TypeOf(n.Args[0]); t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							pass.Reportf(n.Pos(), "make(chan) in deterministic core")
						}
					}
				}
			case *ast.SelectorExpr:
				if obj := info.Uses[n.Sel]; obj != nil && obj.Pkg() != nil {
					switch obj.Pkg().Path() {
					case "sync", "sync/atomic":
						pass.Reportf(n.Pos(), "use of %s.%s in deterministic core: the simulation is single-threaded by design",
							obj.Pkg().Name(), obj.Name())
					}
				}
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type in deterministic core")
				return false
			}
			return true
		})
	}
	return nil
}
