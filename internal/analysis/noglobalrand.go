package analysis

import (
	"go/ast"
	"go/types"
)

// NoGlobalRand forbids the package-level math/rand functions (rand.Intn,
// rand.Float64, rand.Seed, ...). Those draw from a process-global source
// whose state is shared across the whole binary: any extra draw anywhere
// perturbs every later draw, so two runs with the same simulation seed
// stop being comparable. Randomness must flow through an explicit
// *rand.Rand threaded from the kernel (sim.Kernel.Rand), the way
// internal/sim/rand.go models. Constructors (rand.New, rand.NewSource,
// rand.NewZipf) stay allowed because they are how that explicit source is
// created.
var NoGlobalRand = &Analyzer{
	Name: "noglobalrand",
	Doc: "forbid package-level math/rand functions; thread an explicit " +
		"*rand.Rand (sim.Kernel.Rand) instead",
	Run: runNoGlobalRand,
}

// allowedRandFuncs are math/rand package-level objects that do not touch
// the global source.
var allowedRandFuncs = map[string]bool{
	// Constructors for explicit sources.
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 source constructors, should the module ever migrate.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runNoGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				name, ok := pkgObject(pass.TypesInfo, sel, path)
				if !ok {
					continue
				}
				if allowedRandFuncs[name] {
					return true
				}
				// Only functions draw from the global source; types
				// (rand.Rand, rand.Source, rand.Zipf) are fine.
				if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
					return true
				}
				pass.Reportf(sel.Pos(),
					"rand.%s uses the process-global math/rand source; draw from an explicit *rand.Rand (sim.Kernel.Rand) instead",
					name)
			}
			return true
		})
	}
	return nil
}
