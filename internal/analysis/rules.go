package analysis

import "strings"

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NoWallClock, NoGlobalRand, MapIter, NoConcurrency, GobSafe,
		SnapshotState, NoAlloc, FleetScope,
	}
}

// ByName resolves an analyzer by its Name, for cmd/dvclint's -run flag.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// simPackages are the deterministic simulation packages: everything that
// executes inside (or feeds state into) the discrete-event kernel. The
// strict analyzers — nowallclock and noconcurrency — apply only here;
// cmd/ CLIs and examples/ may legitimately read the host clock to report
// progress to a human.
//
// dvc/internal/fleet is DELIBERATELY absent: it is the single sanctioned
// concurrency package in the module — the bounded worker pool that fans
// independent trials across cores. The sanction rests on two structural
// properties fleet's API enforces and `go test -race ./...` checks:
//
//  1. Kernels never cross goroutines. Each trial closure builds its own
//     sim.Kernel (and everything hanging off it) and tears it down before
//     returning; no simulation object is ever shared between workers.
//     The fleetscope analyzer enforces this structurally: closures passed
//     to fleet entry points must not capture kernel-reaching state.
//  2. Results merge in index order. fleet.Map returns results indexed by
//     trial number, and all aggregation happens on the caller's goroutine
//     after Map returns — so tables, checks and spliced traces are
//     byte-identical to a serial loop regardless of worker count.
//
// dvc/internal/sim/partition is absent under the same sanction, for the
// partitioned execution engine (conservative-lookahead PDES): it is the
// one place a barrier (sync.Mutex + sync.Cond) and per-partition driver
// goroutines are allowed to exist. The sanction rests on the structural
// properties its protocol enforces and `go test -race ./...` checks:
//
//  1. Sub-kernels never cross goroutines. Each driver builds its own
//     sim.Kernel and everything hanging off it; the fleetscope analyzer
//     holds closures passed to Coordinator.Run to exactly the fleet
//     worker rule (no captured kernel-reaching state).
//  2. Cross-partition effects are ordered by data, not by the scheduler.
//     Messages execute in (arrival time, source partition id, source
//     sequence) order at barriers whose placement is a pure function of
//     the event schedule, so any worker count replays byte-identically.
//
// Any other concurrency belongs in fleet or nowhere. Do not add fleet or
// sim/partition to this map (noconcurrency would reject their own
// implementations), and do not copy their worker-pool or barrier idioms
// into a simulation package (the noconcurrency fixture proves both
// shapes are still flagged there).
var simPackages = map[string]bool{
	"dvc":                   true, // library facade (dvc.go, rm.go)
	"dvc/internal/sim":      true,
	"dvc/internal/core":     true,
	"dvc/internal/vm":       true,
	"dvc/internal/netsim":   true,
	"dvc/internal/payload":  true,
	"dvc/internal/tcp":      true,
	"dvc/internal/guest":    true,
	"dvc/internal/mpi":      true,
	"dvc/internal/hpcc":     true,
	"dvc/internal/rm":       true,
	"dvc/internal/workload": true,
	"dvc/internal/ckpt":     true,
	"dvc/internal/clock":    true,
	"dvc/internal/phys":     true,
	"dvc/internal/storage":  true,
	// Layers above the kernel that still must replay deterministically.
	"dvc/internal/script":      true,
	"dvc/internal/metrics":     true,
	"dvc/internal/experiments": true,
	"dvc/internal/obs":         true,
}

// IsSimPackage reports whether the import path belongs to the
// deterministic simulation core.
func IsSimPackage(pkgPath string) bool { return simPackages[pkgPath] }

// AnalyzersFor returns the analyzers that apply to a package.
//
//   - noglobalrand, mapiter, gobsafe, snapshotstate, noalloc and
//     fleetscope run over every package in the module: a CLI that draws
//     from the global rand source or prints in map order still breaks
//     reproducible trace generation; checkpoint roots, //dvc:hotpath
//     functions and fleet call sites carry their obligations wherever
//     they are declared.
//   - nowallclock and noconcurrency are restricted to the simulation
//     packages; cmd/ binaries and examples/ are the sanctioned home for
//     wall-clock progress reporting and (hypothetical) concurrency.
//
// Test files never reach the analyzers at all: the loader only feeds
// non-test GoFiles, which is the _test.go wall-clock allowlist from the
// determinism spec.
func AnalyzersFor(pkgPath string) []*Analyzer {
	out := []*Analyzer{NoGlobalRand, MapIter, GobSafe, SnapshotState, NoAlloc, FleetScope}
	if IsSimPackage(pkgPath) {
		out = append(out, NoWallClock, NoConcurrency)
	}
	return out
}

// InModule reports whether pkgPath is part of this module (the lint
// target), as opposed to a dependency.
func InModule(pkgPath string) bool {
	return pkgPath == "dvc" || strings.HasPrefix(pkgPath, "dvc/")
}
