package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SnapshotState is the whole-type-graph checkpoint analyzer. Where
// gobsafe vets the static type at each encoding/gob call site,
// snapshotstate starts from the *declared* checkpoint roots — types
// marked with a //dvc:checkpoint-root directive (guest.Snapshot,
// tcp.StackSnapshot, vm.Image, ...) plus every type registered with
// gob.Register (the concrete payloads that travel behind interface
// fields) — and computes the full reachability closure of their field
// graphs through structs, pointers, slices, arrays and maps. Every
// field in the closure must round-trip through gob: no unexported
// fields (silently dropped, including unexported embedded types, which
// gobsafe's call-site walk exempts), no func or chan anywhere in a
// field's type.
//
// The point of the closure view: checkpoint state accretes far from the
// encode call. A field added to tcp.ConnSnapshot is serialized because
// guest.Snapshot reaches it, even though no gob call in internal/tcp
// ever mentions it — a call-site analyzer never sees it. The closure is
// also what the driver emits as STATE_MANIFEST.txt (see StateManifest),
// so every (type, field) that participates in a checkpoint is visible
// in review when it changes.
//
// Types that implement GobEncoder/BinaryMarshaler own their wire format
// and terminate the walk, as in gobsafe. Interface-typed fields cannot
// be traversed statically; their concrete payloads are covered by the
// gob.Register roots instead.
var SnapshotState = &Analyzer{
	Name: "snapshotstate",
	Doc: "compute the reachability closure of declared checkpoint roots " +
		"(//dvc:checkpoint-root types and gob.Register payloads) and flag " +
		"fields gob would drop or reject anywhere in it",
	Run: runSnapshotState,
}

// stateRoot is one entry point into the checkpoint state graph.
type stateRoot struct {
	pos  token.Pos // where to report problems: the root declaration or gob call
	name string    // display name for diagnostics
	typ  types.Type
}

func runSnapshotState(pass *Pass) error {
	for _, root := range collectStateRoots(pass.TypesInfo, pass.Files) {
		walkStateGraph(root.typ, func(path string, problem string) {
			pass.Reportf(root.pos, "checkpoint state reachable from %s: %s %s", root.name, path, problem)
		}, nil)
	}
	return nil
}

// collectStateRoots gathers the package's checkpoint roots: type
// declarations carrying //dvc:checkpoint-root and the static types of
// gob.Register/RegisterName payloads. The result is in source order
// (declarations first), which makes diagnostic order deterministic.
func collectStateRoots(info *types.Info, files []*ast.File) []stateRoot {
	var roots []stateRoot
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasDirective(gd.Doc, CheckpointRootDirective) && !hasDirective(ts.Doc, CheckpointRootDirective) {
					continue
				}
				if obj, ok := info.Defs[ts.Name].(*types.TypeName); ok {
					roots = append(roots, stateRoot{pos: ts.Name.Pos(), name: obj.Name(), typ: obj.Type()})
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || isConversion(info, call) {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/gob" {
				return true
			}
			var arg ast.Expr
			switch obj.Name() {
			case "Register":
				if len(call.Args) == 1 {
					arg = call.Args[0]
				}
			case "RegisterName":
				if len(call.Args) == 2 {
					arg = call.Args[1]
				}
			}
			if arg == nil {
				return true
			}
			if t := info.TypeOf(arg); t != nil {
				roots = append(roots, stateRoot{pos: call.Pos(), name: typeDisplayName(t), typ: t})
			}
			return true
		})
	}
	return roots
}

// typeDisplayName names a root type for diagnostics ("*HPL" -> "HPL").
func typeDisplayName(t types.Type) string {
	t = deref(t)
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// walkStateGraph traverses the checkpoint state graph rooted at t. For
// every problematic field it calls report with a short field path and
// the problem text; when entries is non-nil it records one manifest line
// per (struct type, field) visited.
func walkStateGraph(t types.Type, report func(path, problem string), entries map[string]bool) {
	visited := make(map[types.Type]bool)
	var walk func(t types.Type)
	walk = func(t types.Type) {
		if t == nil || visited[t] {
			return
		}
		visited[t] = true
		if d := deref(t); d != t {
			t = d
			if visited[t] {
				return
			}
			visited[t] = true
		}
		if hasCustomWireFormat(t) {
			return
		}
		named, _ := t.(*types.Named)
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			switch u := t.Underlying().(type) {
			case *types.Slice:
				walk(u.Elem())
			case *types.Array:
				walk(u.Elem())
			case *types.Map:
				walk(u.Key())
				walk(u.Elem())
			}
			return
		}
		owner := "struct"
		if named != nil {
			owner = named.Obj().Name()
			if pkg := named.Obj().Pkg(); pkg != nil {
				owner = pkg.Path() + "." + owner
			}
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" {
				continue
			}
			fieldPath := owner + "." + f.Name()
			_, isIface := f.Type().Underlying().(*types.Interface)
			if entries != nil {
				line := fieldPath + "\t" + types.TypeString(f.Type(), nil)
				if isIface {
					line += "\t(interface: concrete payloads are gob.Register roots)"
				}
				entries[line] = true
			}
			if !f.Exported() {
				if f.Embedded() {
					if report != nil {
						report(fieldPath, "is an unexported embedded field, which gob silently drops (promote it to an exported field or type)")
					}
				} else if report != nil {
					report(fieldPath, "is unexported: gob silently drops it, so this state would not survive save/restore (export it, or give the type a custom wire format)")
				}
				continue
			}
			if bad, kind := containsBadKind(f.Type(), make(map[types.Type]bool)); bad {
				if report != nil {
					report(fieldPath, fmt.Sprintf("contains a %s, which gob cannot encode: checkpointing would fail or restore nil", kind))
				}
				continue
			}
			if isIface {
				continue // opaque: concrete payloads enter via gob.Register roots
			}
			walk(f.Type())
		}
	}
	walk(t)
}

// StateManifest computes the checkpoint state manifest over a set of
// type-checked packages: the sorted, deduplicated list of every root and
// every (type, field) in the reachability closure. The output depends
// only on the type graph — no positions, no map order — so the same
// source always produces byte-identical bytes, and the committed
// STATE_MANIFEST.txt golden file diffs meaningfully in review when
// checkpoint state is added or removed.
func StateManifest(pkgs []*Package) []byte {
	rootSet := make(map[string]bool)
	entrySet := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, root := range collectStateRoots(pkg.Info, pkg.Files) {
			name := typeDisplayName(root.typ)
			if named, ok := deref(root.typ).(*types.Named); ok {
				if p := named.Obj().Pkg(); p != nil {
					name = p.Path() + "." + name
				}
			}
			rootSet[name] = true
			walkStateGraph(root.typ, nil, entrySet)
		}
	}
	var b strings.Builder
	b.WriteString("# STATE_MANIFEST.txt — checkpoint state closure, generated by dvclint.\n")
	b.WriteString("# Every (type, field) below participates in a checkpoint image: it is\n")
	b.WriteString("# reachable from a //dvc:checkpoint-root type or a gob.Register payload.\n")
	b.WriteString("# Regenerate with: go run ./cmd/dvclint -write-manifest STATE_MANIFEST.txt ./...\n")
	b.WriteString("# CI diffs this file; review changes as checkpoint-format changes.\n")
	b.WriteString("\n[roots]\n")
	for _, line := range sortedKeys(rootSet) {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteString("\n[state]\n")
	for _, line := range sortedKeys(entrySet) {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
