// Package report renders dvclint findings for humans and machines.
//
// The driver (cmd/dvclint) converts analysis.Diagnostics into Findings
// with module-relative paths, sorts them into the canonical order, and
// writes one of three formats:
//
//	text   file:line:col: [analyzer] message        (for terminals)
//	json   a stable JSON array of findings          (for scripts)
//	sarif  SARIF 2.1.0                              (for CI annotations)
//
// All three are deterministic: same findings, same bytes. The canonical
// order is (file, line, analyzer, column, message), so output diffs
// cleanly across runs and machines.
//
// The package also implements the reviewed-baseline mechanism: a
// baseline file records findings that are understood and intentionally
// outstanding, keyed by (analyzer, file, message) — deliberately not by
// line number, so unrelated edits above a finding do not invalidate the
// baseline. Findings matching the baseline are filtered out; baseline
// entries matching nothing are reported as stale so the file shrinks as
// debt is paid.
package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Finding is one diagnostic with its position resolved to a
// module-relative path.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Package  string `json:"package"`
}

// Sort orders findings canonically: by file, then line, then analyzer,
// then column, then message. Every output format relies on this order.
func Sort(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
}

// WriteText writes the terminal format, one finding per line.
func WriteText(w io.Writer, fs []Finding) error {
	bw := bufio.NewWriter(w)
	for _, f := range fs {
		fmt.Fprintf(bw, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	return bw.Flush()
}

// WriteJSON writes the findings as an indented JSON array (an empty
// slice renders as [], never null).
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}

// sarif* model the minimal SARIF 2.1.0 subset CI annotation consumers
// need: one run, one driver, rules with help text, results with
// physical locations.
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription sarifMessage  `json:"shortDescription"`
	Help             *sarifMessage `json:"help,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// RuleDoc describes one analyzer for the SARIF rules table.
type RuleDoc struct {
	Name string
	Doc  string
}

// WriteSARIF writes a SARIF 2.1.0 log. rules lists every analyzer that
// ran (not just those with findings), so CI shows the full suite; URIs
// are the module-relative paths with SRCROOT as the base id.
func WriteSARIF(w io.Writer, fs []Finding, rules []RuleDoc) error {
	sr := make([]sarifRule, 0, len(rules))
	for _, r := range rules {
		rule := sarifRule{ID: r.Name, ShortDescription: sarifMessage{Text: r.Name}}
		if r.Doc != "" {
			rule.Help = &sarifMessage{Text: r.Doc}
		}
		sr = append(sr, rule)
	}
	sort.Slice(sr, func(i, j int) bool { return sr[i].ID < sr[j].ID })
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File, URIBaseID: "SRCROOT"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dvclint", Rules: sr}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// --- baseline ---

// baselineKey identifies a finding across line drift: unrelated edits
// above a finding move its line but not its key.
func baselineKey(f Finding) string {
	return f.Analyzer + "\t" + f.File + "\t" + f.Message
}

// Baseline is a set of reviewed, intentionally outstanding findings.
type Baseline struct {
	keys map[string]bool
}

// ParseBaseline reads a baseline file: tab-separated
// analyzer<TAB>file<TAB>message lines, '#' comments and blank lines
// ignored.
func ParseBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{keys: make(map[string]bool)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") != 2 {
			return nil, fmt.Errorf("baseline line %d: want analyzer<TAB>file<TAB>message, got %q", n, line)
		}
		b.keys[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Filter removes findings present in the baseline and returns the
// survivors plus the baseline entries that matched nothing (stale debt
// that has been paid and should be removed from the file).
func (b *Baseline) Filter(fs []Finding) (kept []Finding, stale []string) {
	matched := make(map[string]bool)
	for _, f := range fs {
		key := baselineKey(f)
		if b.keys[key] {
			matched[key] = true
			continue
		}
		kept = append(kept, f)
	}
	for key := range b.keys {
		if !matched[key] {
			stale = append(stale, strings.ReplaceAll(key, "\t", " | "))
		}
	}
	sort.Strings(stale)
	return kept, stale
}

// WriteBaseline writes the findings as a baseline file, sorted and
// deduplicated.
func WriteBaseline(w io.Writer, fs []Finding) error {
	keys := make(map[string]bool, len(fs))
	for _, f := range fs {
		keys[baselineKey(f)] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# dvclint baseline: reviewed findings that are intentionally outstanding.")
	fmt.Fprintln(bw, "# Format: analyzer<TAB>file<TAB>message. Keyed without line numbers so")
	fmt.Fprintln(bw, "# unrelated edits do not invalidate entries. Regenerate with -write-baseline;")
	fmt.Fprintln(bw, "# stale entries (debt that has been paid) are reported so this file shrinks.")
	for _, k := range sorted {
		fmt.Fprintln(bw, k)
	}
	return bw.Flush()
}
