package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sample() []Finding {
	// Deliberately out of order on every sort key.
	return []Finding{
		{File: "internal/sim/sim.go", Line: 40, Col: 2, Analyzer: "noalloc", Message: "z message", Package: "dvc/internal/sim"},
		{File: "internal/guest/snapshot.go", Line: 12, Col: 9, Analyzer: "snapshotstate", Message: "m1", Package: "dvc/internal/guest"},
		{File: "internal/sim/sim.go", Line: 40, Col: 2, Analyzer: "mapiter", Message: "a message", Package: "dvc/internal/sim"},
		{File: "internal/sim/sim.go", Line: 7, Col: 1, Analyzer: "noalloc", Message: "m2", Package: "dvc/internal/sim"},
		{File: "internal/guest/snapshot.go", Line: 12, Col: 3, Analyzer: "snapshotstate", Message: "m3", Package: "dvc/internal/guest"},
	}
}

// TestSortOrder pins the canonical (file, line, analyzer, col, message)
// diagnostic order the ISSUE requires.
func TestSortOrder(t *testing.T) {
	fs := sample()
	Sort(fs)
	var got []string
	for _, f := range fs {
		got = append(got, strings.Join([]string{f.File, f.Analyzer, f.Message}, "|"))
	}
	want := []string{
		"internal/guest/snapshot.go|snapshotstate|m3",
		"internal/guest/snapshot.go|snapshotstate|m1",
		"internal/sim/sim.go|noalloc|m2",
		"internal/sim/sim.go|mapiter|a message",
		"internal/sim/sim.go|noalloc|z message",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s\nfull: %v", i, got[i], want[i], got)
		}
	}
}

// TestDeterministicOutput renders the same findings repeatedly through
// every writer and demands byte-identical output across runs.
func TestDeterministicOutput(t *testing.T) {
	rules := []RuleDoc{{Name: "noalloc", Doc: "no allocs"}, {Name: "mapiter"}, {Name: "snapshotstate", Doc: "closure"}}
	render := func() (string, string, string) {
		fs := sample()
		Sort(fs)
		var text, js, sarif bytes.Buffer
		if err := WriteText(&text, fs); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&js, fs); err != nil {
			t.Fatal(err)
		}
		if err := WriteSARIF(&sarif, fs, rules); err != nil {
			t.Fatal(err)
		}
		return text.String(), js.String(), sarif.String()
	}
	t1, j1, s1 := render()
	for i := 0; i < 5; i++ {
		t2, j2, s2 := render()
		if t1 != t2 || j1 != j2 || s1 != s2 {
			t.Fatalf("output not byte-identical across runs (iteration %d)", i)
		}
	}
	if !strings.Contains(t1, "internal/sim/sim.go:40:2: [mapiter] a message") {
		t.Fatalf("text format changed:\n%s", t1)
	}
}

// TestSARIFShape checks the fields CI annotation consumers rely on.
func TestSARIFShape(t *testing.T) {
	fs := sample()
	Sort(fs)
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, fs, []RuleDoc{{Name: "noalloc", Doc: "d"}}); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log["version"] != "2.1.0" {
		t.Fatalf("version = %v, want 2.1.0", log["version"])
	}
	runs := log["runs"].([]any)
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "dvclint" {
		t.Fatalf("driver name = %v", driver["name"])
	}
	results := run["results"].([]any)
	if len(results) != len(fs) {
		t.Fatalf("results = %d, want %d", len(results), len(fs))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != "snapshotstate" || first["level"] != "error" {
		t.Fatalf("first result = %v", first)
	}
	loc := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	if loc["artifactLocation"].(map[string]any)["uri"] != "internal/guest/snapshot.go" {
		t.Fatalf("uri = %v", loc)
	}
	if loc["region"].(map[string]any)["startLine"].(float64) != 12 {
		t.Fatalf("startLine = %v", loc)
	}
}

// TestBaselineRoundTrip: write, parse, filter; line-number drift must
// not invalidate entries, and paid-off entries must surface as stale.
func TestBaselineRoundTrip(t *testing.T) {
	fs := sample()
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, fs); err != nil {
		t.Fatal(err)
	}
	b, err := ParseBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Drift every line number: the baseline must still match everything.
	drifted := sample()
	for i := range drifted {
		drifted[i].Line += 100
		drifted[i].Col++
	}
	kept, stale := b.Filter(drifted)
	if len(kept) != 0 {
		t.Fatalf("kept %d findings despite baseline: %v", len(kept), kept)
	}
	if len(stale) != 0 {
		t.Fatalf("unexpected stale entries: %v", stale)
	}
	// Remove one finding: its baseline entry must be reported stale.
	kept, stale = b.Filter(drifted[1:])
	if len(stale) != 1 || !strings.Contains(stale[0], drifted[0].Message) {
		t.Fatalf("stale = %v, want one entry mentioning %q", stale, drifted[0].Message)
	}
	if len(kept) != 0 {
		t.Fatalf("kept = %v", kept)
	}
	// A new finding not in the baseline survives the filter.
	extra := Finding{File: "x.go", Line: 1, Col: 1, Analyzer: "noalloc", Message: "new"}
	kept, _ = b.Filter(append(drifted, extra))
	if len(kept) != 1 || kept[0].Message != "new" {
		t.Fatalf("kept = %v, want the new finding only", kept)
	}
}

func TestParseBaselineRejectsMalformed(t *testing.T) {
	_, err := ParseBaseline(strings.NewReader("noalloc only-one-tab\there\n"))
	if err == nil {
		t.Fatal("want error for malformed baseline line")
	}
}
