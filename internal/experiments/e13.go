package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/phys"
	"dvc/internal/sim"
)

func init() {
	register("E13", "Extension: pre-copy live migration vs LSC stop-and-copy", runE13)
}

// runE13 extends §4's migration work item with pre-copy live migration:
// the bulk of guest memory moves while the cluster keeps computing, so
// downtime shrinks from RAM/bandwidth to residual/bandwidth — until the
// guests dirty memory faster than the wire drains it, where pre-copy
// degenerates toward stop-and-copy with extra traffic.
func runE13(opts Options) *Result {
	res := &Result{}
	const nodes = 4

	type out struct {
		down   sim.Time
		total  sim.Time
		rounds int
		copied int64
		ok     bool
	}
	run := func(seed int64, dirtyRate float64, live bool) out {
		b := newBed(seed, map[string]int{"alpha": nodes, "beta": nodes}, coreNTP(), true)
		vc, err := b.mgr.Allocate(core.VCSpec{Name: "m", Nodes: nodes, VMRAM: vmRAM, Clusters: []string{"alpha"}}, nil)
		if err != nil {
			panic(err)
		}
		b.k.RunFor(30 * sim.Second)
		vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(1<<20, 20*sim.Millisecond, 1024) })
		b.k.RunFor(sim.Second)
		for _, d := range vc.Domains() {
			d.SetDirtyRate(dirtyRate)
		}
		targets := b.site.UpNodes("beta")
		o := out{}
		deadline := b.k.Now() + 30*sim.Minute
		if live {
			var r *core.LiveMigrationResult
			if err := b.co.LiveMigrate(vc, targets, core.DefaultLiveConfig(), func(lr *core.LiveMigrationResult) { r = lr }); err != nil {
				panic(err)
			}
			for r == nil && b.k.Now() < deadline {
				b.k.RunFor(sim.Second)
			}
			if r != nil && r.OK {
				o = out{down: r.Downtime, total: r.TotalTime, rounds: r.Rounds, copied: r.BytesCopied, ok: true}
			}
		} else {
			var r *core.CheckpointResult
			start := b.k.Now()
			if err := b.co.Migrate(vc, targets, func(cr *core.CheckpointResult) { r = cr }); err != nil {
				panic(err)
			}
			for r == nil && b.k.Now() < deadline {
				b.k.RunFor(sim.Second)
			}
			if r != nil && r.OK {
				copied := int64(0)
				for _, img := range r.Images {
					copied += 2 * img.SizeBytes() // store write + read
				}
				o = out{down: r.Downtime, total: b.k.Now() - start, rounds: 1, copied: copied, ok: true}
			}
		}
		// The guests must survive either way.
		if o.ok {
			for _, node := range vc.PhysicalNodes() {
				if node.Cluster() != "beta" {
					o.ok = false
				}
			}
		}
		return o
	}

	tbl := metrics.NewTable(fmt.Sprintf("E13: migrating a running %d-VM cluster (%d MiB guests)", nodes, vmRAM>>20),
		"guest dirty rate", "method", "downtime", "total", "rounds", "bytes moved")
	outs := map[string]out{}
	for i, rate := range []float64{5e6, 40e6, 100e6} {
		stop := run(opts.Seed+int64(i), rate, false)
		live := run(opts.Seed+int64(i), rate, true)
		key := fmt.Sprintf("%.0f", rate/1e6)
		outs["stop"+key] = stop
		outs["live"+key] = live
		label := fmt.Sprintf("%.0f MB/s", rate/1e6)
		tbl.Row(label, "stop-and-copy", stop.down, stop.total, stop.rounds, fmtBytes(stop.copied))
		tbl.Row(label, "pre-copy live", live.down, live.total, live.rounds, fmtBytes(live.copied))
	}
	res.table(tbl, opts.out())

	res.check("all migrations complete",
		outs["stop5"].ok && outs["live5"].ok && outs["stop100"].ok && outs["live100"].ok, "")
	res.check("pre-copy slashes downtime for calm guests",
		outs["live5"].down*5 < outs["stop5"].down,
		"live %v vs stop %v", outs["live5"].down, outs["stop5"].down)
	res.check("hot guests erode the pre-copy win",
		outs["live100"].down > outs["live5"].down,
		"100MB/s: %v vs 5MB/s: %v", outs["live100"].down, outs["live5"].down)
	res.check("pre-copy pays with extra traffic on hot guests",
		outs["live100"].copied > outs["stop100"].copied/2+int64(nodes)*vmRAM,
		"live moved %s vs stop %s", fmtBytes(outs["live100"].copied), fmtBytes(outs["stop100"].copied))

	// WAN section: the same migration crossing datacenters over the
	// 100 MB/s WAN, where every elided byte matters. The delta variant
	// folds the page table before the first round and skips chunks
	// nobody ever dirtied (golden-image template, zeroed RAM).
	type wanOut struct {
		down    sim.Time
		copied  int64
		skipped int64
		ok      bool
	}
	runWAN := func(seed int64, dirtyRate float64, live, delta bool) wanOut {
		b := newWANBed(seed, nodes, coreNTP())
		src, dst := phys.ClusterName(0, 0), phys.ClusterName(1, 0)
		vc, err := b.mgr.Allocate(core.VCSpec{Name: "wm", Nodes: nodes, VMRAM: vmRAM, Clusters: []string{src}}, nil)
		if err != nil {
			panic(err)
		}
		for _, d := range vc.Domains() {
			d.SetDirtyRate(dirtyRate)
		}
		b.k.RunFor(30 * sim.Second)
		vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(1<<20, 20*sim.Millisecond, 1024) })
		b.k.RunFor(sim.Second)
		targets := b.site.UpNodes(dst)
		o := wanOut{}
		deadline := b.k.Now() + 60*sim.Minute
		if live {
			lcfg := core.DefaultLiveConfig()
			lcfg.Delta = delta
			var r *core.LiveMigrationResult
			if err := b.co.LiveMigrate(vc, targets, lcfg, func(lr *core.LiveMigrationResult) { r = lr }); err != nil {
				panic(err)
			}
			for r == nil && b.k.Now() < deadline {
				b.k.RunFor(sim.Second)
			}
			if r != nil && r.OK {
				o = wanOut{down: r.Downtime, copied: r.BytesCopied, skipped: r.BytesSkipped, ok: true}
			}
		} else {
			var r *core.CheckpointResult
			if err := b.co.Migrate(vc, targets, func(cr *core.CheckpointResult) { r = cr }); err != nil {
				panic(err)
			}
			for r == nil && b.k.Now() < deadline {
				b.k.RunFor(sim.Second)
			}
			if r != nil && r.OK {
				copied := int64(0)
				for _, img := range r.Images {
					copied += 2 * img.SizeBytes()
				}
				o = wanOut{down: r.Downtime, copied: copied, ok: true}
			}
		}
		return o
	}

	wtbl := metrics.NewTable(fmt.Sprintf("E13b: the same %d-VM migration across a 2-datacenter WAN (100 MB/s, 2.5 ms)", nodes),
		"guest dirty rate", "method", "downtime", "bytes moved", "bytes skipped")
	wans := map[string]wanOut{}
	for i, rate := range []float64{5e6, 40e6} {
		stop := runWAN(opts.Seed+10+int64(i), rate, false, false)
		live := runWAN(opts.Seed+10+int64(i), rate, true, false)
		deltaO := runWAN(opts.Seed+10+int64(i), rate, true, true)
		key := fmt.Sprintf("%.0f", rate/1e6)
		wans["stop"+key], wans["live"+key], wans["delta"+key] = stop, live, deltaO
		label := fmt.Sprintf("%.0f MB/s", rate/1e6)
		wtbl.Row(label, "stop-and-copy", stop.down, fmtBytes(stop.copied), "-")
		wtbl.Row(label, "pre-copy live", live.down, fmtBytes(live.copied), "-")
		wtbl.Row(label, "pre-copy + delta", deltaO.down, fmtBytes(deltaO.copied), fmtBytes(deltaO.skipped))
	}
	res.table(wtbl, opts.out())

	res.check("all WAN migrations complete",
		wans["stop5"].ok && wans["live5"].ok && wans["delta5"].ok &&
			wans["stop40"].ok && wans["live40"].ok && wans["delta40"].ok, "")
	res.check("delta pre-copy elides untouched RAM on the WAN",
		wans["delta5"].skipped > 0 && wans["delta5"].copied < wans["live5"].copied,
		"delta moved %s (skipped %s) vs live %s",
		fmtBytes(wans["delta5"].copied), fmtBytes(wans["delta5"].skipped), fmtBytes(wans["live5"].copied))
	res.check("delta elision decays as guests dirty more RAM",
		wans["delta40"].skipped <= wans["delta5"].skipped,
		"40MB/s skipped %s vs 5MB/s skipped %s",
		fmtBytes(wans["delta40"].skipped), fmtBytes(wans["delta5"].skipped))
	return res
}
