package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/sim"
)

func init() {
	register("E13", "Extension: pre-copy live migration vs LSC stop-and-copy", runE13)
}

// runE13 extends §4's migration work item with pre-copy live migration:
// the bulk of guest memory moves while the cluster keeps computing, so
// downtime shrinks from RAM/bandwidth to residual/bandwidth — until the
// guests dirty memory faster than the wire drains it, where pre-copy
// degenerates toward stop-and-copy with extra traffic.
func runE13(opts Options) *Result {
	res := &Result{}
	const nodes = 4

	type out struct {
		down   sim.Time
		total  sim.Time
		rounds int
		copied int64
		ok     bool
	}
	run := func(seed int64, dirtyRate float64, live bool) out {
		b := newBed(seed, map[string]int{"alpha": nodes, "beta": nodes}, coreNTP(), true)
		vc, err := b.mgr.Allocate(core.VCSpec{Name: "m", Nodes: nodes, VMRAM: vmRAM, Clusters: []string{"alpha"}}, nil)
		if err != nil {
			panic(err)
		}
		b.k.RunFor(30 * sim.Second)
		vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(1<<20, 20*sim.Millisecond, 1024) })
		b.k.RunFor(sim.Second)
		for _, d := range vc.Domains() {
			d.SetDirtyRate(dirtyRate)
		}
		targets := b.site.UpNodes("beta")
		o := out{}
		deadline := b.k.Now() + 30*sim.Minute
		if live {
			var r *core.LiveMigrationResult
			if err := b.co.LiveMigrate(vc, targets, core.DefaultLiveConfig(), func(lr *core.LiveMigrationResult) { r = lr }); err != nil {
				panic(err)
			}
			for r == nil && b.k.Now() < deadline {
				b.k.RunFor(sim.Second)
			}
			if r != nil && r.OK {
				o = out{down: r.Downtime, total: r.TotalTime, rounds: r.Rounds, copied: r.BytesCopied, ok: true}
			}
		} else {
			var r *core.CheckpointResult
			start := b.k.Now()
			if err := b.co.Migrate(vc, targets, func(cr *core.CheckpointResult) { r = cr }); err != nil {
				panic(err)
			}
			for r == nil && b.k.Now() < deadline {
				b.k.RunFor(sim.Second)
			}
			if r != nil && r.OK {
				copied := int64(0)
				for _, img := range r.Images {
					copied += 2 * img.SizeBytes() // store write + read
				}
				o = out{down: r.Downtime, total: b.k.Now() - start, rounds: 1, copied: copied, ok: true}
			}
		}
		// The guests must survive either way.
		if o.ok {
			for _, node := range vc.PhysicalNodes() {
				if node.Cluster() != "beta" {
					o.ok = false
				}
			}
		}
		return o
	}

	tbl := metrics.NewTable(fmt.Sprintf("E13: migrating a running %d-VM cluster (%d MiB guests)", nodes, vmRAM>>20),
		"guest dirty rate", "method", "downtime", "total", "rounds", "bytes moved")
	outs := map[string]out{}
	for i, rate := range []float64{5e6, 40e6, 100e6} {
		stop := run(opts.Seed+int64(i), rate, false)
		live := run(opts.Seed+int64(i), rate, true)
		key := fmt.Sprintf("%.0f", rate/1e6)
		outs["stop"+key] = stop
		outs["live"+key] = live
		label := fmt.Sprintf("%.0f MB/s", rate/1e6)
		tbl.Row(label, "stop-and-copy", stop.down, stop.total, stop.rounds, fmtBytes(stop.copied))
		tbl.Row(label, "pre-copy live", live.down, live.total, live.rounds, fmtBytes(live.copied))
	}
	res.table(tbl, opts.out())

	res.check("all migrations complete",
		outs["stop5"].ok && outs["live5"].ok && outs["stop100"].ok && outs["live100"].ok, "")
	res.check("pre-copy slashes downtime for calm guests",
		outs["live5"].down*5 < outs["stop5"].down,
		"live %v vs stop %v", outs["live5"].down, outs["stop5"].down)
	res.check("hot guests erode the pre-copy win",
		outs["live100"].down > outs["live5"].down,
		"100MB/s: %v vs 5MB/s: %v", outs["live100"].down, outs["live5"].down)
	res.check("pre-copy pays with extra traffic on hot guests",
		outs["live100"].copied > outs["stop100"].copied/2+int64(nodes)*vmRAM,
		"live moved %s vs stop %s", fmtBytes(outs["live100"].copied), fmtBytes(outs["stop100"].copied))
	return res
}
