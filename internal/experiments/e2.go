package experiments

import (
	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/obs"
	"dvc/internal/sim"
)

func init() {
	register("E2", "NTP LSC: save/restore reliability at 26 VMs on 26 nodes (§3.2)", runE2)
}

// runE2 reproduces the paper's headline result: "In more than 2000 tests
// involving 26 virtual machines on 26 different nodes, no failures to
// either save or restore all virtual machines occurred." Both PTRANS and
// HPL are exercised (PTRANS being the communication-heavy consistency
// stress), across problem sizes and checkpoint timings, plus a bulk
// halo-exchange volume run for the trial count.
func runE2(opts Options) *Result {
	res := &Result{}
	const nodes = 26

	// Volume trials (halo workload, cheap): paper-scale count with -full.
	volume := opts.Trials
	if volume == 0 {
		volume = 30
	}
	if opts.Full {
		volume = 2000
	}
	lsc := core.DefaultNTPLSC()

	tbl := metrics.NewTable("E2: NTP-coordinated LSC, 26 VMs on 26 nodes",
		"workload", "trials", "save/restore failures", "skew.mean", "skew.max", "downtime.mean")

	type row struct {
		name     string
		trials   int
		failures int
		skew     metrics.Sample
		down     metrics.Sample
	}

	// Bulk trials with continuous halo traffic, fanned across the fleet
	// pool; aggregation walks the results in trial order, so the table —
	// and with tracing on, the spliced JSONL — is byte-identical to the
	// serial loop at any Options.Parallel.
	bulk := row{name: "halo-26", trials: volume}
	for _, r := range forEachTrial(opts, volume, func(trial int, tr *obs.Tracer) lscTrialResult {
		return lscTrialT(opts.Seed+int64(trial), nodes, lsc, true, tr, opts.Partitions)
	}) {
		if !r.ok {
			bulk.failures++
		}
		bulk.skew.AddTime(r.skew)
		bulk.down.AddTime(r.downtime)
	}
	tbl.Row(bulk.name, bulk.trials, bulk.failures,
		fmtSeconds(bulk.skew.Mean()), fmtSeconds(bulk.skew.Max()), fmtSeconds(bulk.down.Mean()))

	// PTRANS and HPL trials across problem sizes and checkpoint delays,
	// verified numerically after restore.
	hpccTrials := 3
	if opts.Trials > 0 && opts.Trials < hpccTrials {
		// A small explicit -trials request scales the verified HPCC matrix
		// down too (the replay-digest test runs E2 twice and wants the
		// cheapest run that still exercises every code path once).
		hpccTrials = opts.Trials
	}
	if opts.Full {
		hpccTrials = 10
	}
	// Flatten the (size, trial) × {PTRANS, HPL} matrix into one trial
	// list in the serial emission order: for each size, for each trial,
	// PTRANS then HPL.
	type hpccSpec struct {
		seed    int64
		isPT    bool
		makeApp func(int) mpi.App
	}
	var specs []hpccSpec
	for _, n := range []int{26, 52} {
		n := n
		for trial := 0; trial < hpccTrials; trial++ {
			trial := trial
			// PTRANS: ~1200 repetitions keep traffic flowing through the
			// save instant (the paper's consistency stress).
			specs = append(specs, hpccSpec{
				seed: opts.Seed + int64(7000+n+trial),
				isPT: true,
				makeApp: func(int) mpi.App {
					return hpcc.NewPTRANS(n, int64(trial), 1200, 0.02)
				},
			})
			// HPL: pick a compute rate that stretches the factorisation
			// to ~8 s of simulated time so the checkpoint lands mid-run.
			hn := 4 * n
			rate := (2.0 / 3.0 * float64(hn) * float64(hn) * float64(hn) / float64(nodes)) / 8 / 1e9
			specs = append(specs, hpccSpec{
				seed: opts.Seed + int64(8000+n+trial),
				makeApp: func(int) mpi.App {
					return hpcc.NewHPL(hn, int64(trial), rate)
				},
			})
		}
	}
	hpccOuts := forEachTrial(opts, len(specs), func(i int, tr *obs.Tracer) hpccTrialResult {
		return hpccLSCTrial(specs[i].seed, nodes, lsc, true, specs[i].makeApp, tr, opts.Partitions)
	})
	ptransFail, hplFail := 0, 0
	var ptransSkew, hplSkew metrics.Sample
	nPT, nHPL := 0, 0
	for i, out := range hpccOuts {
		skew := &hplSkew
		if specs[i].isPT {
			skew = &ptransSkew
		}
		if out.skewValid {
			skew.AddTime(out.skew)
		}
		if specs[i].isPT {
			nPT++
			if !out.ok {
				ptransFail++
			}
		} else {
			nHPL++
			if !out.ok {
				hplFail++
			}
		}
	}
	tbl.Row("ptrans", nPT, ptransFail, fmtSeconds(ptransSkew.Mean()), fmtSeconds(ptransSkew.Max()), "-")
	tbl.Row("hpl", nHPL, hplFail, fmtSeconds(hplSkew.Mean()), fmtSeconds(hplSkew.Max()), "-")
	res.table(tbl, opts.out())

	total := bulk.trials + nPT + nHPL
	failures := bulk.failures + ptransFail + hplFail
	res.check("zero save/restore failures", failures == 0,
		"%d failures in %d trials (paper: 0 in >2000)", failures, total)
	res.check("NTP skew is milliseconds", bulk.skew.Max() < 0.05,
		"max skew %.1f ms", bulk.skew.Max()*1000)
	return res
}

// hpccTrialResult reports one verified HPCC trial. The skew is recorded
// (skewValid) as soon as the checkpoint commits, even when a later stage
// fails — mirroring the serial loop's sample contents exactly.
type hpccTrialResult struct {
	ok        bool
	skew      sim.Time
	skewValid bool
}

// hpccLSCTrial is lscTrial for a verified HPCC workload: checkpoint
// mid-run, then require successful completion AND numerical verification.
// It is self-contained (own kernel, own tracer) so the fleet pool can run
// many of these concurrently.
func hpccLSCTrial(seed int64, nodes int, lsc core.LSCConfig, ntp bool, makeApp func(int) mpi.App, tr *obs.Tracer, partitions int) hpccTrialResult {
	b := makeBed(seed, bedOptions{clusters: map[string]int{"alpha": nodes}, lsc: lsc, ntp: ntp, tracer: tr, partitions: partitions})
	vc := b.allocate("t", nodes, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, makeApp)
	b.k.RunFor(2 * sim.Second)
	res := b.checkpointOnce(vc, 10*sim.Minute)
	if res == nil || !res.OK {
		return hpccTrialResult{}
	}
	out := hpccTrialResult{skew: res.SaveSkew, skewValid: true}
	if core.InspectImages(res.Images) != nil {
		return out
	}
	js := b.runJob(vc, 4*sim.Hour)
	if !js.AllOK() {
		return out
	}
	for _, app := range vc.RankApps() {
		switch a := app.(type) {
		case *hpcc.PTRANS:
			if !a.Passed {
				return out
			}
		case *hpcc.HPL:
			if !a.Passed {
				return out
			}
		default:
			return out
		}
	}
	out.ok = true
	return out
}
