// Package experiments regenerates every quantitative claim in the paper's
// evaluation (plus the extension experiments DESIGN.md catalogues). Each
// experiment is a named runner that prints paper-style tables and returns
// machine-checkable "shape" assertions: who wins, by roughly what factor,
// and where the crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"dvc/internal/fleet"
	"dvc/internal/metrics"
	"dvc/internal/obs"
)

// Options configures a run.
type Options struct {
	// Seed makes the run reproducible.
	Seed int64
	// Trials scales statistical experiments; 0 = the experiment's quick
	// default.
	Trials int
	// Full requests paper-scale parameters (e.g. E2's >2000 trials);
	// expect long runtimes.
	Full bool
	// Out receives the printed tables; nil discards them.
	Out io.Writer
	// Tracer, when non-nil, records a deterministic event trace of the
	// run (internal/obs). One tracer may span every trial of an
	// experiment; virtual time restarts per trial and the exporters
	// re-sort. Under parallel trial execution each trial records into a
	// private child tracer and the children are spliced back in trial
	// order, so the trace bytes do not depend on Parallel. Experiments
	// that do not support tracing ignore it.
	Tracer *obs.Tracer
	// Parallel bounds the worker pool for independent trials
	// (internal/fleet). 0 = one worker per core (GOMAXPROCS); 1 = run
	// trials inline on the calling goroutine. Every table, shape check
	// and trace byte is identical for any value — only wall-clock time
	// changes.
	Parallel int
	// Partitions selects the partitioned simulation engine
	// (internal/sim/partition): 0 = the plain serial kernel; > 0 = gated
	// execution, with the value bounding how many partition sub-kernels
	// run concurrently. Logical partitioning is fixed by the topology
	// (one partition per datacenter/zone), never by this knob, so every
	// table, trace byte and digest is identical at any value — including
	// 0, because single-zone beds self-gate through a window that
	// provably preserves the serial schedule (partition.Single).
	Partitions int
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// workers resolves the Parallel option to a concrete pool size.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return fleet.DefaultWorkers()
}

// forEachTrial is the shared parallel trial loop: it runs fn for trials
// 0..n-1 across the fleet pool and returns the results indexed by trial,
// so callers aggregate with an ordinary index-ordered loop and produce
// byte-identical output to a serial for-loop.
//
// Each invocation receives a private child tracer (nil when opts.Tracer
// is nil); after all trials finish the children are spliced back into
// opts.Tracer in trial order, preserving the byte-identical JSONL replay
// contract under parallelism.
//
// fn must be self-contained: build your own bed/kernel from the trial's
// seed, trace only through tr, and return all measurements — never write
// to shared state from inside fn (the closure runs on a worker
// goroutine; `go test -race ./...` enforces this).
func forEachTrial[T any](opts Options, n int, fn func(trial int, tr *obs.Tracer) T) []T {
	children := make([]*obs.Tracer, n)
	out := fleet.Map(opts.workers(), n, func(i int) T {
		children[i] = opts.Tracer.Child()
		return fn(i, children[i])
	})
	opts.Tracer.Splice(children...)
	return out
}

// Check is one shape assertion against the paper.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Result is an experiment's outcome.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Checks []Check
}

// AllOK reports whether every shape check passed.
func (r *Result) AllOK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// FailedChecks lists the failed assertions.
func (r *Result) FailedChecks() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

func (r *Result) check(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

func (r *Result) table(t *metrics.Table, w io.Writer) {
	r.Tables = append(r.Tables, t)
	fmt.Fprintln(w, t.String())
}

// Runner executes one experiment.
type Runner func(Options) *Result

type entry struct {
	id, title string
	run       Runner
}

var registry []entry

func register(id, title string, run Runner) {
	registry = append(registry, entry{id, title, run})
}

// IDs lists registered experiment ids in order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.id
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's title.
func Title(id string) string {
	for _, e := range registry {
		if e.id == id {
			return e.title
		}
	}
	return ""
}

// Run executes the experiment with the given id.
func Run(id string, opts Options) (*Result, error) {
	for _, e := range registry {
		if e.id == id {
			fmt.Fprintf(opts.out(), "--- %s: %s ---\n", e.id, e.title)
			res := e.run(opts)
			res.ID, res.Title = e.id, e.title
			for _, c := range res.Checks {
				status := "PASS"
				if !c.OK {
					status = "FAIL"
				}
				fmt.Fprintf(opts.out(), "check %-40s %s  (%s)\n", c.Name, status, c.Detail)
			}
			fmt.Fprintln(opts.out())
			return res, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
}

// RunAll executes every experiment in id order.
func RunAll(opts Options) ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		res, err := Run(id, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
