package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dvc/internal/obs"
)

// These tests enforce the partitioned-engine determinism contract: the
// same experiment must externalize byte-identical output on the serial
// kernel, on the gated engine, and at every sub-kernel worker count. The
// mechanism under test is conservative-lookahead synchronization
// (internal/sim/partition): logical partitions are fixed by the
// topology, cross-partition messages execute in (arrival time, source
// partition, source sequence) order at deterministic barriers, and the
// per-partition traces merge by (virtual time, partition, sequence) —
// never by goroutine arrival order.

// e2Partitioned runs a scaled-down traced E2 on the selected engine and
// returns every byte it externalizes.
func e2Partitioned(t *testing.T, seed int64, partitions int) (tables []byte, checks []Check, trace []byte, registry string) {
	t.Helper()
	tr := obs.NewTracer()
	var tbl bytes.Buffer
	res, err := Run("E2", Options{Seed: seed, Trials: 2, Parallel: 1, Partitions: partitions, Out: &tbl, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return tbl.Bytes(), res.Checks, buf.Bytes(), tr.Registry().Table().String()
}

// diffTraces fails with the first diverging JSONL line.
func diffTraces(t *testing.T, label string, a, b []byte) {
	t.Helper()
	if bytes.Equal(a, b) {
		return
	}
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			t.Fatalf("%s: JSONL trace diverges at line %d:\n  a: %s\n  b: %s", label, i+1, la[i], lb[i])
		}
	}
	t.Fatalf("%s: JSONL traces differ in length: %d vs %d lines", label, len(la), len(lb))
}

// TestPartitionedMatchesSerial: the tentpole acceptance property.
//
// Part one: E2 (single zone, so the gated engine self-gates through
// partition.Single) on the serial kernel vs Partitions=2 vs Partitions=4
// — tables, shape checks, JSONL trace and registry snapshot must all be
// byte-identical.
//
// Part two: the multi-DC partitioned scale run at sub-kernel worker
// counts 1, 2 and 4 — traces and every reported stat must be identical,
// with real cross-partition traffic flowing (Forwarded > 0).
func TestPartitionedMatchesSerial(t *testing.T) {
	const seed = 20070917
	tabS, checksS, traceS, regS := e2Partitioned(t, seed, 0)
	for _, parts := range []int{2, 4} {
		tabP, checksP, traceP, regP := e2Partitioned(t, seed, parts)
		if !bytes.Equal(tabS, tabP) {
			t.Errorf("E2 tables differ between serial and partitions=%d:\n--- serial ---\n%s\n--- partitioned ---\n%s", parts, tabS, tabP)
		}
		if len(checksS) != len(checksP) {
			t.Fatalf("E2 check counts differ: serial %d, partitions=%d %d", len(checksS), parts, len(checksP))
		}
		for i := range checksS {
			if checksS[i] != checksP[i] {
				t.Errorf("E2 check %d differs at partitions=%d:\n  serial:      %+v\n  partitioned: %+v", i, parts, checksS[i], checksP[i])
			}
		}
		diffTraces(t, fmt.Sprintf("E2 serial vs partitions=%d", parts), traceS, traceP)
		if regS != regP {
			t.Errorf("E2 registry snapshots differ at partitions=%d:\n--- serial ---\n%s\n--- partitioned ---\n%s", parts, regS, regP)
		}
	}

	spec := ScaleSpec{DCs: 2, ClustersPerDC: 5, HostsPerCluster: 26}
	type pOut struct {
		res   *PScaleResult
		trace []byte
	}
	run := func(workers int) pOut {
		tr := obs.NewTracer()
		r, err := RunScalePartitioned(seed, spec, workers, tr)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return pOut{res: r, trace: buf.Bytes()}
	}
	base := run(1)
	if !base.res.OK() {
		t.Fatalf("partitioned scale run failed: ckpt=%v job=%v", base.res.CheckpointOK, base.res.JobOK)
	}
	if base.res.NetForwarded == 0 || base.res.Pings == 0 {
		t.Fatalf("no cross-partition traffic: forwarded=%d pings=%d", base.res.NetForwarded, base.res.Pings)
	}
	for _, workers := range []int{2, 4} {
		got := run(workers)
		diffTraces(t, fmt.Sprintf("PSCALE workers=1 vs %d", workers), base.trace, got.trace)
		// Workers is the run's own knob; everything else must match.
		want := *base.res
		want.Workers = workers
		if *got.res != want {
			t.Errorf("PSCALE results differ at workers=%d:\n  workers=1: %+v\n  workers=%d: %+v", workers, *base.res, workers, *got.res)
		}
	}
}

// BenchmarkPartitionSpeedup measures the partitioned scale run at 260
// and 2600 nodes across sub-kernel worker counts {1, 2, 4, NumCPU} and
// reports wall-clock speedup relative to workers=1, barrier-stall rate
// and cross-partition message rate. On a single-core runner speedup is
// ~1.0 by construction (DESIGN.md "Partitioned execution"); the ≥1.8×
// acceptance target applies to a 4-core runner and is read from the CI
// artifact.
//
// With DVC_BENCH_JSON=<path> the rows are written as a JSON stream (the
// BENCH_partition.json CI artifact).
//
// Run it alone (it is deliberately heavy):
//
//	go test -run '^$' -bench BenchmarkPartitionSpeedup -benchtime 1x ./internal/experiments
func BenchmarkPartitionSpeedup(b *testing.B) {
	const seed = 20070917
	shapes := []ScaleSpec{
		{DCs: 4, ClustersPerDC: 5, HostsPerCluster: 13},   // 260 nodes
		{DCs: 10, ClustersPerDC: 10, HostsPerCluster: 26}, // 2600 nodes
	}
	workerSet := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		workerSet = append(workerSet, n)
	}

	type rowJSON struct {
		Benchmark  string  `json:"benchmark"`
		Topology   string  `json:"topology"`
		Nodes      int     `json:"nodes"`
		Partitions int     `json:"partitions"`
		Workers    int     `json:"workers"`
		CPUs       int     `json:"cpus"`
		WallS      float64 `json:"wall_s"`
		Speedup    float64 `json:"speedup"`
		StallsHz   float64 `json:"stalls_hz"`
		XDCMsgsHz  float64 `json:"xdc_msgs_per_s"`
	}
	var rows []rowJSON

	b.ResetTimer()
	for _, spec := range shapes {
		var serial time.Duration
		for _, workers := range workerSet {
			var wall time.Duration
			var res *PScaleResult
			for i := 0; i < b.N; i++ {
				start := time.Now()
				r, err := RunScalePartitioned(seed, spec, workers, nil)
				if err != nil {
					b.Fatal(err)
				}
				wall += time.Since(start)
				res = r
			}
			if workers == 1 {
				serial = wall
			}
			wallS := wall.Seconds() / float64(b.N)
			row := rowJSON{
				Benchmark:  fmt.Sprintf("PartitionSpeedup/%s/w%d", spec, workers),
				Topology:   spec.String(),
				Nodes:      res.Nodes,
				Partitions: res.Partitions,
				Workers:    workers,
				CPUs:       runtime.NumCPU(),
				WallS:      wallS,
				Speedup:    float64(serial) / float64(wall),
				StallsHz:   float64(res.Stats.GateWaits) / float64(b.N) / wallS,
				XDCMsgsHz:  float64(res.NetForwarded) / float64(b.N) / wallS,
			}
			rows = append(rows, row)
			b.Logf("%s workers=%d: %.2fs speedup=%.2fx stalls=%.0f/s xdc=%.0f msgs/s",
				spec, workers, row.WallS, row.Speedup, row.StallsHz, row.XDCMsgsHz)
		}
	}
	b.StopTimer()
	best := rows[len(rows)-1]
	b.ReportMetric(best.Speedup, "speedup-2600")
	b.ReportMetric(best.WallS, "s/op-2600")

	if path := os.Getenv("DVC_BENCH_JSON"); path != "" {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, row := range rows {
			if err := enc.Encode(row); err != nil {
				b.Fatal(err)
			}
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Printf("wrote %s (%d rows, best 2600-node speedup %.2fx on %d CPUs)\n",
			path, len(rows), best.Speedup, runtime.NumCPU())
	}
}
