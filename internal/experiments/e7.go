package experiments

import (
	"fmt"

	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/netsim"
	"dvc/internal/obs"
	"dvc/internal/sim"
	"dvc/internal/tcp"
	"dvc/internal/vm"
)

func init() {
	register("E7", "Virtualisation overhead: sequential and parallel jobs, native vs Xen VC (abstract)", runE7)
}

// runE7 reproduces the abstract's promised "measurements of the overhead
// required for virtual clusters running both sequential and parallel
// jobs": CPU-bound work pays the small para-virt tax, the network path
// pays more, and parallel jobs land in between according to their
// compute/communication mix.
func runE7(opts Options) *Result {
	res := &Result{}
	tbl := metrics.NewTable("E7: native vs virtual-cluster performance",
		"workload", "metric", "native", "virtual", "overhead")

	// Every measurement run is an independent simulation with its own
	// kernel, so the native/virtual pairs fan across the fleet pool as
	// ten trials; the table assembles from the indexed results exactly as
	// the old straight-line code did.
	type meas struct {
		t  sim.Time
		bw float64
	}
	tasks := []func() meas{
		func() meas { return meas{t: runSeqJob(opts.Seed, false)} }, // 0: sequential native
		func() meas { return meas{t: runSeqJob(opts.Seed, true)} },  // 1: sequential virtual
		func() meas { // 2: ping-pong native (latency + bandwidth)
			lat, bw := runPingPong(opts.Seed, false, netsim.EthernetGigE())
			return meas{t: lat, bw: bw}
		},
		func() meas { // 3: ping-pong virtual
			lat, bw := runPingPong(opts.Seed, true, netsim.EthernetGigE())
			return meas{t: lat, bw: bw}
		},
		func() meas { return meas{t: runParallelHPCC(opts.Seed, false, "hpl")} },          // 4
		func() meas { return meas{t: runParallelHPCC(opts.Seed, true, "hpl")} },           // 5
		func() meas { return meas{t: runParallelHPCC(opts.Seed, false, "ptrans")} },       // 6
		func() meas { return meas{t: runParallelHPCC(opts.Seed, true, "ptrans")} },        // 7
		func() meas { return meas{t: runParallelHPCC(opts.Seed, false, "randomaccess")} }, // 8
		func() meas { return meas{t: runParallelHPCC(opts.Seed, true, "randomaccess")} },  // 9
	}
	m := forEachTrial(opts, len(tasks), func(i int, _ *obs.Tracer) meas { return tasks[i]() })

	// --- sequential compute job ---
	seqNative, seqVirt := m[0].t, m[1].t
	seqOv := over(seqNative.Seconds(), seqVirt.Seconds())
	tbl.Row("sequential", "runtime", seqNative, seqVirt, pctStr(seqOv))

	// --- ping-pong microbenchmark ---
	latN, bwN := m[2].t, m[2].bw
	latV, bwV := m[3].t, m[3].bw
	latOv := over(latN.Seconds(), latV.Seconds())
	bwOv := over(bwV, bwN) // inverted: lower bandwidth = overhead
	tbl.Row("pingpong-8B", "half-RTT", latN/2, latV/2, pctStr(latOv))
	tbl.Row("pingpong-4MiB", "bandwidth", fmtMBs(bwN), fmtMBs(bwV), pctStr(bwOv))

	// --- parallel workloads (4 ranks) ---
	hplN, hplV := m[4].t, m[5].t
	hplOv := over(hplN.Seconds(), hplV.Seconds())
	tbl.Row("hpl-N160x4", "runtime", hplN, hplV, pctStr(hplOv))

	ptN, ptV := m[6].t, m[7].t
	ptOv := over(ptN.Seconds(), ptV.Seconds())
	tbl.Row("ptrans-N64x4", "runtime", ptN, ptV, pctStr(ptOv))

	raN, raV := m[8].t, m[9].t
	raOv := over(raN.Seconds(), raV.Seconds())
	tbl.Row("randomaccess", "runtime", raN, raV, pctStr(raOv))
	res.table(tbl, opts.out())

	res.check("sequential overhead is the para-virt CPU tax (~3%)",
		seqOv > 1 && seqOv < 6, "%.1f%%", seqOv)
	res.check("network latency overhead exceeds CPU overhead",
		latOv > seqOv, "latency %.1f%% vs cpu %.1f%%", latOv, seqOv)
	res.check("virtual bandwidth is lower", bwV < bwN,
		"%.1f vs %.1f MB/s", bwV/1e6, bwN/1e6)
	res.check("compute-bound HPL overhead near the CPU tax",
		hplOv >= 1 && hplOv < 15, "%.1f%%", hplOv)
	res.check("comm-heavy PTRANS pays more than HPL",
		ptOv > hplOv, "ptrans %.1f%% vs hpl %.1f%%", ptOv, hplOv)
	res.check("latency-bound RandomAccess pays the most",
		raOv > hplOv, "randomaccess %.1f%% vs hpl %.1f%%", raOv, hplOv)
	return res
}

func over(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (v - base) / base
}

func pctStr(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

func fmtMBs(bw float64) string { return fmt.Sprintf("%.1fMB/s", bw/1e6) }

// runSeqJob times a sequential compute job natively or in a single VM.
func runSeqJob(seed int64, virt bool) sim.Time {
	b := newBed(seed, map[string]int{"alpha": 1}, coreNTP(), true)
	job := hpcc.NewSeqJob(60, 1e10, guestFlops) // 60 GFlop = 60s at 10 GF/s
	if virt {
		vc := b.allocate("seq", 1, guest.WatchdogConfig{})
		vc.OSes()[0].Spawn(job)
	} else {
		os, _ := vm.NativeOS(b.k, b.site.Fabric, b.site.Nodes()[0], "native", tcp.DefaultConfig(), guest.WatchdogConfig{})
		os.Spawn(job)
	}
	b.k.RunFor(sim.Hour)
	if !job.Finished {
		panic("seq job did not finish")
	}
	return job.WallTime()
}

// runPingPong measures small-message RTT and large-message bandwidth.
func runPingPong(seed int64, virt bool, profile netsim.LinkProfile) (sim.Time, float64) {
	run := func(msg, iters int) *hpcc.PingPong {
		b := newBedProfile(seed, 2, coreNTP(), profile)
		app0 := hpcc.NewPingPong(msg, iters)
		apps := []mpi.App{app0, hpcc.NewPingPong(msg, iters)}
		if virt {
			vc := b.allocate("pp", 2, guest.WatchdogConfig{})
			vc.LaunchMPI(6000, func(r int) mpi.App { return apps[r] })
		} else {
			var oses []*guest.OS
			for i, n := range b.site.Nodes()[:2] {
				os, _ := vm.NativeOS(b.k, b.site.Fabric, n, netsim.Addr(fmt.Sprintf("n%d", i)), tcp.DefaultConfig(), guest.WatchdogConfig{})
				oses = append(oses, os)
			}
			mpi.Launch(oses, 6000, func(r int) mpi.App { return apps[r] })
		}
		b.k.RunFor(10 * sim.Minute)
		if !app0.Done {
			panic("pingpong did not finish")
		}
		return app0
	}
	lat := run(8, 200).AvgRTT
	bw := run(4<<20, 10).Bandwidth
	return lat, bw
}

// runParallelHPCC times a 4-rank workload natively or in a VC.
func runParallelHPCC(seed int64, virt bool, kind string) sim.Time {
	b := newBed(seed, map[string]int{"alpha": 4}, coreNTP(), true)
	makeApp := func(int) mpi.App {
		switch kind {
		case "hpl":
			return hpcc.NewHPL(160, 42, 4.5e-5) // ~60s compute-bound
		case "randomaccess":
			return hpcc.NewRandomAccess(14, 50, 500, 10) // latency-bound
		default:
			return hpcc.NewPTRANS(64, 42, 3000, 10) // comm-bound
		}
	}
	var apps []mpi.App
	if virt {
		vc := b.allocate("par", 4, guest.WatchdogConfig{})
		vc.LaunchMPI(6000, makeApp)
		js := b.runJob(vc, 4*sim.Hour)
		if !js.AllOK() {
			panic("parallel job failed")
		}
		apps = vc.RankApps()
	} else {
		var oses []*guest.OS
		for i, n := range b.site.Nodes()[:4] {
			os, _ := vm.NativeOS(b.k, b.site.Fabric, n, netsim.Addr(fmt.Sprintf("n%d", i)), tcp.DefaultConfig(), guest.WatchdogConfig{})
			oses = append(oses, os)
		}
		pids := mpi.Launch(oses, 6000, makeApp)
		deadline := b.k.Now() + 4*sim.Hour
		for b.k.Now() < deadline {
			all := true
			for i, o := range oses {
				p, _ := o.Proc(pids[i])
				if !p.Exited() {
					all = false
					break
				}
			}
			if all {
				break
			}
			b.k.RunFor(sim.Second)
		}
		for i, o := range oses {
			p, _ := o.Proc(pids[i])
			if !p.Exited() || p.ExitCode() != 0 {
				panic("native parallel job failed")
			}
			apps = append(apps, p.Program().(*mpi.Driver).App)
			_ = i
		}
	}
	switch a := apps[0].(type) {
	case *hpcc.HPL:
		if !a.Passed {
			panic("hpl verification failed")
		}
		return a.WallTime()
	case *hpcc.PTRANS:
		if !a.Passed {
			panic("ptrans verification failed")
		}
		return a.WallTime()
	case *hpcc.RandomAccess:
		if !a.Verified {
			panic("randomaccess verification failed")
		}
		return a.WallTime()
	}
	panic("unknown app")
}
