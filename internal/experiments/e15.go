package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/metrics"
	"dvc/internal/phys"
	"dvc/internal/rm"
	"dvc/internal/sim"
	"dvc/internal/storage"
	"dvc/internal/vm"
	"dvc/internal/workload"
)

func init() {
	register("E15", "Heterogeneous software stacks: DVC's founding motivation (§1 goals 1-2)", runE15)
}

// runE15 tests the reason DVC exists: "The primary motivation for the
// creation of DVC was to increase the throughput and productivity of
// multi-cluster environments by providing a homogeneous software stack
// for jobs running across clusters." Two clusters run different software
// stacks; half the jobs were built against each. Natively, every job is
// locked to its matching cluster; with DVC the whole pool serves every
// job.
func runE15(opts Options) *Result {
	res := &Result{}
	const perCluster = 8
	jobCount := 12
	if opts.Full {
		jobCount = 32
	}

	// An asymmetric mix: most jobs need stack A, so the B cluster idles
	// under native scheduling while A's queue grows.
	makeTrace := func(k *sim.Kernel) []workload.JobSpec {
		trace := workload.Generate(k.Rand(), workload.MixConfig{
			Count:       jobCount,
			ArrivalMean: 15 * sim.Second,
			Widths:      []int{2, 4},
			WorkMin:     2 * sim.Minute,
			WorkMax:     6 * sim.Minute,
		})
		for i := range trace {
			if i%4 == 3 {
				trace[i].Stack = "suse9-lam"
			} else {
				trace[i].Stack = "rhel4-mpich"
			}
		}
		return trace
	}

	type outcome struct {
		completed int
		stuck     int
		makespan  sim.Time
		meanWait  sim.Time
	}
	run := func(seed int64, backend rm.Backend) outcome {
		k := sim.NewKernel(seed)
		site := phys.DefaultSite(k)
		site.AddCluster("alpha", perCluster, phys.DefaultSpec(), netsimEth())
		site.AddCluster("beta", perCluster, phys.DefaultSpec(), netsimEth())
		site.SetClusterStack("alpha", "rhel4-mpich")
		site.SetClusterStack("beta", "suse9-lam")
		site.NTP.Start()
		var mgr *core.Manager
		var coord *core.Coordinator
		if backend == rm.DVC {
			store := storage.New(k, storage.DefaultConfig())
			mgr = core.NewManager(k, site, store, vm.DefaultXenConfig())
			lsc := core.DefaultNTPLSC()
			lsc.ContinueAfterSave = true
			coord = core.NewCoordinator(mgr, lsc)
		}
		cfg := rm.DefaultConfig(backend)
		cfg.CheckpointInterval = 0
		r := rm.New(k, site, mgr, coord, cfg)
		r.Start()
		r.SubmitTrace(makeTrace(k))
		deadline := 12 * sim.Hour
		for k.Now() < deadline && !r.AllDone() {
			k.RunFor(30 * sim.Second)
		}
		s := r.Stats()
		o := outcome{completed: s.Completed, makespan: s.Makespan}
		if s.Completed > 0 {
			o.meanWait = s.TotalWaited / sim.Time(s.Completed)
		}
		for _, j := range r.Jobs() {
			if j.State == rm.Queued {
				o.stuck++
			}
		}
		return o
	}

	native := run(opts.Seed, rm.Physical)
	dvcOut := run(opts.Seed, rm.DVC)

	tbl := metrics.NewTable(
		fmt.Sprintf("E15: %d jobs (75%% rhel4-mpich, 25%% suse9-lam) on alpha=rhel4 + beta=suse9", jobCount),
		"scheduling", "completed", "makespan", "mean wait")
	tbl.Row("native (stack-locked)", native.completed, native.makespan, native.meanWait)
	tbl.Row("DVC (stack inside the VM)", dvcOut.completed, dvcOut.makespan, dvcOut.meanWait)
	res.table(tbl, opts.out())

	res.check("both complete every runnable job",
		native.completed == jobCount && dvcOut.completed == jobCount,
		"native %d, dvc %d of %d", native.completed, dvcOut.completed, jobCount)
	res.check("DVC improves makespan by pooling stack-locked clusters",
		dvcOut.makespan < native.makespan,
		"dvc %v vs native %v", dvcOut.makespan, native.makespan)
	res.check("DVC cuts queue waits",
		dvcOut.meanWait < native.meanWait,
		"dvc %v vs native %v", dvcOut.meanWait, native.meanWait)
	return res
}
