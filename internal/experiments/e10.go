package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/metrics"
	"dvc/internal/sim"
)

func init() {
	register("E10", "Scaling LSC to hundreds/thousands of nodes: health-checked saves (§4)", runE10)
}

// runE10 reproduces §4's scaling argument: "The largest issue for
// scalability is that with more nodes in a checkpoint set, the larger the
// likelihood of a single VM checkpoint failing. With greater error
// checking, and a coordinated health check of checkpoint processes,
// scaling to hundreds or even thousands of nodes should be possible."
//
// Each node's sleeper process dies before the save instant with a small
// probability; without the health check one dead sleeper dooms the whole
// set, so success decays as (1-p)^n. With the check the coordinator
// aborts cleanly and retries.
func runE10(opts Options) *Result {
	res := &Result{}
	const sleeperFail = 0.002
	trials := opts.Trials
	if trials == 0 {
		trials = 10
	}
	if opts.Full {
		trials = 30
	}

	tbl := metrics.NewTable(fmt.Sprintf("E10: checkpoint-set success vs size (per-VM sleeper failure %.1f%%)", 100*sleeperFail),
		"VMs", "analytic (1-p)^n", "no health-check", "health-check", "mean attempts")

	run := func(n int, health bool, seed int64) (ok int, attempts float64) {
		for trial := 0; trial < trials; trial++ {
			lsc := core.DefaultNTPLSC()
			lsc.SleeperFailProb = sleeperFail
			lsc.HealthCheck = health
			lsc.HealthRetries = 20
			b := newBed(seed+int64(trial), map[string]int{"alpha": n}, lsc, true)
			// Idle VCs: at this scale the coordination failure mode is
			// independent of guest traffic, and idle guests keep the
			// sweep tractable.
			vc := b.allocate("e10", n, guest.WatchdogConfig{})
			r := b.checkpointOnce(vc, 30*sim.Minute)
			if r != nil && r.OK {
				ok++
				attempts += float64(r.Attempts)
			}
			vc.Release()
		}
		if ok > 0 {
			attempts /= float64(ok)
		}
		return ok, attempts
	}

	sizes := []int{26, 64, 128, 256}
	if opts.Full {
		sizes = append(sizes, 512, 1024)
	}
	noHC := map[int]float64{}
	withHC := map[int]float64{}
	for _, n := range sizes {
		okPlain, _ := run(n, false, opts.Seed+int64(100000*n))
		okHC, att := run(n, true, opts.Seed+int64(200000*n))
		noHC[n] = pct(okPlain, trials)
		withHC[n] = pct(okHC, trials)
		analytic := 100 * pow1p(1-sleeperFail, n)
		tbl.Row(n, fmt.Sprintf("%.0f%%", analytic),
			fmt.Sprintf("%.0f%%", noHC[n]), fmt.Sprintf("%.0f%%", withHC[n]),
			fmt.Sprintf("%.2f", att))
	}
	res.table(tbl, opts.out())

	last := sizes[len(sizes)-1]
	res.check("plain success decays with scale", noHC[last] < noHC[sizes[0]],
		"%d VMs: %.0f%% vs %d VMs: %.0f%%", sizes[0], noHC[sizes[0]], last, noHC[last])
	res.check("health check keeps success high at scale", withHC[last] == 100,
		"%.0f%% at %d VMs", withHC[last], last)
	res.check("health check dominates everywhere", allGE(withHC, noHC),
		"")
	return res
}

func pow1p(base float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= base
	}
	return out
}

func allGE(a, b map[int]float64) bool {
	for k, v := range a {
		if v < b[k] {
			return false
		}
	}
	return true
}
