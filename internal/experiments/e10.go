package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/metrics"
	"dvc/internal/obs"
	"dvc/internal/sim"
)

func init() {
	register("E10", "Scaling LSC to hundreds/thousands of nodes: health-checked saves (§4)", runE10)
}

// runE10 reproduces §4's scaling argument: "The largest issue for
// scalability is that with more nodes in a checkpoint set, the larger the
// likelihood of a single VM checkpoint failing. With greater error
// checking, and a coordinated health check of checkpoint processes,
// scaling to hundreds or even thousands of nodes should be possible."
//
// Each node's sleeper process dies before the save instant with a small
// probability; without the health check one dead sleeper dooms the whole
// set, so success decays as (1-p)^n. With the check the coordinator
// aborts cleanly and retries.
func runE10(opts Options) *Result {
	res := &Result{}
	const sleeperFail = 0.002
	trials := opts.Trials
	if trials == 0 {
		trials = 10
	}
	if opts.Full {
		trials = 30
	}

	tbl := metrics.NewTable(fmt.Sprintf("E10: checkpoint-set success vs size (per-VM sleeper failure %.1f%%)", 100*sleeperFail),
		"VMs", "analytic (1-p)^n", "no health-check", "health-check", "mean attempts")

	sizes := []int{26, 64, 128, 256}
	if opts.Full {
		sizes = append(sizes, 512, 1024)
	}
	// Flatten the (size, health, trial) sweep into one trial list in the
	// serial emission order — for each size, all plain trials then all
	// health-checked trials — and fan it across the fleet pool. Each trial
	// is a self-contained bed, so the whole sweep parallelises.
	type e10Spec struct {
		n      int
		health bool
		seed   int64
	}
	type e10Trial struct {
		ok       bool
		attempts int
	}
	var specs []e10Spec
	for _, n := range sizes {
		for trial := 0; trial < trials; trial++ {
			specs = append(specs, e10Spec{n, false, opts.Seed + int64(100000*n) + int64(trial)})
		}
		for trial := 0; trial < trials; trial++ {
			specs = append(specs, e10Spec{n, true, opts.Seed + int64(200000*n) + int64(trial)})
		}
	}
	outs := forEachTrial(opts, len(specs), func(i int, _ *obs.Tracer) e10Trial {
		s := specs[i]
		lsc := core.DefaultNTPLSC()
		lsc.SleeperFailProb = sleeperFail
		lsc.HealthCheck = s.health
		lsc.HealthRetries = 20
		b := newBed(s.seed, map[string]int{"alpha": s.n}, lsc, true)
		// Idle VCs: at this scale the coordination failure mode is
		// independent of guest traffic, and idle guests keep the
		// sweep tractable.
		vc := b.allocate("e10", s.n, guest.WatchdogConfig{})
		r := b.checkpointOnce(vc, 30*sim.Minute)
		out := e10Trial{}
		if r != nil && r.OK {
			out.ok = true
			out.attempts = r.Attempts
		}
		vc.Release()
		return out
	})
	tally := func(rs []e10Trial) (ok int, attempts float64) {
		for _, r := range rs {
			if r.ok {
				ok++
				attempts += float64(r.attempts)
			}
		}
		if ok > 0 {
			attempts /= float64(ok)
		}
		return ok, attempts
	}
	noHC := map[int]float64{}
	withHC := map[int]float64{}
	for si, n := range sizes {
		base := si * 2 * trials
		okPlain, _ := tally(outs[base : base+trials])
		okHC, att := tally(outs[base+trials : base+2*trials])
		noHC[n] = pct(okPlain, trials)
		withHC[n] = pct(okHC, trials)
		analytic := 100 * pow1p(1-sleeperFail, n)
		tbl.Row(n, fmt.Sprintf("%.0f%%", analytic),
			fmt.Sprintf("%.0f%%", noHC[n]), fmt.Sprintf("%.0f%%", withHC[n]),
			fmt.Sprintf("%.2f", att))
	}
	res.table(tbl, opts.out())

	last := sizes[len(sizes)-1]
	res.check("plain success decays with scale", noHC[last] < noHC[sizes[0]],
		"%d VMs: %.0f%% vs %d VMs: %.0f%%", sizes[0], noHC[sizes[0]], last, noHC[last])
	res.check("health check keeps success high at scale", withHC[last] == 100,
		"%.0f%% at %d VMs", withHC[last], last)
	res.check("health check dominates everywhere", allGE(withHC, noHC),
		"")
	return res
}

func pow1p(base float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= base
	}
	return out
}

func allGE(a, b map[int]float64) bool {
	for k, v := range a {
		if v < b[k] {
			return false
		}
	}
	return true
}
