package experiments

import (
	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/sim"
	"strconv"
	"strings"
)

func init() {
	register("E6", "Guest watchdog timeouts accumulate, one per save/restore cycle (§3.2)", runE6)
}

// runE6 reproduces the §3.2 observation: "a software watchdog timer was
// enabled in all virtual machines. Each save and restoration of a virtual
// machine caused a watchdog timeout to be reported. Although this did not
// affect the execution of the environment, it did cause a large number of
// kernel messages to accumulate."
func runE6(opts Options) *Result {
	res := &Result{}
	const nodes = 4
	cycles := 3
	if opts.Full {
		cycles = 10
	}

	lsc := core.DefaultNTPLSC()
	b := newBed(opts.Seed, map[string]int{"alpha": nodes}, lsc, true)
	vc := b.allocate("e6", nodes, guest.DefaultWatchdog())
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(1<<20, 20*sim.Millisecond, 2048) })
	b.k.RunFor(30 * sim.Second)

	tbl := metrics.NewTable("E6: watchdog reports per VM across checkpoint cycles",
		"cycle", "downtime", "timeouts/vm (min..max)", "wd-log-lines/vm", "job-affected")
	perfect := true
	for cycle := 1; cycle <= cycles; cycle++ {
		r := b.checkpointOnce(vc, 10*sim.Minute)
		if r == nil || !r.OK {
			res.check("checkpoint cycles succeed", false, "cycle %d failed", cycle)
			return res
		}
		b.k.RunFor(time45()) // let the post-restore watchdog tick land
		lo, hi, lines := 1<<30, 0, 0
		for _, o := range vc.OSes() {
			n := o.WatchdogTimeouts()
			if n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
			for _, e := range o.KernelLog() {
				if strings.HasPrefix(e.Msg, "watchdog") {
					lines++
				}
			}
		}
		affected := vc.JobStatus().Failed > 0
		tbl.Row(cycle, r.Downtime, rangeStr(lo, hi), lines/nodes, affected)
		if lo != cycle || hi != cycle || affected {
			perfect = false
		}
	}
	res.table(tbl, opts.out())

	res.check("exactly one watchdog report per VM per cycle", perfect, "%d cycles", cycles)
	res.check("execution unaffected by watchdog reports", vc.JobStatus().Failed == 0,
		"failed ranks: %d", vc.JobStatus().Failed)
	return res
}

func time45() sim.Time { return 45 * sim.Second }

func rangeStr(lo, hi int) string {
	if lo == hi {
		return strconv.Itoa(lo)
	}
	return strconv.Itoa(lo) + ".." + strconv.Itoa(hi)
}
