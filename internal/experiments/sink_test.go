package experiments

import (
	"bytes"
	"testing"

	"dvc/internal/obs"
)

// These tests pin the streaming half of the replay contract: a traced
// experiment writing through the streaming JSONL sink must externalize
// byte-identical output to the memory-backed tracer, at any Parallel
// value, while retaining no records — peak tracer memory is the sink's
// fixed buffer plus the currently-splicing child, not the full trace.

// e2Streamed runs the scaled-down traced E2 with a streaming JSONL sink
// (deliberately tiny buffer to force many mid-run flushes) and returns
// the streamed bytes plus the tracer for state assertions.
func e2Streamed(t *testing.T, seed int64, parallel, bufSize int) ([]byte, *obs.Tracer) {
	t.Helper()
	var out bytes.Buffer
	tr := obs.NewTracerWithSink(obs.NewJSONLSink(&out, bufSize))
	var tbl bytes.Buffer
	if _, err := Run("E2", Options{Seed: seed, Trials: 2, Parallel: parallel, Out: &tbl, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), tr
}

// TestStreamingSinkMatchesMemorySink: the memory tracer's WriteJSONL and
// the streaming sink's output must agree byte for byte on a full E2 run,
// serial and parallel alike.
func TestStreamingSinkMatchesMemorySink(t *testing.T) {
	const seed = 20070917

	// Memory reference (serial).
	memTr := obs.NewTracer()
	var tbl bytes.Buffer
	if _, err := Run("E2", Options{Seed: seed, Trials: 2, Parallel: 1, Out: &tbl, Tracer: memTr}); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := memTr.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	if len(want.Bytes()) == 0 {
		t.Fatal("memory reference trace is empty")
	}

	for _, parallel := range []int{1, 4} {
		got, tr := e2Streamed(t, seed, parallel, 4096)
		if !bytes.Equal(got, want.Bytes()) {
			ls, lp := bytes.Split(want.Bytes(), []byte("\n")), bytes.Split(got, []byte("\n"))
			for i := 0; i < len(ls) && i < len(lp); i++ {
				if !bytes.Equal(ls[i], lp[i]) {
					t.Fatalf("parallel=%d: streamed trace diverges at line %d:\n  memory:   %s\n  streamed: %s",
						parallel, i+1, ls[i], lp[i])
				}
			}
			t.Fatalf("parallel=%d: traces differ in length: memory %d lines, streamed %d", parallel, len(ls), len(lp))
		}
		// The bounded-memory half of the contract: the streaming tracer
		// must not have retained the record stream.
		if tr.Records() != nil {
			t.Fatalf("parallel=%d: streaming tracer retained %d records", parallel, len(tr.Records()))
		}
		if tr.Len() != memTr.Len() {
			t.Fatalf("parallel=%d: streamed %d records, memory run recorded %d", parallel, tr.Len(), memTr.Len())
		}
	}
}

// TestStreamedRegistryMatchesMemory: the registry and series travel the
// same splice path as records; streaming must not change them.
func TestStreamedRegistryMatchesMemory(t *testing.T) {
	const seed = 20070917
	memTr := obs.NewTracer()
	var tbl bytes.Buffer
	if _, err := Run("E2", Options{Seed: seed, Trials: 2, Parallel: 1, Out: &tbl, Tracer: memTr}); err != nil {
		t.Fatal(err)
	}
	_, st := e2Streamed(t, seed, 4, 4096)
	if got, want := st.Registry().Table().String(), memTr.Registry().Table().String(); got != want {
		t.Fatalf("registry differs:\n--- streamed ---\n%s\n--- memory ---\n%s", got, want)
	}
	var a, b bytes.Buffer
	if err := st.Series().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := memTr.Series().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("series differs:\n--- streamed ---\n%s\n--- memory ---\n%s", a.Bytes(), b.Bytes())
	}
	if st.Series().Len() == 0 {
		t.Fatal("probe sampled no series rows during E2")
	}
}
