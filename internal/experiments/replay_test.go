package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/mpi"
	"dvc/internal/obs"
	"dvc/internal/sim"
)

// These tests are the executable form of the kernel's core promise
// ("reproducible bit for bit", internal/sim/sim.go): run a reference
// scenario twice with the same seed and require byte-identical serialized
// metrics and identical event digests. They run as part of the default
// `go test ./...` (tier-1) and again under `go test -race ./...` in CI,
// where the race detector doubles as proof that no hidden concurrency
// has crept into the replayed path.

// e2MetricsDigest runs a scaled-down E2 (the paper's LSC checkpoint
// experiment) and hashes every byte the experiment serializes: tables,
// check lines, details.
func e2MetricsDigest(t *testing.T, seed int64) string {
	t.Helper()
	var buf bytes.Buffer
	res, err := Run("E2", Options{Seed: seed, Trials: 1, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	h.Write(buf.Bytes())
	for _, c := range res.Checks {
		fmt.Fprintf(h, "check %s ok=%v detail=%s\n", c.Name, c.OK, c.Detail)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// lscEventDigest runs one LSC checkpoint trial directly on a bed and
// hashes the event-level trace evidence: how many kernel events fired,
// the final virtual clock, the checkpoint's timing metrics, and the
// structural identity of every captured image.
//
// Image payload *bytes* are deliberately not hashed: encoding/gob writes
// map entries in Go's randomized map order, so two encodings of the same
// guest state are content-equivalent but not byte-equal (see "Determinism
// invariants" in DESIGN.md). Nothing in the simulation consumes the byte
// order — transfer time uses the length, restore decodes the content —
// so replay determinism is judged on what the kernel can observe.
func lscEventDigest(t *testing.T, seed int64) string {
	t.Helper()
	const nodes = 8
	b := newBed(seed, map[string]int{"alpha": nodes}, core.DefaultNTPLSC(), true)
	vc := b.allocate("replay", nodes, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(600, 20*sim.Millisecond, 4096) })
	b.k.RunFor(2 * sim.Second)
	res := b.checkpointOnce(vc, 10*sim.Minute)
	if res == nil || !res.OK {
		t.Fatalf("reference checkpoint failed: %+v", res)
	}
	if err := core.InspectImages(res.Images); err != nil {
		t.Fatalf("image consistency: %v", err)
	}
	js := b.runJob(vc, 4*sim.Hour)
	if !js.AllOK() {
		t.Fatalf("reference job failed: %+v", js)
	}

	h := sha256.New()
	fmt.Fprintf(h, "fired=%d now=%d pending=%d\n", b.k.Fired(), b.k.Now(), b.k.Pending())
	fmt.Fprintf(h, "gen=%d attempts=%d skew=%d store=%d downtime=%d finished=%d\n",
		res.Generation, res.Attempts, res.SaveSkew, res.StoreTime, res.Downtime, res.FinishedAt)
	for _, img := range res.Images {
		fmt.Fprintf(h, "img domain=%s addr=%v ram=%d len=%d incremental=%v captured=%d\n",
			img.DomainName, img.Addr, img.RAMBytes, len(img.Data), img.Incremental, img.CapturedAt)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestSeedReplayMetricsDigest: same seed, twice, byte-identical metrics.
func TestSeedReplayMetricsDigest(t *testing.T) {
	const seed = 20070917 // CLUSTER 2007
	first := e2MetricsDigest(t, seed)
	second := e2MetricsDigest(t, seed)
	if first != second {
		t.Fatalf("E2 serialized metrics diverged between two runs with seed %d:\n  run 1: %s\n  run 2: %s",
			seed, first, second)
	}
}

// e2TraceDigest runs the scaled-down E2 with a fresh tracer attached and
// hashes the serialized JSONL event trace, returning the digest and the
// trace bytes.
func e2TraceDigest(t *testing.T, seed int64) (string, []byte) {
	t.Helper()
	tr := obs.NewTracer()
	if _, err := Run("E2", Options{Seed: seed, Trials: 1, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(h[:]), buf.Bytes()
}

// TestSeedReplayTraceDigest: the full observability trace — every event
// the instrumented layers emit, in emission order, serialized to JSONL —
// must be byte-identical across two same-seed runs, and must actually
// contain the event families E2 exercises (LSC epochs, VM pause/save/
// restore, TCP retransmissions, kernel probe samples). A different seed
// must diverge, proving the trace observes the run rather than a
// constant schedule.
func TestSeedReplayTraceDigest(t *testing.T) {
	const seed = 20070917
	first, raw := e2TraceDigest(t, seed)
	second, _ := e2TraceDigest(t, seed)
	if first != second {
		t.Fatalf("JSONL trace diverged between two runs with seed %d:\n  run 1: %s\n  run 2: %s",
			seed, first, second)
	}
	if other, _ := e2TraceDigest(t, seed+1); other == first {
		t.Fatalf("trace digest for seed %d equals seed %d: trace is not sensitive to the run", seed, seed+1)
	}
	for _, want := range []string{
		`"ev":"lsc.epoch"`,
		`"ev":"lsc.store"`,
		`"ev":"vm.pause"`,
		`"ev":"vm.save"`,
		`"ev":"vm.restore"`,
		`"ev":"sim.probe"`,
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("trace is missing %s events", want)
		}
	}
	// And the JSONL must round-trip through the reader.
	recs, err := obs.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("re-reading own trace: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("trace round-tripped to zero records")
	}
}

// TestSeedReplayEventDigest: same seed, twice, identical kernel-level
// event digests; a different seed must (overwhelmingly) diverge, proving
// the digest actually observes the run.
func TestSeedReplayEventDigest(t *testing.T) {
	const seed = 20070917
	first := lscEventDigest(t, seed)
	second := lscEventDigest(t, seed)
	if first != second {
		t.Fatalf("event digest diverged between two runs with seed %d:\n  run 1: %s\n  run 2: %s",
			seed, first, second)
	}
	if other := lscEventDigest(t, seed+1); other == first {
		t.Fatalf("event digest for seed %d equals seed %d: digest is not sensitive to the run", seed, seed+1)
	}
}
