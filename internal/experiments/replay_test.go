package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"testing"

	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/mpi"
	"dvc/internal/obs"
	"dvc/internal/sim"
)

// These tests are the executable form of the kernel's core promise
// ("reproducible bit for bit", internal/sim/sim.go): run a reference
// scenario twice with the same seed and require byte-identical serialized
// metrics and identical event digests. They run as part of the default
// `go test ./...` (tier-1) and again under `go test -race ./...` in CI,
// where the race detector doubles as proof that no hidden concurrency
// has crept into the replayed path.

// e2MetricsDigest runs a scaled-down E2 (the paper's LSC checkpoint
// experiment) and hashes every byte the experiment serializes: tables,
// check lines, details.
func e2MetricsDigest(t *testing.T, seed int64) string {
	t.Helper()
	var buf bytes.Buffer
	res, err := Run("E2", Options{Seed: seed, Trials: 1, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	h.Write(buf.Bytes())
	for _, c := range res.Checks {
		fmt.Fprintf(h, "check %s ok=%v detail=%s\n", c.Name, c.OK, c.Detail)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// lscEventDigest runs one LSC checkpoint trial directly on a bed and
// hashes the event-level trace evidence: how many kernel events fired,
// the final virtual clock, the checkpoint's timing metrics, and the
// decoded content of every captured image.
//
// Image payload *bytes* — and their encoded *lengths* — are deliberately
// not hashed. gob writes map entries in Go's randomized map order, so two
// encodings of the same guest state are content-equivalent but not
// byte-equal; and gob assigns wire type ids from a process-global counter
// in first-encode order, so even the encoded length of an image depends
// on what else the process happened to gob-encode first (running E5's
// GobSize probes before this test shifts every later type id). Nothing in
// the simulation consumes either: transfer time uses the modelled sizes
// (RAMBytes / PayloadBytes) and restore decodes the content. So replay
// determinism is judged on what the kernel and the restored guest can
// observe: decode each image and hash the guest state it carries.
func lscEventDigest(t *testing.T, seed int64) string {
	t.Helper()
	const nodes = 8
	b := newBed(seed, map[string]int{"alpha": nodes}, core.DefaultNTPLSC(), true)
	vc := b.allocate("replay", nodes, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(600, 20*sim.Millisecond, 4096) })
	b.k.RunFor(2 * sim.Second)
	res := b.checkpointOnce(vc, 10*sim.Minute)
	if res == nil || !res.OK {
		t.Fatalf("reference checkpoint failed: %+v", res)
	}
	if err := core.InspectImages(res.Images); err != nil {
		t.Fatalf("image consistency: %v", err)
	}
	js := b.runJob(vc, 4*sim.Hour)
	if !js.AllOK() {
		t.Fatalf("reference job failed: %+v", js)
	}

	h := sha256.New()
	fmt.Fprintf(h, "fired=%d now=%d pending=%d\n", b.k.Fired(), b.k.Now(), b.k.Pending())
	fmt.Fprintf(h, "gen=%d attempts=%d skew=%d store=%d downtime=%d finished=%d\n",
		res.Generation, res.Attempts, res.SaveSkew, res.StoreTime, res.Downtime, res.FinishedAt)
	for _, img := range res.Images {
		fmt.Fprintf(h, "img domain=%s addr=%v ram=%d incremental=%v captured=%d\n",
			img.DomainName, img.Addr, img.RAMBytes, img.Incremental, img.CapturedAt)
		snap, err := guest.DecodeImagePayload(img.Data)
		if err != nil {
			t.Fatalf("decoding image for %s: %v", img.DomainName, err)
		}
		fmt.Fprintf(h, "  guest nextpid=%d nextfd=%d jiffies=%d fds=%d listens=%v log=%d\n",
			snap.NextPID, snap.NextFD, snap.Jiffies, len(snap.FDs), snap.Listens, len(snap.Log))
		procs := append([]guest.ProcSnapshot(nil), snap.Procs...)
		sort.Slice(procs, func(i, j int) bool { return procs[i].PID < procs[j].PID })
		for _, p := range procs {
			fmt.Fprintf(h, "  proc pid=%d exited=%v code=%d timer=%d\n",
				p.PID, p.Exited, p.ExitCode, p.TimerLeft)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestSeedReplayMetricsDigest: same seed, twice, byte-identical metrics.
func TestSeedReplayMetricsDigest(t *testing.T) {
	const seed = 20070917 // CLUSTER 2007
	first := e2MetricsDigest(t, seed)
	second := e2MetricsDigest(t, seed)
	if first != second {
		t.Fatalf("E2 serialized metrics diverged between two runs with seed %d:\n  run 1: %s\n  run 2: %s",
			seed, first, second)
	}
}

// e2TraceDigest runs the scaled-down E2 with a fresh tracer attached and
// hashes the serialized JSONL event trace, returning the digest and the
// trace bytes.
func e2TraceDigest(t *testing.T, seed int64) (string, []byte) {
	t.Helper()
	tr := obs.NewTracer()
	if _, err := Run("E2", Options{Seed: seed, Trials: 1, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(h[:]), buf.Bytes()
}

// TestSeedReplayTraceDigest: the full observability trace — every event
// the instrumented layers emit, in emission order, serialized to JSONL —
// must be byte-identical across two same-seed runs, and must actually
// contain the event families E2 exercises (LSC epochs, VM pause/save/
// restore, TCP retransmissions, kernel probe samples). A different seed
// must diverge, proving the trace observes the run rather than a
// constant schedule.
func TestSeedReplayTraceDigest(t *testing.T) {
	const seed = 20070917
	first, raw := e2TraceDigest(t, seed)
	second, _ := e2TraceDigest(t, seed)
	if first != second {
		t.Fatalf("JSONL trace diverged between two runs with seed %d:\n  run 1: %s\n  run 2: %s",
			seed, first, second)
	}
	if other, _ := e2TraceDigest(t, seed+1); other == first {
		t.Fatalf("trace digest for seed %d equals seed %d: trace is not sensitive to the run", seed, seed+1)
	}
	for _, want := range []string{
		`"ev":"lsc.epoch"`,
		`"ev":"lsc.store"`,
		`"ev":"vm.pause"`,
		`"ev":"vm.save"`,
		`"ev":"vm.restore"`,
		`"ev":"sim.probe"`,
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("trace is missing %s events", want)
		}
	}
	// And the JSONL must round-trip through the reader.
	recs, err := obs.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("re-reading own trace: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("trace round-tripped to zero records")
	}
}

// TestSeedReplayEventDigest: same seed, twice, identical kernel-level
// event digests; a different seed must (overwhelmingly) diverge, proving
// the digest actually observes the run.
func TestSeedReplayEventDigest(t *testing.T) {
	const seed = 20070917
	first := lscEventDigest(t, seed)
	second := lscEventDigest(t, seed)
	if first != second {
		t.Fatalf("event digest diverged between two runs with seed %d:\n  run 1: %s\n  run 2: %s",
			seed, first, second)
	}
	if other := lscEventDigest(t, seed+1); other == first {
		t.Fatalf("event digest for seed %d equals seed %d: digest is not sensitive to the run", seed, seed+1)
	}
}

// Pinned baseline digests for seed 20070917, recorded before the
// zero-copy data-plane rewrite (chunked payload ropes, ring-buffered TCP
// queues, streaming image encode). The rewrite is required to preserve
// observable behaviour exactly — same segment boundaries, same event
// ordering, same serialized tables and traces, and the same decoded
// image content — so all three digests must match the pre-rewrite
// values bit for bit. (The LSC digest judges images by decoded content,
// not encoded bytes or lengths; see lscEventDigest for why gob's
// process-global type-id counter makes anything else order-sensitive.)
// If a future change moves one of these, it changed
// simulation-visible behaviour and the new value must be justified and
// re-pinned here (cf. the queue_depth note for the PR 4 event path).
const (
	pinnedE2MetricsDigest = "118959d6fd036deb649a5640544155fe10f84c339189c9c36a119f39b3e5086d"
	pinnedE2TraceDigest   = "3097fbaeed5e5b6a48ec7b981bdd2874c8e3ff59260c174d0afc823219877c65"
	pinnedLSCEventDigest  = "83070258c20fbfcba8993713719d015a5de36b9030aea1d13005322c99ba73ff"
)

// TestSeedReplayDigestsMatchPinnedBaseline: the digests are not merely
// self-consistent across two runs — they equal the recorded pre-rewrite
// baseline, proving the data-plane rewrite is behaviour-preserving.
func TestSeedReplayDigestsMatchPinnedBaseline(t *testing.T) {
	const seed = 20070917
	if got := e2MetricsDigest(t, seed); got != pinnedE2MetricsDigest {
		t.Errorf("E2 metrics digest moved off the pinned baseline:\n  got  %s\n  want %s", got, pinnedE2MetricsDigest)
	}
	if got, _ := e2TraceDigest(t, seed); got != pinnedE2TraceDigest {
		t.Errorf("E2 JSONL trace digest moved off the pinned baseline:\n  got  %s\n  want %s", got, pinnedE2TraceDigest)
	}
	if got := lscEventDigest(t, seed); got != pinnedLSCEventDigest {
		t.Errorf("LSC event digest moved off the pinned baseline:\n  got  %s\n  want %s", got, pinnedLSCEventDigest)
	}
}
