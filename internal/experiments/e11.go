package experiments

import (
	"dvc/internal/core"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/sim"
)

func init() {
	register("E11", "Parallel migration of running virtual clusters (§4)", runE11)
}

// runE11 implements §4's next step — "Extending LSC to enable parallel
// migration" — and measures it: a running VC is checkpointed, its images
// staged, and the whole cluster restored on a different set of physical
// nodes. The proactive case migrates away from a predicted fault before
// it happens, so the job never sees the crash.
func runE11(opts Options) *Result {
	res := &Result{}

	tbl := metrics.NewTable("E11: whole-VC migration (VM RAM 256 MiB, shared store 200 MB/s)",
		"VC size", "save skew", "store", "stage", "downtime", "job outcome")

	type migOut struct {
		downtime sim.Time
		ok       bool
	}
	migrate := func(n int, seed int64) migOut {
		lsc := core.DefaultNTPLSC()
		b := newBed(seed, map[string]int{"alpha": n, "beta": n}, lsc, true)
		vc, err := b.mgr.Allocate(core.VCSpec{Name: "mig", Nodes: n, VMRAM: vmRAM, Clusters: []string{"alpha"}}, nil)
		if err != nil {
			panic(err)
		}
		b.k.RunFor(30 * sim.Second)
		vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(4000, 20*sim.Millisecond, 2048) })
		b.k.RunFor(2 * sim.Second)
		var r *core.CheckpointResult
		if err := b.co.Migrate(vc, b.site.UpNodes("beta"), func(cr *core.CheckpointResult) { r = cr }); err != nil {
			panic(err)
		}
		deadline := b.k.Now() + 30*sim.Minute
		for r == nil && b.k.Now() < deadline {
			b.k.RunFor(sim.Second)
		}
		out := migOut{}
		if r == nil || !r.OK {
			return out
		}
		onBeta := true
		for _, node := range vc.PhysicalNodes() {
			if node.Cluster() != "beta" {
				onBeta = false
			}
		}
		js := b.runJob(vc, 2*sim.Hour)
		out.ok = onBeta && js.AllOK()
		out.downtime = r.Downtime
		tbl.Row(n, r.SaveSkew, r.StoreTime, "-", r.Downtime, outcomeStr(out.ok))
		return out
	}

	sizes := []int{2, 4, 8}
	if opts.Full {
		sizes = append(sizes, 16)
	}
	outs := map[int]migOut{}
	for _, n := range sizes {
		outs[n] = migrate(n, opts.Seed+int64(n))
	}

	// Proactive fault avoidance: a predicted fault triggers migration;
	// the node then dies, and the job never notices.
	proactive := func(seed int64) bool {
		lsc := core.DefaultNTPLSC()
		b := newBed(seed, map[string]int{"alpha": 4, "beta": 4}, lsc, true)
		vc, err := b.mgr.Allocate(core.VCSpec{Name: "pro", Nodes: 4, VMRAM: vmRAM, Clusters: []string{"alpha"}}, nil)
		if err != nil {
			panic(err)
		}
		b.k.RunFor(30 * sim.Second)
		vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(4000, 20*sim.Millisecond, 2048) })
		b.k.RunFor(2 * sim.Second)

		// Fault predictor fires: alpha-n00 will die in 60 s — enough
		// lead time for the migration (downtime ~13 s) to finish first,
		// while the ~90 s job is still running when the node dies.
		doomed, _ := b.site.Node("alpha-n00")
		b.k.After(60*sim.Second, func() { doomed.Fail() })
		var r *core.CheckpointResult
		b.co.Migrate(vc, b.site.UpNodes("beta"), func(cr *core.CheckpointResult) { r = cr })
		js := b.runJob(vc, 2*sim.Hour)
		if r == nil || !r.OK || !js.AllOK() {
			return false
		}
		for _, app := range vc.RankApps() {
			if h, ok := app.(*hpcc.Halo); !ok || !h.Finished {
				return false
			}
		}
		return !doomed.Up() // the fault did happen; the job survived it
	}
	proOK := proactive(opts.Seed + 777)
	tbl.Row("4 (proactive)", "-", "-", "-", "-", outcomeStr(proOK))
	res.table(tbl, opts.out())

	// AND-reduction over the outcome set. Writing only the constant
	// `false` keeps the loop order-independent (dvclint: mapiter).
	allOK := proOK
	for _, o := range outs {
		if !o.ok {
			allOK = false
		}
	}
	res.check("every migration lands on the target cluster and the job completes", allOK, "")
	res.check("downtime grows with VC size (shared store is the bottleneck)",
		outs[8].downtime > outs[2].downtime,
		"8 VMs: %v vs 2 VMs: %v", outs[8].downtime, outs[2].downtime)
	res.check("proactive migration hides a predicted fault", proOK, "")
	return res
}

func outcomeStr(ok bool) string {
	if ok {
		return "completed"
	}
	return "FAILED"
}
