package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/metrics"
	"dvc/internal/phys"
	"dvc/internal/rm"
	"dvc/internal/sim"
	"dvc/internal/storage"
	"dvc/internal/vm"
	"dvc/internal/workload"
)

func init() {
	register("E9", "Multi-cluster spanning VCs vs independent clusters (§1)", runE9)
}

// runE9 reproduces §1's claim that "a system that can transparently span
// parallel jobs between multiple clusters will outperform those same
// clusters acting independently": the same job mix runs on (a) two
// 12-node clusters scheduled independently and (b) the same hardware as
// one DVC pool where virtual clusters may span.
func runE9(opts Options) *Result {
	res := &Result{}
	const perCluster = 12
	jobCount := 14
	if opts.Full {
		jobCount = 40
	}

	mix := workload.MixConfig{
		Count:       jobCount,
		ArrivalMean: 20 * sim.Second,
		// Wide jobs that neither half-filled cluster can place alone.
		Widths:       []int{2, 4, 8, 10},
		WidthWeights: []float64{2, 3, 3, 2},
		WorkMin:      3 * sim.Minute,
		WorkMax:      8 * sim.Minute,
	}

	newDVCRM := func(k *sim.Kernel, site *phys.Site) *rm.RM {
		store := storage.New(k, storage.DefaultConfig())
		mgr := core.NewManager(k, site, store, vm.DefaultXenConfig())
		lsc := core.DefaultNTPLSC()
		lsc.ContinueAfterSave = true
		coord := core.NewCoordinator(mgr, lsc)
		cfg := rm.DefaultConfig(rm.DVC)
		cfg.CheckpointInterval = 0 // no faults in this experiment
		r := rm.New(k, site, mgr, coord, cfg)
		r.Start()
		return r
	}

	type outcome struct {
		completed int
		makespan  sim.Time
		meanWait  sim.Time
		util      float64
	}

	// (a) Independent clusters: two separate RMs; each job goes to the
	// RM with the shorter backlog (narrower than either cluster).
	runIndependent := func(seed int64) outcome {
		k := sim.NewKernel(seed)
		siteA := phys.DefaultSite(k)
		siteA.AddCluster("alpha", perCluster, phys.DefaultSpec(), netsimEth())
		siteA.NTP.Start()
		siteB := phys.DefaultSite(k)
		siteB.AddCluster("beta", perCluster, phys.DefaultSpec(), netsimEth())
		siteB.NTP.Start()
		rmA, rmB := newDVCRM(k, siteA), newDVCRM(k, siteB)
		trace := workload.Generate(k.Rand(), mix)
		var lastArrival sim.Time
		for i, spec := range trace {
			spec := spec
			target := rmA
			if i%2 == 1 {
				target = rmB
			}
			if spec.Arrival > lastArrival {
				lastArrival = spec.Arrival
			}
			k.At(spec.Arrival, func() { target.Submit(spec) })
		}
		k.RunUntil(lastArrival + sim.Second) // all jobs have arrived
		deadline := 24 * sim.Hour
		for k.Now() < deadline && !(rmA.AllDone() && rmB.AllDone()) {
			k.RunFor(30 * sim.Second)
		}
		sa, sb := rmA.Stats(), rmB.Stats()
		mk := sa.Makespan
		if sb.Makespan > mk {
			mk = sb.Makespan
		}
		done := sa.Completed + sb.Completed
		var wait sim.Time
		if done > 0 {
			wait = (sa.TotalWaited + sb.TotalWaited) / sim.Time(done)
		}
		util := (sa.BusyNodeTime + sb.BusyNodeTime).Seconds() / (2 * perCluster * mk.Seconds())
		return outcome{completed: done, makespan: mk, meanWait: wait, util: util}
	}

	// (b) Spanning: one DVC pool over both clusters; a VC may straddle
	// them (homogeneous software stack via VMs — DVC goal 3).
	runSpanning := func(seed int64) outcome {
		k := sim.NewKernel(seed)
		site := phys.DefaultSite(k)
		site.AddCluster("alpha", perCluster, phys.DefaultSpec(), netsimEth())
		site.AddCluster("beta", perCluster, phys.DefaultSpec(), netsimEth())
		site.NTP.Start()
		r := newDVCRM(k, site)
		trace := workload.Generate(k.Rand(), mix)
		r.SubmitTrace(trace)
		deadline := 24 * sim.Hour
		for k.Now() < deadline && !r.AllDone() {
			k.RunFor(30 * sim.Second)
		}
		s := r.Stats()
		var wait sim.Time
		if s.Completed > 0 {
			wait = s.TotalWaited / sim.Time(s.Completed)
		}
		return outcome{
			completed: s.Completed,
			makespan:  s.Makespan,
			meanWait:  wait,
			util:      s.Utilization(2*perCluster, s.Makespan),
		}
	}

	ind := runIndependent(opts.Seed)
	span := runSpanning(opts.Seed)

	tbl := metrics.NewTable("E9: same hardware, independent clusters vs one spanning DVC pool",
		"configuration", "completed", "makespan", "mean wait", "utilization")
	tbl.Row("2 independent 12-node clusters", ind.completed, ind.makespan, ind.meanWait, fmt.Sprintf("%.0f%%", 100*ind.util))
	tbl.Row("1 spanning 24-node DVC pool", span.completed, span.makespan, span.meanWait, fmt.Sprintf("%.0f%%", 100*span.util))
	res.table(tbl, opts.out())

	res.check("all jobs complete in both configurations",
		ind.completed == jobCount && span.completed == jobCount,
		"independent %d, spanning %d of %d", ind.completed, span.completed, jobCount)
	res.check("spanning improves makespan", span.makespan < ind.makespan,
		"spanning %v vs independent %v", span.makespan, ind.makespan)
	res.check("spanning reduces mean wait", span.meanWait < ind.meanWait,
		"spanning %v vs independent %v", span.meanWait, ind.meanWait)
	return res
}
