package experiments

import (
	"fmt"

	"dvc/internal/ckpt"
	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/netsim"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

func init() {
	register("E5", "DVC (whole-VM) vs application/user/kernel-level checkpoint efficiency (§2, abstract)", runE5)
}

// runE5 reproduces the abstract's promised comparison: "a measure of the
// efficiency of DVC checkpoints vs. application specific checkpoints for
// common applications". The live-data sizes are grounded by actually
// running HPL mid-factorisation and measuring its serialised state; the
// method overheads then follow §2's taxonomy.
func runE5(opts Options) *Result {
	res := &Result{}
	const (
		ranks  = 4
		diskBW = 60e6 // node-local dump bandwidth
	)

	// Ground truth: run HPL to ~half of the factorisation and measure
	// one rank's real serialised application state.
	measure := func(n int) int64 {
		k := sim.NewKernel(opts.Seed)
		f := netsim.NewFabric(k)
		f.AddCluster("c", netsim.EthernetGigE())
		var oses []*guest.OS
		for i := 0; i < ranks; i++ {
			addr := netsim.Addr(fmt.Sprintf("r%d", i))
			s := tcp.NewStack(k, f, addr, tcp.DefaultConfig())
			f.Attach(addr, "c", s.Deliver)
			oses = append(oses, guest.New(k, s, func() sim.Time { return k.Now() }, 1.0, guest.WatchdogConfig{}))
		}
		// Slow enough that we can stop mid-run deterministically.
		rate := (2.0 / 3.0 * float64(n) * float64(n) * float64(n) / float64(ranks)) / 20 / 1e9
		pids := mpi.Launch(oses, 6000, func(int) mpi.App { return hpcc.NewHPL(n, 42, rate) })
		k.RunFor(10 * sim.Second) // ~half way
		p, _ := oses[0].Proc(pids[0])
		size, err := ckpt.GobSize(p.Program().(*mpi.Driver).App)
		if err != nil {
			panic(err)
		}
		return size
	}

	type workloadCase struct {
		name     string
		liveData int64
	}
	cases := []workloadCase{
		{"hpl-N128 (measured)", measure(128)},
		{"hpl-N256 (measured)", measure(256)},
		// Paper-scale extrapolation: N=8192 over 26 ranks, 8(N+1)N/P.
		{"hpl-N8192/26 (model)", 8 * 8192 * 8193 / 26},
	}

	tbl := metrics.NewTable("E5: checkpoint image size and time by method (guest RAM 1 GiB, disk 60 MB/s)",
		"workload", "method", "image", "save", "restore", "src-changes", "relink", "kmod", "parallel-transparent")
	var vmOverApp float64
	for _, c := range cases {
		fp := ckpt.DefaultFootprint(c.liveData, 1<<30)
		for _, est := range ckpt.Estimates(fp, diskBW) {
			tbl.Row(c.name, est.Method.String(), fmtBytes(est.ImageBytes),
				est.SaveTime, est.RestoreTime,
				est.SourceChanges, est.Relink, est.KernelModule, est.TransparentParallel)
			if est.Method == ckpt.VMLevel {
				vmOverApp = float64(est.ImageBytes) / float64(fp.LiveData)
			}
		}
	}
	res.table(tbl, opts.out())

	fpSmall := ckpt.DefaultFootprint(cases[0].liveData, 1<<30)
	ests := ckpt.Estimates(fpSmall, diskBW)
	res.check("sizes ordered app < user < kernel < vm",
		ests[0].ImageBytes < ests[1].ImageBytes &&
			ests[1].ImageBytes < ests[2].ImageBytes &&
			ests[2].ImageBytes < ests[3].ImageBytes,
		"%d < %d < %d < %d", ests[0].ImageBytes, ests[1].ImageBytes, ests[2].ImageBytes, ests[3].ImageBytes)
	res.check("only VM level is transparently parallel",
		ests[3].TransparentParallel && !ests[0].TransparentParallel &&
			!ests[1].TransparentParallel && !ests[2].TransparentParallel, "")
	res.check("VM images cost much more than app-level for the large case",
		vmOverApp > 3, "vm/app size ratio %.1fx", vmOverApp)
	res.check("measured state grows with problem size",
		cases[1].liveData > 2*cases[0].liveData,
		"N=128: %s, N=256: %s", fmtBytes(cases[0].liveData), fmtBytes(cases[1].liveData))
	return res
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
