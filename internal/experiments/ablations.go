package experiments

import (
	"fmt"

	"dvc/internal/clock"
	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/obs"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

func init() {
	register("A1", "Ablation: the TCP retry budget sets the LSC failure cliff", runA1)
	register("A2", "Ablation: how much clock error NTP-scheduled LSC tolerates", runA2)
}

// lscTrialWith is lscTrial with custom transport/clock configuration.
func lscTrialWith(seed int64, nodes int, o bedOptions) lscTrialResult {
	b := makeBed(seed, o)
	vc := b.allocate("t", nodes, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(1500, 20*sim.Millisecond, 4096) })
	b.k.RunFor(2 * sim.Second)
	res := b.checkpointOnce(vc, 10*sim.Minute)
	out := lscTrialResult{}
	if res == nil {
		out.reason = "checkpoint never completed"
		return out
	}
	out.skew = res.SaveSkew
	out.downtime = res.Downtime
	out.attempts = res.Attempts
	if !res.OK {
		out.reason = res.Reason
		return out
	}
	if err := core.InspectImages(res.Images); err != nil {
		out.reason = err.Error()
		return out
	}
	if !b.runJob(vc, 2*sim.Hour).AllOK() {
		out.reason = "job failed after restore"
		return out
	}
	out.ok = true
	return out
}

// runA1 ablates the design constant DESIGN.md calls out: LSC's entire
// tolerance to save skew comes from the transport's retry budget. A
// smaller budget moves the naive coordinator's failure cliff toward
// smaller clusters; a bigger budget pushes it out. (The paper's fix —
// bounding skew with NTP — makes the budget irrelevant, which is the
// point of the last column.)
func runA1(opts Options) *Result {
	res := &Result{}
	trials := opts.Trials
	if trials == 0 {
		trials = 8
	}
	const nodes = 10 // the paper's 50% point at the default budget

	tbl := metrics.NewTable(fmt.Sprintf("A1: naive LSC failure at %d nodes vs TCP retry budget", nodes),
		"max-retries", "retry budget", "naive fail%", "ntp fail%")
	// Flatten the (retries, trial) × {naive, ntp} matrix into one trial
	// list in serial emission order — for each budget, for each trial,
	// naive then ntp — and fan it across the fleet pool. Each budget's
	// tcp.Config lives once and is shared read-only by its trial closures.
	retriesList := []int{2, 4, 6}
	type a1Spec struct {
		seed int64
		o    bedOptions
	}
	var specs []a1Spec
	budgets := make([]sim.Time, len(retriesList))
	for ri, retries := range retriesList {
		cfg := tcp.DefaultConfig()
		cfg.MaxRetries = retries
		budgets[ri] = cfg.RetryBudget(cfg.InitialRTO)
		for trial := 0; trial < trials; trial++ {
			specs = append(specs, a1Spec{
				seed: opts.Seed + int64(retries*1000+trial),
				o: bedOptions{
					clusters: map[string]int{"alpha": nodes},
					lsc:      core.DefaultNaiveLSC(),
					tcpCfg:   &cfg,
				},
			})
			specs = append(specs, a1Spec{
				seed: opts.Seed + int64(retries*1000+trial+500),
				o: bedOptions{
					clusters: map[string]int{"alpha": nodes},
					lsc:      core.DefaultNTPLSC(),
					ntp:      true,
					tcpCfg:   &cfg,
				},
			})
		}
	}
	outs := forEachTrial(opts, len(specs), func(i int, _ *obs.Tracer) lscTrialResult {
		return lscTrialWith(specs[i].seed, nodes, specs[i].o)
	})
	failAt := map[int]float64{}
	for ri, retries := range retriesList {
		naiveFails, ntpFails := 0, 0
		base := ri * 2 * trials
		for trial := 0; trial < trials; trial++ {
			if !outs[base+2*trial].ok {
				naiveFails++
			}
			if !outs[base+2*trial+1].ok {
				ntpFails++
			}
		}
		failAt[retries] = pct(naiveFails, trials)
		tbl.Row(retries, budgets[ri], failAt[retries], pct(ntpFails, trials))
	}
	res.table(tbl, opts.out())

	res.check("shorter budget fails more", failAt[2] > failAt[6],
		"retries=2: %.0f%% vs retries=6: %.0f%%", failAt[2], failAt[6])
	res.check("tight budget is (nearly) always fatal for the naive coordinator",
		failAt[2] >= 75, "%.0f%%", failAt[2])
	return res
}

// runA2 ablates the clock-quality requirement: NTP's few-millisecond
// residual is thousands of times tighter than LSC needs — the method only
// starts failing when clock error approaches the (half) retry budget,
// i.e. for clocks so bad no one would call them synchronised.
func runA2(opts Options) *Result {
	res := &Result{}
	trials := opts.Trials
	if trials == 0 {
		trials = 8
	}
	const nodes = 12

	tbl := metrics.NewTable(fmt.Sprintf("A2: NTP-scheduled LSC at %d nodes vs clock residual error", nodes),
		"residual std", "skew.mean", "fail%")
	fails := map[sim.Time]float64{}
	residuals := []sim.Time{
		1500 * sim.Microsecond, // real LAN NTP (the paper's setting)
		100 * sim.Millisecond,  // badly congested NTP
		800 * sim.Millisecond,  // barely disciplined
		2 * sim.Second,         // effectively unsynchronised
	}
	// Flatten the (residual, trial) sweep and fan it across the fleet
	// pool; each residual's NTP config lives once and is shared read-only
	// by its trial closures. Aggregation walks the results in the serial
	// loop's order, so the table is identical at any Options.Parallel.
	type a2Spec struct {
		seed int64
		o    bedOptions
	}
	var specs []a2Spec
	for _, residual := range residuals {
		ntpCfg := clock.DefaultNTPConfig()
		ntpCfg.ResidualStd = residual
		for trial := 0; trial < trials; trial++ {
			o := bedOptions{
				clusters: map[string]int{"alpha": nodes},
				lsc:      core.DefaultNTPLSC(),
				ntp:      true,
				ntpCfg:   &ntpCfg,
			}
			// The save instant must sit beyond the worst clock error.
			o.lsc.ScheduleLead = 2*sim.Second + 8*residual
			specs = append(specs, a2Spec{seed: opts.Seed + int64(residual) + int64(trial), o: o})
		}
	}
	outs := forEachTrial(opts, len(specs), func(i int, _ *obs.Tracer) lscTrialResult {
		return lscTrialWith(specs[i].seed, nodes, specs[i].o)
	})
	for ri, residual := range residuals {
		failures := 0
		var skew metrics.Sample
		for _, r := range outs[ri*trials : (ri+1)*trials] {
			if !r.ok {
				failures++
			}
			skew.AddTime(r.skew)
		}
		fails[residual] = pct(failures, trials)
		tbl.Row(residual, fmtSeconds(skew.Mean()), fails[residual])
	}
	res.table(tbl, opts.out())

	res.check("paper-grade NTP never fails", fails[residuals[0]] == 0,
		"%.0f%%", fails[residuals[0]])
	res.check("100ms-class clocks still fine (huge safety margin)",
		fails[residuals[1]] == 0, "%.0f%%", fails[residuals[1]])
	res.check("unsynchronised clocks break LSC", fails[residuals[3]] > 0,
		"%.0f%% at 2s residual", fails[residuals[3]])
	return res
}
