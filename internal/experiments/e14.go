package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/sim"
)

func init() {
	register("E14", "Extension: page-level incremental checkpoints", runE14)
}

// runE14 extends the checkpoint-cost story (E4/E5) with page-level
// incremental images: after a full base, each generation ships only the
// pages dirtied since the last save, cutting store traffic and save
// stalls — at the price of staging a chain on restore. Periodic full
// consolidation bounds the chain.
func runE14(opts Options) *Result {
	res := &Result{}
	const (
		nodes     = 4
		cycles    = 6
		dirtyRate = 6e6
	)

	type out struct {
		bytesWritten int64
		meanStore    sim.Time
		meanDown     sim.Time
		restoreStage sim.Time
		jobOK        bool
	}
	run := func(seed int64, incremental bool, fullEvery int) out {
		lsc := core.DefaultNTPLSC()
		lsc.ContinueAfterSave = true
		lsc.Incremental = incremental
		lsc.FullEvery = fullEvery
		b := newBed(seed, map[string]int{"alpha": nodes * 2}, lsc, true)
		vc := b.allocate("inc", nodes, guest.WatchdogConfig{})
		vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(30000, 20*sim.Millisecond, 1024) })
		for _, d := range vc.Domains() {
			d.SetDirtyRate(dirtyRate)
		}
		b.k.RunFor(sim.Second)

		o := out{}
		var gens []*core.CheckpointResult
		for i := 0; i < cycles; i++ {
			var r *core.CheckpointResult
			if err := b.co.Checkpoint(vc, func(cr *core.CheckpointResult) { r = cr }); err != nil {
				panic(err)
			}
			for r == nil {
				b.k.RunFor(sim.Second)
			}
			if !r.OK {
				panic("E14 checkpoint failed: " + r.Reason)
			}
			gens = append(gens, r)
			for _, img := range r.Images {
				o.bytesWritten += img.SizeBytes()
			}
			o.meanStore += r.StoreTime
			o.meanDown += r.Downtime
			b.k.RunFor(10 * sim.Second)
		}
		o.meanStore /= cycles
		o.meanDown /= cycles

		// Fail a node and recover from the newest generation: the restore
		// stages the whole chain when incremental.
		vc.PhysicalNodes()[0].Fail()
		b.k.RunFor(2 * sim.Second)
		vc.Teardown()
		targets := b.site.UpNodes("alpha")[:nodes]
		var rr *core.RestoreResult
		b.co.RestoreVC(vc, gens[len(gens)-1].Generation, targets, func(r *core.RestoreResult) { rr = r })
		deadline := b.k.Now() + 30*sim.Minute
		for rr == nil && b.k.Now() < deadline {
			b.k.RunFor(sim.Second)
		}
		if rr == nil || !rr.OK {
			panic("E14 restore failed")
		}
		o.restoreStage = rr.StageTime
		o.jobOK = b.runJob(vc, 2*sim.Hour).AllOK()
		return o
	}

	full := run(opts.Seed, false, 0)
	inc := run(opts.Seed, true, 0)
	cons := run(opts.Seed, true, 3)

	tbl := metrics.NewTable(fmt.Sprintf("E14: %d checkpoint cycles of a %d-VM cluster (%d MiB guests, %.0f MB/s dirty)",
		cycles, nodes, vmRAM>>20, dirtyRate/1e6),
		"policy", "store traffic", "store/ckpt", "downtime/ckpt", "restore stage", "job")
	tbl.Row("full every time", fmtBytes(full.bytesWritten), full.meanStore, full.meanDown, full.restoreStage, okStr(full.jobOK))
	tbl.Row("incremental", fmtBytes(inc.bytesWritten), inc.meanStore, inc.meanDown, inc.restoreStage, okStr(inc.jobOK))
	tbl.Row("incremental, full every 3", fmtBytes(cons.bytesWritten), cons.meanStore, cons.meanDown, cons.restoreStage, okStr(cons.jobOK))
	res.table(tbl, opts.out())

	res.check("all policies recover the job", full.jobOK && inc.jobOK && cons.jobOK, "")
	res.check("incremental slashes store traffic",
		inc.bytesWritten*2 < full.bytesWritten,
		"%s vs %s", fmtBytes(inc.bytesWritten), fmtBytes(full.bytesWritten))
	res.check("incremental shrinks per-checkpoint downtime",
		inc.meanDown < full.meanDown,
		"%v vs %v", inc.meanDown, full.meanDown)
	res.check("chain restore costs more staging than a full restore",
		inc.restoreStage > full.restoreStage,
		"%v vs %v", inc.restoreStage, full.restoreStage)
	res.check("consolidation bounds the restore chain",
		cons.restoreStage < inc.restoreStage,
		"%v vs %v", cons.restoreStage, inc.restoreStage)
	return res
}

func okStr(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAILED"
}
