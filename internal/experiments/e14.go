package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/phys"
	"dvc/internal/sim"
)

func init() {
	register("E14", "Extension: page-level incremental checkpoints", runE14)
}

// runE14 extends the checkpoint-cost story (E4/E5) with page-level
// incremental images: after a full base, each generation ships only the
// pages dirtied since the last save, cutting store traffic and save
// stalls — at the price of staging a chain on restore. Periodic full
// consolidation bounds the chain.
func runE14(opts Options) *Result {
	res := &Result{}
	const (
		nodes     = 4
		cycles    = 6
		dirtyRate = 6e6
	)

	type out struct {
		bytesWritten int64
		meanStore    sim.Time
		meanDown     sim.Time
		restoreStage sim.Time
		jobOK        bool
	}
	run := func(seed int64, incremental bool, fullEvery int) out {
		lsc := core.DefaultNTPLSC()
		lsc.ContinueAfterSave = true
		lsc.Incremental = incremental
		lsc.FullEvery = fullEvery
		b := newBed(seed, map[string]int{"alpha": nodes * 2}, lsc, true)
		vc := b.allocate("inc", nodes, guest.WatchdogConfig{})
		vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(30000, 20*sim.Millisecond, 1024) })
		for _, d := range vc.Domains() {
			d.SetDirtyRate(dirtyRate)
		}
		b.k.RunFor(sim.Second)

		o := out{}
		var gens []*core.CheckpointResult
		for i := 0; i < cycles; i++ {
			var r *core.CheckpointResult
			if err := b.co.Checkpoint(vc, func(cr *core.CheckpointResult) { r = cr }); err != nil {
				panic(err)
			}
			for r == nil {
				b.k.RunFor(sim.Second)
			}
			if !r.OK {
				panic("E14 checkpoint failed: " + r.Reason)
			}
			gens = append(gens, r)
			for _, img := range r.Images {
				o.bytesWritten += img.SizeBytes()
			}
			o.meanStore += r.StoreTime
			o.meanDown += r.Downtime
			b.k.RunFor(10 * sim.Second)
		}
		o.meanStore /= cycles
		o.meanDown /= cycles

		// Fail a node and recover from the newest generation: the restore
		// stages the whole chain when incremental.
		vc.PhysicalNodes()[0].Fail()
		b.k.RunFor(2 * sim.Second)
		vc.Teardown()
		targets := b.site.UpNodes("alpha")[:nodes]
		var rr *core.RestoreResult
		b.co.RestoreVC(vc, gens[len(gens)-1].Generation, targets, func(r *core.RestoreResult) { rr = r })
		deadline := b.k.Now() + 30*sim.Minute
		for rr == nil && b.k.Now() < deadline {
			b.k.RunFor(sim.Second)
		}
		if rr == nil || !rr.OK {
			panic("E14 restore failed")
		}
		o.restoreStage = rr.StageTime
		o.jobOK = b.runJob(vc, 2*sim.Hour).AllOK()
		return o
	}

	full := run(opts.Seed, false, 0)
	inc := run(opts.Seed, true, 0)
	cons := run(opts.Seed, true, 3)

	tbl := metrics.NewTable(fmt.Sprintf("E14: %d checkpoint cycles of a %d-VM cluster (%d MiB guests, %.0f MB/s dirty)",
		cycles, nodes, vmRAM>>20, dirtyRate/1e6),
		"policy", "store traffic", "store/ckpt", "downtime/ckpt", "restore stage", "job")
	tbl.Row("full every time", fmtBytes(full.bytesWritten), full.meanStore, full.meanDown, full.restoreStage, okStr(full.jobOK))
	tbl.Row("incremental", fmtBytes(inc.bytesWritten), inc.meanStore, inc.meanDown, inc.restoreStage, okStr(inc.jobOK))
	tbl.Row("incremental, full every 3", fmtBytes(cons.bytesWritten), cons.meanStore, cons.meanDown, cons.restoreStage, okStr(cons.jobOK))
	res.table(tbl, opts.out())

	res.check("all policies recover the job", full.jobOK && inc.jobOK && cons.jobOK, "")
	res.check("incremental slashes store traffic",
		inc.bytesWritten*2 < full.bytesWritten,
		"%s vs %s", fmtBytes(inc.bytesWritten), fmtBytes(full.bytesWritten))
	res.check("incremental shrinks per-checkpoint downtime",
		inc.meanDown < full.meanDown,
		"%v vs %v", inc.meanDown, full.meanDown)
	res.check("chain restore costs more staging than a full restore",
		inc.restoreStage > full.restoreStage,
		"%v vs %v", inc.restoreStage, full.restoreStage)
	res.check("consolidation bounds the restore chain",
		cons.restoreStage < inc.restoreStage,
		"%v vs %v", cons.restoreStage, inc.restoreStage)

	// E14b: content-addressed delta epochs on a 2-datacenter WAN. Unlike
	// the page-chain above, every delta epoch is self-contained — the
	// store's chunk pool dedups template, zero, and unchanged private
	// chunks across epochs and VMs, so the wire carries only new chunks
	// plus manifest metadata, and restore stages a single image.
	type wout struct {
		firstEpoch   int64 // bytes shipped for epoch 0 (cold pool)
		steadyEpoch  int64 // mean bytes/epoch over epochs 1..n-1
		logical      int64 // logical image bytes across all epochs
		sent         int64 // bytes actually shipped across all epochs
		restoreStage sim.Time
		jobOK        bool
	}
	runWAN := func(seed int64, delta bool) wout {
		lsc := core.DefaultNTPLSC()
		lsc.ContinueAfterSave = true
		lsc.Delta = delta
		b := newWANBed(seed, nodes*2, lsc)
		src := phys.ClusterName(0, 0)
		vc, err := b.mgr.Allocate(core.VCSpec{Name: "wdlt", Nodes: nodes, VMRAM: vmRAM, Clusters: []string{src}}, nil)
		if err != nil {
			panic(err)
		}
		for _, d := range vc.Domains() {
			d.SetDirtyRate(dirtyRate)
		}
		b.k.RunFor(35 * sim.Second)
		vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(30000, 20*sim.Millisecond, 1024) })
		b.k.RunFor(sim.Second)

		o := wout{}
		var gens []*core.CheckpointResult
		for i := 0; i < cycles; i++ {
			var r *core.CheckpointResult
			if err := b.co.Checkpoint(vc, func(cr *core.CheckpointResult) { r = cr }); err != nil {
				panic(err)
			}
			for r == nil {
				b.k.RunFor(sim.Second)
			}
			if !r.OK {
				panic("E14b checkpoint failed: " + r.Reason)
			}
			gens = append(gens, r)
			epoch := int64(0)
			if delta {
				epoch = r.SentBytes
				o.logical += r.LogicalBytes
			} else {
				for _, img := range r.Images {
					epoch += img.SizeBytes()
				}
				o.logical += epoch
			}
			o.sent += epoch
			if i == 0 {
				o.firstEpoch = epoch
			} else {
				o.steadyEpoch += epoch
			}
			b.k.RunFor(5 * sim.Second)
		}
		o.steadyEpoch /= cycles - 1

		vc.PhysicalNodes()[0].Fail()
		b.k.RunFor(2 * sim.Second)
		vc.Teardown()
		targets := b.site.UpNodes(src)[:nodes]
		var rr *core.RestoreResult
		b.co.RestoreVC(vc, gens[len(gens)-1].Generation, targets, func(r *core.RestoreResult) { rr = r })
		deadline := b.k.Now() + 30*sim.Minute
		for rr == nil && b.k.Now() < deadline {
			b.k.RunFor(sim.Second)
		}
		if rr == nil || !rr.OK {
			panic("E14b restore failed")
		}
		o.restoreStage = rr.StageTime
		o.jobOK = b.runJob(vc, 2*sim.Hour).AllOK()
		return o
	}

	wanFull := runWAN(opts.Seed+20, false)
	wanDelta := runWAN(opts.Seed+20, true)
	dedup := float64(wanDelta.logical) / float64(wanDelta.sent)

	wtbl := metrics.NewTable(fmt.Sprintf("E14b: %d content-addressed delta epochs of a %d-VM cluster on a 2-DC WAN",
		cycles, nodes),
		"policy", "epoch 0", "bytes/epoch (steady)", "total shipped", "dedup ratio", "restore stage", "job")
	wtbl.Row("full image every epoch", fmtBytes(wanFull.firstEpoch), fmtBytes(wanFull.steadyEpoch),
		fmtBytes(wanFull.sent), "1.0x", wanFull.restoreStage, okStr(wanFull.jobOK))
	wtbl.Row("delta epochs", fmtBytes(wanDelta.firstEpoch), fmtBytes(wanDelta.steadyEpoch),
		fmtBytes(wanDelta.sent), fmt.Sprintf("%.1fx", dedup), wanDelta.restoreStage, okStr(wanDelta.jobOK))
	res.table(wtbl, opts.out())

	res.check("both WAN policies recover the job", wanFull.jobOK && wanDelta.jobOK, "")
	res.check("steady-state delta epoch ships <= 25% of a full epoch",
		wanDelta.steadyEpoch*4 <= wanFull.steadyEpoch,
		"%s vs %s", fmtBytes(wanDelta.steadyEpoch), fmtBytes(wanFull.steadyEpoch))
	res.check("chunk pool dedups across epochs and VMs",
		dedup > 2,
		"ratio %.1fx", dedup)
	res.check("delta restore stages one image, not a chain",
		wanDelta.restoreStage < wanFull.restoreStage*2,
		"%v vs full's %v", wanDelta.restoreStage, wanFull.restoreStage)
	return res
}

func okStr(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAILED"
}
