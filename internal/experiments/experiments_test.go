package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryListsAllExperiments(t *testing.T) {
	ids := IDs()
	want := []string{"A1", "A2", "E1", "E10", "E11", "E12", "E13", "E14", "E15", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "PSCALE", "SCALE"}
	if len(ids) != len(want) {
		t.Fatalf("IDs() = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs()[%d] = %s, want %s", i, ids[i], id)
		}
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Fatalf("experiment %s has no title", id)
		}
	}
}

func TestUnknownExperimentErrors(t *testing.T) {
	if _, err := Run("E99", Options{}); err == nil {
		t.Fatal("unknown id accepted")
	}
	if Title("E99") != "" {
		t.Fatal("unknown id has a title")
	}
}

func TestOutputGoesToWriter(t *testing.T) {
	var buf bytes.Buffer
	res, err := Run("E3", Options{Seed: 1, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E3: snapshot cuts") {
		t.Fatalf("output missing table:\n%s", buf.String())
	}
	if len(res.Tables) == 0 {
		t.Fatal("no tables recorded")
	}
}

// fast experiments run in every test invocation; the statistical sweeps
// are skipped with -short.
func TestE3ConsistentCut(t *testing.T)   { expectOK(t, "E3", 0) }
func TestE5CheckpointCosts(t *testing.T) { expectOK(t, "E5", 0) }
func TestE12Infiniband(t *testing.T)     { expectOK(t, "E12", 0) }

func TestE1NaiveScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep")
	}
	expectOK(t, "E1", 6)
}

func TestE2NTPReliability(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep")
	}
	expectOK(t, "E2", 3)
}

func TestE4CheckpointOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running workloads")
	}
	expectOK(t, "E4", 0)
}

func TestE6Watchdog(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running workloads")
	}
	expectOK(t, "E6", 0)
}

func TestE7VirtOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running workloads")
	}
	expectOK(t, "E7", 0)
}

func TestE8FaultThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven sweep")
	}
	expectOK(t, "E8", 0)
}

func TestE9MultiCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven sweep")
	}
	expectOK(t, "E9", 0)
}

func TestE10HealthCheckScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep")
	}
	expectOK(t, "E10", 4)
}

func TestE11Migration(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running workloads")
	}
	expectOK(t, "E11", 0)
}

func TestE13LiveMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running workloads")
	}
	expectOK(t, "E13", 0)
}

func TestE14IncrementalCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running workloads")
	}
	expectOK(t, "E14", 0)
}

func TestE15HeterogeneousStacks(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven sweep")
	}
	expectOK(t, "E15", 0)
}

func TestA1RetryBudgetAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep")
	}
	expectOK(t, "A1", 4)
}

func TestA2ClockQualityAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep")
	}
	expectOK(t, "A2", 4)
}

func expectOK(t *testing.T, id string, trials int) {
	t.Helper()
	res, err := Run(id, Options{Seed: 1, Trials: trials})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.FailedChecks() {
		t.Errorf("%s check %q failed: %s", id, c.Name, c.Detail)
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		if _, err := Run("E3", Options{Seed: 42, Out: &buf}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run() != run() {
		t.Fatal("same seed produced different output")
	}
}
