package experiments

import (
	"fmt"

	"dvc/internal/metrics"
	"dvc/internal/netsim"
	"dvc/internal/sim"
)

func init() {
	register("E12", "InfiniBand fabrics: performance vs LSC-safety (§4)", runE12)
}

// runE12 addresses §4's InfiniBand discussion: IB delivers far better
// latency and bandwidth, but "Extending DVC's parallel checkpointing to
// work with InfiniBand will require much work developing drivers capable
// of executing in virtual machines" — an OS-bypass transport holds
// connection state the hypervisor cannot freeze. Here:
//
//   - TCP over Ethernet: the paper's working configuration (LSC-safe).
//   - TCP over IB (IPoIB-style): faster, still through the guest kernel,
//     so snapshots stay consistent.
//   - Raw IB verbs (modelled as the reliable-delivery-but-unfreezable
//     path): a snapshot cuts it inconsistently — messages are lost, as in
//     the E3 control.
func runE12(opts Options) *Result {
	res := &Result{}

	// Microbenchmark both fabrics (native endpoints isolate the fabric).
	latEth, bwEth := runPingPong(opts.Seed, false, netsim.EthernetGigE())
	latIB, bwIB := runPingPong(opts.Seed, false, netsim.InfinibandDDR())
	// Virtualised endpoints on both fabrics.
	latEthV, bwEthV := runPingPong(opts.Seed, true, netsim.EthernetGigE())
	latIBV, bwIBV := runPingPong(opts.Seed, true, netsim.InfinibandDDR())

	// LSC safety: reliable in-kernel transport vs OS-bypass at a cut.
	tcpCut := runCutScenario(opts.Seed, false) // TCP path (fabric-independent mechanics)
	rawCut := runUnreliableCut(opts.Seed)      // verbs-style path

	tbl := metrics.NewTable("E12: fabric and transport choices",
		"configuration", "half-RTT", "bandwidth", "snapshot-consistent")
	tbl.Row("TCP / GigE, native", latEth/2, fmtMBs(bwEth), tcpCut.consistent())
	tbl.Row("TCP / IB-DDR, native", latIB/2, fmtMBs(bwIB), tcpCut.consistent())
	tbl.Row("TCP / GigE, VM", latEthV/2, fmtMBs(bwEthV), tcpCut.consistent())
	tbl.Row("TCP / IB-DDR, VM (IPoIB)", latIBV/2, fmtMBs(bwIBV), tcpCut.consistent())
	tbl.Row("raw verbs / IB-DDR", fmt.Sprintf("~%v", netsim.InfinibandDDR().Latency), fmtMBs(netsim.InfinibandDDR().Bandwidth), rawCut.consistent())
	res.table(tbl, opts.out())

	res.check("IB beats Ethernet on latency", latIB < latEth,
		"%v vs %v", latIB/2, latEth/2)
	res.check("IB beats Ethernet on bandwidth", bwIB > bwEth,
		"%.0f vs %.0f MB/s", bwIB/1e6, bwEth/1e6)
	res.check("kernel TCP path stays snapshot-consistent on any fabric",
		tcpCut.consistent(), "")
	res.check("OS-bypass transport is not snapshot-consistent",
		!rawCut.consistent(), "lost %d of %d", rawCut.lost, rawCut.sent)
	res.check("virtualisation costs more of IB's latency headroom than Ethernet's",
		ratio(latIBV, latIB) > ratio(latEthV, latEth),
		"IB %.1fx vs Eth %.1fx", ratio(latIBV, latIB), ratio(latEthV, latEth))
	return res
}

func ratio(a, b sim.Time) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
