package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"dvc/internal/core"
	"dvc/internal/hpcc"
	"dvc/internal/mpi"
	"dvc/internal/phys"
	"dvc/internal/sim"
)

// BenchmarkDeltaCheckpoint measures the incremental content-addressed
// checkpoint pipeline on the 2-datacenter WAN bed: bytes shipped per
// epoch under full-image vs delta policy at the default guest dirty
// rate, the chunk pool's dedup ratio, and the restore staging latency
// from a delta generation. The byte metrics are machine-independent
// (pure simulation outputs), so the dvcbench gate fails hard on them.
//
// Epoch 0 is reported separately: the ~30 s boot at the default dirty
// rate saturates the page table, so the first delta epoch ships nearly
// the whole image and only the steady-state epochs show the win. The
// in-bench gate enforces the acceptance bar — steady-state delta
// bytes/epoch at most 25% of the full-image baseline.
//
// With DVC_BENCH_JSON=<path> the result is appended to the BENCH_ckpt
// JSON artifact. Run alone:
//
//	go test -run '^$' -bench BenchmarkDeltaCheckpoint -benchtime 1x ./internal/experiments
func BenchmarkDeltaCheckpoint(b *testing.B) {
	const (
		seed   = 20070917
		nodes  = 4
		epochs = 6
	)

	type runOut struct {
		firstEpoch   int64
		steadyEpoch  int64
		logical      int64
		sent         int64
		restoreStage sim.Time
	}
	run := func(delta bool) runOut {
		lsc := core.DefaultNTPLSC()
		lsc.ContinueAfterSave = true
		lsc.Delta = delta
		// Tight epochs: at the default 40 MB/s dirty rate the guests touch
		// ~2% of RAM per 100 ms, so the 2 s default schedule lead would
		// dominate the per-epoch dirty set. NTP skew is micro-seconds, so
		// a 500 ms lead still pauses every domain on time.
		lsc.ScheduleLead = 500 * sim.Millisecond
		bd := newWANBed(seed, nodes*2, lsc)
		src := phys.ClusterName(0, 0)
		vc, err := bd.mgr.Allocate(core.VCSpec{Name: "bench", Nodes: nodes, VMRAM: vmRAM, Clusters: []string{src}}, nil)
		if err != nil {
			b.Fatal(err)
		}
		// Default dirty rate: no SetDirtyRate call, per the acceptance bar.
		bd.k.RunFor(35 * sim.Second)
		vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(30000, 20*sim.Millisecond, 1024) })
		bd.k.RunFor(sim.Second)

		o := runOut{}
		var last *core.CheckpointResult
		for i := 0; i < epochs; i++ {
			r := bd.checkpointOnce(vc, 10*sim.Minute)
			if r == nil || !r.OK {
				b.Fatalf("epoch %d failed: %+v", i, r)
			}
			last = r
			epoch := int64(0)
			if delta {
				epoch = r.SentBytes
				o.logical += r.LogicalBytes
			} else {
				for _, img := range r.Images {
					epoch += img.SizeBytes()
				}
				o.logical += epoch
			}
			o.sent += epoch
			if i == 0 {
				o.firstEpoch = epoch
			} else {
				o.steadyEpoch += epoch
			}
			bd.k.RunFor(500 * sim.Millisecond)
		}
		o.steadyEpoch /= epochs - 1

		vc.PhysicalNodes()[0].Fail()
		bd.k.RunFor(2 * sim.Second)
		vc.Teardown()
		targets := bd.site.UpNodes(src)[:nodes]
		var rr *core.RestoreResult
		bd.co.RestoreVC(vc, last.Generation, targets, func(r *core.RestoreResult) { rr = r })
		deadline := bd.k.Now() + 30*sim.Minute
		for rr == nil && bd.k.Now() < deadline {
			bd.k.RunFor(sim.Second)
		}
		if rr == nil || !rr.OK {
			b.Fatalf("restore failed: %+v", rr)
		}
		o.restoreStage = rr.StageTime
		return o
	}

	var full, delta runOut
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full = run(false)
		delta = run(true)
	}
	b.StopTimer()

	dedup := float64(delta.logical) / float64(delta.sent)
	sentFraction := float64(delta.steadyEpoch) / float64(full.steadyEpoch)
	restoreMs := float64(delta.restoreStage) / float64(sim.Millisecond)
	b.ReportMetric(float64(delta.steadyEpoch), "delta-bytes/epoch")
	b.ReportMetric(float64(full.steadyEpoch), "full-bytes/epoch")
	b.ReportMetric(dedup, "dedup-ratio")
	b.ReportMetric(restoreMs, "restore-ms")

	// The acceptance gate, enforced in-bench so a regression fails even
	// without the dvcbench trajectory check.
	if delta.steadyEpoch*4 > full.steadyEpoch {
		b.Fatalf("steady-state delta epoch %d bytes > 25%% of full epoch %d bytes", delta.steadyEpoch, full.steadyEpoch)
	}

	if path := os.Getenv("DVC_BENCH_JSON"); path != "" {
		doc := struct {
			Benchmark       string  `json:"benchmark"`
			N               int     `json:"n"`
			FullEpochBytes  int64   `json:"full_epoch_bytes"`
			DeltaEpochBytes int64   `json:"delta_epoch_bytes"`
			FirstEpochBytes int64   `json:"delta_first_epoch_bytes"`
			SentFraction    float64 `json:"sent_fraction"`
			DedupRatio      float64 `json:"dedup_ratio"`
			RestoreStageMs  float64 `json:"restore_stage_ms"`
		}{"BenchmarkDeltaCheckpoint", b.N, full.steadyEpoch, delta.steadyEpoch, delta.firstEpoch, sentFraction, dedup, restoreMs}
		data, err := json.Marshal(doc)
		if err != nil {
			b.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		fmt.Fprintf(f, "%s\n", data)
	}
}
