package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/sim"
)

func init() {
	register("E4", "Checkpoint overhead and the wall-clock jump (§3.2)", runE4)
}

// runE4 reproduces §3.2's timing observations: periodic LSC cycles slow
// the run down, and because "time was not virtualised in any virtual
// machine, the jump in wall time due to the checkpoint caused HPL to
// report a greatly increased execution time" — the application's own
// wall-clock measurement includes every frozen interval, while CPU
// (guest-jiffies) time does not.
func runE4(opts Options) *Result {
	res := &Result{}
	const nodes = 8

	tbl := metrics.NewTable("E4: HPL/PTRANS under periodic save/restore cycles (8 VMs)",
		"workload", "ckpt-interval", "ckpts", "cpu-time", "reported-wall", "wall/cpu", "slowdown-vs-none")

	type outcome struct {
		wall, cpu sim.Time
		ckpts     int
	}
	run := func(seed int64, makeApp func(int) mpi.App, getTimes func(mpi.App) (sim.Time, sim.Time), interval sim.Time) outcome {
		lsc := core.DefaultNTPLSC()
		b := newBed(seed, map[string]int{"alpha": nodes}, lsc, true)
		vc := b.allocate("e4", nodes, guest.WatchdogConfig{})
		vc.LaunchMPI(6000, makeApp)
		var per *core.Periodic
		if interval > 0 {
			per = b.co.StartPeriodic(vc, interval, nil)
		}
		js := b.runJob(vc, 4*sim.Hour)
		if per != nil {
			per.Stop()
		}
		if !js.AllOK() {
			panic(fmt.Sprintf("E4 job failed: %+v", js))
		}
		wall, cpu := getTimes(vc.RankApps()[0])
		out := outcome{wall: wall, cpu: cpu}
		if per != nil {
			out.ckpts = per.SucceededCount()
		}
		return out
	}

	// HPL sized to ~60 s of factorisation (341 kflop/rank at 8 ranks).
	hplApp := func(int) mpi.App { return hpcc.NewHPL(160, 42, 5.7e-6) }
	hplTimes := func(a mpi.App) (sim.Time, sim.Time) {
		h := a.(*hpcc.HPL)
		if !h.Passed {
			panic("E4 HPL verification failed")
		}
		return h.WallTime(), h.CPUTime()
	}
	// PTRANS sized to ~60 s with compute-weighted repetitions.
	ptApp := func(int) mpi.App { return hpcc.NewPTRANS(64, 42, 1200, 3e-5) }
	ptTimes := func(a mpi.App) (sim.Time, sim.Time) {
		p := a.(*hpcc.PTRANS)
		if !p.Passed {
			panic("E4 PTRANS verification failed")
		}
		return p.WallTime(), p.CPUTime()
	}

	intervals := []sim.Time{0, 30 * sim.Second, 15 * sim.Second}
	type key struct {
		name     string
		interval sim.Time
	}
	results := map[key]outcome{}
	for wi, w := range []struct {
		name  string
		app   func(int) mpi.App
		times func(mpi.App) (sim.Time, sim.Time)
	}{
		{"hpl-N160", hplApp, hplTimes},
		{"ptrans-N64", ptApp, ptTimes},
	} {
		for ii, interval := range intervals {
			o := run(opts.Seed+int64(wi*10+ii), w.app, w.times, interval)
			results[key{w.name, interval}] = o
			base := results[key{w.name, 0}]
			label := "none"
			if interval > 0 {
				label = interval.String()
			}
			slow := 100 * (o.wall.Seconds() - base.wall.Seconds()) / base.wall.Seconds()
			tbl.Row(w.name, label, o.ckpts, o.cpu, o.wall,
				fmt.Sprintf("%.2f", o.wall.Seconds()/o.cpu.Seconds()),
				fmt.Sprintf("%.0f%%", slow))
		}
	}
	res.table(tbl, opts.out())

	hplNone := results[key{"hpl-N160", 0}]
	hpl15 := results[key{"hpl-N160", 15 * sim.Second}]
	pt30 := results[key{"ptrans-N64", 30 * sim.Second}]
	wallCPUDiff := hplNone.wall - hplNone.cpu
	if wallCPUDiff < 0 {
		wallCPUDiff = -wallCPUDiff
	}
	// NTP residual error shifts individual host-clock readings by a few
	// ms, so "equal" means equal up to clock error.
	res.check("no checkpoints: wall == cpu", wallCPUDiff < 50*sim.Millisecond,
		"wall %v cpu %v", hplNone.wall, hplNone.cpu)
	res.check("checkpointing inflates reported wall time", hpl15.wall > hplNone.wall && hpl15.ckpts > 0,
		"wall %v after %d ckpts vs %v baseline", hpl15.wall, hpl15.ckpts, hplNone.wall)
	res.check("wall-clock jump: wall >> cpu under checkpoints",
		hpl15.wall.Seconds() > 1.2*hpl15.cpu.Seconds(),
		"wall/cpu = %.2f", hpl15.wall.Seconds()/hpl15.cpu.Seconds())
	res.check("denser checkpoints cost more",
		hpl15.wall > results[key{"hpl-N160", 30 * sim.Second}].wall,
		"15s: %v vs 30s: %v", hpl15.wall, results[key{"hpl-N160", 30 * sim.Second}].wall)
	res.check("ptrans also slowed", pt30.wall > results[key{"ptrans-N64", 0}].wall && pt30.ckpts > 0,
		"wall %v vs %v", pt30.wall, results[key{"ptrans-N64", 0}].wall)
	return res
}
