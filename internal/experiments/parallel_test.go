package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dvc/internal/obs"
)

// These tests enforce the fleet determinism contract end to end: running
// an experiment with any Options.Parallel value must produce bytes
// identical to the serial loop — tables, shape checks, the JSONL event
// trace, and the counter registry. The mechanism under test is the pair
// of structural properties internal/fleet and forEachTrial guarantee:
// kernels never cross goroutines, and results (and child traces) merge
// in trial-index order on the caller's goroutine.

// e2Parallel runs a scaled-down traced E2 at the given pool size and
// returns every byte it externalizes: the printed tables, the shape
// checks, the serialized JSONL trace, and the registry snapshot.
func e2Parallel(t *testing.T, seed int64, parallel int) (tables []byte, checks []Check, trace []byte, registry string) {
	t.Helper()
	tr := obs.NewTracer()
	var tbl bytes.Buffer
	res, err := Run("E2", Options{Seed: seed, Trials: 2, Parallel: parallel, Out: &tbl, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return tbl.Bytes(), res.Checks, buf.Bytes(), tr.Registry().Table().String()
}

// TestParallelMatchesSerial: same seed, Parallel=1 (inline, no
// goroutines) vs Parallel=4 (worker pool) — every external byte must
// match.
func TestParallelMatchesSerial(t *testing.T) {
	const seed = 20070917
	tabS, checksS, traceS, regS := e2Parallel(t, seed, 1)
	tabP, checksP, traceP, regP := e2Parallel(t, seed, 4)

	if !bytes.Equal(tabS, tabP) {
		t.Errorf("experiment tables differ between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", tabS, tabP)
	}
	if len(checksS) != len(checksP) {
		t.Fatalf("check counts differ: serial %d, parallel %d", len(checksS), len(checksP))
	}
	for i := range checksS {
		if checksS[i] != checksP[i] {
			t.Errorf("check %d differs:\n  serial:   %+v\n  parallel: %+v", i, checksS[i], checksP[i])
		}
	}
	if !bytes.Equal(traceS, traceP) {
		// Find the first diverging line for a useful failure message.
		ls, lp := bytes.Split(traceS, []byte("\n")), bytes.Split(traceP, []byte("\n"))
		for i := 0; i < len(ls) && i < len(lp); i++ {
			if !bytes.Equal(ls[i], lp[i]) {
				t.Fatalf("JSONL trace diverges at line %d:\n  serial:   %s\n  parallel: %s", i+1, ls[i], lp[i])
			}
		}
		t.Fatalf("JSONL traces differ in length: serial %d lines, parallel %d lines", len(ls), len(lp))
	}
	if regS != regP {
		t.Errorf("registry snapshots differ:\n--- serial ---\n%s\n--- parallel ---\n%s", regS, regP)
	}
}

// BenchmarkParallelSpeedup measures E2 at trials=8 with a serial pool
// (Parallel=1) against one worker per core, and reports the wall-clock
// speedup. On a single-core runner the speedup is ~1.0 by construction;
// the acceptance target (≥2× on a 4-core runner) is checked by reading
// the reported metric from the CI artifact, not asserted here.
//
// With DVC_BENCH_JSON=<path> the result is also written as a small JSON
// document (the BENCH_fleet.json CI artifact).
//
// Run it alone (it is deliberately heavy):
//
//	go test -run '^$' -bench BenchmarkParallelSpeedup -benchtime 1x ./internal/experiments
func BenchmarkParallelSpeedup(b *testing.B) {
	const seed, trials = 20070917, 8
	workers := runtime.NumCPU()
	run := func(parallel int) time.Duration {
		start := time.Now()
		if _, err := Run("E2", Options{Seed: seed, Trials: trials, Parallel: parallel}); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}

	var serial, parallel time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial += run(1)
		parallel += run(workers)
	}
	b.StopTimer()

	speedup := float64(serial) / float64(parallel)
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(serial.Seconds()/float64(b.N), "serial-s/op")
	b.ReportMetric(parallel.Seconds()/float64(b.N), "parallel-s/op")

	if path := os.Getenv("DVC_BENCH_JSON"); path != "" {
		doc := struct {
			Benchmark string  `json:"benchmark"`
			Exp       string  `json:"exp"`
			Trials    int     `json:"trials"`
			Workers   int     `json:"workers"`
			CPUs      int     `json:"cpus"`
			SerialS   float64 `json:"serial_s"`
			ParallelS float64 `json:"parallel_s"`
			Speedup   float64 `json:"speedup"`
		}{"BenchmarkParallelSpeedup", "E2", trials, workers, runtime.NumCPU(),
			serial.Seconds() / float64(b.N), parallel.Seconds() / float64(b.N), speedup}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Printf("wrote %s (speedup %.2fx with %d workers)\n", path, speedup, workers)
	}
}
