package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/netsim"
	"dvc/internal/obs"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/sim/partition"
	"dvc/internal/storage"
	"dvc/internal/vm"
)

func init() {
	register("PSCALE", "Partitioned substrate: conservative-lookahead engine, one partition per datacenter", runPScaleExp)
}

// The partitioned scale run's fixed schedule: every datacenter's monitor
// pings the next datacenter's on a deterministic period (the
// cross-partition traffic), and every partition runs to the same virtual
// horizon so all pings deliver before any sub-kernel closes.
const (
	pingStart = 1 * sim.Second
	pingEvery = 250 * sim.Millisecond
	pingEnd   = 30 * sim.Second
	pHorizon  = 60 * sim.Second
)

// monAddr is datacenter d's monitor address.
func monAddr(d int) netsim.Addr { return netsim.Addr(fmt.Sprintf("mon-dc%02d", d)) }

// PScaleResult reports one partitioned scale run.
type PScaleResult struct {
	Spec       ScaleSpec
	Nodes      int
	Partitions int // logical partitions (= datacenters)
	Workers    int // concurrency bound actually used
	Lookahead  sim.Time

	// Events is the total fired across all sub-kernels; Pings counts
	// delivered cross-DC monitor pings; NetForwarded counts packets that
	// crossed a partition boundary (summed fabric stats).
	Events       uint64
	Pings        uint64
	NetForwarded uint64
	// Stats is the coordinator's barrier/stall accounting.
	Stats partition.Stats

	// CheckpointOK/JobOK hold across every datacenter's job; SaveSkew is
	// the worst skew any partition observed.
	CheckpointOK bool
	JobOK        bool
	SaveSkew     sim.Time
	SimTime      sim.Time
}

// OK reports whether every partition's checkpoint and job succeeded.
func (r *PScaleResult) OK() bool { return r.CheckpointOK && r.JobOK }

// RunScalePartitioned drives the SCALE workload on the partitioned
// engine: one sub-kernel per datacenter under a conservative-lookahead
// coordinator, every datacenter running the E2-shaped job (allocate an
// 8-VM VC on its own nodes, halo traffic, one checkpoint, run to
// completion) with cross-DC monitor pings as the inter-partition
// traffic. Work therefore scales with the partition count — that is
// what a multicore runner parallelises. workers bounds how many
// sub-kernels run concurrently (0 = one per partition); every trace
// byte, table cell and stat is identical at any workers value — the
// logical partitioning is fixed by the topology and the exchange orders
// messages by (arrival time, partition id, send seq), so the schedule is
// a pure function of (seed, spec). tr may be nil.
func RunScalePartitioned(seed int64, spec ScaleSpec, workers int, tr *obs.Tracer) (*PScaleResult, error) {
	if spec.DCs < 2 {
		return nil, fmt.Errorf("experiments: partitioned scale needs >= 2 datacenters, got %d", spec.DCs)
	}
	vms := spec.VMs
	if vms == 0 {
		vms = 8
	}
	topoSpec := spec.Topo()
	la, err := phys.ZoneLookahead(topoSpec)
	if err != nil {
		return nil, err
	}
	names := make([]string, spec.DCs)
	for d := range names {
		names[d] = fmt.Sprintf("dc%02d", d)
	}
	c := partition.NewCoordinator(partition.Config{Lookahead: la, Workers: workers}, names...)
	nm := partition.NewNetMap(c)
	for d := 0; d < spec.DCs; d++ {
		nm.Register(monAddr(d), phys.ClusterName(d, 0), d)
	}
	children := make([]*obs.Tracer, spec.DCs)
	if tr != nil {
		for d := range children {
			children[d] = tr.Child()
		}
	}

	type partOut struct {
		events    uint64
		pings     uint64
		forwarded uint64
		end       sim.Time
		ckptOK    bool
		jobOK     bool
		skew      sim.Time
		err       error
	}
	outs := make([]partOut, spec.DCs)

	c.Run(func(p *partition.Partition) {
		d := p.ID()
		o := &outs[d]
		// Independent seed per sub-kernel: the partition's whole RNG
		// stream is private, so its schedule cannot depend on any other
		// partition's draw order.
		k := sim.NewKernel(seed + int64(d)*1_000_003)
		site := phys.DefaultSite(k)
		if _, err := phys.BuildTopoZones(site, topoSpec, d); err != nil {
			o.err = err
			return
		}
		site.NTP.Start()
		p.Bind(k)
		nm.Bind(p, site.Fabric) //lint:allow fleetscope NetMap reaches the per-partition fabrics by design; Bind writes only this partition's own slot and Forward closures execute on the destination's goroutine under the exchange protocol
		ctr := children[d]

		self, next := monAddr(d), monAddr((d+1)%spec.DCs)
		site.Fabric.Attach(self, phys.ClusterName(d, 0), func(netsim.Packet) {
			o.pings++
			ctr.Counter(k.Now(), obs.EvSimProbe, string(self), "", "xdc.ping", float64(o.pings))
		})
		for t := pingStart; t <= pingEnd; t += pingEvery {
			t := t
			k.At(t, func() { site.Fabric.Send(netsim.Packet{Src: self, Dst: next, Size: 128}) })
		}

		store := storage.New(k, storage.DefaultConfig())
		mgr := core.NewManager(k, site, store, vm.DefaultXenConfig())
		if ctr != nil {
			mgr.SetTracer(ctr)
			obs.StartKernelProbe(k, ctr, probeInterval)
		}
		co := core.NewCoordinator(mgr, core.DefaultNTPLSC())
		b := &bed{k: k, site: site, store: store, mgr: mgr, co: co}
		vc, err := mgr.Allocate(core.VCSpec{Name: fmt.Sprintf("pscale-%02d", d), Nodes: vms, VMRAM: vmRAM}, nil)
		if err != nil {
			o.err = fmt.Errorf("experiments: pscale allocation on %s failed: %w", spec, err)
			return
		}
		k.RunFor(vm.DefaultXenConfig().BootTime + sim.Second)
		if vc.State() != core.VCReady {
			o.err = fmt.Errorf("experiments: pscale VC not ready on %s", spec)
			return
		}
		if _, err := vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(600, 20*sim.Millisecond, 4096) }); err != nil {
			o.err = err
			return
		}
		k.RunFor(2 * sim.Second)
		ckpt := b.checkpointOnce(vc, 10*sim.Minute)
		js := b.runJob(vc, 4*sim.Hour)
		o.jobOK = js.AllOK()
		if ckpt != nil && ckpt.OK {
			o.ckptOK = core.InspectImages(ckpt.Images) == nil
			o.skew = ckpt.SaveSkew
		}
		// Every partition holds to the common horizon so late pings land
		// on a live kernel; a partition whose job already ran longer
		// simply passes through.
		k.RunUntil(pHorizon)
		o.events = k.Fired()
		o.end = k.Now()
		o.forwarded = site.Fabric.Stats().Forwarded
	})

	if tr != nil {
		tr.Merge(children...)
	}
	res := &PScaleResult{
		Spec:       spec,
		Nodes:      spec.Nodes(),
		Partitions: spec.DCs,
		Workers:    workers,
		Lookahead:  la,
		Stats:      c.Stats(),
	}
	for d := range outs {
		if outs[d].err != nil {
			return nil, outs[d].err
		}
		res.Events += outs[d].events
		res.Pings += outs[d].pings
		res.NetForwarded += outs[d].forwarded
		if outs[d].end > res.SimTime {
			res.SimTime = outs[d].end
		}
	}
	res.CheckpointOK, res.JobOK = true, true
	for d := range outs {
		res.CheckpointOK = res.CheckpointOK && outs[d].ckptOK
		res.JobOK = res.JobOK && outs[d].jobOK
		if outs[d].skew > res.SaveSkew {
			res.SaveSkew = outs[d].skew
		}
	}
	return res, nil
}

// runPScaleExp is the registry wrapper: the 260-node two-DC shape by
// default, plus the 2600-node ten-DC shape with -full. Options.Partitions
// bounds sub-kernel concurrency (0 = one worker per partition); the
// output is identical at any value.
func runPScaleExp(opts Options) *Result {
	res := &Result{}
	shapes := []ScaleSpec{
		{DCs: 2, ClustersPerDC: 5, HostsPerCluster: 26},
	}
	if opts.Full {
		shapes = append(shapes, ScaleSpec{DCs: 10, ClustersPerDC: 10, HostsPerCluster: 26})
	}
	tbl := metrics.NewTable("PSCALE: an 8-VM LSC job per datacenter on the partitioned engine",
		"topology", "nodes", "parts", "lookahead.ms", "events", "xdc.pkts", "barriers", "ckpt", "job")
	for _, sp := range shapes {
		r, err := RunScalePartitioned(opts.Seed, sp, opts.Partitions, opts.Tracer)
		if err != nil {
			res.check(fmt.Sprintf("%s runs", sp), false, "%v", err)
			continue
		}
		tbl.Row(sp.String(), r.Nodes, r.Partitions,
			fmt.Sprintf("%.2f", r.Lookahead.Seconds()*1000), r.Events,
			r.NetForwarded, r.Stats.Barriers, r.CheckpointOK, r.JobOK)
		res.check(fmt.Sprintf("%s save+restore transparent", sp), r.OK(),
			"ckpt=%v job=%v at %d nodes / %d partitions", r.CheckpointOK, r.JobOK, r.Nodes, r.Partitions)
		res.check(fmt.Sprintf("%s cross-partition traffic flows", sp), r.NetForwarded > 0 && r.Pings > 0,
			"forwarded %d packets, delivered %d pings", r.NetForwarded, r.Pings)
	}
	res.table(tbl, opts.out())
	return res
}
