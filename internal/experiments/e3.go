package experiments

import (
	"dvc/internal/metrics"
	"dvc/internal/netsim"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

func init() {
	register("E3", "Consistent network cuts: Scenarios 1-2 + unreliable-protocol control (Fig. 2, §3)", runE3)
}

// runE3 reproduces Figure 2's consistency argument mechanically:
//
//	Scenario 1: a data segment is on the wire at snapshot time and lost;
//	  the (restored) sender retransmits, so nothing is lost.
//	Scenario 2: the data arrived but the ACK is lost at snapshot time;
//	  the sender retransmits, the receiver discards the duplicate and
//	  re-ACKs, so nothing is duplicated.
//	Control: the same cut under an unreliable (UDP-like) protocol loses
//	  the in-flight message permanently — the inconsistent cut.
func runE3(opts Options) *Result {
	res := &Result{}
	tbl := metrics.NewTable("E3: snapshot cuts of the network",
		"scenario", "sent", "delivered", "dup-to-app", "lost", "consistent")

	s1 := runCutScenario(opts.Seed, false)
	tbl.Row("S1: data in flight (TCP)", s1.sent, s1.delivered, s1.dups, s1.lost, s1.consistent())
	s2 := runCutScenario(opts.Seed, true)
	tbl.Row("S2: ACK in flight (TCP)", s2.sent, s2.delivered, s2.dups, s2.lost, s2.consistent())
	ctl := runUnreliableCut(opts.Seed)
	tbl.Row("control: UDP-like", ctl.sent, ctl.delivered, ctl.dups, ctl.lost, ctl.consistent())
	res.table(tbl, opts.out())

	res.check("scenario 1 consistent", s1.consistent(),
		"delivered %d/%d, dups %d", s1.delivered, s1.sent, s1.dups)
	res.check("scenario 2 consistent with duplicate suppressed",
		s2.consistent() && s2.dupSegments > 0,
		"delivered %d/%d, wire dups %d, app dups %d", s2.delivered, s2.sent, s2.dupSegments, s2.dups)
	res.check("unreliable protocol loses data", ctl.lost > 0,
		"lost %d of %d", ctl.lost, ctl.sent)
	return res
}

type cutOutcome struct {
	sent, delivered, dups, lost int
	dupSegments                 int
}

func (c cutOutcome) consistent() bool { return c.lost == 0 && c.dups == 0 }

// runCutScenario plays one message across a coordinated snapshot. With
// cutAck=false the data segment itself is lost at the snapshot (Scenario
// 1); with cutAck=true the data is delivered but the returning ACK is
// lost (Scenario 2).
func runCutScenario(seed int64, cutAck bool) cutOutcome {
	k := sim.NewKernel(seed)
	f := netsim.NewFabric(k)
	f.AddCluster("c", netsim.EthernetGigE())
	sa := tcp.NewStack(k, f, "A", tcp.DefaultConfig())
	sb := tcp.NewStack(k, f, "B", tcp.DefaultConfig())
	pa := f.Attach("A", "c", sa.Deliver)
	pb := f.Attach("B", "c", sb.Deliver)
	var cb *tcp.Conn
	sb.Listen(5000, func(c *tcp.Conn) { cb = c })
	ca := sa.Connect("B", 5000)
	k.RunFor(sim.Second)

	// Cut the chosen direction while the message is in flight.
	if cutAck {
		f.DropRule = func(pkt netsim.Packet) bool {
			seg, ok := pkt.Payload.(*tcp.Segment)
			return ok && pkt.Src == netsim.Addr("B") && seg.Data.Len() == 0
		}
	} else {
		f.DropRule = func(pkt netsim.Packet) bool {
			seg, ok := pkt.Payload.(*tcp.Segment)
			return ok && seg.Data.Len() > 0
		}
	}
	msg := []byte("the message")
	ca.Write(msg)
	k.RunFor(5 * sim.Millisecond)

	// Coordinated snapshot: freeze both, capture, destroy, restore.
	sa.Freeze()
	sb.Freeze()
	pa.SetUp(false)
	pb.SetUp(false)
	snapA, snapB := sa.Snapshot(), sb.Snapshot()
	pa.Detach()
	pb.Detach()
	f.DropRule = nil
	k.RunFor(10 * sim.Second)

	sa2 := tcp.RestoreStack(k, f, snapA)
	sb2 := tcp.RestoreStack(k, f, snapB)
	f.Attach("A", "c", sa2.Deliver)
	f.Attach("B", "c", sb2.Deliver)
	sa2.Thaw()
	sb2.Thaw()
	k.RunFor(30 * sim.Second)

	out := cutOutcome{sent: 1}
	_ = cb // the pre-snapshot endpoint died with its node
	ca2 := sa2.Conns()[0]
	cb2 := sb2.Conns()[0]
	got := cb2.Read(cb2.Readable())
	if string(got) == string(msg) {
		out.delivered = 1
	} else if len(got) > len(msg) {
		out.delivered = 1
		out.dups = 1
	} else if len(got) == 0 {
		out.lost = 1
	}
	out.dupSegments = int(cb2.DupSegments)
	if ca2.SendBacklog() != 0 {
		out.lost = 1 // sender never got an ACK: delivery not confirmed
	}
	return out
}

// rawMsg is the unreliable control protocol: fire-and-forget datagrams
// with sequence numbers, no retransmission — an OS-bypass fabric like raw
// InfiniBand verbs would behave this way under a VM snapshot.
type rawEndpoint struct {
	got  map[int]bool
	port *netsim.Port
}

func runUnreliableCut(seed int64) cutOutcome {
	k := sim.NewKernel(seed)
	f := netsim.NewFabric(k)
	f.AddCluster("c", netsim.EthernetGigE())
	recv := &rawEndpoint{got: make(map[int]bool)}
	f.Attach("A", "c", nil)
	recv.port = f.Attach("B", "c", func(pkt netsim.Packet) {
		recv.got[pkt.Payload.(int)] = true
	})

	const total = 10
	out := cutOutcome{sent: total}
	// Send a stream; freeze the receiver mid-stream (snapshot), losing
	// whatever is on the wire; then resume and send the rest.
	for i := 0; i < 5; i++ {
		f.Send(netsim.Packet{Src: "A", Dst: "B", Size: 1024, Payload: i})
	}
	k.RunFor(20 * sim.Microsecond) // messages 0.. are still in flight
	recv.port.SetUp(false)         // snapshot instant
	k.RunFor(sim.Second)
	recv.port.SetUp(true) // restored
	for i := 5; i < total; i++ {
		f.Send(netsim.Packet{Src: "A", Dst: "B", Size: 1024, Payload: i})
	}
	k.RunFor(sim.Second)

	for i := 0; i < total; i++ {
		if recv.got[i] {
			out.delivered++
		} else {
			out.lost++
		}
	}
	return out
}
