package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/mpi"
	"dvc/internal/sim"
)

// BenchmarkE2EventRate measures end-to-end kernel event throughput on the
// E2-shaped workload (8-node LSC bed, halo-exchange MPI job, one
// coordinated checkpoint): wall-clock nanoseconds per kernel event
// dispatched, with the full stack — TCP, netsim, guest scheduling, VM
// lifecycle, storage transfers — generating the events. This is the
// number the slab kernel exists to improve; BenchmarkKernelChurn isolates
// the event path, this keeps it in context.
//
// With DVC_BENCH_JSON=<path> the result is appended to the BENCH_kernel
// JSON artifact. Run alone (it is deliberately heavy):
//
//	go test -run '^$' -bench BenchmarkE2EventRate -benchtime 1x ./internal/experiments
func BenchmarkE2EventRate(b *testing.B) {
	const seed, nodes = 20070917, 8
	var totalEvents uint64
	var totalWall time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd := newBed(seed, map[string]int{"alpha": nodes}, core.DefaultNTPLSC(), true)
		vc := bd.allocate("bench", nodes, guest.WatchdogConfig{})
		vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(600, 20*sim.Millisecond, 4096) })
		start := time.Now()
		bd.k.RunFor(2 * sim.Second)
		res := bd.checkpointOnce(vc, 10*sim.Minute)
		js := bd.runJob(vc, 4*sim.Hour)
		totalWall += time.Since(start)
		totalEvents += bd.k.Fired()
		if res == nil || !res.OK {
			b.Fatalf("checkpoint failed: %+v", res)
		}
		if !js.AllOK() {
			b.Fatalf("job failed: %+v", js)
		}
	}
	b.StopTimer()

	nsPerEvent := float64(totalWall.Nanoseconds()) / float64(totalEvents)
	eventsPerSec := float64(totalEvents) / totalWall.Seconds()
	b.ReportMetric(nsPerEvent, "ns/event")
	b.ReportMetric(eventsPerSec/1e6, "Mevents/s")

	if path := os.Getenv("DVC_BENCH_JSON"); path != "" {
		doc := struct {
			Benchmark   string  `json:"benchmark"`
			N           int     `json:"n"`
			Events      uint64  `json:"events"`
			NsPerEvent  float64 `json:"ns_per_event"`
			EventsPerS  float64 `json:"events_per_s"`
			WallSeconds float64 `json:"wall_s"`
		}{"BenchmarkE2EventRate", b.N, totalEvents, nsPerEvent, eventsPerSec, totalWall.Seconds()}
		data, err := json.Marshal(doc)
		if err != nil {
			b.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		fmt.Fprintf(f, "%s\n", data)
	}
}
