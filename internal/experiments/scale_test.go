package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dvc/internal/core"
	"dvc/internal/obs"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/storage"
	"dvc/internal/vm"
)

// scaleShapes are the benchmark topologies: the paper's 26 nodes, then
// 10x and 100x. The workload is pinned at 8 VMs throughout, so any
// ns/event growth is pure substrate overhead.
var scaleShapes = []ScaleSpec{
	{DCs: 1, ClustersPerDC: 1, HostsPerCluster: 26},
	{DCs: 1, ClustersPerDC: 10, HostsPerCluster: 26},
	{DCs: 10, ClustersPerDC: 10, HostsPerCluster: 26},
}

// scaleTraceJSONL runs one traced scale run and returns the exact JSONL
// bytes its trace serializes to.
func scaleTraceJSONL(t *testing.T, seed int64, spec ScaleSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewTracerWithSink(obs.NewJSONLSink(&buf, 0))
	res, err := RunScale(seed, spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("scale run failed: ckpt=%v job=%v", res.CheckpointOK, res.JobOK)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestScaleReplayDigest is the generated-topology determinism property
// end-to-end: same -dc/-cluster/-host flags and seed must reproduce the
// E2-shaped run byte for byte — inventory, node listing, and the full
// JSONL event trace.
func TestScaleReplayDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("traced 260-node replay pair")
	}
	spec := ScaleSpec{DCs: 2, ClustersPerDC: 5, HostsPerCluster: 26}
	a := scaleTraceJSONL(t, 20070917, spec)
	b := scaleTraceJSONL(t, 20070917, spec)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("traced scale replay diverged: %d vs %d bytes", len(a), len(b))
	}
}

// TestScale2600Smoke drives the full 2600-node topology end-to-end. It
// runs under -race in CI, where it doubles as the data-race check over
// the interned SoA node state.
func TestScale2600Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("2600-node run")
	}
	res, err := RunScale(7, ScaleSpec{DCs: 10, ClustersPerDC: 10, HostsPerCluster: 26}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 2600 || res.Clusters != 100 {
		t.Fatalf("generated %d nodes in %d clusters, want 2600 in 100", res.Nodes, res.Clusters)
	}
	if !res.OK() {
		t.Fatalf("2600-node run failed: ckpt=%v job=%v", res.CheckpointOK, res.JobOK)
	}
}

// substrateBytesPerNode measures the resident heap cost of building the
// substrate alone — site, topology, clocks, hypervisors, fabric ports —
// per generated node.
func substrateBytesPerNode(spec ScaleSpec) float64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	k := sim.NewKernel(1)
	site := phys.DefaultSite(k)
	if _, err := phys.BuildTopo(site, spec.Topo()); err != nil {
		panic(err)
	}
	store := storage.New(k, storage.DefaultConfig())
	mgr := core.NewManager(k, site, store, vm.DefaultXenConfig())
	runtime.GC()
	runtime.ReadMemStats(&after)
	bytesUsed := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	runtime.KeepAlive(mgr)
	return bytesUsed / float64(spec.Nodes())
}

// BenchmarkScale is the E2-shaped workload on the generated 26/260/2600
// node topologies: wall-clock ns per kernel event (must stay flat-ish as
// the substrate grows 100x) and resident bytes per node. The 2x flatness
// gate runs inside the benchmark, so the CI scale-bench step fails if
// idle substrate leaks into the event path; dvcbench gates bytes_per_node
// across commits.
//
// With DVC_BENCH_JSON=<path> each shape appends one record to the
// BENCH_scale artifact:
//
//	go test -run '^$' -bench BenchmarkScale -benchtime 1x ./internal/experiments
func BenchmarkScale(b *testing.B) {
	nsPerEvent := make(map[int]float64)
	for _, spec := range scaleShapes {
		spec := spec
		b.Run(fmt.Sprintf("n%d", spec.Nodes()), func(b *testing.B) {
			bytesPerNode := substrateBytesPerNode(spec)
			var totalEvents uint64
			var totalWall time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				res, err := RunScale(20070917, spec, nil)
				totalWall += time.Since(start)
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatalf("scale run failed: %+v", res)
				}
				totalEvents += res.Events
			}
			b.StopTimer()
			ns := float64(totalWall.Nanoseconds()) / float64(totalEvents)
			nsPerEvent[spec.Nodes()] = ns
			b.ReportMetric(ns, "ns/event")
			b.ReportMetric(bytesPerNode, "bytes/node")

			if path := os.Getenv("DVC_BENCH_JSON"); path != "" {
				doc := struct {
					Benchmark    string  `json:"benchmark"`
					N            int     `json:"n"`
					Events       uint64  `json:"events"`
					NsPerEvent   float64 `json:"ns_per_event"`
					BytesPerNode float64 `json:"bytes_per_node"`
					WallSeconds  float64 `json:"wall_s"`
				}{fmt.Sprintf("BenchmarkScale/n%d", spec.Nodes()), spec.Nodes(), totalEvents, ns, bytesPerNode, totalWall.Seconds()}
				data, err := json.Marshal(doc)
				if err != nil {
					b.Fatal(err)
				}
				f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					b.Fatal(err)
				}
				fmt.Fprintf(f, "%s\n", data)
				f.Close()
			}
		})
	}
	// The acceptance gate: a 100x bigger idle substrate may not slow the
	// fixed-size workload's event dispatch more than 2x.
	if base, big := nsPerEvent[26], nsPerEvent[2600]; base > 0 && big > 2*base {
		b.Fatalf("ns/event not flat: %.0f at 26 nodes vs %.0f at 2600 (>2x)", base, big)
	}
}
