package experiments

import (
	"dvc/internal/clock"
	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/mpi"
	"dvc/internal/netsim"
	"dvc/internal/obs"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/sim/partition"
	"dvc/internal/storage"
	"dvc/internal/tcp"
	"dvc/internal/vm"
)

// Experiment-wide hardware constants (documented in EXPERIMENTS.md).
const (
	vmRAM      = 256 << 20 // 2007-era HPC guest size
	guestFlops = 10.0      // GFlops per node
)

// bed is the common experiment test environment: one or more Ethernet
// clusters, NTP-disciplined clocks, DVC with an LSC coordinator.
type bed struct {
	k     *sim.Kernel
	site  *phys.Site
	store *storage.Store
	mgr   *core.Manager
	co    *core.Coordinator
}

// bedOptions customises makeBed beyond the common defaults.
type bedOptions struct {
	clusters map[string]int
	lsc      core.LSCConfig
	ntp      bool                // start the NTP daemon
	ntpCfg   *clock.NTPConfig    // nil = LAN defaults
	tcpCfg   *tcp.Config         // nil = default transport
	profile  *netsim.LinkProfile // nil = gigabit Ethernet
	tracer   *obs.Tracer         // nil = tracing off
	// partitions > 0 runs the bed on the partitioned engine. A bed is a
	// single zone — one logical partition — so the kernel self-gates
	// through partition.Single, which provably preserves the serial
	// schedule; the option exists to exercise the gated engine end to
	// end (Options.Partitions plumbs through here).
	partitions int
}

// probeInterval is the kernel probe's sampling period on traced beds.
const probeInterval = 500 * sim.Millisecond

// makeBed builds the environment. Clusters are created in a fixed name
// order for determinism.
func makeBed(seed int64, o bedOptions) *bed {
	k := sim.NewKernel(seed)
	if o.partitions > 0 {
		// One-zone bed on the partitioned engine: self-gate with the leaf
		// link latency as the (irrelevant to the schedule) lookahead.
		partition.Single(k, netsim.EthernetGigE().Latency)
	}
	ntpCfg := clock.DefaultNTPConfig()
	if o.ntpCfg != nil {
		ntpCfg = *o.ntpCfg
	}
	site := phys.NewSite(k, clock.DefaultConfig(), ntpCfg)
	profile := netsim.EthernetGigE()
	if o.profile != nil {
		profile = *o.profile
	}
	for _, name := range []string{"alpha", "beta", "gamma", "delta"} {
		if n, ok := o.clusters[name]; ok {
			site.AddCluster(name, n, phys.DefaultSpec(), profile)
		}
	}
	if o.ntp {
		site.NTP.Start()
	}
	store := storage.New(k, storage.DefaultConfig())
	mgr := core.NewManager(k, site, store, vm.DefaultXenConfig())
	if o.tcpCfg != nil {
		mgr.SetTCPConfig(*o.tcpCfg)
	}
	if o.tracer != nil {
		// Attach tracing to every layer and sample the kernel. The probe
		// schedules ordinary events, so traced and untraced runs have
		// different schedules — but any two traced runs are identical.
		mgr.SetTracer(o.tracer)
		obs.StartKernelProbe(k, o.tracer, probeInterval)
	}
	return &bed{k: k, site: site, store: store, mgr: mgr, co: core.NewCoordinator(mgr, o.lsc)}
}

// newBed builds the common environment: named Ethernet clusters, default
// transport, LAN NTP.
func newBed(seed int64, clusters map[string]int, lsc core.LSCConfig, ntp bool) *bed {
	return makeBed(seed, bedOptions{clusters: clusters, lsc: lsc, ntp: ntp})
}

// coreNTP is shorthand for the default NTP coordinator configuration.
func coreNTP() core.LSCConfig { return core.DefaultNTPLSC() }

// netsimEth is shorthand for the standard cluster fabric profile.
func netsimEth() netsim.LinkProfile { return netsim.EthernetGigE() }

// newWANBed builds a two-datacenter bed joined by the WAN profile
// (2.5 ms, 100 MB/s): one cluster of hostsPerDC gigabit hosts per DC,
// generated through the standard topology builder so cluster names are
// the canonical dc00-c00 / dc01-c00.
func newWANBed(seed int64, hostsPerDC int, lsc core.LSCConfig) *bed {
	k := sim.NewKernel(seed)
	site := phys.DefaultSite(k)
	if _, err := phys.BuildTopo(site, phys.TopoSpec{DCs: 2, ClustersPerDC: 1, HostsPerCluster: hostsPerDC}); err != nil {
		panic(err)
	}
	site.NTP.Start()
	store := storage.New(k, storage.DefaultConfig())
	mgr := core.NewManager(k, site, store, vm.DefaultXenConfig())
	return &bed{k: k, site: site, store: store, mgr: mgr, co: core.NewCoordinator(mgr, lsc)}
}

// newBedProfile builds a single-cluster bed with a custom link profile.
func newBedProfile(seed int64, nodes int, lsc core.LSCConfig, profile netsim.LinkProfile) *bed {
	k := sim.NewKernel(seed)
	site := phys.DefaultSite(k)
	site.AddCluster("alpha", nodes, phys.DefaultSpec(), profile)
	site.NTP.Start()
	store := storage.New(k, storage.DefaultConfig())
	mgr := core.NewManager(k, site, store, vm.DefaultXenConfig())
	return &bed{k: k, site: site, store: store, mgr: mgr, co: core.NewCoordinator(mgr, lsc)}
}

// allocate boots a VC and waits for it.
func (b *bed) allocate(name string, nodes int, wd guest.WatchdogConfig) *core.VirtualCluster {
	vc, err := b.mgr.Allocate(core.VCSpec{Name: name, Nodes: nodes, VMRAM: vmRAM, Watchdog: wd}, nil)
	if err != nil {
		panic(err)
	}
	b.k.RunFor(vm.DefaultXenConfig().BootTime + sim.Second)
	if vc.State() != core.VCReady {
		panic("VC did not become ready")
	}
	return vc
}

// runJob drives until the VC's job is done (or limit). The wait is
// event-driven: every guest process exit halts the kernel, so the loop
// re-checks its predicate only when something actually finished instead
// of waking every simulated second. Stopping at the exact completion
// instant (rather than the next poll boundary) also means the kernel
// fires no post-completion timer/NTP events, which is most of the
// events-fired reduction EXPERIMENTS.md reports.
func (b *bed) runJob(vc *core.VirtualCluster, limit sim.Time) core.JobStatus {
	deadline := b.k.Now() + limit
	defer notifyExits(vc, nil)
	for {
		js := vc.JobStatus()
		if js.Done() && vc.State() == core.VCReady {
			return js
		}
		if b.k.Now() >= deadline {
			return vc.JobStatus()
		}
		// Re-arm each pass: a restore mid-wait replaces the guest OSes,
		// and arming is idempotent on the ones already hooked.
		notifyExits(vc, b.k.Halt)
		b.k.RunUntil(deadline)
	}
}

// notifyExits installs (or clears, fn == nil) an exit-notification hook
// on every live guest OS of the VC.
func notifyExits(vc *core.VirtualCluster, fn func()) {
	for _, os := range vc.OSes() {
		if os != nil {
			os.SetExitNotify(fn)
		}
	}
}

// checkpointOnce issues one checkpoint and runs until it reports. The
// completion callback halts the kernel, so the wait stops at the exact
// report instant instead of polling on a one-second period.
func (b *bed) checkpointOnce(vc *core.VirtualCluster, limit sim.Time) *core.CheckpointResult {
	var res *core.CheckpointResult
	if err := b.co.Checkpoint(vc, func(r *core.CheckpointResult) { res = r; b.k.Halt() }); err != nil {
		panic(err)
	}
	deadline := b.k.Now() + limit
	for res == nil && b.k.Now() < deadline {
		b.k.RunUntil(deadline)
	}
	return res
}

// lscTrial runs one full LSC trial: boot n VMs, run a halo workload,
// checkpoint ~2s in, then run the job to completion. It reports whether
// save AND restore were transparent (checkpoint OK, images consistent,
// job finished successfully) along with the measured skew.
type lscTrialResult struct {
	ok       bool
	reason   string
	skew     sim.Time
	downtime sim.Time
	attempts int
}

func lscTrial(seed int64, nodes int, lsc core.LSCConfig, ntp bool) lscTrialResult {
	return lscTrialT(seed, nodes, lsc, ntp, nil, 0)
}

// lscTrialT is lscTrial with an optional tracer (one tracer can span many
// trials; each trial restarts virtual time and the exporters handle it)
// and an engine selector (partitions, see Options.Partitions).
func lscTrialT(seed int64, nodes int, lsc core.LSCConfig, ntp bool, tr *obs.Tracer, partitions int) lscTrialResult {
	b := makeBed(seed, bedOptions{clusters: map[string]int{"alpha": nodes}, lsc: lsc, ntp: ntp, tracer: tr, partitions: partitions})
	vc := b.allocate("t", nodes, guest.WatchdogConfig{})
	// Enough halo rounds to keep traffic flowing through the longest
	// plausible save window (~30 s of 20 ms rounds).
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(1500, 20*sim.Millisecond, 4096) })
	b.k.RunFor(2 * sim.Second)
	res := b.checkpointOnce(vc, 10*sim.Minute)
	out := lscTrialResult{}
	if res == nil {
		out.reason = "checkpoint never completed"
		return out
	}
	out.skew = res.SaveSkew
	out.downtime = res.Downtime
	out.attempts = res.Attempts
	if !res.OK {
		out.reason = res.Reason
		return out
	}
	if err := core.InspectImages(res.Images); err != nil {
		out.reason = err.Error()
		return out
	}
	js := b.runJob(vc, 2*sim.Hour)
	if !js.AllOK() {
		out.reason = "job failed after restore"
		return out
	}
	for _, app := range vc.RankApps() {
		h, ok := app.(*hpcc.Halo)
		if !ok || !h.Finished {
			out.reason = "rank did not finish"
			return out
		}
	}
	out.ok = true
	return out
}

// pct returns 100*a/b guarded against b==0.
func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
