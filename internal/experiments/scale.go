package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/hpcc"
	"dvc/internal/metrics"
	"dvc/internal/mpi"
	"dvc/internal/obs"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/storage"
	"dvc/internal/vm"
)

func init() {
	register("SCALE", "Substrate scale: E2-shaped workload on generated multi-DC topologies", runScaleExp)
}

// ScaleSpec sizes one scale run: a generated topology (phys.BuildTopo)
// plus the width of the E2-shaped job placed on it.
type ScaleSpec struct {
	DCs             int
	ClustersPerDC   int
	HostsPerCluster int
	// VMs is the virtual-cluster width (0 = 8, the E2 bench shape). The
	// job is deliberately fixed-size while the substrate grows: flat
	// ns/event across ScaleSpecs is the evidence that idle substrate is
	// (nearly) free.
	VMs int
}

// Nodes is the generated node count.
func (s ScaleSpec) Nodes() int { return s.DCs * s.ClustersPerDC * s.HostsPerCluster }

// Topo is the phys topology portion of the spec.
func (s ScaleSpec) Topo() phys.TopoSpec {
	return phys.TopoSpec{DCs: s.DCs, ClustersPerDC: s.ClustersPerDC, HostsPerCluster: s.HostsPerCluster}
}

func (s ScaleSpec) String() string {
	return fmt.Sprintf("%dx%dx%d", s.DCs, s.ClustersPerDC, s.HostsPerCluster)
}

// ScaleResult reports one scale run.
type ScaleResult struct {
	Spec      ScaleSpec
	Nodes     int
	Clusters  int
	VMs       int
	Inventory string
	// Events is the total kernel events fired by the run — the
	// denominator for wall-clock ns/event (the caller times the run;
	// simulation code never reads the wall clock).
	Events       uint64
	CheckpointOK bool
	JobOK        bool
	SaveSkew     sim.Time
	SimTime      sim.Time
}

// OK reports whether the checkpoint and the job both succeeded.
func (r *ScaleResult) OK() bool { return r.CheckpointOK && r.JobOK }

// RunScale generates the topology and drives the E2-shaped workload over
// it end-to-end: boot a fixed-width VC, run a halo-exchange MPI job,
// checkpoint once mid-run, restore-verify implicitly by running the job
// to completion. Same seed + same spec is byte-identical (trace it to
// prove it); tr may be nil.
func RunScale(seed int64, spec ScaleSpec, tr *obs.Tracer) (*ScaleResult, error) {
	vms := spec.VMs
	if vms == 0 {
		vms = 8
	}
	k := sim.NewKernel(seed)
	site := phys.DefaultSite(k)
	topo, err := phys.BuildTopo(site, spec.Topo())
	if err != nil {
		return nil, err
	}
	site.NTP.Start()
	store := storage.New(k, storage.DefaultConfig())
	mgr := core.NewManager(k, site, store, vm.DefaultXenConfig())
	if tr != nil {
		mgr.SetTracer(tr)
		obs.StartKernelProbe(k, tr, probeInterval)
	}
	co := core.NewCoordinator(mgr, core.DefaultNTPLSC())
	b := &bed{k: k, site: site, store: store, mgr: mgr, co: co}

	vc, err := mgr.Allocate(core.VCSpec{Name: "scale", Nodes: vms, VMRAM: vmRAM}, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: scale allocation on %s failed: %w", spec, err)
	}
	k.RunFor(vm.DefaultXenConfig().BootTime + sim.Second)
	if vc.State() != core.VCReady {
		return nil, fmt.Errorf("experiments: scale VC not ready on %s", spec)
	}
	if _, err := vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(600, 20*sim.Millisecond, 4096) }); err != nil {
		return nil, err
	}
	k.RunFor(2 * sim.Second)
	ckpt := b.checkpointOnce(vc, 10*sim.Minute)
	js := b.runJob(vc, 4*sim.Hour)

	res := &ScaleResult{
		Spec:      spec,
		Nodes:     spec.Nodes(),
		Clusters:  len(topo.Clusters),
		VMs:       vms,
		Inventory: topo.Inventory(),
		Events:    k.Fired(),
		JobOK:     js.AllOK(),
		SimTime:   k.Now(),
	}
	if ckpt != nil && ckpt.OK {
		res.CheckpointOK = core.InspectImages(ckpt.Images) == nil
		res.SaveSkew = ckpt.SaveSkew
	}
	return res, nil
}

// runScaleExp is the registry wrapper: the 26- and 260-node shapes by
// default, plus the 2600-node (10 DC x 10 cluster x 26 host) shape with
// -full. The job stays 8 wide throughout; the checks assert the substrate
// scales without disturbing the workload.
func runScaleExp(opts Options) *Result {
	res := &Result{}
	shapes := []ScaleSpec{
		{DCs: 1, ClustersPerDC: 1, HostsPerCluster: 26},
		{DCs: 1, ClustersPerDC: 10, HostsPerCluster: 26},
	}
	if opts.Full {
		shapes = append(shapes, ScaleSpec{DCs: 10, ClustersPerDC: 10, HostsPerCluster: 26})
	}
	tbl := metrics.NewTable("SCALE: fixed 8-VM LSC job on growing substrate",
		"topology", "nodes", "clusters", "events", "skew.ms", "ckpt", "job")
	for _, sp := range shapes {
		r, err := RunScale(opts.Seed, sp, opts.Tracer)
		if err != nil {
			res.check(fmt.Sprintf("%s runs", sp), false, "%v", err)
			continue
		}
		tbl.Row(sp.String(), r.Nodes, r.Clusters, r.Events,
			fmt.Sprintf("%.2f", r.SaveSkew.Seconds()*1000), r.CheckpointOK, r.JobOK)
		res.check(fmt.Sprintf("%s save+restore transparent", sp), r.OK(),
			"ckpt=%v job=%v at %d nodes", r.CheckpointOK, r.JobOK, r.Nodes)
	}
	res.table(tbl, opts.out())
	return res
}
