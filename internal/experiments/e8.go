package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/metrics"
	"dvc/internal/obs"
	"dvc/internal/phys"
	"dvc/internal/rm"
	"dvc/internal/sim"
	"dvc/internal/storage"
	"dvc/internal/vm"
	"dvc/internal/workload"
)

func init() {
	register("E8", "Fault-tolerant throughput: RM with DVC+LSC vs physical requeue (§1)", runE8)
}

// runE8 reproduces §1's reliability claims: with DVC, the resource
// manager keeps scheduling through node faults, and checkpointed jobs
// lose only the work since their last checkpoint; without it a fault
// costs the whole run.
func runE8(opts Options) *Result {
	res := &Result{}
	const nodes = 16
	jobCount := 12
	if opts.Full {
		jobCount = 40
	}

	type outcome struct {
		stats    rm.Stats
		crashes  int
		makespan sim.Time
	}
	run := func(backend rm.Backend, interval sim.Time, seed int64) outcome {
		k := sim.NewKernel(seed)
		site := phys.DefaultSite(k)
		site.AddCluster("alpha", nodes, phys.DefaultSpec(), netsimEth())
		site.NTP.Start()
		var mgr *core.Manager
		var coord *core.Coordinator
		if backend == rm.DVC {
			store := storage.New(k, storage.DefaultConfig())
			mgr = core.NewManager(k, site, store, vm.DefaultXenConfig())
			lsc := core.DefaultNTPLSC()
			lsc.ContinueAfterSave = true
			coord = core.NewCoordinator(mgr, lsc)
		}
		cfg := rm.DefaultConfig(backend)
		cfg.CheckpointInterval = interval
		r := rm.New(k, site, mgr, coord, cfg)
		r.Start()

		trace := workload.Generate(k.Rand(), workload.MixConfig{
			Count:       jobCount,
			ArrivalMean: 45 * sim.Second,
			Widths:      []int{2, 4, 8},
			WorkMin:     4 * sim.Minute,
			WorkMax:     12 * sim.Minute,
		})
		r.SubmitTrace(trace)

		// Node faults: MTBF tuned for a handful of crashes over the
		// ~30-minute makespan (16 nodes x 30 min / 90 min ≈ 5 expected);
		// crashed nodes are repaired.
		inj := phys.NewInjector(k, phys.InjectorConfig{
			MTBF:       90 * sim.Minute,
			RepairTime: 5 * sim.Minute,
		})
		inj.Start(site.Nodes())

		deadline := 24 * sim.Hour
		for k.Now() < deadline && !r.AllDone() {
			k.RunFor(30 * sim.Second)
		}
		inj.Stop()
		return outcome{stats: r.Stats(), crashes: inj.Crashes(), makespan: r.Stats().Makespan}
	}

	tbl := metrics.NewTable(fmt.Sprintf("E8: %d-job mix on %d nodes with random faults", jobCount, nodes),
		"policy", "completed", "failed", "crashes", "makespan", "wasted node-time")
	// The three policies are independent simulations over the same seed;
	// fan them across the fleet pool and render rows in policy order.
	policies := []struct {
		label    string
		backend  rm.Backend
		interval sim.Time
	}{
		{"physical + requeue", rm.Physical, 0},
		{"dvc, no checkpoints", rm.DVC, 0},
		{"dvc + LSC every 2m", rm.DVC, 2 * sim.Minute},
	}
	outs := forEachTrial(opts, len(policies), func(i int, _ *obs.Tracer) outcome {
		return run(policies[i].backend, policies[i].interval, opts.Seed)
	})
	for i, o := range outs {
		tbl.Row(policies[i].label, o.stats.Completed, o.stats.Failed,
			o.crashes, o.makespan, o.stats.TotalWasted)
	}
	physOut, dvcCk := outs[0], outs[2]
	res.table(tbl, opts.out())

	res.check("all jobs complete under every policy",
		physOut.stats.Completed == jobCount && dvcCk.stats.Completed == jobCount,
		"phys %d, dvc+ckpt %d of %d", physOut.stats.Completed, dvcCk.stats.Completed, jobCount)
	res.check("faults actually happened", physOut.crashes > 0 && dvcCk.crashes > 0,
		"phys run saw %d, dvc run saw %d", physOut.crashes, dvcCk.crashes)
	res.check("DVC+LSC wastes less work than physical requeue",
		dvcCk.stats.TotalWasted < physOut.stats.TotalWasted,
		"dvc %v vs physical %v", dvcCk.stats.TotalWasted, physOut.stats.TotalWasted)
	return res
}
