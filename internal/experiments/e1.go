package experiments

import (
	"fmt"

	"dvc/internal/core"
	"dvc/internal/metrics"
	"dvc/internal/obs"
	"dvc/internal/tcp"
)

func init() {
	register("E1", "Naive LSC: checkpoint failure rate vs node count (§3.1)", runE1)
}

// runE1 reproduces the paper's naive-coordinator evaluation: "did not
// scale beyond 8 nodes, with 10 nodes failing 50% of the time and 12
// nodes failing 90% of the time."
func runE1(opts Options) *Result {
	res := &Result{}
	trials := opts.Trials
	if trials == 0 {
		trials = 10
	}
	if opts.Full {
		trials = 40
	}
	lsc := core.DefaultNaiveLSC()
	budget := tcp.DefaultConfig().RetryBudget(tcp.DefaultConfig().InitialRTO)

	tbl := metrics.NewTable("E1: naive LSC failure rate (TCP retry budget "+budget.String()+")",
		"nodes", "trials", "failures", "fail%", "skew.mean", "skew.max")
	failPct := map[int]float64{}
	sizes := []int{2, 4, 6, 8, 10, 12}
	// One flat (size, trial) fleet: every trial is an independent kernel,
	// so the whole sweep fans across the pool; aggregation below walks the
	// results in the exact order of the old nested serial loop.
	results := forEachTrial(opts, len(sizes)*trials, func(i int, _ *obs.Tracer) lscTrialResult {
		n, trial := sizes[i/trials], i%trials
		return lscTrial(opts.Seed+int64(1000*n+trial), n, lsc, false)
	})
	for si, n := range sizes {
		failures := 0
		var skew metrics.Sample
		for _, r := range results[si*trials : (si+1)*trials] {
			if !r.ok {
				failures++
			}
			skew.AddTime(r.skew)
		}
		failPct[n] = pct(failures, trials)
		tbl.Row(n, trials, failures, failPct[n],
			fmtSeconds(skew.Mean()), fmtSeconds(skew.Max()))
	}
	res.table(tbl, opts.out())

	res.check("reliable through 8 nodes", failPct[4] <= 20 && failPct[8] <= 25,
		"fail%%: 4->%.0f 8->%.0f", failPct[4], failPct[8])
	res.check("~half fail at 10 nodes", failPct[10] >= 20 && failPct[10] <= 85,
		"fail%% at 10 = %.0f (paper: 50)", failPct[10])
	res.check("most fail at 12 nodes", failPct[12] >= 60,
		"fail%% at 12 = %.0f (paper: 90)", failPct[12])
	res.check("failure rate grows with node count",
		failPct[12] >= failPct[10] && failPct[10] >= failPct[8],
		"8->%.0f 10->%.0f 12->%.0f", failPct[8], failPct[10], failPct[12])
	return res
}

// fmtSeconds renders a seconds quantity with a sensible unit.
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 0.001:
		return fmt.Sprintf("%.0fus", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1000)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
