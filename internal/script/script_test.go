package script

import (
	"bytes"
	"strings"
	"testing"
)

func run(t *testing.T, seed int64, src string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	in := New(seed, &out)
	err := in.Run(strings.NewReader(src))
	return out.String(), err
}

func TestCheckpointScenarioScript(t *testing.T) {
	out, err := run(t, 1, `
# quickstart scenario
cluster alpha 4
start
alloc job1 4
run job1 hpl 128 2e-5
advance 2s
checkpoint job1
wait job1 2h
assert-ok job1
`)
	if err != nil {
		t.Fatalf("script failed: %v\n%s", err, out)
	}
	for _, want := range []string{"cluster alpha: 4 nodes", "job1 ready", "checkpoint gen 0", "all 4 ranks succeeded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCrashRecoveryScript(t *testing.T) {
	out, err := run(t, 2, `
cluster alpha 6
start
lsc ntp continue
alloc job1 3
run job1 halo 6000 20ms 1024
advance 2s
checkpoint job1
crash alpha-n01
advance 5s
teardown job1
restore job1 0 alpha
wait job1 2h
assert-ok job1
`)
	if err != nil {
		t.Fatalf("script failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "NODE alpha-n01 CRASHED") || !strings.Contains(out, "restored from gen 0") {
		t.Fatalf("narrative missing:\n%s", out)
	}
}

func TestMigrationScripts(t *testing.T) {
	out, err := run(t, 3, `
cluster alpha 2
cluster beta 2
start
alloc job1 2 clusters=alpha
run job1 halo 4000 20ms 1024
advance 1s
migrate job1 beta
wait job1 2h
assert-ok job1
status job1
`)
	if err != nil {
		t.Fatalf("script failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "migrated to beta") || !strings.Contains(out, "placement=[beta-n00 beta-n01]") {
		t.Fatalf("migration narrative missing:\n%s", out)
	}
}

func TestLiveMigrateScript(t *testing.T) {
	out, err := run(t, 4, `
cluster alpha 2
cluster beta 2
start
alloc job1 2 clusters=alpha
run job1 halo 5000 20ms 1024
advance 1s
livemigrate job1 beta
wait job1 2h
assert-ok job1
`)
	if err != nil {
		t.Fatalf("script failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "live-migrated to beta") {
		t.Fatalf("live migration narrative missing:\n%s", out)
	}
}

func TestScriptErrors(t *testing.T) {
	cases := map[string]string{
		"unknown command":      "frobnicate\n",
		"unknown vc":           "cluster a 2\nstart\ncheckpoint nope\n",
		"bad node count":       "cluster a zero\n",
		"unknown node":         "cluster a 2\ncrash ghost\n",
		"unknown workload":     "cluster a 2\nstart\nalloc j 2\nrun j quake3\n",
		"bad duration":         "cluster a 2\nstart\nadvance sideways\n",
		"unknown lsc mode":     "lsc telepathy\n",
		"impossible migration": "cluster a 2\nstart\nalloc j 2\nmigrate j a\n",
		"assert on failed job": "cluster a 2\nstart\nalloc j 2\nrun j halo 100000 20ms 64\ncrash a-n00\nadvance 60s\nassert-ok j\n",
	}
	for name, src := range cases {
		if _, err := run(t, 5, src); err == nil {
			t.Fatalf("%s: script accepted", name)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	if _, err := run(t, 6, "\n# just a comment\n\n"); err != nil {
		t.Fatal(err)
	}
}

func TestStackedClusterScript(t *testing.T) {
	out, err := run(t, 7, `
cluster alpha 2 rhel4-mpich
start
alloc j 2
run j ptrans 24 50
wait j 1h
assert-ok j
`)
	if err != nil {
		t.Fatalf("script failed: %v\n%s", err, out)
	}
}
