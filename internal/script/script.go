// Package script implements dvcctl's scripted orchestration mode: a tiny
// line-oriented command language for driving DVC scenarios — build
// clusters, allocate virtual clusters, run workloads, checkpoint, crash
// nodes, migrate, restore — deterministically and reproducibly.
//
//	# build the site
//	cluster alpha 4 rhel4-mpich
//	cluster beta 4
//	start
//
//	alloc job1 4 clusters=alpha
//	run job1 halo 5000 20ms 2048
//	advance 2s
//	checkpoint job1
//	crash alpha-n01
//	teardown job1
//	restore job1 0 beta
//	wait job1 2h
//	assert-ok job1
package script

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"dvc"
)

// Interpreter executes one script against a fresh simulation.
type Interpreter struct {
	sim *dvc.Simulation
	out io.Writer

	vcs      map[string]*dvc.VirtualCluster
	lastGens map[string]int
	line     int
}

// New creates an interpreter writing progress to out.
func New(seed int64, out io.Writer) *Interpreter {
	return &Interpreter{
		sim:      dvc.NewSimulation(seed),
		out:      out,
		vcs:      make(map[string]*dvc.VirtualCluster),
		lastGens: make(map[string]int),
	}
}

// Simulation exposes the underlying simulation (for tests).
func (in *Interpreter) Simulation() *dvc.Simulation { return in.sim }

func (in *Interpreter) say(format string, args ...any) {
	fmt.Fprintf(in.out, "[t=%8v] %s\n", in.sim.Now(), fmt.Sprintf(format, args...))
}

func (in *Interpreter) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", in.line, fmt.Sprintf(format, args...))
}

// Run executes the script.
func (in *Interpreter) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		in.line++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if err := in.exec(fields[0], fields[1:]); err != nil {
			return err
		}
	}
	return sc.Err()
}

func (in *Interpreter) exec(cmd string, args []string) error {
	switch cmd {
	case "cluster":
		return in.cmdCluster(args)
	case "start":
		in.sim.Start()
		in.say("site started (NTP disciplining clocks)")
		return nil
	case "lsc":
		return in.cmdLSC(args)
	case "alloc":
		return in.cmdAlloc(args)
	case "run":
		return in.cmdRun(args)
	case "advance":
		return in.cmdAdvance(args)
	case "checkpoint":
		return in.cmdCheckpoint(args)
	case "migrate", "livemigrate":
		return in.cmdMigrate(cmd, args)
	case "crash":
		return in.cmdCrash(args, false)
	case "repair":
		return in.cmdCrash(args, true)
	case "teardown":
		vc, err := in.vc(args, 1)
		if err != nil {
			return err
		}
		vc.Teardown()
		in.say("%s torn down", vc.Name())
		return nil
	case "restore":
		return in.cmdRestore(args)
	case "wait":
		return in.cmdWait(args)
	case "status":
		return in.cmdStatus(args)
	case "assert-ok":
		vc, err := in.vc(args, 1)
		if err != nil {
			return err
		}
		js := vc.JobStatus()
		if !js.AllOK() {
			return in.errf("assert-ok %s: %d running, %d failed", vc.Name(), js.Running, js.Failed)
		}
		in.say("%s: all %d ranks succeeded", vc.Name(), js.Succeeded)
		return nil
	default:
		return in.errf("unknown command %q", cmd)
	}
}

func (in *Interpreter) vc(args []string, want int) (*dvc.VirtualCluster, error) {
	if len(args) < want {
		return nil, in.errf("expected at least %d argument(s)", want)
	}
	vc, ok := in.vcs[args[0]]
	if !ok {
		return nil, in.errf("unknown virtual cluster %q", args[0])
	}
	return vc, nil
}

func (in *Interpreter) duration(s string) (dvc.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, in.errf("bad duration %q: %v", s, err)
	}
	return dvc.Time(d.Nanoseconds()), nil
}

func (in *Interpreter) cmdCluster(args []string) error {
	if len(args) < 2 {
		return in.errf("usage: cluster <name> <nodes> [stack]")
	}
	n, err := strconv.Atoi(args[1])
	if err != nil || n <= 0 {
		return in.errf("bad node count %q", args[1])
	}
	in.sim.AddCluster(args[0], n)
	if len(args) >= 3 {
		in.sim.Site().SetClusterStack(args[0], args[2])
	}
	in.say("cluster %s: %d nodes", args[0], n)
	return nil
}

func (in *Interpreter) cmdLSC(args []string) error {
	if len(args) < 1 {
		return in.errf("usage: lsc ntp|naive [continue] [incremental]")
	}
	var cfg dvc.LSCConfig
	switch args[0] {
	case "ntp":
		cfg = dvc.NTPLSC()
	case "naive":
		cfg = dvc.NaiveLSC()
	default:
		return in.errf("unknown LSC mode %q", args[0])
	}
	for _, opt := range args[1:] {
		switch opt {
		case "continue":
			cfg.ContinueAfterSave = true
		case "incremental":
			cfg.Incremental = true
		default:
			return in.errf("unknown LSC option %q", opt)
		}
	}
	in.sim.SetLSC(cfg)
	in.say("LSC coordinator: %s", args[0])
	return nil
}

func (in *Interpreter) cmdAlloc(args []string) error {
	if len(args) < 2 {
		return in.errf("usage: alloc <vc> <nodes> [clusters=a,b]")
	}
	n, err := strconv.Atoi(args[1])
	if err != nil || n <= 0 {
		return in.errf("bad node count %q", args[1])
	}
	spec := dvc.VCSpec{Name: args[0], Nodes: n, VMRAM: 256 << 20}
	for _, opt := range args[2:] {
		if rest, ok := strings.CutPrefix(opt, "clusters="); ok {
			spec.Clusters = strings.Split(rest, ",")
		} else {
			return in.errf("unknown alloc option %q", opt)
		}
	}
	vc, err := in.sim.Allocate(spec)
	if err != nil {
		return in.errf("alloc: %v", err)
	}
	in.vcs[args[0]] = vc
	in.say("%s ready on %v", vc.Name(), placementString(vc))
	return nil
}

func placementString(vc *dvc.VirtualCluster) string {
	var ids []string
	for _, n := range vc.PhysicalNodes() {
		ids = append(ids, n.ID())
	}
	return strings.Join(ids, " ")
}

func (in *Interpreter) cmdRun(args []string) error {
	vc, err := in.vc(args, 2)
	if err != nil {
		return err
	}
	app, desc, err := in.makeApp(args[1], args[2:])
	if err != nil {
		return err
	}
	if _, err := vc.LaunchMPI(6000, app); err != nil {
		return in.errf("run: %v", err)
	}
	in.say("%s running %s", vc.Name(), desc)
	return nil
}

// makeApp parses a workload spec into a per-rank factory.
func (in *Interpreter) makeApp(kind string, args []string) (func(int) dvc.App, string, error) {
	atoi := func(i, def int) int {
		if i >= len(args) {
			return def
		}
		v, err := strconv.Atoi(args[i])
		if err != nil {
			return def
		}
		return v
	}
	switch kind {
	case "halo":
		rounds := atoi(0, 5000)
		period := 20 * dvc.Millisecond
		if len(args) >= 2 {
			if d, err := in.duration(args[1]); err == nil {
				period = d
			}
		}
		msg := atoi(2, 2048)
		return func(int) dvc.App { return dvc.NewHalo(rounds, period, msg) },
			fmt.Sprintf("halo(rounds=%d, period=%v, msg=%dB)", rounds, period, msg), nil
	case "hpl":
		n := atoi(0, 128)
		gf := 2e-5
		if len(args) >= 2 {
			if v, err := strconv.ParseFloat(args[1], 64); err == nil {
				gf = v
			}
		}
		return func(int) dvc.App { return dvc.NewHPL(n, 42, gf) },
			fmt.Sprintf("hpl(N=%d, %g GF/s)", n, gf), nil
	case "ptrans":
		n := atoi(0, 32)
		reps := atoi(1, 500)
		return func(int) dvc.App { return dvc.NewPTRANS(n, 42, reps, 10) },
			fmt.Sprintf("ptrans(N=%d, reps=%d)", n, reps), nil
	default:
		return nil, "", in.errf("unknown workload %q (halo|hpl|ptrans)", kind)
	}
}

func (in *Interpreter) cmdAdvance(args []string) error {
	if len(args) != 1 {
		return in.errf("usage: advance <duration>")
	}
	d, err := in.duration(args[0])
	if err != nil {
		return err
	}
	in.sim.RunFor(d)
	in.say("advanced %v", d)
	return nil
}

func (in *Interpreter) cmdCheckpoint(args []string) error {
	vc, err := in.vc(args, 1)
	if err != nil {
		return err
	}
	res, err := in.sim.Checkpoint(vc)
	if err != nil {
		return in.errf("checkpoint: %v", err)
	}
	if !res.OK {
		return in.errf("checkpoint failed: %s", res.Reason)
	}
	in.lastGens[vc.Name()] = res.Generation
	in.say("%s checkpoint gen %d: skew %v, downtime %v", vc.Name(), res.Generation, res.SaveSkew, res.Downtime)
	return nil
}

func (in *Interpreter) cmdMigrate(cmd string, args []string) error {
	vc, err := in.vc(args, 2)
	if err != nil {
		return err
	}
	targets := in.sim.FreeNodes(args[1])
	if len(targets) < vc.Spec().Nodes {
		return in.errf("%s: cluster %q has %d free nodes, need %d", cmd, args[1], len(targets), vc.Spec().Nodes)
	}
	targets = targets[:vc.Spec().Nodes]
	if cmd == "livemigrate" {
		res, err := in.sim.LiveMigrate(vc, targets, dvc.DefaultLiveConfig())
		if err != nil || !res.OK {
			return in.errf("livemigrate: %v %+v", err, res)
		}
		in.say("%s live-migrated to %s: downtime %v after %d rounds", vc.Name(), args[1], res.Downtime, res.Rounds)
		return nil
	}
	res, err := in.sim.Migrate(vc, targets)
	if err != nil || !res.OK {
		return in.errf("migrate: %v %+v", err, res)
	}
	in.say("%s migrated to %s: downtime %v", vc.Name(), args[1], res.Downtime)
	return nil
}

func (in *Interpreter) cmdCrash(args []string, repair bool) error {
	if len(args) != 1 {
		return in.errf("usage: crash|repair <node-id>")
	}
	n, ok := in.sim.Site().Node(args[0])
	if !ok {
		return in.errf("unknown node %q", args[0])
	}
	if repair {
		n.Repair()
		in.say("node %s repaired", n.ID())
	} else {
		n.Fail()
		in.say("NODE %s CRASHED", n.ID())
	}
	return nil
}

func (in *Interpreter) cmdRestore(args []string) error {
	vc, err := in.vc(args, 3)
	if err != nil {
		return err
	}
	gen, err := strconv.Atoi(args[1])
	if err != nil {
		return in.errf("bad generation %q", args[1])
	}
	targets := in.sim.FreeNodes(args[2])
	if len(targets) < vc.Spec().Nodes {
		return in.errf("restore: cluster %q has %d free nodes, need %d", args[2], len(targets), vc.Spec().Nodes)
	}
	res, err := in.sim.Recover(vc, gen, targets[:vc.Spec().Nodes])
	if err != nil || !res.OK {
		return in.errf("restore: %v %+v", err, res)
	}
	in.say("%s restored from gen %d (staging %v)", vc.Name(), gen, res.StageTime)
	return nil
}

func (in *Interpreter) cmdWait(args []string) error {
	vc, err := in.vc(args, 1)
	if err != nil {
		return err
	}
	limit := 2 * dvc.Hour
	if len(args) >= 2 {
		if d, err := in.duration(args[1]); err == nil {
			limit = d
		} else {
			return err
		}
	}
	js := in.sim.RunUntilJobDone(vc, limit)
	in.say("%s done=%v: %d ok, %d failed, %d running", vc.Name(), js.Done(), js.Succeeded, js.Failed, js.Running)
	return nil
}

func (in *Interpreter) cmdStatus(args []string) error {
	vc, err := in.vc(args, 1)
	if err != nil {
		return err
	}
	js := vc.JobStatus()
	in.say("%s state=%v placement=[%s] job: %d running, %d ok, %d failed",
		vc.Name(), vc.State(), placementString(vc), js.Running, js.Succeeded, js.Failed)
	return nil
}
