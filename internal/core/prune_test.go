package core

import (
	"testing"

	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/mpi"
	"dvc/internal/sim"
)

// takeGens drives n checkpoint-and-continue generations.
func takeGens(t *testing.T, tb *testbed, vc *VirtualCluster, n int) []*CheckpointResult {
	t.Helper()
	var out []*CheckpointResult
	for i := 0; i < n; i++ {
		var res *CheckpointResult
		if err := tb.co.Checkpoint(vc, func(r *CheckpointResult) { res = r }); err != nil {
			t.Fatal(err)
		}
		for res == nil {
			tb.k.RunFor(sim.Second)
		}
		if !res.OK {
			t.Fatalf("gen %d failed: %s", i, res.Reason)
		}
		out = append(out, res)
		tb.k.RunFor(3 * sim.Second)
	}
	return out
}

func newPruneBed(t *testing.T, incremental bool, fullEvery int) (*testbed, *VirtualCluster) {
	t.Helper()
	cfg := DefaultNTPLSC()
	cfg.ContinueAfterSave = true
	cfg.Incremental = incremental
	cfg.FullEvery = fullEvery
	tb := newTestbed(t, 31, map[string]int{"alpha": 4}, cfg)
	vc := tb.allocate(t, "pr", 2, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(20000, 20*sim.Millisecond, 512) })
	for _, d := range vc.Domains() {
		d.SetDirtyRate(2e6)
	}
	tb.k.RunFor(sim.Second)
	return tb, vc
}

func TestGenerationsListing(t *testing.T) {
	tb, vc := newPruneBed(t, false, 0)
	takeGens(t, tb, vc, 3)
	gens := tb.co.Generations("pr")
	if len(gens) != 3 || gens[0] != 0 || gens[2] != 2 {
		t.Fatalf("Generations = %v", gens)
	}
	if got := tb.co.Generations("nope"); len(got) != 0 {
		t.Fatalf("unknown VC has generations %v", got)
	}
}

func TestPruneKeepsNewestFullGenerations(t *testing.T) {
	tb, vc := newPruneBed(t, false, 0)
	takeGens(t, tb, vc, 4)
	deleted := tb.co.PruneGenerations("pr", 2)
	if deleted != 4 { // 2 old generations x 2 domains
		t.Fatalf("deleted %d objects, want 4", deleted)
	}
	gens := tb.co.Generations("pr")
	if len(gens) != 2 || gens[0] != 2 || gens[1] != 3 {
		t.Fatalf("kept %v, want [2 3]", gens)
	}
	// Pruning again is a no-op.
	if tb.co.PruneGenerations("pr", 2) != 0 {
		t.Fatal("second prune deleted more")
	}
	// The kept generations still restore.
	vc.PhysicalNodes()[0].Fail()
	tb.k.RunFor(2 * sim.Second)
	vc.Teardown()
	var rr *RestoreResult
	tb.co.RestoreVC(vc, 3, tb.site.UpNodes("alpha")[:2], func(r *RestoreResult) { rr = r })
	tb.k.RunFor(5 * sim.Minute)
	if rr == nil || !rr.OK {
		t.Fatalf("restore after prune: %+v", rr)
	}
	if !tb.runJob(t, vc, time60()).AllOK() {
		t.Fatal("job failed after pruned restore")
	}
}

func TestPrunePreservesIncrementalChain(t *testing.T) {
	tb, vc := newPruneBed(t, true, 0) // gen 0 full, everything after incremental
	takeGens(t, tb, vc, 4)
	// Keeping only the newest (incremental) generation must preserve its
	// whole chain back to the full base at gen 0 — nothing is deletable.
	if deleted := tb.co.PruneGenerations("pr", 1); deleted != 0 {
		t.Fatalf("prune broke a live chain: deleted %d", deleted)
	}
	if gens := tb.co.Generations("pr"); len(gens) != 4 {
		t.Fatalf("chain shrunk: %v", gens)
	}
}

func TestPruneWithConsolidationDropsOldChains(t *testing.T) {
	tb, vc := newPruneBed(t, true, 2) // full at gens 0, 2; incremental at 1, 3
	takeGens(t, tb, vc, 4)
	// Keep the last two generations (2=full, 3=incremental): gens 0-1 go.
	deleted := tb.co.PruneGenerations("pr", 2)
	if deleted != 4 {
		t.Fatalf("deleted %d, want 4", deleted)
	}
	gens := tb.co.Generations("pr")
	if len(gens) != 2 || gens[0] != 2 {
		t.Fatalf("kept %v", gens)
	}
	// Restore the kept incremental generation.
	vc.PhysicalNodes()[1].Fail()
	tb.k.RunFor(2 * sim.Second)
	vc.Teardown()
	var rr *RestoreResult
	tb.co.RestoreVC(vc, 3, tb.site.UpNodes("alpha")[:2], func(r *RestoreResult) { rr = r })
	tb.k.RunFor(5 * sim.Minute)
	if rr == nil || !rr.OK {
		t.Fatalf("restore after consolidated prune: %+v", rr)
	}
	if !tb.runJob(t, vc, time60()).AllOK() {
		t.Fatal("job failed")
	}
}
