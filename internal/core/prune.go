package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint-store hygiene: a periodically checkpointed long job writes a
// new generation every interval; old generations are useless once newer
// ones exist — except that incremental chains must stay intact back to
// the newest kept generation's full base.

// Generations lists the checkpoint generations stored for a VC, sorted.
func (c *Coordinator) Generations(vcName string) []int {
	prefix := fmt.Sprintf("lsc/%s/", vcName)
	seen := map[int]bool{}
	for _, key := range c.mgr.store.Keys(prefix) {
		rest := strings.TrimPrefix(key, prefix)
		genStr, _, ok := strings.Cut(rest, "/")
		if !ok {
			continue
		}
		gen, err := strconv.Atoi(genStr)
		if err != nil {
			continue
		}
		seen[gen] = true
	}
	gens := make([]int, 0, len(seen))
	for g := range seen {
		gens = append(gens, g)
	}
	sort.Ints(gens)
	return gens
}

// PruneGenerations deletes stored generations beyond the newest `keep`,
// preserving any older generations that kept incremental chains still
// depend on. It returns the number of image objects deleted. Deletion is
// a metadata operation on the store (no transfer time).
func (c *Coordinator) PruneGenerations(vcName string, keep int) int {
	if keep < 1 {
		keep = 1
	}
	gens := c.Generations(vcName)
	if len(gens) <= keep {
		return 0
	}
	kept := gens[len(gens)-keep:]
	oldestKept := kept[0]

	// A kept incremental generation needs its chain: find, per domain,
	// the full base at or below the oldest kept generation.
	prefix := fmt.Sprintf("lsc/%s/", vcName)
	needed := map[string]bool{}
	domainSet := map[string]bool{}
	for _, key := range c.mgr.store.Keys(prefix) {
		rest := strings.TrimPrefix(key, prefix)
		if _, domain, ok := strings.Cut(rest, "/"); ok {
			domainSet[domain] = true
		}
	}
	// Sorted domain order: pruning reads and deletes store objects, and
	// those effects must replay identically run to run (dvclint: mapiter).
	domains := make([]string, 0, len(domainSet))
	for domain := range domainSet {
		domains = append(domains, domain)
	}
	sort.Strings(domains)
	for _, domain := range domains {
		base := oldestKept
		for base > 0 {
			obj, ok := c.mgr.store.Stat(imageKey(vcName, base, domain))
			if !ok || !obj.Image.Incremental || obj.Manifest != nil {
				// Full images and self-contained delta epochs end the
				// chain: nothing older is needed.
				break
			}
			base--
		}
		for g := base; g <= oldestKept; g++ {
			needed[imageKey(vcName, g, domain)] = true
		}
	}

	deleted := 0
	for _, g := range gens[:len(gens)-keep] {
		for _, domain := range domains {
			key := imageKey(vcName, g, domain)
			if needed[key] || !c.mgr.store.Has(key) {
				continue
			}
			c.mgr.store.Delete(key)
			deleted++
		}
	}
	if deleted > 0 {
		// Deleting delta epochs only drops chunk references; reclaim the
		// now-unreferenced chunks (no-op for full/incremental objects).
		c.mgr.store.GC()
	}
	return deleted
}
