package core

import (
	"reflect"
	"testing"

	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/mpi"
	"dvc/internal/sim"
	"dvc/internal/vm"
)

// TestDeltaCheckpointEpochsDedupAndRestore drives the full delta path:
// coordinated delta epochs, steady-state epochs costing a fraction of
// the full image, prune + GC of old self-contained generations, and
// crash recovery staging exactly one image per domain.
func TestDeltaCheckpointEpochsDedupAndRestore(t *testing.T) {
	cfg := DefaultNTPLSC()
	cfg.ContinueAfterSave = true
	cfg.Delta = true
	tb := newTestbed(t, 25, map[string]int{"alpha": 4}, cfg)
	vc, err := tb.mgr.Allocate(VCSpec{Name: "dlt", Nodes: 2, VMRAM: testVMRAM}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range vc.Domains() {
		d.SetDirtyRate(2e6) // modest writer from first guest instruction
	}
	tb.k.RunFor(vm.DefaultXenConfig().BootTime + sim.Second)
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(6000, 20*sim.Millisecond, 1024) })
	tb.k.RunFor(sim.Second)

	var gens []*CheckpointResult
	for i := 0; i < 3; i++ {
		var res *CheckpointResult
		tb.co.Checkpoint(vc, func(r *CheckpointResult) { res = r })
		for res == nil {
			tb.k.RunFor(sim.Second)
		}
		tb.k.RunFor(5 * sim.Second)
		if !res.OK {
			t.Fatalf("delta checkpoint %d: %+v", i, res)
		}
		gens = append(gens, res)
	}

	logical := int64(vc.Spec().Nodes) * testVMRAM
	for i, g := range gens {
		if g.LogicalBytes != logical {
			t.Fatalf("gen %d logical %d, want %d", i, g.LogicalBytes, logical)
		}
		for _, img := range g.Images {
			if !img.Incremental || img.Pages == nil {
				t.Fatalf("gen %d image is not a delta epoch", i)
			}
		}
	}
	// Generation 0 already dedups: the golden-image template chunks are
	// shared across both VMs, and untouched RAM is one zero chunk.
	if gens[0].SentBytes >= gens[0].LogicalBytes {
		t.Fatalf("gen 0 sent %d of %d logical — no dedup", gens[0].SentBytes, gens[0].LogicalBytes)
	}
	if gens[0].DedupChunks == 0 {
		t.Fatal("gen 0 saw no dedup hits")
	}
	// Steady state: an epoch costs its dirtied chunks plus metadata —
	// far below the full image, and far below generation 0.
	for _, g := range gens[1:] {
		if g.SentBytes*4 > g.LogicalBytes {
			t.Fatalf("steady-state epoch sent %d of %d logical, want <= 25%%", g.SentBytes, g.LogicalBytes)
		}
	}
	if gens[1].SentBytes >= gens[0].SentBytes {
		t.Fatalf("gen 1 sent %d, not below gen 0's %d", gens[1].SentBytes, gens[0].SentBytes)
	}
	if tb.store.DeltaWrites != 6 {
		t.Fatalf("store delta writes %d, want 6", tb.store.DeltaWrites)
	}

	// Old delta generations are self-contained, so pruning drops them
	// whole and GC reclaims their private chunks.
	uniqueBefore := tb.store.UniqueBytes()
	if deleted := tb.co.PruneGenerations("dlt", 1); deleted != 4 {
		t.Fatalf("pruned %d objects, want 4 (2 gens x 2 domains)", deleted)
	}
	if tb.store.UniqueBytes() >= uniqueBefore {
		t.Fatalf("prune+GC did not shrink the pool: %d -> %d", uniqueBefore, tb.store.UniqueBytes())
	}

	// Crash recovery from the kept generation: a delta restore stages
	// exactly one self-contained image per domain.
	for _, d := range vc.Domains() {
		if name := d.Name(); len(tb.co.chainKeys("dlt", gens[2].Generation, name)) != 1 {
			t.Fatalf("delta restore of %s needs a chain", name)
		}
	}
	vc.PhysicalNodes()[0].Fail()
	tb.k.RunFor(2 * sim.Second)
	vc.Teardown()
	targets := tb.site.UpNodes("alpha")[:2]
	var rr *RestoreResult
	tb.co.RestoreVC(vc, gens[2].Generation, targets, func(r *RestoreResult) { rr = r })
	tb.k.RunFor(5 * sim.Minute)
	if rr == nil || !rr.OK {
		t.Fatalf("delta restore: %+v", rr)
	}
	js := tb.runJob(t, vc, time60())
	if !js.AllOK() {
		t.Fatalf("job after delta restore: %+v", js)
	}
}

// TestDeltaRestoreByteIdenticalToFull is the acceptance proof: an image
// written through WriteDelta and read back from the chunk pool is
// byte-identical — same payload bytes, same decoded guest state — to a
// full image captured at the same paused instant, and it restores to a
// running domain.
func TestDeltaRestoreByteIdenticalToFull(t *testing.T) {
	tb := newTestbed(t, 26, map[string]int{"alpha": 2}, DefaultNTPLSC())
	vc := tb.allocate(t, "bi", 1, guest.WatchdogConfig{})
	tb.k.RunFor(10 * sim.Second)
	d := vc.Domains()[0]
	if err := d.Pause(); err != nil {
		t.Fatal(err)
	}
	full, err := d.CaptureImage()
	if err != nil {
		t.Fatal(err)
	}
	delta, err := d.CaptureDeltaImage()
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Data.Equal(full.Data) {
		t.Fatal("delta capture's functional payload differs from the full capture")
	}

	if _, err := tb.store.WriteDelta("bi/0", delta, nil); err != nil {
		t.Fatal(err)
	}
	tb.k.RunFor(sim.Minute)
	var got *vm.Image
	var gotErr error
	tb.store.Read("bi/0", func(i *vm.Image, err error) { got, gotErr = i, err })
	tb.k.RunFor(sim.Minute)
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if !got.Data.Equal(full.Data) {
		t.Fatal("reassembled delta image is not byte-identical to the full image")
	}
	sf, err := guest.DecodeImagePayload(full.Data)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := guest.DecodeImagePayload(got.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sf, sg) {
		t.Fatal("decoded guest state differs between delta and full restore")
	}

	// And it restores to a live domain.
	d.Destroy()
	tb.k.RunFor(sim.Second)
	h := tb.mgr.hvs[vc.PhysicalNodes()[0].ID()]
	d2, err := h.RestoreDomain(got, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Unpause(); err != nil {
		t.Fatal(err)
	}
	tb.k.RunFor(sim.Second)
	if d2.State() != vm.StateRunning {
		t.Fatalf("restored domain is %v", d2.State())
	}
}

// TestLiveMigrateDeltaSkipsUntouchedRAM: the WAN-ready variant elides
// never-dirtied chunks from the first pre-copy round and keeps chunk
// lineage across the move.
func TestLiveMigrateDeltaSkipsUntouchedRAM(t *testing.T) {
	tb := newTestbed(t, 27, map[string]int{"alpha": 2, "beta": 2}, DefaultNTPLSC())
	vc, err := tb.mgr.Allocate(VCSpec{Name: "wan", Nodes: 2, VMRAM: testVMRAM, Clusters: []string{"alpha"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range vc.Domains() {
		d.SetDirtyRate(2e6) // calm guest: most RAM never dirtied
	}
	tb.k.RunFor(vm.DefaultXenConfig().BootTime + sim.Second)
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(4000, 20*sim.Millisecond, 1024) })
	tb.k.RunFor(sim.Second)

	cfg := DefaultLiveConfig()
	cfg.Delta = true
	var res *LiveMigrationResult
	if err := tb.co.LiveMigrate(vc, tb.site.UpNodes("beta"), cfg, func(r *LiveMigrationResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	tb.k.RunFor(10 * sim.Minute)
	if res == nil || !res.OK {
		t.Fatalf("delta live migration: %+v", res)
	}
	total := int64(vc.Spec().Nodes) * testVMRAM
	if res.BytesSkipped == 0 {
		t.Fatal("delta pre-copy skipped nothing on a calm guest")
	}
	if res.BytesCopied+res.BytesSkipped < total {
		t.Fatalf("copied %d + skipped %d < RAM %d", res.BytesCopied, res.BytesSkipped, total)
	}
	if res.BytesCopied >= total {
		t.Fatalf("copied %d bytes, no elision vs %d RAM", res.BytesCopied, total)
	}
	// The migrated domains carry their page tables (delta final capture):
	// a post-move epoch dedups against pre-move state.
	for _, d := range vc.Domains() {
		if d.UntouchedBytes() == testVMRAM {
			t.Fatal("migrated domain lost its page-table state")
		}
	}
	js := tb.runJob(t, vc, time60())
	if !js.AllOK() {
		t.Fatalf("job after delta live migration: %+v", js)
	}
}
