package core

import (
	"fmt"

	"dvc/internal/guest"
	"dvc/internal/obs"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/tcp"
	"dvc/internal/vm"
)

// LSCMode selects the coordination strategy for Lazy Synchronous
// Checkpointing.
type LSCMode int

// Coordination strategies.
const (
	// LSCNaive is the paper's first implementation (§3.1): terminal
	// connections to every node, "vm save" written to each in turn. The
	// serial dispatch plus remote-shell jitter produces save skew that
	// grows with node count; once it exceeds the TCP retry budget the
	// application dies. "Unreliable at best."
	LSCNaive LSCMode = iota
	// LSCNTP is the working prototype (§3.1): every node arms a local
	// timer for the same host-clock instant; NTP bounds the skew to
	// milliseconds.
	LSCNTP
)

func (m LSCMode) String() string {
	if m == LSCNaive {
		return "naive"
	}
	return "ntp"
}

// LSCConfig tunes the coordinator.
type LSCConfig struct {
	Mode LSCMode

	// Naive mode: serial per-node cost of pushing the command down each
	// terminal connection, plus a heavy-tailed remote execution latency
	// (lognormal with the given median and sigma).
	DispatchWriteCost sim.Time
	ExecJitterMedian  sim.Time
	ExecJitterSigma   float64

	// NTP mode: how far in the future the common save instant is
	// scheduled, and the local timer's firing jitter (lognormal).
	ScheduleLead     sim.Time
	TimerJitterMed   sim.Time
	TimerJitterSigma float64

	// SleeperFailProb is the per-VM probability that the node-local
	// checkpoint process dies or hangs before the save instant — the
	// §3.1 caveat: "it does not check neighboring processes to make
	// certain that the sleeping checkpoint process is still executing".
	SleeperFailProb float64
	// HealthCheck enables the paper's proposed fix (§4): a coordinated
	// health check of checkpoint processes before the save instant, with
	// up to HealthRetries whole-attempt retries.
	HealthCheck   bool
	HealthRetries int

	// ContinueAfterSave selects checkpoint-and-continue (unpause after
	// capture) instead of the Xen-2007 save/restore cycle (domain is
	// destroyed by the save and restored from the image).
	ContinueAfterSave bool

	// Incremental enables page-level incremental checkpoints: after a
	// full base image, subsequent generations transfer only the pages
	// dirtied since the previous checkpoint. Restores stage the whole
	// chain. (Extension; see experiment E14.)
	Incremental bool
	// FullEvery consolidates with a full image every N generations
	// (0 = only generation 0 is full).
	FullEvery int

	// Delta switches every generation to content-addressed delta epochs
	// (vm.CaptureDeltaImage + storage.WriteDelta): each epoch is
	// self-contained — restores stage exactly one image, no chain — and
	// the store transfers only chunks it has not seen, so steady-state
	// epochs cost the dirtied chunks plus manifest metadata. Takes
	// precedence over Incremental/FullEvery.
	Delta bool
}

// isFullGeneration decides whether generation gen writes a full image.
func (cfg LSCConfig) isFullGeneration(gen int) bool {
	if !cfg.Incremental || gen == 0 {
		return true
	}
	return cfg.FullEvery > 0 && gen%cfg.FullEvery == 0
}

// DefaultNaiveLSC returns the naive coordinator's calibration. The write
// cost and jitter were calibrated so the failure curve matches §3.1:
// reliable through 8 nodes, ~50% failures at 10, ~90% at 12. Note the
// effective tolerance is about *half* the 6.2 s TCP retry budget, because
// the serial dispatch skews both the save and the subsequent restore and
// retry counters persist across the cycle.
func DefaultNaiveLSC() LSCConfig {
	return LSCConfig{
		Mode:              LSCNaive,
		DispatchWriteCost: 320 * sim.Millisecond,
		ExecJitterMedian:  200 * sim.Millisecond,
		ExecJitterSigma:   1.0,
	}
}

// DefaultNTPLSC returns the NTP coordinator's calibration: a scheduled
// instant 2 s out and sub-millisecond local timer jitter.
func DefaultNTPLSC() LSCConfig {
	return LSCConfig{
		Mode:             LSCNTP,
		ScheduleLead:     2 * sim.Second,
		TimerJitterMed:   300 * sim.Microsecond,
		TimerJitterSigma: 0.8,
	}
}

// CheckpointResult reports one coordinated checkpoint attempt.
type CheckpointResult struct {
	VC         string
	Generation int
	OK         bool
	Reason     string

	Images     []*vm.Image
	Attempts   int      // >1 when the health check retried
	SaveSkew   sim.Time // last pause - first pause
	StoreTime  sim.Time // image transfer to shared storage
	Downtime   sim.Time // first pause to last resume
	FinishedAt sim.Time

	// Delta-path accounting (LSCConfig.Delta): manifest-covered bytes,
	// bytes that actually crossed the wire, and dedup hits across the set.
	LogicalBytes int64
	SentBytes    int64
	DedupChunks  int

	targets []*phys.Node // migration destination; nil = same placement
	span    obs.SpanID   // open lsc.epoch span, closed by finishOK/finishFail
}

// RestoreResult reports a coordinated restore.
type RestoreResult struct {
	VC         string
	Generation int
	OK         bool
	Reason     string
	StageTime  sim.Time // image transfer from shared storage
	FinishedAt sim.Time
}

// Coordinator drives LSC over a manager's virtual clusters.
type Coordinator struct {
	mgr *Manager
	cfg LSCConfig

	// Stats across all attempts.
	AttemptCount int
	FailCount    int
}

// NewCoordinator creates an LSC coordinator.
func NewCoordinator(mgr *Manager, cfg LSCConfig) *Coordinator {
	return &Coordinator{mgr: mgr, cfg: cfg}
}

// Config returns the coordinator configuration.
func (c *Coordinator) Config() LSCConfig { return c.cfg }

// tr returns the manager's tracer (nil when tracing is off; every obs
// method is nil-receiver safe).
func (c *Coordinator) tr() *obs.Tracer { return c.mgr.tracer }

// imageKey is the storage key for one domain of one generation.
func imageKey(vcName string, gen int, domain string) string {
	return fmt.Sprintf("lsc/%s/%05d/%s", vcName, gen, domain)
}

// pausePlan computes each domain's absolute pause instant; a negative
// time means that node's sleeper process died and the VM will never
// pause.
func (c *Coordinator) pausePlan(vc *VirtualCluster) []sim.Time {
	k := c.mgr.kernel
	rng := k.Rand()
	times := make([]sim.Time, len(vc.domains))
	switch c.cfg.Mode {
	case LSCNaive:
		for i := range times {
			dispatch := sim.Time(i+1) * c.cfg.DispatchWriteCost
			exec := sim.LogNormal(rng, c.cfg.ExecJitterMedian, c.cfg.ExecJitterSigma)
			times[i] = k.Now() + dispatch + exec
		}
	case LSCNTP:
		// One host-clock instant for everyone, read from the
		// coordinator's (first node's) clock.
		coordClock := vc.nodes[0].Clock()
		hostT := coordClock.Read() + c.cfg.ScheduleLead
		for i, node := range vc.nodes {
			trueT := node.Clock().TrueTimeForHostReading(hostT)
			trueT += sim.LogNormal(rng, c.cfg.TimerJitterMed, c.cfg.TimerJitterSigma)
			if trueT < k.Now() {
				trueT = k.Now()
			}
			times[i] = trueT
		}
	}
	for i := range times {
		if c.cfg.SleeperFailProb > 0 && rng.Float64() < c.cfg.SleeperFailProb {
			times[i] = -1
		}
	}
	return times
}

// Checkpoint takes a coordinated checkpoint of the virtual cluster and
// calls done with the outcome. Depending on ContinueAfterSave the VC
// either resumes in place or is destroyed and restored from the saved
// images (the Xen-2007 save/restore cycle the paper measured).
func (c *Coordinator) Checkpoint(vc *VirtualCluster, done func(*CheckpointResult)) error {
	return c.checkpointTo(vc, nil, done)
}

// Migrate checkpoints the VC and restores it onto targets — the paper's
// §4 next step: "Extending LSC to enable parallel migration". The
// ContinueAfterSave setting is ignored: a migration always cycles.
func (c *Coordinator) Migrate(vc *VirtualCluster, targets []*phys.Node, done func(*CheckpointResult)) error {
	if len(targets) != vc.spec.Nodes {
		return fmt.Errorf("lsc: migrate %s: %d targets, want %d", vc.spec.Name, len(targets), vc.spec.Nodes)
	}
	return c.checkpointTo(vc, targets, done)
}

func (c *Coordinator) checkpointTo(vc *VirtualCluster, targets []*phys.Node, done func(*CheckpointResult)) error {
	if vc.state != VCReady {
		return fmt.Errorf("lsc: checkpoint %s: cluster is %v", vc.spec.Name, vc.state)
	}
	res := &CheckpointResult{VC: vc.spec.Name, Generation: vc.nextGen, targets: targets}
	vc.nextGen++
	c.AttemptCount++
	kind := "checkpoint"
	if targets != nil {
		kind = "migrate"
	}
	res.span = c.tr().Begin(c.mgr.kernel.Now(), obs.EvLSCEpoch, "", vc.spec.Name, "epoch",
		obs.Int("gen", int64(res.Generation)), obs.Str("mode", c.cfg.Mode.String()), obs.Str("kind", kind))
	c.tr().Inc("lsc.attempts", 1)
	c.attempt(vc, res, 1, done)
	return nil
}

func (c *Coordinator) attempt(vc *VirtualCluster, res *CheckpointResult, attempt int, done func(*CheckpointResult)) {
	k := c.mgr.kernel
	res.Attempts = attempt
	plan := c.pausePlan(vc)

	// Health check (§4 extension): the coordinator verifies every
	// sleeper before the save instant and aborts the round cleanly if
	// one has died, retrying with fresh processes.
	if c.cfg.HealthCheck {
		dead := false
		for _, t := range plan {
			if t < 0 {
				dead = true
				break
			}
		}
		if dead {
			if attempt > c.cfg.HealthRetries {
				c.finishFail(res, "health check: sleeper dead and retries exhausted", done)
				return
			}
			// Abort before anything paused; retry after a beat.
			k.After(sim.Second, func() { c.attempt(vc, res, attempt+1, done) })
			return
		}
	}

	var first, last sim.Time = -1, -1
	scheduled := 0
	missing := 0
	for _, t := range plan {
		if t < 0 {
			missing++
			continue
		}
		if first < 0 || t < first {
			first = t
		}
		if t > last {
			last = t
		}
		scheduled++
	}
	if scheduled == 0 {
		c.finishFail(res, "no sleeper survived", done)
		return
	}
	res.SaveSkew = last - first
	if missing > 0 {
		// Without a health check the coordinator only discovers the
		// missing save when it waits for confirmations: the job is
		// doomed (one VM keeps running against frozen peers).
		res.Reason = fmt.Sprintf("%d vm(s) never saved (sleeper died)", missing)
	}

	remaining := scheduled
	vc.state = VCPaused
	for i, t := range plan {
		if t < 0 {
			continue
		}
		d := vc.domains[i]
		k.At(t, func() {
			if d.State() == vm.StateRunning {
				if err := d.Pause(); err != nil {
					res.Reason = err.Error()
				}
			} else if res.Reason == "" {
				res.Reason = fmt.Sprintf("domain %s was %v at save time", d.Name(), d.State())
			}
			remaining--
			if remaining == 0 {
				c.afterPaused(vc, res, first, done)
			}
		})
	}
}

// afterPaused captures and stores images, then resumes or cycles.
func (c *Coordinator) afterPaused(vc *VirtualCluster, res *CheckpointResult, firstPause sim.Time, done func(*CheckpointResult)) {
	k := c.mgr.kernel
	// Capture every paused domain (full or incremental per the policy).
	full := c.cfg.isFullGeneration(res.Generation)
	for _, d := range vc.domains {
		if d.State() != vm.StatePaused {
			continue
		}
		var img *vm.Image
		var err error
		switch {
		case c.cfg.Delta:
			// Self-contained content-addressed epoch; the capture folds
			// the dirt and re-marks, so the MarkClean below is a no-op.
			img, err = d.CaptureDeltaImage()
		case full:
			img, err = d.CaptureImage()
		default:
			img, err = d.CaptureIncrementalImage()
		}
		if err != nil {
			c.finishFail(res, err.Error(), done)
			return
		}
		d.MarkClean()
		res.Images = append(res.Images, img)
	}
	if res.Reason != "" {
		// Incomplete set: release the paused VMs back (the job will have
		// died anyway) and report failure.
		for _, d := range vc.domains {
			if d.State() == vm.StatePaused {
				_ = d.Unpause()
			}
		}
		vc.state = VCReady
		c.finishFail(res, res.Reason, done)
		return
	}

	// Write the set to shared storage (fair-share bandwidth).
	storeStart := k.Now()
	var storeBytes int64
	for _, img := range res.Images {
		storeBytes += img.SizeBytes()
	}
	storeSpan := c.tr().Begin(storeStart, obs.EvLSCStore, "", vc.spec.Name, "store",
		obs.Int("images", int64(len(res.Images))), obs.Int("bytes", storeBytes))
	writes := len(res.Images)
	for _, img := range res.Images {
		img := img
		key := imageKey(vc.spec.Name, res.Generation, img.DomainName)
		onWritten := func() {
			writes--
			if writes == 0 {
				res.StoreTime = k.Now() - storeStart
				c.tr().End(k.Now(), storeSpan)
				c.afterStored(vc, res, firstPause, done)
			}
		}
		if c.cfg.Delta {
			info, err := c.mgr.store.WriteDelta(key, img, onWritten)
			if err != nil {
				c.finishFail(res, err.Error(), done)
				return
			}
			res.LogicalBytes += info.Logical
			res.SentBytes += info.Sent
			res.DedupChunks += info.DedupChunks
			continue
		}
		c.mgr.store.Write(key, img, onWritten)
	}
}

func (c *Coordinator) afterStored(vc *VirtualCluster, res *CheckpointResult, firstPause sim.Time, done func(*CheckpointResult)) {
	k := c.mgr.kernel
	if c.cfg.ContinueAfterSave && res.targets == nil {
		// Resume in place with the same skew model (the resume command
		// fans out the same way the save did).
		c.resumeAll(vc, func() {
			res.Downtime = k.Now() - firstPause
			c.finishOK(vc, res, done)
		})
		return
	}
	// Xen-2007 cycle: save destroys the domains; restore from images on
	// the same placement (or the migration targets).
	placement := res.targets
	if placement == nil {
		placement = append([]*phys.Node(nil), vc.nodes...)
	}
	for _, d := range vc.domains {
		d.Destroy()
	}
	vc.state = VCSaved
	c.RestoreVC(vc, res.Generation, placement, func(rr *RestoreResult) {
		res.Downtime = k.Now() - firstPause
		if !rr.OK {
			c.finishFail(res, "restore: "+rr.Reason, done)
			return
		}
		c.finishOK(vc, res, done)
	})
}

// resumeAll unpauses every paused domain using the mode's dispatch skew.
func (c *Coordinator) resumeAll(vc *VirtualCluster, then func()) {
	k := c.mgr.kernel
	plan := c.resumePlan(vc)
	remaining := 0
	for _, t := range plan {
		if t >= 0 {
			remaining++
		}
	}
	if remaining == 0 {
		then()
		return
	}
	for i, t := range plan {
		if t < 0 {
			continue
		}
		d := vc.domains[i]
		k.At(t, func() {
			if d.State() == vm.StatePaused {
				_ = d.Unpause()
			}
			remaining--
			if remaining == 0 {
				vc.state = VCReady
				then()
			}
		})
	}
}

// pausePlanNoFailure is the dispatch plan without sleeper failures
// (resume commands are issued by the live coordinator, not by sleeping
// processes).
func (c *Coordinator) pausePlanNoFailure(vc *VirtualCluster) []sim.Time {
	saved := c.cfg.SleeperFailProb
	c.cfg.SleeperFailProb = 0
	plan := c.pausePlan(vc)
	c.cfg.SleeperFailProb = saved
	return plan
}

// resumePlan schedules the unpause fan-out. Unlike the save, a resume
// needs no future scheduling: the coordinator pushes unpause commands
// directly. Under the NTP coordinator that is a parallel management-RPC
// fan-out (milliseconds of jitter); the naive coordinator still pays its
// serial terminal dispatch — which is why its restores are as fragile as
// its saves.
func (c *Coordinator) resumePlan(vc *VirtualCluster) []sim.Time {
	k := c.mgr.kernel
	rng := k.Rand()
	times := make([]sim.Time, len(vc.domains))
	if c.cfg.Mode == LSCNaive {
		return c.pausePlanNoFailure(vc)
	}
	for i := range times {
		rpc := 2*sim.Millisecond + sim.LogNormal(rng, c.cfg.TimerJitterMed, c.cfg.TimerJitterSigma)
		times[i] = k.Now() + rpc
	}
	return times
}

// RestoreVC restores a saved generation of a VC onto the given placement
// and resumes it. The VC object is rebound to the new domains.
func (c *Coordinator) RestoreVC(vc *VirtualCluster, gen int, placement []*phys.Node, done func(*RestoreResult)) {
	k := c.mgr.kernel
	res := &RestoreResult{VC: vc.spec.Name, Generation: gen}
	// The whole staged restore is one lsc.restore span; closing it in a
	// wrapped callback covers every exit path below.
	span := c.tr().Begin(k.Now(), obs.EvLSCRestore, "", vc.spec.Name, "restore",
		obs.Int("gen", int64(gen)))
	if tr := c.tr(); tr != nil {
		inner := done
		done = func(rr *RestoreResult) {
			outcome := "ok"
			if !rr.OK {
				outcome = "fail"
			}
			tr.End(k.Now(), span, obs.Str("outcome", outcome), obs.Dur("stage", rr.StageTime))
			inner(rr)
		}
	}
	if len(placement) != vc.spec.Nodes {
		res.Reason = fmt.Sprintf("placement has %d nodes, want %d", len(placement), vc.spec.Nodes)
		res.FinishedAt = k.Now()
		done(res)
		return
	}
	stageStart := k.Now()
	images := make([]*vm.Image, vc.spec.Nodes)
	reads := vc.spec.Nodes
	failed := false
	for i := 0; i < vc.spec.Nodes; i++ {
		i := i
		name := fmt.Sprintf("%s-vm%02d", vc.spec.Name, i)
		// Incremental generations restore from a chain: the full base
		// plus every increment up to gen. Each element is staged
		// (charged); the newest image carries the functional state.
		chain := c.chainKeys(vc.spec.Name, gen, name)
		pending := len(chain)
		for _, key := range chain {
			key := key
			c.mgr.store.Read(key, func(img *vm.Image, err error) {
				if err != nil && !failed {
					failed = true
					res.Reason = err.Error()
				}
				if key == chain[len(chain)-1] {
					images[i] = img
				}
				pending--
				if pending != 0 {
					return
				}
				reads--
				if reads == 0 {
					res.StageTime = k.Now() - stageStart
					if failed {
						res.FinishedAt = k.Now()
						done(res)
						return
					}
					c.materialize(vc, images, placement, res, done)
				}
			})
		}
	}
}

// chainKeys lists the storage keys needed to restore generation gen of
// one domain: walking back from gen through incremental images to the
// most recent full base. Delta objects (non-nil store manifest) are
// self-contained — the walk stops at them immediately, so a delta
// restore stages exactly one image.
func (c *Coordinator) chainKeys(vcName string, gen int, domain string) []string {
	base := gen
	for base > 0 {
		obj, ok := c.mgr.store.Stat(imageKey(vcName, base, domain))
		if !ok || !obj.Image.Incremental || obj.Manifest != nil {
			break
		}
		base--
	}
	keys := make([]string, 0, gen-base+1)
	for g := base; g <= gen; g++ {
		keys = append(keys, imageKey(vcName, g, domain))
	}
	return keys
}

func (c *Coordinator) materialize(vc *VirtualCluster, images []*vm.Image, placement []*phys.Node, res *RestoreResult, done func(*RestoreResult)) {
	k := c.mgr.kernel
	newDomains := make([]*vm.Domain, len(images))
	for i, img := range images {
		h := c.mgr.hvs[placement[i].ID()]
		d, err := h.RestoreDomain(img, nil)
		if err != nil {
			res.Reason = err.Error()
			res.FinishedAt = k.Now()
			// Roll back the ones we created.
			for _, nd := range newDomains {
				if nd != nil {
					nd.Destroy()
				}
			}
			done(res)
			return
		}
		newDomains[i] = d
	}
	vc.domains = newDomains
	vc.nodes = append([]*phys.Node(nil), placement...)
	vc.state = VCPaused
	c.resumeAll(vc, func() {
		res.OK = true
		res.FinishedAt = k.Now()
		done(res)
	})
}

func (c *Coordinator) finishOK(vc *VirtualCluster, res *CheckpointResult, done func(*CheckpointResult)) {
	res.OK = true
	res.FinishedAt = c.mgr.kernel.Now()
	if tr := c.tr(); tr != nil {
		now := c.mgr.kernel.Now()
		tr.Emit(now, obs.EvLSCCommit, "", res.VC, "commit", obs.Int("gen", int64(res.Generation)))
		tr.End(now, res.span, obs.Str("outcome", "commit"),
			obs.Dur("skew", res.SaveSkew), obs.Dur("downtime", res.Downtime))
		tr.Inc("lsc.commits", 1)
		tr.Observe("lsc.save_skew_ms", float64(res.SaveSkew)/1e6)
		tr.Observe("lsc.downtime_ms", float64(res.Downtime)/1e6)
	}
	done(res)
}

func (c *Coordinator) finishFail(res *CheckpointResult, reason string, done func(*CheckpointResult)) {
	c.FailCount++
	res.OK = false
	if res.Reason == "" {
		res.Reason = reason
	} else if reason != res.Reason {
		res.Reason = reason
	}
	res.FinishedAt = c.mgr.kernel.Now()
	if tr := c.tr(); tr != nil {
		now := c.mgr.kernel.Now()
		tr.Emit(now, obs.EvLSCAbort, "", res.VC, "abort", obs.Str("reason", res.Reason))
		tr.End(now, res.span, obs.Str("outcome", "abort"), obs.Str("reason", res.Reason))
		tr.Inc("lsc.aborts", 1)
	}
	done(res)
}

// InspectImages checks a captured set for consistency damage: any TCP
// connection that reset, or any process that exited with an error,
// before the snapshot was taken. A clean bill here is the paper's "no
// failures to either save or restore".
func InspectImages(images []*vm.Image) error {
	for _, img := range images {
		snap, err := guest.DecodeImagePayload(img.Data)
		if err != nil {
			return fmt.Errorf("inspect %s: %w", img.DomainName, err)
		}
		for _, cs := range snap.Stack.Conns {
			if cs.State == tcp.StateReset {
				return fmt.Errorf("inspect %s: connection %v reset before snapshot", img.DomainName, cs.Key)
			}
		}
		for _, ps := range snap.Procs {
			if ps.Exited && ps.ExitCode != 0 {
				return fmt.Errorf("inspect %s: pid %d exited %d before snapshot", img.DomainName, ps.PID, ps.ExitCode)
			}
		}
	}
	return nil
}
