package core

import (
	"testing"

	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/mpi"
	"dvc/internal/netsim"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/storage"
	"dvc/internal/vm"
)

const testVMRAM = 256 << 20

type testbed struct {
	k     *sim.Kernel
	site  *phys.Site
	store *storage.Store
	mgr   *Manager
	co    *Coordinator
}

func newTestbed(t *testing.T, seed int64, clusters map[string]int, lsc LSCConfig) *testbed {
	t.Helper()
	k := sim.NewKernel(seed)
	site := phys.DefaultSite(k)
	// Deterministic cluster creation order.
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if n, ok := clusters[name]; ok {
			site.AddCluster(name, n, phys.DefaultSpec(), netsim.EthernetGigE())
		}
	}
	site.NTP.Start()
	store := storage.New(k, storage.DefaultConfig())
	mgr := NewManager(k, site, store, vm.DefaultXenConfig())
	return &testbed{k: k, site: site, store: store, mgr: mgr, co: NewCoordinator(mgr, lsc)}
}

// allocate boots a VC and runs until it is ready.
func (tb *testbed) allocate(t *testing.T, name string, nodes int, wd guest.WatchdogConfig) *VirtualCluster {
	t.Helper()
	vc, err := tb.mgr.Allocate(VCSpec{Name: name, Nodes: nodes, VMRAM: testVMRAM, Watchdog: wd}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.k.RunFor(vm.DefaultXenConfig().BootTime + sim.Second)
	if vc.State() != VCReady {
		t.Fatalf("VC state %v after boot window", vc.State())
	}
	return vc
}

// runJob drives the sim until the VC's job finishes (or the limit hits).
func (tb *testbed) runJob(t *testing.T, vc *VirtualCluster, limit sim.Time) JobStatus {
	t.Helper()
	deadline := tb.k.Now() + limit
	for tb.k.Now() < deadline {
		js := vc.JobStatus()
		if js.Done() && vc.State() == VCReady {
			return js
		}
		tb.k.RunFor(sim.Second)
	}
	return vc.JobStatus()
}

func TestAllocateBootsVirtualCluster(t *testing.T) {
	tb := newTestbed(t, 1, map[string]int{"alpha": 4}, DefaultNTPLSC())
	vc := tb.allocate(t, "job1", 4, guest.WatchdogConfig{})
	if len(vc.Domains()) != 4 {
		t.Fatalf("%d domains", len(vc.Domains()))
	}
	for i, d := range vc.Domains() {
		if d.State() != vm.StateRunning {
			t.Fatalf("domain %d state %v", i, d.State())
		}
		if d.Addr() != vc.DomainAddr(i) {
			t.Fatalf("domain %d addr %s", i, d.Addr())
		}
	}
	if vc.SpansClusters() {
		t.Fatal("4 VMs on an 4-node cluster should not span")
	}
}

func TestAllocateSpansClustersWhenNeeded(t *testing.T) {
	tb := newTestbed(t, 2, map[string]int{"alpha": 3, "beta": 3}, DefaultNTPLSC())
	vc := tb.allocate(t, "wide", 5, guest.WatchdogConfig{})
	if !vc.SpansClusters() {
		t.Fatal("5-node VC over two 3-node clusters must span")
	}
}

func TestPlaceFailsWhenInsufficient(t *testing.T) {
	tb := newTestbed(t, 3, map[string]int{"alpha": 2}, DefaultNTPLSC())
	if _, err := tb.mgr.Place(VCSpec{Name: "big", Nodes: 5, VMRAM: testVMRAM}); err == nil {
		t.Fatal("impossible placement accepted")
	}
}

func TestDuplicateVCNameRejected(t *testing.T) {
	tb := newTestbed(t, 4, map[string]int{"alpha": 4}, DefaultNTPLSC())
	tb.allocate(t, "dup", 2, guest.WatchdogConfig{})
	if _, err := tb.mgr.Allocate(VCSpec{Name: "dup", Nodes: 1, VMRAM: testVMRAM}, nil); err == nil {
		t.Fatal("duplicate VC name accepted")
	}
}

func TestPTRANSRunsOnVirtualCluster(t *testing.T) {
	tb := newTestbed(t, 5, map[string]int{"alpha": 4}, DefaultNTPLSC())
	vc := tb.allocate(t, "pt", 4, guest.WatchdogConfig{})
	if _, err := vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewPTRANS(24, 99, 3, 10) }); err != nil {
		t.Fatal(err)
	}
	js := tb.runJob(t, vc, 10*sim.Minute)
	if !js.AllOK() {
		t.Fatalf("job status %+v", js)
	}
	for r, app := range vc.RankApps() {
		pt := app.(*hpcc.PTRANS)
		if !pt.Passed {
			t.Fatalf("rank %d verification failed (maxerr %g)", r, pt.MaxErr)
		}
	}
}

func TestNTPCheckpointCycleIsTransparent(t *testing.T) {
	tb := newTestbed(t, 6, map[string]int{"alpha": 4}, DefaultNTPLSC())
	vc := tb.allocate(t, "ck", 4, guest.WatchdogConfig{})
	// A long-running PTRANS so the checkpoint lands mid-flight.
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewPTRANS(32, 7, 400, 10) })
	tb.k.RunFor(2 * sim.Second) // app is mid-run and communicating

	var res *CheckpointResult
	if err := tb.co.Checkpoint(vc, func(r *CheckpointResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	tb.k.RunFor(5 * sim.Minute)
	if res == nil {
		t.Fatal("checkpoint never completed")
	}
	if !res.OK {
		t.Fatalf("checkpoint failed: %s", res.Reason)
	}
	if res.SaveSkew > 50*sim.Millisecond {
		t.Fatalf("NTP save skew %v, want ms-scale", res.SaveSkew)
	}
	if err := InspectImages(res.Images); err != nil {
		t.Fatalf("images damaged: %v", err)
	}
	if res.Downtime <= 0 || res.StoreTime <= 0 {
		t.Fatalf("timings not recorded: %+v", res)
	}
	// The application survives the save/restore cycle and verifies.
	js := tb.runJob(t, vc, 30*sim.Minute)
	if !js.AllOK() {
		t.Fatalf("job after checkpoint: %+v", js)
	}
	for r, app := range vc.RankApps() {
		if !app.(*hpcc.PTRANS).Passed {
			t.Fatalf("rank %d failed verification after restore", r)
		}
	}
}

func TestNaiveCheckpointSmallClusterUsuallyWorks(t *testing.T) {
	tb := newTestbed(t, 7, map[string]int{"alpha": 4}, DefaultNaiveLSC())
	vc := tb.allocate(t, "nv", 4, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewPTRANS(32, 7, 400, 10) })
	tb.k.RunFor(2 * sim.Second)
	var res *CheckpointResult
	tb.co.Checkpoint(vc, func(r *CheckpointResult) { res = r })
	tb.k.RunFor(5 * sim.Minute)
	if res == nil || !res.OK {
		t.Fatalf("naive checkpoint of 4 nodes failed: %+v", res)
	}
	if res.SaveSkew < 500*sim.Millisecond {
		t.Fatalf("naive skew %v suspiciously small", res.SaveSkew)
	}
	js := tb.runJob(t, vc, 30*sim.Minute)
	if !js.AllOK() {
		t.Fatalf("job after naive 4-node checkpoint: %+v", js)
	}
}

func TestNaiveCheckpointTwelveNodesKillsJob(t *testing.T) {
	// At 12 nodes the serial dispatch skew exceeds the TCP retry budget
	// and some rank's connection resets (§3.1: ~90% failure).
	failures := 0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		tb := newTestbed(t, 100+int64(trial), map[string]int{"alpha": 12}, DefaultNaiveLSC())
		vc := tb.allocate(t, "nv12", 12, guest.WatchdogConfig{})
		// A steadily communicating workload (like E1): every rank keeps
		// unacknowledged data toward its neighbours through the whole
		// save window, so skew beyond the retry budget is always fatal.
		vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(2000, 20*sim.Millisecond, 4096) })
		tb.k.RunFor(2 * sim.Second)
		var res *CheckpointResult
		tb.co.Checkpoint(vc, func(r *CheckpointResult) { res = r })
		tb.k.RunFor(10 * sim.Minute)
		if res == nil {
			t.Fatal("checkpoint never completed")
		}
		js := tb.runJob(t, vc, time60())
		if !js.AllOK() || InspectImages(res.Images) != nil {
			failures++
		}
	}
	if failures < trials/2 {
		t.Fatalf("only %d/%d naive 12-node checkpoints failed; expected most", failures, trials)
	}
}

func time60() sim.Time { return 60 * sim.Minute }

func TestSleeperDeathWithoutHealthCheckFails(t *testing.T) {
	cfg := DefaultNTPLSC()
	cfg.SleeperFailProb = 1.0
	tb := newTestbed(t, 8, map[string]int{"alpha": 3}, cfg)
	vc := tb.allocate(t, "sd", 3, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewPTRANS(24, 7, 1000, 10) })
	tb.k.RunFor(sim.Second)
	var res *CheckpointResult
	tb.co.Checkpoint(vc, func(r *CheckpointResult) { res = r })
	tb.k.RunFor(2 * sim.Minute)
	if res == nil || res.OK {
		t.Fatalf("checkpoint with all sleepers dead should fail: %+v", res)
	}
	if tb.co.FailCount != 1 {
		t.Fatalf("FailCount = %d", tb.co.FailCount)
	}
}

func TestHealthCheckSurvivesSleeperDeath(t *testing.T) {
	cfg := DefaultNTPLSC()
	cfg.SleeperFailProb = 0.4
	cfg.HealthCheck = true
	cfg.HealthRetries = 50
	tb := newTestbed(t, 9, map[string]int{"alpha": 6}, cfg)
	vc := tb.allocate(t, "hc", 6, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewPTRANS(24, 7, 3000, 10) })
	tb.k.RunFor(sim.Second)
	var res *CheckpointResult
	tb.co.Checkpoint(vc, func(r *CheckpointResult) { res = r })
	tb.k.RunFor(10 * sim.Minute)
	if res == nil || !res.OK {
		t.Fatalf("health-checked checkpoint failed: %+v", res)
	}
	if res.Attempts < 2 {
		t.Fatalf("expected retries with 40%% sleeper death over 6 nodes, got %d attempts", res.Attempts)
	}
}

func TestMigrateToAnotherCluster(t *testing.T) {
	tb := newTestbed(t, 10, map[string]int{"alpha": 3, "beta": 3}, DefaultNTPLSC())
	vc, err := tb.mgr.Allocate(VCSpec{Name: "mig", Nodes: 3, VMRAM: testVMRAM, Clusters: []string{"alpha"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.k.RunFor(30 * sim.Second)
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewPTRANS(24, 7, 500, 10) })
	tb.k.RunFor(2 * sim.Second)

	targets := tb.site.UpNodes("beta")
	var res *CheckpointResult
	if err := tb.co.Migrate(vc, targets, func(r *CheckpointResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	tb.k.RunFor(10 * sim.Minute)
	if res == nil || !res.OK {
		t.Fatalf("migration failed: %+v", res)
	}
	for _, n := range vc.PhysicalNodes() {
		if n.Cluster() != "beta" {
			t.Fatalf("VC still on %s after migration", n.Cluster())
		}
	}
	js := tb.runJob(t, vc, 30*sim.Minute)
	if !js.AllOK() {
		t.Fatalf("job after migration: %+v", js)
	}
	for r, app := range vc.RankApps() {
		if !app.(*hpcc.PTRANS).Passed {
			t.Fatalf("rank %d failed verification after migration", r)
		}
	}
}

func TestCrashRecoveryFromCheckpoint(t *testing.T) {
	cfg := DefaultNTPLSC()
	cfg.ContinueAfterSave = true
	tb := newTestbed(t, 11, map[string]int{"alpha": 6}, cfg)
	vc := tb.allocate(t, "cr", 3, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewPTRANS(24, 7, 800, 10) })
	tb.k.RunFor(2 * sim.Second)

	// Take a checkpoint-and-continue.
	var ck *CheckpointResult
	tb.co.Checkpoint(vc, func(r *CheckpointResult) { ck = r })
	tb.k.RunFor(3 * sim.Minute)
	if ck == nil || !ck.OK {
		t.Fatalf("checkpoint: %+v", ck)
	}

	// A hosting node dies mid-run.
	crashed := vc.PhysicalNodes()[1]
	crashed.Fail()
	tb.k.RunFor(5 * sim.Second)
	if vc.JobStatus().Failed == 0 && vc.Domains()[1].State() != vm.StateDestroyed {
		t.Fatal("crash had no effect")
	}

	// DVC recovery: tear down the remnants, restore the checkpoint on
	// fresh nodes ("restart a checkpoint of the entire virtual cluster
	// on a different set of physical nodes").
	vc.Teardown()
	var fresh []*phys.Node
	for _, n := range tb.site.UpNodes("alpha") {
		if h, _ := tb.mgr.Hypervisor(n.ID()); h.FreeRAM() >= testVMRAM {
			fresh = append(fresh, n)
		}
	}
	if len(fresh) < 3 {
		t.Fatalf("only %d fresh nodes", len(fresh))
	}
	var rr *RestoreResult
	tb.co.RestoreVC(vc, ck.Generation, fresh[:3], func(r *RestoreResult) { rr = r })
	tb.k.RunFor(5 * sim.Minute)
	if rr == nil || !rr.OK {
		t.Fatalf("restore: %+v", rr)
	}
	js := tb.runJob(t, vc, 30*sim.Minute)
	if !js.AllOK() {
		t.Fatalf("job after crash recovery: %+v", js)
	}
	for r, app := range vc.RankApps() {
		if !app.(*hpcc.PTRANS).Passed {
			t.Fatalf("rank %d failed verification after crash recovery", r)
		}
	}
}

func TestWallClockJumpVisibleToApplication(t *testing.T) {
	tb := newTestbed(t, 12, map[string]int{"alpha": 2}, DefaultNTPLSC())
	vc := tb.allocate(t, "wc", 2, guest.WatchdogConfig{})
	// A compute rate slow enough that HPL is still mid-factorisation when
	// the checkpoint lands (~7s of per-rank compute for N=160 at 0.2
	// MFlop/s).
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHPL(160, 5, 0.0002) })
	tb.k.RunFor(sim.Second)
	var res *CheckpointResult
	tb.co.Checkpoint(vc, func(r *CheckpointResult) { res = r })
	tb.k.RunFor(5 * sim.Minute)
	if res == nil || !res.OK {
		t.Fatalf("checkpoint: %+v", res)
	}
	js := tb.runJob(t, vc, time60())
	if !js.AllOK() {
		t.Fatalf("hpl after checkpoint: %+v", js)
	}
	h := vc.RankApps()[0].(*hpcc.HPL)
	if !h.Passed {
		t.Fatalf("hpl residual %g", h.Residual)
	}
	// The paper's observation: wall time includes the frozen gap, CPU
	// (jiffies) time does not.
	gap := h.WallTime() - h.CPUTime()
	if gap < res.Downtime/2 {
		t.Fatalf("wall-cpu gap %v does not reflect downtime %v", gap, res.Downtime)
	}
}

func TestWatchdogFiresOncePerCheckpointCycle(t *testing.T) {
	tb := newTestbed(t, 13, map[string]int{"alpha": 2}, DefaultNTPLSC())
	vc := tb.allocate(t, "wd", 2, guest.DefaultWatchdog())
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewPTRANS(24, 7, 4000, 10) })
	tb.k.RunFor(2 * sim.Second)
	for cycle := 1; cycle <= 2; cycle++ {
		var res *CheckpointResult
		tb.co.Checkpoint(vc, func(r *CheckpointResult) { res = r })
		tb.k.RunFor(3 * sim.Minute)
		if res == nil || !res.OK {
			t.Fatalf("cycle %d: %+v", cycle, res)
		}
		tb.k.RunFor(time30())
		for i, o := range vc.OSes() {
			if got := o.WatchdogTimeouts(); got != cycle {
				t.Fatalf("cycle %d: vm %d watchdog timeouts = %d", cycle, i, got)
			}
		}
	}
}

func time30() sim.Time { return 30 * sim.Second }

func TestPeriodicCheckpointing(t *testing.T) {
	cfg := DefaultNTPLSC()
	cfg.ContinueAfterSave = true
	tb := newTestbed(t, 14, map[string]int{"alpha": 3}, cfg)
	vc := tb.allocate(t, "per", 3, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewPTRANS(32, 7, 15000, 10) })
	p := tb.co.StartPeriodic(vc, 2*sim.Second, nil)
	js := tb.runJob(t, vc, time60())
	p.Stop()
	if !js.AllOK() {
		t.Fatalf("job under periodic checkpointing: %+v", js)
	}
	if p.SucceededCount() < 2 {
		t.Fatalf("only %d periodic checkpoints succeeded", p.SucceededCount())
	}
	if p.SucceededCount() != len(p.Results) {
		t.Fatalf("some periodic checkpoints failed: %d/%d", p.SucceededCount(), len(p.Results))
	}
}

func TestVCStateStrings(t *testing.T) {
	for s, want := range map[VCState]string{
		VCAllocating: "Allocating", VCReady: "Ready", VCPaused: "Paused",
		VCSaved: "Saved", VCFailed: "Failed", VCReleased: "Released",
	} {
		if s.String() != want {
			t.Fatalf("%d -> %q", int(s), s.String())
		}
	}
	if LSCNaive.String() != "naive" || LSCNTP.String() != "ntp" {
		t.Fatal("LSC mode strings")
	}
}
