// Package core implements Dynamic Virtual Clustering — the paper's
// primary contribution: per-job virtual clusters of Xen domains mapped
// onto (and across) physical clusters, plus Lazy Synchronous
// Checkpointing (LSC), the coordinated whole-cluster save that gives
// completely transparent parallel checkpoint/restart.
package core

import (
	"fmt"
	"sort"

	"dvc/internal/guest"
	"dvc/internal/mpi"
	"dvc/internal/netsim"
	"dvc/internal/obs"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/storage"
	"dvc/internal/tcp"
	"dvc/internal/vm"
)

// VCState is a virtual cluster's lifecycle state.
type VCState int

// Virtual cluster states.
const (
	VCAllocating VCState = iota
	VCReady
	VCPaused
	VCSaved
	VCFailed
	VCReleased
)

func (s VCState) String() string {
	switch s {
	case VCAllocating:
		return "Allocating"
	case VCReady:
		return "Ready"
	case VCPaused:
		return "Paused"
	case VCSaved:
		return "Saved"
	case VCFailed:
		return "Failed"
	case VCReleased:
		return "Released"
	default:
		return fmt.Sprintf("VCState(%d)", int(s))
	}
}

// VCSpec describes the virtual cluster a job wants: DVC's first goal is
// that this is independent of any physical cluster's software stack.
type VCSpec struct {
	Name  string
	Nodes int
	VMRAM int64
	// Clusters lists candidate physical clusters in preference order;
	// empty means any. A VC spans clusters when no single one has
	// enough free nodes (paper goal 3).
	Clusters []string
	// Watchdog configures the guest software watchdog.
	Watchdog guest.WatchdogConfig
}

// VirtualCluster is a set of domains acting as one cluster for a job.
type VirtualCluster struct {
	mgr   *Manager
	spec  VCSpec
	state VCState

	domains []*vm.Domain
	nodes   []*phys.Node
	nextGen int
}

// Name returns the VC's name.
func (vc *VirtualCluster) Name() string { return vc.spec.Name }

// Spec returns the VC's specification.
func (vc *VirtualCluster) Spec() VCSpec { return vc.spec }

// State returns the VC's state.
func (vc *VirtualCluster) State() VCState { return vc.state }

// Domains returns the VC's domains indexed by virtual node id.
func (vc *VirtualCluster) Domains() []*vm.Domain { return vc.domains }

// PhysicalNodes returns the current placement.
func (vc *VirtualCluster) PhysicalNodes() []*phys.Node { return vc.nodes }

// SpansClusters reports whether the placement crosses physical clusters.
func (vc *VirtualCluster) SpansClusters() bool {
	if len(vc.nodes) == 0 {
		return false
	}
	first := vc.nodes[0].Cluster()
	for _, n := range vc.nodes[1:] {
		if n.Cluster() != first {
			return true
		}
	}
	return false
}

// OSes returns the guest OS of every domain (only valid when Ready).
func (vc *VirtualCluster) OSes() []*guest.OS {
	out := make([]*guest.OS, len(vc.domains))
	for i, d := range vc.domains {
		out[i] = d.OS()
	}
	return out
}

// DomainAddr returns the stable address of virtual node i.
func (vc *VirtualCluster) DomainAddr(i int) netsim.Addr {
	return netsim.Addr(fmt.Sprintf("%s-vm%02d", vc.spec.Name, i))
}

// Teardown destroys all domains but keeps the VC registered, so a saved
// generation can be restored onto fresh nodes (failure recovery).
func (vc *VirtualCluster) Teardown() {
	for _, d := range vc.domains {
		d.Destroy()
	}
	vc.state = VCSaved
}

// Release destroys all domains and frees the placement.
func (vc *VirtualCluster) Release() {
	for _, d := range vc.domains {
		d.Destroy()
	}
	vc.state = VCReleased
	delete(vc.mgr.vcs, vc.spec.Name)
}

// JobStatus summarises the processes running across the VC.
type JobStatus struct {
	Running   int
	Succeeded int
	Failed    int
}

// Done reports whether every process has exited.
func (js JobStatus) Done() bool { return js.Running == 0 }

// AllOK reports whether every process exited successfully.
func (js JobStatus) AllOK() bool { return js.Running == 0 && js.Failed == 0 }

// JobStatus inspects the processes on all domains. Destroyed domains
// count as failures.
func (vc *VirtualCluster) JobStatus() JobStatus {
	var js JobStatus
	for _, d := range vc.domains {
		if d.State() == vm.StateDestroyed || d.OS() == nil {
			js.Failed++
			continue
		}
		for _, p := range d.OS().Procs() {
			switch {
			case !p.Exited():
				js.Running++
			case p.ExitCode() == 0:
				js.Succeeded++
			default:
				js.Failed++
			}
		}
	}
	return js
}

// Manager is the DVC control plane for a site: it owns a hypervisor on
// every node and allocates virtual clusters on demand.
type Manager struct {
	kernel *sim.Kernel
	site   *phys.Site
	store  *storage.Store
	xen    vm.XenConfig
	tcpCfg tcp.Config
	tracer *obs.Tracer

	hvs map[string]*vm.Hypervisor
	vcs map[string]*VirtualCluster
}

// NewManager installs DVC across the site.
func NewManager(k *sim.Kernel, site *phys.Site, store *storage.Store, xen vm.XenConfig) *Manager {
	m := &Manager{
		kernel: k,
		site:   site,
		store:  store,
		xen:    xen,
		tcpCfg: tcp.DefaultConfig(),
		hvs:    make(map[string]*vm.Hypervisor),
		vcs:    make(map[string]*VirtualCluster),
	}
	for _, n := range site.Nodes() {
		m.hvs[n.ID()] = vm.NewHypervisor(k, site.Fabric, n, xen)
	}
	return m
}

// AdoptNodes installs hypervisors on any site nodes added after the
// manager was created.
func (m *Manager) AdoptNodes() {
	for _, n := range m.site.Nodes() {
		if _, ok := m.hvs[n.ID()]; !ok {
			h := vm.NewHypervisor(m.kernel, m.site.Fabric, n, m.xen)
			h.SetTCPConfig(m.tcpCfg)
			h.SetTracer(m.tracer)
			m.hvs[n.ID()] = h
		}
	}
}

// SetTracer attaches an observability tracer (nil disables tracing) and
// propagates it to every hypervisor and to the site fabric. Like
// SetTCPConfig, the fan-out walks hypervisors in sorted node-ID order so
// nothing observable depends on map order (dvclint: mapiter).
func (m *Manager) SetTracer(t *obs.Tracer) {
	m.tracer = t
	m.site.Fabric.SetTracer(t)
	m.store.SetTracer(t)
	ids := make([]string, 0, len(m.hvs))
	for id := range m.hvs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m.hvs[id].SetTracer(t)
	}
}

// Tracer returns the attached tracer (nil when tracing is off).
func (m *Manager) Tracer() *obs.Tracer { return m.tracer }

// SetTCPConfig overrides guest transport configuration (experiments use
// this to shrink retry budgets). Hypervisors are updated in sorted
// node-ID order: the call reaches into guest transport stacks, and
// applying it in randomized map order would leak that order into any
// side effects (dvclint: mapiter).
func (m *Manager) SetTCPConfig(cfg tcp.Config) {
	m.tcpCfg = cfg
	ids := make([]string, 0, len(m.hvs))
	for id := range m.hvs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m.hvs[id].SetTCPConfig(cfg)
	}
}

// Kernel returns the simulation kernel.
func (m *Manager) Kernel() *sim.Kernel { return m.kernel }

// Site returns the physical site.
func (m *Manager) Site() *phys.Site { return m.site }

// Store returns the checkpoint store.
func (m *Manager) Store() *storage.Store { return m.store }

// Hypervisor returns the hypervisor on a node.
func (m *Manager) Hypervisor(nodeID string) (*vm.Hypervisor, bool) {
	h, ok := m.hvs[nodeID]
	return h, ok
}

// VC looks up a virtual cluster by name.
func (m *Manager) VC(name string) (*VirtualCluster, bool) {
	vc, ok := m.vcs[name]
	return vc, ok
}

// freeNodes returns up nodes in the given cluster (any if empty) that
// have room for a VM of ramBytes, excluding already-claimed node ids.
func (m *Manager) freeNodes(cluster string, ramBytes int64, claimed map[string]bool) []*phys.Node {
	var out []*phys.Node
	for _, n := range m.site.UpNodes(cluster) {
		if claimed[n.ID()] {
			continue
		}
		if h := m.hvs[n.ID()]; h != nil && h.FreeRAM() >= ramBytes {
			out = append(out, n)
		}
	}
	return out
}

// Place chooses physical nodes for a spec without allocating: one VM per
// node, preferring a single cluster, spanning clusters only when
// necessary. This is the fault-masking the paper notes: any healthy
// subset of nodes can host the VC.
func (m *Manager) Place(spec VCSpec) ([]*phys.Node, error) {
	clusters := spec.Clusters
	if len(clusters) == 0 {
		clusters = m.site.ClusterNames()
	}
	// Single-cluster fit first, in preference order.
	for _, cname := range clusters {
		nodes := m.freeNodes(cname, spec.VMRAM, nil)
		if len(nodes) >= spec.Nodes {
			return nodes[:spec.Nodes], nil
		}
	}
	// Span: take nodes cluster by cluster.
	claimed := make(map[string]bool)
	var placement []*phys.Node
	for _, cname := range clusters {
		for _, n := range m.freeNodes(cname, spec.VMRAM, claimed) {
			placement = append(placement, n)
			claimed[n.ID()] = true
			if len(placement) == spec.Nodes {
				return placement, nil
			}
		}
	}
	return nil, fmt.Errorf("dvc: %s: need %d nodes, only %d available", spec.Name, spec.Nodes, len(placement))
}

// Allocate places and boots a virtual cluster; onReady fires when every
// domain's guest OS is up.
func (m *Manager) Allocate(spec VCSpec, onReady func(*VirtualCluster)) (*VirtualCluster, error) {
	return m.AllocateOn(spec, nil, onReady)
}

// AllocateOn is Allocate with an explicit placement (nil = choose).
func (m *Manager) AllocateOn(spec VCSpec, placement []*phys.Node, onReady func(*VirtualCluster)) (*VirtualCluster, error) {
	if _, dup := m.vcs[spec.Name]; dup {
		return nil, fmt.Errorf("dvc: duplicate virtual cluster %q", spec.Name)
	}
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("dvc: %s: invalid node count %d", spec.Name, spec.Nodes)
	}
	if placement == nil {
		var err error
		placement, err = m.Place(spec)
		if err != nil {
			return nil, err
		}
	}
	if len(placement) != spec.Nodes {
		return nil, fmt.Errorf("dvc: %s: placement has %d nodes, want %d", spec.Name, len(placement), spec.Nodes)
	}
	vc := &VirtualCluster{mgr: m, spec: spec, state: VCAllocating, nodes: placement}
	m.vcs[spec.Name] = vc
	booting := spec.Nodes
	for i, node := range placement {
		h := m.hvs[node.ID()]
		name := fmt.Sprintf("%s-vm%02d", spec.Name, i)
		d, err := h.CreateDomain(name, vc.DomainAddr(i), spec.VMRAM, spec.Watchdog, func(*vm.Domain) {
			booting--
			if booting == 0 && vc.state == VCAllocating {
				vc.state = VCReady
				if onReady != nil {
					onReady(vc)
				}
			}
		})
		if err != nil {
			vc.Release()
			return nil, fmt.Errorf("dvc: %s: %w", spec.Name, err)
		}
		vc.domains = append(vc.domains, d)
	}
	return vc, nil
}

// LaunchMPI starts an MPI application across the VC, one rank per domain.
func (vc *VirtualCluster) LaunchMPI(basePort uint16, makeApp func(rank int) mpi.App) ([]guest.PID, error) {
	if vc.state != VCReady {
		return nil, fmt.Errorf("dvc: %s: launch on %v cluster", vc.spec.Name, vc.state)
	}
	return mpi.Launch(vc.OSes(), basePort, makeApp), nil
}

// RankApps returns each rank's application (for result inspection).
func (vc *VirtualCluster) RankApps() []mpi.App {
	var out []mpi.App
	for _, d := range vc.domains {
		if d.OS() == nil {
			out = append(out, nil)
			continue
		}
		found := false
		for _, p := range d.OS().Procs() {
			if drv, ok := p.Program().(*mpi.Driver); ok {
				out = append(out, drv.App)
				found = true
				break
			}
		}
		if !found {
			out = append(out, nil)
		}
	}
	return out
}

// NodeIDs returns the sorted node IDs of a placement (handy for logs and
// deterministic test output).
func NodeIDs(nodes []*phys.Node) []string {
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID()
	}
	sort.Strings(ids)
	return ids
}
