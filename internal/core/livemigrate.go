package core

import (
	"fmt"

	"dvc/internal/obs"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/vm"
)

// Live (pre-copy) migration: the stop-and-copy migration the paper's LSC
// gives for free has downtime proportional to total VM memory. Pre-copy
// (Clark et al., NSDI'05-style) transfers memory while the guests keep
// running, re-copying what they re-dirty, and only pauses the cluster for
// the final residual — the natural next step after the paper's §4
// "extending LSC to enable parallel migration".
//
// The twist DVC adds over single-VM live migration is that the *final
// stop* must still be LSC-coordinated across every VM of the virtual
// cluster, because it is a network-wide cut.

// LiveConfig tunes pre-copy.
type LiveConfig struct {
	// MaxRounds bounds the pre-copy iterations per domain.
	MaxRounds int
	// StopThreshold: pause once the residual dirty set is below this.
	StopThreshold int64
	// Delta makes the first pre-copy round WAN-aware: RAM chunks the
	// page table has never seen dirtied (golden-image template and
	// zeroed memory, present at or derivable by any site) are skipped
	// instead of copied, and the final capture is a delta image so the
	// restored domain keeps its chunk lineage. A fully-dirtied guest
	// skips nothing — the optimisation decays honestly to standard
	// pre-copy.
	Delta bool
}

// DefaultLiveConfig matches common hypervisor defaults.
func DefaultLiveConfig() LiveConfig {
	return LiveConfig{MaxRounds: 6, StopThreshold: 16 << 20}
}

// LiveMigrationResult reports a pre-copy migration.
type LiveMigrationResult struct {
	VC     string
	OK     bool
	Reason string

	Rounds       int      // worst-case pre-copy rounds across domains
	BytesCopied  int64    // total bytes moved, including re-copies
	BytesSkipped int64    // untouched chunks elided by the delta path
	Downtime     sim.Time // coordinated pause to resume
	TotalTime    sim.Time // start to resume
}

// LiveMigrate moves a running VC onto targets with pre-copy. The VC keeps
// executing during the bulk transfer; only the final residual copy
// happens inside the coordinated pause.
func (c *Coordinator) LiveMigrate(vc *VirtualCluster, targets []*phys.Node, cfg LiveConfig, done func(*LiveMigrationResult)) error {
	if vc.state != VCReady {
		return fmt.Errorf("lsc: live-migrate %s: cluster is %v", vc.spec.Name, vc.state)
	}
	if len(targets) != vc.spec.Nodes {
		return fmt.Errorf("lsc: live-migrate %s: %d targets, want %d", vc.spec.Name, len(targets), vc.spec.Nodes)
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1
	}
	k := c.mgr.kernel
	res := &LiveMigrationResult{VC: vc.spec.Name}
	start := k.Now()
	span := c.tr().Begin(start, obs.EvLiveMigrate, "", vc.spec.Name, "live-migrate",
		obs.Int("domains", int64(vc.spec.Nodes)))
	if tr := c.tr(); tr != nil {
		inner := done
		done = func(r *LiveMigrationResult) {
			outcome := "ok"
			if !r.OK {
				outcome = "fail"
			}
			tr.End(k.Now(), span, obs.Str("outcome", outcome),
				obs.Int("rounds", int64(r.Rounds)), obs.Int("bytes", r.BytesCopied),
				obs.Dur("downtime", r.Downtime))
			tr.Inc("live.migrations", 1)
			tr.Observe("live.downtime_ms", float64(r.Downtime)/1e6)
			inner(r)
		}
	}

	states := make([]*liveDomState, len(vc.domains))
	fabric := c.mgr.site.Fabric
	for i, d := range vc.domains {
		bw := fabric.ClusterBandwidth(d.Node().Cluster(), targets[i].Cluster())
		if bw <= 0 {
			return fmt.Errorf("lsc: live-migrate %s: no path bandwidth", vc.spec.Name)
		}
		states[i] = &liveDomState{d: d, bw: bw}
	}

	remaining := len(states)
	var afterPreCopy func()

	// Per-domain pre-copy loop: copy the current dirty set while the
	// guest runs; what it re-dirties during the copy becomes the next
	// round.
	var runRound func(s *liveDomState, toCopy int64)
	runRound = func(s *liveDomState, toCopy int64) {
		s.rounds++
		copyTime := sim.Time(float64(toCopy) / s.bw * float64(sim.Second))
		mark := s.d.MarkClean()
		res.BytesCopied += toCopy
		c.tr().Emit(k.Now(), obs.EvLiveRound, s.d.Node().ID(), s.d.Name(), "pre-copy",
			obs.Int("round", int64(s.rounds)), obs.Int("bytes", toCopy))
		k.After(copyTime, func() {
			if s.d.State() != vm.StateRunning {
				// Crashed or externally paused mid-migration.
				res.Reason = fmt.Sprintf("domain %s became %v during pre-copy", s.d.Name(), s.d.State())
				remaining--
				if remaining == 0 {
					afterPreCopy()
				}
				return
			}
			dirty := s.d.DirtyBytesSince(mark)
			if dirty <= cfg.StopThreshold || s.rounds >= cfg.MaxRounds {
				s.residual = dirty
				s.converged = s.d.MarkClean()
				if s.rounds > res.Rounds {
					res.Rounds = s.rounds
				}
				remaining--
				if remaining == 0 {
					afterPreCopy()
				}
				return
			}
			runRound(s, dirty)
		})
	}

	afterPreCopy = func() {
		if res.Reason != "" {
			res.OK = false
			res.TotalTime = k.Now() - start
			done(res)
			return
		}
		// Coordinated stop (the LSC part): pause everyone, copy each
		// domain's residual (plus whatever it dirtied while waiting for
		// the slowest sibling), restore on the targets, resume.
		plan := c.pausePlanNoFailure(vc)
		var firstPause sim.Time = -1
		left := len(plan)
		for i, t := range plan {
			i := i
			if firstPause < 0 || t < firstPause {
				firstPause = t
			}
			k.At(t, func() {
				_ = vc.domains[i].Pause()
				left--
				if left == 0 {
					residuals := make([]liveResidual, len(states))
					for j, s := range states {
						residuals[j] = liveResidual{bytes: s.residual, bw: s.bw, mark: s.converged}
					}
					c.liveFinal(vc, residuals, targets, res, cfg.Delta, start, firstPause, done)
				}
			})
		}
	}

	for _, s := range states {
		first := s.d.RAMBytes()
		if cfg.Delta {
			// Fold any dirt accumulated since boot into the page table,
			// then elide the chunks nobody has ever written: the target
			// reconstructs template and zero chunks locally.
			s.d.MarkClean()
			skip := s.d.UntouchedBytes()
			res.BytesSkipped += skip
			first -= skip
		}
		runRound(s, first)
	}
	return nil
}

// liveDomState tracks one domain through pre-copy.
type liveDomState struct {
	d         *vm.Domain
	bw        float64
	residual  int64
	converged sim.Time // active-time mark when pre-copy converged
	rounds    int
}

type liveResidual struct {
	bytes int64
	bw    float64
	mark  sim.Time
}

// liveFinal performs the stop-phase copy and switch-over.
func (c *Coordinator) liveFinal(vc *VirtualCluster, residuals []liveResidual, targets []*phys.Node, res *LiveMigrationResult, delta bool, start, firstPause sim.Time, done func(*LiveMigrationResult)) {
	k := c.mgr.kernel
	// Residual + late dirt copy time; domains are paused so the set is
	// final. The copies run in parallel; downtime is the slowest.
	var final sim.Time
	for i, d := range vc.domains {
		late := d.DirtyBytesSince(residuals[i].mark)
		bytes := residuals[i].bytes + late
		res.BytesCopied += bytes
		t := sim.Time(float64(bytes) / residuals[i].bw * float64(sim.Second))
		if t > final {
			final = t
		}
	}
	// Capture the functional state now (it is what the target resumes).
	// The delta path captures delta images so the restored domains keep
	// their chunk lineage: the next checkpoint epoch at the destination
	// dedups against everything transferred before the move.
	images := make([]*vm.Image, len(vc.domains))
	for i, d := range vc.domains {
		var img *vm.Image
		var err error
		if delta {
			img, err = d.CaptureDeltaImage()
		} else {
			img, err = d.CaptureImage()
		}
		if err != nil {
			res.Reason = err.Error()
			res.TotalTime = k.Now() - start
			done(res)
			return
		}
		images[i] = img
	}
	k.After(final, func() {
		for _, d := range vc.domains {
			d.Destroy()
		}
		newDomains := make([]*vm.Domain, len(images))
		for i, img := range images {
			h := c.mgr.hvs[targets[i].ID()]
			d, err := h.RestoreDomain(img, nil)
			if err != nil {
				res.Reason = err.Error()
				res.TotalTime = k.Now() - start
				for _, nd := range newDomains {
					if nd != nil {
						nd.Destroy()
					}
				}
				done(res)
				return
			}
			newDomains[i] = d
		}
		vc.domains = newDomains
		vc.nodes = append([]*phys.Node(nil), targets...)
		vc.state = VCPaused
		c.resumeAll(vc, func() {
			res.OK = true
			res.Downtime = k.Now() - firstPause
			res.TotalTime = k.Now() - start
			done(res)
		})
	})
}
