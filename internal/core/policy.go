package core

import (
	"dvc/internal/sim"
)

// Periodic drives checkpoints of one VC at a fixed interval, the way the
// paper's tests ran "multiple problem sizes ... with varying times
// between checkpoints".
type Periodic struct {
	c        *Coordinator
	vc       *VirtualCluster
	interval sim.Time
	onEach   func(*CheckpointResult)

	timer   *sim.Timer // interval tick; rearmed in place after each attempt
	stopped bool

	// Results collects every completed attempt.
	Results []*CheckpointResult
}

// StartPeriodic begins periodic checkpointing. The next checkpoint is
// scheduled interval after the previous one completes (not fixed-rate),
// so slow saves do not pile up. onEach may be nil.
func (c *Coordinator) StartPeriodic(vc *VirtualCluster, interval sim.Time, onEach func(*CheckpointResult)) *Periodic {
	p := &Periodic{c: c, vc: vc, interval: interval, onEach: onEach}
	p.arm()
	return p
}

func (p *Periodic) arm() {
	if p.timer == nil {
		p.timer = sim.NewTimer(p.c.mgr.kernel, p.tick)
	}
	p.timer.Reset(p.interval)
}

func (p *Periodic) tick() {
	if p.stopped {
		return
	}
	if p.vc.State() != VCReady || p.vc.JobStatus().Done() {
		// Not checkpointable right now (mid-recovery or job finished);
		// try again next interval.
		p.arm()
		return
	}
	err := p.c.Checkpoint(p.vc, func(res *CheckpointResult) {
		p.Results = append(p.Results, res)
		if p.onEach != nil {
			p.onEach(res)
		}
		if !p.stopped {
			p.arm()
		}
	})
	if err != nil {
		p.arm()
	}
}

// Stop halts the loop (an in-flight checkpoint still completes).
func (p *Periodic) Stop() {
	p.stopped = true
	p.timer.Stop()
}

// SucceededCount reports how many attempts completed OK.
func (p *Periodic) SucceededCount() int {
	n := 0
	for _, r := range p.Results {
		if r.OK {
			n++
		}
	}
	return n
}
