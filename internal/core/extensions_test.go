package core

import (
	"testing"

	"dvc/internal/guest"
	"dvc/internal/hpcc"
	"dvc/internal/mpi"
	"dvc/internal/sim"
)

func TestLiveMigrateLowDirtyRate(t *testing.T) {
	tb := newTestbed(t, 21, map[string]int{"alpha": 3, "beta": 3}, DefaultNTPLSC())
	vc, err := tb.mgr.Allocate(VCSpec{Name: "lm", Nodes: 3, VMRAM: testVMRAM, Clusters: []string{"alpha"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.k.RunFor(30 * sim.Second)
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(4000, 20*sim.Millisecond, 1024) })
	tb.k.RunFor(sim.Second)
	for _, d := range vc.Domains() {
		d.SetDirtyRate(20e6) // moderate writer: converges in a few rounds
	}

	var res *LiveMigrationResult
	if err := tb.co.LiveMigrate(vc, tb.site.UpNodes("beta"), DefaultLiveConfig(), func(r *LiveMigrationResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	tb.k.RunFor(10 * sim.Minute)
	if res == nil || !res.OK {
		t.Fatalf("live migration failed: %+v", res)
	}
	// 256MiB at 117MB/s stop-and-copy would be ~2.3s of downtime; a calm
	// guest's pre-copy residual must be far below that.
	if res.Downtime > sim.Second {
		t.Fatalf("live downtime %v, want sub-second", res.Downtime)
	}
	if res.Rounds < 2 {
		t.Fatalf("pre-copy did %d rounds", res.Rounds)
	}
	for _, n := range vc.PhysicalNodes() {
		if n.Cluster() != "beta" {
			t.Fatal("not migrated to beta")
		}
	}
	js := tb.runJob(t, vc, time60())
	if !js.AllOK() {
		t.Fatalf("job after live migration: %+v", js)
	}
}

func TestLiveMigrateBeatsStopAndCopyDowntime(t *testing.T) {
	run := func(live bool) sim.Time {
		tb := newTestbed(t, 22, map[string]int{"alpha": 2, "beta": 2}, DefaultNTPLSC())
		vc, _ := tb.mgr.Allocate(VCSpec{Name: "x", Nodes: 2, VMRAM: testVMRAM, Clusters: []string{"alpha"}}, nil)
		tb.k.RunFor(30 * sim.Second)
		vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(4000, 20*sim.Millisecond, 1024) })
		tb.k.RunFor(sim.Second)
		for _, d := range vc.Domains() {
			d.SetDirtyRate(5e6)
		}
		targets := tb.site.UpNodes("beta")
		var down sim.Time
		if live {
			var res *LiveMigrationResult
			tb.co.LiveMigrate(vc, targets, DefaultLiveConfig(), func(r *LiveMigrationResult) { res = r })
			tb.k.RunFor(10 * sim.Minute)
			if res == nil || !res.OK {
				t.Fatalf("live: %+v", res)
			}
			down = res.Downtime
		} else {
			var res *CheckpointResult
			tb.co.Migrate(vc, targets, func(r *CheckpointResult) { res = r })
			tb.k.RunFor(10 * sim.Minute)
			if res == nil || !res.OK {
				t.Fatalf("stop-and-copy: %+v", res)
			}
			down = res.Downtime
		}
		return down
	}
	stop := run(false)
	live := run(true)
	if live*5 > stop {
		t.Fatalf("live downtime %v not clearly better than stop-and-copy %v", live, stop)
	}
}

func TestLiveMigrateHotGuestHitsRoundCap(t *testing.T) {
	tb := newTestbed(t, 23, map[string]int{"alpha": 2, "beta": 2}, DefaultNTPLSC())
	vc, _ := tb.mgr.Allocate(VCSpec{Name: "hot", Nodes: 2, VMRAM: testVMRAM, Clusters: []string{"alpha"}}, nil)
	tb.k.RunFor(30 * sim.Second)
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(1<<20, 20*sim.Millisecond, 1024) })
	tb.k.RunFor(sim.Second)
	for _, d := range vc.Domains() {
		// Dirtying nearly as fast as the wire: pre-copy cannot converge.
		d.SetDirtyRate(100e6)
	}
	cfg := DefaultLiveConfig()
	var res *LiveMigrationResult
	tb.co.LiveMigrate(vc, tb.site.UpNodes("beta"), cfg, func(r *LiveMigrationResult) { res = r })
	tb.k.RunFor(30 * sim.Minute)
	if res == nil || !res.OK {
		t.Fatalf("hot migration: %+v", res)
	}
	if res.Rounds != cfg.MaxRounds {
		t.Fatalf("expected to hit the %d-round cap, did %d", cfg.MaxRounds, res.Rounds)
	}
	// Total traffic far exceeds RAM: the re-dirty tax.
	if res.BytesCopied < 2*int64(vc.Spec().Nodes)*testVMRAM {
		t.Fatalf("copied only %d bytes", res.BytesCopied)
	}
}

func TestIncrementalCheckpointsShrinkAndRestore(t *testing.T) {
	cfg := DefaultNTPLSC()
	cfg.ContinueAfterSave = true
	cfg.Incremental = true
	tb := newTestbed(t, 24, map[string]int{"alpha": 4}, cfg)
	vc := tb.allocate(t, "inc", 2, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(6000, 20*sim.Millisecond, 1024) })
	for _, d := range vc.Domains() {
		d.SetDirtyRate(2e6)
	}
	tb.k.RunFor(sim.Second)

	var gens []*CheckpointResult
	for i := 0; i < 3; i++ {
		var res *CheckpointResult
		tb.co.Checkpoint(vc, func(r *CheckpointResult) { res = r })
		// Wait just past completion so the next increment stays small.
		for res == nil {
			tb.k.RunFor(sim.Second)
		}
		tb.k.RunFor(5 * sim.Second)
		if !res.OK {
			t.Fatalf("checkpoint %d: %+v", i, res)
		}
		gens = append(gens, res)
	}
	// Generation 0 is full; later generations are small increments.
	if gens[0].Images[0].Incremental {
		t.Fatal("generation 0 should be full")
	}
	if !gens[1].Images[0].Incremental || !gens[2].Images[0].Incremental {
		t.Fatal("later generations should be incremental")
	}
	fullSize := gens[0].Images[0].SizeBytes()
	incSize := gens[1].Images[0].SizeBytes()
	if incSize*4 > fullSize {
		t.Fatalf("incremental image %d not much smaller than full %d", incSize, fullSize)
	}
	if gens[1].StoreTime >= gens[0].StoreTime {
		t.Fatalf("incremental store time %v not below full %v", gens[1].StoreTime, gens[0].StoreTime)
	}

	// Crash-recover from the newest (incremental) generation: the chain
	// must stage and the job must still verify.
	vc.PhysicalNodes()[0].Fail()
	tb.k.RunFor(2 * sim.Second)
	vc.Teardown()
	targets := tb.site.UpNodes("alpha")[:2]
	var rr *RestoreResult
	tb.co.RestoreVC(vc, gens[2].Generation, targets, func(r *RestoreResult) { rr = r })
	tb.k.RunFor(5 * sim.Minute)
	if rr == nil || !rr.OK {
		t.Fatalf("chain restore: %+v", rr)
	}
	js := tb.runJob(t, vc, time60())
	if !js.AllOK() {
		t.Fatalf("job after chain restore: %+v", js)
	}
}

func TestNodeCrashDuringSaveFailsCheckpointCleanly(t *testing.T) {
	tb := newTestbed(t, 41, map[string]int{"alpha": 3}, DefaultNTPLSC())
	vc := tb.allocate(t, "cs", 3, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(4000, 20*sim.Millisecond, 1024) })
	tb.k.RunFor(sim.Second)
	var res *CheckpointResult
	if err := tb.co.Checkpoint(vc, func(r *CheckpointResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	// The node dies inside the schedule-lead window, before its pause.
	vc.PhysicalNodes()[1].Fail()
	tb.k.RunFor(5 * sim.Minute)
	if res == nil {
		t.Fatal("checkpoint never reported")
	}
	if res.OK {
		t.Fatal("checkpoint with a mid-save crash reported OK")
	}
	if tb.co.FailCount != 1 {
		t.Fatalf("FailCount = %d", tb.co.FailCount)
	}
}

func TestRestoreOntoCrashedNodeFails(t *testing.T) {
	cfg := DefaultNTPLSC()
	cfg.ContinueAfterSave = true
	tb := newTestbed(t, 42, map[string]int{"alpha": 6}, cfg)
	vc := tb.allocate(t, "rc", 2, guest.WatchdogConfig{})
	vc.LaunchMPI(6000, func(int) mpi.App { return hpcc.NewHalo(4000, 20*sim.Millisecond, 1024) })
	tb.k.RunFor(sim.Second)
	var ck *CheckpointResult
	tb.co.Checkpoint(vc, func(r *CheckpointResult) { ck = r })
	tb.k.RunFor(2 * sim.Minute)
	if ck == nil || !ck.OK {
		t.Fatalf("setup checkpoint: %+v", ck)
	}
	vc.Teardown()
	// Pick targets, then crash one before the restore begins.
	targets := tb.site.UpNodes("alpha")[:2]
	targets[1].Fail()
	var rr *RestoreResult
	tb.co.RestoreVC(vc, ck.Generation, targets, func(r *RestoreResult) { rr = r })
	tb.k.RunFor(5 * sim.Minute)
	if rr == nil {
		t.Fatal("restore never reported")
	}
	if rr.OK {
		t.Fatal("restore onto a dead node reported OK")
	}
	// And a second attempt on healthy nodes still works (rollback left
	// the addresses free).
	fresh := tb.site.UpNodes("alpha")[:2]
	var rr2 *RestoreResult
	tb.co.RestoreVC(vc, ck.Generation, fresh, func(r *RestoreResult) { rr2 = r })
	tb.k.RunFor(5 * sim.Minute)
	if rr2 == nil || !rr2.OK {
		t.Fatalf("second restore: %+v", rr2)
	}
	if !tb.runJob(t, vc, time60()).AllOK() {
		t.Fatal("job failed after recovery")
	}
}

func TestRestoreUnknownGenerationFails(t *testing.T) {
	tb := newTestbed(t, 43, map[string]int{"alpha": 3}, DefaultNTPLSC())
	vc := tb.allocate(t, "ug", 2, guest.WatchdogConfig{})
	vc.Teardown()
	var rr *RestoreResult
	tb.co.RestoreVC(vc, 99, tb.site.UpNodes("alpha")[:2], func(r *RestoreResult) { rr = r })
	tb.k.RunFor(sim.Minute)
	if rr == nil || rr.OK {
		t.Fatalf("restore of unknown generation: %+v", rr)
	}
}

func TestMigrateWrongTargetCount(t *testing.T) {
	tb := newTestbed(t, 44, map[string]int{"alpha": 3}, DefaultNTPLSC())
	vc := tb.allocate(t, "wt", 3, guest.WatchdogConfig{})
	if err := tb.co.Migrate(vc, tb.site.UpNodes("alpha")[:1], func(*CheckpointResult) {}); err == nil {
		t.Fatal("migrate with too few targets accepted")
	}
	if err := tb.co.LiveMigrate(vc, tb.site.UpNodes("alpha")[:1], DefaultLiveConfig(), func(*LiveMigrationResult) {}); err == nil {
		t.Fatal("live migrate with too few targets accepted")
	}
}
