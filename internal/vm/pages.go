package vm

import (
	"hash/fnv"

	"dvc/internal/payload"
)

// DeltaChunkBytes is the modelled page-chunk granularity of the
// content-addressed checkpoint path: guest RAM is named in 1 MiB ranges,
// each carrying a version counter bumped when the dirty sweep touches
// it. Coarser than a 4 KiB page (keeping tables small at multi-GiB
// guests), fine enough that one epoch's dirt maps to a proportional
// number of changed chunks.
const DeltaChunkBytes = 1 << 20

// PageTable is the modelled identity map of a domain's RAM: which
// content each fixed-size chunk of guest memory holds, expressed as a
// version counter per chunk. It is the source of the manifest the
// storage layer dedups on — identities are *derived*, never hashed from
// real bytes, so they are a pure function of (domain lineage, chunk
// index, version) and replay deterministically:
//
//   - version 0 inside the template span: a 'T' chunk, shared by every
//     domain booted from the same golden image (cross-VM dedup);
//   - version 0 past the template span: a 'Z' zero chunk, one identity
//     per size (all untouched RAM everywhere dedups to it);
//   - version >= 1: a 'P' chunk private to this domain's lineage —
//     re-dirtying bumps the version and mints a fresh identity.
//
// The table travels inside delta images (Image.Pages) so a restored
// domain keeps its chunk lineage and the next epoch dedups against the
// prior one, on whichever node it lands.
type PageTable struct {
	Lineage   uint64 // FNV-1a of the domain name: the private-chunk namespace
	Template  int64  // leading bytes booted from the golden image (chunk-aligned)
	ChunkSize int64
	RAM       int64
	Versions  []uint32 // per-chunk write generation; 0 = untouched since boot
	Cursor    int64    // next byte offset the dirty sweep will touch
}

// newPageTable builds the boot-time table: everything untouched, the
// sweep cursor at offset 0.
func newPageTable(name string, ram, template int64) *PageTable {
	if template > ram {
		template = ram
	}
	template = template / DeltaChunkBytes * DeltaChunkBytes
	h := fnv.New64a()
	h.Write([]byte(name))
	n := int((ram + DeltaChunkBytes - 1) / DeltaChunkBytes)
	return &PageTable{
		Lineage:   h.Sum64(),
		Template:  template,
		ChunkSize: DeltaChunkBytes,
		RAM:       ram,
		Versions:  make([]uint32, n),
	}
}

// advance folds dirty modelled bytes into the table: a round-robin
// sweep from the cursor, bumping the version of every chunk it enters.
// The sweep mirrors DirtyBytesSince's model — distinct bytes, saturating
// at RAM — so dirty == RAM touches every chunk exactly once (modulo the
// chunk the cursor starts mid-way through, which legitimately counts in
// both the wrapping and the wrapped-to epoch).
func (t *PageTable) advance(dirty int64) {
	if dirty <= 0 || t.RAM == 0 {
		return
	}
	if dirty > t.RAM {
		dirty = t.RAM
	}
	for dirty > 0 {
		ci := int(t.Cursor / t.ChunkSize)
		chunkEnd := (int64(ci) + 1) * t.ChunkSize
		if chunkEnd > t.RAM {
			chunkEnd = t.RAM
		}
		step := chunkEnd - t.Cursor
		if step > dirty {
			step = dirty
		}
		t.Versions[ci]++
		t.Cursor += step
		if t.Cursor >= t.RAM {
			t.Cursor = 0
		}
		dirty -= step
	}
}

// chunkBytes returns the size of chunk ci (the last chunk may be short).
func (t *PageTable) chunkBytes(ci int) int64 {
	off := int64(ci) * t.ChunkSize
	size := t.ChunkSize
	if off+size > t.RAM {
		size = t.RAM - off
	}
	return size
}

// AppendManifest appends one ChunkRef per RAM chunk to dst and returns
// the result: the complete modelled manifest of the domain's memory at
// the table's current versions.
func (t *PageTable) AppendManifest(dst []payload.ChunkRef) []payload.ChunkRef {
	for ci := range t.Versions {
		off := int64(ci) * t.ChunkSize
		size := t.chunkBytes(ci)
		var id payload.ChunkID
		switch {
		case t.Versions[ci] == 0 && off+size <= t.Template:
			id = payload.DeriveChunkID('T', uint64(off), uint64(size), 0)
		case t.Versions[ci] == 0:
			id = payload.DeriveChunkID('Z', uint64(size), 0, 0)
		default:
			id = payload.DeriveChunkID('P', t.Lineage, uint64(ci), uint64(t.Versions[ci]))
		}
		dst = append(dst, payload.ChunkRef{ID: id, Bytes: size})
	}
	return dst
}

// UntouchedBytes returns how much RAM is still at version 0 — the span
// a delta transfer can assume present at any store that has seen the
// golden image (template chunks) or any image at all (zero chunks).
func (t *PageTable) UntouchedBytes() int64 {
	var sum int64
	for ci := range t.Versions {
		if t.Versions[ci] == 0 {
			sum += t.chunkBytes(ci)
		}
	}
	return sum
}

// Clone deep-copies the table (nil in, nil out).
func (t *PageTable) Clone() *PageTable {
	if t == nil {
		return nil
	}
	c := *t
	c.Versions = append([]uint32(nil), t.Versions...)
	return &c
}

// ensurePages lazily builds the domain's page table. Content is a pure
// function of (name, RAM, config), so creation order cannot leak into
// any observable state.
func (d *Domain) ensurePages() *PageTable {
	if d.pages == nil {
		d.pages = newPageTable(d.name, d.ram, d.hv.cfg.TemplateBytes)
	}
	return d.pages
}

// UntouchedBytes reports how much of the domain's RAM has never been
// dirtied (per the page table, i.e. as of the last MarkClean or delta
// capture).
func (d *Domain) UntouchedBytes() int64 { return d.ensurePages().UntouchedBytes() }
