package vm

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"dvc/internal/clock"
	"dvc/internal/guest"
	"dvc/internal/netsim"
	"dvc/internal/phys"
	"dvc/internal/sim"
)

func init() {
	gob.Register(&ballastProg{})
}

// ballastProg is a guest program whose only job is to give the VM image a
// realistic functional payload: Buf models application state (for HPL,
// the matrix panels) that a whole-VM checkpoint must serialise.
type ballastProg struct {
	Buf []byte
	I   int
}

func (p *ballastProg) Next(api *guest.API, res guest.Result) guest.Op {
	p.I++
	return guest.Sleep(sim.Second)
}

// benchCluster boots doms domains, each holding stateBytes of guest
// state, runs them briefly, and pauses them all (the LSC save point).
func benchCluster(tb testing.TB, doms, stateBytes int) []*Domain {
	k := sim.NewKernel(11)
	f := netsim.NewFabric(k)
	f.AddCluster("alpha", netsim.EthernetGigE())
	site := phys.NewSite(k, clock.DefaultConfig(), clock.DefaultNTPConfig())
	nodes := site.AddCluster("alpha", doms, phys.DefaultSpec(), netsim.EthernetGigE())
	out := make([]*Domain, doms)
	for i, n := range nodes {
		h := NewHypervisor(k, f, n, DefaultXenConfig())
		d, err := h.CreateDomain(fmt.Sprintf("d%d", i), netsim.Addr(fmt.Sprintf("vm%d", i)), 1<<30, guest.WatchdogConfig{}, nil)
		if err != nil {
			tb.Fatal(err)
		}
		out[i] = d
	}
	k.RunFor(30 * sim.Second) // boot
	for i, d := range out {
		if d.State() != StateRunning {
			tb.Fatalf("domain %d is %v, want Running", i, d.State())
		}
		buf := make([]byte, stateBytes)
		for j := range buf {
			buf[j] = byte(j)
		}
		d.OS().Spawn(&ballastProg{Buf: buf})
	}
	k.RunFor(5 * sim.Second)
	for _, d := range out {
		if err := d.Pause(); err != nil {
			tb.Fatal(err)
		}
	}
	return out
}

// BenchmarkLSCSaveSet measures one coordinated LSC save set: capture an
// image of every paused domain in the virtual cluster, exactly as the
// Coordinator's save phase does once per epoch. The interesting numbers
// are B/op and allocs/op per epoch: the pre-rewrite capture path encoded
// each guest into a scratch buffer and then took an exact-size defensive
// copy of the whole image, so every epoch allocated (and memmoved) every
// image twice.
//
// With DVC_BENCH_JSON=<path> the result is appended to the
// BENCH_dataplane artifact. Run:
//
//	go test -run '^$' -bench BenchmarkLSCSaveSet -benchmem ./internal/vm
func BenchmarkLSCSaveSet(b *testing.B) {
	const doms = 8
	const stateBytes = 1 << 20
	set := benchCluster(b, doms, stateBytes)
	var imageBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imageBytes = 0
		for _, d := range set {
			img, err := d.CaptureImage()
			if err != nil {
				b.Fatal(err)
			}
			imageBytes += imageLen(img)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(imageBytes)/float64(doms), "imgB/domain")

	if path := os.Getenv("DVC_BENCH_JSON"); path != "" {
		doc := struct {
			Benchmark  string `json:"benchmark"`
			N          int    `json:"n"`
			Domains    int    `json:"domains"`
			ImageBytes int64  `json:"image_bytes_per_epoch"`
		}{"BenchmarkLSCSaveSet", b.N, doms, imageBytes}
		data, err := json.Marshal(doc)
		if err != nil {
			b.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		fmt.Fprintf(f, "%s\n", data)
	}
}

// imageLen reports the functional image payload length.
func imageLen(img *Image) int64 { return int64(img.Data.Len()) }
