package vm

import (
	"testing"

	"dvc/internal/payload"
	"dvc/internal/sim"
)

func manifestOf(t *PageTable) []payload.ChunkRef { return t.AppendManifest(nil) }

func TestPageTableAdvanceAndManifest(t *testing.T) {
	ram := int64(8 * DeltaChunkBytes)
	pt := newPageTable("vm0", ram, 2*DeltaChunkBytes)
	m0 := manifestOf(pt)
	if len(m0) != 8 {
		t.Fatalf("manifest has %d chunks, want 8", len(m0))
	}
	var total int64
	for _, ref := range m0 {
		total += ref.Bytes
	}
	if total != ram {
		t.Fatalf("manifest covers %d bytes, want %d", total, ram)
	}
	// Boot state: two template chunks, six zero chunks (all one identity).
	if m0[0].ID == m0[1].ID {
		t.Fatal("template chunks at different offsets share an identity")
	}
	for i := 3; i < 8; i++ {
		if m0[i].ID != m0[2].ID {
			t.Fatalf("zero chunk %d has its own identity", i)
		}
	}
	if pt.UntouchedBytes() != ram {
		t.Fatalf("untouched %d at boot, want %d", pt.UntouchedBytes(), ram)
	}

	// Dirty three chunks: the sweep starts at offset 0.
	pt.advance(3 * DeltaChunkBytes)
	m1 := manifestOf(pt)
	for i := 0; i < 3; i++ {
		if m1[i].ID == m0[i].ID {
			t.Fatalf("dirtied chunk %d kept its identity", i)
		}
	}
	for i := 3; i < 8; i++ {
		if m1[i].ID != m0[i].ID {
			t.Fatalf("untouched chunk %d changed identity", i)
		}
	}
	if pt.UntouchedBytes() != 5*DeltaChunkBytes {
		t.Fatalf("untouched %d after sweep", pt.UntouchedBytes())
	}

	// A second epoch's dirt continues round-robin from the cursor, so
	// the previously dirtied chunks keep their (new) identities.
	pt.advance(2 * DeltaChunkBytes)
	m2 := manifestOf(pt)
	for i := 0; i < 3; i++ {
		if m2[i].ID != m1[i].ID {
			t.Fatalf("chunk %d re-dirtied out of sweep order", i)
		}
	}
	for i := 3; i < 5; i++ {
		if m2[i].ID == m1[i].ID {
			t.Fatalf("swept chunk %d kept its identity", i)
		}
	}
	// Saturating dirt touches everything.
	pt.advance(ram)
	if pt.UntouchedBytes() != 0 {
		t.Fatalf("untouched %d after saturating sweep", pt.UntouchedBytes())
	}
}

func TestPageTableCrossVMIdentity(t *testing.T) {
	ram := int64(4 * DeltaChunkBytes)
	a := newPageTable("vm-a", ram, DeltaChunkBytes)
	b := newPageTable("vm-b", ram, DeltaChunkBytes)
	ma, mb := manifestOf(a), manifestOf(b)
	// Untouched template and zero chunks dedup across VMs.
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("boot chunk %d differs across VMs", i)
		}
	}
	// Dirtied chunks are private to each VM's lineage.
	a.advance(DeltaChunkBytes)
	b.advance(DeltaChunkBytes)
	if manifestOf(a)[0].ID == manifestOf(b)[0].ID {
		t.Fatal("private chunks of different VMs share an identity")
	}
	// Clone is deep: advancing the clone leaves the original alone.
	c := a.Clone()
	c.advance(DeltaChunkBytes)
	if manifestOf(a)[1].ID != ma[1].ID {
		t.Fatal("advancing a clone mutated the original table")
	}
	var nilPT *PageTable
	if nilPT.Clone() != nil {
		t.Fatal("Clone of nil not nil")
	}
}

func TestDeltaImageCarriesManifest(t *testing.T) {
	e, d := bootedDomain(t)
	d.SetDirtyRate(10e6)
	d.MarkClean()
	e.k.RunFor(5 * sim.Second)
	d.Pause()
	img, err := d.CaptureDeltaImage()
	if err != nil {
		t.Fatal(err)
	}
	if !img.Incremental || img.Pages == nil {
		t.Fatalf("delta image: incremental=%v pages=%v", img.Incremental, img.Pages)
	}
	if img.SizeBytes() != 50_000_000+(1<<30)/512 {
		t.Fatalf("delta modelled size %d", img.SizeBytes())
	}
	var total int64
	for _, ref := range img.Pages.AppendManifest(nil) {
		total += ref.Bytes
	}
	if total != d.RAMBytes() {
		t.Fatalf("manifest covers %d bytes, want all of RAM", total)
	}
	// The capture folded the dirt: a MarkClean right after is a no-op on
	// the table, so an idle follow-up epoch dedups to zero new chunks.
	before := img.Pages.AppendManifest(nil)
	d.MarkClean()
	after := d.ensurePages().AppendManifest(nil)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("post-capture MarkClean changed chunk %d", i)
		}
	}
}

// TestCleanMarkSurvivesRestore is the save/restore edge case of the
// dirty model: restore replaces the guest OS object, and the clean mark
// must carry over (the image holds everything up to the capture), so
// post-restore accounting charges only post-restore writes.
func TestCleanMarkSurvivesRestore(t *testing.T) {
	e, d := bootedDomain(t)
	d.SetDirtyRate(10e6)
	d.MarkClean()
	e.k.RunFor(30 * sim.Second) // plenty of pre-capture history
	d.Pause()
	img, err := d.CaptureDeltaImage()
	if err != nil {
		t.Fatal(err)
	}
	lineage := img.Pages.Lineage
	d.Destroy()
	e.k.RunFor(5 * sim.Second)

	d2, err := e.hv(0).RestoreDomain(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	d2.SetDirtyRate(10e6) // the rate is a workload property, not image state
	if err := d2.Unpause(); err != nil {
		t.Fatal(err)
	}
	if got := d2.DirtyBytesSince(d2.CleanMark()); got != 0 {
		t.Fatalf("restored domain starts %d bytes dirty, want 0", got)
	}
	e.k.RunFor(2 * sim.Second)
	if got := d2.DirtyBytesSince(d2.CleanMark()); got != 20_000_000 {
		t.Fatalf("2s at 10MB/s after restore dirtied %d bytes", got)
	}
	// The chunk lineage crossed the restore: the next delta epoch dedups
	// against the pre-restore epochs.
	d2.Pause()
	img2, err := d2.CaptureDeltaImage()
	if err != nil {
		t.Fatal(err)
	}
	if img2.Pages.Lineage != lineage {
		t.Fatal("restore lost the page-table lineage")
	}
	m1, m2 := img.Pages.AppendManifest(nil), img2.Pages.AppendManifest(nil)
	same := 0
	for i := range m1 {
		if m1[i] == m2[i] {
			same++
		}
	}
	if same == 0 {
		t.Fatal("post-restore epoch shares no chunks with the captured image")
	}
}

// TestDirtySaturationAfterRestore: saturation keeps holding at RAM on
// the restored OS object.
func TestDirtySaturationAfterRestore(t *testing.T) {
	e, d := bootedDomain(t)
	d.SetDirtyRate(1e9)
	d.MarkClean()
	e.k.RunFor(sim.Second)
	d.Pause()
	img, err := d.CaptureDeltaImage()
	if err != nil {
		t.Fatal(err)
	}
	d.Destroy()
	d2, err := e.hv(0).RestoreDomain(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	d2.SetDirtyRate(1e9)
	if err := d2.Unpause(); err != nil {
		t.Fatal(err)
	}
	e.k.RunFor(10 * sim.Second) // 10 GB of writes > 1 GiB RAM
	if got := d2.DirtyBytesSince(d2.CleanMark()); got != 1<<30 {
		t.Fatalf("dirty bytes %d after restore, want saturation at RAM", got)
	}
}

// TestZeroRateOverride: a negative rate models a write-quiescent guest;
// zero still means "use the default".
func TestZeroRateOverride(t *testing.T) {
	e, d := bootedDomain(t)
	d.SetDirtyRate(-1)
	mark := d.MarkClean()
	e.k.RunFor(10 * sim.Second)
	if got := d.DirtyBytesSince(mark); got != 0 {
		t.Fatalf("quiescent guest dirtied %d bytes", got)
	}
	d.SetDirtyRate(0)
	if got := d.DirtyBytesSince(mark); got != int64(DefaultDirtyRate)*10 {
		t.Fatalf("rate 0 gave %d bytes, want default rate", got)
	}
}
