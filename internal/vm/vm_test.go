package vm

import (
	"encoding/gob"
	"fmt"
	"testing"

	"dvc/internal/guest"
	"dvc/internal/netsim"
	"dvc/internal/payload"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

func init() {
	gob.Register(&workerProg{})
}

// workerProg computes in rounds and records progress; used to watch
// domains across save/restore.
type workerProg struct {
	Rounds int
	Dur    sim.Time
	I      int
}

func (p *workerProg) Next(api *guest.API, res guest.Result) guest.Op {
	if p.I < p.Rounds {
		p.I++
		return guest.Compute(p.Dur)
	}
	api.Exit(0)
	return nil
}

type env struct {
	k    *sim.Kernel
	site *phys.Site
	hvs  map[string]*Hypervisor
}

func newEnv(t *testing.T, nodes int) *env {
	t.Helper()
	k := sim.NewKernel(11)
	site := phys.DefaultSite(k)
	ns := site.AddCluster("c", nodes, phys.DefaultSpec(), netsim.EthernetGigE())
	e := &env{k: k, site: site, hvs: make(map[string]*Hypervisor)}
	for _, n := range ns {
		e.hvs[n.ID()] = NewHypervisor(k, site.Fabric, n, DefaultXenConfig())
	}
	return e
}

func (e *env) hv(i int) *Hypervisor { return e.hvs[e.site.Nodes()[i].ID()] }

func TestCreateDomainBoots(t *testing.T) {
	e := newEnv(t, 1)
	var ready *Domain
	d, err := e.hv(0).CreateDomain("vm0", "vm0", 1<<30, guest.WatchdogConfig{}, func(d *Domain) { ready = d })
	if err != nil {
		t.Fatal(err)
	}
	if d.State() != StateBooting {
		t.Fatalf("state = %v before boot", d.State())
	}
	e.k.RunFor(DefaultXenConfig().BootTime + sim.Second)
	if ready != d || d.State() != StateRunning {
		t.Fatalf("domain not ready: state=%v", d.State())
	}
	if d.OS() == nil {
		t.Fatal("no guest OS after boot")
	}
	if d.Addr() != "vm0" || d.Name() != "vm0" || d.RAMBytes() != 1<<30 {
		t.Fatal("domain metadata wrong")
	}
}

func TestRAMAdmissionControl(t *testing.T) {
	e := newEnv(t, 1)
	h := e.hv(0)
	spec := phys.DefaultSpec()
	free := spec.RAMBytes - DefaultXenConfig().Dom0Reserve
	if _, err := h.CreateDomain("big", "big", free+1, guest.WatchdogConfig{}, nil); err == nil {
		t.Fatal("overcommit accepted")
	}
	if _, err := h.CreateDomain("ok", "ok", free, guest.WatchdogConfig{}, nil); err != nil {
		t.Fatalf("exact fit rejected: %v", err)
	}
	if h.FreeRAM() != 0 {
		t.Fatalf("FreeRAM = %d after exact fit", h.FreeRAM())
	}
	if _, err := h.CreateDomain("more", "more", 1, guest.WatchdogConfig{}, nil); err == nil {
		t.Fatal("second domain accepted with no free RAM")
	}
}

func TestDuplicateDomainNameRejected(t *testing.T) {
	e := newEnv(t, 1)
	if _, err := e.hv(0).CreateDomain("d", "a1", 1<<30, guest.WatchdogConfig{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.hv(0).CreateDomain("d", "a2", 1<<30, guest.WatchdogConfig{}, nil); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestGuestComputeRunsSlowerThanNative(t *testing.T) {
	e := newEnv(t, 2)
	cfg := DefaultXenConfig()

	// Native baseline on node 1.
	nos, _ := NativeOS(e.k, e.site.Fabric, e.site.Nodes()[1], "native", tcp.DefaultConfig(), guest.WatchdogConfig{})
	nativeProg := &workerProg{Rounds: 1, Dur: 100 * sim.Second}
	nos.Spawn(nativeProg)

	guestProg := &workerProg{Rounds: 1, Dur: 100 * sim.Second}
	_, err := e.hv(0).CreateDomain("vm0", "vm0", 1<<30, guest.WatchdogConfig{}, func(dom *Domain) {
		dom.OS().Spawn(guestProg)
	})
	if err != nil {
		t.Fatal(err)
	}
	e.k.Run()
	// Native: 100s. Guest: boot 25s + 103s.
	if nativeProg.I != 1 || guestProg.I != 1 {
		t.Fatal("programs did not run")
	}
	wantEnd := cfg.BootTime + sim.Time(float64(100*sim.Second)*cfg.CPUOverhead)
	if e.k.Now() != wantEnd {
		t.Fatalf("sim ended at %v, want %v (guest 3%% slower after 25s boot)", e.k.Now(), wantEnd)
	}
}

func TestPauseUnpause(t *testing.T) {
	e := newEnv(t, 1)
	prog := &workerProg{Rounds: 1000, Dur: 10 * sim.Millisecond}
	var d *Domain
	e.hv(0).CreateDomain("vm0", "vm0", 1<<30, guest.WatchdogConfig{}, func(dom *Domain) {
		d = dom
		dom.OS().Spawn(prog)
	})
	e.k.RunFor(30 * sim.Second)
	if err := d.Pause(); err != nil {
		t.Fatal(err)
	}
	before := prog.I
	e.k.RunFor(60 * sim.Second)
	if prog.I != before {
		t.Fatal("guest advanced while paused")
	}
	if err := d.Pause(); err == nil {
		t.Fatal("double pause accepted")
	}
	if err := d.Unpause(); err != nil {
		t.Fatal(err)
	}
	e.k.RunFor(5 * sim.Second)
	if prog.I == before {
		t.Fatal("guest did not resume")
	}
}

func TestCaptureRequiresPause(t *testing.T) {
	e := newEnv(t, 1)
	var d *Domain
	e.hv(0).CreateDomain("vm0", "vm0", 1<<30, guest.WatchdogConfig{}, func(dom *Domain) { d = dom })
	e.k.RunFor(30 * sim.Second)
	if _, err := d.CaptureImage(); err == nil {
		t.Fatal("capture of running domain accepted")
	}
}

func TestSaveRestoreOnDifferentNode(t *testing.T) {
	e := newEnv(t, 2)
	prog := &workerProg{Rounds: 100, Dur: sim.Second}
	var d *Domain
	e.hv(0).CreateDomain("vm0", "vm0", 1<<30, guest.WatchdogConfig{}, func(dom *Domain) {
		d = dom
		dom.OS().Spawn(prog)
	})
	e.k.RunFor(40 * sim.Second) // ~15s of work done
	progressAtSave := prog.I
	if progressAtSave == 0 {
		t.Fatal("no progress before save")
	}
	if err := d.Pause(); err != nil {
		t.Fatal(err)
	}
	img, err := d.CaptureImage()
	if err != nil {
		t.Fatal(err)
	}
	if img.SizeBytes() != 1<<30 {
		t.Fatalf("image models %d bytes, want full 1GiB RAM", img.SizeBytes())
	}
	d.Destroy()
	// The original node dies; restore on node 1.
	e.site.Nodes()[0].Fail()
	e.k.RunFor(10 * sim.Second)

	d2, err := e.hv(1).RestoreDomain(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2.State() != StatePaused {
		t.Fatalf("restored domain state %v, want Paused", d2.State())
	}
	if err := d2.Unpause(); err != nil {
		t.Fatal(err)
	}
	e.k.Run()
	restored := d2.OS().Procs()[0].Program().(*workerProg)
	if restored.I != 100 {
		t.Fatalf("restored program finished %d rounds, want 100", restored.I)
	}
	if restored.I < progressAtSave {
		t.Fatal("restore lost progress")
	}
}

func TestRestoreRejectsAttachedAddress(t *testing.T) {
	e := newEnv(t, 2)
	var d *Domain
	e.hv(0).CreateDomain("vm0", "vm0", 1<<30, guest.WatchdogConfig{}, func(dom *Domain) { d = dom })
	e.k.RunFor(30 * sim.Second)
	d.Pause()
	img, _ := d.CaptureImage()
	// Original still attached: restore elsewhere must fail.
	if _, err := e.hv(1).RestoreDomain(img, nil); err == nil {
		t.Fatal("restore with address still attached accepted")
	}
	d.Destroy()
	if _, err := e.hv(1).RestoreDomain(img, nil); err != nil {
		t.Fatalf("restore after destroy failed: %v", err)
	}
}

func TestNodeCrashDestroysDomains(t *testing.T) {
	e := newEnv(t, 1)
	var d *Domain
	e.hv(0).CreateDomain("vm0", "vm0", 1<<30, guest.WatchdogConfig{}, func(dom *Domain) { d = dom })
	e.k.RunFor(30 * sim.Second)
	e.site.Nodes()[0].Fail()
	if d.State() != StateDestroyed {
		t.Fatalf("domain state %v after node crash", d.State())
	}
	if len(e.hv(0).Domains()) != 0 {
		t.Fatal("crashed node still lists domains")
	}
}

func TestCreateOnDownNodeFails(t *testing.T) {
	e := newEnv(t, 1)
	e.site.Nodes()[0].Fail()
	if _, err := e.hv(0).CreateDomain("vm0", "vm0", 1<<30, guest.WatchdogConfig{}, nil); err == nil {
		t.Fatal("create on down node accepted")
	}
}

func TestSaveRestoreDurations(t *testing.T) {
	e := newEnv(t, 1)
	h := e.hv(0)
	// 1 GiB at 60 MB/s ≈ 17.9s
	d := h.SaveDuration(1 << 30)
	if d < 15*sim.Second || d > 20*sim.Second {
		t.Fatalf("SaveDuration(1GiB) = %v", d)
	}
	if h.RestoreDuration(1<<30) != d {
		t.Fatal("restore rate should default to same disk bandwidth")
	}
	h.cfg.SaveRate = 120e6
	if h.SaveDuration(1<<30) >= d {
		t.Fatal("explicit SaveRate not honoured")
	}
}

func TestDomainStateString(t *testing.T) {
	if StateBooting.String() != "Booting" || StateDestroyed.String() != "Destroyed" {
		t.Fatal("state strings wrong")
	}
}

func TestMultipleDomainsPerNode(t *testing.T) {
	// DVC allows a virtual cluster smaller (or denser) than the physical
	// one: several domains can share a node as long as RAM allows.
	e := newEnv(t, 1)
	h := e.hv(0)
	progs := make([]*workerProg, 3)
	for i := range progs {
		progs[i] = &workerProg{Rounds: 5, Dur: sim.Second}
		i := i
		name := fmt.Sprintf("vm%d", i)
		if _, err := h.CreateDomain(name, netsim.Addr(name), 512<<20, guest.WatchdogConfig{}, func(d *Domain) {
			d.OS().Spawn(progs[i])
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(h.Domains()) != 3 {
		t.Fatalf("%d domains", len(h.Domains()))
	}
	e.k.Run()
	for i, p := range progs {
		if p.I != 5 {
			t.Fatalf("domain %d program did %d rounds", i, p.I)
		}
	}
}

func TestPauseOneDomainLeavesSiblingsRunning(t *testing.T) {
	e := newEnv(t, 1)
	h := e.hv(0)
	a := &workerProg{Rounds: 1000, Dur: 100 * sim.Millisecond}
	bp := &workerProg{Rounds: 1000, Dur: 100 * sim.Millisecond}
	var da *Domain
	h.CreateDomain("a", "a", 512<<20, guest.WatchdogConfig{}, func(d *Domain) {
		da = d
		d.OS().Spawn(a)
	})
	h.CreateDomain("b", "b", 512<<20, guest.WatchdogConfig{}, func(d *Domain) { d.OS().Spawn(bp) })
	e.k.RunFor(30 * sim.Second)
	da.Pause()
	frozenAt := a.I
	e.k.RunFor(10 * sim.Second)
	if a.I != frozenAt {
		t.Fatal("paused domain advanced")
	}
	if bp.I <= frozenAt {
		t.Fatal("sibling domain did not keep running")
	}
}

func TestRestoreAcrossClusters(t *testing.T) {
	k := sim.NewKernel(12)
	site := phys.DefaultSite(k)
	a := site.AddCluster("a", 1, phys.DefaultSpec(), netsim.EthernetGigE())[0]
	b := site.AddCluster("b", 1, phys.DefaultSpec(), netsim.EthernetGigE())[0]
	ha := NewHypervisor(k, site.Fabric, a, DefaultXenConfig())
	hb := NewHypervisor(k, site.Fabric, b, DefaultXenConfig())
	prog := &workerProg{Rounds: 60, Dur: sim.Second}
	var d *Domain
	ha.CreateDomain("vm0", "vm0", 1<<30, guest.WatchdogConfig{}, func(dom *Domain) {
		d = dom
		dom.OS().Spawn(prog)
	})
	k.RunFor(40 * sim.Second)
	d.Pause()
	img, err := d.CaptureImage()
	if err != nil {
		t.Fatal(err)
	}
	d.Destroy()
	d2, err := hb.RestoreDomain(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Node().Cluster() != "b" {
		t.Fatal("restored domain not on cluster b")
	}
	d2.Unpause()
	k.Run()
	if got := d2.OS().Procs()[0].Program().(*workerProg); got.I != 60 {
		t.Fatalf("cross-cluster restore finished %d rounds", got.I)
	}
}

func TestImagePayloadIsSelfContained(t *testing.T) {
	// The image's Data must fully describe the guest: decode it
	// independently and inspect the program state inside.
	e := newEnv(t, 1)
	prog := &workerProg{Rounds: 10, Dur: sim.Second}
	var d *Domain
	e.hv(0).CreateDomain("vm0", "vm0", 1<<30, guest.WatchdogConfig{}, func(dom *Domain) {
		d = dom
		dom.OS().Spawn(prog)
	})
	e.k.RunFor(30 * sim.Second)
	d.Pause()
	img, err := d.CaptureImage()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := guest.DecodeImagePayload(img.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Procs) != 1 {
		t.Fatalf("image holds %d procs", len(snap.Procs))
	}
	inner, ok := snap.Procs[0].Prog.(*workerProg)
	if !ok {
		t.Fatalf("image program type %T", snap.Procs[0].Prog)
	}
	if inner.I != prog.I {
		t.Fatalf("image program at round %d, live at %d", inner.I, prog.I)
	}
	// And the decoded copy is independent of the live guest.
	inner.I = 999
	if prog.I == 999 {
		t.Fatal("image aliases live program state")
	}
}

func TestCorruptedImageRefusedAtRestore(t *testing.T) {
	e := newEnv(t, 2)
	var d *Domain
	e.hv(0).CreateDomain("vm0", "vm0", 1<<30, guest.WatchdogConfig{}, func(dom *Domain) {
		d = dom
		dom.OS().Spawn(&workerProg{Rounds: 10, Dur: sim.Second})
	})
	e.k.RunFor(30 * sim.Second)
	d.Pause()
	img, err := d.CaptureImage()
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Verify(); err != nil {
		t.Fatalf("fresh image fails verification: %v", err)
	}
	d.Destroy()
	// Bit-rot in the stored image. The rope's chunks are immutable, so
	// corruption is modelled by rebuilding the payload around a flipped
	// bit rather than mutating shared chunks in place.
	flat := append([]byte(nil), img.Data.Flatten()...)
	flat[len(flat)/2] ^= 0x40
	img.Data = payload.Wrap(flat)
	if _, err := e.hv(1).RestoreDomain(img, nil); err == nil {
		t.Fatal("corrupted image restored without error")
	}
}
