// Package vm models the Xen-style para-virtualising hypervisor DVC is
// built on: domains (VMs) hosted on physical nodes, with pause / unpause /
// save / restore of the complete guest, and para-virtualisation overheads
// on CPU and network I/O.
//
// The capability the paper builds on (§1): "The Xen virtual machine
// provides the ability to pause, save, and restart the virtual OS,
// including the state of all processes running within that OS."
// CaptureImage produces exactly that — a byte image of the entire guest
// (processes mid-operation, sockets with retransmission state, kernel
// log) that can be restored on any node of any cluster.
package vm

import (
	"fmt"
	"hash/crc32"
	"sort"

	"dvc/internal/guest"
	"dvc/internal/netsim"
	"dvc/internal/obs"
	"dvc/internal/payload"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

// XenConfig models the hypervisor's overheads.
type XenConfig struct {
	// CPUOverhead scales guest compute time (1.0 = native). 2007-era
	// para-virtualised CPU-bound code ran within a few percent of
	// native.
	CPUOverhead float64
	// NetExtraLatency is added per packet by the split-driver network
	// path through dom0.
	NetExtraLatency sim.Time
	// NetBandwidthFactor scales guest network bandwidth (<1).
	NetBandwidthFactor float64
	// BootTime is how long a domain takes to boot.
	BootTime sim.Time
	// Dom0Reserve is RAM kept by the control domain.
	Dom0Reserve int64
	// SaveRate and RestoreRate bound image dump/load speed in bytes/s;
	// zero means use the node's disk bandwidth.
	SaveRate, RestoreRate float64
	// TemplateBytes is the leading span of guest RAM populated from the
	// golden boot image and therefore byte-identical across every domain
	// until first write. The delta-checkpoint page table names those
	// chunks by (offset, size) alone, so they dedup across VMs. Zero
	// disables template sharing.
	TemplateBytes int64
}

// DefaultXenConfig matches published 2007 Xen measurements: ~3% CPU
// overhead, tens of microseconds of added network latency, modest
// bandwidth loss.
func DefaultXenConfig() XenConfig {
	return XenConfig{
		CPUOverhead:        1.03,
		NetExtraLatency:    28 * sim.Microsecond,
		NetBandwidthFactor: 0.85,
		BootTime:           25 * sim.Second,
		Dom0Reserve:        256 << 20,
		TemplateBytes:      64 << 20,
	}
}

// DomainState tracks a domain's lifecycle.
type DomainState int

// Domain lifecycle states.
const (
	StateBooting DomainState = iota
	StateRunning
	StatePaused
	StateDestroyed
)

func (s DomainState) String() string {
	switch s {
	case StateBooting:
		return "Booting"
	case StateRunning:
		return "Running"
	case StatePaused:
		return "Paused"
	case StateDestroyed:
		return "Destroyed"
	default:
		return fmt.Sprintf("DomainState(%d)", int(s))
	}
}

// Image is a saved domain: the whole-VM checkpoint artifact. Data is a
// chunked payload rope produced by the streaming encoder — the image is
// immutable from the moment it is captured (the checksum enforces as
// much at restore time), so the chunks are shared, never copied, as the
// image moves through the store and restore paths.
//
//dvc:checkpoint-root
type Image struct {
	DomainName string
	Addr       netsim.Addr
	RAMBytes   int64 // guest memory size
	Data       payload.Bytes
	CapturedAt sim.Time
	// Checksum guards the functional payload: a restore of a corrupted
	// image must fail loudly, not resurrect a damaged guest.
	Checksum uint32

	// Incremental images carry only the pages dirtied since the last
	// capture; PayloadBytes is their modelled transfer size.
	Incremental  bool
	PayloadBytes int64

	// Pages is the modelled chunk-identity table at capture time, set by
	// CaptureDeltaImage. It is what storage.WriteDelta dedups on, and it
	// rides in the image so a restored domain keeps its chunk lineage.
	Pages *PageTable
}

// imageChecksum computes the IEEE CRC-32 of a rope without flattening
// it (CRC-32 streams: updating chunk by chunk equals checksumming the
// concatenation).
func imageChecksum(data payload.Bytes) uint32 {
	var crc uint32
	for _, c := range data.Chunks() {
		crc = crc32.Update(crc, crc32.IEEETable, c)
	}
	return crc
}

// crcTee forwards writes to the underlying payload writer while folding
// them into a running CRC-32, so capture checksums the image bytes as
// they stream out of the encoder (hot in cache) instead of re-reading
// the finished image in a second pass.
type crcTee struct {
	w   *payload.Writer
	crc uint32
}

func (t *crcTee) Write(p []byte) (int, error) {
	t.crc = crc32.Update(t.crc, crc32.IEEETable, p)
	return t.w.Write(p)
}

// Seal forwards section boundaries to the payload writer, so image
// chunk boundaries — and with them chunk content identity — line up
// with the guest encoder's sections.
func (t *crcTee) Seal() { t.w.Seal() }

// Verify recomputes the payload checksum.
func (img *Image) Verify() error {
	if img.Checksum != imageChecksum(img.Data) {
		return fmt.Errorf("vm: image %s is corrupted (checksum mismatch)", img.DomainName)
	}
	return nil
}

// SizeBytes returns the modelled on-disk image size. A full whole-VM
// checkpoint writes every page of guest RAM — this is the overhead the
// paper concedes to VM-level checkpointing (§2); incremental images
// write only dirty pages.
func (img *Image) SizeBytes() int64 {
	if img.Incremental {
		return img.PayloadBytes
	}
	return img.RAMBytes
}

// Domain is one virtual machine.
type Domain struct {
	name string
	addr netsim.Addr
	ram  int64
	hv   *Hypervisor
	os   *guest.OS
	port *netsim.Port

	state    DomainState
	pausedAt sim.Time

	// Dirty-page model (see dirty.go) and the chunk-identity table the
	// delta-checkpoint path dedups on (see pages.go).
	dirtyRate float64
	cleanMark sim.Time
	pages     *PageTable
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Addr returns the domain's stable network address.
func (d *Domain) Addr() netsim.Addr { return d.addr }

// RAMBytes returns the domain's memory size.
func (d *Domain) RAMBytes() int64 { return d.ram }

// State returns the domain's lifecycle state.
func (d *Domain) State() DomainState { return d.state }

// OS returns the guest operating system (nil while booting).
func (d *Domain) OS() *guest.OS { return d.os }

// Node returns the hosting physical node.
func (d *Domain) Node() *phys.Node { return d.hv.node }

// Pause suspends the domain: the guest freezes and its NIC drops traffic.
// This is the instant that matters for LSC skew.
func (d *Domain) Pause() error {
	if d.state != StateRunning {
		return fmt.Errorf("vm: pause %s: domain is %v", d.name, d.state)
	}
	d.state = StatePaused
	d.pausedAt = d.hv.kernel.Now()
	d.os.Freeze()
	d.port.SetUp(false)
	d.hv.trace(obs.EvVMPause, d.name, "pause")
	d.hv.tracer.Inc("vm.pauses", 1)
	return nil
}

// Unpause resumes a paused domain.
func (d *Domain) Unpause() error {
	if d.state != StatePaused {
		return fmt.Errorf("vm: unpause %s: domain is %v", d.name, d.state)
	}
	d.state = StateRunning
	d.port.SetUp(true)
	d.os.Thaw()
	d.hv.trace(obs.EvVMUnpause, d.name, "unpause",
		obs.Dur("paused_ns", d.hv.kernel.Now()-d.pausedAt))
	d.hv.tracer.Inc("vm.unpauses", 1)
	return nil
}

// CaptureImage snapshots a paused domain into an image. Capture itself is
// state copying; the time to dump the image to disk or the wire is
// charged by the caller via SaveDuration (hypervisors overlap dumps
// across nodes, so pacing belongs to the orchestration layer).
//
// The guest encoder streams directly into the image's chunks: the
// pre-rewrite path encoded into a scratch buffer and took an exact-size
// defensive copy of the whole image, so every LSC epoch allocated (and
// memmoved) every image twice.
func (d *Domain) CaptureImage() (*Image, error) {
	if d.state != StatePaused {
		return nil, fmt.Errorf("vm: capture %s: domain is %v, must be paused", d.name, d.state)
	}
	tee := crcTee{w: payload.NewWriter(0)}
	if err := guest.EncodeImageStream(d.os.Snapshot(), &tee); err != nil {
		return nil, fmt.Errorf("vm: capture %s: %w", d.name, err)
	}
	data := tee.w.Take()
	d.hv.trace(obs.EvVMSave, d.name, "save", obs.Int("ram", d.ram))
	d.hv.tracer.Inc("vm.saves", 1)
	return &Image{
		DomainName: d.name,
		Addr:       d.addr,
		RAMBytes:   d.ram,
		Data:       data,
		CapturedAt: d.hv.kernel.Now(),
		Checksum:   tee.crc,
	}, nil
}

// Destroy tears the domain down, releasing its RAM and address.
func (d *Domain) Destroy() {
	if d.state == StateDestroyed {
		return
	}
	if d.os != nil {
		d.os.Freeze()
	}
	if d.port != nil {
		d.port.Detach()
	}
	d.state = StateDestroyed
	delete(d.hv.domains, d.name)
	d.hv.trace(obs.EvVMDestroy, d.name, "destroy")
}

// Hypervisor is the per-node VMM.
type Hypervisor struct {
	kernel  *sim.Kernel
	fabric  *netsim.Fabric
	node    *phys.Node
	cfg     XenConfig
	tcpCfg  tcp.Config
	domains map[string]*Domain
	tracer  *obs.Tracer
}

// NewHypervisor installs a hypervisor on a node. If the node crashes, all
// hosted domains are destroyed.
func NewHypervisor(k *sim.Kernel, fabric *netsim.Fabric, node *phys.Node, cfg XenConfig) *Hypervisor {
	h := &Hypervisor{
		kernel:  k,
		fabric:  fabric,
		node:    node,
		cfg:     cfg,
		tcpCfg:  tcp.DefaultConfig(),
		domains: make(map[string]*Domain),
	}
	node.OnCrash(h.killAll)
	return h
}

// SetTCPConfig overrides the transport configuration given to new guests.
func (h *Hypervisor) SetTCPConfig(cfg tcp.Config) { h.tcpCfg = cfg }

// SetTracer attaches an observability tracer (nil disables tracing).
// Domain lifecycle transitions become vm.* events on the (node, domain)
// timeline, and new/restored guest stacks inherit the tracer.
func (h *Hypervisor) SetTracer(t *obs.Tracer) { h.tracer = t }

// trace emits one domain-lifecycle instant event.
func (h *Hypervisor) trace(typ obs.EventType, dom, name string, kv ...obs.KV) {
	h.tracer.Emit(h.kernel.Now(), typ, h.node.ID(), dom, name, kv...)
}

// Node returns the hosting node.
func (h *Hypervisor) Node() *phys.Node { return h.node }

// Config returns the hypervisor configuration.
func (h *Hypervisor) Config() XenConfig { return h.cfg }

func (h *Hypervisor) killAll() {
	for _, d := range h.Domains() {
		d.Destroy()
	}
}

// Domains lists hosted domains sorted by name.
func (h *Hypervisor) Domains() []*Domain {
	names := make([]string, 0, len(h.domains))
	for n := range h.domains {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Domain, len(names))
	for i, n := range names {
		out[i] = h.domains[n]
	}
	return out
}

// FreeRAM reports RAM available for new domains.
func (h *Hypervisor) FreeRAM() int64 {
	free := h.node.Spec().RAMBytes - h.cfg.Dom0Reserve
	for _, d := range h.domains {
		free -= d.ram
	}
	return free
}

func (h *Hypervisor) admit(name string, ram int64) error {
	if !h.node.Up() {
		return fmt.Errorf("vm: node %s is down", h.node.ID())
	}
	if _, dup := h.domains[name]; dup {
		return fmt.Errorf("vm: duplicate domain %q on %s", name, h.node.ID())
	}
	if ram > h.FreeRAM() {
		return fmt.Errorf("vm: %s: need %d bytes, %d free on %s", name, ram, h.FreeRAM(), h.node.ID())
	}
	return nil
}

// CreateDomain boots a fresh domain. onReady fires when the guest OS is
// up (after BootTime); the returned domain is in Booting until then.
func (h *Hypervisor) CreateDomain(name string, addr netsim.Addr, ram int64, wd guest.WatchdogConfig, onReady func(*Domain)) (*Domain, error) {
	if err := h.admit(name, ram); err != nil {
		return nil, err
	}
	d := &Domain{name: name, addr: addr, ram: ram, hv: h, state: StateBooting}
	h.domains[name] = d
	// Lifecycle timeouts ride on sim.Timer: the boot deadline is a
	// rearmable slot that frees itself after firing, so domain churn
	// (boot/destroy cycles in the allocation experiments) does not grow
	// the kernel's event slab.
	var boot *sim.Timer
	boot = sim.NewTimer(h.kernel, func() {
		boot.Free()
		if d.state != StateBooting || !h.node.Up() {
			return
		}
		stack := tcp.NewStack(h.kernel, h.fabric, addr, h.tcpCfg)
		stack.SetTracer(h.tracer, h.node.ID(), name)
		d.port = h.fabric.Attach(addr, h.node.Cluster(), stack.Deliver)
		d.port.ExtraLatency = h.cfg.NetExtraLatency
		d.port.BandwidthFactor = h.cfg.NetBandwidthFactor
		d.os = guest.New(h.kernel, stack, h.node.Clock().Read, h.cfg.CPUOverhead, wd)
		d.state = StateRunning
		h.trace(obs.EvVMBoot, name, "boot", obs.Int("ram", ram))
		if onReady != nil {
			onReady(d)
		}
	})
	boot.Reset(h.cfg.BootTime)
	return d, nil
}

// RestoreDomain materialises a saved image as a paused domain on this
// node. The caller charges RestoreDuration first (image load), then
// calls Unpause. The image's address must not be attached anywhere —
// destroy the original domain before restoring.
func (h *Hypervisor) RestoreDomain(img *Image, wallClockOverride func() sim.Time) (*Domain, error) {
	if err := h.admit(img.DomainName, img.RAMBytes); err != nil {
		return nil, err
	}
	if _, attached := h.fabric.Lookup(img.Addr); attached {
		return nil, fmt.Errorf("vm: restore %s: address %s still attached", img.DomainName, img.Addr)
	}
	if err := img.Verify(); err != nil {
		return nil, err
	}
	snap, err := guest.DecodeImagePayload(img.Data)
	if err != nil {
		return nil, fmt.Errorf("vm: restore %s: %w", img.DomainName, err)
	}
	wall := wallClockOverride
	if wall == nil {
		wall = h.node.Clock().Read
	}
	os := guest.Restore(h.kernel, h.fabric, snap, wall, h.cfg.CPUOverhead)
	os.Stack().SetTracer(h.tracer, h.node.ID(), img.DomainName)
	d := &Domain{name: img.DomainName, addr: img.Addr, ram: img.RAMBytes, hv: h, os: os, state: StatePaused}
	// The restored guest's active time continues from the snapshot's
	// jiffies, and the image already holds everything written up to the
	// capture: the clean mark survives the OS swap instead of resetting
	// to boot, so post-restore dirty accounting does not re-count the
	// whole pre-capture history. Delta images also hand their chunk
	// lineage across, cloned so later sweeps never mutate the stored
	// image's table.
	d.cleanMark = os.Jiffies()
	d.pages = img.Pages.Clone()
	d.port = h.fabric.Attach(img.Addr, h.node.Cluster(), os.Stack().Deliver)
	d.port.ExtraLatency = h.cfg.NetExtraLatency
	d.port.BandwidthFactor = h.cfg.NetBandwidthFactor
	d.port.SetUp(false)
	h.domains[img.DomainName] = d
	h.trace(obs.EvVMRestore, img.DomainName, "restore", obs.Int("ram", img.RAMBytes))
	h.tracer.Inc("vm.restores", 1)
	return d, nil
}

// SaveDuration models dumping ram bytes of guest memory to local disk.
func (h *Hypervisor) SaveDuration(ram int64) sim.Time {
	rate := h.cfg.SaveRate
	if rate <= 0 {
		rate = h.node.Spec().DiskBandwidth
	}
	return sim.Time(float64(ram) / rate * float64(sim.Second))
}

// RestoreDuration models loading ram bytes of guest memory from disk.
func (h *Hypervisor) RestoreDuration(ram int64) sim.Time {
	rate := h.cfg.RestoreRate
	if rate <= 0 {
		rate = h.node.Spec().DiskBandwidth
	}
	return sim.Time(float64(ram) / rate * float64(sim.Second))
}

// NativeOS boots a bare-metal OS directly on a node (no virtualisation):
// the baseline for experiment E7. The OS dies with the node. The returned
// port lets the caller detach the address when the job is torn down.
func NativeOS(k *sim.Kernel, fabric *netsim.Fabric, node *phys.Node, addr netsim.Addr, tcpCfg tcp.Config, wd guest.WatchdogConfig) (*guest.OS, *netsim.Port) {
	stack := tcp.NewStack(k, fabric, addr, tcpCfg)
	port := fabric.Attach(addr, node.Cluster(), stack.Deliver)
	os := guest.New(k, stack, node.Clock().Read, 1.0, wd)
	node.OnCrash(func() {
		os.Freeze()
		port.SetUp(false)
	})
	return os, port
}
