package vm

import (
	"dvc/internal/sim"
)

// Dirty-page modelling: live migration and incremental checkpointing both
// depend on how fast a guest rewrites its memory. The model is the
// standard one from the live-migration literature: a guest dirties pages
// at a writable-working-set rate while it runs, saturating at its RAM
// size (re-dirtying the same pages adds nothing).

// DefaultDirtyRate is the default guest write rate: an active HPC code
// streaming through its arrays rewrites tens of MB/s of distinct pages.
const DefaultDirtyRate = 40e6 // bytes/s

// SetDirtyRate overrides the domain's dirty-page rate (bytes/s of
// *distinct* pages). Zero restores the default; a negative rate models
// a write-quiescent guest that dirties nothing at all.
func (d *Domain) SetDirtyRate(rate float64) {
	d.dirtyRate = rate
}

func (d *Domain) effectiveDirtyRate() float64 {
	if d.dirtyRate < 0 {
		return 0
	}
	if d.dirtyRate > 0 {
		return d.dirtyRate
	}
	return DefaultDirtyRate
}

// activeTime returns how long the guest has actually executed (guest
// jiffies) — paused intervals dirty nothing.
func (d *Domain) activeTime() sim.Time {
	if d.os == nil {
		return 0
	}
	return d.os.Jiffies()
}

// DirtyBytesSince models how much distinct memory the guest has written
// since the given active-time mark, saturating at the guest's RAM.
func (d *Domain) DirtyBytesSince(mark sim.Time) int64 {
	active := d.activeTime() - mark
	if active < 0 {
		active = 0
	}
	dirty := int64(d.effectiveDirtyRate() * active.Seconds())
	if dirty > d.ram {
		dirty = d.ram
	}
	return dirty
}

// MarkClean records the current active time as the last full-capture
// mark and returns it (incremental checkpointing calls this after each
// successful capture). The interval's dirt is folded into the page
// table first, so chunk versions stay in step with the byte model.
func (d *Domain) MarkClean() sim.Time {
	d.ensurePages().advance(d.DirtyBytesSince(d.cleanMark))
	d.cleanMark = d.activeTime()
	return d.cleanMark
}

// CleanMark returns the active-time mark of the last capture (zero if
// never captured).
func (d *Domain) CleanMark() sim.Time { return d.cleanMark }

// CaptureIncrementalImage captures a paused domain as an incremental
// image against the last MarkClean: the functional payload is complete
// (restores never need to replay a chain functionally), but the modelled
// transfer size is only the dirty pages plus page-table metadata.
func (d *Domain) CaptureIncrementalImage() (*Image, error) {
	img, err := d.CaptureImage()
	if err != nil {
		return nil, err
	}
	dirty := d.DirtyBytesSince(d.cleanMark)
	meta := d.ram / 512 // one 8-byte entry per 4 KiB page
	img.Incremental = true
	img.PayloadBytes = dirty + meta
	return img, nil
}

// CaptureDeltaImage captures a paused domain as a self-contained
// content-addressed delta epoch. The functional payload is the complete
// image (a restore needs exactly this one image, no chain), and
// Image.Pages carries the chunk-identity manifest of all of RAM — the
// storage layer transfers only the chunks it has not seen, so the
// modelled wire cost of the epoch is the dirtied chunks plus manifest
// metadata. Unlike CaptureIncrementalImage, the capture itself folds
// the interval's dirt into the page table and re-marks: the table in
// the image must describe the captured state exactly, or the store
// would dedup chunks that in fact changed. A MarkClean immediately
// after is therefore a no-op.
func (d *Domain) CaptureDeltaImage() (*Image, error) {
	img, err := d.CaptureImage()
	if err != nil {
		return nil, err
	}
	dirty := d.DirtyBytesSince(d.cleanMark)
	pt := d.ensurePages()
	pt.advance(dirty)
	d.cleanMark = d.activeTime()
	img.Incremental = true
	img.PayloadBytes = dirty + d.ram/512
	img.Pages = pt.Clone()
	return img, nil
}
