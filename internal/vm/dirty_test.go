package vm

import (
	"testing"

	"dvc/internal/guest"
	"dvc/internal/sim"
)

func bootedDomain(t *testing.T) (*env, *Domain) {
	t.Helper()
	e := newEnv(t, 1)
	var d *Domain
	e.hv(0).CreateDomain("vm0", "vm0", 1<<30, guest.WatchdogConfig{}, func(dom *Domain) {
		d = dom
		dom.OS().Spawn(&workerProg{Rounds: 1 << 20, Dur: 100 * sim.Millisecond})
	})
	e.k.RunFor(DefaultXenConfig().BootTime + sim.Second)
	return e, d
}

func TestDirtyBytesGrowWithActiveTime(t *testing.T) {
	e, d := bootedDomain(t)
	d.SetDirtyRate(10e6)
	mark := d.MarkClean()
	e.k.RunFor(10 * sim.Second)
	got := d.DirtyBytesSince(mark)
	if got != 100_000_000 {
		t.Fatalf("10s at 10MB/s dirtied %d bytes", got)
	}
}

func TestDirtySaturatesAtRAM(t *testing.T) {
	e, d := bootedDomain(t)
	d.SetDirtyRate(1e9)
	mark := d.MarkClean()
	e.k.RunFor(10 * sim.Second) // 10 GB > 1 GiB RAM
	if got := d.DirtyBytesSince(mark); got != 1<<30 {
		t.Fatalf("dirty bytes %d, want saturation at RAM", got)
	}
}

func TestPausedGuestDirtiesNothing(t *testing.T) {
	e, d := bootedDomain(t)
	d.SetDirtyRate(10e6)
	mark := d.MarkClean()
	if err := d.Pause(); err != nil {
		t.Fatal(err)
	}
	e.k.RunFor(time100())
	if got := d.DirtyBytesSince(mark); got != 0 {
		t.Fatalf("paused guest dirtied %d bytes", got)
	}
}

func time100() sim.Time { return 100 * sim.Second }

func TestIncrementalImageSize(t *testing.T) {
	e, d := bootedDomain(t)
	d.SetDirtyRate(10e6)
	d.MarkClean()
	e.k.RunFor(5 * sim.Second) // 50 MB dirty
	d.Pause()
	img, err := d.CaptureIncrementalImage()
	if err != nil {
		t.Fatal(err)
	}
	if !img.Incremental {
		t.Fatal("image not marked incremental")
	}
	meta := int64(1<<30) / 512
	if img.SizeBytes() != 50_000_000+meta {
		t.Fatalf("incremental size %d, want 50MB+%d meta", img.SizeBytes(), meta)
	}
	// The functional payload is still the complete guest.
	if _, err := guest.DecodeImagePayload(img.Data); err != nil {
		t.Fatalf("incremental image not self-contained: %v", err)
	}
	// A full image of the same domain is the whole RAM.
	full, err := d.CaptureImage()
	if err != nil {
		t.Fatal(err)
	}
	if full.SizeBytes() != 1<<30 {
		t.Fatalf("full size %d", full.SizeBytes())
	}
	if img.SizeBytes() >= full.SizeBytes() {
		t.Fatal("incremental image not smaller than full")
	}
}

func TestMarkCleanResetsDirtyAccounting(t *testing.T) {
	e, d := bootedDomain(t)
	d.SetDirtyRate(10e6)
	d.MarkClean()
	e.k.RunFor(5 * sim.Second)
	mark2 := d.MarkClean()
	e.k.RunFor(2 * sim.Second)
	if got := d.DirtyBytesSince(mark2); got != 20_000_000 {
		t.Fatalf("after re-mark: %d bytes, want 20MB", got)
	}
}

func TestDefaultDirtyRateApplies(t *testing.T) {
	e, d := bootedDomain(t)
	mark := d.MarkClean()
	e.k.RunFor(sim.Second)
	want := int64(DefaultDirtyRate)
	if got := d.DirtyBytesSince(mark); got != want {
		t.Fatalf("default rate gave %d, want %d", got, want)
	}
}
