package sim

import (
	"math"
	"math/rand"
)

// Distributions used throughout the simulation. They take the *rand.Rand
// explicitly so callers draw from the kernel's deterministic source.

// Exp draws an exponentially distributed duration with the given mean.
func Exp(rng *rand.Rand, mean Time) Time {
	if mean <= 0 {
		return 0
	}
	return Time(rng.ExpFloat64() * float64(mean))
}

// Normal draws a normally distributed duration, clamped at zero.
func Normal(rng *rand.Rand, mean, stddev Time) Time {
	d := float64(mean) + rng.NormFloat64()*float64(stddev)
	if d < 0 {
		return 0
	}
	return Time(d)
}

// NormalSigned draws a normally distributed duration that may be negative
// (e.g. a clock offset).
func NormalSigned(rng *rand.Rand, mean, stddev Time) Time {
	return Time(float64(mean) + rng.NormFloat64()*float64(stddev))
}

// LogNormal draws a log-normally distributed duration whose underlying
// normal has the given mu and sigma (of log-nanoseconds). Used for
// heavy-tailed latencies such as ssh dispatch under load.
func LogNormal(rng *rand.Rand, median Time, sigma float64) Time {
	if median <= 0 {
		return 0
	}
	// median of lognormal = exp(mu)
	x := rng.NormFloat64() * sigma
	return Time(float64(median) * math.Exp(x))
}

// Uniform draws uniformly from [lo, hi).
func Uniform(rng *rand.Rand, lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(rng.Int63n(int64(hi-lo)))
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f].
func Jitter(rng *rand.Rand, d Time, f float64) Time {
	if f <= 0 {
		return d
	}
	scale := 1 + f*(2*rng.Float64()-1)
	return Time(float64(d) * scale)
}
