// Package partition parallelizes a single simulation run: the fabric is
// decomposed into partitions (one per datacenter/fabric zone), each
// owning a complete self-contained sub-simulation — its own sim.Kernel,
// RNG, site slice, and tracer child — and the partitions are
// synchronized with a conservative time-window protocol.
//
// # Protocol
//
// Every partition's kernel carries a Gate (sim.SetGate). A partition
// executes events only strictly below the globally granted horizon H;
// when its next event (or a RunUntil deadline) lies at or beyond H it
// blocks in the gate. When ALL live partitions are blocked, the last
// arrival performs the exchange under the coordinator lock:
//
//  1. Every staged cross-partition message — sorted by (arrival time,
//     source partition id, per-source sequence), never by goroutine
//     arrival order — is injected into its destination kernel via At,
//     lowering that partition's request if the message precedes it.
//  2. The new horizon is H' = m + L, where m = min over live partitions'
//     requested times and L is the lookahead (the minimum
//     cross-partition link latency; see netsim.MinCrossLatency).
//  3. Partitions whose request lies below H' are released.
//
// Safety: a message sent at virtual time s carries arrival s' >= s + L
// (Partition.Send enforces it), and every sender executes at s < H', so
// s' >= m + L = H' — no message can ever be injected at or before a
// timestamp another partition has already executed past. Progress: the
// partition owning m is always released (m < m + L for L > 0), so every
// barrier fires at least one event somewhere and idle gaps are jumped in
// a single exchange. Termination: when every live partition reports
// need = sim.MaxTime and nothing is staged, the coordinator closes the
// gates.
//
// # Determinism
//
// The windowed schedule is a pure function of virtual times and partition
// ids: the horizon only moves when every live partition is blocked, the
// release set is fixed by the requests, and injections are ordered by
// (arrival, source partition, source sequence). The Workers limit is an
// execution throttle (a counting semaphore around the running phase),
// not a scheduling input — output bytes are identical for any worker
// count, which TestPartitionedMatchesSerial pins the way
// TestParallelMatchesSerial pins trial-level parallelism.
//
// This package is — alongside internal/fleet — sanctioned real
// concurrency next to the deterministic core; see the dvclint notes in
// internal/analysis/rules.go. Closures handed to Coordinator.Run must
// not capture kernel-reaching state from the spawning goroutine (the
// fleetscope analyzer enforces it); each driver builds its whole world
// inside itself.
package partition

import (
	"fmt"
	"sort"
	"sync"

	"dvc/internal/sim"
)

// Config parameterizes a partitioned run.
type Config struct {
	// Lookahead is the conservative window width L: the smallest
	// cross-partition delay any message can have. Must be > 0 — with the
	// fabric partitioned on zone boundaries this is the minimum
	// cross-partition link latency (netsim.MinCrossLatency).
	Lookahead sim.Time
	// Workers bounds how many partitions execute concurrently; <= 0
	// means one goroutine per partition (no throttle). Purely a
	// wall-clock knob: output is byte-identical for any value.
	Workers int
}

// message is one staged cross-partition event.
type message struct {
	arrive sim.Time
	src    int
	seq    uint64
	dst    int
	fn     func()
}

// Stats counts coordinator activity over one Run.
type Stats struct {
	// Barriers is the number of exchanges (horizon advances).
	Barriers uint64
	// GateWaits counts partition blocks — each is one sync-barrier stall.
	GateWaits uint64
	// Forwarded counts cross-partition messages injected.
	Forwarded uint64
	// DroppedClosed counts messages addressed to a partition whose
	// driver had already finished (or that never bound a kernel).
	DroppedClosed uint64
}

// Coordinator owns the barrier state of one partitioned run.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	parts   []*Partition
	waiting int
	done    int
	closed  bool
	horizon sim.Time
	stats   Stats

	sem chan struct{} // counting semaphore bounding running partitions
}

// Partition is one member of a partitioned run. Its exported methods are
// called by the partition's own driver goroutine (Bind, Send) or before
// Run starts (ID, Name).
type Partition struct {
	id   int
	name string
	c    *Coordinator
	cond sync.Cond

	k       *sim.Kernel // bound by the driver; touched by the coordinator only at barriers
	outbox  []message   // staged sends; drained at barriers
	outSeq  uint64
	req     sim.Time
	waiting bool
	done    bool
}

// ID returns the stable partition id (its index in declaration order) —
// the tiebreaker that fixes cross-partition event ordering.
func (p *Partition) ID() int { return p.id }

// Name returns the partition's display name.
func (p *Partition) Name() string { return p.name }

// Kernel returns the kernel the driver bound to this partition (nil
// before Bind). Only the partition's own driver goroutine may use it —
// kernels never cross goroutines.
func (p *Partition) Kernel() *sim.Kernel { return p.k }

// NewCoordinator creates a coordinator with one partition per name, in
// order; the index in names is the partition id.
func NewCoordinator(cfg Config, names ...string) *Coordinator {
	if cfg.Lookahead <= 0 {
		panic("partition: Lookahead must be > 0 (the conservative window needs a positive width)")
	}
	if len(names) == 0 {
		panic("partition: need at least one partition")
	}
	c := &Coordinator{cfg: cfg}
	for i, name := range names {
		p := &Partition{id: i, name: name, c: c, req: sim.MaxTime}
		p.cond.L = &c.mu
		c.parts = append(c.parts, p)
	}
	if cfg.Workers > 0 && cfg.Workers < len(names) {
		c.sem = make(chan struct{}, cfg.Workers)
	}
	return c
}

// Partitions returns the coordinator's partitions in id order.
func (c *Coordinator) Partitions() []*Partition { return c.parts }

// Stats returns a snapshot of the coordinator counters. Call it after
// Run returns (or from a driver; it locks).
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Bind attaches the driver's kernel to its partition, installing the
// conservative gate. Every driver that runs a kernel must Bind it before
// the first Run/RunUntil/Step; the initial horizon is zero, so the first
// event immediately blocks into the first exchange.
func (p *Partition) Bind(k *sim.Kernel) {
	p.c.mu.Lock()
	p.k = k
	p.c.mu.Unlock()
	k.SetGate(p.gate, 0)
}

// Send stages fn to execute on partition dst's kernel at virtual time
// arrive. It must be called from p's own driver (during event
// execution): the conservative contract requires
// arrive >= p's now + Lookahead, which is checked. Messages become
// visible to dst at the next exchange, ordered by
// (arrive, source partition id, per-source sequence).
func (p *Partition) Send(dst int, arrive sim.Time, fn func()) {
	if dst < 0 || dst >= len(p.c.parts) {
		panic(fmt.Sprintf("partition: Send to unknown partition %d", dst))
	}
	if fn == nil {
		panic("partition: Send with nil callback")
	}
	if p.k != nil {
		if min := p.k.Now() + p.c.cfg.Lookahead; arrive < min {
			panic(fmt.Sprintf("partition: message under lookahead (arrive=%v < now+L=%v); the lookahead must not exceed the minimum cross-partition delay", arrive, min))
		}
	}
	p.outbox = append(p.outbox, message{arrive: arrive, src: p.id, seq: p.outSeq, dst: dst, fn: fn})
	p.outSeq++
}

// gate is the sim.Gate installed on the partition's kernel: record the
// request, complete the barrier if last, park until released, and return
// the horizon granted by the releasing exchange.
func (p *Partition) gate(need sim.Time) (sim.Time, bool) {
	c := p.c
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, false
	}
	p.req = need
	p.waiting = true
	c.waiting++
	c.stats.GateWaits++
	c.releaseSlot() // free an execution slot while parked
	if c.waiting == len(c.parts)-c.done {
		c.exchangeLocked()
	}
	for p.waiting && !c.closed {
		p.cond.Wait()
	}
	granted := c.horizon
	closed := c.closed
	c.mu.Unlock()
	c.acquireSlot() // re-claim an execution slot before running on
	if closed {
		return 0, false
	}
	return granted, true
}

// Run executes driver once per partition, each on its own goroutine, and
// returns when every driver has. The driver builds the partition's
// entire sub-simulation inside itself (fleetscope enforces that its
// closure captures no kernel-reaching state), Binds its kernel, and
// drives it; gates, message exchange and the Workers throttle are
// handled here. A panicking driver is counted as finished — so the
// remaining partitions are not deadlocked at the barrier — and the
// first panic (by partition id) is re-raised after all drivers return.
func (c *Coordinator) Run(driver func(p *Partition)) {
	var wg sync.WaitGroup
	panics := make([]any, len(c.parts))
	for _, p := range c.parts {
		wg.Add(1)
		go func(p *Partition) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[p.id] = r
				}
				c.finish(p)
			}()
			c.acquireSlot()
			defer c.releaseSlot()
			driver(p)
		}(p)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
}

// finish marks a partition's driver as returned and completes the
// barrier if it was the last one standing.
func (c *Coordinator) finish(p *Partition) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.done {
		return
	}
	p.done = true
	p.req = sim.MaxTime
	c.done++
	if c.done == len(c.parts) {
		c.closeLocked()
		return
	}
	if c.waiting == len(c.parts)-c.done && c.waiting > 0 {
		c.exchangeLocked()
	}
}

// exchangeLocked is the barrier body: inject staged messages in
// deterministic order, recompute the horizon, release the partitions it
// covers. Caller holds c.mu and has established that every live
// partition is waiting.
func (c *Coordinator) exchangeLocked() {
	c.stats.Barriers++

	var staged []message
	for _, p := range c.parts {
		staged = append(staged, p.outbox...)
		p.outbox = p.outbox[:0]
	}
	sort.Slice(staged, func(i, j int) bool {
		a, b := staged[i], staged[j]
		if a.arrive != b.arrive {
			return a.arrive < b.arrive
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, m := range staged {
		q := c.parts[m.dst]
		if q.done || q.k == nil {
			c.stats.DroppedClosed++
			continue
		}
		q.k.At(m.arrive, m.fn)
		c.stats.Forwarded++
		if m.arrive < q.req {
			q.req = m.arrive
		}
	}

	min := sim.MaxTime
	for _, p := range c.parts {
		if !p.done && p.req < min {
			min = p.req
		}
	}
	if min == sim.MaxTime {
		// Nothing pending anywhere and nothing in flight: global
		// termination.
		c.closeLocked()
		return
	}
	h := min + c.cfg.Lookahead
	if h <= min { // overflow guard near MaxTime
		h = sim.MaxTime
	}
	c.horizon = h
	for _, p := range c.parts {
		if p.waiting && p.req < h {
			p.waiting = false
			c.waiting--
			p.cond.Signal()
		}
	}
}

// closeLocked ends the run: every parked partition's gate returns
// closed.
func (c *Coordinator) closeLocked() {
	c.closed = true
	for _, p := range c.parts {
		if p.waiting {
			p.waiting = false
			c.waiting--
			p.cond.Signal()
		}
	}
}

// acquireSlot claims an execution slot when a worker throttle is
// configured. Must not be called with c.mu held: parked partitions do
// not hold slots, so a holder blocking here while holding the lock
// could deadlock the exchange.
func (c *Coordinator) acquireSlot() {
	if c.sem != nil {
		c.sem <- struct{}{}
	}
}

// releaseSlot returns an execution slot; never blocks.
func (c *Coordinator) releaseSlot() {
	if c.sem != nil {
		<-c.sem
	}
}

// Single installs a degenerate single-partition gate on k: every finite
// request is granted need + max(lookahead, 1) immediately and nothing is
// ever injected; an empty queue (need == sim.MaxTime) closes the gate,
// which is exactly the serial kernel's queue-drained return — with no
// neighbors there is nothing to wait for. It exercises the gated kernel
// arithmetic a real coordinator does while provably preserving the
// serial schedule: the engine behind `-partitions` on single-zone
// topologies, and the baseline the equivalence tests compare against.
func Single(k *sim.Kernel, lookahead sim.Time) {
	if lookahead < 1 {
		lookahead = 1
	}
	k.SetGate(func(need sim.Time) (sim.Time, bool) {
		if need == sim.MaxTime {
			return 0, false
		}
		if need > sim.MaxTime-lookahead {
			return sim.MaxTime, true
		}
		return need + lookahead, true
	}, 0)
}
