package partition_test

import (
	"fmt"
	"reflect"
	"testing"

	"dvc/internal/sim"
	"dvc/internal/sim/partition"
)

// hit is one observed cross-partition delivery.
type hit struct {
	Part  int
	At    sim.Time
	Round int
}

// runPingPong drives `rounds` message round-trips between two partitions
// with the given lookahead and link latency, returning each partition's
// delivery log and the coordinator stats. The drivers build their whole
// world inside themselves (the fleetscope contract).
func runPingPong(workers, rounds int, lookahead, latency sim.Time) ([][]hit, partition.Stats) {
	c := partition.NewCoordinator(partition.Config{Lookahead: lookahead, Workers: workers}, "left", "right")
	logs := make([][]hit, 2)
	var bounce [2]func(p *partition.Partition, round int)
	parts := c.Partitions()
	for i := range bounce {
		i := i
		bounce[i] = func(p *partition.Partition, round int) {
			logs[i] = append(logs[i], hit{Part: i, At: p.Kernel().Now(), Round: round})
			if round < rounds {
				dst := 1 - i
				p.Send(dst, p.Kernel().Now()+latency, wrap(parts[dst], &bounce[dst], round+1))
			}
		}
	}
	c.Run(func(p *partition.Partition) {
		k := sim.NewKernel(int64(p.ID()) + 7)
		p.Bind(k)
		if p.ID() == 0 {
			k.At(1, func() {
				p.Send(1, k.Now()+latency, wrap(parts[1], &bounce[1], 1))
			})
		}
		k.Run()
	})
	return logs, c.Stats()
}

// wrap defers the handler lookup to execution time on the destination's
// goroutine (the handler pointer is written by the destination itself).
func wrap(dst *partition.Partition, h *func(p *partition.Partition, round int), round int) func() {
	return func() { (*h)(dst, round) }
}

// TestPingPongDeterministic: the delivery schedule is a pure function of
// virtual time — identical logs at every worker count.
func TestPingPongDeterministic(t *testing.T) {
	const rounds = 50
	lat := 350 * sim.Microsecond
	var base [][]hit
	for _, workers := range []int{1, 2, 0} {
		logs, stats := runPingPong(workers, rounds, lat, lat)
		if workers == 1 {
			base = logs
		} else if !reflect.DeepEqual(base, logs) {
			t.Fatalf("workers=%d delivery log diverged from workers=1:\n%v\nvs\n%v", workers, base, logs)
		}
		if got := int(stats.Forwarded); got != rounds {
			t.Fatalf("workers=%d forwarded %d messages, want %d", workers, got, rounds)
		}
		if stats.Barriers == 0 {
			t.Fatalf("workers=%d ran with zero barriers", workers)
		}
	}
	// The message at round r lands at 1 + r*latency on alternating sides.
	if len(base[1]) == 0 || base[1][0].At != 1+lat {
		t.Fatalf("first delivery = %+v, want time %v on partition 1", base[1], 1+lat)
	}
}

// TestLowLookaheadNoDeadlock: a lookahead of a single nanosecond — the
// window is one event wide, the WAN-only worst case — must still make
// progress and produce the identical schedule, just with more barriers.
func TestLowLookaheadNoDeadlock(t *testing.T) {
	const rounds = 25
	lat := 2500 * sim.Microsecond
	wide, _ := runPingPong(1, rounds, lat, lat)
	narrow, stats := runPingPong(2, rounds, sim.Nanosecond, lat)
	if !reflect.DeepEqual(wide, narrow) {
		t.Fatalf("1ns-lookahead schedule diverged from full-lookahead schedule")
	}
	if stats.Barriers <= uint64(rounds) {
		t.Fatalf("expected more barriers than rounds under a one-event window, got %d", stats.Barriers)
	}
}

// TestInjectionOrderDeterministic: simultaneous arrivals are injected by
// (arrival, source partition id, per-source sequence) — never goroutine
// arrival order.
func TestInjectionOrderDeterministic(t *testing.T) {
	const L = 100
	run := func(workers int) []string {
		c := partition.NewCoordinator(partition.Config{Lookahead: L, Workers: workers}, "a", "b", "sink")
		var got []string
		note := func(tag string) func() {
			return func() { got = append(got, tag) }
		}
		c.Run(func(p *partition.Partition) {
			k := sim.NewKernel(int64(p.ID()))
			p.Bind(k)
			switch p.ID() {
			case 0:
				k.At(1, func() {
					p.Send(2, 1000, note("a/seq0@1000"))
					p.Send(2, 1000, note("a/seq1@1000"))
				})
			case 1:
				k.At(1, func() {
					p.Send(2, 1000, note("b/seq0@1000"))
					p.Send(2, 999, note("b/seq1@999"))
				})
			}
			k.Run()
		})
		return got
	}
	want := []string{"b/seq1@999", "a/seq0@1000", "a/seq1@1000", "b/seq0@1000"}
	for _, workers := range []int{1, 3} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d injection order = %v, want %v", workers, got, want)
		}
	}
}

// TestDeadlineJumpAcrossPartitions: a partition parked on a RunUntil
// deadline still receives messages injected below it, and its clock
// lands exactly on the deadline afterwards.
func TestDeadlineJumpAcrossPartitions(t *testing.T) {
	const L = 50
	c := partition.NewCoordinator(partition.Config{Lookahead: L}, "idle", "sender")
	var (
		seen  []sim.Time
		atEnd sim.Time
	)
	c.Run(func(p *partition.Partition) {
		k := sim.NewKernel(int64(p.ID()))
		p.Bind(k)
		switch p.ID() {
		case 0:
			k.RunUntil(10_000)
			atEnd = k.Now()
		case 1:
			k.At(1, func() {
				now := k.Now()
				p.Send(0, now+L, func() { seen = append(seen, now+L) })
			})
			k.Run()
		}
	})
	if len(seen) != 1 || seen[0] != 1+L {
		t.Fatalf("parked partition saw %v, want one delivery at %d", seen, 1+L)
	}
	if atEnd != 10_000 {
		t.Fatalf("parked partition ended at %v, want 10000", atEnd)
	}
}

// TestSendUnderLookaheadPanics: staging a message closer than the
// lookahead window is the one way to corrupt the conservative protocol,
// so it must refuse loudly.
func TestSendUnderLookaheadPanics(t *testing.T) {
	c := partition.NewCoordinator(partition.Config{Lookahead: 100}, "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from an under-lookahead Send")
		}
	}()
	c.Run(func(p *partition.Partition) {
		k := sim.NewKernel(0)
		p.Bind(k)
		if p.ID() == 0 {
			k.At(1, func() { p.Send(1, 50, func() {}) }) // 50 < now+L
		}
		k.Run()
	})
}

// TestDriverPanicPropagates: a panicking driver neither deadlocks the
// surviving partitions nor swallows the panic; messages to the dead
// partition are dropped and counted.
func TestDriverPanicPropagates(t *testing.T) {
	c := partition.NewCoordinator(partition.Config{Lookahead: 100}, "dies", "survives")
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		c.Run(func(p *partition.Partition) {
			k := sim.NewKernel(0)
			p.Bind(k)
			if p.ID() == 0 {
				panic("driver zero dies")
			}
			k.At(1, func() { p.Send(0, 1000, func() {}) })
			k.Run()
		})
	}()
	if fmt.Sprint(recovered) != "driver zero dies" {
		t.Fatalf("recovered %v, want the driver's panic", recovered)
	}
	if st := c.Stats(); st.DroppedClosed != 1 {
		t.Fatalf("DroppedClosed = %d, want 1", st.DroppedClosed)
	}
}

// TestSingleMatchesUngated: the degenerate one-partition gate preserves
// the serial schedule exactly — fired counts, event times, and the
// RunUntil clock jump.
func TestSingleMatchesUngated(t *testing.T) {
	script := func(k *sim.Kernel) []sim.Time {
		var fired []sim.Time
		var tick func()
		n := 0
		tick = func() {
			fired = append(fired, k.Now())
			if n++; n < 10 {
				k.After(7, tick)
			}
		}
		k.After(3, tick)
		k.RunFor(20) // partial drain + clock jump
		fired = append(fired, k.Now())
		k.Run() // drain the rest
		fired = append(fired, k.Now())
		return fired
	}
	plain := sim.NewKernel(42)
	base := script(plain)

	gated := sim.NewKernel(42)
	partition.Single(gated, 350*sim.Microsecond)
	got := script(gated)

	if !reflect.DeepEqual(base, got) {
		t.Fatalf("Single-gated schedule diverged:\nungated: %v\ngated:   %v", base, got)
	}
	if plain.Fired() != gated.Fired() {
		t.Fatalf("fired counts diverged: %d vs %d", plain.Fired(), gated.Fired())
	}
}
