package partition_test

import (
	"testing"

	"dvc/internal/netsim"
	"dvc/internal/sim"
	"dvc/internal/sim/partition"
)

// buildZonedFabric registers both clusters (with their zones) on one
// fabric — the remote one stays fabric-only, exactly as the zone-sliced
// topology builder leaves it — so link-profile resolution works on every
// partition identically.
func buildZonedFabric(k *sim.Kernel) *netsim.Fabric {
	f := netsim.NewFabric(k)
	f.AddCluster("west", netsim.EthernetGigE())
	f.AddCluster("east", netsim.EthernetGigE())
	f.SetClusterZone("west", 0)
	f.SetClusterZone("east", 1)
	return f
}

// TestMinCrossLatency: the lookahead bound is the smallest latency of
// any profile joining clusters of different partitions — here the
// cross-zone WAN.
func TestMinCrossLatency(t *testing.T) {
	f := buildZonedFabric(sim.NewKernel(1))
	zoneOf := func(cluster string) int { return f.ClusterZone(cluster) }
	if got, want := f.MinCrossLatency(zoneOf), netsim.MultiDatacenterWAN().Latency; got != want {
		t.Fatalf("MinCrossLatency = %v, want the WAN latency %v", got, want)
	}
	// One partition owning everything has no cross traffic to bound.
	if got := f.MinCrossLatency(func(string) int { return 0 }); got != 0 {
		t.Fatalf("MinCrossLatency with a single partition = %v, want 0", got)
	}
}

// TestCrossPartitionPacket: a packet sent to an address owned by another
// partition's fabric arrives there at exactly send time + WAN latency,
// with send-side accounting on the source fabric and delivery accounting
// on the destination's.
func TestCrossPartitionPacket(t *testing.T) {
	wan := netsim.MultiDatacenterWAN().Latency
	run := func(workers int) (arrivedAt sim.Time, aStats, bStats netsim.Stats) {
		c := partition.NewCoordinator(partition.Config{Lookahead: wan, Workers: workers}, "west", "east")
		nm := partition.NewNetMap(c)
		nm.Register("a0", "west", 0)
		nm.Register("b0", "east", 1)
		fabrics := make([]*netsim.Fabric, 2)
		c.Run(func(p *partition.Partition) {
			k := sim.NewKernel(int64(p.ID()))
			f := buildZonedFabric(k)
			fabrics[p.ID()] = f
			p.Bind(k)
			nm.Bind(p, f)
			switch p.ID() {
			case 0:
				f.Attach("a0", "west", nil)
				k.At(1, func() { f.Send(netsim.Packet{Src: "a0", Dst: "b0"}) })
			case 1:
				f.Attach("b0", "east", func(pkt netsim.Packet) { arrivedAt = k.Now() })
			}
			k.Run()
		})
		return arrivedAt, fabrics[0].Stats(), fabrics[1].Stats()
	}

	for _, workers := range []int{1, 2} {
		arrivedAt, a, b := run(workers)
		if want := 1 + wan; arrivedAt != want {
			t.Fatalf("workers=%d packet arrived at %v, want %v", workers, arrivedAt, want)
		}
		if a.Sent != 1 || a.Forwarded != 1 || a.Delivered != 0 {
			t.Fatalf("workers=%d source stats = %+v, want Sent=1 Forwarded=1", workers, a)
		}
		if b.Delivered != 1 || b.Sent != 0 {
			t.Fatalf("workers=%d destination stats = %+v, want Delivered=1", workers, b)
		}
	}
}

// TestCrossPartitionUnknownAddr: an address no partition registered
// drops as no-dest on the sending fabric, exactly like a monolithic
// fabric would drop it.
func TestCrossPartitionUnknownAddr(t *testing.T) {
	c := partition.NewCoordinator(partition.Config{Lookahead: 100}, "west", "east")
	nm := partition.NewNetMap(c)
	nm.Register("a0", "west", 0)
	var stats netsim.Stats
	c.Run(func(p *partition.Partition) {
		k := sim.NewKernel(int64(p.ID()))
		f := buildZonedFabric(k)
		p.Bind(k)
		nm.Bind(p, f)
		if p.ID() == 0 {
			f.Attach("a0", "west", nil)
			k.At(1, func() { f.Send(netsim.Packet{Src: "a0", Dst: "nowhere", Size: 8}) })
			k.Run()
			stats = f.Stats()
		} else {
			k.Run()
		}
	})
	if stats.DroppedNoDest != 1 || stats.Forwarded != 0 || stats.Sent != 0 {
		t.Fatalf("stats = %+v, want one no-dest drop and nothing forwarded", stats)
	}
}

// TestCrossPartitionDownDest: a destination that is down when the packet
// lands loses it on the wire — delivery-side semantics match the local
// path ("packets to a saved VM are lost on the wire").
func TestCrossPartitionDownDest(t *testing.T) {
	wan := netsim.MultiDatacenterWAN().Latency
	c := partition.NewCoordinator(partition.Config{Lookahead: wan}, "west", "east")
	nm := partition.NewNetMap(c)
	nm.Register("a0", "west", 0)
	nm.Register("b0", "east", 1)
	var dstStats netsim.Stats
	c.Run(func(p *partition.Partition) {
		k := sim.NewKernel(int64(p.ID()))
		f := buildZonedFabric(k)
		p.Bind(k)
		nm.Bind(p, f)
		switch p.ID() {
		case 0:
			f.Attach("a0", "west", nil)
			k.At(1, func() { f.Send(netsim.Packet{Src: "a0", Dst: "b0"}) })
			k.Run()
		case 1:
			port := f.Attach("b0", "east", func(netsim.Packet) {})
			port.SetUp(false)
			k.Run()
			dstStats = f.Stats()
		}
	})
	if dstStats.DroppedDown != 1 || dstStats.Delivered != 0 {
		t.Fatalf("destination stats = %+v, want one dest-down drop", dstStats)
	}
}
