package partition

import (
	"fmt"

	"dvc/internal/netsim"
	"dvc/internal/sim"
)

// NetMap routes packets between the per-partition fabrics of a
// partitioned run. It is a static address directory — built on the
// spawning goroutine before Coordinator.Run starts, immutable afterwards
// — plus one netsim.Remote adapter per partition: Send on a bound fabric
// resolves unknown destinations through the directory and stages the
// packet as a timestamped inter-kernel message; the destination fabric
// completes it with InjectDelivery when the message executes.
type NetMap struct {
	c       *Coordinator
	routes  map[netsim.Addr]netRoute
	fabrics []*netsim.Fabric // indexed by partition id; each written by its own driver in Bind
}

type netRoute struct {
	part    int
	cluster string
}

// NewNetMap creates an empty directory for the coordinator's partitions.
func NewNetMap(c *Coordinator) *NetMap {
	return &NetMap{
		c:       c,
		routes:  make(map[netsim.Addr]netRoute),
		fabrics: make([]*netsim.Fabric, len(c.Partitions())),
	}
}

// Register declares that addr lives in cluster on partition part. All
// registration happens before Coordinator.Run — the directory is read
// concurrently by every partition once drivers start.
func (m *NetMap) Register(addr netsim.Addr, cluster string, part int) {
	if part < 0 || part >= len(m.fabrics) {
		panic(fmt.Sprintf("partition: route %q to unknown partition %d", addr, part))
	}
	if prev, dup := m.routes[addr]; dup && prev != (netRoute{part: part, cluster: cluster}) {
		panic(fmt.Sprintf("partition: conflicting routes for %q", addr))
	}
	m.routes[addr] = netRoute{part: part, cluster: cluster}
}

// Bind attaches a partition's fabric to the directory: cross-partition
// destinations resolve through Register'd routes, inbound packets inject
// into f. The partition's own driver calls it, after building the fabric
// and before running the kernel.
func (m *NetMap) Bind(p *Partition, f *netsim.Fabric) {
	m.fabrics[p.id] = f
	f.SetRemote(&netAdapter{m: m, p: p})
}

// netAdapter implements netsim.Remote for one partition's fabric.
type netAdapter struct {
	m *NetMap
	p *Partition
}

// RemoteCluster resolves the cluster of an address another partition
// owns. An address routed to this same partition is local-but-detached:
// reporting it unknown keeps the no-dest drop semantics of a monolithic
// fabric.
func (a *netAdapter) RemoteCluster(addr netsim.Addr) (string, bool) {
	r, ok := a.m.routes[addr]
	if !ok || r.part == a.p.id {
		return "", false
	}
	return r.cluster, true
}

// Forward stages the transmitted packet for the owning partition. The
// injected callback runs on the destination's goroutine, whose own
// driver wrote the fabric pointer it reads.
func (a *netAdapter) Forward(pkt netsim.Packet, arrive sim.Time) {
	r := a.m.routes[pkt.Dst] // present: RemoteCluster just resolved it
	m, dst := a.m, r.part
	a.p.Send(dst, arrive, func() { m.fabrics[dst].InjectDelivery(pkt) })
}
