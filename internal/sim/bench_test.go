package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
)

// BenchmarkKernelChurn measures the kernel's raw event path: schedule an
// event, let it fire, schedule the next — the shape of every hot loop in
// the simulator (TCP transmissions, scheduler pumps, netsim deliveries).
// A quarter of the scheduled events are cancelled before firing to
// exercise the dead-entry path. The per-op unit is one scheduled event.
//
// With DVC_BENCH_JSON=<path> the result is appended to the BENCH_kernel
// JSON artifact (see reportBenchJSON).
func BenchmarkKernelChurn(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel(1)
	var fired int
	var fn func()
	fn = func() { fired++ }
	// Warm the slab/heap so steady state (not growth) is measured.
	for i := 0; i < 1024; i++ {
		k.After(Time(i), fn)
	}
	k.Run()
	allocs := startAllocCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := k.After(Time(i%64), fn)
		if i%4 == 3 {
			h.Cancel()
		}
		if i%16 == 15 {
			k.Run()
		}
	}
	k.Run()
	b.StopTimer()
	if fired == 0 {
		b.Fatal("no events fired")
	}
	reportBenchJSON(b, "BenchmarkKernelChurn", allocs.perOp(b.N))
}

// BenchmarkTimerRearm measures the rearm-in-place fast path: one pinned
// Timer slot Reset over and over, the shape of a TCP RTO or watchdog that
// is pushed out on every packet. No slot traffic, no closure allocation —
// just a seq assignment and a heap sift.
func BenchmarkTimerRearm(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel(1)
	fired := 0
	tm := NewTimer(k, func() { fired++ })
	// Background events so the sift has a heap to move through.
	var fn func()
	fn = func() { k.After(Time(64), fn) }
	for i := 0; i < 63; i++ {
		k.After(Time(i+1), fn)
	}
	tm.Reset(32)
	allocs := startAllocCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(Time(i%64 + 1))
		if i%16 == 15 {
			k.Step()
		}
	}
	b.StopTimer()
	reportBenchJSON(b, "BenchmarkTimerRearm", allocs.perOp(b.N))
}

// TestKernelChurnZeroAllocs is the CI allocation gate: the steady-state
// schedule/cancel/fire loop must not allocate at all (the ISSUE bound is
// < 1 alloc/event; the slab achieves 0). testing.AllocsPerRun measures a
// warm kernel, so slab/heap growth — a one-time cost — is excluded.
func TestKernelChurnZeroAllocs(t *testing.T) {
	k := NewKernel(1)
	var fn func()
	fired := 0
	fn = func() { fired++ }
	for i := 0; i < 1024; i++ {
		k.After(Time(i), fn)
	}
	k.Run()
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		h := k.After(Time(i%64), fn)
		if i%4 == 3 {
			h.Cancel()
		}
		if i%16 == 15 {
			k.Run()
		}
		i++
	})
	if avg > 0 {
		t.Fatalf("steady-state churn allocates %.2f allocs/event, want 0", avg)
	}

	tm := NewTimer(k, fn)
	tm.Reset(1)
	j := 0
	avg = testing.AllocsPerRun(1000, func() {
		tm.Reset(Time(j%64 + 1))
		j++
	})
	if avg > 0 {
		t.Fatalf("timer rearm allocates %.2f allocs/op, want 0", avg)
	}
}

// allocCount snapshots the allocator so benchmarks can report allocs/op
// into the JSON artifact (testing only prints them with -benchmem; the
// artifact needs them machine-readable).
type allocCount struct{ start uint64 }

func startAllocCount() allocCount {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return allocCount{start: m.Mallocs}
}

func (a allocCount) perOp(n int) float64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.Mallocs-a.start) / float64(n)
}

// reportBenchJSON appends this benchmark's ns/op and allocs/op into the
// shared JSON artifact named by DVC_BENCH_JSON. Each benchmark writes one
// JSON object per line; the CI step assembles BENCH_kernel.json from them.
func reportBenchJSON(b *testing.B, name string, allocsPerOp float64) {
	path := os.Getenv("DVC_BENCH_JSON")
	if path == "" {
		return
	}
	doc := struct {
		Benchmark   string  `json:"benchmark"`
		N           int     `json:"n"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	}{name, b.N, float64(b.Elapsed().Nanoseconds()) / float64(b.N), allocsPerOp}
	data, err := json.Marshal(doc)
	if err != nil {
		b.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n", data)
}
