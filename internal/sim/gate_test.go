package sim

import "testing"

// scriptGate is a table-driven Gate: each call consumes one step,
// optionally injecting events before returning its horizon. It records
// the `need` values the kernel asked for.
type scriptGate struct {
	t     *testing.T
	k     *Kernel
	steps []gateStep
	needs []Time
}

type gateStep struct {
	horizon Time
	open    bool
	inject  func(k *Kernel)
}

func (g *scriptGate) gate(need Time) (Time, bool) {
	g.needs = append(g.needs, need)
	if len(g.steps) == 0 {
		g.t.Fatalf("gate called with need=%v after script exhausted", need)
	}
	st := g.steps[0]
	g.steps = g.steps[1:]
	if st.inject != nil {
		st.inject(g.k)
	}
	return st.horizon, st.open
}

// TestGateAdmitsWithinHorizon: events fire only strictly below the
// granted horizon, and the kernel reports its next event time as `need`
// each time it is blocked.
func TestGateAdmitsWithinHorizon(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	g := &scriptGate{t: t, k: k, steps: []gateStep{
		{horizon: 25, open: true}, // admits 10 and 20
		{horizon: 31, open: true}, // admits 30
		{horizon: 0, open: false}, // queue empty: close
	}}
	k.SetGate(g.gate, 5) // initial horizon below the first event

	n := k.Run()
	if n != 3 {
		t.Fatalf("Run fired %d events, want 3", n)
	}
	if len(fired) != 3 || fired[0] != 10 || fired[1] != 20 || fired[2] != 30 {
		t.Fatalf("fired = %v, want [10 20 30]", fired)
	}
	// Blocked at 10 (horizon 5), then at 30 (horizon 25), then empty.
	want := []Time{10, 30, MaxTime}
	if len(g.needs) != len(want) {
		t.Fatalf("gate needs = %v, want %v", g.needs, want)
	}
	for i := range want {
		if g.needs[i] != want[i] {
			t.Fatalf("gate needs = %v, want %v", g.needs, want)
		}
	}
}

// TestGateInjection: work injected by the gate while the kernel is
// blocked executes in timestamp order with the kernel's own events.
func TestGateInjection(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	k.At(100, func() { fired = append(fired, 100) })
	g := &scriptGate{t: t, k: k, steps: []gateStep{
		{horizon: 120, open: true, inject: func(k *Kernel) {
			k.At(50, func() { fired = append(fired, 50) })
		}},
		{horizon: 0, open: false},
	}}
	k.SetGate(g.gate, 10)
	k.Run()
	if len(fired) != 2 || fired[0] != 50 || fired[1] != 100 {
		t.Fatalf("fired = %v, want [50 100]", fired)
	}
}

// TestGateClosedStopsRun: a closed gate ends the run with events still
// queued, and the queue is untouched.
func TestGateClosedStopsRun(t *testing.T) {
	k := NewKernel(1)
	k.At(10, func() { t.Fatal("event fired through a closed gate") })
	g := &scriptGate{t: t, k: k, steps: []gateStep{{horizon: 0, open: false}}}
	k.SetGate(g.gate, 5)
	if n := k.Run(); n != 0 {
		t.Fatalf("Run fired %d events through a closed gate", n)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d after closed-gate run, want 1", k.Pending())
	}
}

// TestGatedRunUntilDeadline: the trailing clock jump waits for the
// horizon to pass the deadline, and events other partitions inject below
// the deadline while the kernel is parked still execute.
func TestGatedRunUntilDeadline(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	k.At(10, func() { fired = append(fired, 10) })
	g := &scriptGate{t: t, k: k, steps: []gateStep{
		{horizon: 50, open: true}, // admit the event at 10
		// Parked at the deadline (100): first grant injects work below
		// it, second grant clears the jump.
		{horizon: 90, open: true, inject: func(k *Kernel) {
			k.At(70, func() { fired = append(fired, 70) })
		}},
		{horizon: 101, open: true},
	}}
	k.SetGate(g.gate, 5)

	if n := k.RunUntil(100); n != 2 {
		t.Fatalf("RunUntil fired %d events, want 2", n)
	}
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 70 {
		t.Fatalf("fired = %v, want [10 70]", fired)
	}
	if k.Now() != 100 {
		t.Fatalf("now = %v after RunUntil(100), want 100", k.Now())
	}
	// Both parked requests carried the deadline as the needed time.
	if len(g.needs) != 3 || g.needs[1] != 100 || g.needs[2] != 100 {
		t.Fatalf("gate needs = %v, want [10 100 100]", g.needs)
	}
}

// TestGatedRunUntilClosedGateStillJumps: when the gate closes during a
// deadline request no injection can ever arrive, so the clock jump is
// safe and still happens.
func TestGatedRunUntilClosedGateStillJumps(t *testing.T) {
	k := NewKernel(1)
	g := &scriptGate{t: t, k: k, steps: []gateStep{{horizon: 0, open: false}}}
	k.SetGate(g.gate, 5)
	k.RunUntil(100)
	if k.Now() != 100 {
		t.Fatalf("now = %v, want 100 (closed gate must not block the jump)", k.Now())
	}
}

// TestGateNoProgressPanics: a gate that neither raises the horizon nor
// injects events is a contract violation the kernel refuses to spin on.
func TestGateNoProgressPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(10, func() {})
	k.SetGate(func(need Time) (Time, bool) { return 5, true }, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from a no-progress gate")
		}
	}()
	k.Step()
}
