package sim

// Tests pinning the pooled-slab event system's observable semantics:
// generation-counted handles must stay inert across slot reuse, Pending
// must report live events only, compaction must not perturb the schedule,
// and Timer rearm must consume exactly the same seq stream as the
// cancel+reschedule pattern it replaces.

import (
	"math/rand"
	"testing"
)

// TestStaleHandleNeverCancelsRecycledSlot schedules an event, lets it
// fire (freeing its slot), schedules a second event that reuses the same
// slot, and asserts the stale first handle cannot cancel — or even see —
// the second event.
func TestStaleHandleNeverCancelsRecycledSlot(t *testing.T) {
	k := NewKernel(1)
	h1 := k.After(Millisecond, func() {})
	k.Run()

	fired := false
	h2 := k.After(Millisecond, func() { fired = true })
	if h1.slot != h2.slot {
		t.Fatalf("expected slot reuse after fire: h1.slot=%d h2.slot=%d", h1.slot, h2.slot)
	}
	if h1.Pending() {
		t.Fatal("stale handle reports Pending after its event fired")
	}
	if h1.Cancel() {
		t.Fatal("stale handle cancelled a recycled slot")
	}
	k.Run()
	if !fired {
		t.Fatal("second event did not fire; stale handle interfered")
	}
}

// TestCancelledSlotReuseKeepsOldHandleInert covers the cancel (rather
// than fire) path to slot reuse: the dead entry is lazily freed when it
// surfaces, and the old handle must stay inert against the new tenant.
func TestCancelledSlotReuseKeepsOldHandleInert(t *testing.T) {
	k := NewKernel(1)
	h1 := k.After(Millisecond, func() { t.Fatal("cancelled event fired") })
	if !h1.Cancel() {
		t.Fatal("first Cancel should succeed")
	}
	if h1.Cancel() {
		t.Fatal("second Cancel on the same handle should fail")
	}
	k.Run() // surfaces the dead entry, releasing the slot

	fired := false
	h2 := k.After(Millisecond, func() { fired = true })
	if h1.slot != h2.slot {
		t.Fatalf("expected slot reuse after lazy reclaim: h1.slot=%d h2.slot=%d", h1.slot, h2.slot)
	}
	if h1.Cancel() || h1.Pending() {
		t.Fatal("stale handle still acts on a recycled slot")
	}
	k.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// TestWhenOnRecycledSlotReturnsZero: When() must go stale together with
// Pending(), not leak the recycled tenant's deadline.
func TestWhenOnRecycledSlotReturnsZero(t *testing.T) {
	k := NewKernel(1)
	h1 := k.After(Millisecond, func() {})
	if h1.When() != Millisecond {
		t.Fatalf("live When = %v, want %v", h1.When(), Millisecond)
	}
	k.Run()
	if h1.When() != 0 {
		t.Fatalf("When after fire = %v, want 0", h1.When())
	}
	h2 := k.After(5*Millisecond, func() {})
	if h1.slot != h2.slot {
		t.Fatalf("expected slot reuse: h1.slot=%d h2.slot=%d", h1.slot, h2.slot)
	}
	if h1.When() != 0 {
		t.Fatalf("stale When leaked recycled tenant's deadline: %v", h1.When())
	}
	if got := h2.When(); got != k.Now()+5*Millisecond {
		t.Fatalf("live When on recycled slot = %v", got)
	}
}

// TestPendingCountsLiveOnly is the satellite-2 regression test: cancelled
// events still occupy heap entries until lazily reclaimed, but Pending
// must not count them. The old container/heap kernel reported len(heap),
// which overstated queue depth in obs traces by orders of magnitude.
func TestPendingCountsLiveOnly(t *testing.T) {
	k := NewKernel(1)
	var hs []Handle
	for i := 0; i < 100; i++ {
		hs = append(hs, k.After(Time(i+1)*Millisecond, func() {}))
	}
	if k.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", k.Pending())
	}
	for i := 0; i < 100; i += 2 {
		hs[i].Cancel()
	}
	if k.Pending() != 50 {
		t.Fatalf("Pending after cancelling half = %d, want 50", k.Pending())
	}
	if k.deadEntries() == 0 {
		t.Fatal("expected dead entries still parked in the heap")
	}
	// peek must not change the live count even as it sweeps dead entries.
	if _, ok := k.NextEventTime(); !ok {
		t.Fatal("queue should be non-empty")
	}
	if k.Pending() != 50 {
		t.Fatalf("Pending after peek = %d, want 50", k.Pending())
	}
	k.Run()
	if k.Pending() != 0 || k.deadEntries() != 0 {
		t.Fatalf("after Run: Pending=%d dead=%d, want 0/0", k.Pending(), k.deadEntries())
	}
}

// TestCompactionReclaimsDeadAndPreservesOrder drives the dead count past
// the compaction threshold and checks both that the heap was rebuilt
// (dead reset) and that the surviving events still fire in (when, seq)
// order.
func TestCompactionReclaimsDeadAndPreservesOrder(t *testing.T) {
	k := NewKernel(7)
	rng := rand.New(rand.NewSource(42))
	var keep []int
	var order []int
	for i := 0; i < 400; i++ {
		i := i
		h := k.At(Time(rng.Intn(1000)+1)*Millisecond, func() { order = append(order, i) })
		if i%4 == 0 {
			keep = append(keep, i)
			_ = h
		} else {
			h.Cancel()
		}
	}
	// 300 cancels against 100 live: compaction must have triggered.
	if k.deadEntries() > k.Pending() {
		t.Fatalf("compaction did not run: dead=%d live=%d", k.deadEntries(), k.Pending())
	}
	if k.Pending() != len(keep) {
		t.Fatalf("Pending = %d, want %d", k.Pending(), len(keep))
	}
	k.Run()
	if len(order) != len(keep) {
		t.Fatalf("fired %d events, want %d", len(order), len(keep))
	}
	seen := make(map[int]bool)
	for _, id := range order {
		if id%4 != 0 {
			t.Fatalf("cancelled event %d fired after compaction", id)
		}
		if seen[id] {
			t.Fatalf("event %d fired twice", id)
		}
		seen[id] = true
	}
}

// TestCompactionIsScheduleNeutral runs the same randomized workload with
// and without enough cancellations to trigger compaction of *unrelated*
// events, asserting the surviving schedule is identical. Compaction must
// be invisible to pop order.
func TestCompactionIsScheduleNeutral(t *testing.T) {
	run := func(churn bool) []int {
		k := NewKernel(3)
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			k.At(Time(i%10+1)*Second, func() { order = append(order, i) })
		}
		if churn {
			// Park and cancel enough far-future events to force compaction.
			var hs []Handle
			for i := 0; i < 200; i++ {
				hs = append(hs, k.At(Hour, func() {}))
			}
			for _, h := range hs {
				h.Cancel()
			}
			if k.deadEntries() != 0 && k.deadEntries() > k.Pending() {
				t.Fatal("compaction should have triggered")
			}
		}
		k.Run()
		return order
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("schedule length changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pop order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestTimerRearmMatchesCancelReschedule asserts the Timer fast path is
// seq-for-seq identical to the Cancel+After pattern it replaces: the same
// workload driven both ways must produce the same firing times and the
// same final seq counter, so converting a call site cannot shift any
// other event's tiebreak.
func TestTimerRearmMatchesCancelReschedule(t *testing.T) {
	type obs struct {
		times []Time
		seq   uint64
	}
	viaHandle := func() obs {
		k := NewKernel(9)
		var o obs
		var h Handle
		n := 0
		var arm func(d Time)
		arm = func(d Time) {
			h = k.After(d, func() {
				o.times = append(o.times, k.Now())
				n++
				if n < 5 {
					arm(Time(n) * Millisecond)
				}
			})
		}
		arm(Millisecond)
		_ = h
		k.Run()
		o.seq = k.seq
		return o
	}
	viaTimer := func() obs {
		k := NewKernel(9)
		var o obs
		var tm *Timer
		n := 0
		tm = NewTimer(k, func() {
			o.times = append(o.times, k.Now())
			n++
			if n < 5 {
				tm.Reset(Time(n) * Millisecond)
			}
		})
		tm.Reset(Millisecond)
		k.Run()
		o.seq = k.seq
		return o
	}
	a, b := viaHandle(), viaTimer()
	if a.seq != b.seq {
		t.Fatalf("seq consumption diverged: handle=%d timer=%d", a.seq, b.seq)
	}
	if len(a.times) != len(b.times) {
		t.Fatalf("firing counts diverged: %d vs %d", len(a.times), len(b.times))
	}
	for i := range a.times {
		if a.times[i] != b.times[i] {
			t.Fatalf("firing time %d diverged: %v vs %v", i, a.times[i], b.times[i])
		}
	}
}

// TestTimerStopAndRearm covers the in-place rearm state machine:
// scheduled -> idle on Stop, idle -> scheduled on Reset, earlier/later
// rearm while scheduled, and Stop consuming no seq (parity with Cancel).
func TestTimerStopAndRearm(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	tm := NewTimer(k, func() { fired++ })

	if tm.Pending() {
		t.Fatal("fresh timer should be idle")
	}
	if tm.Stop() {
		t.Fatal("Stop on idle timer should report false")
	}
	seqBefore := k.seq
	tm.Reset(10 * Millisecond)
	if k.seq != seqBefore+1 {
		t.Fatalf("Reset consumed %d seqs, want 1", k.seq-seqBefore)
	}
	if !tm.Pending() || tm.When() != 10*Millisecond {
		t.Fatalf("timer not armed: pending=%v when=%v", tm.Pending(), tm.When())
	}
	// Rearm earlier in place, then later in place.
	tm.Reset(2 * Millisecond)
	if tm.When() != 2*Millisecond {
		t.Fatalf("earlier rearm: When=%v", tm.When())
	}
	tm.Reset(20 * Millisecond)
	if tm.When() != 20*Millisecond {
		t.Fatalf("later rearm: When=%v", tm.When())
	}
	seqBefore = k.seq
	if !tm.Stop() {
		t.Fatal("Stop on armed timer should report true")
	}
	if k.seq != seqBefore {
		t.Fatal("Stop must not consume a seq")
	}
	k.RunFor(Second)
	if fired != 0 {
		t.Fatal("stopped timer fired")
	}
	tm.Reset(Millisecond)
	k.Run()
	if fired != 1 {
		t.Fatalf("rearmed timer fired %d times, want 1", fired)
	}
	if tm.Pending() {
		t.Fatal("one-shot timer still pending after fire")
	}
	tm.Free()
	if tm.Pending() || tm.Stop() || tm.When() != 0 {
		t.Fatal("freed timer should be inert")
	}
	tm.Free() // double-free must be a no-op
}

// TestTimerFreeReleasesSlot: after Free the slot must be reusable by
// ordinary events, and the freed timer must not be able to touch it.
func TestTimerFreeReleasesSlot(t *testing.T) {
	k := NewKernel(1)
	tm := NewTimer(k, func() {})
	slot := tm.slot
	tm.Free()
	fired := false
	h := k.After(Millisecond, func() { fired = true })
	if h.slot != slot {
		t.Fatalf("expected freed timer slot %d to be reused, got %d", slot, h.slot)
	}
	if tm.Stop() {
		t.Fatal("freed timer cancelled another event")
	}
	k.Run()
	if !fired {
		t.Fatal("event on reused slot did not fire")
	}
}

// TestChurnFuzz hammers the slab with a schedule/cancel/fire mix large
// enough to exercise growth, reuse, compaction, and timer rearm together,
// cross-checking a model of expected firings. Run with -race in CI.
func TestChurnFuzz(t *testing.T) {
	const total = 1_000_000
	n := total
	if testing.Short() {
		n = 50_000
	}
	k := NewKernel(99)
	rng := rand.New(rand.NewSource(7))

	fired := 0
	cancelled := 0
	expectFired := 0
	var pendingH []Handle

	// A few long-lived timers rearming themselves throughout.
	timerFires := 0
	for i := 0; i < 8; i++ {
		var tm *Timer
		tm = NewTimer(k, func() {
			timerFires++
			tm.Reset(Time(rng.Intn(50)+1) * Millisecond)
		})
		tm.Reset(Time(i+1) * Millisecond)
	}

	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // schedule
			pendingH = append(pendingH, k.After(Time(rng.Intn(100)+1)*Millisecond, func() { fired++ }))
			expectFired++
		case 6, 7: // cancel a random outstanding handle
			if len(pendingH) > 0 {
				j := rng.Intn(len(pendingH))
				if pendingH[j].Cancel() {
					cancelled++
					expectFired--
				}
				pendingH[j] = pendingH[len(pendingH)-1]
				pendingH = pendingH[:len(pendingH)-1]
			}
		default: // drain a little
			k.RunFor(Time(rng.Intn(5)) * Millisecond)
		}
	}
	// Drain everything but the self-rearming timers.
	k.RunFor(200 * Millisecond)

	if fired != expectFired {
		t.Fatalf("fired %d events, model expected %d (cancelled %d)", fired, expectFired, cancelled)
	}
	if timerFires == 0 {
		t.Fatal("self-rearming timers never fired")
	}
	if k.Pending() != 8 { // the 8 timers are always armed
		t.Fatalf("Pending at quiescence = %d, want 8 rearming timers", k.Pending())
	}
	t.Logf("churn: %d ops, %d fired, %d cancelled, %d timer fires, slab=%d slots",
		n, fired, cancelled, timerFires, len(k.slab))
}
