// Package sim provides the deterministic discrete-event simulation kernel
// that everything else in the DVC reproduction runs on.
//
// The kernel owns virtual time. Components schedule events (callbacks) at
// absolute virtual times or after relative delays; the kernel executes them
// in time order, breaking ties by schedule order, so a simulation with a
// fixed seed is reproducible bit for bit.
//
// # Hot-path design
//
// The event path is allocation-free in steady state. Events live in a slab
// ([]event) threaded by an intrusive free list; scheduling reuses a free
// slot instead of heap-allocating, and the priority queue is a hand-rolled
// implicit 4-ary min-heap over slot indices keyed by (when, seq) — no
// interface boxing, no per-push allocation. Handles are generation-counted
// {slot, gen} values, so cancelling never pins a pointer and a recycled
// slot can never be cancelled through a stale handle. Cancelled events are
// removed lazily (the heap entry dies in place and is discarded when it
// reaches the top, or reclaimed by compaction when dead entries outnumber
// live ones). See DESIGN.md "Kernel hot path".
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. It is deliberately distinct from time.Time: simulated
// components must never consult the host clock.
type Time int64

// Common durations re-exported for readability at call sites.
const (
	Nanosecond  = Time(1)
	Microsecond = 1000 * Nanosecond
	Millisecond = 1000 * Microsecond
	Second      = 1000 * Millisecond
	Minute      = 60 * Second
	Hour        = 60 * Minute
)

// Duration converts a time.Duration into simulation time units.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// String renders the time with time.Duration formatting for logs.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds reports the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Slot states. A slot cycles free -> scheduled -> free (firing), with two
// detours: scheduled -> dead (lazy cancel, still occupying a heap entry
// until popped or compacted) and scheduled <-> idle (Timer-owned slots,
// which stay allocated to their timer between firings).
const (
	slotFree uint8 = iota
	slotScheduled
	slotDead
	slotIdle
)

// event is one slab entry. Slots are addressed by index, never by pointer:
// the slab may be reallocated by growth at any schedule point.
type event struct {
	when    Time
	seq     uint64
	fn      func()
	gen     uint32
	heapIdx int32 // position in Kernel.heap; -1 when not queued
	next    int32 // free-list link; meaningful only when state == slotFree
	state   uint8
	pinned  bool // owned by a Timer; never returned to the free list
}

// Handle identifies a scheduled event so it can be cancelled. Handles are
// single-use: once the event fires or is cancelled the handle is inert.
// A Handle is a value (kernel pointer + slot + generation); copying it is
// cheap and stale copies are harmless — the generation check makes every
// operation on a fired/cancelled/recycled slot a no-op.
type Handle struct {
	k    *Kernel
	slot int32
	gen  uint32
}

// valid reports whether the handle still refers to a scheduled event. The
// generation counter is bumped the moment an event fires or is cancelled,
// so gen equality implies state == slotScheduled.
func (h Handle) valid() bool {
	return h.k != nil && h.k.slab[h.slot].gen == h.gen
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if !h.valid() {
		return false
	}
	h.k.cancelSlot(h.slot)
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool { return h.valid() }

// When returns the virtual time the event is scheduled for, or 0 once the
// handle is stale (the event fired or was cancelled, or the slot has been
// recycled for a newer event).
func (h Handle) When() Time {
	if !h.valid() {
		return 0
	}
	return h.k.slab[h.slot].when
}

// Kernel is the discrete-event scheduler. It is not safe for concurrent
// use: the whole simulation is single-threaded by design so that runs are
// deterministic.
type Kernel struct {
	now  Time
	slab []event
	free int32   // free-list head, -1 when empty
	heap []int32 // implicit 4-ary min-heap of slot indices over (when, seq)
	live int     // scheduled (non-dead) events currently queued
	dead int     // cancelled events still occupying heap entries

	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool

	// gate, when set, makes this kernel one member of a partitioned run:
	// events execute only while they fall strictly inside the granted
	// horizon, and the kernel asks the gate — which may block, and may
	// inject new events via At before returning — whenever it needs the
	// horizon extended. See Gate and SetGate.
	gate    Gate
	granted Time
}

// Gate is the conservative-synchronization hook for partitioned runs
// (sim/partition). The kernel calls it with the earliest virtual time it
// wants to reach: the timestamp of its next pending event, or the
// RunUntil deadline it must jump to, or MaxTime when the queue is empty
// and the kernel would otherwise idle forever. The gate returns a new
// exclusive horizon — the kernel may then execute events with timestamps
// strictly below it — or open=false to end the run (global termination).
//
// The gate runs on the kernel's goroutine and may block (that block is
// the partition barrier). It may schedule new events on the kernel
// before returning; the kernel re-examines its queue after every gate
// call, so injected events are picked up even when they precede need.
// A gate that returns without either raising the horizon or injecting
// an event below it would spin the kernel; that contract violation
// panics.
type Gate func(need Time) (horizon Time, open bool)

// MaxTime is the largest representable virtual time. A gated kernel
// reports it as `need` when its queue is empty: it has no lower bound of
// its own and can wait for injected work indefinitely.
const MaxTime = Time(1<<63 - 1)

// SetGate installs (or, with nil, removes) the kernel's gate along with
// the initially granted horizon. Ungated kernels — the default — pay one
// nil check per Step and nothing else.
func (k *Kernel) SetGate(g Gate, granted Time) {
	k.gate = g
	k.granted = granted
}

// Granted reports the current exclusive execution horizon of a gated
// kernel (meaningless when no gate is installed).
func (k *Kernel) Granted() Time { return k.granted }

// admit blocks in the gate until the earliest pending event lies inside
// the granted horizon. It reports false when the gate closed the run —
// no event may ever execute again.
//
//dvc:hotpath
func (k *Kernel) admit() bool {
	for {
		next, ok := k.peek()
		if ok && next < k.granted {
			return true
		}
		need := MaxTime
		if ok {
			need = next
		}
		old := k.granted
		h, open := k.gate(need)
		if !open {
			return false
		}
		if h > k.granted {
			k.granted = h
		}
		if next2, ok2 := k.peek(); k.granted == old && next2 == next && ok2 == ok {
			panic("sim: gate made no progress (horizon and queue unchanged)")
		}
	}
}

// gateAdvance asks the gate for permission to move the clock to
// deadline (RunUntil's trailing jump: the region (now, deadline] must be
// provably free of future injections before time skips over it). It
// reports true when the gate instead made earlier work available —
// events at or before deadline — which the caller should execute first.
// On a false return either the granted horizon exceeds deadline (the
// jump is safe) or the gate closed (no injections can ever come).
func (k *Kernel) gateAdvance(deadline Time) bool {
	for k.granted <= deadline {
		old := k.granted
		h, open := k.gate(deadline)
		if !open {
			return false
		}
		if h > k.granted {
			k.granted = h
		}
		if next, ok := k.peek(); ok && next <= deadline {
			return true
		}
		if k.granted == old {
			panic("sim: gate made no progress (horizon and queue unchanged)")
		}
	}
	next, ok := k.peek()
	return ok && next <= deadline
}

// NewKernel returns a kernel whose random source is seeded with seed.
// Two kernels with the same seed and the same schedule of calls produce
// identical simulations.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed)), free: -1}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random source. All simulated
// randomness must come from here.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired reports how many events have executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending reports how many live events are waiting in the queue. Cancelled
// events that still occupy heap entries are excluded: queue-depth probes
// must see load, not garbage awaiting collection.
func (k *Kernel) Pending() int { return k.live }

// deadEntries reports cancelled events still occupying heap entries
// (exported to tests via export_test.go).
func (k *Kernel) deadEntries() int { return k.dead }

// --- slab management ---

// alloc pops a slot off the free list, growing the slab when empty.
//
//dvc:hotpath
func (k *Kernel) alloc() int32 {
	if k.free >= 0 {
		slot := k.free
		k.free = k.slab[slot].next
		return slot
	}
	//lint:allow noalloc amortized slab growth; steady state reuses the free list
	k.slab = append(k.slab, event{heapIdx: -1, next: -1})
	return int32(len(k.slab) - 1)
}

// release returns a non-pinned slot to the free list. The generation was
// already bumped when the event died; clearing fn drops the closure so the
// GC can collect captured state.
//
//dvc:hotpath
func (k *Kernel) release(slot int32) {
	e := &k.slab[slot]
	e.fn = nil
	e.state = slotFree
	e.heapIdx = -1
	e.next = k.free
	k.free = slot
}

// cancelSlot lazily kills a scheduled slot: the heap entry stays where it
// is (marked dead) and is reclaimed when it surfaces or when compaction
// runs. The generation bump makes every outstanding handle stale.
//
//dvc:hotpath
func (k *Kernel) cancelSlot(slot int32) {
	e := &k.slab[slot]
	e.gen++
	e.state = slotDead
	e.fn = nil
	k.live--
	k.dead++
	k.maybeCompact()
}

// maybeCompact rebuilds the heap without its dead entries once they
// outnumber the live ones. The trigger depends only on deterministic
// counters and the rebuild only on heap array order, so compaction is part
// of the reproducible schedule.
//
//dvc:hotpath
func (k *Kernel) maybeCompact() {
	const minDead = 64
	if k.dead < minDead || k.dead <= k.live {
		return
	}
	kept := k.heap[:0]
	for _, slot := range k.heap {
		if k.slab[slot].state == slotDead {
			k.release(slot)
			continue
		}
		kept = append(kept, slot) //lint:allow noalloc appends into k.heap[:0], never beyond existing capacity
	}
	k.heap = kept
	k.dead = 0
	for i := range k.heap {
		k.slab[k.heap[i]].heapIdx = int32(i)
	}
	// Heapify bottom-up: parents of the last element downward.
	if n := len(k.heap); n > 1 {
		for i := (n - 2) / heapArity; i >= 0; i-- {
			k.siftDown(i)
		}
	}
}

// --- implicit 4-ary min-heap over (when, seq) ---

// heapArity of 4 trades slightly more comparisons per level for half the
// tree depth of a binary heap: sift paths touch fewer cache lines, and
// the four children of a node sit adjacent in one or two lines.
const heapArity = 4

// less orders slots by (when, seq). seq is unique, so the order is total
// and pop order is independent of heap layout history.
//
//dvc:hotpath
func (k *Kernel) less(a, b int32) bool {
	ea, eb := &k.slab[a], &k.slab[b]
	if ea.when != eb.when {
		return ea.when < eb.when
	}
	return ea.seq < eb.seq
}

//dvc:hotpath
func (k *Kernel) heapPush(slot int32) {
	k.slab[slot].heapIdx = int32(len(k.heap))
	//lint:allow noalloc amortized heap growth; capacity tracks peak pending events
	k.heap = append(k.heap, slot)
	k.siftUp(len(k.heap) - 1)
}

// heapPopTop removes and returns the root slot.
//
//dvc:hotpath
func (k *Kernel) heapPopTop() int32 {
	h := k.heap
	top := h[0]
	k.slab[top].heapIdx = -1
	last := len(h) - 1
	if last > 0 {
		h[0] = h[last]
		k.slab[h[0]].heapIdx = 0
	}
	k.heap = h[:last]
	if last > 1 {
		k.siftDown(0)
	}
	return top
}

// heapRemove deletes the entry at heap position i (Timer.Stop's eager
// removal; timers never leave dead entries behind).
//
//dvc:hotpath
func (k *Kernel) heapRemove(i int) {
	h := k.heap
	last := len(h) - 1
	k.slab[h[i]].heapIdx = -1
	if i != last {
		h[i] = h[last]
		k.slab[h[i]].heapIdx = int32(i)
	}
	k.heap = h[:last]
	if i < last {
		k.siftFix(i)
	}
}

// siftFix restores heap order at i after an arbitrary key change.
//
//dvc:hotpath
func (k *Kernel) siftFix(i int) {
	if !k.siftUp(i) {
		k.siftDown(i)
	}
}

// siftUp moves i toward the root; reports whether it moved.
//
//dvc:hotpath
func (k *Kernel) siftUp(i int) bool {
	h := k.heap
	moved := false
	for i > 0 {
		p := (i - 1) / heapArity
		if !k.less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		k.slab[h[i]].heapIdx = int32(i)
		k.slab[h[p]].heapIdx = int32(p)
		i = p
		moved = true
	}
	return moved
}

//dvc:hotpath
func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if k.less(h[c], h[min]) {
				min = c
			}
		}
		if !k.less(h[min], h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		k.slab[h[i]].heapIdx = int32(i)
		k.slab[h[min]].heapIdx = int32(min)
		i = min
	}
}

// --- scheduling ---

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: that is always a logic error in a discrete-event model.
//
//dvc:hotpath
func (k *Kernel) At(t Time, fn func()) Handle {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v, t=%v)", k.now, t))
	}
	slot := k.alloc()
	e := &k.slab[slot]
	e.when = t
	e.seq = k.seq
	e.fn = fn
	e.state = slotScheduled
	k.seq++
	k.live++
	k.heapPush(slot)
	return Handle{k: k, slot: slot, gen: e.gen}
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to zero (fire on the next dispatch, preserving order).
//
//dvc:hotpath
func (k *Kernel) After(d Time, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Halt stops the run loop after the current event finishes.
func (k *Kernel) Halt() { k.halted = true }

// Halted reports whether Halt has been called.
func (k *Kernel) Halted() bool { return k.halted }

// Step executes the single next pending event, advancing virtual time to
// its timestamp. It reports false when the queue is empty — or, on a
// gated kernel, when the gate has closed the run. A gated Step may block
// in the gate (the partition barrier) until the next event falls inside
// the granted horizon; an empty queue then waits for injected work
// instead of returning immediately.
//
//dvc:hotpath
func (k *Kernel) Step() bool {
	if k.gate != nil && !k.admit() {
		return false
	}
	for len(k.heap) > 0 {
		slot := k.heapPopTop()
		e := &k.slab[slot]
		if e.state == slotDead {
			k.dead--
			k.release(slot)
			continue
		}
		if e.when < k.now {
			panic("sim: event queue time went backwards")
		}
		k.now = e.when
		fn := e.fn
		e.gen++
		k.live--
		// Free the slot before dispatching: the callback may schedule new
		// events, and the hottest pattern (fire -> reschedule) then reuses
		// this very slot. Timer-owned slots park in slotIdle instead,
		// keeping their bound callback for the next Reset.
		if e.pinned {
			e.state = slotIdle
		} else {
			k.release(slot)
		}
		k.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called. It returns
// the number of events executed by this call.
func (k *Kernel) Run() uint64 {
	start := k.fired
	k.halted = false
	for !k.halted && k.Step() {
	}
	return k.fired - start
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; virtual time is advanced to deadline
// if the run was not halted early (so that subsequent scheduling is
// relative to the deadline).
//
// On a gated kernel the trailing clock jump is itself gated: the region
// (now, deadline] must be provably free of cross-partition injections
// before time skips over it, so the kernel holds at the barrier until
// the granted horizon passes the deadline — executing any events other
// partitions inject below it along the way.
func (k *Kernel) RunUntil(deadline Time) uint64 {
	start := k.fired
	k.halted = false
	for !k.halted {
		next, ok := k.peek()
		if !ok || next > deadline {
			if k.gate != nil && k.gateAdvance(deadline) {
				continue
			}
			break
		}
		if !k.Step() {
			break
		}
	}
	if !k.halted && k.now < deadline {
		k.now = deadline
	}
	return k.fired - start
}

// RunFor is RunUntil(Now()+d).
func (k *Kernel) RunFor(d Time) uint64 { return k.RunUntil(k.now + d) }

// peek reports the earliest live event time, discarding dead entries that
// have surfaced at the top of the heap.
func (k *Kernel) peek() (Time, bool) {
	for len(k.heap) > 0 {
		top := k.heap[0]
		if k.slab[top].state == slotDead {
			k.heapPopTop()
			k.dead--
			k.release(top)
			continue
		}
		return k.slab[top].when, true
	}
	return 0, false
}

// NextEventTime reports the timestamp of the earliest pending event.
func (k *Kernel) NextEventTime() (Time, bool) { return k.peek() }
