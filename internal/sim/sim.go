// Package sim provides the deterministic discrete-event simulation kernel
// that everything else in the DVC reproduction runs on.
//
// The kernel owns virtual time. Components schedule events (callbacks) at
// absolute virtual times or after relative delays; the kernel executes them
// in time order, breaking ties by schedule order, so a simulation with a
// fixed seed is reproducible bit for bit.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. It is deliberately distinct from time.Time: simulated
// components must never consult the host clock.
type Time int64

// Common durations re-exported for readability at call sites.
const (
	Nanosecond  = Time(1)
	Microsecond = 1000 * Nanosecond
	Millisecond = 1000 * Microsecond
	Second      = 1000 * Millisecond
	Minute      = 60 * Second
	Hour        = 60 * Minute
)

// Duration converts a time.Duration into simulation time units.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// String renders the time with time.Duration formatting for logs.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds reports the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Kernel.At and Kernel.After.
type event struct {
	when Time
	seq  uint64
	fn   func()
	dead bool
	idx  int // heap index, -1 when popped
}

// Handle identifies a scheduled event so it can be cancelled. Handles are
// single-use: once the event fires or is cancelled the handle is inert.
type Handle struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.dead {
		return false
	}
	h.ev.dead = true
	h.ev.fn = nil
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool { return h.ev != nil && !h.ev.dead }

// When returns the virtual time the event is (or was) scheduled for.
func (h Handle) When() Time {
	if h.ev == nil {
		return 0
	}
	return h.ev.when
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}

// Kernel is the discrete-event scheduler. It is not safe for concurrent
// use: the whole simulation is single-threaded by design so that runs are
// deterministic.
type Kernel struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool
}

// NewKernel returns a kernel whose random source is seeded with seed.
// Two kernels with the same seed and the same schedule of calls produce
// identical simulations.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random source. All simulated
// randomness must come from here.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired reports how many events have executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending reports how many events are waiting in the queue (including
// cancelled events that have not yet been discarded).
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: that is always a logic error in a discrete-event model.
func (k *Kernel) At(t Time, fn func()) Handle {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v, t=%v)", k.now, t))
	}
	ev := &event{when: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return Handle{ev}
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to zero (fire on the next dispatch, preserving order).
func (k *Kernel) After(d Time, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Halt stops the run loop after the current event finishes.
func (k *Kernel) Halt() { k.halted = true }

// Halted reports whether Halt has been called.
func (k *Kernel) Halted() bool { return k.halted }

// Step executes the single next pending event, advancing virtual time to
// its timestamp. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if ev.dead {
			continue
		}
		if ev.when < k.now {
			panic("sim: event queue time went backwards")
		}
		k.now = ev.when
		fn := ev.fn
		ev.dead = true
		ev.fn = nil
		k.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called. It returns
// the number of events executed by this call.
func (k *Kernel) Run() uint64 {
	start := k.fired
	k.halted = false
	for !k.halted && k.Step() {
	}
	return k.fired - start
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; virtual time is advanced to deadline
// if the run was not halted early (so that subsequent scheduling is
// relative to the deadline).
func (k *Kernel) RunUntil(deadline Time) uint64 {
	start := k.fired
	k.halted = false
	for !k.halted {
		next, ok := k.peek()
		if !ok || next > deadline {
			break
		}
		k.Step()
	}
	if !k.halted && k.now < deadline {
		k.now = deadline
	}
	return k.fired - start
}

// RunFor is RunUntil(Now()+d).
func (k *Kernel) RunFor(d Time) uint64 { return k.RunUntil(k.now + d) }

func (k *Kernel) peek() (Time, bool) {
	for len(k.queue) > 0 {
		if k.queue[0].dead {
			heap.Pop(&k.queue)
			continue
		}
		return k.queue[0].when, true
	}
	return 0, false
}

// NextEventTime reports the timestamp of the earliest pending event.
func (k *Kernel) NextEventTime() (Time, bool) { return k.peek() }
