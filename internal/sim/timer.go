package sim

// Timer is a rearmable event: one callback, bound once, fired whenever the
// timer is armed and expires. It exists for the simulator's churn-heavy
// timers — TCP retransmission, guest scheduler pumps, watchdog and
// resource-manager ticks — which under the Handle API would cancel and
// reallocate an event (plus a fresh closure) on every rearm. A Timer owns
// one slab slot for its whole life: Reset rearms that slot in place (new
// deadline, fresh sequence number, re-sifted heap position) and Stop
// removes it from the heap eagerly, so timers never allocate after
// creation and never leave dead entries behind.
//
// Determinism contract: Reset consumes exactly one kernel sequence number,
// the same as scheduling a fresh event, so a Timer-based component fires
// in exactly the (when, seq) order the cancel-and-reschedule idiom would
// produce. Stop consumes none, matching Handle.Cancel.
//
// The zero Timer is not usable; create one with NewTimer. Like the Kernel,
// Timers are single-threaded by design.
type Timer struct {
	k    *Kernel
	slot int32
}

// NewTimer allocates a timer that runs fn on expiry. The callback is bound
// for the timer's lifetime; per-firing state belongs in the closure's
// captured variables, not in rebinding.
func NewTimer(k *Kernel, fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	slot := k.alloc()
	e := &k.slab[slot]
	e.fn = fn
	e.state = slotIdle
	e.pinned = true
	e.heapIdx = -1
	return &Timer{k: k, slot: slot}
}

// Reset (re)arms the timer to fire d after the current time. Negative
// delays clamp to zero, like Kernel.After. If the timer is already armed
// its slot is rearmed in place — no cancel, no reallocation.
//
//dvc:hotpath
func (t *Timer) Reset(d Time) {
	if d < 0 {
		d = 0
	}
	t.ResetAt(t.k.now + d)
}

// ResetAt (re)arms the timer to fire at absolute time at. Arming in the
// past panics, like Kernel.At.
//
//dvc:hotpath
func (t *Timer) ResetAt(at Time) {
	if t.slot < 0 {
		panic("sim: Reset on a freed timer")
	}
	k := t.k
	if at < k.now {
		panic("sim: Timer.ResetAt into the past")
	}
	e := &k.slab[t.slot]
	e.when = at
	e.seq = k.seq
	k.seq++
	switch e.state {
	case slotIdle:
		e.state = slotScheduled
		k.live++
		k.heapPush(t.slot)
	case slotScheduled:
		k.siftFix(int(e.heapIdx))
	default:
		panic("sim: Reset on a freed timer")
	}
}

// Stop disarms the timer, reporting whether it was armed. The slot stays
// owned by the timer (eagerly removed from the heap, not marked dead), so
// a Stop/Reset cycle is allocation-free and leaves no garbage entry.
//
//dvc:hotpath
func (t *Timer) Stop() bool {
	if t == nil || t.slot < 0 {
		return false
	}
	k := t.k
	e := &k.slab[t.slot]
	if e.state != slotScheduled {
		return false
	}
	k.heapRemove(int(e.heapIdx))
	e.state = slotIdle
	k.live--
	return true
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool {
	return t != nil && t.slot >= 0 && t.k.slab[t.slot].state == slotScheduled
}

// When returns the expiry time while the timer is armed, 0 otherwise.
func (t *Timer) When() Time {
	if t == nil || t.slot < 0 {
		return 0
	}
	e := &t.k.slab[t.slot]
	if e.state != slotScheduled {
		return 0
	}
	return e.when
}

// Free disarms the timer and returns its slot to the kernel's pool. The
// timer must not be used afterwards. Freeing is optional — a timer whose
// owner lives as long as the kernel can simply be dropped — but components
// that churn through owners (e.g. TCP connections) free their timers so
// long runs do not grow the slab.
func (t *Timer) Free() {
	if t == nil || t.slot < 0 {
		return
	}
	t.Stop()
	e := &t.k.slab[t.slot]
	e.pinned = false
	e.gen++ // slots bump their generation once per death, timers included
	t.k.release(t.slot)
	t.slot = -1
}
