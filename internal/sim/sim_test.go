package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel(1)
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	for _, d := range []Time{5 * Second, Second, 3 * Second, 2 * Second} {
		d := d
		k.At(d, func() { got = append(got, d) })
	}
	k.Run()
	want := []Time{Second, 2 * Second, 3 * Second, 5 * Second}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTiesBreakInScheduleOrder(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Second, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order %v, want ascending schedule order", got)
		}
	}
}

func TestNowAdvancesToEventTime(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.At(7*Second, func() { at = k.Now() })
	k.Run()
	if at != 7*Second {
		t.Fatalf("Now() inside event = %v, want 7s", at)
	}
	if k.Now() != 7*Second {
		t.Fatalf("Now() after run = %v, want 7s", k.Now())
	}
}

func TestAfterIsRelative(t *testing.T) {
	k := NewKernel(1)
	var second Time
	k.At(Second, func() {
		k.After(2*Second, func() { second = k.Now() })
	})
	k.Run()
	if second != 3*Second {
		t.Fatalf("chained After fired at %v, want 3s", second)
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.At(Second, func() {
		k.After(-5*Second, func() { fired = k.Now() == Second })
	})
	k.Run()
	if !fired {
		t.Fatal("negative-delay event did not fire at current time")
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	h := k.At(Second, func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle should be pending before run")
	}
	if !h.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if h.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	k := NewKernel(1)
	h := k.At(Second, func() {})
	k.Run()
	if h.Pending() {
		t.Fatal("fired event still pending")
	}
	if h.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(5*Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		k.At(Second, func() {})
	})
	k.Run()
}

func TestHaltStopsRun(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(Time(i)*Second, func() {
			count++
			if count == 3 {
				k.Halt()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Halt, want 3", count)
	}
	if !k.Halted() {
		t.Fatal("Halted() = false after Halt")
	}
	// A fresh Run resumes.
	k.Run()
	if count != 10 {
		t.Fatalf("resume ran to %d events, want 10", count)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for i := 1; i <= 5; i++ {
		d := Time(i) * Second
		k.At(d, func() { fired = append(fired, d) })
	}
	n := k.RunUntil(3 * Second)
	if n != 3 {
		t.Fatalf("RunUntil executed %d events, want 3", n)
	}
	if k.Now() != 3*Second {
		t.Fatalf("Now() = %v after RunUntil(3s)", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", k.Pending())
	}
	// Deadline with no events advances time to the deadline.
	k2 := NewKernel(1)
	k2.RunUntil(10 * Second)
	if k2.Now() != 10*Second {
		t.Fatalf("empty RunUntil left Now() = %v", k2.Now())
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	k := NewKernel(1)
	k.RunFor(2 * Second)
	k.RunFor(3 * Second)
	if k.Now() != 5*Second {
		t.Fatalf("Now() = %v, want 5s", k.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int64 {
		k := NewKernel(seed)
		var out []int64
		var step func()
		n := 0
		step = func() {
			out = append(out, int64(k.Now()), k.Rand().Int63())
			n++
			if n < 100 {
				k.After(Exp(k.Rand(), 10*Millisecond), step)
			}
		}
		k.After(0, step)
		k.Run()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestNextEventTime(t *testing.T) {
	k := NewKernel(1)
	if _, ok := k.NextEventTime(); ok {
		t.Fatal("empty kernel reported a next event")
	}
	h := k.At(4*Second, func() {})
	k.At(9*Second, func() {})
	if next, ok := k.NextEventTime(); !ok || next != 4*Second {
		t.Fatalf("NextEventTime = %v,%v want 4s,true", next, ok)
	}
	h.Cancel()
	if next, ok := k.NextEventTime(); !ok || next != 9*Second {
		t.Fatalf("after cancel NextEventTime = %v,%v want 9s,true", next, ok)
	}
}

func TestDurationConversion(t *testing.T) {
	if Duration(1500*time.Millisecond) != 1500*Millisecond {
		t.Fatal("Duration conversion mismatch")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds() mismatch")
	}
	if (90 * Second).String() != "1m30s" {
		t.Fatalf("String() = %q", (90 * Second).String())
	}
}

// Property: for any batch of delays, events fire in sorted order and the
// kernel clock is monotonic.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint32) bool {
		if len(delays) == 0 {
			return true
		}
		k := NewKernel(7)
		var fired []Time
		last := Time(-1)
		mono := true
		for _, d := range delays {
			k.At(Time(d), func() {
				if k.Now() < last {
					mono = false
				}
				last = k.Now()
				fired = append(fired, k.Now())
			})
		}
		k.Run()
		if !mono || len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelled events never fire, regardless of interleaving.
func TestPropertyCancelNeverFires(t *testing.T) {
	f := func(delays []uint16, cancelMask []bool) bool {
		k := NewKernel(11)
		type rec struct {
			h         Handle
			cancelled bool
			fired     *bool
		}
		var recs []rec
		for i, d := range delays {
			fired := new(bool)
			h := k.At(Time(d), func() { *fired = true })
			cancel := i < len(cancelMask) && cancelMask[i]
			if cancel {
				h.Cancel()
			}
			recs = append(recs, rec{h, cancel, fired})
		}
		k.Run()
		for _, r := range recs {
			if r.cancelled && *r.fired {
				return false
			}
			if !r.cancelled && !*r.fired {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 20000

	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(Exp(rng, 10*Millisecond))
	}
	mean := sum / n
	if mean < 9e6 || mean > 11e6 {
		t.Errorf("Exp mean = %.0f ns, want ~1e7", mean)
	}

	sum = 0
	for i := 0; i < n; i++ {
		v := Normal(rng, 5*Millisecond, Millisecond)
		if v < 0 {
			t.Fatal("Normal returned negative duration")
		}
		sum += float64(v)
	}
	mean = sum / n
	if mean < 4.8e6 || mean > 5.2e6 {
		t.Errorf("Normal mean = %.0f ns, want ~5e6", mean)
	}

	neg := 0
	for i := 0; i < n; i++ {
		if NormalSigned(rng, 0, Millisecond) < 0 {
			neg++
		}
	}
	if neg < n/3 || neg > 2*n/3 {
		t.Errorf("NormalSigned(0,1ms) negative fraction = %d/%d, want ~half", neg, n)
	}

	// LogNormal median should be near the requested median.
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(LogNormal(rng, 100*Millisecond, 0.5))
	}
	sort.Float64s(vals)
	med := vals[n/2]
	if med < 9e7 || med > 11e7 {
		t.Errorf("LogNormal median = %.0f ns, want ~1e8", med)
	}

	for i := 0; i < 1000; i++ {
		v := Uniform(rng, Second, 2*Second)
		if v < Second || v >= 2*Second {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	if Uniform(rng, Second, Second) != Second {
		t.Error("Uniform with empty range should return lo")
	}

	for i := 0; i < 1000; i++ {
		v := Jitter(rng, Second, 0.1)
		if v < 900*Millisecond || v > 1100*Millisecond {
			t.Fatalf("Jitter out of range: %v", v)
		}
	}
	if Jitter(rng, Second, 0) != Second {
		t.Error("Jitter with f=0 should be identity")
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	k := NewKernel(1)
	if k.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestFiredCounter(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 5; i++ {
		k.At(Time(i), func() {})
	}
	h := k.At(10, func() {})
	h.Cancel()
	if n := k.Run(); n != 5 {
		t.Fatalf("Run returned %d, want 5", n)
	}
	if k.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5 (cancelled events must not count)", k.Fired())
	}
}
