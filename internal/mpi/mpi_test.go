package mpi

import (
	"encoding/gob"
	"fmt"
	"testing"

	"dvc/internal/guest"
	"dvc/internal/netsim"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

func init() {
	gob.Register(&barrierApp{})
	gob.Register(&ringApp{})
	gob.Register(&bcastApp{})
	gob.Register(&allreduceApp{})
	gob.Register(&alltoallApp{})
	gob.Register(&computeApp{})
}

// world builds n guests on one Ethernet cluster and launches an app.
type world struct {
	k    *sim.Kernel
	oses []*guest.OS
	pids []guest.PID
}

func newWorld(t *testing.T, n int, makeApp func(rank int) App) *world {
	t.Helper()
	k := sim.NewKernel(123)
	f := netsim.NewFabric(k)
	f.AddCluster("c", netsim.EthernetGigE())
	w := &world{k: k}
	for i := 0; i < n; i++ {
		addr := netsim.Addr(fmt.Sprintf("r%d", i))
		s := tcp.NewStack(k, f, addr, tcp.DefaultConfig())
		f.Attach(addr, "c", s.Deliver)
		w.oses = append(w.oses, guest.New(k, s, func() sim.Time { return k.Now() }, 1.0, guest.WatchdogConfig{}))
	}
	w.pids = Launch(w.oses, 6000, makeApp)
	return w
}

// expectSuccess runs the world to completion and asserts all ranks exit 0.
func (w *world) expectSuccess(t *testing.T) {
	t.Helper()
	w.k.RunFor(10 * sim.Minute)
	for i, o := range w.oses {
		p, _ := o.Proc(w.pids[i])
		if !p.Exited() {
			t.Fatalf("rank %d never exited", i)
		}
		if p.ExitCode() != 0 {
			d := p.Program().(*Driver)
			t.Fatalf("rank %d exit %d (failed: %s)", i, p.ExitCode(), d.R.Failed)
		}
	}
}

func (w *world) app(rank int) App {
	p, _ := w.oses[rank].Proc(w.pids[rank])
	return p.Program().(*Driver).App
}

// barrierApp crosses Rounds barriers.
type barrierApp struct {
	Rounds int
	I      int
}

func (a *barrierApp) Step(c *Ctx, prev Op) Op {
	if a.I < a.Rounds {
		a.I++
		return NewBarrier()
	}
	return nil
}

func TestMeshAndBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("P=%d", n), func(t *testing.T) {
			w := newWorld(t, n, func(int) App { return &barrierApp{Rounds: 3} })
			w.expectSuccess(t)
			for i := 0; i < n; i++ {
				if got := w.app(i).(*barrierApp).I; got != 3 {
					t.Fatalf("rank %d did %d barriers", i, got)
				}
			}
		})
	}
}

// ringApp passes an incrementing token around the ring once.
type ringApp struct {
	PC    int
	Token int
}

func (a *ringApp) Step(c *Ctx, prev Op) Op {
	rt := c.RT
	next := (rt.Me + 1) % rt.Size
	from := (rt.Me - 1 + rt.Size) % rt.Size
	if rt.Size == 1 {
		a.Token = 1
		return nil
	}
	if rt.Me == 0 {
		switch a.PC {
		case 0:
			a.PC = 1
			return Send(next, 7, []byte{1})
		case 1:
			a.PC = 2
			return Recv(from, 7)
		default:
			a.Token = int(prev.(*RecvMsg).Data[0])
			return nil
		}
	}
	switch a.PC {
	case 0:
		a.PC = 1
		return Recv(from, 7)
	case 1:
		a.PC = 2
		tok := prev.(*RecvMsg).Data[0] + 1
		a.Token = int(tok)
		return Send(next, 7, []byte{tok})
	default:
		return nil
	}
}

func TestRingPassing(t *testing.T) {
	const n = 6
	w := newWorld(t, n, func(int) App { return &ringApp{} })
	w.expectSuccess(t)
	if got := w.app(0).(*ringApp).Token; got != n {
		t.Fatalf("token after full ring = %d, want %d", got, n)
	}
}

// bcastApp broadcasts a vector from root 2 and verifies everywhere.
type bcastApp struct {
	PC int
	OK bool
}

func (a *bcastApp) Step(c *Ctx, prev Op) Op {
	rt := c.RT
	const root = 2
	switch a.PC {
	case 0:
		a.PC = 1
		var data []byte
		if rt.Me == root {
			data = Float64sToBytes([]float64{3.14, 2.71, 1.41})
		}
		return NewBcast(root, data)
	default:
		got := BytesToFloat64s(prev.(*Bcast).Data)
		a.OK = len(got) == 3 && got[0] == 3.14 && got[1] == 2.71 && got[2] == 1.41
		return nil
	}
}

func TestBcastBinomialTree(t *testing.T) {
	for _, n := range []int{3, 4, 7, 8, 13} {
		n := n
		t.Run(fmt.Sprintf("P=%d", n), func(t *testing.T) {
			w := newWorld(t, n, func(int) App { return &bcastApp{} })
			w.expectSuccess(t)
			for i := 0; i < n; i++ {
				if !w.app(i).(*bcastApp).OK {
					t.Fatalf("rank %d did not receive broadcast", i)
				}
			}
		})
	}
}

// allreduceApp sums (rank+1) across ranks.
type allreduceApp struct {
	PC  int
	Got float64
}

func (a *allreduceApp) Step(c *Ctx, prev Op) Op {
	rt := c.RT
	switch a.PC {
	case 0:
		a.PC = 1
		return NewAllreduce(ReduceSum, []float64{float64(rt.Me + 1)})
	default:
		a.Got = prev.(*Allreduce).Data[0]
		return nil
	}
}

func TestAllreduceSum(t *testing.T) {
	const n = 9
	w := newWorld(t, n, func(int) App { return &allreduceApp{} })
	w.expectSuccess(t)
	want := float64(n * (n + 1) / 2)
	for i := 0; i < n; i++ {
		if got := w.app(i).(*allreduceApp).Got; got != want {
			t.Fatalf("rank %d allreduce = %v, want %v", i, got, want)
		}
	}
}

// alltoallApp exchanges rank-stamped blocks.
type alltoallApp struct {
	PC int
	OK bool
}

func (a *alltoallApp) Step(c *Ctx, prev Op) Op {
	rt := c.RT
	switch a.PC {
	case 0:
		a.PC = 1
		blocks := make([][]byte, rt.Size)
		for d := range blocks {
			blocks[d] = []byte{byte(rt.Me), byte(d)}
		}
		return NewAlltoall(blocks)
	default:
		got := prev.(*Alltoall).Recvd
		a.OK = true
		for s, blk := range got {
			if len(blk) != 2 || int(blk[0]) != s || int(blk[1]) != rt.Me {
				a.OK = false
			}
		}
		return nil
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{2, 4, 5} {
		n := n
		t.Run(fmt.Sprintf("P=%d", n), func(t *testing.T) {
			w := newWorld(t, n, func(int) App { return &alltoallApp{} })
			w.expectSuccess(t)
			for i := 0; i < n; i++ {
				if !w.app(i).(*alltoallApp).OK {
					t.Fatalf("rank %d got wrong blocks", i)
				}
			}
		})
	}
}

// computeApp interleaves compute and barriers (BSP shape).
type computeApp struct {
	Steps int
	I     int
	Phase int
}

func (a *computeApp) Step(c *Ctx, prev Op) Op {
	if a.I >= a.Steps {
		return nil
	}
	if a.Phase == 0 {
		a.Phase = 1
		return Compute(10 * sim.Millisecond)
	}
	a.Phase = 0
	a.I++
	return NewBarrier()
}

func TestBSPComputeBarrierLoop(t *testing.T) {
	w := newWorld(t, 4, func(int) App { return &computeApp{Steps: 20} })
	w.expectSuccess(t)
}

func TestLargePayloadBcast(t *testing.T) {
	big := make([]float64, 1<<15) // 256 KB
	for i := range big {
		big[i] = float64(i)
	}
	w := newWorld(t, 4, func(int) App { return &bigBcastApp{Payload: big} })
	w.expectSuccess(t)
	for i := 0; i < 4; i++ {
		if !w.app(i).(*bigBcastApp).OK {
			t.Fatalf("rank %d corrupted large bcast", i)
		}
	}
}

type bigBcastApp struct {
	Payload []float64
	PC      int
	OK      bool
}

func (a *bigBcastApp) Step(c *Ctx, prev Op) Op {
	switch a.PC {
	case 0:
		a.PC = 1
		var data []byte
		if c.RT.Me == 0 {
			data = Float64sToBytes(a.Payload)
		}
		return NewBcast(0, data)
	default:
		got := BytesToFloat64s(prev.(*Bcast).Data)
		a.OK = len(got) == len(a.Payload)
		if a.OK {
			for i := range got {
				if got[i] != a.Payload[i] {
					a.OK = false
					break
				}
			}
		}
		return nil
	}
}

func init() { gob.Register(&bigBcastApp{}) }

func TestFloatBytesRoundTrip(t *testing.T) {
	in := []float64{0, 1.5, -2.25, 3e300, -4e-300}
	out := BytesToFloat64s(Float64sToBytes(in))
	if len(out) != len(in) {
		t.Fatal("length mismatch")
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestRankFailurePropagates(t *testing.T) {
	// A rank whose peer dies must exit non-zero, not hang.
	k := sim.NewKernel(321)
	f := netsim.NewFabric(k)
	f.AddCluster("c", netsim.EthernetGigE())
	var oses []*guest.OS
	var ports []*netsim.Port
	for i := 0; i < 2; i++ {
		addr := netsim.Addr(fmt.Sprintf("r%d", i))
		s := tcp.NewStack(k, f, addr, tcp.DefaultConfig())
		ports = append(ports, f.Attach(addr, "c", s.Deliver))
		oses = append(oses, guest.New(k, s, func() sim.Time { return k.Now() }, 1.0, guest.WatchdogConfig{}))
	}
	pids := Launch(oses, 6000, func(int) App { return &barrierApp{Rounds: 1 << 20} })
	k.RunFor(2 * sim.Second)
	ports[1].SetUp(false) // rank 1's host dies
	k.RunFor(5 * sim.Minute)
	p, _ := oses[0].Proc(pids[0])
	if !p.Exited() || p.ExitCode() == 0 {
		t.Fatalf("rank 0 should fail after peer death: exited=%v code=%d", p.Exited(), p.ExitCode())
	}
}
