package mpi

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dvc/internal/guest"
	"dvc/internal/netsim"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

func init() {
	gob.Register(&streamApp{})
}

// streamApp is the data-plane benchmark workload: rank 0 streams Rounds
// messages of MsgBytes to rank 1, which receives them all. Every payload
// byte crosses the full path mpi framing -> guest socket ops -> tcp
// send/receive queues -> netsim fabric, which is exactly the path the
// zero-copy data plane optimises.
type streamApp struct {
	Rounds   int
	MsgBytes int
	I        int
	Done     bool
}

func (a *streamApp) Step(c *Ctx, prev Op) Op {
	rt := c.RT
	if a.I >= a.Rounds {
		a.Done = true
		return nil
	}
	a.I++
	if rt.Me == 0 {
		return Send(1, 7, make([]byte, a.MsgBytes))
	}
	return Recv(0, 7)
}

// runStream pushes rounds*msgBytes of payload through a two-rank world
// and returns the number of payload bytes delivered to rank 1.
func runStream(tb testing.TB, rounds, msgBytes int) uint64 {
	k := sim.NewKernel(7)
	f := netsim.NewFabric(k)
	f.AddCluster("c", netsim.EthernetGigE())
	oses := make([]*guest.OS, 2)
	for i := range oses {
		addr := netsim.Addr(fmt.Sprintf("n%d", i))
		s := tcp.NewStack(k, f, addr, tcp.DefaultConfig())
		f.Attach(addr, "c", s.Deliver)
		oses[i] = guest.New(k, s, k.Now, 1.0, guest.WatchdogConfig{})
	}
	pids := Launch(oses, 6000, func(rank int) App {
		return &streamApp{Rounds: rounds, MsgBytes: msgBytes}
	})
	k.RunFor(10 * sim.Minute)
	for i, o := range oses {
		p, _ := o.Proc(pids[i])
		if !p.Exited() || p.ExitCode() != 0 {
			tb.Fatalf("rank %d did not finish cleanly (exited=%v code=%d)", i, p.Exited(), p.ExitCode())
		}
	}
	return uint64(rounds) * uint64(msgBytes)
}

// BenchmarkDataPlaneThroughput measures simulated payload bytes moved per
// real second through the whole data plane (mpi -> guest -> tcp ->
// netsim), and — the headline number for the zero-copy rewrite — how many
// bytes the Go runtime allocates per payload byte moved. The application
// buffer itself costs 1 B/B by construction (the sender materialises each
// message), so the data plane's own tax is alloc_B_per_payload_B - 1.
//
// With DVC_BENCH_JSON=<path> each sub-benchmark appends a JSON line to
// the BENCH_dataplane artifact. Run:
//
//	go test -run '^$' -bench BenchmarkDataPlaneThroughput -benchmem ./internal/mpi
func BenchmarkDataPlaneThroughput(b *testing.B) {
	for _, bc := range []struct {
		name             string
		rounds, msgBytes int
	}{
		{"bulk256KB", 64, 256 << 10},
		{"small4KB", 2048, 4 << 10},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var payload uint64
			var allocated uint64
			var wall time.Duration
			var ms runtime.MemStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runtime.ReadMemStats(&ms)
				before := ms.TotalAlloc
				start := time.Now()
				payload += runStream(b, bc.rounds, bc.msgBytes)
				wall += time.Since(start)
				runtime.ReadMemStats(&ms)
				allocated += ms.TotalAlloc - before
			}
			b.StopTimer()
			allocPerByte := float64(allocated) / float64(payload)
			mbps := float64(payload) / 1e6 / wall.Seconds()
			b.ReportMetric(allocPerByte, "alloc_B/payload_B")
			b.ReportMetric(mbps, "payload_MB/s")
			writeDataplaneJSON(b, "BenchmarkDataPlaneThroughput/"+bc.name, payload, allocated, allocPerByte, mbps)
		})
	}
}

// writeDataplaneJSON appends one benchmark record to the DVC_BENCH_JSON
// artifact (same convention as BENCH_kernel.json / BENCH_fleet.json).
func writeDataplaneJSON(b *testing.B, name string, payload, allocated uint64, allocPerByte, mbps float64) {
	path := os.Getenv("DVC_BENCH_JSON")
	if path == "" {
		return
	}
	doc := struct {
		Benchmark    string  `json:"benchmark"`
		N            int     `json:"n"`
		PayloadBytes uint64  `json:"payload_bytes"`
		AllocBytes   uint64  `json:"alloc_bytes"`
		AllocPerByte float64 `json:"alloc_b_per_payload_b"`
		PayloadMBps  float64 `json:"payload_mb_per_s"`
	}{name, b.N, payload, allocated, allocPerByte, mbps}
	data, err := json.Marshal(doc)
	if err != nil {
		b.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n", data)
}
