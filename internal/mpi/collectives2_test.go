package mpi

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"
)

func init() {
	gob.Register(&gatherApp{})
	gob.Register(&scatterApp{})
	gob.Register(&allgatherApp{})
}

// gatherApp gathers rank-stamped blocks at root 1.
type gatherApp struct {
	PC int
	OK bool
}

func (a *gatherApp) Step(c *Ctx, prev Op) Op {
	rt := c.RT
	const root = 1
	switch a.PC {
	case 0:
		a.PC = 1
		return NewGather(root, []byte{byte(rt.Me), byte(rt.Me * 2)})
	default:
		a.OK = true
		if rt.Me == root {
			blocks := prev.(*Gather).Blocks
			if len(blocks) != rt.Size {
				a.OK = false
				return nil
			}
			for i, b := range blocks {
				if len(b) != 2 || int(b[0]) != i || int(b[1]) != 2*i {
					a.OK = false
				}
			}
		}
		return nil
	}
}

func TestGather(t *testing.T) {
	for _, n := range []int{2, 3, 6} {
		n := n
		t.Run(fmt.Sprintf("P=%d", n), func(t *testing.T) {
			w := newWorld(t, n, func(int) App { return &gatherApp{} })
			w.expectSuccess(t)
			for i := 0; i < n; i++ {
				if !w.app(i).(*gatherApp).OK {
					t.Fatalf("rank %d gather failed", i)
				}
			}
		})
	}
}

// scatterApp scatters distinct blocks from root 0 and verifies receipt.
type scatterApp struct {
	PC int
	OK bool
}

func (a *scatterApp) Step(c *Ctx, prev Op) Op {
	rt := c.RT
	switch a.PC {
	case 0:
		a.PC = 1
		var blocks [][]byte
		if rt.Me == 0 {
			blocks = make([][]byte, rt.Size)
			for d := range blocks {
				blocks[d] = []byte{byte(100 + d)}
			}
		}
		return NewScatter(0, blocks)
	default:
		mine := prev.(*Scatter).Mine
		a.OK = len(mine) == 1 && int(mine[0]) == 100+rt.Me
		return nil
	}
}

func TestScatter(t *testing.T) {
	for _, n := range []int{2, 4, 5} {
		n := n
		t.Run(fmt.Sprintf("P=%d", n), func(t *testing.T) {
			w := newWorld(t, n, func(int) App { return &scatterApp{} })
			w.expectSuccess(t)
			for i := 0; i < n; i++ {
				if !w.app(i).(*scatterApp).OK {
					t.Fatalf("rank %d scatter failed", i)
				}
			}
		})
	}
}

// allgatherApp checks every rank ends with everyone's block.
type allgatherApp struct {
	PC int
	OK bool
}

func (a *allgatherApp) Step(c *Ctx, prev Op) Op {
	rt := c.RT
	switch a.PC {
	case 0:
		a.PC = 1
		return NewAllgather([]byte{byte(rt.Me), byte(rt.Me + 1)})
	default:
		blocks := prev.(*Allgather).Blocks
		a.OK = len(blocks) == rt.Size
		if a.OK {
			for i, b := range blocks {
				if len(b) != 2 || int(b[0]) != i || int(b[1]) != i+1 {
					a.OK = false
				}
			}
		}
		return nil
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{2, 3, 7} {
		n := n
		t.Run(fmt.Sprintf("P=%d", n), func(t *testing.T) {
			w := newWorld(t, n, func(int) App { return &allgatherApp{} })
			w.expectSuccess(t)
			for i := 0; i < n; i++ {
				if !w.app(i).(*allgatherApp).OK {
					t.Fatalf("rank %d allgather failed", i)
				}
			}
		})
	}
}

func TestFrameCodec(t *testing.T) {
	in := [][]byte{{1, 2, 3}, {}, {4}, bytes.Repeat([]byte{9}, 300)}
	out := decodeFrames(encodeFrames(in))
	if len(out) != len(in) {
		t.Fatalf("decoded %d frames, want %d", len(out), len(in))
	}
	for i := range in {
		if !bytes.Equal(in[i], out[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	// Truncated input must not panic.
	if got := decodeFrames([]byte{5, 0, 0, 0, 1}); len(got) != 0 {
		t.Fatalf("truncated frame decoded: %v", got)
	}
}
