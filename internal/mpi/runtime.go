// Package mpi implements a small message-passing runtime for guest
// programs: ranks with stable identities, point-to-point tagged messages,
// and the collectives the HPCC workloads need (barrier, broadcast,
// reduce, allreduce, all-to-all).
//
// The runtime is deliberately an *unmodified application* from the
// checkpoint layer's point of view: everything runs over ordinary guest
// sockets on the simulated TCP stack, with no checkpoint hooks — the
// transparency DVC claims (§2: "if the application can be saved and
// restarted without being aware of the checkpoint, then all applications
// can be checkpointed").
//
// Programs are resumable state machines (see package guest); MPI
// operations are therefore themselves resumable sub-machines that the
// Driver steps through.
package mpi

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"dvc/internal/guest"
	"dvc/internal/netsim"
	"dvc/internal/sim"
)

func init() {
	gob.Register(&Driver{})
	gob.Register(&initOp{})
}

// Runtime is a rank's communication state. It is created by NewDriver and
// becomes ready after the connection mesh is established.
type Runtime struct {
	Me       int
	Size     int
	Addrs    []netsim.Addr // fabric address of each rank
	BasePort uint16
	FDs      []int // socket per peer; -1 for self / not yet connected

	Ready  bool
	Failed string // first fatal communication error
}

// Port returns the listening port for rank r.
func (rt *Runtime) Port(r int) uint16 { return rt.BasePort + uint16(r) }

// Fail records a fatal error; the driver exits the process with status 1.
func (rt *Runtime) Fail(format string, args ...any) {
	if rt.Failed == "" {
		rt.Failed = fmt.Sprintf(format, args...)
	}
}

// Ctx gives an application access to its rank state plus the guest
// syscall surface (clocks, logging) during a Step call. It must not be
// retained across steps.
type Ctx struct {
	RT  *Runtime
	api *guest.API
}

// WallClock returns the host wall-clock reading (jumps across VM
// save/restore — what HPL's timers see).
func (c *Ctx) WallClock() sim.Time { return c.api.WallClock() }

// Jiffies returns guest-monotonic time.
func (c *Ctx) Jiffies() sim.Time { return c.api.Jiffies() }

// Log writes to the guest kernel log.
func (c *Ctx) Log(format string, args ...any) { c.api.Log(format, args...) }

// App is an MPI application: each step returns the next MPI operation
// (nil = finished). The completed previous operation is passed back so
// the app can read its outputs (e.g. RecvMsg.Data).
//
// Implementations must be pure data and gob-registered: they are part of
// the VM image.
type App interface {
	Step(c *Ctx, prev Op) Op
}

// Op is a resumable MPI operation. step is called with the result of the
// previously issued guest operation; it returns the next guest operation
// to run, or done=true when the MPI operation has completed.
type Op interface {
	step(rt *Runtime, api *guest.API, res guest.Result) (gop guest.Op, done bool)
}

// Driver adapts an App into a guest.Program: it first runs the connection
// mesh setup, then steps the application, translating MPI operations into
// guest operations.
type Driver struct {
	R    *Runtime
	App  App
	Cur  Op
	Last Op
}

// NewDriver builds the guest program for rank me of a world with the
// given rank addresses.
func NewDriver(me int, addrs []netsim.Addr, basePort uint16, app App) *Driver {
	size := len(addrs)
	fds := make([]int, size)
	for i := range fds {
		fds[i] = -1
	}
	return &Driver{
		R: &Runtime{
			Me:       me,
			Size:     size,
			Addrs:    append([]netsim.Addr(nil), addrs...),
			BasePort: basePort,
			FDs:      fds,
		},
		App: app,
	}
}

// Next implements guest.Program.
func (d *Driver) Next(api *guest.API, res guest.Result) guest.Op {
	for {
		if d.Cur == nil {
			if !d.R.Ready {
				d.Cur = &initOp{}
			} else {
				d.Cur = d.App.Step(&Ctx{RT: d.R, api: api}, d.Last)
				d.Last = nil
				if d.Cur == nil {
					api.Exit(0)
					return nil
				}
			}
			res = guest.Result{}
		}
		gop, done := d.Cur.step(d.R, api, res)
		if d.R.Failed != "" {
			api.Log("mpi: rank %d failed: %s", d.R.Me, d.R.Failed)
			api.Exit(1)
			return nil
		}
		if gop != nil {
			return gop
		}
		if !done {
			// The op is waiting on nothing — that is a deadlock bug.
			panic(fmt.Sprintf("mpi: op %T neither progressed nor completed", d.Cur))
		}
		d.Last = d.Cur
		d.Cur = nil
		res = guest.Result{}
	}
}

// Launch spawns one Driver per guest OS, rank i on oses[i], all sharing
// one world. makeApp builds each rank's application. It returns the
// spawned PIDs, index-aligned with oses.
func Launch(oses []*guest.OS, basePort uint16, makeApp func(rank int) App) []guest.PID {
	addrs := make([]netsim.Addr, len(oses))
	for i, o := range oses {
		addrs[i] = o.Addr()
	}
	pids := make([]guest.PID, len(oses))
	for i, o := range oses {
		pids[i] = o.Spawn(NewDriver(i, addrs, basePort, makeApp(i)))
	}
	return pids
}

// initOp builds the full connection mesh: rank i listens on BasePort+i,
// dials every lower rank (sending an 8-byte hello with its rank), and
// accepts a connection + hello from every higher rank.
type initOp struct {
	PC       int
	J        int // dial index
	AcceptsN int // accepted so far
	TmpFD    int
}

const helloSize = 8

func (op *initOp) step(rt *Runtime, api *guest.API, res guest.Result) (guest.Op, bool) {
	if res.Err != nil {
		rt.Fail("init: %v", res.Err)
		return nil, true
	}
	for {
		switch op.PC {
		case 0: // listen for higher ranks
			api.Listen(rt.Port(rt.Me))
			op.PC, op.J = 1, 0
		case 1: // dial lower ranks
			if op.J >= rt.Me {
				op.PC = 4
				continue
			}
			op.PC = 2
			return guest.Connect(rt.Addrs[op.J], rt.Port(op.J)), false
		case 2: // connected: send hello
			op.TmpFD = res.FD
			hello := make([]byte, helloSize)
			binary.LittleEndian.PutUint64(hello, uint64(rt.Me))
			op.PC = 3
			return guest.Send(op.TmpFD, hello), false
		case 3: // hello sent
			rt.FDs[op.J] = op.TmpFD
			op.J++
			op.PC = 1
		case 4: // accept higher ranks
			if op.AcceptsN >= rt.Size-1-rt.Me {
				rt.Ready = true
				return nil, true
			}
			op.PC = 5
			return guest.Accept(rt.Port(rt.Me)), false
		case 5: // accepted: read hello
			op.TmpFD = res.FD
			op.PC = 6
			return guest.Recv(op.TmpFD, helloSize), false
		case 6: // hello received
			if res.EOF || len(res.Data) != helloSize {
				rt.Fail("init: bad hello")
				return nil, true
			}
			peer := int(binary.LittleEndian.Uint64(res.Data))
			if peer < 0 || peer >= rt.Size || rt.FDs[peer] != -1 {
				rt.Fail("init: invalid hello from rank %d", peer)
				return nil, true
			}
			rt.FDs[peer] = op.TmpFD
			op.AcceptsN++
			op.PC = 4
		}
	}
}
