package mpi

import (
	"encoding/gob"

	"dvc/internal/guest"
)

func init() {
	gob.Register(&Gather{})
	gob.Register(&Scatter{})
	gob.Register(&Allgather{})
}

// Collective tags for the second collective family.
const (
	tagGather  = 1<<20 + 4
	tagScatter = 1<<20 + 5
	tagAllgath = 1<<20 + 6
)

// Gather collects one block from every rank at Root (flat). On completion
// the root's Blocks[i] holds rank i's contribution.
type Gather struct {
	Root int
	Mine []byte

	Blocks [][]byte // populated at the root
	PC     int
	Sub    Op
}

// NewGather constructs a gather of each rank's Mine block at root.
func NewGather(root int, mine []byte) *Gather { return &Gather{Root: root, Mine: mine} }

func (op *Gather) step(rt *Runtime, api *guest.API, res guest.Result) (guest.Op, bool) {
	for {
		if op.Sub != nil {
			gop, done := op.Sub.step(rt, api, res)
			if !done {
				return gop, false
			}
			if r, ok := op.Sub.(*RecvMsg); ok {
				op.Blocks[r.From] = r.Data
			}
			op.Sub = nil
			res = guest.Result{}
		}
		if rt.Me == op.Root {
			if op.Blocks == nil {
				op.Blocks = make([][]byte, rt.Size)
				op.Blocks[rt.Me] = op.Mine
			}
			next := op.PC
			if next == op.Root {
				next++
			}
			if next >= rt.Size {
				return nil, true
			}
			op.PC = next + 1
			op.Sub = Recv(next, tagGather)
		} else {
			if op.PC == 1 {
				return nil, true
			}
			op.PC = 1
			op.Sub = Send(op.Root, tagGather, op.Mine)
		}
	}
}

// Scatter distributes Root's Blocks, one per rank (flat). On completion
// every rank's Mine holds its block.
type Scatter struct {
	Root   int
	Blocks [][]byte // only the root provides these

	Mine []byte
	PC   int
	Sub  Op
}

// NewScatter constructs a scatter of the root's blocks.
func NewScatter(root int, blocks [][]byte) *Scatter { return &Scatter{Root: root, Blocks: blocks} }

func (op *Scatter) step(rt *Runtime, api *guest.API, res guest.Result) (guest.Op, bool) {
	for {
		if op.Sub != nil {
			gop, done := op.Sub.step(rt, api, res)
			if !done {
				return gop, false
			}
			if r, ok := op.Sub.(*RecvMsg); ok {
				op.Mine = r.Data
			}
			op.Sub = nil
			res = guest.Result{}
		}
		if rt.Me == op.Root {
			if op.Mine == nil && op.Blocks != nil {
				op.Mine = op.Blocks[rt.Me]
			}
			next := op.PC
			if next == op.Root {
				next++
			}
			if next >= rt.Size {
				return nil, true
			}
			op.PC = next + 1
			op.Sub = Send(next, tagScatter, op.Blocks[next])
		} else {
			if op.PC == 1 {
				return nil, true
			}
			op.PC = 1
			op.Sub = Recv(op.Root, tagScatter)
		}
	}
}

// Allgather gives every rank every rank's block: gather at 0, then a
// broadcast of the concatenation (with a simple length-prefixed frame).
type Allgather struct {
	Mine []byte

	Blocks [][]byte
	PC     int
	Sub    Op
}

// NewAllgather constructs an allgather of each rank's Mine block.
func NewAllgather(mine []byte) *Allgather { return &Allgather{Mine: mine} }

func (op *Allgather) step(rt *Runtime, api *guest.API, res guest.Result) (guest.Op, bool) {
	for {
		if op.Sub != nil {
			gop, done := op.Sub.step(rt, api, res)
			if !done {
				return gop, false
			}
			switch s := op.Sub.(type) {
			case *Gather:
				op.Blocks = s.Blocks
			case *Bcast:
				if op.Blocks == nil { // non-roots decode the frame
					op.Blocks = decodeFrames(s.Data)
				}
			}
			op.Sub = nil
			res = guest.Result{}
		}
		switch op.PC {
		case 0:
			op.PC = 1
			op.Sub = NewGather(0, op.Mine)
		case 1:
			op.PC = 2
			var frame []byte
			if rt.Me == 0 {
				frame = encodeFrames(op.Blocks)
			}
			op.Sub = NewBcast(0, frame)
		default:
			return nil, true
		}
	}
}

// encodeFrames concatenates blocks with 4-byte little-endian length
// prefixes.
func encodeFrames(blocks [][]byte) []byte {
	var out []byte
	for _, b := range blocks {
		n := len(b)
		out = append(out, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		out = append(out, b...)
	}
	return out
}

// decodeFrames reverses encodeFrames.
func decodeFrames(frame []byte) [][]byte {
	var out [][]byte
	for len(frame) >= 4 {
		n := int(frame[0]) | int(frame[1])<<8 | int(frame[2])<<16 | int(frame[3])<<24
		frame = frame[4:]
		if n > len(frame) {
			break
		}
		out = append(out, frame[:n:n])
		frame = frame[n:]
	}
	return out
}
