//go:build race

package mpi

// raceEnabled reports whether the race detector is compiled in. The
// copy-count gate skips under -race: instrumentation inflates allocation
// totals far past what the data plane itself spends.
const raceEnabled = true
