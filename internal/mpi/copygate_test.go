package mpi

import (
	"runtime"
	"testing"
)

// TestSendRecvCopyCount is the copy gate for the zero-copy data plane:
// it bounds how many bytes the Go runtime may allocate per payload byte
// moved end to end (mpi framing -> guest socket ops -> tcp queues ->
// netsim -> receiver). The budget per payload byte is roughly:
//
//	1.0  the sender's application buffer (built fresh per message, by
//	     construction of the workload)
//	1.0  the receiver-side flatten when a multi-segment message is
//	     delivered to the application as one contiguous []byte
//	  ~  simulation bookkeeping (segment descriptors, events, gob)
//
// The pre-rewrite path measured ~6.6 alloc_B/payload_B for bulk
// transfers and ~10.8 for small messages (extra copies in mpi framing,
// the tcp send queue, the receive queue, and per-segment data copies).
// The gates sit at half those figures so any reintroduced full-payload
// copy (+1.0) trips them with margin, while leaving headroom over the
// measured post-rewrite values (~2.1 bulk, ~3.5 small).
func TestSendRecvCopyCount(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	cases := []struct {
		name             string
		rounds, msgBytes int
		maxAllocPerByte  float64
	}{
		{"bulk256KB", 64, 256 << 10, 3.2},
		{"small4KB", 2048, 4 << 10, 5.3},
	}
	// Warm up once so lazy initialisation (gob type registry, fabric
	// tables) is not billed to the measured run.
	runStream(t, 2, 4<<10)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ms runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms)
			before := ms.TotalAlloc
			moved := runStream(t, tc.rounds, tc.msgBytes)
			runtime.ReadMemStats(&ms)
			ratio := float64(ms.TotalAlloc-before) / float64(moved)
			t.Logf("%s: %.2f alloc_B/payload_B over %d payload bytes", tc.name, ratio, moved)
			if ratio > tc.maxAllocPerByte {
				t.Fatalf("data plane allocated %.2f B per payload byte, gate is %.2f — a payload copy crept back in",
					ratio, tc.maxAllocPerByte)
			}
		})
	}
}
