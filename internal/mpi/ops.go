package mpi

import (
	"encoding/binary"
	"encoding/gob"
	"math"

	"dvc/internal/guest"
	"dvc/internal/payload"
	"dvc/internal/sim"
)

func init() {
	gob.Register(&ComputeOp{})
	gob.Register(&SendMsg{})
	gob.Register(&RecvMsg{})
	gob.Register(&Barrier{})
	gob.Register(&Bcast{})
	gob.Register(&Reduce{})
	gob.Register(&Allreduce{})
	gob.Register(&Alltoall{})
}

// Message framing: an 16-byte header (tag, length) followed by the body.
const headerSize = 16

func encodeHeader(tag int, n int) []byte {
	h := make([]byte, headerSize)
	binary.LittleEndian.PutUint64(h[0:8], uint64(tag))
	binary.LittleEndian.PutUint64(h[8:16], uint64(n))
	return h
}

func decodeHeader(h []byte) (tag, n int) {
	return int(binary.LittleEndian.Uint64(h[0:8])), int(binary.LittleEndian.Uint64(h[8:16]))
}

// Float64sToBytes encodes a float64 vector for transmission.
func Float64sToBytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

// BytesToFloat64s reverses Float64sToBytes.
func BytesToFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// ComputeOp models local computation for a duration.
type ComputeOp struct {
	Duration sim.Time
	PC       int
}

// Compute returns an MPI op that computes for d.
func Compute(d sim.Time) *ComputeOp { return &ComputeOp{Duration: d} }

func (op *ComputeOp) step(rt *Runtime, api *guest.API, res guest.Result) (guest.Op, bool) {
	if op.PC == 0 {
		op.PC = 1
		return guest.Compute(op.Duration), false
	}
	return nil, true
}

// SendMsg sends a tagged message to a peer rank.
type SendMsg struct {
	To   int
	Tag  int
	Data []byte
	PC   int
}

// Send constructs a tagged send.
func Send(to, tag int, data []byte) *SendMsg { return &SendMsg{To: to, Tag: tag, Data: data} }

func (op *SendMsg) step(rt *Runtime, api *guest.API, res guest.Result) (guest.Op, bool) {
	if op.PC > 0 && res.Err != nil {
		rt.Fail("send to %d: %v", op.To, res.Err)
		return nil, true
	}
	switch op.PC {
	case 0:
		op.PC = 1
		// Zero-copy framing: the wire message is a rope of [header,
		// body] where the body chunk IS the application's buffer —
		// no header+data frame is materialised. The application gave
		// up mutation rights when it handed Data to Send (payload
		// immutability contract); every byte it produced crosses
		// mpi -> guest -> tcp -> netsim by reference.
		frame := payload.FromChunks(encodeHeader(op.Tag, len(op.Data)), op.Data)
		op.Data = nil
		return guest.SendPayload(rt.FDs[op.To], frame), false
	default:
		return nil, true
	}
}

// RecvMsg receives one tagged message from a peer rank. On completion
// Data holds the payload. Messages from one peer arrive in program
// order; a tag mismatch indicates a protocol bug and fails the rank.
type RecvMsg struct {
	From int
	Tag  int
	Data []byte
	PC   int
	N    int
}

// Recv constructs a tagged receive.
func Recv(from, tag int) *RecvMsg { return &RecvMsg{From: from, Tag: tag} }

func (op *RecvMsg) step(rt *Runtime, api *guest.API, res guest.Result) (guest.Op, bool) {
	if op.PC > 0 && (res.Err != nil || res.EOF) {
		rt.Fail("recv from %d: err=%v eof=%v", op.From, res.Err, res.EOF)
		return nil, true
	}
	switch op.PC {
	case 0:
		op.PC = 1
		return guest.Recv(rt.FDs[op.From], headerSize), false
	case 1:
		tag, n := decodeHeader(res.Data)
		if tag != op.Tag {
			rt.Fail("recv from %d: tag %d, want %d", op.From, tag, op.Tag)
			return nil, true
		}
		op.N = n
		if n == 0 {
			op.Data = []byte{}
			return nil, true
		}
		op.PC = 2
		return guest.Recv(rt.FDs[op.From], n), false
	default:
		op.Data = res.Data
		return nil, true
	}
}

// Collective tags live in a reserved space above user tags.
const (
	tagBarrier = 1 << 20
	tagBcast   = 1<<20 + 1
	tagReduce  = 1<<20 + 2
	tagA2A     = 1<<20 + 3
)

// Barrier blocks until all ranks arrive: a flat gather of tokens to rank
// 0 followed by a token broadcast.
type Barrier struct {
	PC  int
	J   int
	Sub Op
}

// NewBarrier constructs a barrier.
func NewBarrier() *Barrier { return &Barrier{} }

func (op *Barrier) step(rt *Runtime, api *guest.API, res guest.Result) (guest.Op, bool) {
	for {
		if op.Sub != nil {
			gop, done := op.Sub.step(rt, api, res)
			if !done {
				return gop, false
			}
			op.Sub = nil
			res = guest.Result{}
		}
		if rt.Me == 0 {
			switch {
			case op.PC < rt.Size-1: // gather tokens from 1..P-1
				op.PC++
				op.Sub = Recv(op.PC, tagBarrier)
			case op.PC < 2*(rt.Size-1): // release tokens
				op.PC++
				op.Sub = Send(op.PC-(rt.Size-1), tagBarrier, nil)
			default:
				return nil, true
			}
		} else {
			switch op.PC {
			case 0:
				op.PC = 1
				op.Sub = Send(0, tagBarrier, nil)
			case 1:
				op.PC = 2
				op.Sub = Recv(0, tagBarrier)
			default:
				return nil, true
			}
		}
	}
}

// Bcast broadcasts Data from Root to all ranks along a binomial tree
// (the MPICH algorithm): log2(P) steps on the critical path.
type Bcast struct {
	Root int
	Data []byte

	PC   int
	Mask int
	Sub  Op
}

// NewBcast constructs a broadcast; only the root needs Data set.
func NewBcast(root int, data []byte) *Bcast { return &Bcast{Root: root, Data: data} }

func (op *Bcast) step(rt *Runtime, api *guest.API, res guest.Result) (guest.Op, bool) {
	for {
		if op.Sub != nil {
			gop, done := op.Sub.step(rt, api, res)
			if !done {
				return gop, false
			}
			if r, ok := op.Sub.(*RecvMsg); ok {
				op.Data = r.Data
			}
			op.Sub = nil
			res = guest.Result{}
		}
		relative := (rt.Me - op.Root + rt.Size) % rt.Size
		switch op.PC {
		case 0: // find parent and receive (non-root only)
			if relative == 0 {
				op.Mask = 1
				for op.Mask < rt.Size {
					op.Mask <<= 1
				}
				op.Mask >>= 1
				op.PC = 2
				continue
			}
			mask := 1
			for relative&mask == 0 {
				mask <<= 1
			}
			src := (rt.Me - mask + rt.Size) % rt.Size
			op.Mask = mask >> 1
			op.PC = 1
			op.Sub = Recv(src, tagBcast)
		case 1: // received; fall through to sending phase
			op.PC = 2
		case 2: // send to children
			for op.Mask > 0 {
				if relative+op.Mask < rt.Size {
					dst := (rt.Me + op.Mask) % rt.Size
					op.Mask >>= 1
					op.Sub = Send(dst, tagBcast, op.Data)
					break
				}
				op.Mask >>= 1
			}
			if op.Sub == nil {
				return nil, true
			}
		}
	}
}

// ReduceKind selects the combining operator.
type ReduceKind int

// Reduction operators.
const (
	ReduceSum ReduceKind = iota
	ReduceMax
	// ReduceMaxLoc treats the vector as (value, location) pairs and keeps
	// the pair with the largest value, breaking ties toward the smaller
	// location — MPI_MAXLOC, which HPL's pivot search needs.
	ReduceMaxLoc
)

func combine(kind ReduceKind, acc, in []float64) {
	if kind == ReduceMaxLoc {
		for i := 0; i+1 < len(in); i += 2 {
			if in[i] > acc[i] || (in[i] == acc[i] && in[i+1] < acc[i+1]) {
				acc[i], acc[i+1] = in[i], in[i+1]
			}
		}
		return
	}
	for i := range in {
		switch kind {
		case ReduceSum:
			acc[i] += in[i]
		case ReduceMax:
			if in[i] > acc[i] {
				acc[i] = in[i]
			}
		}
	}
}

// Reduce combines Data from every rank at Root (flat gather). On
// completion the root's Data holds the result.
type Reduce struct {
	Root int
	Kind ReduceKind
	Data []float64

	PC  int
	Sub Op
}

// NewReduce constructs a reduction over each rank's Data vector.
func NewReduce(root int, kind ReduceKind, data []float64) *Reduce {
	return &Reduce{Root: root, Kind: kind, Data: data}
}

func (op *Reduce) step(rt *Runtime, api *guest.API, res guest.Result) (guest.Op, bool) {
	for {
		if op.Sub != nil {
			gop, done := op.Sub.step(rt, api, res)
			if !done {
				return gop, false
			}
			if r, ok := op.Sub.(*RecvMsg); ok {
				combine(op.Kind, op.Data, BytesToFloat64s(r.Data))
			}
			op.Sub = nil
			res = guest.Result{}
		}
		if rt.Me == op.Root {
			next := op.PC
			if next == op.Root {
				next++ // skip self
			}
			if next >= rt.Size {
				return nil, true
			}
			op.PC = next + 1
			op.Sub = Recv(next, tagReduce)
		} else {
			if op.PC == 1 {
				return nil, true
			}
			op.PC = 1
			op.Sub = Send(op.Root, tagReduce, Float64sToBytes(op.Data))
		}
	}
}

// Allreduce reduces to rank 0 then broadcasts the result; on completion
// every rank's Data holds the combined vector.
type Allreduce struct {
	Kind ReduceKind
	Data []float64

	PC  int
	Sub Op
}

// NewAllreduce constructs an allreduce over each rank's Data vector.
func NewAllreduce(kind ReduceKind, data []float64) *Allreduce {
	return &Allreduce{Kind: kind, Data: data}
}

func (op *Allreduce) step(rt *Runtime, api *guest.API, res guest.Result) (guest.Op, bool) {
	for {
		if op.Sub != nil {
			gop, done := op.Sub.step(rt, api, res)
			if !done {
				return gop, false
			}
			switch s := op.Sub.(type) {
			case *Reduce:
				op.Data = s.Data
			case *Bcast:
				op.Data = BytesToFloat64s(s.Data)
			}
			op.Sub = nil
			res = guest.Result{}
		}
		switch op.PC {
		case 0:
			op.PC = 1
			op.Sub = NewReduce(0, op.Kind, op.Data)
		case 1:
			op.PC = 2
			var payload []byte
			if rt.Me == 0 {
				payload = Float64sToBytes(op.Data)
			}
			op.Sub = NewBcast(0, payload)
		default:
			return nil, true
		}
	}
}

// Alltoall exchanges one block with every peer (pairwise rotation
// schedule, P-1 steps). Blocks[d] is sent to rank d; on completion
// Recvd[s] holds the block from rank s (Recvd[Me] = Blocks[Me]).
type Alltoall struct {
	Blocks [][]byte
	Recvd  [][]byte

	Step int
	PC   int
	Sub  Op
}

// NewAlltoall constructs an all-to-all exchange of the given blocks.
func NewAlltoall(blocks [][]byte) *Alltoall { return &Alltoall{Blocks: blocks} }

func (op *Alltoall) step(rt *Runtime, api *guest.API, res guest.Result) (guest.Op, bool) {
	if op.Recvd == nil {
		op.Recvd = make([][]byte, rt.Size)
		op.Recvd[rt.Me] = op.Blocks[rt.Me]
		op.Step = 1
	}
	for {
		if op.Sub != nil {
			gop, done := op.Sub.step(rt, api, res)
			if !done {
				return gop, false
			}
			if r, ok := op.Sub.(*RecvMsg); ok {
				op.Recvd[r.From] = r.Data
			}
			op.Sub = nil
			res = guest.Result{}
		}
		if op.Step >= rt.Size {
			return nil, true
		}
		to := (rt.Me + op.Step) % rt.Size
		from := (rt.Me - op.Step + rt.Size) % rt.Size
		switch op.PC {
		case 0:
			op.PC = 1
			op.Sub = Send(to, tagA2A, op.Blocks[to])
		default:
			op.PC = 0
			op.Step++
			op.Sub = Recv(from, tagA2A)
		}
	}
}
