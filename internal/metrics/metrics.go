// Package metrics provides the statistics and table rendering used by the
// experiment harness to print paper-style result rows.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"dvc/internal/sim"
)

// Sample accumulates float64 observations.
type Sample struct {
	vals []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.vals = append(s.vals, v) }

// AddTime appends a duration observation in seconds.
func (s *Sample) AddTime(t sim.Time) { s.Add(t.Seconds()) }

// Merge appends every observation of o in o's recording order, so merging
// per-trial samples in trial order reproduces the value sequence a serial
// loop would have accumulated. A nil o is a no-op.
func (s *Sample) Merge(o *Sample) {
	if o != nil {
		s.vals = append(s.vals, o.vals...)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.vals {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation.
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0-100) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Table renders fixed-width result tables.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtFloat(v)
		case sim.Time:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func fmtFloat(v float64) string {
	a := math.Abs(v)
	switch {
	case v == math.Trunc(v) && a < 1e7:
		return fmt.Sprintf("%.0f", v)
	case a >= 1000 || (a < 0.01 && a > 0):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Headers returns the column headers.
func (t *Table) Headers() []string { return append([]string(nil), t.headers...) }

// Rows returns the formatted cell values.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// MarshalJSON renders the table as {title, headers, rows}.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.headers, t.rows})
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
