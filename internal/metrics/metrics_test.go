package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dvc/internal/sim"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if math.Abs(s.Std()-2.138) > 0.01 {
		t.Fatalf("Std = %v", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if p := s.Percentile(50); p != 50 {
		t.Fatalf("P50 = %v", p)
	}
	if p := s.Percentile(99); p != 99 {
		t.Fatalf("P99 = %v", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("P100 = %v", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("P0 = %v", p)
	}
}

// TestPercentileEdgeCases pins the nearest-rank behaviour the trace
// summarisers (dvctrace -stats, obs.Registry) depend on: insertion order
// must not matter, duplicates must be handled, a single sample answers
// every percentile, and out-of-range p clamps instead of panicking.
func TestPercentileEdgeCases(t *testing.T) {
	// Unsorted insertion order: Percentile sorts a copy internally.
	var s Sample
	for _, v := range []float64{9, 1, 5, 3, 7} {
		s.Add(v)
	}
	if p := s.Percentile(50); p != 5 {
		t.Fatalf("unsorted P50 = %v, want 5", p)
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("Min/Max after unsorted insert = %v/%v", s.Min(), s.Max())
	}
	// Percentile must not mutate the stored order (Mean unchanged etc.).
	if s.Mean() != 5 {
		t.Fatalf("Mean after Percentile = %v", s.Mean())
	}

	// Single element: every percentile is that element.
	var one Sample
	one.Add(42)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := one.Percentile(p); got != 42 {
			t.Fatalf("single-sample P%v = %v, want 42", p, got)
		}
	}

	// Duplicates: nearest-rank lands inside the run of duplicates.
	var dup Sample
	for _, v := range []float64{1, 2, 2, 2, 2, 2, 2, 2, 2, 3} {
		dup.Add(v)
	}
	if p := dup.Percentile(50); p != 2 {
		t.Fatalf("duplicate P50 = %v, want 2", p)
	}
	if p := dup.Percentile(10); p != 1 {
		t.Fatalf("duplicate P10 = %v, want 1", p)
	}
	if p := dup.Percentile(100); p != 3 {
		t.Fatalf("duplicate P100 = %v, want 3", p)
	}

	// Out-of-range p clamps to the extremes rather than panicking.
	var two Sample
	two.Add(10)
	two.Add(20)
	if p := two.Percentile(-5); p != 10 {
		t.Fatalf("P(-5) = %v, want 10", p)
	}
	if p := two.Percentile(250); p != 20 {
		t.Fatalf("P(250) = %v, want 20", p)
	}
}

// TestPercentileMonotonic: for any sample, Percentile must be monotonic
// in p and bounded by Min/Max — the property every latency table in the
// experiments relies on.
func TestPercentileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddTime(t *testing.T) {
	var s Sample
	s.AddTime(1500 * sim.Millisecond)
	if s.Mean() != 1.5 {
		t.Fatalf("AddTime mean = %v", s.Mean())
	}
}

func TestPropertyMinLEMeanLEMax(t *testing.T) {
	f := func(vals []int32) bool {
		var s Sample
		ok := true
		for _, v := range vals {
			s.Add(float64(v))
			ok = ok && !math.IsNaN(s.Mean())
		}
		if s.N() == 0 {
			return true
		}
		return ok && s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Results", "nodes", "fail%", "time")
	tb.Row(8, 0.0, 3150*sim.Millisecond)
	tb.Row(10, 50.0, 4*sim.Second)
	out := tb.String()
	if !strings.Contains(out, "== Results ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "nodes") || !strings.Contains(out, "fail%") {
		t.Fatal("missing headers")
	}
	if !strings.Contains(out, "3.15s") || !strings.Contains(out, "50") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.Row(3.14159)
	tb.Row(12345678.0)
	tb.Row(42.0)
	out := tb.String()
	if !strings.Contains(out, "3.142") {
		t.Fatalf("float not rounded: %s", out)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("integer-valued float mangled: %s", out)
	}
}

func TestTableJSONAndAccessors(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.Row(1, "x")
	if h := tb.Headers(); len(h) != 2 || h[0] != "a" {
		t.Fatalf("Headers %v", h)
	}
	rows := tb.Rows()
	if len(rows) != 1 || rows[0][0] != "1" || rows[0][1] != "x" {
		t.Fatalf("Rows %v", rows)
	}
	// Mutating the copies must not affect the table.
	rows[0][0] = "mutated"
	if tb.Rows()[0][0] != "1" {
		t.Fatal("Rows returned aliased storage")
	}
	b, err := tb.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"title":"T"`) || !strings.Contains(string(b), `"rows":[["1","x"]]`) {
		t.Fatalf("JSON %s", b)
	}
}
