package fleet

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapIndexOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got := Map(workers, 20, func(i int) int { return i * i })
		if len(got) != 20 {
			t.Fatalf("workers=%d: len=%d, want 20", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: out[%d]=%d, want %d (results must be indexed by trial)", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got := Map(4, 0, func(i int) int { t.Fatal("fn called for n=0"); return 0 })
	if len(got) != 0 {
		t.Fatalf("n=0: len=%d", len(got))
	}
}

func TestMapEveryTrialRunsExactlyOnce(t *testing.T) {
	const n = 100
	var counts [n]atomic.Int32
	Map(8, n, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("trial %d ran %d times, want 1", i, c)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	Map(workers, 50, func(i int) struct{} {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent trials, pool is bounded at %d", p, workers)
	}
}

func TestMapSerialPathSpawnsNothing(t *testing.T) {
	// workers == 1 must run inline: trial order is strictly 0..n-1 on the
	// calling goroutine, observable as a strictly increasing sequence
	// without any synchronisation.
	var seen []int
	Map(1, 10, func(i int) struct{} {
		seen = append(seen, i)
		return struct{}{}
	})
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial path ran out of order: %v", seen)
		}
	}
}

func TestMapPanicPropagation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		p, ok := r.(*trialPanic)
		if !ok {
			t.Fatalf("re-panic value is %T, want *trialPanic", r)
		}
		if p.trial != 3 {
			t.Errorf("propagated trial %d, want the lowest panicking index 3", p.trial)
		}
		if !strings.Contains(p.Error(), "boom-3") {
			t.Errorf("panic lost its payload: %s", p.Error())
		}
	}()
	Map(4, 16, func(i int) int {
		if i >= 3 && i%2 == 1 { // several trials panic; index 3 is lowest
			panic("boom-" + string(rune('0'+i%10)))
		}
		return i
	})
}

func TestMapPanicSerialPath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("serial-path panic was swallowed")
		}
	}()
	Map(1, 4, func(i int) int {
		if i == 2 {
			panic("serial boom")
		}
		return i
	})
}

func TestForEach(t *testing.T) {
	var counts [10]atomic.Int32
	ForEach(4, 10, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("trial %d ran %d times, want 1", i, c)
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}
