// Package fleet is the deterministic parallel trial runner for the
// experiment harness: it fans independent trial closures across a bounded
// worker pool and delivers results indexed by trial number, so the
// aggregation order — and therefore every table, digest and shape check —
// is byte-for-byte identical to a serial loop.
//
// fleet is the single sanctioned concurrency package in the module (see
// internal/analysis/rules.go). The determinism contract survives because
// of two structural properties:
//
//  1. Kernels never cross goroutines. Each trial closure builds its own
//     sim.Kernel with its own seed and runs it to completion on one
//     worker; no simulation object is ever shared between workers. A
//     trial is a pure function of its index.
//  2. Results merge in index order. Workers write only out[i] for the
//     trial indices they executed (disjoint slice elements), and callers
//     aggregate the returned slice with an ordinary index-ordered loop —
//     exactly the order the serial loop would have produced.
//
// Host-scheduler nondeterminism therefore only affects *when* a trial
// executes, never *what* it computes or the order in which its result is
// observed. The serial-vs-parallel equivalence test in
// internal/experiments enforces this end to end (identical tables, check
// results and JSONL trace bytes for Parallel=1 vs Parallel=N).
package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default pool size: the process's GOMAXPROCS
// (the number of cores Go will actually schedule on).
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// trialPanic carries a recovered panic out of a worker.
type trialPanic struct {
	trial int
	value any
}

// Error formats the panic for re-raise on the caller's goroutine.
func (p *trialPanic) Error() string {
	return fmt.Sprintf("fleet: trial %d panicked: %v", p.trial, p.value)
}

// Map runs fn(0), fn(1), ..., fn(n-1) across at most workers goroutines
// and returns the results indexed by trial number. workers <= 0 selects
// DefaultWorkers(); workers == 1 runs the trials inline on the calling
// goroutine (no goroutines are spawned at all — the pure serial path).
//
// fn must be safe for concurrent invocation with distinct indices: a
// trial closure may only touch state it creates itself (its own kernel,
// bed, apps) plus its return value. It must not write to shared
// aggregates — return the per-trial measurements and fold them after Map
// returns, in index order.
//
// If one or more trials panic, Map waits for the remaining workers to
// drain and then re-panics on the calling goroutine with the panic of
// the lowest trial index (a deterministic choice, so a buggy experiment
// fails identically regardless of worker interleaving).
func Map[T any](workers, n int, fn func(trial int) T) []T {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	var (
		next    atomic.Int64 // next unclaimed trial index
		wg      sync.WaitGroup
		mu      sync.Mutex
		panics  []*trialPanic
		runOne  func(i int) (p *trialPanic)
		claimed = func() int { return int(next.Add(1) - 1) }
	)
	runOne = func(i int) (p *trialPanic) {
		defer func() {
			if r := recover(); r != nil {
				p = &trialPanic{trial: i, value: r}
			}
		}()
		out[i] = fn(i)
		return nil
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := claimed()
				if i >= n {
					return
				}
				if p := runOne(i); p != nil {
					mu.Lock()
					panics = append(panics, p)
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(panics) > 0 {
		// Deterministic propagation: the lowest trial index wins, which is
		// the panic the serial loop would have hit first.
		first := panics[0]
		for _, p := range panics[1:] {
			if p.trial < first.trial {
				first = p
			}
		}
		panic(first)
	}
	return out
}

// ForEach is Map for closures without a result: it runs fn for every
// trial index with the same pooling, ordering and panic semantics.
func ForEach(workers, n int, fn func(trial int)) {
	Map(workers, n, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
