package guest

import (
	"fmt"
	"reflect"
	"testing"

	"dvc/internal/payload"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

func sectionedSnap() *Snapshot {
	log := make([]LogEntry, 300) // spans two log groups
	for i := range log {
		log[i] = LogEntry{Jiffies: sim.Time(i), Wall: sim.Time(i), Msg: fmt.Sprintf("entry %d", i)}
	}
	return &Snapshot{
		Procs: []ProcSnapshot{
			{PID: 1, TimerLeft: -1},
			{PID: 2, TimerLeft: -1},
			{PID: 3, Exited: true, ExitCode: 0, TimerLeft: -1},
		},
		NextPID: 4,
		FDs: map[int]tcp.ConnKey{
			3: {LocalPort: 9000, RemoteAddr: "peer-a", RemotePort: 80},
			4: {LocalPort: 9001, RemoteAddr: "peer-b", RemotePort: 80},
			5: {LocalPort: 9002, RemoteAddr: "peer-c", RemotePort: 80},
		},
		NextFD: 6,
		Accepts: map[uint16][]tcp.ConnKey{
			80: {{LocalPort: 80, RemoteAddr: "client", RemotePort: 5000}},
			81: nil,
		},
		Listens:   []uint16{80, 81},
		Log:       log,
		Jiffies:   5 * sim.Second,
		WD:        WatchdogConfig{Interval: sim.Second, Tolerance: 2 * sim.Second},
		WDLeft:    500 * sim.Millisecond,
		WDTimeout: 1,
		CPUFactor: 1.03,
	}
}

func chunkIDsOf(t *testing.T, snap *Snapshot) []payload.ChunkID {
	t.Helper()
	img, err := EncodeImagePayload(snap)
	if err != nil {
		t.Fatal(err)
	}
	return img.AppendChunkIDs(nil)
}

func TestSectionedRoundTrip(t *testing.T) {
	snap := sectionedSnap()
	img, err := EncodeImagePayload(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImagePayload(img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, snap)
	}
}

func TestSectionedRoundTripEmpty(t *testing.T) {
	img, err := EncodeImagePayload(&Snapshot{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImagePayload(img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, &Snapshot{}) {
		t.Fatalf("empty snapshot round trip: %+v", got)
	}
}

func TestDecodeRejectsCorruptImage(t *testing.T) {
	if _, err := DecodeImagePayload(payload.Wrap([]byte("short"))); err == nil {
		t.Fatal("short image decoded")
	}
	img, err := EncodeImagePayload(sectionedSnap())
	if err != nil {
		t.Fatal(err)
	}
	flat := img.Flatten()
	flat[len(flat)-1] ^= 1 // break the magic
	if _, err := DecodeImagePayload(payload.Wrap(flat)); err == nil {
		t.Fatal("bad magic decoded")
	}
}

// TestEncodeDeterministic pins the property the content-addressed store
// depends on: encoding the same snapshot twice yields byte-identical
// chunks — including the FD and accept tables, which live in maps and
// would encode in random order if gob serialised them directly.
func TestEncodeDeterministic(t *testing.T) {
	snap := sectionedSnap()
	a, b := chunkIDsOf(t, snap), chunkIDsOf(t, snap)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs between identical encodes", i)
		}
	}
}

// TestUnchangedSectionsShareChunks is the cross-epoch dedup property:
// changing one process's state must change only that process's section
// chunk (plus the trailer chunk, whose section-length table records the
// section's new size), leaving every other chunk — and its ChunkID —
// identical.
func TestUnchangedSectionsShareChunks(t *testing.T) {
	base := sectionedSnap()
	ids0 := chunkIDsOf(t, base)

	mod := sectionedSnap()
	mod.Procs[1].ExitCode = 7
	mod.Procs[1].Exited = true
	ids1 := chunkIDsOf(t, mod)
	if len(ids0) != len(ids1) {
		t.Fatalf("chunk counts differ: %d vs %d", len(ids0), len(ids1))
	}
	diff := 0
	for i := range ids0 {
		if ids0[i] != ids1[i] {
			diff++
		}
	}
	if diff != 2 {
		t.Fatalf("one changed process touched %d of %d chunks, want 2 (proc section + trailer)", diff, len(ids0))
	}

	// Appending to the log re-encodes only the open tail group (plus the
	// meta section that counts entries, plus the trailer): full log
	// groups are immutable.
	grown := sectionedSnap()
	grown.Log = append(grown.Log, LogEntry{Jiffies: 301, Wall: 301, Msg: "more"})
	ids2 := chunkIDsOf(t, grown)
	if len(ids2) != len(ids0) {
		t.Fatalf("chunk counts differ after log append: %d vs %d", len(ids2), len(ids0))
	}
	diff = 0
	for i := range ids0 {
		if ids0[i] != ids2[i] {
			diff++
		}
	}
	if diff != 3 {
		t.Fatalf("log append touched %d chunks, want 3 (meta + tail group + trailer)", diff)
	}
}
