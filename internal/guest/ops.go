package guest

import (
	"encoding/gob"

	"dvc/internal/netsim"
	"dvc/internal/payload"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

// Op is a blocking guest operation. Concrete op types are pure data and
// gob-registered: an in-progress operation is part of the VM image.
type Op interface {
	// start arms the operation (timers, writes, connection setup).
	start(o *OS, p *Process)
	// poll checks for completion and produces the result.
	poll(o *OS, p *Process) (Result, bool)
}

func init() {
	gob.Register(&ComputeOp{})
	gob.Register(&SleepOp{})
	gob.Register(&SendOp{})
	gob.Register(&RecvOp{})
	gob.Register(&ConnectOp{})
	gob.Register(&AcceptOp{})
}

// ComputeOp burns CPU for the given nominal duration. The actual duration
// is scaled by the VM's CPU overhead factor, so the same program runs
// slightly slower inside a para-virtualised guest — experiment E7.
type ComputeOp struct {
	Duration sim.Time
	Started  bool
}

// Compute returns an op that computes for d.
func Compute(d sim.Time) *ComputeOp { return &ComputeOp{Duration: d} }

func (op *ComputeOp) start(o *OS, p *Process) {
	if !op.Started {
		op.Started = true
		p.armTimer(o, sim.Time(float64(op.Duration)*o.cpuFactor))
	}
}

func (op *ComputeOp) poll(o *OS, p *Process) (Result, bool) {
	return Result{}, p.timerFired
}

// SleepOp suspends the process for a guest-time duration (no CPU scaling).
type SleepOp struct {
	Duration sim.Time
	Started  bool
}

// Sleep returns an op that sleeps for d of guest time.
func Sleep(d sim.Time) *SleepOp { return &SleepOp{Duration: d} }

func (op *SleepOp) start(o *OS, p *Process) {
	if !op.Started {
		op.Started = true
		p.armTimer(o, op.Duration)
	}
}

func (op *SleepOp) poll(o *OS, p *Process) (Result, bool) {
	return Result{}, p.timerFired
}

// SendOp writes data to a socket. It completes when the transport has
// acknowledged enough that the send backlog fits inside the send window —
// i.e. the sender is paced by the wire, like a blocking write on a
// bounded socket buffer.
//
// Data is a payload rope handed to the transport by reference: no byte
// is copied between the program and the TCP send queue. The rope is
// gob-encodable (an op not yet polled is part of the VM image) and
// subject to the payload immutability contract — programs build a fresh
// buffer per message.
type SendOp struct {
	FD      int
	Data    payload.Bytes
	Len     int
	Written bool
}

// Send returns an op that writes data to fd (zero-copy: data is wrapped,
// not copied — the program gives up the right to mutate it).
func Send(fd int, data []byte) *SendOp {
	return &SendOp{FD: fd, Data: payload.Wrap(data), Len: len(data)}
}

// SendPayload returns an op that writes a chunked rope to fd — the
// entry point for layers (mpi framing) that assemble messages from
// shared chunks without materialising them.
func SendPayload(fd int, data payload.Bytes) *SendOp {
	return &SendOp{FD: fd, Data: data, Len: data.Len()}
}

func (op *SendOp) start(o *OS, p *Process) {}

func (op *SendOp) poll(o *OS, p *Process) (Result, bool) {
	c, ok := o.conn(op.FD)
	if !ok {
		return Result{Err: tcp.ErrClosed}, true
	}
	if !op.Written {
		if err := c.WritePayload(op.Data); err != nil {
			return Result{Err: err}, true
		}
		op.Written = true
		op.Data = payload.Bytes{} // handed to the transport; don't checkpoint twice
	}
	switch c.State() {
	case tcp.StateReset:
		return Result{Err: tcp.ErrReset}, true
	case tcp.StateClosed:
		return Result{Err: tcp.ErrClosed}, true
	}
	if c.SendBacklog() <= o.stack.Config().SendWindow {
		return Result{N: op.Len}, true
	}
	return Result{}, false
}

// RecvOp reads exactly N bytes from a socket (or reports EOF/error).
type RecvOp struct {
	FD int
	N  int
}

// Recv returns an op that reads exactly n bytes from fd.
func Recv(fd, n int) *RecvOp { return &RecvOp{FD: fd, N: n} }

func (op *RecvOp) start(o *OS, p *Process) {}

func (op *RecvOp) poll(o *OS, p *Process) (Result, bool) {
	c, ok := o.conn(op.FD)
	if !ok {
		return Result{Err: tcp.ErrClosed}, true
	}
	if c.Readable() >= op.N {
		return Result{Data: c.Read(op.N), N: op.N}, true
	}
	if c.EOF() {
		return Result{EOF: true}, true
	}
	switch c.State() {
	case tcp.StateReset:
		return Result{Err: tcp.ErrReset}, true
	case tcp.StateClosed:
		return Result{Err: tcp.ErrClosed}, true
	}
	return Result{}, false
}

// ConnectOp opens a connection to a remote guest.
type ConnectOp struct {
	Addr    netsim.Addr
	Port    uint16
	Started bool
	Key     tcp.ConnKey
}

// Connect returns an op that dials addr:port.
func Connect(addr netsim.Addr, port uint16) *ConnectOp {
	return &ConnectOp{Addr: addr, Port: port}
}

func (op *ConnectOp) start(o *OS, p *Process) {
	if !op.Started {
		op.Started = true
		c := o.stack.Connect(op.Addr, op.Port)
		op.Key = c.Key()
		o.wireConn(c)
	}
}

func (op *ConnectOp) poll(o *OS, p *Process) (Result, bool) {
	c, ok := o.stack.Lookup(op.Key)
	if !ok {
		return Result{Err: tcp.ErrClosed}, true
	}
	switch c.State() {
	case tcp.StateEstablished, tcp.StateClosing:
		return Result{FD: o.newFD(op.Key)}, true
	case tcp.StateReset:
		return Result{Err: tcp.ErrReset}, true
	case tcp.StateClosed:
		return Result{Err: tcp.ErrClosed}, true
	}
	return Result{}, false
}

// AcceptOp takes the next queued inbound connection on a listening port.
type AcceptOp struct {
	Port uint16
}

// Accept returns an op that accepts one connection on port (which must
// have been opened with OS.Listen).
func Accept(port uint16) *AcceptOp { return &AcceptOp{Port: port} }

func (op *AcceptOp) start(o *OS, p *Process) {}

func (op *AcceptOp) poll(o *OS, p *Process) (Result, bool) {
	q := o.accepts[op.Port]
	if len(q) == 0 {
		return Result{}, false
	}
	key := q[0]
	o.accepts[op.Port] = q[1:]
	return Result{FD: o.newFD(key)}, true
}
