package guest

import (
	"encoding/gob"
	"fmt"
	"testing"

	"dvc/internal/netsim"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

func init() {
	gob.Register(&computeProg{})
	gob.Register(&pingProg{})
	gob.Register(&echoProg{})
	gob.Register(&clockProg{})
	gob.Register(&listenTwiceProg{})
	gob.Register(&apiProbeProg{})
}

// computeProg computes for a fixed duration N times, then exits 0.
type computeProg struct {
	Dur    sim.Time
	Rounds int
	I      int
	Done   bool
}

func (p *computeProg) Next(api *API, res Result) Op {
	if p.I < p.Rounds {
		p.I++
		return Compute(p.Dur)
	}
	p.Done = true
	api.Exit(0)
	return nil
}

// echoProg accepts one connection and echoes fixed-size messages forever
// until EOF.
type echoProg struct {
	Port uint16
	Size int
	PC   int
	FD   int
	Seen int
	Buf  []byte
}

func (p *echoProg) Next(api *API, res Result) Op {
	for {
		switch p.PC {
		case 0:
			p.PC = 1
			return Accept(p.Port)
		case 1:
			p.FD = res.FD
			p.PC = 2
			return Recv(p.FD, p.Size)
		case 2:
			if res.EOF {
				api.Exit(0)
				return nil
			}
			if res.Err != nil {
				api.Exit(1)
				return nil
			}
			p.Seen++
			p.Buf = res.Data
			p.PC = 3
			return Send(p.FD, p.Buf)
		case 3:
			if res.Err != nil {
				api.Exit(1)
				return nil
			}
			p.PC = 2
			return Recv(p.FD, p.Size)
		default:
			api.Exit(2)
			return nil
		}
	}
}

// pingProg connects and does Rounds round trips of Size-byte messages.
type pingProg struct {
	Server netsim.Addr
	Port   uint16
	Size   int
	Rounds int
	PC     int
	FD     int
	Done   int
	Fail   string
}

func (p *pingProg) Next(api *API, res Result) Op {
	for {
		switch p.PC {
		case 0:
			p.PC = 1
			return Connect(p.Server, p.Port)
		case 1:
			if res.Err != nil {
				p.Fail = res.Err.Error()
				api.Exit(1)
				return nil
			}
			p.FD = res.FD
			p.PC = 2
		case 2:
			if p.Done >= p.Rounds {
				api.Exit(0)
				return nil
			}
			p.PC = 3
			msg := make([]byte, p.Size)
			for i := range msg {
				msg[i] = byte(p.Done)
			}
			return Send(p.FD, msg)
		case 3:
			if res.Err != nil {
				p.Fail = res.Err.Error()
				api.Exit(1)
				return nil
			}
			p.PC = 4
			return Recv(p.FD, p.Size)
		case 4:
			if res.Err != nil || res.EOF {
				p.Fail = fmt.Sprintf("recv: %v eof=%v", res.Err, res.EOF)
				api.Exit(1)
				return nil
			}
			if len(res.Data) != p.Size || res.Data[0] != byte(p.Done) {
				p.Fail = "corrupt echo"
				api.Exit(1)
				return nil
			}
			p.Done++
			p.PC = 2
		}
	}
}

// clockProg samples wall clock and jiffies around a sleep.
type clockProg struct {
	SleepFor                   sim.Time
	PC                         int
	Wall0, Wall1, Jiff0, Jiff1 sim.Time
}

func (p *clockProg) Next(api *API, res Result) Op {
	switch p.PC {
	case 0:
		p.Wall0, p.Jiff0 = api.WallClock(), api.Jiffies()
		p.PC = 1
		return Sleep(p.SleepFor)
	default:
		p.Wall1, p.Jiff1 = api.WallClock(), api.Jiffies()
		api.Exit(0)
		return nil
	}
}

// rig is a two-guest test environment.
type rig struct {
	k      *sim.Kernel
	fabric *netsim.Fabric
	osA    *OS
	osB    *OS
	pA, pB *netsim.Port
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel(7)
	f := netsim.NewFabric(k)
	f.AddCluster("c", netsim.EthernetGigE())
	r := &rig{k: k, fabric: f}
	sa := tcp.NewStack(k, f, "ga", tcp.DefaultConfig())
	sb := tcp.NewStack(k, f, "gb", tcp.DefaultConfig())
	r.pA = f.Attach("ga", "c", sa.Deliver)
	r.pB = f.Attach("gb", "c", sb.Deliver)
	wall := func() sim.Time { return k.Now() } // perfect host clocks for tests
	r.osA = New(k, sa, wall, 1.0, WatchdogConfig{})
	r.osB = New(k, sb, wall, 1.0, WatchdogConfig{})
	return r
}

// freezeGuest pauses a guest the way a hypervisor would: OS freeze plus
// port down.
func (r *rig) freeze(o *OS, port *netsim.Port) {
	o.Freeze()
	port.SetUp(false)
}

func (r *rig) thaw(o *OS, port *netsim.Port) {
	port.SetUp(true)
	o.Thaw()
}

func TestComputeProgramRunsToCompletion(t *testing.T) {
	r := newRig(t)
	prog := &computeProg{Dur: 100 * sim.Millisecond, Rounds: 5}
	pid := r.osA.Spawn(prog)
	r.k.RunFor(sim.Second)
	p, _ := r.osA.Proc(pid)
	if !p.Exited() || p.ExitCode() != 0 {
		t.Fatalf("exited=%v code=%d", p.Exited(), p.ExitCode())
	}
	if !prog.Done {
		t.Fatal("program state not advanced")
	}
	// 5 * 100ms of compute.
	if r.k.Now() < 500*sim.Millisecond {
		t.Fatalf("finished too early: %v", r.k.Now())
	}
}

func TestCPUFactorSlowsCompute(t *testing.T) {
	k := sim.NewKernel(7)
	f := netsim.NewFabric(k)
	f.AddCluster("c", netsim.EthernetGigE())
	s := tcp.NewStack(k, f, "g", tcp.DefaultConfig())
	f.Attach("g", "c", s.Deliver)
	o := New(k, s, func() sim.Time { return k.Now() }, 1.5, WatchdogConfig{})
	pid := o.Spawn(&computeProg{Dur: sim.Second, Rounds: 1})
	k.Run()
	p, _ := o.Proc(pid)
	if !p.Exited() {
		t.Fatal("did not exit")
	}
	if k.Now() != 1500*sim.Millisecond {
		t.Fatalf("virtualised compute took %v, want 1.5s", k.Now())
	}
}

func TestPingPongBetweenGuests(t *testing.T) {
	r := newRig(t)
	r.osB.Listen(7000)
	r.osB.Spawn(&echoProg{Port: 7000, Size: 64})
	ping := &pingProg{Server: "gb", Port: 7000, Size: 64, Rounds: 10}
	pid := r.osA.Spawn(ping)
	r.k.RunFor(10 * sim.Second)
	p, _ := r.osA.Proc(pid)
	if !p.Exited() || p.ExitCode() != 0 {
		t.Fatalf("pinger exited=%v code=%d fail=%q", p.Exited(), p.ExitCode(), ping.Fail)
	}
	if ping.Done != 10 {
		t.Fatalf("completed %d rounds, want 10", ping.Done)
	}
}

func TestLargeMessagePingPong(t *testing.T) {
	r := newRig(t)
	r.osB.Listen(7000)
	r.osB.Spawn(&echoProg{Port: 7000, Size: 1 << 20})
	ping := &pingProg{Server: "gb", Port: 7000, Size: 1 << 20, Rounds: 3}
	pid := r.osA.Spawn(ping)
	r.k.RunFor(60 * sim.Second)
	p, _ := r.osA.Proc(pid)
	if !p.Exited() || p.ExitCode() != 0 {
		t.Fatalf("pinger code=%d fail=%q", p.ExitCode(), ping.Fail)
	}
}

func TestFreezeHaltsProgress(t *testing.T) {
	r := newRig(t)
	prog := &computeProg{Dur: 100 * sim.Millisecond, Rounds: 100}
	r.osA.Spawn(prog)
	r.k.RunFor(550 * sim.Millisecond)
	iBefore := prog.I
	r.freeze(r.osA, r.pA)
	r.k.RunFor(10 * sim.Second)
	if prog.I != iBefore {
		t.Fatalf("program advanced while frozen: %d -> %d", iBefore, prog.I)
	}
	r.thaw(r.osA, r.pA)
	r.k.RunFor(20 * sim.Second)
	if !prog.Done {
		t.Fatal("program did not finish after thaw")
	}
}

func TestFreezePreservesComputeRemainder(t *testing.T) {
	r := newRig(t)
	prog := &computeProg{Dur: sim.Second, Rounds: 1}
	pid := r.osA.Spawn(prog)
	r.k.RunFor(400 * sim.Millisecond) // 600ms of compute remains
	r.freeze(r.osA, r.pA)
	r.k.RunFor(time100())
	r.thaw(r.osA, r.pA)
	resumeAt := r.k.Now()
	r.k.Run()
	p, _ := r.osA.Proc(pid)
	if !p.Exited() {
		t.Fatal("did not finish")
	}
	if finish := r.k.Now() - resumeAt; finish != 600*sim.Millisecond {
		t.Fatalf("remaining compute after thaw = %v, want 600ms", finish)
	}
}

func time100() sim.Time { return 100 * sim.Second }

func TestJiffiesFreezeWallDoesNot(t *testing.T) {
	r := newRig(t)
	prog := &clockProg{SleepFor: sim.Second}
	r.osA.Spawn(prog)
	r.k.RunFor(500 * sim.Millisecond)
	r.freeze(r.osA, r.pA)
	r.k.RunFor(time100())
	r.thaw(r.osA, r.pA)
	r.k.Run()
	wallElapsed := prog.Wall1 - prog.Wall0
	jiffElapsed := prog.Jiff1 - prog.Jiff0
	if jiffElapsed != sim.Second {
		t.Fatalf("jiffies elapsed %v, want exactly 1s (frozen during pause)", jiffElapsed)
	}
	if wallElapsed != sim.Second+time100() {
		t.Fatalf("wall elapsed %v, want 1s + 100s pause (clock not virtualised)", wallElapsed)
	}
}

func TestSnapshotRestoreMidPingPong(t *testing.T) {
	r := newRig(t)
	r.osB.Listen(7000)
	r.osB.Spawn(&echoProg{Port: 7000, Size: 4096})
	ping := &pingProg{Server: "gb", Port: 7000, Size: 4096, Rounds: 50}
	r.osA.Spawn(ping)
	r.k.RunFor(20 * sim.Millisecond) // mid-exchange

	// Coordinated checkpoint of both guests.
	r.freeze(r.osA, r.pA)
	r.freeze(r.osB, r.pB)
	imgA, err := EncodeImage(r.osA.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	imgB, err := EncodeImage(r.osB.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	// The originals are destroyed with their node.
	r.pA.Detach()
	r.pB.Detach()
	r.k.RunFor(30 * sim.Second)

	// Restore both from their images.
	snapA, err := DecodeImage(imgA)
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := DecodeImage(imgB)
	if err != nil {
		t.Fatal(err)
	}
	wall := func() sim.Time { return r.k.Now() }
	osA2 := Restore(r.k, r.fabric, snapA, wall, 1.0)
	osB2 := Restore(r.k, r.fabric, snapB, wall, 1.0)
	r.fabric.Attach("ga", "c", osA2.Stack().Deliver)
	r.fabric.Attach("gb", "c", osB2.Stack().Deliver)
	osA2.Thaw()
	osB2.Thaw()
	r.k.RunFor(60 * sim.Second)

	p := osA2.Procs()[0]
	prog := p.Program().(*pingProg)
	if !p.Exited() || p.ExitCode() != 0 {
		t.Fatalf("restored pinger exited=%v code=%d fail=%q done=%d", p.Exited(), p.ExitCode(), prog.Fail, prog.Done)
	}
	if prog.Done != 50 {
		t.Fatalf("restored pinger completed %d rounds, want 50", prog.Done)
	}
}

func TestSnapshotRequiresFrozen(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot of running OS did not panic")
		}
	}()
	r.osA.Snapshot()
}

func TestWatchdogFiresOncePerFreezeCycle(t *testing.T) {
	k := sim.NewKernel(7)
	f := netsim.NewFabric(k)
	f.AddCluster("c", netsim.EthernetGigE())
	s := tcp.NewStack(k, f, "g", tcp.DefaultConfig())
	port := f.Attach("g", "c", s.Deliver)
	o := New(k, s, func() sim.Time { return k.Now() }, 1.0, DefaultWatchdog())
	o.Spawn(&computeProg{Dur: sim.Second, Rounds: 10000})

	k.RunFor(60 * sim.Second)
	if o.WatchdogTimeouts() != 0 {
		t.Fatalf("%d watchdog timeouts during normal running, want 0", o.WatchdogTimeouts())
	}
	for cycle := 1; cycle <= 3; cycle++ {
		o.Freeze()
		port.SetUp(false)
		k.RunFor(120 * sim.Second)
		port.SetUp(true)
		o.Thaw()
		k.RunFor(60 * sim.Second)
		if o.WatchdogTimeouts() != cycle {
			t.Fatalf("after %d freeze cycles: %d timeouts", cycle, o.WatchdogTimeouts())
		}
	}
	// The reports are in the kernel log.
	found := 0
	for _, e := range o.KernelLog() {
		if len(e.Msg) > 8 && e.Msg[:8] == "watchdog" {
			found++
		}
	}
	if found != 3 {
		t.Fatalf("kernel log has %d watchdog lines, want 3", found)
	}
}

func TestPeerDeathResetsAndProgramSeesError(t *testing.T) {
	r := newRig(t)
	r.osB.Listen(7000)
	r.osB.Spawn(&echoProg{Port: 7000, Size: 64})
	ping := &pingProg{Server: "gb", Port: 7000, Size: 64, Rounds: 1 << 30}
	pid := r.osA.Spawn(ping)
	r.k.RunFor(2 * sim.Second)
	// B's node dies (no freeze — it is gone).
	r.pB.SetUp(false)
	r.k.RunFor(60 * sim.Second)
	p, _ := r.osA.Proc(pid)
	if !p.Exited() || p.ExitCode() != 1 {
		t.Fatalf("pinger should fail after peer death: exited=%v code=%d", p.Exited(), p.ExitCode())
	}
	if ping.Fail == "" {
		t.Fatal("no failure reason recorded")
	}
}

func TestConnectToDeadHostFails(t *testing.T) {
	r := newRig(t)
	r.pB.SetUp(false)
	ping := &pingProg{Server: "gb", Port: 7000, Size: 8, Rounds: 1}
	pid := r.osA.Spawn(ping)
	r.k.RunFor(60 * sim.Second)
	p, _ := r.osA.Proc(pid)
	if !p.Exited() || p.ExitCode() != 1 {
		t.Fatalf("connect to dead host: exited=%v code=%d", p.Exited(), p.ExitCode())
	}
}

func TestKernelLogEntries(t *testing.T) {
	r := newRig(t)
	r.osA.Logf("hello %d", 42)
	log := r.osA.KernelLog()
	if len(log) != 1 || log[0].Msg != "hello 42" {
		t.Fatalf("log = %+v", log)
	}
}

func TestAllExited(t *testing.T) {
	r := newRig(t)
	if !r.osA.AllExited() {
		t.Fatal("empty OS should report all exited")
	}
	r.osA.Spawn(&computeProg{Dur: sim.Second, Rounds: 1})
	if r.osA.AllExited() {
		t.Fatal("running proc reported as exited")
	}
	r.k.Run()
	if !r.osA.AllExited() {
		t.Fatal("finished proc not reported as exited")
	}
}

func TestImageRoundTripPreservesLog(t *testing.T) {
	r := newRig(t)
	r.osA.Logf("before checkpoint")
	r.osA.Freeze()
	img, err := EncodeImage(r.osA.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Log) != 1 || snap.Log[0].Msg != "before checkpoint" {
		t.Fatalf("restored log %+v", snap.Log)
	}
}

func TestMultipleProcessesInterleave(t *testing.T) {
	r := newRig(t)
	a := &computeProg{Dur: 10 * sim.Millisecond, Rounds: 10}
	b := &computeProg{Dur: 15 * sim.Millisecond, Rounds: 10}
	r.osA.Spawn(a)
	r.osA.Spawn(b)
	r.k.Run()
	if !a.Done || !b.Done {
		t.Fatal("processes did not both complete")
	}
}

func TestAPIListenIdempotent(t *testing.T) {
	r := newRig(t)
	r.osB.Listen(7000)
	// A program calling api.Listen on an already-listening port must not
	// panic (the MPI runtime re-runs its init listen after restore).
	prog := &listenTwiceProg{Port: 7000}
	pid := r.osB.Spawn(prog)
	r.k.RunFor(sim.Second)
	p, _ := r.osB.Proc(pid)
	if !p.Exited() || p.ExitCode() != 0 {
		t.Fatalf("exited=%v code=%d", p.Exited(), p.ExitCode())
	}
}

type listenTwiceProg struct {
	Port uint16
	Done bool
}

func (p *listenTwiceProg) Next(api *API, res Result) Op {
	if !p.Done {
		p.Done = true
		api.Listen(p.Port)
		api.Listen(p.Port)
		return Sleep(10 * sim.Millisecond)
	}
	api.Exit(0)
	return nil
}

func TestHostnameAndClockAPI(t *testing.T) {
	r := newRig(t)
	prog := &apiProbeProg{}
	r.osA.Spawn(prog)
	r.k.RunFor(sim.Second)
	if prog.Host != "ga" {
		t.Fatalf("hostname %q", prog.Host)
	}
	if prog.Wall < 0 || prog.Jiff < 0 {
		t.Fatal("clock probes negative")
	}
}

type apiProbeProg struct {
	Host string
	Wall sim.Time
	Jiff sim.Time
	Done bool
}

func (p *apiProbeProg) Next(api *API, res Result) Op {
	if !p.Done {
		p.Done = true
		p.Host = api.Hostname()
		p.Wall = api.WallClock()
		p.Jiff = api.Jiffies()
		api.Log("probe from %s", p.Host)
		return Compute(sim.Millisecond)
	}
	api.Exit(0)
	return nil
}
