package guest

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"dvc/internal/payload"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

// Sectioned image format. A checkpoint image is a sequence of
// independently gob-encoded sections followed by a binary trailer:
//
//	section 0              imageMeta (fixed header: counts + scalar OS state)
//	sections 1..NumProcs   one ProcSnapshot each
//	section NumProcs+1     fdTable (FD and accept maps flattened to sorted slices)
//	then ceil(NumLog/256)  log groups of logGroupSize LogEntries each
//	last section           stackSection (the TCP stack)
//	trailer                per-section uint32 LE lengths, uint32 LE count, "DVC2"
//
// Why sections instead of one gob stream: content-addressed dedup needs
// unchanged state to re-encode to byte-identical chunks. One
// whole-snapshot encoder makes every byte downstream of the first
// changed field differ; per-section encoders restart gob's type-id
// numbering and wire state at each boundary, and Writer.Seal aligns
// chunk boundaries with section boundaries, so an idle process, a full
// log group or a quiet TCP stack contributes the exact same chunks —
// and the same payload.ChunkIDs — epoch after epoch. Maps are flattened
// to key-sorted slices before encoding because gob serialises maps in
// random iteration order, which would randomise the bytes (and defeat
// dedup) even for identical contents.
const (
	imageMagic   = "DVC2"
	logGroupSize = 256
)

// imageMeta is section 0 of every image: the scalar OS state plus the
// counts that size the variable sections.
//
//dvc:checkpoint-root
type imageMeta struct {
	NextPID   PID
	NextFD    int
	Listens   []uint16
	Jiffies   sim.Time
	WD        WatchdogConfig
	WDLeft    sim.Time
	WDTimeout int
	CPUFactor float64
	NumProcs  int
	NumLog    int
}

// fdTable is the Snapshot's FD and accept-queue maps flattened to
// key-sorted slices so the encoded bytes are a pure function of the
// contents.
//
//dvc:checkpoint-root
type fdTable struct {
	FDs     []fdEntry
	Accepts []acceptEntry
}

type fdEntry struct {
	FD  int
	Key tcp.ConnKey
}

type acceptEntry struct {
	Port uint16
	Keys []tcp.ConnKey
}

// stackSection wraps the stack pointer so a nil stack (hand-built test
// snapshots) round-trips as gob's omitted-field zero value.
//
//dvc:checkpoint-root
type stackSection struct {
	Stack *tcp.StackSnapshot
}

// sectionWriter counts the bytes of the current section and closes the
// underlying writer's chunk at each boundary when it supports sealing
// (payload.Writer and the hypervisor's checksumming tee both do).
type sectionWriter struct {
	w    io.Writer
	n    int
	lens []int
}

func (s *sectionWriter) Write(p []byte) (int, error) {
	n, err := s.w.Write(p)
	s.n += n
	return n, err
}

func (s *sectionWriter) end() {
	s.lens = append(s.lens, s.n)
	s.n = 0
	if sealer, ok := s.w.(interface{ Seal() }); ok {
		sealer.Seal()
	}
}

// encodeImageSections writes snap to w in the sectioned format.
func encodeImageSections(snap *Snapshot, w io.Writer) error {
	sw := &sectionWriter{w: w}
	section := func(v any) error {
		if err := gob.NewEncoder(sw).Encode(v); err != nil {
			return fmt.Errorf("guest: encoding image: %w", err)
		}
		sw.end()
		return nil
	}
	meta := imageMeta{
		NextPID:   snap.NextPID,
		NextFD:    snap.NextFD,
		Listens:   snap.Listens,
		Jiffies:   snap.Jiffies,
		WD:        snap.WD,
		WDLeft:    snap.WDLeft,
		WDTimeout: snap.WDTimeout,
		CPUFactor: snap.CPUFactor,
		NumProcs:  len(snap.Procs),
		NumLog:    len(snap.Log),
	}
	if err := section(&meta); err != nil {
		return err
	}
	for i := range snap.Procs {
		if err := section(&snap.Procs[i]); err != nil {
			return err
		}
	}
	fd := buildFDTable(snap)
	if err := section(&fd); err != nil {
		return err
	}
	for off := 0; off < len(snap.Log); off += logGroupSize {
		end := off + logGroupSize
		if end > len(snap.Log) {
			end = len(snap.Log)
		}
		group := snap.Log[off:end]
		if err := section(&group); err != nil {
			return err
		}
	}
	if err := section(&stackSection{Stack: snap.Stack}); err != nil {
		return err
	}

	trailer := make([]byte, 0, 4*len(sw.lens)+8)
	for _, l := range sw.lens {
		trailer = binary.LittleEndian.AppendUint32(trailer, uint32(l))
	}
	trailer = binary.LittleEndian.AppendUint32(trailer, uint32(len(sw.lens)))
	trailer = append(trailer, imageMagic...)
	if _, err := w.Write(trailer); err != nil {
		return fmt.Errorf("guest: encoding image trailer: %w", err)
	}
	if sealer, ok := w.(interface{ Seal() }); ok {
		sealer.Seal()
	}
	return nil
}

// decodeImageSections parses a sectioned image back into a Snapshot,
// streaming each section's decode over the rope without flattening it.
func decodeImageSections(img payload.Bytes) (*Snapshot, error) {
	total := img.Len()
	if total < 8 {
		return nil, fmt.Errorf("guest: image too short (%d bytes)", total)
	}
	tail := img.Slice(total-8, total).Flatten()
	if string(tail[4:8]) != imageMagic {
		return nil, fmt.Errorf("guest: bad image magic %q", tail[4:8])
	}
	count := int(binary.LittleEndian.Uint32(tail[:4]))
	trailerLen := 8 + 4*count
	if count < 3 || trailerLen > total {
		return nil, fmt.Errorf("guest: corrupt image trailer (%d sections in %d bytes)", count, total)
	}
	lenBytes := img.Slice(total-trailerLen, total-8).Flatten()
	offs := make([]int, count+1)
	for i := 0; i < count; i++ {
		offs[i+1] = offs[i] + int(binary.LittleEndian.Uint32(lenBytes[4*i:]))
	}
	if offs[count] != total-trailerLen {
		return nil, fmt.Errorf("guest: image sections cover %d bytes, want %d", offs[count], total-trailerLen)
	}
	dec := func(i int, v any) error {
		if err := gob.NewDecoder(payload.NewReader(img.Slice(offs[i], offs[i+1]))).Decode(v); err != nil {
			return fmt.Errorf("guest: decoding image section %d: %w", i, err)
		}
		return nil
	}

	var meta imageMeta
	if err := dec(0, &meta); err != nil {
		return nil, err
	}
	numGroups := (meta.NumLog + logGroupSize - 1) / logGroupSize
	if count != 3+meta.NumProcs+numGroups {
		return nil, fmt.Errorf("guest: image has %d sections, want %d", count, 3+meta.NumProcs+numGroups)
	}
	snap := &Snapshot{
		NextPID:   meta.NextPID,
		NextFD:    meta.NextFD,
		Listens:   meta.Listens,
		Jiffies:   meta.Jiffies,
		WD:        meta.WD,
		WDLeft:    meta.WDLeft,
		WDTimeout: meta.WDTimeout,
		CPUFactor: meta.CPUFactor,
	}
	idx := 1
	for p := 0; p < meta.NumProcs; p++ {
		var ps ProcSnapshot
		if err := dec(idx, &ps); err != nil {
			return nil, err
		}
		snap.Procs = append(snap.Procs, ps)
		idx++
	}
	var fd fdTable
	if err := dec(idx, &fd); err != nil {
		return nil, err
	}
	idx++
	// Empty maps stay nil, matching gob's omitted-empty-field behaviour
	// in the pre-sectioned format.
	if len(fd.FDs) > 0 {
		snap.FDs = make(map[int]tcp.ConnKey, len(fd.FDs))
		for _, e := range fd.FDs {
			snap.FDs[e.FD] = e.Key
		}
	}
	if len(fd.Accepts) > 0 {
		snap.Accepts = make(map[uint16][]tcp.ConnKey, len(fd.Accepts))
		for _, e := range fd.Accepts {
			snap.Accepts[e.Port] = e.Keys
		}
	}
	for g := 0; g < numGroups; g++ {
		var group []LogEntry
		if err := dec(idx, &group); err != nil {
			return nil, err
		}
		snap.Log = append(snap.Log, group...)
		idx++
	}
	var ss stackSection
	if err := dec(idx, &ss); err != nil {
		return nil, err
	}
	snap.Stack = ss.Stack
	return snap, nil
}

// buildFDTable flattens the snapshot's maps into key-sorted slices.
func buildFDTable(snap *Snapshot) fdTable {
	var fd fdTable
	if len(snap.FDs) > 0 {
		fds := make([]fdEntry, 0, len(snap.FDs))
		for k, v := range snap.FDs {
			fds = append(fds, fdEntry{FD: k, Key: v})
		}
		sort.Slice(fds, func(i, j int) bool { return fds[i].FD < fds[j].FD })
		fd.FDs = fds
	}
	if len(snap.Accepts) > 0 {
		accepts := make([]acceptEntry, 0, len(snap.Accepts))
		for k, v := range snap.Accepts {
			accepts = append(accepts, acceptEntry{Port: k, Keys: v})
		}
		sort.Slice(accepts, func(i, j int) bool { return accepts[i].Port < accepts[j].Port })
		fd.Accepts = accepts
	}
	return fd
}
