// Package guest models the operating system inside a virtual machine (or
// on a bare physical node): processes, sockets, timers, a kernel log and a
// software watchdog.
//
// Because Go cannot serialise goroutine stacks, guest processes are
// written as explicit resumable state machines (Program): each step
// returns the next blocking operation (compute, send, recv, ...). All
// process state lives in serialisable fields, which is what makes a
// whole-VM checkpoint possible — precisely the property the paper gets
// from Xen's save/restore.
//
// Two clocks are visible to programs, and the difference between them is
// one of the paper's findings (§3.2):
//
//   - WallClock: the host's wall clock. Xen does NOT virtualise it away
//     across save/restore, so it jumps over the suspended interval. HPL
//     measures with it and therefore "reported a greatly increased
//     execution time".
//   - Jiffies: guest-monotonic time, frozen while the VM is suspended.
package guest

import (
	"fmt"
	"sort"

	"dvc/internal/netsim"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

// PID identifies a guest process.
type PID int

// Result carries the outcome of a completed operation into the program's
// next step.
type Result struct {
	Data []byte // Recv payload
	FD   int    // Connect/Accept file descriptor
	N    int    // generic count
	EOF  bool   // peer closed
	Err  error  // operation failed (e.g. connection reset)
}

// Program is a guest application written as a resumable state machine.
// Next is called with the previous operation's result and returns the
// next operation, or nil when the program is done (exit status via
// API.Exit or implicit success).
//
// Implementations must be pure data (gob-encodable): every field is part
// of the VM image.
type Program interface {
	Next(api *API, res Result) Op
}

// API is the syscall surface available to a program while it decides its
// next operation. It is only valid during the Next call.
type API struct {
	os   *OS
	proc *Process
}

// WallClock returns the host wall-clock reading (jumps across
// save/restore).
func (a *API) WallClock() sim.Time { return a.os.wallClock() }

// Jiffies returns guest-monotonic time (frozen while suspended).
func (a *API) Jiffies() sim.Time { return a.os.Jiffies() }

// Log appends a message to the guest kernel log.
func (a *API) Log(format string, args ...any) {
	a.os.Logf(format, args...)
}

// Exit records the process exit status; return nil from Next afterwards.
func (a *API) Exit(code int) { a.proc.exitCode = code }

// Hostname returns the guest's network address (its stable identity).
func (a *API) Hostname() string { return string(a.os.stack.Addr()) }

// Listen opens a listening port (idempotent for the same port).
func (a *API) Listen(port uint16) {
	for _, p := range a.os.listens {
		if p == port {
			return
		}
	}
	a.os.Listen(port)
}

// Process is one guest process.
type Process struct {
	pid      PID
	prog     Program
	cur      Op
	last     Result
	exited   bool
	exitCode int

	// Timer support for Compute/Sleep ops; frozen with the VM. The timer
	// is created lazily on first arm and rearmed in place thereafter
	// (sim.Timer), so per-op scheduling allocates nothing in steady state.
	timer      *sim.Timer
	timerFired bool
	timerLeft  sim.Time // valid while frozen; -1 = none
}

// PID returns the process id.
func (p *Process) PID() PID { return p.pid }

// Exited reports whether the process has finished.
func (p *Process) Exited() bool { return p.exited }

// ExitCode returns the exit status (valid after Exited).
func (p *Process) ExitCode() int { return p.exitCode }

// Program returns the process's program (for result inspection after exit).
func (p *Process) Program() Program { return p.prog }

// LogEntry is one guest kernel log line.
type LogEntry struct {
	Wall    sim.Time
	Jiffies sim.Time
	Msg     string
}

// WatchdogConfig tunes the guest software watchdog daemon.
type WatchdogConfig struct {
	// Interval between watchdog checks. Zero disables the watchdog.
	Interval sim.Time
	// Tolerance over the interval before a stall is reported.
	Tolerance sim.Time
}

// DefaultWatchdog matches the paper's setup: a software watchdog that
// fires a report after every VM save/restore because wall time jumped.
func DefaultWatchdog() WatchdogConfig {
	return WatchdogConfig{Interval: 10 * sim.Second, Tolerance: 5 * sim.Second}
}

// OS is a guest operating system instance.
type OS struct {
	kernel    *sim.Kernel
	stack     *tcp.Stack
	wallClock func() sim.Time
	cpuFactor float64 // >1 = slower than native (para-virt overhead)

	procs   map[PID]*Process
	nextPID PID
	fds     map[int]tcp.ConnKey
	nextFD  int
	accepts map[uint16][]tcp.ConnKey // accepted, not yet Accept()ed
	listens []uint16

	log []LogEntry

	frozen       bool
	jiffiesAccum sim.Time
	runningSince sim.Time

	wd         WatchdogConfig
	wdLastWall sim.Time
	wdTimer    *sim.Timer
	wdLeft     sim.Time
	wdTimeouts int

	// pumpTimer drives scheduler passes: schedulePump rearms it at the
	// current instant instead of allocating a fresh zero-delay event (and
	// a method-value closure) per pass — the single hottest schedule site
	// in the simulator.
	pumpTimer     *sim.Timer
	pumpScheduled bool

	// exitNotify, when set, is invoked every time a process exits. Drivers
	// (experiment harnesses, the facade) use it to halt the kernel and
	// re-check completion predicates instead of polling on a fixed period.
	// Runtime-only: it is not part of the VM image and does not survive
	// save/restore.
	exitNotify func()
}

// New creates a running guest OS on top of a TCP stack. wallClock supplies
// host wall-clock readings (the node's clock.Clock.Read); cpuFactor scales
// compute durations (1.0 = native speed).
func New(k *sim.Kernel, stack *tcp.Stack, wallClock func() sim.Time, cpuFactor float64, wd WatchdogConfig) *OS {
	if cpuFactor <= 0 {
		cpuFactor = 1
	}
	o := &OS{
		kernel:       k,
		stack:        stack,
		wallClock:    wallClock,
		cpuFactor:    cpuFactor,
		procs:        make(map[PID]*Process),
		nextPID:      1,
		fds:          make(map[int]tcp.ConnKey),
		nextFD:       3,
		accepts:      make(map[uint16][]tcp.ConnKey),
		runningSince: k.Now(),
		wd:           wd,
		wdLeft:       -1,
	}
	if wd.Interval > 0 {
		o.wdLastWall = wallClock()
		o.armWatchdog(wd.Interval)
	}
	return o
}

// armWatchdog (re)arms the watchdog tick, creating its timer on first use
// (restored OSes arm lazily from Thaw).
func (o *OS) armWatchdog(d sim.Time) {
	if o.wdTimer == nil {
		o.wdTimer = sim.NewTimer(o.kernel, o.watchdogTick)
	}
	o.wdTimer.Reset(d)
}

// Stack returns the guest's TCP stack.
func (o *OS) Stack() *tcp.Stack { return o.stack }

// Addr returns the guest's network address.
func (o *OS) Addr() netsim.Addr { return o.stack.Addr() }

// Frozen reports whether the OS is suspended.
func (o *OS) Frozen() bool { return o.frozen }

// Jiffies returns guest-monotonic time: it does not advance while frozen.
func (o *OS) Jiffies() sim.Time {
	if o.frozen {
		return o.jiffiesAccum
	}
	return o.jiffiesAccum + (o.kernel.Now() - o.runningSince)
}

// Logf appends to the kernel log.
func (o *OS) Logf(format string, args ...any) {
	o.log = append(o.log, LogEntry{
		Wall:    o.wallClock(),
		Jiffies: o.Jiffies(),
		Msg:     fmt.Sprintf(format, args...),
	})
}

// KernelLog returns the guest kernel log.
func (o *OS) KernelLog() []LogEntry { return o.log }

// WatchdogTimeouts reports how many watchdog stall reports have been
// logged (one per save/restore cycle, per the paper).
func (o *OS) WatchdogTimeouts() int { return o.wdTimeouts }

// Spawn starts a program as a new process and returns its PID.
func (o *OS) Spawn(prog Program) PID {
	pid := o.nextPID
	o.nextPID++
	p := &Process{pid: pid, prog: prog, timerLeft: -1}
	o.procs[pid] = p
	o.schedulePump()
	return pid
}

// Proc returns the process with the given PID.
func (o *OS) Proc(pid PID) (*Process, bool) {
	p, ok := o.procs[pid]
	return p, ok
}

// Procs returns all processes in PID order.
func (o *OS) Procs() []*Process {
	pids := make([]PID, 0, len(o.procs))
	for pid := range o.procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	out := make([]*Process, len(pids))
	for i, pid := range pids {
		out[i] = o.procs[pid]
	}
	return out
}

// SetExitNotify installs fn to be called whenever a process exits (nil
// clears it). This is the event-driven alternative to polling AllExited
// on a timer: a driver sets fn = kernel.Halt, runs the kernel, and
// re-checks its completion predicate only when something actually
// exited. The hook fires from inside the scheduler pump, so fn must not
// re-enter the OS; halting the kernel is the intended use.
func (o *OS) SetExitNotify(fn func()) { o.exitNotify = fn }

// AllExited reports whether every process has finished.
func (o *OS) AllExited() bool {
	for _, p := range o.procs {
		if !p.exited {
			return false
		}
	}
	return true
}

// Listen opens a listening port; incoming connections queue for AcceptOp.
func (o *OS) Listen(port uint16) {
	o.listens = append(o.listens, port)
	o.stack.Listen(port, func(c *tcp.Conn) {
		o.accepts[port] = append(o.accepts[port], c.Key())
		o.wireConn(c)
		o.schedulePump()
	})
}

// wireConn hooks a connection's callbacks to the scheduler.
func (o *OS) wireConn(c *tcp.Conn) {
	c.OnReadable = func() { o.schedulePump() }
	c.OnEstablished = func() { o.schedulePump() }
	c.OnError = func(error) { o.schedulePump() }
	c.OnAck = func() { o.schedulePump() }
}

// conn resolves an fd to its connection.
func (o *OS) conn(fd int) (*tcp.Conn, bool) {
	key, ok := o.fds[fd]
	if !ok {
		return nil, false
	}
	return o.stack.Lookup(key)
}

// newFD binds a connection to a fresh descriptor.
func (o *OS) newFD(key tcp.ConnKey) int {
	fd := o.nextFD
	o.nextFD++
	o.fds[fd] = key
	return fd
}

// schedulePump queues a scheduler pass. Pumping from a fresh event (rather
// than recursively) keeps process stepping non-reentrant.
func (o *OS) schedulePump() {
	if o.pumpScheduled || o.frozen {
		return
	}
	o.pumpScheduled = true
	if o.pumpTimer == nil {
		o.pumpTimer = sim.NewTimer(o.kernel, o.pump)
	}
	o.pumpTimer.Reset(0)
}

// pump drives every process until no more progress is possible.
func (o *OS) pump() {
	o.pumpScheduled = false
	if o.frozen {
		return
	}
	for {
		progress := false
		for _, p := range o.Procs() {
			if o.drive(p) {
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// drive advances one process as far as it can go; reports whether any
// step completed.
func (o *OS) drive(p *Process) bool {
	if p.exited || o.frozen {
		return false
	}
	advanced := false
	for {
		if p.cur != nil {
			res, done := p.cur.poll(o, p)
			if !done {
				return advanced
			}
			p.cur = nil
			p.last = res
			p.timerFired = false
			advanced = true
		}
		op := p.prog.Next(&API{os: o, proc: p}, p.last)
		p.last = Result{}
		if op == nil {
			p.exited = true
			if o.exitNotify != nil {
				o.exitNotify()
			}
			return true
		}
		p.cur = op
		op.start(o, p)
	}
}

// armTimer sets the process's freezable timer. The callback is bound once
// per process; rearms reuse the same kernel slot.
func (p *Process) armTimer(o *OS, d sim.Time) {
	if p.timer == nil {
		p.timer = sim.NewTimer(o.kernel, func() {
			p.timerFired = true
			o.schedulePump()
		})
	}
	p.timerFired = false
	p.timer.Reset(d)
}

// Freeze suspends the OS: process timers and the watchdog stop (recording
// remainders), jiffies stop advancing, and the TCP stack freezes.
func (o *OS) Freeze() {
	if o.frozen {
		return
	}
	o.jiffiesAccum += o.kernel.Now() - o.runningSince
	o.frozen = true
	// PID order, not map order: cancelling timers touches kernel state,
	// and replay requires the same touch sequence every run (dvclint:
	// mapiter).
	for _, p := range o.Procs() {
		if p.timer.Pending() {
			p.timerLeft = p.timer.When() - o.kernel.Now()
			p.timer.Stop()
		} else {
			p.timerLeft = -1
		}
	}
	if o.wdTimer.Pending() {
		o.wdLeft = o.wdTimer.When() - o.kernel.Now()
		o.wdTimer.Stop()
	} else {
		o.wdLeft = -1
	}
	o.stack.Freeze()
}

// Thaw resumes a frozen OS, re-arming timers from remainders.
func (o *OS) Thaw() {
	if !o.frozen {
		return
	}
	o.frozen = false
	o.runningSince = o.kernel.Now()
	// PID order, not map order: armTimer schedules kernel events, whose
	// sequence numbers (the event-queue tiebreak) must be reproducible.
	for _, p := range o.Procs() {
		if p.timerLeft >= 0 {
			left := p.timerLeft
			p.timerLeft = -1
			p.armTimer(o, left)
		}
	}
	if o.wdLeft >= 0 {
		o.armWatchdog(o.wdLeft)
		o.wdLeft = -1
	}
	o.stack.Thaw()
	o.schedulePump()
}

// watchdogTick is the guest software watchdog: if wall time has jumped
// past the check interval plus tolerance — which is exactly what a VM
// save/restore does — it logs a stall report. The report is harmless
// (the paper: "Although this did not affect the execution of the
// environment, it did cause a large number of kernel messages to
// accumulate").
func (o *OS) watchdogTick() {
	wall := o.wallClock()
	if gap := wall - o.wdLastWall; gap > o.wd.Interval+o.wd.Tolerance {
		o.wdTimeouts++
		o.Logf("watchdog: BUG: soft lockup detected, wall clock jumped %v", gap-o.wd.Interval)
	}
	o.wdLastWall = wall
	o.armWatchdog(o.wd.Interval)
}
