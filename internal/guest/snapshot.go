package guest

import (
	"io"
	"sort"

	"dvc/internal/netsim"
	"dvc/internal/payload"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

// ProcSnapshot is the pure-data image of one process.
type ProcSnapshot struct {
	PID       PID
	Prog      Program // gob interface: concrete programs must be registered
	Cur       Op      // in-flight operation, if any
	Last      Result
	Exited    bool
	ExitCode  int
	TimerLeft sim.Time // remaining Compute/Sleep time; -1 = none
}

// Snapshot is the pure-data image of a whole guest OS: the payload of a
// whole-VM checkpoint. Everything in it round-trips through encoding/gob;
// the checkpoint-root directive puts its full field closure under
// snapshotstate's reachability check and into STATE_MANIFEST.txt.
//
//dvc:checkpoint-root
type Snapshot struct {
	Procs     []ProcSnapshot
	NextPID   PID
	FDs       map[int]tcp.ConnKey
	NextFD    int
	Accepts   map[uint16][]tcp.ConnKey
	Listens   []uint16
	Log       []LogEntry
	Jiffies   sim.Time
	WD        WatchdogConfig
	WDLeft    sim.Time
	WDTimeout int
	CPUFactor float64
	Stack     *tcp.StackSnapshot
}

// Snapshot captures the OS. The OS must be frozen first; capturing a
// running OS panics.
func (o *OS) Snapshot() *Snapshot {
	if !o.frozen {
		panic("guest: Snapshot of an OS that is not frozen")
	}
	s := &Snapshot{
		NextPID:   o.nextPID,
		FDs:       make(map[int]tcp.ConnKey, len(o.fds)),
		NextFD:    o.nextFD,
		Accepts:   make(map[uint16][]tcp.ConnKey, len(o.accepts)),
		Listens:   append([]uint16(nil), o.listens...),
		Log:       append([]LogEntry(nil), o.log...),
		Jiffies:   o.jiffiesAccum,
		WD:        o.wd,
		WDLeft:    o.wdLeft,
		WDTimeout: o.wdTimeouts,
		CPUFactor: o.cpuFactor,
		Stack:     o.stack.Snapshot(),
	}
	for fd, key := range o.fds {
		s.FDs[fd] = key
	}
	for port, q := range o.accepts {
		s.Accepts[port] = append([]tcp.ConnKey(nil), q...)
	}
	for _, p := range o.Procs() {
		s.Procs = append(s.Procs, ProcSnapshot{
			PID:       p.pid,
			Prog:      p.prog,
			Cur:       p.cur,
			Last:      p.last,
			Exited:    p.exited,
			ExitCode:  p.exitCode,
			TimerLeft: p.timerLeft,
		})
	}
	return s
}

// Restore rebuilds a frozen OS from a snapshot on the given fabric. The
// caller injects the (new) node's wall clock and CPU factor — those are
// host properties, not guest state — then calls Thaw to resume.
func Restore(k *sim.Kernel, fabric *netsim.Fabric, snap *Snapshot, wallClock func() sim.Time, cpuFactor float64) *OS {
	if cpuFactor <= 0 {
		cpuFactor = snap.CPUFactor
	}
	o := &OS{
		kernel:       k,
		stack:        tcp.RestoreStack(k, fabric, snap.Stack),
		wallClock:    wallClock,
		cpuFactor:    cpuFactor,
		procs:        make(map[PID]*Process, len(snap.Procs)),
		nextPID:      snap.NextPID,
		fds:          make(map[int]tcp.ConnKey, len(snap.FDs)),
		nextFD:       snap.NextFD,
		accepts:      make(map[uint16][]tcp.ConnKey, len(snap.Accepts)),
		listens:      append([]uint16(nil), snap.Listens...),
		log:          append([]LogEntry(nil), snap.Log...),
		frozen:       true,
		jiffiesAccum: snap.Jiffies,
		wd:           snap.WD,
		wdLeft:       snap.WDLeft,
		wdTimeouts:   snap.WDTimeout,
	}
	// The watchdog's last wall reference predates the save, so the first
	// post-restore tick always sees a jump — one stall report per
	// save/restore cycle, as the paper observed. Using zero (boot time)
	// is a conservative stand-in for the pre-save reading, which is a
	// host-relative quantity the image cannot meaningfully carry across
	// hosts.
	o.wdLastWall = 0
	for fd, key := range snap.FDs {
		o.fds[fd] = key
	}
	for port, q := range snap.Accepts {
		o.accepts[port] = append([]tcp.ConnKey(nil), q...)
	}
	for _, ps := range snap.Procs {
		o.procs[ps.PID] = &Process{
			pid:       ps.PID,
			prog:      ps.Prog,
			cur:       ps.Cur,
			last:      ps.Last,
			exited:    ps.Exited,
			exitCode:  ps.ExitCode,
			timerLeft: ps.TimerLeft,
		}
	}
	// Re-register listener accept callbacks and connection callbacks.
	for _, port := range o.listens {
		port := port
		o.stack.SetListenerAccept(port, func(c *tcp.Conn) {
			o.accepts[port] = append(o.accepts[port], c.Key())
			o.wireConn(c)
			o.schedulePump()
		})
	}
	for _, c := range o.stack.Conns() {
		o.wireConn(c)
	}
	return o
}

// EncodeImagePayload serialises a snapshot into the byte image that
// would be written to checkpoint storage, as a chunked payload rope. It
// is the functional payload of a checkpoint file; the *modelled* image
// size (all guest RAM) is larger and accounted separately by the vm
// package.
//
// The encoder streams directly into payload.Writer's fixed-size chunks,
// which replaces the old bytes.Buffer + exact-size defensive copy: the
// pre-rewrite path allocated (and memmoved) every image twice — once
// growing the scratch buffer, once copying it out — every LSC epoch for
// every VM in the set. The returned rope owns fresh chunks (images are
// retained by the store, so there is nothing to recycle) and is
// immutable per the payload contract. A fresh gob.Encoder per call is
// required: gob emits type descriptors once per encoder stream, and
// images must be self-describing.
func EncodeImagePayload(snap *Snapshot) (payload.Bytes, error) {
	w := payload.NewWriter(0)
	if err := EncodeImageStream(snap, w); err != nil {
		return payload.Bytes{}, err
	}
	return w.Take(), nil
}

// EncodeImageStream encodes snap through an arbitrary writer — the
// lowest-level encode entry point. The hypervisor tees the stream
// through its checksummer so the image CRC is computed on the bytes
// while they are hot in cache, instead of re-reading the whole image in
// a second pass after the encode.
//
// The stream is the sectioned format (see sections.go): independently
// gob-encoded sections with a length trailer, so unchanged OS state
// re-encodes to byte-identical — and content-addressably dedupable —
// chunks. A writer that implements Seal() (payload.Writer) gets its
// chunk boundaries aligned with the section boundaries.
func EncodeImageStream(snap *Snapshot, w io.Writer) error {
	return encodeImageSections(snap, w)
}

// EncodeImage is EncodeImagePayload flattened to one contiguous slice,
// for callers (tests, size probes) that want plain bytes.
func EncodeImage(snap *Snapshot) ([]byte, error) {
	img, err := EncodeImagePayload(snap)
	if err != nil {
		return nil, err
	}
	return img.Flatten(), nil
}

// DecodeImagePayload reverses EncodeImagePayload, streaming each
// section's decode over the rope's chunks without flattening them first.
func DecodeImagePayload(img payload.Bytes) (*Snapshot, error) {
	return decodeImageSections(img)
}

// DecodeImage reverses EncodeImage.
func DecodeImage(img []byte) (*Snapshot, error) {
	return DecodeImagePayload(payload.Wrap(img))
}

// SortedPIDs is a helper for deterministic iteration in tests.
func (s *Snapshot) SortedPIDs() []PID {
	pids := make([]PID, len(s.Procs))
	for i, p := range s.Procs {
		pids[i] = p.PID
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}
