package hpcc

import (
	"encoding/binary"
	"encoding/gob"

	"dvc/internal/mpi"
	"dvc/internal/sim"
)

func init() {
	gob.Register(&RandomAccess{})
}

// RandomAccess is the HPCC GUPS kernel: every rank generates a
// deterministic stream of XOR updates aimed at random slots of a table
// distributed across all ranks. Updates are routed in batches with
// all-to-all exchanges, applied for real, and verified exactly at the end
// (every rank can regenerate every stream and recompute its own table
// portion).
//
// The kernel is latency-bound fine-grained communication — the opposite
// corner of the workload space from HPL — which is what makes it a
// useful extra point for the virtualisation-overhead experiment.
type RandomAccess struct {
	// TableBits sizes the global table at 2^TableBits entries.
	TableBits int
	// Batches and BatchPerRank size the update stream.
	Batches      int
	BatchPerRank int
	GFlops       float64

	Table []uint64 // this rank's slice, block-distributed
	Batch int
	PC    int

	StartWall, EndWall sim.Time
	Finished           bool
	Verified           bool
	GUPS               float64
}

// NewRandomAccess constructs the kernel.
func NewRandomAccess(tableBits, batches, batchPerRank int, gflops float64) *RandomAccess {
	return &RandomAccess{TableBits: tableBits, Batches: batches, BatchPerRank: batchPerRank, GFlops: gflops}
}

// raStream deterministically generates update u of batch b for rank r:
// returns the global table index and the XOR value.
func raStream(seed int64, rank, batch, u, tableBits int) (int, uint64) {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(rank)*0xBF58476D1CE4E5B9 ^
		uint64(batch)*0x94D049BB133111EB ^ uint64(u)*0xD6E8FEB86659FD93
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return int(x & ((1 << tableBits) - 1)), x | 1
}

const raSeed = 0x5DEECE66D

// tableRange returns [lo, hi) of the global indices rank r owns.
func (ra *RandomAccess) tableRange(r, size int) (int, int) {
	total := 1 << ra.TableBits
	per := total / size
	lo := r * per
	hi := lo + per
	if r == size-1 {
		hi = total
	}
	return lo, hi
}

func (ra *RandomAccess) owner(idx, size int) int {
	total := 1 << ra.TableBits
	per := total / size
	r := idx / per
	if r >= size {
		r = size - 1
	}
	return r
}

// Step implements mpi.App.
func (ra *RandomAccess) Step(c *mpi.Ctx, prev mpi.Op) mpi.Op {
	rt := c.RT
	me, size := rt.Me, rt.Size
	for {
		switch ra.PC {
		case 0: // init: table[i] = i
			ra.StartWall = c.WallClock()
			lo, hi := ra.tableRange(me, size)
			ra.Table = make([]uint64, hi-lo)
			for i := range ra.Table {
				ra.Table[i] = uint64(lo + i)
			}
			ra.PC = 1

		case 1: // route one batch of updates
			if ra.Batch >= ra.Batches {
				ra.PC = 3
				continue
			}
			blocks := make([][]byte, size)
			bufs := make([][]uint64, size)
			for u := 0; u < ra.BatchPerRank; u++ {
				idx, val := raStream(raSeed, me, ra.Batch, u, ra.TableBits)
				d := ra.owner(idx, size)
				bufs[d] = append(bufs[d], uint64(idx), val)
			}
			for d := range blocks {
				b := make([]byte, 8*len(bufs[d]))
				for i, v := range bufs[d] {
					binary.LittleEndian.PutUint64(b[8*i:], v)
				}
				blocks[d] = b
			}
			ra.PC = 2
			return mpi.NewAlltoall(blocks)

		case 2: // apply arrived updates
			recvd := prev.(*mpi.Alltoall).Recvd
			lo, _ := ra.tableRange(me, size)
			applied := 0
			for _, blk := range recvd {
				for off := 0; off+16 <= len(blk); off += 16 {
					idx := int(binary.LittleEndian.Uint64(blk[off:]))
					val := binary.LittleEndian.Uint64(blk[off+8:])
					ra.Table[idx-lo] ^= val
					applied++
				}
			}
			ra.Batch++
			ra.PC = 1
			// A few ops per update (gen, route, xor).
			return mpi.Compute(FlopsTime(6*float64(applied+ra.BatchPerRank), ra.GFlops))

		case 3: // verify exactly: regenerate all streams for my range
			ra.EndWall = c.WallClock()
			lo, hi := ra.tableRange(me, size)
			want := make([]uint64, hi-lo)
			for i := range want {
				want[i] = uint64(lo + i)
			}
			for r := 0; r < size; r++ {
				for b := 0; b < ra.Batches; b++ {
					for u := 0; u < ra.BatchPerRank; u++ {
						idx, val := raStream(raSeed, r, b, u, ra.TableBits)
						if idx >= lo && idx < hi {
							want[idx-lo] ^= val
						}
					}
				}
			}
			ra.Verified = true
			for i := range want {
				if ra.Table[i] != want[i] {
					ra.Verified = false
					break
				}
			}
			ra.Finished = true
			total := float64(ra.Batches) * float64(ra.BatchPerRank) * float64(size)
			if elapsed := (ra.EndWall - ra.StartWall).Seconds(); elapsed > 0 {
				ra.GUPS = total / elapsed / 1e9
			}
			c.Log("randomaccess: %d updates, %.4g GUPS, verified=%v", int(total), ra.GUPS, ra.Verified)
			ra.PC = 4

		case 4:
			return nil
		}
	}
}

// WallTime returns the reported wall duration.
func (ra *RandomAccess) WallTime() sim.Time { return ra.EndWall - ra.StartWall }
