package hpcc

import (
	"fmt"
	"math"
	"testing"

	"dvc/internal/guest"
	"dvc/internal/mpi"
	"dvc/internal/netsim"
	"dvc/internal/sim"
	"dvc/internal/tcp"
)

// world builds n bare guests and launches an MPI app on them.
type world struct {
	k    *sim.Kernel
	oses []*guest.OS
	pids []guest.PID
}

func newWorld(t *testing.T, n int, makeApp func(rank int) mpi.App) *world {
	t.Helper()
	k := sim.NewKernel(55)
	f := netsim.NewFabric(k)
	f.AddCluster("c", netsim.EthernetGigE())
	w := &world{k: k}
	for i := 0; i < n; i++ {
		addr := netsim.Addr(fmt.Sprintf("r%d", i))
		s := tcp.NewStack(k, f, addr, tcp.DefaultConfig())
		f.Attach(addr, "c", s.Deliver)
		w.oses = append(w.oses, guest.New(k, s, func() sim.Time { return k.Now() }, 1.0, guest.WatchdogConfig{}))
	}
	w.pids = mpi.Launch(w.oses, 6000, makeApp)
	return w
}

func (w *world) run(t *testing.T, limit sim.Time) {
	t.Helper()
	w.k.RunFor(limit)
	for i, o := range w.oses {
		p, _ := o.Proc(w.pids[i])
		if !p.Exited() {
			t.Fatalf("rank %d never exited", i)
		}
		if p.ExitCode() != 0 {
			d := p.Program().(*mpi.Driver)
			t.Fatalf("rank %d exit %d: %s", i, p.ExitCode(), d.R.Failed)
		}
	}
}

func (w *world) app(rank int) mpi.App {
	p, _ := w.oses[rank].Proc(w.pids[rank])
	return p.Program().(*mpi.Driver).App
}

func TestHPLSolvesCorrectly(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{16, 1}, {16, 2}, {32, 3}, {48, 4}, {64, 8},
	} {
		tc := tc
		t.Run(fmt.Sprintf("N=%d_P=%d", tc.n, tc.p), func(t *testing.T) {
			w := newWorld(t, tc.p, func(int) mpi.App { return NewHPL(tc.n, 42, 10) })
			w.run(t, sim.Hour)
			h := w.app(0).(*HPL)
			if !h.Finished || !h.Passed {
				t.Fatalf("HPL failed: finished=%v residual=%g", h.Finished, h.Residual)
			}
			if h.Residual > 16 {
				t.Fatalf("residual %g exceeds HPL threshold", h.Residual)
			}
		})
	}
}

func TestHPLDifferentSeedsDifferentMatrices(t *testing.T) {
	if Elem(1, 3, 4) == Elem(2, 3, 4) {
		t.Fatal("different seeds gave identical elements")
	}
	if Elem(1, 3, 4) != Elem(1, 3, 4) {
		t.Fatal("generator not deterministic")
	}
	if Elem(1, 3, 4) == Elem(1, 4, 3) {
		t.Fatal("matrix unexpectedly symmetric")
	}
}

func TestElemRange(t *testing.T) {
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			v := Elem(7, i, j)
			if v < -0.5 || v >= 0.5 {
				t.Fatalf("Elem(7,%d,%d) = %v out of range", i, j, v)
			}
		}
	}
}

func TestHPLChargesComputeTime(t *testing.T) {
	// The same problem at a lower compute rate must take longer.
	w1 := newWorld(t, 2, func(int) mpi.App { return NewHPL(32, 42, 10) })
	w1.run(t, sim.Hour)
	fast := w1.app(0).(*HPL).WallTime()
	w2 := newWorld(t, 2, func(int) mpi.App { return NewHPL(32, 42, 1) })
	w2.run(t, sim.Hour)
	slow := w2.app(0).(*HPL).WallTime()
	if slow <= fast {
		t.Fatalf("1 GF/s run (%v) not slower than 10 GF/s run (%v)", slow, fast)
	}
}

func TestPTRANSVerifies(t *testing.T) {
	for _, tc := range []struct{ n, p, reps int }{
		{16, 1, 1}, {24, 2, 2}, {32, 4, 3}, {30, 5, 2},
	} {
		tc := tc
		t.Run(fmt.Sprintf("N=%d_P=%d_R=%d", tc.n, tc.p, tc.reps), func(t *testing.T) {
			w := newWorld(t, tc.p, func(int) mpi.App { return NewPTRANS(tc.n, 7, tc.reps, 10) })
			w.run(t, sim.Hour)
			for r := 0; r < tc.p; r++ {
				pt := w.app(r).(*PTRANS)
				if !pt.Finished || !pt.Passed {
					t.Fatalf("rank %d: finished=%v maxerr=%g", r, pt.Finished, pt.MaxErr)
				}
			}
		})
	}
}

func TestPTRANSSingleRepIsExactTranspose(t *testing.T) {
	// With alpha=1, beta=0: A becomes exactly A0ᵀ.
	w := newWorld(t, 3, func(int) mpi.App {
		p := NewPTRANS(18, 9, 1, 10)
		p.Alpha, p.Beta = 1, 0
		return p
	})
	w.run(t, sim.Hour)
	pt := w.app(1).(*PTRANS)
	for i := 1; i < 18; i += 3 {
		for j := 0; j < 18; j++ {
			if got, want := pt.Rows[i][j], Elem(9, j, i); math.Abs(got-want) > 1e-12 {
				t.Fatalf("A[%d][%d] = %v, want A0ᵀ = %v", i, j, got, want)
			}
		}
	}
}

func TestSeqJobTiming(t *testing.T) {
	k := sim.NewKernel(3)
	f := netsim.NewFabric(k)
	f.AddCluster("c", netsim.EthernetGigE())
	s := tcp.NewStack(k, f, "g", tcp.DefaultConfig())
	f.Attach("g", "c", s.Deliver)
	o := guest.New(k, s, func() sim.Time { return k.Now() }, 1.0, guest.WatchdogConfig{})
	job := NewSeqJob(10, 1e9, 10) // 10 rounds x 0.1s
	pid := o.Spawn(job)
	k.Run()
	p, _ := o.Proc(pid)
	if !p.Exited() || !job.Finished {
		t.Fatal("seq job did not finish")
	}
	if job.WallTime() != sim.Second {
		t.Fatalf("wall time %v, want 1s", job.WallTime())
	}
	if job.CPUTime() != sim.Second {
		t.Fatalf("cpu time %v, want 1s", job.CPUTime())
	}
}

func TestPingPongMeasuresLatencyAndBandwidth(t *testing.T) {
	// Small message: RTT dominated by 2x55us latency.
	w := newWorld(t, 2, func(int) mpi.App { return NewPingPong(8, 50) })
	w.run(t, sim.Minute)
	pp := w.app(0).(*PingPong)
	if !pp.Done {
		t.Fatal("pingpong not done")
	}
	if pp.AvgRTT < 100*sim.Microsecond || pp.AvgRTT > 500*sim.Microsecond {
		t.Fatalf("small-message RTT %v, want ~150-300us", pp.AvgRTT)
	}

	// Large message: bandwidth should approach the 117MB/s line rate.
	w2 := newWorld(t, 2, func(int) mpi.App { return NewPingPong(4<<20, 5) })
	w2.run(t, sim.Minute)
	pp2 := w2.app(0).(*PingPong)
	if pp2.Bandwidth < 80e6 || pp2.Bandwidth > 120e6 {
		t.Fatalf("large-message bandwidth %.1f MB/s, want ~100", pp2.Bandwidth/1e6)
	}
}

func TestFlopsTime(t *testing.T) {
	if FlopsTime(1e9, 1) != sim.Second {
		t.Fatal("1 Gflop at 1 GF/s should be 1s")
	}
	if FlopsTime(1e9, 10) != 100*sim.Millisecond {
		t.Fatal("1 Gflop at 10 GF/s should be 100ms")
	}
	if FlopsTime(1e9, 0) != sim.Second {
		t.Fatal("zero rate should default to 1 GF/s")
	}
}

func TestHPLWallVsCPUEqualWithoutCheckpoints(t *testing.T) {
	w := newWorld(t, 2, func(int) mpi.App { return NewHPL(24, 11, 10) })
	w.run(t, sim.Hour)
	h := w.app(0).(*HPL)
	if h.WallTime() != h.CPUTime() {
		t.Fatalf("wall %v != cpu %v without any freeze", h.WallTime(), h.CPUTime())
	}
	if h.WallTime() <= 0 {
		t.Fatal("no time charged")
	}
}

func TestHaloExchange(t *testing.T) {
	w := newWorld(t, 6, func(int) mpi.App { return NewHalo(50, 20*sim.Millisecond, 1024) })
	w.run(t, sim.Minute)
	for r := 0; r < 6; r++ {
		h := w.app(r).(*Halo)
		if !h.Finished || h.I != 50 {
			t.Fatalf("rank %d: finished=%v rounds=%d", r, h.Finished, h.I)
		}
	}
	h := w.app(0).(*Halo)
	// 50 rounds x 20ms compute plus comm.
	if h.WallTime() < sim.Second {
		t.Fatalf("halo wall time %v", h.WallTime())
	}
}

func TestHaloSingleRankExitsImmediately(t *testing.T) {
	w := newWorld(t, 1, func(int) mpi.App { return NewHalo(50, 20*sim.Millisecond, 64) })
	w.run(t, sim.Minute)
	if !w.app(0).(*Halo).Finished {
		t.Fatal("singleton halo should finish trivially")
	}
}

func TestStreamVerifiesAndReportsBandwidth(t *testing.T) {
	k := sim.NewKernel(9)
	f := netsim.NewFabric(k)
	f.AddCluster("c", netsim.EthernetGigE())
	s := tcp.NewStack(k, f, "g", tcp.DefaultConfig())
	f.Attach("g", "c", s.Deliver)
	o := guest.New(k, s, func() sim.Time { return k.Now() }, 1.0, guest.WatchdogConfig{})
	job := NewStream(1<<12, 20, 5e9) // model a 5 GB/s node
	pid := o.Spawn(job)
	k.Run()
	p, _ := o.Proc(pid)
	if !p.Exited() || !job.Finished {
		t.Fatal("stream did not finish")
	}
	if !job.Verified {
		t.Fatal("stream arithmetic verification failed")
	}
	// The reported bandwidth must match the model within rounding.
	if job.AvgGBs < 4.9 || job.AvgGBs > 5.1 {
		t.Fatalf("reported %.2f GB/s, want ~5", job.AvgGBs)
	}
}

func TestStreamSlowerMemorySlowerRun(t *testing.T) {
	run := func(bw float64) sim.Time {
		k := sim.NewKernel(9)
		f := netsim.NewFabric(k)
		f.AddCluster("c", netsim.EthernetGigE())
		s := tcp.NewStack(k, f, "g", tcp.DefaultConfig())
		f.Attach("g", "c", s.Deliver)
		o := guest.New(k, s, func() sim.Time { return k.Now() }, 1.0, guest.WatchdogConfig{})
		job := NewStream(1<<12, 10, bw)
		o.Spawn(job)
		k.Run()
		return job.WallTime()
	}
	if run(2e9) <= run(6e9) {
		t.Fatal("slower memory should take longer")
	}
}

func TestRandomAccessVerifies(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		n := n
		t.Run(fmt.Sprintf("P=%d", n), func(t *testing.T) {
			w := newWorld(t, n, func(int) mpi.App { return NewRandomAccess(12, 3, 200, 10) })
			w.run(t, sim.Hour)
			for r := 0; r < n; r++ {
				ra := w.app(r).(*RandomAccess)
				if !ra.Finished || !ra.Verified {
					t.Fatalf("rank %d: finished=%v verified=%v", r, ra.Finished, ra.Verified)
				}
				if ra.GUPS <= 0 {
					t.Fatalf("rank %d reported no GUPS", r)
				}
			}
		})
	}
}

func TestRandomAccessDetectsCorruption(t *testing.T) {
	// White-box: corrupt the table after the run and re-verify manually.
	w := newWorld(t, 2, func(int) mpi.App { return NewRandomAccess(10, 2, 100, 10) })
	w.run(t, sim.Hour)
	ra := w.app(0).(*RandomAccess)
	if !ra.Verified {
		t.Fatal("setup: clean run should verify")
	}
	// The verifier is exact: a single flipped bit must be caught.
	ra.Table[0] ^= 1
	lo, hi := ra.tableRange(0, 2)
	want := make([]uint64, hi-lo)
	for i := range want {
		want[i] = uint64(lo + i)
	}
	for r := 0; r < 2; r++ {
		for b := 0; b < ra.Batches; b++ {
			for u := 0; u < ra.BatchPerRank; u++ {
				idx, val := raStream(raSeed, r, b, u, ra.TableBits)
				if idx >= lo && idx < hi {
					want[idx-lo] ^= val
				}
			}
		}
	}
	match := true
	for i := range want {
		if ra.Table[i] != want[i] {
			match = false
		}
	}
	if match {
		t.Fatal("corruption not detectable")
	}
}
