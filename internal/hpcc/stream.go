package hpcc

import (
	"encoding/gob"

	"dvc/internal/guest"
	"dvc/internal/sim"
)

func init() {
	gob.Register(&Stream{})
}

// Stream is the HPCC STREAM memory-bandwidth kernel (Copy, Scale, Add,
// Triad over large vectors), a single-node guest program. The vectors are
// real (small) so the arithmetic is verified; the time charged per pass
// is modelled from the memory traffic at the configured bandwidth.
type Stream struct {
	// Elements is the working vector length; ModelBytesPerSec is the
	// node's sustainable memory bandwidth.
	Elements         int
	Passes           int
	ModelBytesPerSec float64

	A, B, C []float64
	Pass    int
	Phase   int

	StartWall, EndWall sim.Time
	Finished           bool
	Verified           bool
	// AvgGBs is the reported sustained bandwidth in GB/s across all
	// four kernels (80 bytes/element/pass).
	AvgGBs float64
}

// NewStream constructs the kernel; 2007 nodes sustained ~4-6 GB/s.
func NewStream(elements, passes int, bytesPerSec float64) *Stream {
	return &Stream{Elements: elements, Passes: passes, ModelBytesPerSec: bytesPerSec}
}

// Stream phases: each models its real byte traffic per element.
const (
	streamCopy  = iota // c = a          (16 B/elem)
	streamScale        // b = k*c        (16 B/elem)
	streamAdd          // c = a+b        (24 B/elem)
	streamTriad        // a = b+k*c      (24 B/elem)
)

func (s *Stream) phaseBytes() float64 {
	switch s.Phase {
	case streamAdd, streamTriad:
		return 24 * float64(s.Elements)
	default:
		return 16 * float64(s.Elements)
	}
}

const streamScalar = 3.0

// Next implements guest.Program.
func (s *Stream) Next(api *guest.API, res guest.Result) guest.Op {
	if s.A == nil {
		s.StartWall = api.WallClock()
		s.A = make([]float64, s.Elements)
		s.B = make([]float64, s.Elements)
		s.C = make([]float64, s.Elements)
		for i := range s.A {
			s.A[i] = 1.0
			s.B[i] = 2.0
		}
	}
	if s.Pass >= s.Passes {
		if !s.Finished {
			s.Finished = true
			s.EndWall = api.WallClock()
			s.verify()
			elapsed := (s.EndWall - s.StartWall).Seconds()
			if elapsed > 0 {
				s.AvgGBs = 80 * float64(s.Elements) * float64(s.Passes) / elapsed / 1e9
			}
			api.Log("stream: %d elems x %d passes, %.2f GB/s, verified=%v", s.Elements, s.Passes, s.AvgGBs, s.Verified)
		}
		api.Exit(0)
		return nil
	}
	// Do the real arithmetic for this phase, then charge its time.
	switch s.Phase {
	case streamCopy:
		copy(s.C, s.A)
	case streamScale:
		for i := range s.B {
			s.B[i] = streamScalar * s.C[i]
		}
	case streamAdd:
		for i := range s.C {
			s.C[i] = s.A[i] + s.B[i]
		}
	case streamTriad:
		for i := range s.A {
			s.A[i] = s.B[i] + streamScalar*s.C[i]
		}
	}
	d := sim.Time(s.phaseBytes() / s.ModelBytesPerSec * float64(sim.Second))
	s.Phase++
	if s.Phase > streamTriad {
		s.Phase = streamCopy
		s.Pass++
	}
	return guest.Compute(d)
}

// verify checks the closed form after k full passes: the kernels form a
// linear recurrence on (a, b, c) starting from (1, 2, _).
func (s *Stream) verify() {
	a, b, c := 1.0, 2.0, 0.0
	for p := 0; p < s.Passes; p++ {
		c = a
		b = streamScalar * c
		c = a + b
		a = b + streamScalar*c
	}
	s.Verified = true
	for i := 0; i < s.Elements; i += 1 + s.Elements/64 {
		if s.A[i] != a || s.B[i] != b || s.C[i] != c {
			s.Verified = false
			return
		}
	}
}

// WallTime returns the reported wall duration.
func (s *Stream) WallTime() sim.Time { return s.EndWall - s.StartWall }
