// Package hpcc implements the HPC Challenge workloads the paper tests
// LSC with (§3.2): HPL (distributed LU factorisation with partial
// pivoting) and PTRANS (parallel matrix transpose, "a communication heavy
// test"), plus a sequential kernel and a ping-pong microbenchmark.
//
// The solvers do real arithmetic on real (small) matrices so that a
// checkpoint/restore mid-run is verified against the true numerical
// result, while the *time* they charge is modelled from flop counts and a
// configurable compute rate — large paper-scale problem sizes take
// realistic simulated time without large host compute.
package hpcc

import (
	"math"

	"dvc/internal/sim"
)

// Elem deterministically generates matrix element (i,j) for a seed, in
// [-0.5, 0.5). Any rank can regenerate any element locally, which is what
// makes distributed verification cheap.
func Elem(seed int64, i, j int) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9 + uint64(j)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) - 0.5
}

// RHS generates element i of the right-hand-side vector b.
func RHS(seed int64, i int) float64 { return Elem(seed^0x5DEECE66D, i, 1<<30) }

// FlopsTime converts a flop count into compute time at rate gflops.
func FlopsTime(flops float64, gflops float64) sim.Time {
	if gflops <= 0 {
		gflops = 1
	}
	return sim.Time(flops / (gflops * 1e9) * float64(sim.Second))
}

// owner maps global row i to its rank under the cyclic distribution all
// workloads here use.
func owner(i, size int) int { return i % size }

// residualNorm computes the HPL-style scaled residual
// ||Ax-b||_inf / (eps * ||A||_1 * N).
func residualNorm(seed int64, n int, x []float64) float64 {
	// ||A||_1: max column sum of |a_ij|.
	normA := 0.0
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += math.Abs(Elem(seed, i, j))
		}
		if s > normA {
			normA = s
		}
	}
	rmax := 0.0
	for i := 0; i < n; i++ {
		r := -RHS(seed, i)
		for j := 0; j < n; j++ {
			r += Elem(seed, i, j) * x[j]
		}
		if math.Abs(r) > rmax {
			rmax = math.Abs(r)
		}
	}
	eps := 2.22e-16
	return rmax / (eps * normA * float64(n))
}
