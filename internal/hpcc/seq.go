package hpcc

import (
	"encoding/gob"

	"dvc/internal/guest"
	"dvc/internal/mpi"
	"dvc/internal/sim"
)

func init() {
	gob.Register(&SeqJob{})
	gob.Register(&PingPong{})
}

// SeqJob is a single-node compute-bound job (a stand-in for the paper's
// "sequential jobs"): Rounds compute slices of RoundFlops each, no
// communication. It is a plain guest.Program — no MPI runtime.
type SeqJob struct {
	Rounds     int
	RoundFlops float64
	GFlops     float64

	I                  int
	StartWall, EndWall sim.Time
	StartJiff, EndJiff sim.Time
	Finished           bool
}

// NewSeqJob constructs a sequential job.
func NewSeqJob(rounds int, roundFlops, gflops float64) *SeqJob {
	return &SeqJob{Rounds: rounds, RoundFlops: roundFlops, GFlops: gflops}
}

// Next implements guest.Program.
func (s *SeqJob) Next(api *guest.API, res guest.Result) guest.Op {
	if s.I == 0 {
		s.StartWall, s.StartJiff = api.WallClock(), api.Jiffies()
	}
	if s.I < s.Rounds {
		s.I++
		return guest.Compute(FlopsTime(s.RoundFlops, s.GFlops))
	}
	if !s.Finished {
		s.Finished = true
		s.EndWall, s.EndJiff = api.WallClock(), api.Jiffies()
		api.Log("seq: rounds=%d wall=%v", s.Rounds, s.EndWall-s.StartWall)
	}
	api.Exit(0)
	return nil
}

// WallTime returns the job's reported wall duration.
func (s *SeqJob) WallTime() sim.Time { return s.EndWall - s.StartWall }

// CPUTime returns guest-monotonic duration.
func (s *SeqJob) CPUTime() sim.Time { return s.EndJiff - s.StartJiff }

// PingPong is the latency/bandwidth microbenchmark between ranks 0 and 1
// (other ranks exit immediately). Rank 0 reports RTT and bandwidth.
type PingPong struct {
	MsgBytes int
	Iters    int
	Warmup   int

	PC   int
	I    int
	Done bool

	StartJiff, EndJiff sim.Time
	// Results on rank 0.
	AvgRTT    sim.Time
	Bandwidth float64 // bytes/s, one direction, from timed phase
}

// NewPingPong constructs the microbenchmark.
func NewPingPong(msgBytes, iters int) *PingPong {
	return &PingPong{MsgBytes: msgBytes, Iters: iters, Warmup: 2}
}

// Step implements mpi.App.
func (p *PingPong) Step(c *mpi.Ctx, prev mpi.Op) mpi.Op {
	rt := c.RT
	if rt.Me > 1 {
		return nil
	}
	payload := func() []byte { return make([]byte, p.MsgBytes) }
	total := p.Warmup + p.Iters
	for {
		switch p.PC {
		case 0:
			if p.I == p.Warmup {
				p.StartJiff = c.Jiffies()
			}
			if p.I >= total {
				if rt.Me == 0 {
					elapsed := c.Jiffies() - p.StartJiff
					p.AvgRTT = elapsed / sim.Time(p.Iters)
					if p.AvgRTT > 0 {
						p.Bandwidth = float64(p.MsgBytes) / (p.AvgRTT.Seconds() / 2)
					}
				}
				p.Done = true
				return nil
			}
			p.PC = 1
			if rt.Me == 0 {
				return mpi.Send(1, 42, payload())
			}
			return mpi.Recv(0, 42)
		case 1:
			p.PC = 2
			if rt.Me == 0 {
				return mpi.Recv(1, 42)
			}
			return mpi.Send(0, 42, payload())
		default:
			p.I++
			p.PC = 0
		}
	}
}
