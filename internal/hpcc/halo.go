package hpcc

import (
	"encoding/gob"

	"dvc/internal/mpi"
	"dvc/internal/sim"
)

func init() {
	gob.Register(&Halo{})
}

// Halo is a ring halo-exchange kernel: every Period, each rank computes
// and then exchanges MsgBytes with both ring neighbours. It produces the
// continuous all-node communication LSC is sensitive to, at a small
// fraction of PTRANS's event cost — the experiment harness uses it for
// the large sweeps.
type Halo struct {
	Rounds   int
	Period   sim.Time
	MsgBytes int

	PC       int
	I        int
	Finished bool

	StartWall, EndWall sim.Time
	StartJiff, EndJiff sim.Time
}

// NewHalo constructs the kernel.
func NewHalo(rounds int, period sim.Time, msgBytes int) *Halo {
	return &Halo{Rounds: rounds, Period: period, MsgBytes: msgBytes}
}

// Step implements mpi.App.
func (h *Halo) Step(c *mpi.Ctx, prev mpi.Op) mpi.Op {
	rt := c.RT
	if rt.Size < 2 {
		h.Finished = true
		return nil
	}
	right := (rt.Me + 1) % rt.Size
	left := (rt.Me - 1 + rt.Size) % rt.Size
	for {
		switch h.PC {
		case 0:
			h.StartWall, h.StartJiff = c.WallClock(), c.Jiffies()
			h.PC = 1
		case 1:
			if h.I >= h.Rounds {
				h.EndWall, h.EndJiff = c.WallClock(), c.Jiffies()
				h.Finished = true
				return nil
			}
			h.PC = 2
			return mpi.Compute(h.Period)
		case 2:
			h.PC = 3
			return mpi.Send(right, 5, make([]byte, h.MsgBytes))
		case 3:
			h.PC = 4
			return mpi.Send(left, 6, make([]byte, h.MsgBytes))
		case 4:
			h.PC = 5
			return mpi.Recv(left, 5)
		case 5:
			h.PC = 6
			return mpi.Recv(right, 6)
		case 6:
			h.I++
			h.PC = 1
		}
	}
}

// WallTime returns the reported wall duration.
func (h *Halo) WallTime() sim.Time { return h.EndWall - h.StartWall }

// CPUTime returns the guest-monotonic duration.
func (h *Halo) CPUTime() sim.Time { return h.EndJiff - h.StartJiff }
