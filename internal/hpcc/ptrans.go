package hpcc

import (
	"encoding/gob"
	"math"

	"dvc/internal/mpi"
	"dvc/internal/sim"
)

func init() {
	gob.Register(&PTRANS{})
}

// PTRANS is the HPCC parallel transpose: A ← βA + αAᵀ, repeated Reps
// times with a barrier between repetitions. Every repetition moves
// (almost) the whole matrix across the wire, which is why the paper used
// it as "the most important test for verifying that our conclusions
// about consistent network states were correct".
//
// Verification is fully local: after k repetitions, A_k = c1·A0 + c2·A0ᵀ
// with (c1,c2) following a linear recurrence, and any element of A0 is
// regenerable from the seed.
type PTRANS struct {
	// Inputs.
	N           int
	Seed        int64
	Alpha, Beta float64
	Reps        int
	GFlops      float64

	// Distributed state: rows of A, cyclic by row index.
	Rows map[int][]float64

	// Progress.
	PC  int
	Rep int

	// Timing.
	StartWall, EndWall sim.Time
	StartJiff, EndJiff sim.Time

	// Results (every rank verifies its own rows).
	Finished bool
	MaxErr   float64
	Passed   bool
}

// NewPTRANS constructs a PTRANS instance for one rank.
func NewPTRANS(n int, seed int64, reps int, gflops float64) *PTRANS {
	return &PTRANS{N: n, Seed: seed, Alpha: 1.0, Beta: 0.7, Reps: reps, GFlops: gflops}
}

// PTRANS phases.
const (
	ptInit = iota
	ptGenDone
	ptExchange
	ptUpdate
	ptBarrier
	ptVerify
	ptDone
)

// Step implements mpi.App.
func (p *PTRANS) Step(c *mpi.Ctx, prev mpi.Op) mpi.Op {
	rt := c.RT
	me, size := rt.Me, rt.Size
	for {
		switch p.PC {
		case ptInit:
			p.StartWall, p.StartJiff = c.WallClock(), c.Jiffies()
			p.Rows = make(map[int][]float64)
			for i := me; i < p.N; i += size {
				row := make([]float64, p.N)
				for j := 0; j < p.N; j++ {
					row[j] = Elem(p.Seed, i, j)
				}
				p.Rows[i] = row
			}
			p.PC = ptGenDone
			return mpi.Compute(FlopsTime(float64(len(p.Rows)*p.N)*3, p.GFlops))

		case ptGenDone:
			p.Rep = 0
			p.PC = ptExchange

		case ptExchange:
			if p.Rep >= p.Reps {
				p.PC = ptVerify
				continue
			}
			// Block for destination d: my elements A[i][j] with j owned
			// by d, rows ascending, columns ascending.
			blocks := make([][]byte, size)
			for d := 0; d < size; d++ {
				var vals []float64
				for i := me; i < p.N; i += size {
					row := p.Rows[i]
					for j := d; j < p.N; j += size {
						vals = append(vals, row[j])
					}
				}
				blocks[d] = mpi.Float64sToBytes(vals)
			}
			p.PC = ptUpdate
			return mpi.NewAlltoall(blocks)

		case ptUpdate:
			recvd := prev.(*mpi.Alltoall).Recvd
			// Element m of the block from rank r is A[i][j] with i the
			// m/|myCols|-th row of r and j my m%|myCols|-th column...
			// reconstructed by walking the same loop order.
			t := make(map[int][]float64, len(p.Rows))
			for j := me; j < p.N; j += size {
				t[j] = make([]float64, p.N)
			}
			for r := 0; r < size; r++ {
				vals := mpi.BytesToFloat64s(recvd[r])
				idx := 0
				for i := r; i < p.N; i += size {
					for j := me; j < p.N; j += size {
						// vals[idx] = A[i][j]; contributes to (Aᵀ)[j][i].
						t[j][i] = vals[idx]
						idx++
					}
				}
			}
			flops := 0.0
			for j := me; j < p.N; j += size {
				row := p.Rows[j]
				tr := t[j]
				for i := 0; i < p.N; i++ {
					row[i] = p.Beta*row[i] + p.Alpha*tr[i]
				}
				flops += 3 * float64(p.N)
			}
			p.Rep++
			p.PC = ptBarrier
			return mpi.Compute(FlopsTime(flops, p.GFlops))

		case ptBarrier:
			p.PC = ptExchange
			return mpi.NewBarrier()

		case ptVerify:
			p.EndWall, p.EndJiff = c.WallClock(), c.Jiffies()
			// Coefficients after Reps applications of A ← βA + αAᵀ.
			c1, c2 := 1.0, 0.0
			for r := 0; r < p.Reps; r++ {
				c1, c2 = p.Beta*c1+p.Alpha*c2, p.Beta*c2+p.Alpha*c1
			}
			p.MaxErr = 0
			for i := me; i < p.N; i += size {
				row := p.Rows[i]
				for j := 0; j < p.N; j++ {
					want := c1*Elem(p.Seed, i, j) + c2*Elem(p.Seed, j, i)
					if e := math.Abs(row[j] - want); e > p.MaxErr {
						p.MaxErr = e
					}
				}
			}
			p.Passed = p.MaxErr < 1e-9*math.Pow(math.Abs(p.Alpha)+math.Abs(p.Beta), float64(p.Reps))*float64(p.N)
			p.Finished = true
			c.Log("ptrans: N=%d reps=%d maxerr=%.3g passed=%v wall=%v", p.N, p.Reps, p.MaxErr, p.Passed, p.EndWall-p.StartWall)
			p.PC = ptDone
			return mpi.Compute(FlopsTime(2*float64(len(p.Rows))*float64(p.N), p.GFlops))

		case ptDone:
			return nil
		}
	}
}

// WallTime returns the wall-clock duration PTRANS would report.
func (p *PTRANS) WallTime() sim.Time { return p.EndWall - p.StartWall }

// CPUTime returns guest-monotonic duration.
func (p *PTRANS) CPUTime() sim.Time { return p.EndJiff - p.StartJiff }

// BytesMoved estimates wire traffic per repetition (whole matrix minus
// the diagonal blocks that stay local).
func (p *PTRANS) BytesMoved() float64 {
	n := float64(p.N)
	return 8 * n * n * float64(p.Reps)
}
