package hpcc

import (
	"encoding/gob"
	"math"

	"dvc/internal/mpi"
	"dvc/internal/sim"
)

func init() {
	gob.Register(&HPL{})
}

// HPL is the High-Performance Linpack workload: solve Ax=b by LU
// factorisation with partial pivoting, distributed row-cyclically. The
// matrix is augmented with b so pivoting carries the right-hand side
// along. Time is charged from flop counts at the configured rate.
//
// Rank 0 gathers the factored system at the end, back-substitutes, and
// verifies the HPL scaled residual against the regenerated input.
type HPL struct {
	// Inputs.
	N      int
	Seed   int64
	GFlops float64

	// Distributed state.
	Rows map[int][]float64 // global row index -> augmented row (N+1 wide)

	// Progress.
	PC        int
	K         int       // current panel column
	PivotRow  int       // global pivot row for column K
	PivotSeg  []float64 // pivot row segment [K..N]
	GatherJ   int       // gather loop index (root)
	AllRows   [][]float64
	FlopsDone float64

	// Timing (what HPL reports — wall clock, which jumps on restore).
	StartWall, EndWall sim.Time
	StartJiff, EndJiff sim.Time

	// Results (valid on rank 0 after completion).
	Finished bool
	Residual float64
	Passed   bool
}

// NewHPL constructs an HPL instance for one rank; every rank receives an
// identical copy.
func NewHPL(n int, seed int64, gflops float64) *HPL {
	return &HPL{N: n, Seed: seed, GFlops: gflops}
}

// HPL phases.
const (
	hplInit = iota
	hplGenDone
	hplPivotSearch
	hplPivotFound
	hplSwapSend
	hplSwapRecv
	hplSwapDone
	hplBcast
	hplUpdate
	hplGatherSend
	hplGatherRecv
	hplVerify
	hplDone
)

// localRowsBelow returns this rank's global row indices >= k, ascending.
func (h *HPL) localRowsBelow(me, size, k int) []int {
	var out []int
	start := k + ((me - k%size + size) % size)
	for i := start; i < h.N; i += size {
		out = append(out, i)
	}
	return out
}

// Step implements mpi.App.
func (h *HPL) Step(c *mpi.Ctx, prev mpi.Op) mpi.Op {
	rt := c.RT
	me, size := rt.Me, rt.Size
	for {
		switch h.PC {
		case hplInit:
			h.StartWall, h.StartJiff = c.WallClock(), c.Jiffies()
			h.Rows = make(map[int][]float64)
			for i := me; i < h.N; i += size {
				row := make([]float64, h.N+1)
				for j := 0; j < h.N; j++ {
					row[j] = Elem(h.Seed, i, j)
				}
				row[h.N] = RHS(h.Seed, i)
				h.Rows[i] = row
			}
			h.PC = hplGenDone
			return mpi.Compute(FlopsTime(float64(len(h.Rows)*(h.N+1))*3, h.GFlops))

		case hplGenDone:
			h.K = 0
			h.PC = hplPivotSearch

		case hplPivotSearch:
			if h.K >= h.N {
				h.PC = hplGatherSend
				continue
			}
			best, bestRow := -1.0, h.N
			for _, i := range h.localRowsBelow(me, size, h.K) {
				if v := math.Abs(h.Rows[i][h.K]); v > best {
					best, bestRow = v, i
				}
			}
			h.PC = hplPivotFound
			return mpi.NewAllreduce(mpi.ReduceMaxLoc, []float64{best, float64(bestRow)})

		case hplPivotFound:
			pair := prev.(*mpi.Allreduce).Data
			if pair[0] <= 0 {
				rt.Fail("hpl: singular matrix at k=%d", h.K)
				return nil
			}
			h.PivotRow = int(pair[1])
			h.PC = hplSwapSend

		case hplSwapSend:
			k, p := h.K, h.PivotRow
			if p == k {
				h.PC = hplBcast
				continue
			}
			ok, op := owner(k, size), owner(p, size)
			if ok == op {
				if me == ok {
					h.Rows[k], h.Rows[p] = h.Rows[p], h.Rows[k]
				}
				h.PC = hplBcast
				continue
			}
			switch me {
			case ok:
				h.PC = hplSwapRecv
				return mpi.Send(op, 1000+k, mpi.Float64sToBytes(h.Rows[k]))
			case op:
				h.PC = hplSwapRecv
				return mpi.Send(ok, 1000+k, mpi.Float64sToBytes(h.Rows[p]))
			default:
				h.PC = hplBcast
				continue
			}

		case hplSwapRecv:
			k, p := h.K, h.PivotRow
			ok, op := owner(k, size), owner(p, size)
			h.PC = hplSwapDone
			if me == ok {
				return mpi.Recv(op, 1000+k)
			}
			return mpi.Recv(ok, 1000+k)

		case hplSwapDone:
			row := mpi.BytesToFloat64s(prev.(*mpi.RecvMsg).Data)
			if me == owner(h.K, size) {
				h.Rows[h.K] = row
			} else {
				h.Rows[h.PivotRow] = row
			}
			h.PC = hplBcast

		case hplBcast:
			k := h.K
			root := owner(k, size)
			var seg []byte
			if me == root {
				seg = mpi.Float64sToBytes(h.Rows[k][k:])
			}
			h.PC = hplUpdate
			return mpi.NewBcast(root, seg)

		case hplUpdate:
			h.PivotSeg = mpi.BytesToFloat64s(prev.(*mpi.Bcast).Data)
			k := h.K
			pr := h.PivotSeg // pr[0] == A[k][k], pr[m] == A[k][k+m]
			flops := 0.0
			for _, i := range h.localRowsBelow(me, size, k+1) {
				row := h.Rows[i]
				l := row[k] / pr[0]
				row[k] = l
				for j := k + 1; j <= h.N; j++ {
					row[j] -= l * pr[j-k]
				}
				flops += 2 * float64(h.N+1-k)
			}
			h.FlopsDone += flops
			h.K++
			h.PC = hplPivotSearch
			if flops > 0 {
				return mpi.Compute(FlopsTime(flops, h.GFlops))
			}

		case hplGatherSend:
			// Everyone but rank 0 ships its rows (ascending global index).
			if me == 0 {
				h.AllRows = make([][]float64, h.N)
				for i, row := range h.Rows {
					h.AllRows[i] = row
				}
				h.GatherJ = 0
				h.PC = hplGatherRecv
				continue
			}
			var flat []float64
			for i := me; i < h.N; i += size {
				flat = append(flat, float64(i))
				flat = append(flat, h.Rows[i]...)
			}
			h.PC = hplVerify
			return mpi.Send(0, 2000, mpi.Float64sToBytes(flat))

		case hplGatherRecv:
			if h.GatherJ > 0 {
				// prev is the rows shipped by rank GatherJ.
				flat := mpi.BytesToFloat64s(prev.(*mpi.RecvMsg).Data)
				w := h.N + 2
				for off := 0; off+w <= len(flat); off += w {
					i := int(flat[off])
					h.AllRows[i] = flat[off+1 : off+1+h.N+1]
				}
			}
			if h.GatherJ < size-1 {
				h.GatherJ++
				return mpi.Recv(h.GatherJ, 2000)
			}
			h.PC = hplVerify

		case hplVerify:
			h.EndWall, h.EndJiff = c.WallClock(), c.Jiffies()
			if me == 0 {
				x := make([]float64, h.N)
				for i := h.N - 1; i >= 0; i-- {
					u := h.AllRows[i]
					v := u[h.N]
					for j := i + 1; j < h.N; j++ {
						v -= u[j] * x[j]
					}
					x[i] = v / u[i]
				}
				h.Residual = residualNorm(h.Seed, h.N, x)
				h.Passed = h.Residual < 16.0
				c.Log("hpl: N=%d residual=%.3g passed=%v wall=%v", h.N, h.Residual, h.Passed, h.EndWall-h.StartWall)
			} else {
				h.Passed = true
			}
			h.Finished = true
			h.PC = hplDone
			// Verification cost on the root (O(N^2) solve + O(N^2) check).
			if me == 0 {
				return mpi.Compute(FlopsTime(3*float64(h.N)*float64(h.N), h.GFlops))
			}

		case hplDone:
			return nil
		}
	}
}

// WallTime returns the wall-clock duration HPL would report.
func (h *HPL) WallTime() sim.Time { return h.EndWall - h.StartWall }

// CPUTime returns the guest-monotonic duration (unaffected by
// save/restore gaps).
func (h *HPL) CPUTime() sim.Time { return h.EndJiff - h.StartJiff }

// TotalFlops estimates the LU flop count (2/3 N^3).
func (h *HPL) TotalFlops() float64 {
	n := float64(h.N)
	return 2.0 / 3.0 * n * n * n
}
