// Package netsim models the cluster interconnect: addressed ports attached
// to clusters, link profiles (latency, bandwidth, loss), and packet
// delivery as discrete events.
//
// The model is deliberately coarse — per-packet one-way latency plus
// serialisation delay, no queueing theory — because what the DVC
// experiments depend on is (a) realistic message timing for MPI overhead
// shapes and (b) the ability to lose packets on the wire, which is the
// whole premise of the paper's consistent-cut argument (Figure 2).
//
// The fabric is sized for thousands of ports: cluster names and port
// addresses are interned to dense int32 indices at attach/registration
// time, so the per-packet path resolves profiles and port state through
// flat arrays — the string-keyed maps are consulted only where the public
// string API enters (Send's src/dst resolution and the control-plane
// calls), never per hop inside it.
package netsim

import (
	"fmt"

	"dvc/internal/obs"
	"dvc/internal/sim"
)

// Addr identifies a network endpoint (a physical node's or a virtual
// machine's interface). Addresses are stable across migration: moving a
// port to another cluster keeps its address, exactly as DVC keeps a
// virtual node's identity when it is restarted elsewhere.
type Addr string

// Packet is one datagram on the fabric. Payload is opaque to the fabric
// (the TCP layer puts segments in it); Size in bytes drives serialisation
// delay.
type Packet struct {
	Src, Dst Addr
	Size     int
	Payload  any
}

// Handler receives delivered packets.
type Handler func(Packet)

// LinkProfile describes one fabric class.
type LinkProfile struct {
	// Latency is the one-way small-packet latency (NICs + switch).
	Latency sim.Time
	// Bandwidth is payload bandwidth in bytes per second.
	Bandwidth float64
	// LossProb is the independent per-packet loss probability.
	LossProb float64
}

// EthernetGigE matches 2007-era gigabit Ethernet with a commodity switch.
func EthernetGigE() LinkProfile {
	return LinkProfile{Latency: 55 * sim.Microsecond, Bandwidth: 117e6, LossProb: 1e-6}
}

// InfinibandDDR matches 2007-era DDR InfiniBand. The paper notes (§4)
// that checkpointing over InfiniBand needs substantial driver work inside
// VMs; experiment E12 uses this profile.
func InfinibandDDR() LinkProfile {
	return LinkProfile{Latency: 4 * sim.Microsecond, Bandwidth: 1400e6, LossProb: 0}
}

// InterClusterWAN is the default link between clusters on a campus.
func InterClusterWAN() LinkProfile {
	return LinkProfile{Latency: 350 * sim.Microsecond, Bandwidth: 117e6, LossProb: 1e-6}
}

// FatTreeSpine is the upper tier of a generated fat-tree fabric: traffic
// between two clusters (edge switches) of the same datacenter crosses two
// extra switch hops at full bisection bandwidth.
func FatTreeSpine() LinkProfile {
	return LinkProfile{Latency: 165 * sim.Microsecond, Bandwidth: 117e6, LossProb: 1e-6}
}

// MultiDatacenterWAN is the default link between datacenters (zones) of a
// generated topology: millisecond-class latency, sub-LAN bandwidth.
func MultiDatacenterWAN() LinkProfile {
	return LinkProfile{Latency: 2500 * sim.Microsecond, Bandwidth: 100e6, LossProb: 1e-6}
}

// Stats counts fabric activity. Sent and Bytes count only packets that
// actually transmit (pass the sender-up, drop-rule, destination and loss
// checks and consume NIC/wire time); packets refused before transmission
// accumulate in BytesDropped instead, so byte counters never overstate
// offered load. Packets dropped at delivery time (destination paused or
// detached mid-flight) did occupy the wire and therefore stay in Bytes.
type Stats struct {
	Sent          uint64
	Delivered     uint64
	DroppedLoss   uint64 // lost on the wire (random loss or drop rule)
	DroppedDown   uint64 // sender/destination port down (e.g. VM paused)
	DroppedNoDest uint64 // destination not attached
	Forwarded     uint64 // handed to another partition's fabric (Remote)
	Bytes         uint64 // payload bytes of transmitted packets
	BytesDropped  uint64 // payload bytes of packets refused before transmit
}

// Port is one attachment point: a handle carrying its dense fabric id.
// Liveness (up) and NIC serialisation state (busyUntil) live in the
// fabric's struct-of-arrays tables indexed by that id. A port whose Up
// flag is false silently discards traffic — this is how a paused VM
// "loses packets on the wire".
type Port struct {
	fabric  *Fabric
	id      int32 // dense fabric index; -1 once detached
	addr    Addr
	cluster int32 // interned cluster index
	handler Handler

	// ExtraLatency and BandwidthFactor model para-virtualised I/O: Xen's
	// split-driver network path adds latency and costs bandwidth. The vm
	// package sets these on guest ports.
	ExtraLatency    sim.Time
	BandwidthFactor float64 // multiplies effective bandwidth; 0 means 1.0
}

// Addr returns the port's address.
func (p *Port) Addr() Addr { return p.addr }

// Cluster returns the cluster the port is currently attached to.
func (p *Port) Cluster() string { return p.fabric.clusterName[p.cluster] }

// Up reports whether the port is accepting traffic.
//
//dvc:hotpath
func (p *Port) Up() bool { return p.id >= 0 && p.fabric.up[p.id] }

// SetUp raises or lowers the port. A detached port stays down.
func (p *Port) SetUp(up bool) {
	if p.id >= 0 {
		p.fabric.up[p.id] = up
	}
}

// SetHandler replaces the delivery callback.
func (p *Port) SetHandler(h Handler) { p.handler = h }

// Move reattaches the port to another cluster, keeping its address. The
// cluster is resolved to its interned index once here, so subsequent
// sends pay no name lookup.
func (p *Port) Move(cluster string) error {
	ci, ok := p.fabric.clusterIdx[cluster]
	if !ok {
		return fmt.Errorf("netsim: unknown cluster %q", cluster)
	}
	p.cluster = ci
	return nil
}

// Detach removes the port from the fabric. The dense id returns to the
// free list; the stale handle is inert (down, never delivered to).
func (p *Port) Detach() {
	f := p.fabric
	if p.id < 0 || f.byID[p.id] != p {
		return
	}
	delete(f.addrID, p.addr)
	f.byID[p.id] = nil
	f.up[p.id] = false
	f.busy[p.id] = 0
	f.freeIDs = append(f.freeIDs, p.id)
	p.id = -1
}

// Fabric is the interconnect. It is built from named clusters, each with
// a link profile, joined by an inter-cluster profile — and, for generated
// multi-datacenter topologies, an inter-zone profile between clusters
// assigned to different zones.
type Fabric struct {
	kernel *sim.Kernel

	// Interned cluster tables, indexed by registration order.
	clusterIdx  map[string]int32
	clusterName []string
	profiles    []LinkProfile
	zoneOf      []int32

	inter     LinkProfile // cross-cluster, same zone (fat-tree spine)
	interZone LinkProfile // cross-zone (multi-datacenter WAN)

	// Ports by dense id, with the address map as the string-API entry
	// point. up and busy are struct-of-arrays port state: the per-packet
	// path reads/writes flat arrays, not port objects scattered on the
	// heap.
	addrID  map[Addr]int32
	byID    []*Port
	freeIDs []int32
	up      []bool
	busy    []sim.Time // NIC busyUntil per port

	stats  Stats
	tracer *obs.Tracer

	// freeDeliveries is the pool of in-flight packet records (see
	// delivery): Send pops one, the arrival event pushes it back.
	freeDeliveries *delivery

	// DropRule, when set, force-drops matching packets. Experiments use
	// it to cut specific messages at a snapshot boundary (E3).
	DropRule func(Packet) bool

	// remote, when set, resolves destination addresses owned by other
	// partitions of a partitioned run (see Remote and SetRemote).
	remote Remote
}

// Remote is the partitioned-run escape hatch: when Send finds the
// destination address unattached locally, it asks the Remote whether
// another partition's fabric owns it. The send-side physics (loss draw,
// NIC serialisation, link latency from the local cluster registry —
// remote clusters are registered fabric-only for exactly this) happen on
// the sending fabric with the sending kernel's RNG, so the sender's
// byte-for-byte behaviour is independent of who owns the receiver; the
// receive side completes in the owning fabric's InjectDelivery at the
// arrival time Forward carries across.
type Remote interface {
	// RemoteCluster reports the cluster the remote address lives in
	// (for link-profile resolution), or ok=false when the address is
	// genuinely unknown — the packet then drops as no-dest.
	RemoteCluster(addr Addr) (cluster string, ok bool)
	// Forward hands a transmitted packet to the owning partition for
	// injection (InjectDelivery) at the precomputed arrival time.
	Forward(pkt Packet, arrive sim.Time)
}

// SetRemote installs (nil removes) the cross-partition resolver. A
// fabric without one — the default — treats unknown destinations as
// no-dest drops, exactly as before.
func (f *Fabric) SetRemote(r Remote) { f.remote = r }

// NewFabric creates an empty fabric with the default inter-cluster and
// inter-zone links.
func NewFabric(k *sim.Kernel) *Fabric {
	return &Fabric{
		kernel:     k,
		clusterIdx: make(map[string]int32),
		inter:      InterClusterWAN(),
		interZone:  MultiDatacenterWAN(),
		addrID:     make(map[Addr]int32),
	}
}

// AddCluster registers a cluster with the given intra-cluster profile.
// Re-registering an existing name replaces its profile.
func (f *Fabric) AddCluster(name string, profile LinkProfile) {
	if ci, ok := f.clusterIdx[name]; ok {
		f.profiles[ci] = profile
		return
	}
	f.clusterIdx[name] = int32(len(f.clusterName))
	f.clusterName = append(f.clusterName, name)
	f.profiles = append(f.profiles, profile)
	f.zoneOf = append(f.zoneOf, 0)
}

// SetInterCluster replaces the same-zone inter-cluster profile.
func (f *Fabric) SetInterCluster(profile LinkProfile) { f.inter = profile }

// SetInterZone replaces the cross-zone (inter-datacenter) profile. It
// only matters once clusters are assigned distinct zones.
func (f *Fabric) SetInterZone(profile LinkProfile) { f.interZone = profile }

// SetClusterZone assigns a cluster to a zone (datacenter). All clusters
// start in zone 0; packets between clusters of different zones use the
// inter-zone profile instead of the inter-cluster one.
func (f *Fabric) SetClusterZone(name string, zone int) error {
	ci, ok := f.clusterIdx[name]
	if !ok {
		return fmt.Errorf("netsim: unknown cluster %q", name)
	}
	f.zoneOf[ci] = int32(zone)
	return nil
}

// ClusterZone reports the zone a cluster is assigned to.
func (f *Fabric) ClusterZone(name string) int {
	if ci, ok := f.clusterIdx[name]; ok {
		return int(f.zoneOf[ci])
	}
	return 0
}

// Stats returns a snapshot of the fabric counters.
func (f *Fabric) Stats() Stats { return f.stats }

// SetTracer attaches an observability tracer (nil disables tracing).
// Fabric drops become net.drop instant events with a reason attribute.
func (f *Fabric) SetTracer(t *obs.Tracer) { f.tracer = t }

// traceDrop records one dropped packet. Drops are site-level events (the
// fabric has addresses, not nodes), so the record's node/dom are empty
// and the endpoints travel as attributes.
func (f *Fabric) traceDrop(pkt Packet, reason string) {
	if f.tracer == nil {
		return
	}
	f.tracer.Emit(f.kernel.Now(), obs.EvNetDrop, "", "", "drop",
		obs.Str("reason", reason), obs.Str("src", string(pkt.Src)), obs.Str("dst", string(pkt.Dst)))
	f.tracer.Inc("net.drops", 1)
	f.tracer.Inc("net.drops."+reason, 1)
}

// Attach creates an up port at addr in cluster. Attaching an address twice
// panics: addresses are identities.
func (f *Fabric) Attach(addr Addr, cluster string, h Handler) *Port {
	ci, ok := f.clusterIdx[cluster]
	if !ok {
		panic(fmt.Sprintf("netsim: attach to unknown cluster %q", cluster))
	}
	if _, dup := f.addrID[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate attach of %q", addr))
	}
	p := &Port{fabric: f, addr: addr, cluster: ci, handler: h}
	if n := len(f.freeIDs); n > 0 {
		p.id = f.freeIDs[n-1]
		f.freeIDs = f.freeIDs[:n-1]
		f.byID[p.id] = p
	} else {
		p.id = int32(len(f.byID))
		f.byID = append(f.byID, p)
		f.up = append(f.up, false)
		f.busy = append(f.busy, 0)
	}
	f.up[p.id] = true
	f.busy[p.id] = 0
	f.addrID[addr] = p.id
	return p
}

// Lookup returns the port for addr, if attached.
func (f *Fabric) Lookup(addr Addr) (*Port, bool) {
	id, ok := f.addrID[addr]
	if !ok {
		return nil, false
	}
	return f.byID[id], true
}

// profileBetween picks the link profile governing traffic between two
// interned cluster indices: intra-cluster, same-zone spine, or cross-zone
// WAN. Pure array reads — no map hits on the per-packet path.
//
//dvc:hotpath
func (f *Fabric) profileBetween(a, b int32) LinkProfile {
	if a == b {
		return f.profiles[a]
	}
	if f.zoneOf[a] != f.zoneOf[b] {
		return f.interZone
	}
	return f.inter
}

// PathBandwidth reports the effective bulk-transfer bandwidth between two
// attached addresses (bytes/s), including per-port factors. Bulk flows
// (image copies, migrations) use this instead of per-packet simulation.
func (f *Fabric) PathBandwidth(src, dst Addr) (float64, error) {
	ps, ok := f.Lookup(src)
	if !ok {
		return 0, fmt.Errorf("netsim: source %q not attached", src)
	}
	pd, ok := f.Lookup(dst)
	if !ok {
		return 0, fmt.Errorf("netsim: destination %q not attached", dst)
	}
	return f.effectiveBandwidth(ps, pd), nil
}

// ClusterBandwidth reports the raw profile bandwidth between two clusters
// (the same cluster gives the intra-cluster profile).
func (f *Fabric) ClusterBandwidth(a, b string) float64 {
	ca, okA := f.clusterIdx[a]
	if a == b {
		if !okA {
			return 0
		}
		return f.profiles[ca].Bandwidth
	}
	cb, okB := f.clusterIdx[b]
	if okA && okB {
		return f.profileBetween(ca, cb).Bandwidth
	}
	return f.inter.Bandwidth
}

// Delay computes the one-way delay for a packet of size bytes between two
// attached addresses, including para-virt port overheads.
func (f *Fabric) Delay(src, dst Addr, size int) (sim.Time, error) {
	ps, ok := f.Lookup(src)
	if !ok {
		return 0, fmt.Errorf("netsim: source %q not attached", src)
	}
	pd, ok := f.Lookup(dst)
	if !ok {
		return 0, fmt.Errorf("netsim: destination %q not attached", dst)
	}
	return f.delay(ps, pd, size), nil
}

func (f *Fabric) delay(src, dst *Port, size int) sim.Time {
	prof := f.profileBetween(src.cluster, dst.cluster)
	d := prof.Latency + src.ExtraLatency + dst.ExtraLatency
	if size > 0 {
		if bw := f.effectiveBandwidth(src, dst); bw > 0 {
			d += sim.Time(float64(size) / bw * float64(sim.Second))
		}
	}
	return d
}

//dvc:hotpath
func (f *Fabric) effectiveBandwidth(src, dst *Port) float64 {
	bw := f.profileBetween(src.cluster, dst.cluster).Bandwidth
	if src.BandwidthFactor > 0 {
		bw *= src.BandwidthFactor
	}
	if dst.BandwidthFactor > 0 {
		bw *= dst.BandwidthFactor
	}
	return bw
}

// Send puts a packet on the wire. Delivery (or loss) is resolved as a
// future event. The sender's NIC serialises transmissions (packets queue
// behind earlier ones from the same port), so a burst of segments honours
// the link bandwidth and stays in order. The in-flight leg is a pooled
// delivery record with a pre-bound callback — no closure is captured per
// packet, so the per-packet path allocates nothing in steady state.
//
// Accounting: Sent/Bytes count at the moment the packet clears the
// send-side checks and claims wire time; refused packets (down sender,
// drop rule, unknown destination, random loss) count their payload in
// BytesDropped instead. A destination that goes down mid-flight still
// loses the packet — "packets to a saved VM are lost on the wire" — but
// that loss is delivery-side: the bytes were genuinely transmitted.
//
// The two address-map hits here are the only string lookups per packet;
// everything downstream (profiles, NIC state, the delivery leg) runs on
// interned indices.
//
//dvc:hotpath
func (f *Fabric) Send(pkt Packet) {
	sid, ok := f.addrID[pkt.Src]
	if !ok || !f.up[sid] {
		// A down/detached sender cannot transmit at all.
		f.stats.DroppedDown++
		f.stats.BytesDropped += uint64(pkt.Size)
		f.traceDrop(pkt, "sender-down")
		return
	}
	if f.DropRule != nil && f.DropRule(pkt) {
		f.stats.DroppedLoss++
		f.stats.BytesDropped += uint64(pkt.Size)
		f.traceDrop(pkt, "rule")
		return
	}
	did, ok := f.addrID[pkt.Dst]
	if !ok {
		if f.remote != nil {
			if cluster, remote := f.remote.RemoteCluster(pkt.Dst); remote {
				f.sendRemote(pkt, sid, cluster)
				return
			}
		}
		f.stats.DroppedNoDest++
		f.stats.BytesDropped += uint64(pkt.Size)
		f.traceDrop(pkt, "no-dest")
		return
	}
	src, dst := f.byID[sid], f.byID[did]
	prof := f.profileBetween(src.cluster, dst.cluster)
	if prof.LossProb > 0 && f.kernel.Rand().Float64() < prof.LossProb {
		f.stats.DroppedLoss++
		f.stats.BytesDropped += uint64(pkt.Size)
		f.traceDrop(pkt, "loss")
		return
	}
	f.stats.Sent++
	f.stats.Bytes += uint64(pkt.Size)
	// NIC serialisation: the packet finishes transmitting txTime after
	// the NIC frees up, then propagates for the latency term.
	var txTime sim.Time
	if pkt.Size > 0 {
		if bw := f.effectiveBandwidth(src, dst); bw > 0 {
			txTime = sim.Time(float64(pkt.Size) / bw * float64(sim.Second))
		}
	}
	start := f.kernel.Now()
	if f.busy[sid] > start {
		start = f.busy[sid]
	}
	depart := start + txTime
	f.busy[sid] = depart
	arrive := depart + prof.Latency + src.ExtraLatency + dst.ExtraLatency
	rec := f.getDelivery()
	rec.pkt = pkt
	rec.dst = did
	f.kernel.At(arrive, rec.run)
}

// delivery is one pooled in-flight packet record. run is bound to the
// record once, at pool-entry creation; scheduling a delivery stores that
// same func value in the kernel's event slab, so neither the fabric nor
// the kernel allocates per packet once the pool is warm. dst carries the
// destination's dense id resolved at send time, so the arrival leg is an
// array read; the address map is only re-consulted if the slot changed
// hands mid-flight.
type delivery struct {
	f    *Fabric
	pkt  Packet
	dst  int32
	next *delivery // free-list link
	run  func()
}

// getDelivery pops a record off the free list, minting one (and its bound
// callback) only when the pool is dry.
//
//dvc:hotpath
func (f *Fabric) getDelivery() *delivery {
	if rec := f.freeDeliveries; rec != nil {
		f.freeDeliveries = rec.next
		rec.next = nil
		return rec
	}
	//lint:allow noalloc minted once per pool entry, only when the free list is dry
	rec := &delivery{f: f}
	rec.run = rec.deliver //lint:allow noalloc the bound callback is created once here and reused for every flight
	return rec
}

// deliver resolves one arrival. The record is recycled before the handler
// runs: handlers routinely transmit replies, and the reply's in-flight leg
// then reuses this very record.
//
//dvc:hotpath
func (rec *delivery) deliver() {
	f, pkt, did := rec.f, rec.pkt, rec.dst
	rec.pkt = Packet{} // drop payload reference for the GC
	rec.next = f.freeDeliveries
	f.freeDeliveries = rec

	p := f.byID[did]
	if p == nil || p.addr != pkt.Dst {
		// The id was freed (and possibly reused) mid-flight: fall back to
		// the address map in case the destination re-attached under a new
		// id. Same semantics as resolving by address at arrival time.
		id, ok := f.addrID[pkt.Dst]
		if !ok {
			f.stats.DroppedNoDest++
			f.traceDrop(pkt, "dest-detached")
			return
		}
		did, p = id, f.byID[id]
	}
	f.finishDelivery(p, did, pkt)
}

// finishDelivery is the shared destination leg: the up/handler checks
// and the handler dispatch, identical for local arrivals (deliver) and
// cross-partition ones (InjectDelivery).
//
//dvc:hotpath
func (f *Fabric) finishDelivery(p *Port, did int32, pkt Packet) {
	if !f.up[did] || p.handler == nil {
		f.stats.DroppedDown++
		f.traceDrop(pkt, "dest-down")
		return
	}
	f.stats.Delivered++
	p.handler(pkt)
}

// sendRemote transmits a packet whose destination another partition
// owns. The whole send side happens here, on the sending fabric, so the
// sender's schedule and RNG draws are byte-identical to a monolithic
// run: the loss draw comes from the sending kernel, NIC serialisation
// claims the sender's wire time, and the link profile resolves through
// the local cluster registry (remote clusters are registered
// fabric-only by the zone-sliced topology builder). One deliberate
// asymmetry: the destination port's para-virt overheads (ExtraLatency,
// BandwidthFactor) are not visible across partitions, so cross-partition
// endpoints are host-level ports — which is what the partitioned
// experiments attach (VM guest traffic never crosses a zone boundary:
// virtual clusters are allocated within one partition).
func (f *Fabric) sendRemote(pkt Packet, sid int32, cluster string) {
	ci, ok := f.clusterIdx[cluster]
	if !ok {
		f.stats.DroppedNoDest++
		f.stats.BytesDropped += uint64(pkt.Size)
		f.traceDrop(pkt, "no-dest")
		return
	}
	src := f.byID[sid]
	prof := f.profileBetween(src.cluster, ci)
	if prof.LossProb > 0 && f.kernel.Rand().Float64() < prof.LossProb {
		f.stats.DroppedLoss++
		f.stats.BytesDropped += uint64(pkt.Size)
		f.traceDrop(pkt, "loss")
		return
	}
	f.stats.Sent++
	f.stats.Bytes += uint64(pkt.Size)
	var txTime sim.Time
	if pkt.Size > 0 {
		bw := prof.Bandwidth
		if src.BandwidthFactor > 0 {
			bw *= src.BandwidthFactor
		}
		if bw > 0 {
			txTime = sim.Time(float64(pkt.Size) / bw * float64(sim.Second))
		}
	}
	start := f.kernel.Now()
	if f.busy[sid] > start {
		start = f.busy[sid]
	}
	depart := start + txTime
	f.busy[sid] = depart
	f.stats.Forwarded++
	f.remote.Forward(pkt, depart+prof.Latency+src.ExtraLatency)
}

// InjectDelivery completes the arrival of a packet transmitted on
// another partition's fabric. The caller (the partition router) executes
// it as a kernel event at the arrival time Forward carried over; the
// destination leg is byte-identical to a local delivery's.
func (f *Fabric) InjectDelivery(pkt Packet) {
	id, ok := f.addrID[pkt.Dst]
	if !ok {
		f.stats.DroppedNoDest++
		f.traceDrop(pkt, "dest-detached")
		return
	}
	f.finishDelivery(f.byID[id], id, pkt)
}

// MinCrossLatency reports the smallest one-way link latency of any
// profile governing traffic between clusters that part maps to different
// partitions — the conservative lookahead bound for a partitioned run
// (no cross-partition packet can arrive sooner than it was sent plus
// this). Zero when no cross-partition pair exists.
func (f *Fabric) MinCrossLatency(part func(cluster string) int) sim.Time {
	min := sim.Time(0)
	for a := range f.clusterName {
		for b := a + 1; b < len(f.clusterName); b++ {
			if part(f.clusterName[a]) == part(f.clusterName[b]) {
				continue
			}
			lat := f.profileBetween(int32(a), int32(b)).Latency
			if min == 0 || lat < min {
				min = lat
			}
		}
	}
	return min
}
