// Package netsim models the cluster interconnect: addressed ports attached
// to clusters, link profiles (latency, bandwidth, loss), and packet
// delivery as discrete events.
//
// The model is deliberately coarse — per-packet one-way latency plus
// serialisation delay, no queueing theory — because what the DVC
// experiments depend on is (a) realistic message timing for MPI overhead
// shapes and (b) the ability to lose packets on the wire, which is the
// whole premise of the paper's consistent-cut argument (Figure 2).
package netsim

import (
	"fmt"

	"dvc/internal/obs"
	"dvc/internal/sim"
)

// Addr identifies a network endpoint (a physical node's or a virtual
// machine's interface). Addresses are stable across migration: moving a
// port to another cluster keeps its address, exactly as DVC keeps a
// virtual node's identity when it is restarted elsewhere.
type Addr string

// Packet is one datagram on the fabric. Payload is opaque to the fabric
// (the TCP layer puts segments in it); Size in bytes drives serialisation
// delay.
type Packet struct {
	Src, Dst Addr
	Size     int
	Payload  any
}

// Handler receives delivered packets.
type Handler func(Packet)

// LinkProfile describes one fabric class.
type LinkProfile struct {
	// Latency is the one-way small-packet latency (NICs + switch).
	Latency sim.Time
	// Bandwidth is payload bandwidth in bytes per second.
	Bandwidth float64
	// LossProb is the independent per-packet loss probability.
	LossProb float64
}

// EthernetGigE matches 2007-era gigabit Ethernet with a commodity switch.
func EthernetGigE() LinkProfile {
	return LinkProfile{Latency: 55 * sim.Microsecond, Bandwidth: 117e6, LossProb: 1e-6}
}

// InfinibandDDR matches 2007-era DDR InfiniBand. The paper notes (§4)
// that checkpointing over InfiniBand needs substantial driver work inside
// VMs; experiment E12 uses this profile.
func InfinibandDDR() LinkProfile {
	return LinkProfile{Latency: 4 * sim.Microsecond, Bandwidth: 1400e6, LossProb: 0}
}

// InterClusterWAN is the default link between clusters on a campus.
func InterClusterWAN() LinkProfile {
	return LinkProfile{Latency: 350 * sim.Microsecond, Bandwidth: 117e6, LossProb: 1e-6}
}

// Stats counts fabric activity. Sent and Bytes count only packets that
// actually transmit (pass the sender-up, drop-rule, destination and loss
// checks and consume NIC/wire time); packets refused before transmission
// accumulate in BytesDropped instead, so byte counters never overstate
// offered load. Packets dropped at delivery time (destination paused or
// detached mid-flight) did occupy the wire and therefore stay in Bytes.
type Stats struct {
	Sent          uint64
	Delivered     uint64
	DroppedLoss   uint64 // lost on the wire (random loss or drop rule)
	DroppedDown   uint64 // sender/destination port down (e.g. VM paused)
	DroppedNoDest uint64 // destination not attached
	Bytes         uint64 // payload bytes of transmitted packets
	BytesDropped  uint64 // payload bytes of packets refused before transmit
}

// Port is one attachment point. A port whose Up flag is false silently
// discards traffic — this is how a paused VM "loses packets on the wire".
type Port struct {
	fabric  *Fabric
	addr    Addr
	cluster string
	handler Handler
	up      bool

	// ExtraLatency and BandwidthFactor model para-virtualised I/O: Xen's
	// split-driver network path adds latency and costs bandwidth. The vm
	// package sets these on guest ports.
	ExtraLatency    sim.Time
	BandwidthFactor float64 // multiplies effective bandwidth; 0 means 1.0

	// busyUntil models NIC transmit serialisation: packets from one port
	// leave the wire back to back, never overlapping. This both enforces
	// the bandwidth limit for multi-segment sends and keeps same-path
	// packets in order.
	busyUntil sim.Time
}

// Addr returns the port's address.
func (p *Port) Addr() Addr { return p.addr }

// Cluster returns the cluster the port is currently attached to.
func (p *Port) Cluster() string { return p.cluster }

// Up reports whether the port is accepting traffic.
func (p *Port) Up() bool { return p.up }

// SetUp raises or lowers the port.
func (p *Port) SetUp(up bool) { p.up = up }

// SetHandler replaces the delivery callback.
func (p *Port) SetHandler(h Handler) { p.handler = h }

// Move reattaches the port to another cluster, keeping its address.
func (p *Port) Move(cluster string) error {
	if _, ok := p.fabric.clusters[cluster]; !ok {
		return fmt.Errorf("netsim: unknown cluster %q", cluster)
	}
	p.cluster = cluster
	return nil
}

// Detach removes the port from the fabric.
func (p *Port) Detach() {
	delete(p.fabric.ports, p.addr)
	p.up = false
}

// Fabric is the interconnect. It is built from named clusters, each with
// a link profile, joined by an inter-cluster profile.
type Fabric struct {
	kernel   *sim.Kernel
	clusters map[string]LinkProfile
	inter    LinkProfile
	ports    map[Addr]*Port
	stats    Stats
	tracer   *obs.Tracer

	// freeDeliveries is the pool of in-flight packet records (see
	// delivery): Send pops one, the arrival event pushes it back.
	freeDeliveries *delivery

	// DropRule, when set, force-drops matching packets. Experiments use
	// it to cut specific messages at a snapshot boundary (E3).
	DropRule func(Packet) bool
}

// NewFabric creates an empty fabric with the default inter-cluster link.
func NewFabric(k *sim.Kernel) *Fabric {
	return &Fabric{
		kernel:   k,
		clusters: make(map[string]LinkProfile),
		inter:    InterClusterWAN(),
		ports:    make(map[Addr]*Port),
	}
}

// AddCluster registers a cluster with the given intra-cluster profile.
func (f *Fabric) AddCluster(name string, profile LinkProfile) {
	f.clusters[name] = profile
}

// SetInterCluster replaces the inter-cluster profile.
func (f *Fabric) SetInterCluster(profile LinkProfile) { f.inter = profile }

// Stats returns a snapshot of the fabric counters.
func (f *Fabric) Stats() Stats { return f.stats }

// SetTracer attaches an observability tracer (nil disables tracing).
// Fabric drops become net.drop instant events with a reason attribute.
func (f *Fabric) SetTracer(t *obs.Tracer) { f.tracer = t }

// traceDrop records one dropped packet. Drops are site-level events (the
// fabric has addresses, not nodes), so the record's node/dom are empty
// and the endpoints travel as attributes.
func (f *Fabric) traceDrop(pkt Packet, reason string) {
	if f.tracer == nil {
		return
	}
	f.tracer.Emit(f.kernel.Now(), obs.EvNetDrop, "", "", "drop",
		obs.Str("reason", reason), obs.Str("src", string(pkt.Src)), obs.Str("dst", string(pkt.Dst)))
	f.tracer.Inc("net.drops", 1)
	f.tracer.Inc("net.drops."+reason, 1)
}

// Attach creates an up port at addr in cluster. Attaching an address twice
// panics: addresses are identities.
func (f *Fabric) Attach(addr Addr, cluster string, h Handler) *Port {
	if _, ok := f.clusters[cluster]; !ok {
		panic(fmt.Sprintf("netsim: attach to unknown cluster %q", cluster))
	}
	if _, dup := f.ports[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate attach of %q", addr))
	}
	p := &Port{fabric: f, addr: addr, cluster: cluster, handler: h, up: true}
	f.ports[addr] = p
	return p
}

// Lookup returns the port for addr, if attached.
func (f *Fabric) Lookup(addr Addr) (*Port, bool) {
	p, ok := f.ports[addr]
	return p, ok
}

// profileFor picks the link profile governing a src→dst packet.
func (f *Fabric) profileFor(src, dst *Port) LinkProfile {
	if src.cluster == dst.cluster {
		return f.clusters[src.cluster]
	}
	return f.inter
}

// PathBandwidth reports the effective bulk-transfer bandwidth between two
// attached addresses (bytes/s), including per-port factors. Bulk flows
// (image copies, migrations) use this instead of per-packet simulation.
func (f *Fabric) PathBandwidth(src, dst Addr) (float64, error) {
	ps, ok := f.ports[src]
	if !ok {
		return 0, fmt.Errorf("netsim: source %q not attached", src)
	}
	pd, ok := f.ports[dst]
	if !ok {
		return 0, fmt.Errorf("netsim: destination %q not attached", dst)
	}
	return f.effectiveBandwidth(ps, pd), nil
}

// ClusterBandwidth reports the raw profile bandwidth between two clusters
// (the same cluster gives the intra-cluster profile).
func (f *Fabric) ClusterBandwidth(a, b string) float64 {
	if a == b {
		if prof, ok := f.clusters[a]; ok {
			return prof.Bandwidth
		}
		return 0
	}
	return f.inter.Bandwidth
}

// Delay computes the one-way delay for a packet of size bytes between two
// attached addresses, including para-virt port overheads.
func (f *Fabric) Delay(src, dst Addr, size int) (sim.Time, error) {
	ps, ok := f.ports[src]
	if !ok {
		return 0, fmt.Errorf("netsim: source %q not attached", src)
	}
	pd, ok := f.ports[dst]
	if !ok {
		return 0, fmt.Errorf("netsim: destination %q not attached", dst)
	}
	return f.delay(ps, pd, size), nil
}

func (f *Fabric) delay(src, dst *Port, size int) sim.Time {
	prof := f.profileFor(src, dst)
	d := prof.Latency + src.ExtraLatency + dst.ExtraLatency
	if size > 0 {
		if bw := f.effectiveBandwidth(src, dst); bw > 0 {
			d += sim.Time(float64(size) / bw * float64(sim.Second))
		}
	}
	return d
}

func (f *Fabric) effectiveBandwidth(src, dst *Port) float64 {
	bw := f.profileFor(src, dst).Bandwidth
	for _, factor := range []float64{src.BandwidthFactor, dst.BandwidthFactor} {
		if factor > 0 {
			bw *= factor
		}
	}
	return bw
}

// Send puts a packet on the wire. Delivery (or loss) is resolved as a
// future event. The sender's NIC serialises transmissions (packets queue
// behind earlier ones from the same port), so a burst of segments honours
// the link bandwidth and stays in order. The in-flight leg is a pooled
// delivery record with a pre-bound callback — no closure is captured per
// packet, so the per-packet path allocates nothing in steady state.
//
// Accounting: Sent/Bytes count at the moment the packet clears the
// send-side checks and claims wire time; refused packets (down sender,
// drop rule, unknown destination, random loss) count their payload in
// BytesDropped instead. A destination that goes down mid-flight still
// loses the packet — "packets to a saved VM are lost on the wire" — but
// that loss is delivery-side: the bytes were genuinely transmitted.
//
//dvc:hotpath
func (f *Fabric) Send(pkt Packet) {
	src, ok := f.ports[pkt.Src]
	if !ok || !src.up {
		// A down/detached sender cannot transmit at all.
		f.stats.DroppedDown++
		f.stats.BytesDropped += uint64(pkt.Size)
		f.traceDrop(pkt, "sender-down")
		return
	}
	if f.DropRule != nil && f.DropRule(pkt) {
		f.stats.DroppedLoss++
		f.stats.BytesDropped += uint64(pkt.Size)
		f.traceDrop(pkt, "rule")
		return
	}
	dst, ok := f.ports[pkt.Dst]
	if !ok {
		f.stats.DroppedNoDest++
		f.stats.BytesDropped += uint64(pkt.Size)
		f.traceDrop(pkt, "no-dest")
		return
	}
	prof := f.profileFor(src, dst)
	if prof.LossProb > 0 && f.kernel.Rand().Float64() < prof.LossProb {
		f.stats.DroppedLoss++
		f.stats.BytesDropped += uint64(pkt.Size)
		f.traceDrop(pkt, "loss")
		return
	}
	f.stats.Sent++
	f.stats.Bytes += uint64(pkt.Size)
	// NIC serialisation: the packet finishes transmitting txTime after
	// the NIC frees up, then propagates for the latency term.
	var txTime sim.Time
	if pkt.Size > 0 {
		if bw := f.effectiveBandwidth(src, dst); bw > 0 {
			txTime = sim.Time(float64(pkt.Size) / bw * float64(sim.Second))
		}
	}
	start := f.kernel.Now()
	if src.busyUntil > start {
		start = src.busyUntil
	}
	depart := start + txTime
	src.busyUntil = depart
	arrive := depart + prof.Latency + src.ExtraLatency + dst.ExtraLatency
	rec := f.getDelivery()
	rec.pkt = pkt
	f.kernel.At(arrive, rec.run)
}

// delivery is one pooled in-flight packet record. run is bound to the
// record once, at pool-entry creation; scheduling a delivery stores that
// same func value in the kernel's event slab, so neither the fabric nor
// the kernel allocates per packet once the pool is warm.
type delivery struct {
	f    *Fabric
	pkt  Packet
	next *delivery // free-list link
	run  func()
}

// getDelivery pops a record off the free list, minting one (and its bound
// callback) only when the pool is dry.
//
//dvc:hotpath
func (f *Fabric) getDelivery() *delivery {
	if rec := f.freeDeliveries; rec != nil {
		f.freeDeliveries = rec.next
		rec.next = nil
		return rec
	}
	//lint:allow noalloc minted once per pool entry, only when the free list is dry
	rec := &delivery{f: f}
	rec.run = rec.deliver //lint:allow noalloc the bound callback is created once here and reused for every flight
	return rec
}

// deliver resolves one arrival. The record is recycled before the handler
// runs: handlers routinely transmit replies, and the reply's in-flight leg
// then reuses this very record.
//
//dvc:hotpath
func (rec *delivery) deliver() {
	f, pkt := rec.f, rec.pkt
	rec.pkt = Packet{} // drop payload reference for the GC
	rec.next = f.freeDeliveries
	f.freeDeliveries = rec

	p, ok := f.ports[pkt.Dst]
	if !ok {
		f.stats.DroppedNoDest++
		f.traceDrop(pkt, "dest-detached")
		return
	}
	if !p.up || p.handler == nil {
		f.stats.DroppedDown++
		f.traceDrop(pkt, "dest-down")
		return
	}
	f.stats.Delivered++
	p.handler(pkt)
}
