package netsim

import (
	"testing"
	"testing/quick"

	"dvc/internal/sim"
)

func newTestFabric(t *testing.T) (*sim.Kernel, *Fabric) {
	t.Helper()
	k := sim.NewKernel(1)
	f := NewFabric(k)
	f.AddCluster("a", LinkProfile{Latency: 50 * sim.Microsecond, Bandwidth: 100e6})
	f.AddCluster("b", LinkProfile{Latency: 50 * sim.Microsecond, Bandwidth: 100e6})
	f.SetInterCluster(LinkProfile{Latency: 500 * sim.Microsecond, Bandwidth: 50e6})
	return k, f
}

func TestDeliveryWithinCluster(t *testing.T) {
	k, f := newTestFabric(t)
	var got []Packet
	f.Attach("n1", "a", nil)
	f.Attach("n2", "a", func(p Packet) { got = append(got, p) })
	f.Send(Packet{Src: "n1", Dst: "n2", Size: 0, Payload: "hello"})
	k.Run()
	if len(got) != 1 || got[0].Payload != "hello" {
		t.Fatalf("got %v, want one hello packet", got)
	}
	if k.Now() != 50*sim.Microsecond {
		t.Fatalf("delivery at %v, want 50us", k.Now())
	}
}

func TestSerializationDelay(t *testing.T) {
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	f.Attach("n2", "a", func(Packet) {})
	f.Send(Packet{Src: "n1", Dst: "n2", Size: 1_000_000}) // 1MB at 100MB/s = 10ms
	k.Run()
	want := 50*sim.Microsecond + 10*sim.Millisecond
	if k.Now() != want {
		t.Fatalf("delivery at %v, want %v", k.Now(), want)
	}
}

func TestInterClusterUsesInterProfile(t *testing.T) {
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	f.Attach("n2", "b", func(Packet) {})
	f.Send(Packet{Src: "n1", Dst: "n2"})
	k.Run()
	if k.Now() != 500*sim.Microsecond {
		t.Fatalf("inter-cluster delivery at %v, want 500us", k.Now())
	}
}

func TestDownPortLosesPackets(t *testing.T) {
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	delivered := 0
	p2 := f.Attach("n2", "a", func(Packet) { delivered++ })
	p2.SetUp(false)
	f.Send(Packet{Src: "n1", Dst: "n2"})
	k.Run()
	if delivered != 0 {
		t.Fatal("down port received a packet")
	}
	if f.Stats().DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d, want 1", f.Stats().DroppedDown)
	}
}

func TestPortGoesDownMidFlight(t *testing.T) {
	// The loss decision for a paused destination happens at delivery time:
	// a packet already "on the wire" when the VM pauses is lost.
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	delivered := 0
	p2 := f.Attach("n2", "a", func(Packet) { delivered++ })
	f.Send(Packet{Src: "n1", Dst: "n2"})
	k.After(10*sim.Microsecond, func() { p2.SetUp(false) }) // before 50us delivery
	k.Run()
	if delivered != 0 {
		t.Fatal("packet delivered to port that went down mid-flight")
	}
}

func TestDownSenderCannotTransmit(t *testing.T) {
	k, f := newTestFabric(t)
	p1 := f.Attach("n1", "a", nil)
	delivered := 0
	f.Attach("n2", "a", func(Packet) { delivered++ })
	p1.SetUp(false)
	f.Send(Packet{Src: "n1", Dst: "n2"})
	k.Run()
	if delivered != 0 {
		t.Fatal("down sender transmitted")
	}
}

func TestUnknownDestinationCounted(t *testing.T) {
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	f.Send(Packet{Src: "n1", Dst: "ghost"})
	k.Run()
	if f.Stats().DroppedNoDest != 1 {
		t.Fatalf("DroppedNoDest = %d, want 1", f.Stats().DroppedNoDest)
	}
}

func TestDropRule(t *testing.T) {
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	delivered := 0
	f.Attach("n2", "a", func(Packet) { delivered++ })
	f.DropRule = func(p Packet) bool { return p.Payload == "cut" }
	f.Send(Packet{Src: "n1", Dst: "n2", Payload: "cut"})
	f.Send(Packet{Src: "n1", Dst: "n2", Payload: "keep"})
	k.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d packets, want 1", delivered)
	}
	if f.Stats().DroppedLoss != 1 {
		t.Fatalf("DroppedLoss = %d, want 1", f.Stats().DroppedLoss)
	}
}

func TestRandomLoss(t *testing.T) {
	k := sim.NewKernel(2)
	f := NewFabric(k)
	f.AddCluster("lossy", LinkProfile{Latency: sim.Microsecond, Bandwidth: 1e9, LossProb: 0.5})
	f.Attach("n1", "lossy", nil)
	delivered := 0
	f.Attach("n2", "lossy", func(Packet) { delivered++ })
	const n = 2000
	for i := 0; i < n; i++ {
		f.Send(Packet{Src: "n1", Dst: "n2"})
	}
	k.Run()
	if delivered < n/3 || delivered > 2*n/3 {
		t.Fatalf("delivered %d of %d at 50%% loss", delivered, n)
	}
}

func TestMoveKeepsAddress(t *testing.T) {
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	delivered := 0
	p2 := f.Attach("vm1", "a", func(Packet) { delivered++ })
	if err := p2.Move("b"); err != nil {
		t.Fatal(err)
	}
	f.Send(Packet{Src: "n1", Dst: "vm1"})
	k.Run()
	if delivered != 1 {
		t.Fatal("packet not delivered after move")
	}
	if k.Now() != 500*sim.Microsecond {
		t.Fatalf("moved port should be reached via inter-cluster link, delivery at %v", k.Now())
	}
	if err := p2.Move("nope"); err == nil {
		t.Fatal("Move to unknown cluster should error")
	}
}

func TestDetach(t *testing.T) {
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	p2 := f.Attach("n2", "a", func(Packet) {})
	p2.Detach()
	if _, ok := f.Lookup("n2"); ok {
		t.Fatal("detached port still attached")
	}
	f.Send(Packet{Src: "n1", Dst: "n2"})
	k.Run()
	if f.Stats().DroppedNoDest != 1 {
		t.Fatal("send to detached port should count as no-dest")
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	_, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	f.Attach("n1", "a", nil)
}

func TestAttachUnknownClusterPanics(t *testing.T) {
	_, f := newTestFabric(t)
	defer func() {
		if recover() == nil {
			t.Fatal("attach to unknown cluster did not panic")
		}
	}()
	f.Attach("n1", "nope", nil)
}

func TestParaVirtOverheads(t *testing.T) {
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	p2 := f.Attach("n2", "a", func(Packet) {})
	p2.ExtraLatency = 30 * sim.Microsecond
	p2.BandwidthFactor = 0.5
	f.Send(Packet{Src: "n1", Dst: "n2", Size: 1_000_000})
	k.Run()
	// 50us + 30us + 1MB / (100MB/s * 0.5) = 80us + 20ms
	want := 80*sim.Microsecond + 20*sim.Millisecond
	if k.Now() != want {
		t.Fatalf("delivery at %v, want %v", k.Now(), want)
	}
}

func TestDelayQuery(t *testing.T) {
	_, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	f.Attach("n2", "b", nil)
	d, err := f.Delay("n1", "n2", 0)
	if err != nil || d != 500*sim.Microsecond {
		t.Fatalf("Delay = %v, %v", d, err)
	}
	if _, err := f.Delay("n1", "ghost", 0); err == nil {
		t.Fatal("Delay to unattached address should error")
	}
	if _, err := f.Delay("ghost", "n1", 0); err == nil {
		t.Fatal("Delay from unattached address should error")
	}
}

func TestStatsAccumulate(t *testing.T) {
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	f.Attach("n2", "a", func(Packet) {})
	for i := 0; i < 5; i++ {
		f.Send(Packet{Src: "n1", Dst: "n2", Size: 100})
	}
	k.Run()
	s := f.Stats()
	if s.Sent != 5 || s.Delivered != 5 || s.Bytes != 500 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestSendAccountingSkipsRefusedPackets pins the corrected accounting:
// packets refused before transmit (sender down, drop rule, unknown dest)
// must not count toward Sent/Bytes and must accrue BytesDropped instead.
func TestSendAccountingSkipsRefusedPackets(t *testing.T) {
	k, f := newTestFabric(t)
	p1 := f.Attach("n1", "a", nil)
	f.Attach("n2", "a", func(Packet) {})

	// Refused: unknown destination.
	f.Send(Packet{Src: "n1", Dst: "ghost", Size: 100})
	// Refused: drop rule.
	f.DropRule = func(p Packet) bool { return p.Payload == "cut" }
	f.Send(Packet{Src: "n1", Dst: "n2", Size: 200, Payload: "cut"})
	f.DropRule = nil
	// Refused: sender down.
	p1.SetUp(false)
	f.Send(Packet{Src: "n1", Dst: "n2", Size: 300})
	p1.SetUp(true)
	// Transmitted and delivered.
	f.Send(Packet{Src: "n1", Dst: "n2", Size: 400})
	k.Run()

	s := f.Stats()
	if s.Sent != 1 || s.Bytes != 400 {
		t.Fatalf("Sent=%d Bytes=%d, want 1/400 (refused packets leaked into transmit stats): %+v", s.Sent, s.Bytes, s)
	}
	if s.BytesDropped != 600 {
		t.Fatalf("BytesDropped = %d, want 600: %+v", s.BytesDropped, s)
	}
	if s.Delivered != 1 {
		t.Fatalf("Delivered = %d, want 1", s.Delivered)
	}
}

// TestDeliveryTimeDropStaysInBytes: a packet lost at delivery time (dest
// went down mid-flight) occupied the wire, so it stays in Sent/Bytes and
// does not accrue BytesDropped.
func TestDeliveryTimeDropStaysInBytes(t *testing.T) {
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	p2 := f.Attach("n2", "a", func(Packet) { t.Fatal("delivered to down port") })
	f.Send(Packet{Src: "n1", Dst: "n2", Size: 250})
	k.After(10*sim.Microsecond, func() { p2.SetUp(false) })
	k.Run()
	s := f.Stats()
	if s.Sent != 1 || s.Bytes != 250 {
		t.Fatalf("Sent=%d Bytes=%d, want 1/250 (wire occupancy must be counted)", s.Sent, s.Bytes)
	}
	if s.BytesDropped != 0 {
		t.Fatalf("BytesDropped = %d, want 0 for delivery-time loss", s.BytesDropped)
	}
	if s.DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d, want 1", s.DroppedDown)
	}
}

// Property: delay is monotonic in packet size and symmetric for ports in
// the same cluster with no per-port overhead.
func TestPropertyDelayMonotonicSymmetric(t *testing.T) {
	_, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	f.Attach("n2", "a", nil)
	check := func(a, b uint16) bool {
		small, _ := f.Delay("n1", "n2", int(min(a, b)))
		large, _ := f.Delay("n1", "n2", int(max(a, b)))
		fwd, _ := f.Delay("n1", "n2", int(a))
		rev, _ := f.Delay("n2", "n1", int(a))
		return small <= large && fwd == rev
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNICSerializationOrdersAndPaces(t *testing.T) {
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	var arrivals []sim.Time
	var order []any
	f.Attach("n2", "a", func(p Packet) {
		arrivals = append(arrivals, k.Now())
		order = append(order, p.Payload)
	})
	// A large packet followed immediately by a tiny one: without NIC
	// serialisation the tiny one would overtake.
	f.Send(Packet{Src: "n1", Dst: "n2", Size: 1_000_000, Payload: "big"})
	f.Send(Packet{Src: "n1", Dst: "n2", Size: 100, Payload: "small"})
	k.Run()
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("arrival order = %v, want [big small]", order)
	}
	// big departs at 10ms, arrives 10.05ms; small departs 10ms+1us,
	// arrives 10.051ms + 50us.
	if arrivals[0] != 10*sim.Millisecond+50*sim.Microsecond {
		t.Fatalf("big arrival at %v", arrivals[0])
	}
	if arrivals[1] <= arrivals[0] {
		t.Fatal("small packet overtook big packet")
	}
}

func TestNICIdleGapResetsQueue(t *testing.T) {
	k, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	var arrivals []sim.Time
	f.Attach("n2", "a", func(Packet) { arrivals = append(arrivals, k.Now()) })
	f.Send(Packet{Src: "n1", Dst: "n2", Size: 100_000}) // 1ms tx
	k.RunFor(100 * sim.Millisecond)                     // NIC long idle
	f.Send(Packet{Src: "n1", Dst: "n2", Size: 100_000})
	k.Run()
	want := sim.Millisecond + 50*sim.Microsecond
	if arrivals[0] != want {
		t.Fatalf("first arrival %v, want %v", arrivals[0], want)
	}
	if arrivals[1] != 100*sim.Millisecond+want {
		t.Fatalf("second arrival %v, want %v (no stale queueing)", arrivals[1], 100*sim.Millisecond+want)
	}
}

func TestProfiles(t *testing.T) {
	eth, ib := EthernetGigE(), InfinibandDDR()
	if ib.Latency >= eth.Latency {
		t.Fatal("InfiniBand latency should beat Ethernet")
	}
	if ib.Bandwidth <= eth.Bandwidth {
		t.Fatal("InfiniBand bandwidth should beat Ethernet")
	}
	if wan := InterClusterWAN(); wan.Latency <= eth.Latency {
		t.Fatal("inter-cluster latency should exceed intra-cluster")
	}
}

func TestPathAndClusterBandwidth(t *testing.T) {
	_, f := newTestFabric(t)
	f.Attach("n1", "a", nil)
	p2 := f.Attach("n2", "b", nil)
	bw, err := f.PathBandwidth("n1", "n2")
	if err != nil || bw != 50e6 {
		t.Fatalf("inter-cluster path bw %v, %v", bw, err)
	}
	p2.BandwidthFactor = 0.5
	bw, _ = f.PathBandwidth("n1", "n2")
	if bw != 25e6 {
		t.Fatalf("factored path bw %v", bw)
	}
	if _, err := f.PathBandwidth("n1", "ghost"); err == nil {
		t.Fatal("unattached destination accepted")
	}
	if _, err := f.PathBandwidth("ghost", "n1"); err == nil {
		t.Fatal("unattached source accepted")
	}
	if got := f.ClusterBandwidth("a", "a"); got != 100e6 {
		t.Fatalf("intra bandwidth %v", got)
	}
	if got := f.ClusterBandwidth("a", "b"); got != 50e6 {
		t.Fatalf("inter bandwidth %v", got)
	}
	if got := f.ClusterBandwidth("nope", "nope"); got != 0 {
		t.Fatalf("unknown cluster bandwidth %v", got)
	}
}
