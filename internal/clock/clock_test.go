package clock

import (
	"testing"
	"testing/quick"

	"dvc/internal/sim"
)

func TestPerfectClockTracksTrueTime(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewPerfect(k)
	k.RunFor(10 * sim.Second)
	if c.Read() != 10*sim.Second {
		t.Fatalf("perfect clock reads %v, want 10s", c.Read())
	}
	if c.Error() != 0 {
		t.Fatalf("perfect clock error %v, want 0", c.Error())
	}
}

func TestUnsyncedClockDrifts(t *testing.T) {
	k := sim.NewKernel(2)
	c := New(k, Config{InitialOffsetStd: 0, DriftPPMStd: 0})
	c.driftPPM = 100 // exactly 100 ppm fast
	k.RunFor(1000 * sim.Second)
	wantErr := sim.Time(1000 * sim.Second / 10000) // 100ppm of 1000s = 100ms
	if c.Error() != wantErr {
		t.Fatalf("drift error = %v, want %v", c.Error(), wantErr)
	}
}

func TestInitialOffsetIsRandomPerClock(t *testing.T) {
	k := sim.NewKernel(3)
	cfg := DefaultConfig()
	a, b := New(k, cfg), New(k, cfg)
	if a.Error() == b.Error() {
		t.Fatal("two clocks drew identical initial offsets")
	}
}

func TestNTPSyncBoundsError(t *testing.T) {
	k := sim.NewKernel(4)
	cfg := DefaultConfig()
	var clocks []*Clock
	for i := 0; i < 26; i++ {
		clocks = append(clocks, New(k, cfg))
	}
	d := NewNTPDaemon(k, DefaultNTPConfig(), clocks...)

	// Before sync: second-scale disagreement.
	before := d.MaxPairwiseError()
	if before < 100*sim.Millisecond {
		t.Fatalf("pre-sync max pairwise error suspiciously small: %v", before)
	}

	d.Start()
	k.RunFor(10 * 64 * sim.Second)
	d.Stop()

	if d.Syncs() < 10 {
		t.Fatalf("only %d syncs in 10 poll intervals", d.Syncs())
	}
	// Right after the last sync plus < one poll of drift: ms-scale.
	after := d.MaxPairwiseError()
	if after > 20*sim.Millisecond {
		t.Fatalf("post-sync max pairwise error = %v, want ms-scale", after)
	}
	if after == 0 {
		t.Fatal("post-sync error exactly zero; residual model not applied")
	}
}

func TestNTPDisciplineReducesDrift(t *testing.T) {
	k := sim.NewKernel(5)
	c := New(k, Config{InitialOffsetStd: sim.Second, DriftPPMStd: 0})
	c.driftPPM = 80
	d := NewNTPDaemon(k, NTPConfig{PollInterval: 16 * sim.Second, ResidualStd: sim.Millisecond, DisciplineFactor: 0.5}, c)
	d.Start()
	k.RunFor(20 * 16 * sim.Second)
	d.Stop()
	if got := c.DriftPPM(); got > 1e-3 {
		t.Fatalf("drift after discipline = %v ppm, want ~0", got)
	}
}

func TestAtHostTimeFiresWhenHostClockReads(t *testing.T) {
	k := sim.NewKernel(6)
	c := New(k, Config{InitialOffsetStd: 0, DriftPPMStd: 0})
	c.offset = 100 * sim.Millisecond // host reads 100ms ahead of true
	var hostAtFire, trueAtFire sim.Time
	c.AtHostTime(5*sim.Second, func() {
		hostAtFire = c.Read()
		trueAtFire = k.Now()
	})
	k.Run()
	if hostAtFire != 5*sim.Second {
		t.Fatalf("host clock at fire = %v, want 5s", hostAtFire)
	}
	if trueAtFire != 5*sim.Second-100*sim.Millisecond {
		t.Fatalf("true time at fire = %v, want 4.9s", trueAtFire)
	}
}

func TestAtHostTimeInPastFiresImmediately(t *testing.T) {
	k := sim.NewKernel(7)
	c := NewPerfect(k)
	k.RunFor(10 * sim.Second)
	fired := false
	c.AtHostTime(sim.Second, func() { fired = k.Now() == 10*sim.Second })
	k.Run()
	if !fired {
		t.Fatal("past host time did not fire immediately")
	}
}

// Property: TrueTimeForHostReading inverts Read for any drift/offset within
// physical ranges.
func TestPropertyHostTimeInversion(t *testing.T) {
	f := func(offMs int16, driftPPM int8, targetSec uint16) bool {
		k := sim.NewKernel(8)
		c := NewPerfect(k)
		c.offset = sim.Time(offMs) * sim.Millisecond
		c.driftPPM = float64(driftPPM)
		host := sim.Time(targetSec)*sim.Second + 10*sim.Second
		trueT := c.TrueTimeForHostReading(host)
		// Reading the clock at trueT must give host within 1us (integer
		// rounding of the ppm term).
		got := trueT + c.errorAt(trueT)
		diff := got - host
		if diff < 0 {
			diff = -diff
		}
		return diff <= sim.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: after a sync the absolute error is bounded by ~6 residual
// standard deviations for every clock.
func TestPropertyResidualBounded(t *testing.T) {
	k := sim.NewKernel(9)
	cfg := DefaultConfig()
	ntp := DefaultNTPConfig()
	for trial := 0; trial < 200; trial++ {
		c := New(k, cfg)
		d := NewNTPDaemon(k, ntp, c)
		d.SyncNow()
		e := c.Error()
		if e < 0 {
			e = -e
		}
		if e > 6*ntp.ResidualStd {
			t.Fatalf("trial %d: residual error %v exceeds 6 sigma (%v)", trial, e, 6*ntp.ResidualStd)
		}
	}
}

func TestMaxPairwiseErrorEmpty(t *testing.T) {
	k := sim.NewKernel(10)
	d := NewNTPDaemon(k, DefaultNTPConfig())
	if d.MaxPairwiseError() != 0 {
		t.Fatal("empty daemon pairwise error should be 0")
	}
}

func TestAddClockAfterCreation(t *testing.T) {
	k := sim.NewKernel(11)
	d := NewNTPDaemon(k, DefaultNTPConfig())
	c := New(k, DefaultConfig())
	d.Add(c)
	d.SyncNow()
	e := c.Error()
	if e < 0 {
		e = -e
	}
	if e > 20*sim.Millisecond {
		t.Fatalf("added clock not disciplined: error %v", e)
	}
}
