// Package clock models per-node hardware clocks and NTP clock discipline.
//
// Lazy Synchronous Checkpointing's NTP-based coordinator (paper §3.1)
// schedules a "vm save" at the same host-clock time on every node. Its
// correctness window is therefore set by the residual error NTP leaves
// behind — a few milliseconds (Mills, "Improved algorithms for
// synchronizing computer network clocks"). This package provides exactly
// that: a hardware clock with frequency error (drift) and phase error
// (offset), and a daemon that periodically disciplines it.
package clock

import (
	"dvc/internal/sim"
)

// Clock is one node's view of wall time. Reading it converts the
// simulation's true time into the node's (slightly wrong) host time.
type Clock struct {
	kernel *sim.Kernel

	// offset is the phase error at the time of the last adjustment:
	// host = true + offset + drift*(true-adjustedAt).
	offset     sim.Time
	driftPPM   float64 // frequency error in parts per million
	adjustedAt sim.Time
}

// Config describes how wrong a free-running clock is.
type Config struct {
	// InitialOffsetStd is the standard deviation of the phase error a
	// node boots with. Unsynchronised commodity nodes are typically off
	// by whole seconds.
	InitialOffsetStd sim.Time
	// DriftPPMStd is the standard deviation of the oscillator frequency
	// error. Commodity quartz is 10–100 ppm.
	DriftPPMStd float64
}

// DefaultConfig matches commodity cluster hardware circa 2007.
func DefaultConfig() Config {
	return Config{
		InitialOffsetStd: 2 * sim.Second,
		DriftPPMStd:      40,
	}
}

// New creates a clock with randomly drawn phase and frequency errors.
func New(k *sim.Kernel, cfg Config) *Clock {
	return &Clock{
		kernel:     k,
		offset:     sim.NormalSigned(k.Rand(), 0, cfg.InitialOffsetStd),
		driftPPM:   k.Rand().NormFloat64() * cfg.DriftPPMStd,
		adjustedAt: k.Now(),
	}
}

// NewPerfect returns a clock with no error, useful in tests.
func NewPerfect(k *sim.Kernel) *Clock {
	return &Clock{kernel: k}
}

// errorAt computes host-minus-true at true time t.
func (c *Clock) errorAt(t sim.Time) sim.Time {
	elapsed := float64(t - c.adjustedAt)
	return c.offset + sim.Time(elapsed*c.driftPPM/1e6)
}

// Read returns the node's current host-clock reading.
func (c *Clock) Read() sim.Time {
	return c.kernel.Now() + c.errorAt(c.kernel.Now())
}

// Error returns the current host-minus-true error.
func (c *Clock) Error() sim.Time { return c.errorAt(c.kernel.Now()) }

// DriftPPM returns the clock's current frequency error.
func (c *Clock) DriftPPM() float64 { return c.driftPPM }

// adjust rewrites the clock's phase and frequency error, anchoring the
// error model at the current instant.
func (c *Clock) adjust(offset sim.Time, driftPPM float64) {
	c.offset = offset
	c.driftPPM = driftPPM
	c.adjustedAt = c.kernel.Now()
}

// TrueTimeForHostReading returns the true simulation time at which this
// clock will read hostTime. This is how a node-local scheduler ("sleep
// until the host clock says T") maps onto the event queue. Because drift
// is a few tens of ppm, one Newton step on the (affine) error model is
// exact.
func (c *Clock) TrueTimeForHostReading(hostTime sim.Time) sim.Time {
	// host(t) = t + offset + drift*(t - adjustedAt); solve host(t) = hostTime.
	f := 1 + c.driftPPM/1e6
	t := float64(hostTime-c.offset) + c.driftPPM/1e6*float64(c.adjustedAt)
	return sim.Time(t / f)
}

// AtHostTime schedules fn to run when this node's host clock reads
// hostTime. If that host time has already passed, fn runs immediately
// (on the next dispatch).
func (c *Clock) AtHostTime(hostTime sim.Time, fn func()) sim.Handle {
	trueT := c.TrueTimeForHostReading(hostTime)
	if trueT < c.kernel.Now() {
		trueT = c.kernel.Now()
	}
	return c.kernel.At(trueT, fn)
}

// NTPDaemon periodically disciplines a set of clocks against true time,
// leaving a small residual error — the "few milliseconds" the paper
// relies on. Synchronising against true time rather than a modelled
// server hierarchy is deliberate: what LSC cares about is the residual
// error distribution, which is an input parameter here, not an emergent.
type NTPDaemon struct {
	kernel *sim.Kernel
	cfg    NTPConfig
	clocks []*Clock
	syncs  int
	timer  *sim.Timer // poll tick; rearmed in place each round
}

// NTPConfig tunes the discipline loop.
type NTPConfig struct {
	// PollInterval is how often the daemon steps/slews the clock.
	PollInterval sim.Time
	// ResidualStd is the standard deviation of the phase error remaining
	// immediately after a sync. Mills reports low-millisecond accuracy on
	// a LAN; 1–2 ms is typical for 2007-era clusters.
	ResidualStd sim.Time
	// DisciplineFactor scales down the frequency error at each sync,
	// modelling the PLL/FLL frequency correction. 1 = drift untouched,
	// 0 = drift eliminated after one sync.
	DisciplineFactor float64
}

// DefaultNTPConfig matches a LAN-synchronised 2007 cluster.
func DefaultNTPConfig() NTPConfig {
	return NTPConfig{
		PollInterval:     64 * sim.Second,
		ResidualStd:      1500 * sim.Microsecond,
		DisciplineFactor: 0.5,
	}
}

// NewNTPDaemon creates a daemon disciplining the given clocks. Call Start
// to begin the poll loop; the first sync happens immediately at Start.
func NewNTPDaemon(k *sim.Kernel, cfg NTPConfig, clocks ...*Clock) *NTPDaemon {
	return &NTPDaemon{kernel: k, cfg: cfg, clocks: clocks}
}

// Add registers another clock with the daemon.
func (d *NTPDaemon) Add(c *Clock) { d.clocks = append(d.clocks, c) }

// Start begins the poll loop with an immediate first sync.
func (d *NTPDaemon) Start() {
	if d.timer == nil {
		d.timer = sim.NewTimer(d.kernel, d.tick)
	}
	d.timer.Reset(0)
}

// Stop cancels the poll loop.
func (d *NTPDaemon) Stop() { d.timer.Stop() }

// Syncs reports how many sync rounds have completed.
func (d *NTPDaemon) Syncs() int { return d.syncs }

// SyncNow performs one synchronous discipline round outside the poll loop.
func (d *NTPDaemon) SyncNow() {
	for _, c := range d.clocks {
		residual := sim.NormalSigned(d.kernel.Rand(), 0, d.cfg.ResidualStd)
		c.adjust(residual, c.driftPPM*d.cfg.DisciplineFactor)
	}
	d.syncs++
}

func (d *NTPDaemon) tick() {
	d.SyncNow()
	d.timer.Reset(d.cfg.PollInterval)
}

// MaxPairwiseError returns the worst host-clock disagreement between any
// two of the daemon's clocks right now. LSC's save skew under the NTP
// coordinator is bounded by this plus local service delay.
func (d *NTPDaemon) MaxPairwiseError() sim.Time {
	if len(d.clocks) == 0 {
		return 0
	}
	lo, hi := d.clocks[0].Error(), d.clocks[0].Error()
	for _, c := range d.clocks[1:] {
		e := c.Error()
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	return hi - lo
}
