// Package storage models the reliable shared image store the paper
// requires ("requiring only a reliable storage system to save the state
// of each OS, and an image management capability to track the correct
// staging and restart of images").
//
// The store serves concurrent transfers with fair-shared aggregate
// bandwidth, optionally capped per transfer (client NIC/disk). A 26-VM
// coordinated save is therefore paced the way a real NFS/SAN head would
// pace it.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"dvc/internal/obs"
	"dvc/internal/payload"
	"dvc/internal/sim"
	"dvc/internal/vm"
)

// Config tunes the store.
type Config struct {
	// Bandwidth is the aggregate server bandwidth in bytes/s.
	Bandwidth float64
	// PerTransferCap bounds a single transfer's rate (client side);
	// zero means no cap.
	PerTransferCap float64
	// BaseLatency is per-operation setup latency.
	BaseLatency sim.Time
}

// DefaultConfig models a mid-2000s NFS server on gigabit with striped
// disks.
func DefaultConfig() Config {
	return Config{
		Bandwidth:      200e6,
		PerTransferCap: 80e6,
		BaseLatency:    5 * sim.Millisecond,
	}
}

// Object is one stored image with its metadata.
type Object struct {
	Key      string
	Size     int64
	Image    *vm.Image
	StoredAt sim.Time

	// Manifest is non-nil for delta objects (WriteDelta): the modelled
	// chunk references this object holds in the shared pool. A non-nil
	// manifest means the object is self-contained — restore needs no
	// prior generation.
	Manifest []payload.ChunkRef
	// blobs are the functional rope chunks, in order, for reassembly.
	blobs []payload.ChunkID
}

type transfer struct {
	seq       uint64 // admission order; deterministic tiebreak for completions
	remaining float64
	onDone    func()
}

// Store is the shared checkpoint repository.
type Store struct {
	kernel  *sim.Kernel
	cfg     Config
	objects map[string]*Object

	active     map[*transfer]struct{}
	nextSeq    uint64
	lastUpdate sim.Time
	pending    *sim.Timer // completion event; rearmed in place per reschedule

	// Content-addressed chunk pools shared by every delta object (see
	// delta.go); nil until the first WriteDelta.
	chunks map[payload.ChunkID]*chunkEntry
	blobs  map[payload.ChunkID]*blobEntry
	tracer *obs.Tracer

	// Stats
	Writes, Reads uint64
	DeltaWrites   uint64
	BytesWritten  uint64
	BytesRead     uint64
}

// New creates an empty store.
func New(k *sim.Kernel, cfg Config) *Store {
	return &Store{
		kernel:  k,
		cfg:     cfg,
		objects: make(map[string]*Object),
		active:  make(map[*transfer]struct{}),
	}
}

// rate returns the current per-transfer rate under fair sharing.
func (s *Store) rate() float64 {
	n := len(s.active)
	if n == 0 {
		return 0
	}
	r := s.cfg.Bandwidth / float64(n)
	if s.cfg.PerTransferCap > 0 && r > s.cfg.PerTransferCap {
		r = s.cfg.PerTransferCap
	}
	return r
}

// settle advances all active transfers to the current instant.
func (s *Store) settle() {
	now := s.kernel.Now()
	elapsed := float64(now-s.lastUpdate) / float64(sim.Second)
	if elapsed > 0 {
		r := s.rate()
		for t := range s.active {
			t.remaining -= r * elapsed
			if t.remaining < 0 {
				t.remaining = 0
			}
		}
	}
	s.lastUpdate = now
}

// reschedule points the completion event at the next finishing transfer.
func (s *Store) reschedule() {
	if len(s.active) == 0 {
		s.pending.Stop()
		return
	}
	if s.pending == nil {
		s.pending = sim.NewTimer(s.kernel, s.complete)
	}
	r := s.rate()
	var next *transfer
	for t := range s.active {
		// Min-reduction: eta below depends only on the minimum remaining
		// value, and ties produce an identical eta, so the identity of
		// `next` never reaches the kernel.
		if next == nil || t.remaining < next.remaining {
			next = t //lint:allow mapiter min-reduction; only the minimum value is used
		}
	}
	eta := sim.Time(next.remaining / r * float64(sim.Second))
	s.pending.Reset(eta)
}

// complete finishes every transfer that has drained.
func (s *Store) complete() {
	s.settle()
	var done []*transfer
	for t := range s.active {
		if t.remaining <= 0.5 { // sub-byte residue from float math
			done = append(done, t)
		}
	}
	// Completion callbacks schedule further events; fire them in admission
	// order, not randomized map order, so replay is exact.
	sort.Slice(done, func(i, j int) bool { return done[i].seq < done[j].seq })
	for _, t := range done {
		delete(s.active, t)
	}
	s.reschedule()
	for _, t := range done {
		if t.onDone != nil {
			t.onDone()
		}
	}
}

// begin starts a transfer of size bytes and calls onDone at completion.
func (s *Store) begin(size int64, onDone func()) {
	s.kernel.After(s.cfg.BaseLatency, func() {
		s.settle()
		t := &transfer{seq: s.nextSeq, remaining: float64(size), onDone: onDone}
		s.nextSeq++
		s.active[t] = struct{}{}
		s.reschedule()
	})
}

// Write stores an image under key, calling onDone when the transfer
// completes. Overwrites are allowed (new checkpoint generation under the
// same key replaces the old).
func (s *Store) Write(key string, img *vm.Image, onDone func()) {
	size := img.SizeBytes()
	s.Writes++
	s.BytesWritten += uint64(size)
	s.begin(size, func() {
		s.releaseObject(s.objects[key]) // overwriting a delta object frees its chunk refs
		s.objects[key] = &Object{Key: key, Size: size, Image: img, StoredAt: s.kernel.Now()}
		if onDone != nil {
			onDone()
		}
	})
}

// Read fetches an image by key, calling onDone with it (or an error) when
// the transfer completes. Missing keys fail after the base latency.
func (s *Store) Read(key string, onDone func(*vm.Image, error)) {
	obj, ok := s.objects[key]
	if !ok {
		s.kernel.After(s.cfg.BaseLatency, func() {
			onDone(nil, fmt.Errorf("storage: no object %q", key))
		})
		return
	}
	s.Reads++
	s.BytesRead += uint64(obj.Size)
	if obj.Manifest != nil {
		// Delta object: reassemble the functional image from the blob
		// pool now, at admission, so a Delete+GC racing the transfer
		// cannot invalidate the bytes mid-read.
		img, err := s.reassemble(obj)
		s.begin(obj.Size, func() { onDone(img, err) })
		return
	}
	s.begin(obj.Size, func() {
		onDone(obj.Image, nil)
	})
}

// Has reports whether key exists.
func (s *Store) Has(key string) bool {
	_, ok := s.objects[key]
	return ok
}

// Stat returns an object's metadata without a transfer.
func (s *Store) Stat(key string) (*Object, bool) {
	o, ok := s.objects[key]
	return o, ok
}

// Delete removes an object (metadata operation, instantaneous). Delta
// objects release their chunk references; the chunks themselves stay
// resident until GC runs, so in-flight reads that already reassembled
// keep their bytes.
func (s *Store) Delete(key string) {
	s.releaseObject(s.objects[key])
	delete(s.objects, key)
}

// Keys lists stored keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	var out []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// TotalBytes reports the sum of stored object sizes.
func (s *Store) TotalBytes() int64 {
	var n int64
	for _, o := range s.objects {
		n += o.Size
	}
	return n
}
