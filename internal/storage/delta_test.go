package storage

import (
	"hash/crc32"
	"testing"

	"dvc/internal/payload"
	"dvc/internal/sim"
	"dvc/internal/vm"
)

// deltaImg builds a delta image with an explicit page-table state. The
// functional payload is a small multi-chunk rope so reads exercise
// reassembly; the modelled side is entirely the versions slice.
func deltaImg(name string, lineage uint64, versions []uint32, parts ...[]byte) *vm.Image {
	data := payload.FromChunks(parts...)
	pt := &vm.PageTable{
		Lineage:   lineage,
		Template:  2 << 20,
		ChunkSize: 1 << 20,
		RAM:       int64(len(versions)) << 20,
		Versions:  append([]uint32(nil), versions...),
	}
	return &vm.Image{
		DomainName:   name,
		Addr:         "x",
		RAMBytes:     pt.RAM,
		Data:         data,
		Checksum:     crc32.ChecksumIEEE(data.Flatten()),
		Incremental:  true,
		PayloadBytes: 1,
		Pages:        pt,
	}
}

func TestWriteDeltaDedupAcrossEpochs(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 1000e6, 0)

	// Epoch 0: everything untouched. Distinct chunks are the two
	// template offsets and ONE shared zero identity — the six untouched
	// non-template chunks dedup against each other inside the manifest.
	v0 := make([]uint32, 8)
	info0, err := s.WriteDelta("ckpt/a/0", deltaImg("a", 1, v0, []byte("epoch0")), nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	wantSent0 := int64(3<<20) + 8*ManifestEntryBytes
	if info0.Logical != 8<<20 || info0.Sent != wantSent0 || info0.NewChunks != 3 || info0.DedupChunks != 5 {
		t.Fatalf("epoch0: %+v", info0)
	}

	// Epoch 1: two chunks dirtied — only they cross the wire.
	v1 := append([]uint32(nil), v0...)
	v1[0], v1[1] = 1, 1
	info1, err := s.WriteDelta("ckpt/a/1", deltaImg("a", 1, v1, []byte("epoch1")), nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	wantSent1 := int64(2<<20) + 8*ManifestEntryBytes
	if info1.Sent != wantSent1 || info1.NewChunks != 2 || info1.DedupChunks != 6 {
		t.Fatalf("epoch1: %+v", info1)
	}
	if r := info1.DedupRatio(); r < 3.9 {
		t.Fatalf("epoch1 dedup ratio %.2f, want ~4", r)
	}

	// Logical vs resident: 16 MiB of logical images, 5 distinct chunks
	// in the pool (2 template + 1 zero + 2 private).
	if s.TotalBytes() != 16<<20 {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}
	if s.UniqueBytes() != 5<<20 {
		t.Fatalf("UniqueBytes = %d", s.UniqueBytes())
	}
	if s.DeltaWrites != 2 || s.BytesWritten != uint64(wantSent0+wantSent1) {
		t.Fatalf("stats: delta_writes=%d bytes=%d", s.DeltaWrites, s.BytesWritten)
	}
}

func TestWriteDeltaCrossVMDedup(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 1000e6, 0)
	v := make([]uint32, 8)
	if _, err := s.WriteDelta("ckpt/a/0", deltaImg("a", 1, v, []byte("a")), nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// A second untouched VM shares every template and zero chunk: its
	// first epoch costs manifest metadata only.
	infoB, err := s.WriteDelta("ckpt/b/0", deltaImg("b", 2, v, []byte("b")), nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if infoB.Sent != 8*ManifestEntryBytes || infoB.DedupChunks != 8 {
		t.Fatalf("cross-VM epoch: %+v", infoB)
	}
	// Once each VM dirties a chunk, the new chunks are private.
	va := append([]uint32(nil), v...)
	va[3] = 1
	infoA, err := s.WriteDelta("ckpt/a/1", deltaImg("a", 1, va, []byte("a1")), nil)
	if err != nil {
		t.Fatal(err)
	}
	infoB2, err := s.WriteDelta("ckpt/b/1", deltaImg("b", 2, va, []byte("b1")), nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if infoA.NewChunks != 1 || infoB2.NewChunks != 1 {
		t.Fatalf("private chunks deduped across VMs: a=%+v b=%+v", infoA, infoB2)
	}
}

func TestDeltaReadReassemblesByteIdentical(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 1000e6, 0)
	orig := deltaImg("a", 1, make([]uint32, 4), []byte("first chunk "), []byte("second"), []byte(" third"))
	if _, err := s.WriteDelta("ckpt/a/0", orig, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	var got *vm.Image
	var gotErr error
	s.Read("ckpt/a/0", func(i *vm.Image, err error) { got, gotErr = i, err })
	k.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if !got.Data.Equal(orig.Data) {
		t.Fatal("reassembled image differs from the written one")
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
	if got.Pages == nil || got.Pages.Lineage != 1 {
		t.Fatalf("reassembled image lost its page table: %+v", got.Pages)
	}
}

func TestWriteDeltaRequiresPages(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 1000e6, 0)
	if _, err := s.WriteDelta("x", img("a", 100), nil); err == nil {
		t.Fatal("WriteDelta accepted an image without a page table")
	}
}

func TestDeleteReleasesChunksAndGCReclaims(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 1000e6, 0)
	v0 := make([]uint32, 8)
	v1 := append([]uint32(nil), v0...)
	v1[0] = 1
	s.WriteDelta("ckpt/a/0", deltaImg("a", 1, v0, []byte("e0")), nil)
	s.WriteDelta("ckpt/a/1", deltaImg("a", 1, v1, []byte("e1")), nil)
	k.Run()

	// Epoch 0's chunks are all still referenced by epoch 1 except the
	// boot-state version of chunk 0.
	s.Delete("ckpt/a/0")
	chunks, bytes := s.GC()
	if chunks != 1 || bytes != 1<<20 {
		t.Fatalf("GC after deleting epoch0: %d chunks, %d bytes", chunks, bytes)
	}
	// Dropping the last generation frees the pool entirely: the other
	// template chunk, the shared zero chunk, and the private chunk.
	s.Delete("ckpt/a/1")
	chunks, _ = s.GC()
	if chunks != 3 || s.UniqueBytes() != 0 {
		t.Fatalf("GC after deleting epoch1: %d chunks, unique=%d", chunks, s.UniqueBytes())
	}
	// Repeat deletes and GC runs are no-ops, not refcount corruption.
	s.Delete("ckpt/a/1")
	if chunks, bytes = s.GC(); chunks != 0 || bytes != 0 {
		t.Fatalf("idempotent GC reclaimed %d chunks", chunks)
	}
}

// TestDeleteDuringInFlightDelta is the retention-vs-transfer audit: a
// prior generation deleted (and the pool GCed) while a new epoch's
// transfer is still in flight must not strand the in-flight write —
// its chunk references are pinned at admission.
func TestDeleteDuringInFlightDelta(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 10e6, 0) // slow store: transfers stay in flight
	v0 := make([]uint32, 8)
	v0[2] = 1 // epoch 0 has a private chunk of its own
	info0, _ := s.WriteDelta("ckpt/a/0", deltaImg("a", 1, v0, []byte("e0")), nil)
	k.Run()

	v1 := append([]uint32(nil), v0...)
	v1[2] = 2
	done := false
	info1, err := s.WriteDelta("ckpt/a/1", deltaImg("a", 1, v1, []byte("e1")), func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	// Retention fires mid-transfer: drop the old generation and GC. The
	// only reclaimable chunk is epoch 0's superseded private version —
	// everything the in-flight write references was pinned at admission
	// and must survive.
	s.Delete("ckpt/a/0")
	if chunks, bytes := s.GC(); chunks != 1 || bytes != 1<<20 {
		t.Fatalf("mid-flight GC reclaimed %d chunks (%d bytes), want only the stale private chunk", chunks, bytes)
	}
	k.Run()
	if !done {
		t.Fatal("in-flight delta write never completed")
	}
	// The surviving object reads back intact.
	var got *vm.Image
	var gotErr error
	s.Read("ckpt/a/1", func(i *vm.Image, err error) { got, gotErr = i, err })
	k.Run()
	if gotErr != nil || got == nil {
		t.Fatalf("read after retention race: %v", gotErr)
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
	if s.TotalBytes() != info1.Logical {
		t.Fatalf("TotalBytes %d after retention, want %d", s.TotalBytes(), info1.Logical)
	}
	if s.BytesWritten != uint64(info0.Sent+info1.Sent) {
		t.Fatalf("BytesWritten %d corrupted by retention race", s.BytesWritten)
	}
	// Every surviving chunk is referenced by the live generation.
	if chunks, _ := s.GC(); chunks != 0 {
		t.Fatalf("post-completion GC reclaimed %d chunks, want 0", chunks)
	}
}

func TestOverwriteDeltaReleasesPriorGeneration(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 1000e6, 0)
	v0 := make([]uint32, 4)
	v1 := []uint32{1, 1, 0, 0}
	s.WriteDelta("ckpt/a", deltaImg("a", 1, v0, []byte("gen0")), nil)
	k.Run()
	s.WriteDelta("ckpt/a", deltaImg("a", 1, v1, []byte("gen1")), nil)
	k.Run()
	// Gen0's boot versions of chunks 0 and 1 are unreferenced now.
	if chunks, bytes := s.GC(); chunks != 2 || bytes != 2<<20 {
		t.Fatalf("GC after overwrite: %d chunks, %d bytes", chunks, bytes)
	}
	var got *vm.Image
	s.Read("ckpt/a", func(i *vm.Image, err error) { got = i })
	k.Run()
	if got == nil || got.Data.Flatten()[0] != 'g' || string(got.Data.Flatten()) != "gen1" {
		t.Fatalf("overwrite left stale data: %q", got.Data.Flatten())
	}
}
