package storage

import (
	"testing"

	"dvc/internal/sim"
	"dvc/internal/vm"
)

func img(name string, size int64) *vm.Image {
	return &vm.Image{DomainName: name, Addr: "x", RAMBytes: size}
}

func newStore(k *sim.Kernel, bw, cap float64) *Store {
	return New(k, Config{Bandwidth: bw, PerTransferCap: cap, BaseLatency: sim.Millisecond})
}

func TestSingleWriteTiming(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 100e6, 0)
	var doneAt sim.Time
	s.Write("a", img("a", 100_000_000), func() { doneAt = k.Now() })
	k.Run()
	// 100MB at 100MB/s = 1s + 1ms latency.
	want := sim.Second + sim.Millisecond
	if doneAt != want {
		t.Fatalf("write done at %v, want %v", doneAt, want)
	}
	if !s.Has("a") {
		t.Fatal("object missing after write")
	}
}

func TestPerTransferCap(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 1000e6, 50e6)
	var doneAt sim.Time
	s.Write("a", img("a", 100_000_000), func() { doneAt = k.Now() })
	k.Run()
	// Capped at 50MB/s: 2s.
	want := 2*sim.Second + sim.Millisecond
	if doneAt != want {
		t.Fatalf("capped write done at %v, want %v", doneAt, want)
	}
}

func TestFairSharing(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 100e6, 0)
	var t1, t2 sim.Time
	s.Write("a", img("a", 100_000_000), func() { t1 = k.Now() })
	s.Write("b", img("b", 100_000_000), func() { t2 = k.Now() })
	k.Run()
	// Two equal transfers sharing 100MB/s: both finish ~2s.
	if t1 < 1900*sim.Millisecond || t1 > 2100*sim.Millisecond {
		t.Fatalf("first shared write at %v, want ~2s", t1)
	}
	if t2 < 1900*sim.Millisecond || t2 > 2100*sim.Millisecond {
		t.Fatalf("second shared write at %v, want ~2s", t2)
	}
}

func TestShortTransferFreesBandwidth(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 100e6, 0)
	var tBig sim.Time
	s.Write("big", img("big", 100_000_000), func() { tBig = k.Now() })
	s.Write("small", img("small", 10_000_000), nil)
	k.Run()
	// small: shares 50MB/s, finishes at 0.2s having consumed 10MB.
	// big: 10MB done at 0.2s, remaining 90MB at 100MB/s -> 1.1s total.
	if tBig < 1050*sim.Millisecond || tBig > 1150*sim.Millisecond {
		t.Fatalf("big write at %v, want ~1.1s", tBig)
	}
}

func TestReadRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 100e6, 0)
	s.Write("ckpt/vm0", img("vm0", 50_000_000), nil)
	k.Run()
	var got *vm.Image
	var gotErr error
	start := k.Now()
	s.Read("ckpt/vm0", func(i *vm.Image, err error) { got, gotErr = i, err })
	k.Run()
	if gotErr != nil || got == nil || got.DomainName != "vm0" {
		t.Fatalf("read: img=%v err=%v", got, gotErr)
	}
	if elapsed := k.Now() - start; elapsed < 500*sim.Millisecond {
		t.Fatalf("read charged only %v for 50MB", elapsed)
	}
}

func TestReadMissingKeyErrors(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 100e6, 0)
	var gotErr error
	called := false
	s.Read("nope", func(i *vm.Image, err error) { called, gotErr = true, err })
	k.Run()
	if !called || gotErr == nil {
		t.Fatal("missing key should error via callback")
	}
}

func TestOverwriteReplaces(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 1000e6, 0)
	s.Write("key", img("gen1", 1000), nil)
	k.Run()
	s.Write("key", img("gen2", 2000), nil)
	k.Run()
	o, ok := s.Stat("key")
	if !ok || o.Image.DomainName != "gen2" || o.Size != 2000 {
		t.Fatalf("overwrite failed: %+v", o)
	}
}

func TestKeysPrefix(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 1000e6, 0)
	for _, key := range []string{"job1/vm0", "job1/vm1", "job2/vm0"} {
		s.Write(key, img(key, 10), nil)
	}
	k.Run()
	got := s.Keys("job1/")
	if len(got) != 2 || got[0] != "job1/vm0" || got[1] != "job1/vm1" {
		t.Fatalf("Keys(job1/) = %v", got)
	}
	if len(s.Keys("")) != 3 {
		t.Fatal("Keys(\"\") should list all")
	}
}

func TestDeleteAndTotal(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 1000e6, 0)
	s.Write("a", img("a", 100), nil)
	s.Write("b", img("b", 200), nil)
	k.Run()
	if s.TotalBytes() != 300 {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}
	s.Delete("a")
	if s.Has("a") || s.TotalBytes() != 200 {
		t.Fatal("delete failed")
	}
}

func TestManyConcurrentTransfersAllComplete(t *testing.T) {
	k := sim.NewKernel(1)
	s := newStore(k, 200e6, 80e6)
	done := 0
	const n = 26
	for i := 0; i < n; i++ {
		s.Write(string(rune('a'+i)), img("vm", 1<<30), func() { done++ })
	}
	k.Run()
	if done != n {
		t.Fatalf("%d of %d transfers completed", done, n)
	}
	// 26 GiB at 200MB/s aggregate ≈ 140s.
	if k.Now() < 130*sim.Second || k.Now() > 150*sim.Second {
		t.Fatalf("26-way save took %v, want ~140s", k.Now())
	}
	if s.Writes != n || s.BytesWritten != n<<30 {
		t.Fatalf("stats: writes=%d bytes=%d", s.Writes, s.BytesWritten)
	}
}
