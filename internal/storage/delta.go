package storage

import (
	"fmt"
	"sort"

	"dvc/internal/obs"
	"dvc/internal/payload"
	"dvc/internal/vm"
)

// Content-addressed delta path: WriteDelta stores an image as a chunk
// manifest against a refcounted pool shared by every key in the store.
// Chunks the pool already holds cost manifest metadata only — the
// modelled wire bytes of an epoch are its genuinely new chunks. The
// pool is two-level:
//
//   - modelled page chunks, keyed by the derived identities in
//     Image.Pages (see vm.PageTable): these drive every observable
//     byte count (Sent, dedup stats, GC) and replay deterministically;
//   - functional blobs, keyed by the content hash of the image's real
//     rope chunks: these let Read reassemble a byte-identical image
//     and are never traced (their sizes depend on encoding details).

// ManifestEntryBytes is the modelled wire cost of one manifest entry:
// a 32-byte chunk identity, an 8-byte length, and framing slack. Even a
// fully deduplicated epoch pays this metadata per chunk of guest RAM.
const ManifestEntryBytes = 48

// chunkEntry is one modelled page chunk in the shared pool.
type chunkEntry struct {
	size int64
	refs int
}

// blobEntry is one functional rope chunk in the shared pool.
type blobEntry struct {
	data []byte
	refs int
}

// DeltaInfo summarises one WriteDelta: how many modelled bytes the
// manifest covers, how many actually crossed the wire, and the chunk
// dedup split.
type DeltaInfo struct {
	Logical     int64 // bytes the manifest describes (all of guest RAM)
	Sent        int64 // new chunk bytes + manifest metadata
	Chunks      int   // manifest length
	DedupChunks int   // chunks the pool already held
	NewChunks   int   // chunks transferred
}

// DedupRatio returns Logical/Sent (1 when nothing was saved).
func (d DeltaInfo) DedupRatio() float64 {
	if d.Sent <= 0 {
		return 1
	}
	return float64(d.Logical) / float64(d.Sent)
}

// SetTracer attaches an observability tracer (nil disables). The store
// feeds registry counters under store.delta.* and store.gc.*.
func (s *Store) SetTracer(t *obs.Tracer) { s.tracer = t }

// ensurePools lazily allocates the chunk pools so plain full-image
// stores pay nothing for the delta path.
func (s *Store) ensurePools() {
	if s.chunks == nil {
		s.chunks = make(map[payload.ChunkID]*chunkEntry)
		s.blobs = make(map[payload.ChunkID]*blobEntry)
	}
}

// pinManifest takes one reference on every chunk in the manifest,
// admitting chunks the pool has not seen, and returns the transfer
// summary. References are taken at admission — before the simulated
// transfer completes — so a concurrent Delete of a prior generation can
// never let GC reclaim chunks an in-flight write depends on.
func (s *Store) pinManifest(manifest []payload.ChunkRef) DeltaInfo {
	info := DeltaInfo{Chunks: len(manifest)}
	for _, ref := range manifest {
		info.Logical += ref.Bytes
		if e, ok := s.chunks[ref.ID]; ok {
			e.refs++
			info.DedupChunks++
			continue
		}
		s.chunks[ref.ID] = &chunkEntry{size: ref.Bytes, refs: 1}
		info.NewChunks++
		info.Sent += ref.Bytes
	}
	info.Sent += int64(len(manifest)) * ManifestEntryBytes
	return info
}

// releaseManifest drops one reference per manifest chunk. Entries stay
// resident at zero references until GC runs.
func (s *Store) releaseManifest(manifest []payload.ChunkRef) {
	for _, ref := range manifest {
		if e, ok := s.chunks[ref.ID]; ok && e.refs > 0 {
			e.refs--
		}
	}
}

// pinBlobs admits the image's functional rope chunks into the blob pool
// and returns their identities in rope order.
func (s *Store) pinBlobs(data payload.Bytes) []payload.ChunkID {
	chunks := data.Chunks()
	ids := make([]payload.ChunkID, 0, len(chunks))
	for _, c := range chunks {
		id := payload.ChunkIDOf(c)
		if e, ok := s.blobs[id]; ok {
			e.refs++
		} else {
			s.blobs[id] = &blobEntry{data: c, refs: 1}
		}
		ids = append(ids, id)
	}
	return ids
}

func (s *Store) releaseBlobs(ids []payload.ChunkID) {
	for _, id := range ids {
		if e, ok := s.blobs[id]; ok && e.refs > 0 {
			e.refs--
		}
	}
}

// releaseObject drops the pool references a stored object holds (no-op
// for plain full-image objects).
func (s *Store) releaseObject(o *Object) {
	if o == nil || o.Manifest == nil {
		return
	}
	s.releaseManifest(o.Manifest)
	s.releaseBlobs(o.blobs)
}

// WriteDelta stores a delta image under key, transferring only the
// chunks the store does not already hold. The image must carry a page
// table (vm.CaptureDeltaImage); the returned DeltaInfo is computed at
// admission, before the transfer completes. Overwrites release the
// prior generation's chunk references at completion, exactly when the
// new object replaces it.
func (s *Store) WriteDelta(key string, img *vm.Image, onDone func()) (DeltaInfo, error) {
	if img.Pages == nil {
		return DeltaInfo{}, fmt.Errorf("storage: WriteDelta %q: image has no page table", key)
	}
	s.ensurePools()
	manifest := img.Pages.AppendManifest(nil)
	info := s.pinManifest(manifest)
	blobs := s.pinBlobs(img.Data)

	// The stored object keeps the image metadata but not the rope: Read
	// reassembles the bytes from the blob pool, proving the manifest
	// path is functionally complete.
	meta := *img
	meta.Data = payload.Bytes{}

	s.DeltaWrites++
	s.BytesWritten += uint64(info.Sent)
	s.tracer.Inc("store.delta.writes", 1)
	s.tracer.Inc("store.delta.logical_bytes", float64(info.Logical))
	s.tracer.Inc("store.delta.sent_bytes", float64(info.Sent))
	s.tracer.Inc("store.delta.dedup_chunks", float64(info.DedupChunks))

	s.begin(info.Sent, func() {
		s.releaseObject(s.objects[key])
		s.objects[key] = &Object{
			Key:      key,
			Size:     info.Logical,
			Image:    &meta,
			StoredAt: s.kernel.Now(),
			Manifest: manifest,
			blobs:    blobs,
		}
		if onDone != nil {
			onDone()
		}
	})
	return info, nil
}

// reassemble rebuilds a delta object's image from the blob pool. Done
// at read admission: once the rope references the blob slices, a
// concurrent Delete+GC cannot pull the bytes out from under the read.
func (s *Store) reassemble(o *Object) (*vm.Image, error) {
	parts := make([][]byte, len(o.blobs))
	for i, id := range o.blobs {
		e, ok := s.blobs[id]
		if !ok {
			return nil, fmt.Errorf("storage: object %q references missing blob %s", o.Key, id)
		}
		parts[i] = e.data
	}
	img := *o.Image
	img.Data = payload.FromChunks(parts...)
	if err := img.Verify(); err != nil {
		return nil, fmt.Errorf("storage: object %q: %w", o.Key, err)
	}
	return &img, nil
}

// GC reclaims every pool chunk whose reference count has dropped to
// zero and reports the modelled page chunks and bytes freed. Iteration
// is in sorted chunk-identity order, so reclamation is deterministic.
func (s *Store) GC() (chunks int, bytes int64) {
	dead := make([]payload.ChunkID, 0, 8)
	for id, e := range s.chunks {
		if e.refs == 0 {
			dead = append(dead, id)
		}
	}
	sort.Slice(dead, func(i, j int) bool {
		return string(dead[i][:]) < string(dead[j][:])
	})
	for _, id := range dead {
		bytes += s.chunks[id].size
		delete(s.chunks, id)
	}
	chunks = len(dead)
	deadBlobs := make([]payload.ChunkID, 0, 8)
	for id, e := range s.blobs {
		if e.refs == 0 {
			deadBlobs = append(deadBlobs, id)
		}
	}
	sort.Slice(deadBlobs, func(i, j int) bool {
		return string(deadBlobs[i][:]) < string(deadBlobs[j][:])
	})
	for _, id := range deadBlobs {
		delete(s.blobs, id)
	}
	s.tracer.Inc("store.gc.chunks", float64(chunks))
	s.tracer.Inc("store.gc.bytes", float64(bytes))
	return chunks, bytes
}

// UniqueBytes reports the modelled bytes resident in the shared chunk
// pool — the deduplicated footprint backing every delta object. Compare
// with TotalBytes, which sums per-object logical sizes.
func (s *Store) UniqueBytes() int64 {
	var n int64
	for _, e := range s.chunks {
		n += e.size
	}
	return n
}
