// Package rm is the Torque/Moab-style resource manager and scheduler DVC
// integrates with. It runs a job trace against a site under one of two
// backends:
//
//   - Physical: jobs run natively on nodes. A node crash kills the job;
//     the only recovery is requeueing from scratch.
//   - DVC: jobs run in per-job virtual clusters with periodic LSC
//     checkpoints. A node crash costs only the work since the last
//     checkpoint, and the job resumes on any healthy nodes — the paper's
//     §1 claim that DVC lets "resource management software continue to
//     schedule jobs in the presence of node faults".
package rm

import (
	"fmt"
	"sort"

	"dvc/internal/core"
	"dvc/internal/guest"
	"dvc/internal/mpi"
	"dvc/internal/netsim"
	"dvc/internal/obs"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/tcp"
	"dvc/internal/vm"
	"dvc/internal/workload"
)

// Backend selects how jobs execute.
type Backend int

// Execution backends.
const (
	Physical Backend = iota
	DVC
)

func (b Backend) String() string {
	if b == Physical {
		return "physical"
	}
	return "dvc"
}

// JobState tracks a job through the queue.
type JobState int

// Job states.
const (
	Queued JobState = iota
	Starting
	Running
	Recovering
	Completed
	Failed
)

func (s JobState) String() string {
	switch s {
	case Queued:
		return "Queued"
	case Starting:
		return "Starting"
	case Running:
		return "Running"
	case Recovering:
		return "Recovering"
	case Completed:
		return "Completed"
	case Failed:
		return "Failed"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Config tunes the resource manager.
type Config struct {
	Backend Backend
	// CheckpointInterval enables periodic LSC checkpoints (DVC backend).
	CheckpointInterval sim.Time
	// RequeueOnFailure restarts failed jobs from scratch when no
	// checkpoint exists (or on the physical backend).
	RequeueOnFailure bool
	// MaxRequeues bounds restart loops.
	MaxRequeues int
	// VMRAM sizes DVC guests.
	VMRAM int64
	// Tick is the scheduler's polling period.
	Tick sim.Time
}

// DefaultConfig returns a sensible RM setup for the given backend.
func DefaultConfig(b Backend) Config {
	return Config{
		Backend:            b,
		CheckpointInterval: 2 * sim.Minute,
		RequeueOnFailure:   true,
		MaxRequeues:        10,
		VMRAM:              256 << 20,
		Tick:               sim.Second,
	}
}

// Job is one tracked job.
type Job struct {
	Spec     workload.JobSpec
	State    JobState
	Attempt  int
	SubmitAt sim.Time
	StartAt  sim.Time // first start
	EndAt    sim.Time
	// WastedTime accumulates run time thrown away by failures (full
	// reruns on physical; work since last checkpoint on DVC).
	WastedTime sim.Time

	// Execution state.
	nodes []*phys.Node
	// physical backend
	oses  []*guest.OS
	ports []*netsim.Port
	pids  []guest.PID
	// dvc backend
	vc          *core.VirtualCluster
	periodic    *core.Periodic
	lastGoodGen int // -1 = no checkpoint yet
	lastCkptAt  sim.Time
	attemptAt   sim.Time // start of current attempt
	claimedAt   sim.Time // when the current node claim began
	recovering  bool
}

// WaitTime is submission-to-first-start.
func (j *Job) WaitTime() sim.Time { return j.StartAt - j.SubmitAt }

// Turnaround is submission-to-completion.
func (j *Job) Turnaround() sim.Time { return j.EndAt - j.SubmitAt }

// RM is the resource manager.
type RM struct {
	kernel *sim.Kernel
	site   *phys.Site
	mgr    *core.Manager // nil on the physical backend
	coord  *core.Coordinator
	cfg    Config

	queue         []*Job
	running       []*Job
	done          []*Job
	notYetArrived int
	busyNodeTime  sim.Time // accumulated node-seconds of claimed time

	// Free-node index. Nodes are ranked by their position in the site's
	// ID-sorted listing; the heap yields free nodes in ID order without
	// rescanning (or re-sorting) the whole site each tick. Entries are
	// invalidated lazily: a crashed or re-claimed node stays in the heap
	// until popped and discarded, and OnRepair/unclaim push nodes back.
	// All slices are indexed by the node's dense site index, which is
	// stable across site growth; everything is rebuilt by syncNodes when
	// clusters are added.
	claimedBy []*Job  // node index -> claiming job (nil = unclaimed)
	rank      []int32 // node index -> position in ID-sorted order
	heap      []int32 // min-heap of node indices ordered by rank
	inHeap    []bool  // node index -> currently in heap
	scratch   []*phys.Node
	taken     []int32 // node index -> pass number that selected it
	pass      int32   // current schedule pass
	hooked    int     // nodes with OnRepair push-back hooks installed

	tickTimer *sim.Timer // scheduler tick; rearmed in place each pass
	stopped   bool
	tracer    *obs.Tracer
}

// New creates a resource manager. mgr and coord may be nil for the
// physical backend.
func New(k *sim.Kernel, site *phys.Site, mgr *core.Manager, coord *core.Coordinator, cfg Config) *RM {
	if cfg.Backend == DVC && (mgr == nil || coord == nil) {
		panic("rm: DVC backend requires a core.Manager and Coordinator")
	}
	return &RM{
		kernel: k,
		site:   site,
		mgr:    mgr,
		coord:  coord,
		cfg:    cfg,
	}
}

// Start begins the scheduler loop.
func (r *RM) Start() {
	if r.tickTimer == nil {
		r.tickTimer = sim.NewTimer(r.kernel, r.tick)
	}
	r.tickTimer.Reset(r.cfg.Tick)
}

// Stop halts the scheduler loop.
func (r *RM) Stop() {
	r.stopped = true
	r.tickTimer.Stop()
}

// SetTracer attaches an observability tracer (nil disables tracing). Job
// lifecycle transitions become rm.* events with the job id as the trace
// domain; native host stacks started by the physical backend inherit it.
func (r *RM) SetTracer(t *obs.Tracer) { r.tracer = t }

// trace emits one site-level job event.
func (r *RM) trace(typ obs.EventType, jobID, name string, kv ...obs.KV) {
	r.tracer.Emit(r.kernel.Now(), typ, "", jobID, name, kv...)
}

// SubmitTrace schedules a whole trace for submission at each job's
// arrival time. Jobs not yet arrived count against AllDone.
func (r *RM) SubmitTrace(trace []workload.JobSpec) {
	for _, spec := range trace {
		spec := spec
		r.notYetArrived++
		r.kernel.At(spec.Arrival, func() {
			r.notYetArrived--
			r.Submit(spec)
		})
	}
}

// Submit enqueues one job now.
func (r *RM) Submit(spec workload.JobSpec) {
	j := &Job{Spec: spec, State: Queued, SubmitAt: r.kernel.Now(), lastGoodGen: -1}
	r.queue = append(r.queue, j)
	r.trace(obs.EvRMSubmit, spec.ID, "submit", obs.Int("width", int64(spec.Width)))
	r.tracer.Inc("rm.submitted", 1)
}

// Jobs returns every job the RM has seen (done + running + queued).
func (r *RM) Jobs() []*Job {
	out := append([]*Job(nil), r.done...)
	out = append(out, r.running...)
	out = append(out, r.queue...)
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.ID < out[j].Spec.ID })
	return out
}

// AllDone reports whether every submitted (and trace-scheduled) job has
// finished.
func (r *RM) AllDone() bool {
	return r.notYetArrived == 0 && len(r.queue) == 0 && len(r.running) == 0
}

// Stats summarises completed work.
type Stats struct {
	Completed, Failed int
	Makespan          sim.Time
	TotalWaited       sim.Time
	TotalWasted       sim.Time
	// BusyNodeTime is node-seconds spent claimed by jobs (including
	// currently running claims up to now).
	BusyNodeTime sim.Time
}

// Utilization reports claimed node-time as a fraction of capacity over
// the elapsed window.
func (s Stats) Utilization(totalNodes int, elapsed sim.Time) float64 {
	if totalNodes <= 0 || elapsed <= 0 {
		return 0
	}
	return s.BusyNodeTime.Seconds() / (float64(totalNodes) * elapsed.Seconds())
}

// Stats computes summary statistics over finished jobs.
func (r *RM) Stats() Stats {
	var s Stats
	for _, j := range r.done {
		switch j.State {
		case Completed:
			s.Completed++
			if j.EndAt > s.Makespan {
				s.Makespan = j.EndAt
			}
		case Failed:
			s.Failed++
		}
		s.TotalWaited += j.WaitTime()
		s.TotalWasted += j.WastedTime
	}
	s.BusyNodeTime = r.busyNodeTime
	for _, j := range r.running {
		if len(j.nodes) > 0 {
			s.BusyNodeTime += (r.kernel.Now() - j.claimedAt) * sim.Time(len(j.nodes))
		}
	}
	return s
}

// syncNodes (re)builds the free-node index when the site has grown. It is
// called lazily from the scheduling paths, so clusters may be added at any
// point; node indices are stable, so existing claims survive a rebuild.
func (r *RM) syncNodes() {
	n := r.site.NodeCount()
	if len(r.rank) == n {
		return
	}
	sorted := r.site.Nodes()
	r.rank = make([]int32, n)
	for pos, nd := range sorted {
		r.rank[nd.Index()] = int32(pos)
	}
	old := r.claimedBy
	r.claimedBy = make([]*Job, n)
	copy(r.claimedBy, old)
	r.inHeap = make([]bool, n)
	r.heap = make([]int32, 0, n)
	r.scratch = make([]*phys.Node, 0, n)
	r.taken = make([]int32, n)
	for _, nd := range sorted {
		if r.claimedBy[nd.Index()] == nil {
			r.pushFree(int32(nd.Index()))
		}
	}
	for ; r.hooked < n; r.hooked++ {
		idx := int32(r.hooked)
		r.site.NodeAt(r.hooked).OnRepair(func() { r.pushFree(idx) })
	}
}

// pushFree adds a node to the free heap (no-op if already present). The
// backing array is preallocated by syncNodes and the inHeap dedup bounds
// occupancy at one entry per node, so the reslice never grows.
//
//dvc:hotpath
func (r *RM) pushFree(idx int32) {
	if len(r.inHeap) <= int(idx) || r.inHeap[idx] {
		return
	}
	r.inHeap[idx] = true
	i := len(r.heap)
	r.heap = r.heap[:i+1]
	r.heap[i] = idx
	for i > 0 {
		parent := (i - 1) / 2
		if r.rank[r.heap[parent]] <= r.rank[r.heap[i]] {
			break
		}
		r.heap[parent], r.heap[i] = r.heap[i], r.heap[parent]
		i = parent
	}
}

// popFree removes and returns the lowest-ID free node, discarding stale
// entries (nodes that crashed or were claimed while queued), or nil when
// no free node remains.
//
//dvc:hotpath
func (r *RM) popFree() *phys.Node {
	for len(r.heap) > 0 {
		idx := r.heap[0]
		last := len(r.heap) - 1
		r.heap[0] = r.heap[last]
		r.heap = r.heap[:last]
		i := 0
		for {
			l := 2*i + 1
			if l >= last {
				break
			}
			small := l
			if rt := l + 1; rt < last && r.rank[r.heap[rt]] < r.rank[r.heap[l]] {
				small = rt
			}
			if r.rank[r.heap[i]] <= r.rank[r.heap[small]] {
				break
			}
			r.heap[i], r.heap[small] = r.heap[small], r.heap[i]
			i = small
		}
		r.inHeap[idx] = false
		nd := r.site.NodeAt(int(idx))
		if nd.Up() && r.claimedBy[idx] == nil {
			return nd
		}
	}
	return nil
}

// takeFree pops up to max free nodes, in ID order, into the reusable
// scratch buffer. Callers must hand unclaimed entries back with
// restoreFree before the pass ends.
func (r *RM) takeFree(max int) []*phys.Node {
	out := r.scratch[:0]
	for len(out) < max {
		nd := r.popFree()
		if nd == nil {
			break
		}
		out = append(out, nd)
	}
	r.scratch = out
	return out
}

// restoreFree pushes back every node of a takeFree batch that was not
// claimed during the pass.
func (r *RM) restoreFree(batch []*phys.Node) {
	for _, nd := range batch {
		if r.claimedBy[nd.Index()] == nil {
			r.pushFree(int32(nd.Index()))
		}
	}
}

// usable filters free nodes by a job's software-stack requirement. On
// the physical backend a job can only run on nodes whose installed stack
// matches; under DVC the virtual cluster brings its own stack (paper
// goals 1-2), so every node qualifies.
func (r *RM) usable(free []*phys.Node, j *Job) []*phys.Node {
	if r.cfg.Backend == DVC || j.Spec.Stack == "" {
		return free
	}
	var out []*phys.Node
	for _, n := range free {
		if n.Stack() == j.Spec.Stack {
			out = append(out, n)
		}
	}
	return out
}

// tick is the scheduler loop: reap finished/failed jobs, then start
// queued jobs greedily in submission order (first-fit backfill).
func (r *RM) tick() {
	if r.stopped {
		return
	}
	r.reap()
	r.schedule()
	r.tickTimer.Reset(r.cfg.Tick)
}

func (r *RM) schedule() {
	if len(r.queue) == 0 {
		return // nothing queued: leave the heap untouched, O(1) tick
	}
	r.syncNodes()
	r.pass++
	free := r.takeFree(r.site.NodeCount())
	var stillQueued []*Job
	for _, j := range r.queue {
		var avail []*phys.Node
		for _, n := range r.usable(free, j) {
			if r.taken[n.Index()] != r.pass {
				avail = append(avail, n)
			}
		}
		if j.Spec.Width <= len(avail) {
			sel := avail[:j.Spec.Width]
			for _, n := range sel {
				r.taken[n.Index()] = r.pass
			}
			r.start(j, sel)
		} else {
			stillQueued = append(stillQueued, j)
		}
	}
	r.queue = stillQueued
	r.restoreFree(free)
}

func (r *RM) claim(j *Job, nodes []*phys.Node) {
	j.nodes = nodes
	j.claimedAt = r.kernel.Now()
	for _, n := range nodes {
		r.claimedBy[n.Index()] = j
	}
}

func (r *RM) unclaim(j *Job) {
	r.busyNodeTime += (r.kernel.Now() - j.claimedAt) * sim.Time(len(j.nodes))
	for _, n := range j.nodes {
		if r.claimedBy[n.Index()] == j {
			r.claimedBy[n.Index()] = nil
			r.pushFree(int32(n.Index()))
		}
	}
	j.nodes = nil
}

func (r *RM) start(j *Job, nodes []*phys.Node) {
	j.Attempt++
	j.State = Starting
	j.attemptAt = r.kernel.Now()
	if j.StartAt == 0 && j.Attempt == 1 {
		j.StartAt = r.kernel.Now()
	}
	r.claim(j, append([]*phys.Node(nil), nodes...))
	r.running = append(r.running, j)
	r.trace(obs.EvRMSchedule, j.Spec.ID, "schedule",
		obs.Int("attempt", int64(j.Attempt)), obs.Int("width", int64(j.Spec.Width)))
	if r.cfg.Backend == Physical {
		r.startPhysical(j)
	} else {
		r.startDVC(j)
	}
}

// startPhysical boots native OSes and launches the MPI app directly.
func (r *RM) startPhysical(j *Job) {
	addrs := make([]netsim.Addr, j.Spec.Width)
	j.oses = make([]*guest.OS, j.Spec.Width)
	j.ports = make([]*netsim.Port, j.Spec.Width)
	for i, n := range j.nodes {
		addrs[i] = netsim.Addr(fmt.Sprintf("%s-a%d-r%d", j.Spec.ID, j.Attempt, i))
		j.oses[i], j.ports[i] = vm.NativeOS(r.kernel, r.site.Fabric, n, addrs[i], tcp.DefaultConfig(), guest.WatchdogConfig{})
		j.oses[i].Stack().SetTracer(r.tracer, n.ID(), string(addrs[i]))
	}
	j.pids = mpi.Launch(j.oses, 7000, func(int) mpi.App { return workload.NewBSPApp(j.Spec.Work) })
	j.State = Running
	r.trace(obs.EvRMDispatch, j.Spec.ID, "dispatch", obs.Str("backend", "physical"))
}

// startDVC allocates a virtual cluster and launches the app inside it.
func (r *RM) startDVC(j *Job) {
	vcName := fmt.Sprintf("%s-a%d", j.Spec.ID, j.Attempt)
	vc, err := r.mgr.AllocateOn(core.VCSpec{
		Name:  vcName,
		Nodes: j.Spec.Width,
		VMRAM: r.cfg.VMRAM,
	}, j.nodes, func(vc *core.VirtualCluster) {
		if _, err := vc.LaunchMPI(7000, func(int) mpi.App { return workload.NewBSPApp(j.Spec.Work) }); err != nil {
			return
		}
		j.State = Running
		r.trace(obs.EvRMDispatch, j.Spec.ID, "dispatch", obs.Str("backend", "dvc"), obs.Str("vc", vcName))
		r.startPeriodicFor(j)
	})
	if err != nil {
		// Allocation raced with a failure; requeue.
		r.unclaim(j)
		r.finishAttempt(j, false)
		return
	}
	j.vc = vc
}

// reap checks running jobs for completion or failure.
func (r *RM) reap() {
	var still []*Job
	for _, j := range r.running {
		switch r.cfg.Backend {
		case Physical:
			r.reapPhysical(j)
		case DVC:
			r.reapDVC(j)
		}
		if j.State == Running || j.State == Starting || j.State == Recovering {
			still = append(still, j)
		}
	}
	r.running = still
}

func (r *RM) reapPhysical(j *Job) {
	if j.State != Running {
		return
	}
	allExited, anyFailed := true, false
	for i, o := range j.oses {
		p, _ := o.Proc(j.pids[i])
		if !p.Exited() {
			allExited = false
		} else if p.ExitCode() != 0 {
			anyFailed = true
		}
	}
	// A crashed node freezes its OS: ranks never exit, peers fail.
	for _, n := range j.nodes {
		if !n.Up() {
			anyFailed = true
		}
	}
	if anyFailed {
		j.WastedTime += r.kernel.Now() - j.attemptAt
		r.teardownPhysical(j)
		r.unclaim(j)
		r.finishAttempt(j, false)
		return
	}
	if allExited {
		r.teardownPhysical(j)
		j.State = Completed
		j.EndAt = r.kernel.Now()
		r.unclaim(j)
		r.done = append(r.done, j)
		r.trace(obs.EvRMComplete, j.Spec.ID, "complete", obs.Dur("turnaround", j.Turnaround()))
		r.tracer.Inc("rm.completed", 1)
	}
}

func (r *RM) teardownPhysical(j *Job) {
	for i, o := range j.oses {
		if o != nil {
			o.Freeze()
		}
		if j.ports[i] != nil {
			j.ports[i].Detach()
		}
	}
	j.oses, j.ports, j.pids = nil, nil, nil
}

// startPeriodicFor arms periodic checkpointing for a running DVC job. A
// failed checkpoint (e.g. a node died mid-cycle) fails the attempt.
func (r *RM) startPeriodicFor(j *Job) {
	if r.cfg.CheckpointInterval <= 0 {
		return
	}
	j.periodic = r.coord.StartPeriodic(j.vc, r.cfg.CheckpointInterval, func(res *core.CheckpointResult) {
		if res.OK {
			j.lastGoodGen = res.Generation
			j.lastCkptAt = r.kernel.Now()
			return
		}
		if j.State == Running {
			r.failDVC(j)
		}
	})
}

// failDVC handles a failed DVC attempt: recover from the last checkpoint
// if one exists, otherwise requeue from scratch.
func (r *RM) failDVC(j *Job) {
	if j.periodic != nil {
		j.periodic.Stop()
		j.periodic = nil
	}
	if j.lastGoodGen >= 0 {
		j.WastedTime += r.kernel.Now() - j.lastCkptAt
		j.vc.Teardown()
		r.unclaim(j)
		j.State = Recovering
		r.tryRecover(j)
		return
	}
	j.WastedTime += r.kernel.Now() - j.attemptAt
	j.vc.Release()
	j.vc = nil
	r.unclaim(j)
	r.finishAttempt(j, false)
}

func (r *RM) reapDVC(j *Job) {
	if j.State == Recovering {
		r.tryRecover(j)
		return
	}
	if j.State == Starting {
		// A node died while the VC was booting: the VC can never become
		// ready; requeue from scratch.
		for _, n := range j.nodes {
			if !n.Up() {
				if j.vc != nil {
					j.vc.Release()
					j.vc = nil
				}
				r.unclaim(j)
				r.finishAttempt(j, false)
				return
			}
		}
		return
	}
	if j.State != Running || j.vc == nil {
		return
	}
	// Node crash under the VC?
	crashed := false
	for _, n := range j.nodes {
		if !n.Up() {
			crashed = true
			break
		}
	}
	if j.vc.State() == core.VCReady && !crashed {
		js := j.vc.JobStatus()
		if js.Done() {
			if j.periodic != nil {
				j.periodic.Stop()
			}
			ok := js.AllOK()
			j.vc.Release()
			j.vc = nil
			r.unclaim(j)
			if ok {
				j.State = Completed
				j.EndAt = r.kernel.Now()
				r.done = append(r.done, j)
				r.trace(obs.EvRMComplete, j.Spec.ID, "complete", obs.Dur("turnaround", j.Turnaround()))
				r.tracer.Inc("rm.completed", 1)
			} else {
				j.WastedTime += r.kernel.Now() - j.attemptAt
				r.finishAttempt(j, false)
			}
		}
		return
	}
	if crashed && j.vc.State() == core.VCReady {
		// Failure with the VC otherwise quiescent: recover or requeue.
		// (A crash mid-checkpoint is handled by the periodic callback
		// when the failed cycle reports.)
		r.failDVC(j)
	}
}

// tryRecover restores the VC's last checkpoint onto free nodes.
func (r *RM) tryRecover(j *Job) {
	if j.recovering {
		return
	}
	r.syncNodes()
	free := r.takeFree(j.Spec.Width)
	if len(free) < j.Spec.Width {
		r.restoreFree(free)
		return // wait for capacity
	}
	r.claim(j, append([]*phys.Node(nil), free...))
	j.recovering = true
	r.coord.RestoreVC(j.vc, j.lastGoodGen, j.nodes, func(res *core.RestoreResult) {
		j.recovering = false
		if !res.OK {
			r.unclaim(j)
			j.vc.Release()
			j.vc = nil
			r.finishAttempt(j, false)
			return
		}
		j.State = Running
		j.attemptAt = r.kernel.Now()
		r.startPeriodicFor(j)
	})
}

// finishAttempt handles a failed attempt: requeue or give up.
func (r *RM) finishAttempt(j *Job, ok bool) {
	if !ok && r.cfg.RequeueOnFailure && j.Attempt <= r.cfg.MaxRequeues {
		j.State = Queued
		j.lastGoodGen = -1
		r.queue = append(r.queue, j)
		r.trace(obs.EvRMRequeue, j.Spec.ID, "requeue", obs.Int("attempt", int64(j.Attempt)))
		r.tracer.Inc("rm.requeues", 1)
		return
	}
	j.State = Failed
	j.EndAt = r.kernel.Now()
	r.done = append(r.done, j)
	r.trace(obs.EvRMFail, j.Spec.ID, "fail", obs.Int("attempts", int64(j.Attempt)))
	r.tracer.Inc("rm.failed", 1)
}
