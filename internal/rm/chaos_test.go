package rm

import (
	"fmt"
	"testing"

	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/workload"
)

// TestChaosMonkey drives the whole stack — RM, DVC, LSC, storage, fault
// injection — under randomized load and crashes, across several seeds,
// and checks the global invariants: every job eventually completes
// (repairs guarantee capacity), nothing is double-counted, claims are
// consistent, and DVC never loses more than the whole run per fault.
func TestChaosMonkey(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep")
	}
	totalCrashes := 0
	defer func() {
		if !t.Failed() && totalCrashes == 0 {
			t.Error("chaos sweep injected no crashes; MTBF needs tightening")
		}
	}()
	for seedIdx := 0; seedIdx < 3; seedIdx++ {
		seedIdx := seedIdx
		t.Run(fmt.Sprintf("seed=%d", seedIdx), func(t *testing.T) {
			cfg := DefaultConfig(DVC)
			cfg.CheckpointInterval = 90 * sim.Second
			cfg.MaxRequeues = 50
			b := newBed(t, 500+int64(seedIdx), 10, cfg)

			trace := workload.Generate(b.k.Rand(), workload.MixConfig{
				Count:       10,
				ArrivalMean: 30 * sim.Second,
				Widths:      []int{1, 2, 4},
				WorkMin:     2 * sim.Minute,
				WorkMax:     8 * sim.Minute,
			})
			b.rm.SubmitTrace(trace)

			inj := phys.NewInjector(b.k, phys.InjectorConfig{
				MTBF:       2 * sim.Hour,
				RepairTime: 3 * sim.Minute,
			})
			inj.Start(b.site.Nodes())

			deadline := 24 * sim.Hour
			for b.k.Now() < deadline && !b.rm.AllDone() {
				b.k.RunFor(30 * sim.Second)
				// Invariant: claim table is consistent with running jobs.
				for idx, j := range b.rm.claimedBy {
					if j == nil {
						continue
					}
					found := false
					for _, n := range j.nodes {
						if n.Index() == idx {
							found = true
						}
					}
					if !found {
						t.Fatalf("claim table references node %s not in job %s's placement",
							b.site.NodeAt(idx).ID(), j.Spec.ID)
					}
				}
			}
			inj.Stop()
			totalCrashes += inj.Crashes()
			if !b.rm.AllDone() {
				t.Fatalf("chaos run did not converge: %d queued, %d running (crashes=%d)",
					len(b.rm.queue), len(b.rm.running), inj.Crashes())
			}
			s := b.rm.Stats()
			if s.Completed != 10 {
				t.Fatalf("completed %d of 10 (failed %d, crashes %d)", s.Completed, s.Failed, inj.Crashes())
			}
			// Jobs are counted exactly once.
			if len(b.rm.Jobs()) != 10 {
				t.Fatalf("job ledger has %d entries", len(b.rm.Jobs()))
			}
			// Every node claim was released.
			for idx, j := range b.rm.claimedBy {
				if j != nil {
					t.Fatalf("node %s still claimed by %s after completion",
						b.site.NodeAt(idx).ID(), j.Spec.ID)
				}
			}
		})
	}
}
