package rm

import (
	"testing"

	"dvc/internal/core"
	"dvc/internal/netsim"
	"dvc/internal/phys"
	"dvc/internal/sim"
	"dvc/internal/storage"
	"dvc/internal/vm"
	"dvc/internal/workload"
)

type bed struct {
	k    *sim.Kernel
	site *phys.Site
	rm   *RM
}

func newBed(t *testing.T, seed int64, nodes int, cfg Config) *bed {
	t.Helper()
	k := sim.NewKernel(seed)
	site := phys.DefaultSite(k)
	site.AddCluster("alpha", nodes, phys.DefaultSpec(), netsim.EthernetGigE())
	site.NTP.Start()
	var mgr *core.Manager
	var coord *core.Coordinator
	if cfg.Backend == DVC {
		store := storage.New(k, storage.DefaultConfig())
		mgr = core.NewManager(k, site, store, vm.DefaultXenConfig())
		lsc := core.DefaultNTPLSC()
		lsc.ContinueAfterSave = true
		coord = core.NewCoordinator(mgr, lsc)
	}
	r := New(k, site, mgr, coord, cfg)
	r.Start()
	return &bed{k: k, site: site, rm: r}
}

func (b *bed) runUntilDone(t *testing.T, limit sim.Time) {
	t.Helper()
	deadline := b.k.Now() + limit
	for b.k.Now() < deadline {
		if b.rm.AllDone() {
			return
		}
		b.k.RunFor(10 * sim.Second)
	}
	t.Fatalf("jobs not done by %v: %d queued, %d running", limit, len(b.rm.queue), len(b.rm.running))
}

func job(id string, width int, work sim.Time, arrival sim.Time) workload.JobSpec {
	return workload.JobSpec{ID: id, Width: width, Work: work, Arrival: arrival}
}

func TestPhysicalJobRunsToCompletion(t *testing.T) {
	b := newBed(t, 1, 4, DefaultConfig(Physical))
	b.rm.Submit(job("j0", 2, sim.Minute, 0))
	b.runUntilDone(t, sim.Hour)
	s := b.rm.Stats()
	if s.Completed != 1 || s.Failed != 0 {
		t.Fatalf("stats %+v", s)
	}
	j := b.rm.Jobs()[0]
	if j.State != Completed {
		t.Fatalf("job state %v", j.State)
	}
	// A 1-minute BSP job should take roughly a minute.
	run := j.EndAt - j.StartAt
	if run < sim.Minute || run > 2*sim.Minute {
		t.Fatalf("runtime %v for 1m of work", run)
	}
}

func TestSchedulerQueuesWhenFull(t *testing.T) {
	b := newBed(t, 2, 2, DefaultConfig(Physical))
	b.rm.Submit(job("j0", 2, sim.Minute, 0))
	b.rm.Submit(job("j1", 2, sim.Minute, 0))
	b.k.RunFor(30 * sim.Second)
	// Only one can run on 2 nodes.
	if len(b.rm.running) != 1 || len(b.rm.queue) != 1 {
		t.Fatalf("running=%d queued=%d", len(b.rm.running), len(b.rm.queue))
	}
	b.runUntilDone(t, sim.Hour)
	if s := b.rm.Stats(); s.Completed != 2 {
		t.Fatalf("stats %+v", s)
	}
	// The second job waited for the first.
	jobs := b.rm.Jobs()
	if jobs[1].WaitTime() < sim.Minute {
		t.Fatalf("second job waited only %v", jobs[1].WaitTime())
	}
}

func TestBackfillNarrowJobAroundWideOne(t *testing.T) {
	b := newBed(t, 3, 4, DefaultConfig(Physical))
	b.rm.Submit(job("j0", 3, 2*sim.Minute, 0)) // uses 3 of 4
	b.rm.Submit(job("j1", 8, sim.Minute, 0))   // can never fit on 4... wait
	b.rm.Submit(job("j2", 1, sim.Minute, 0))   // fits in the hole
	b.k.RunFor(30 * sim.Second)
	var j2 *Job
	for _, j := range b.rm.Jobs() {
		if j.Spec.ID == "job-j2" || j.Spec.ID == "j2" {
			j2 = j
		}
	}
	if j2 == nil || (j2.State != Running && j2.State != Completed) {
		t.Fatalf("narrow job not backfilled: %+v", j2)
	}
}

func TestPhysicalNodeCrashRequeuesFromScratch(t *testing.T) {
	cfg := DefaultConfig(Physical)
	b := newBed(t, 4, 3, cfg)
	b.rm.Submit(job("j0", 2, 5*sim.Minute, 0))
	b.k.RunFor(2 * sim.Minute)
	// Crash one of the job's nodes.
	j := b.rm.Jobs()[0]
	if j.State != Running {
		t.Fatalf("job state %v before crash", j.State)
	}
	j.nodes[0].Fail()
	b.runUntilDone(t, 2*sim.Hour)
	s := b.rm.Stats()
	if s.Completed != 1 {
		t.Fatalf("stats %+v", s)
	}
	if j.Attempt < 2 {
		t.Fatalf("job not requeued: attempt %d", j.Attempt)
	}
	// The whole first attempt's progress was lost.
	if j.WastedTime < sim.Minute {
		t.Fatalf("wasted time %v, want >= 1m", j.WastedTime)
	}
}

func TestPhysicalCrashWithoutRequeueFails(t *testing.T) {
	cfg := DefaultConfig(Physical)
	cfg.RequeueOnFailure = false
	b := newBed(t, 5, 3, cfg)
	b.rm.Submit(job("j0", 2, 5*sim.Minute, 0))
	b.k.RunFor(2 * sim.Minute)
	b.rm.Jobs()[0].nodes[0].Fail()
	b.runUntilDone(t, sim.Hour)
	if s := b.rm.Stats(); s.Failed != 1 || s.Completed != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDVCJobRunsToCompletion(t *testing.T) {
	b := newBed(t, 6, 4, DefaultConfig(DVC))
	b.rm.Submit(job("j0", 2, 2*sim.Minute, 0))
	b.runUntilDone(t, 2*sim.Hour)
	if s := b.rm.Stats(); s.Completed != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDVCCrashRecoversFromCheckpoint(t *testing.T) {
	cfg := DefaultConfig(DVC)
	cfg.CheckpointInterval = sim.Minute
	b := newBed(t, 7, 5, cfg)
	b.rm.Submit(job("j0", 2, 10*sim.Minute, 0))
	// Let it run past a couple of checkpoints.
	b.k.RunFor(5 * sim.Minute)
	j := b.rm.Jobs()[0]
	if j.State != Running || j.lastGoodGen < 0 {
		t.Fatalf("job state %v gen %d; want running with a checkpoint", j.State, j.lastGoodGen)
	}
	progressBefore := j.lastCkptAt
	j.nodes[0].Fail()
	b.runUntilDone(t, 3*sim.Hour)
	s := b.rm.Stats()
	if s.Completed != 1 {
		t.Fatalf("stats %+v", s)
	}
	if j.Attempt != 1 {
		t.Fatalf("DVC recovery should not requeue (attempt %d)", j.Attempt)
	}
	// Lost work bounded by the checkpoint interval-ish, not the whole run.
	if j.WastedTime > 4*sim.Minute {
		t.Fatalf("wasted %v despite checkpointing", j.WastedTime)
	}
	_ = progressBefore
}

func TestDVCWastesLessThanPhysicalUnderFaults(t *testing.T) {
	run := func(backend Backend) Stats {
		cfg := DefaultConfig(backend)
		cfg.CheckpointInterval = sim.Minute
		b := newBed(t, 8, 6, cfg)
		b.rm.Submit(job("j0", 3, 15*sim.Minute, 0))
		// Crash one hosting node mid-run.
		b.k.RunFor(7 * sim.Minute)
		j := b.rm.Jobs()[0]
		if j.State == Running && len(j.nodes) > 0 {
			j.nodes[0].Fail()
		}
		b.runUntilDone(t, 5*sim.Hour)
		return b.rm.Stats()
	}
	phys := run(Physical)
	dvc := run(DVC)
	if phys.Completed != 1 || dvc.Completed != 1 {
		t.Fatalf("phys %+v dvc %+v", phys, dvc)
	}
	if dvc.TotalWasted >= phys.TotalWasted {
		t.Fatalf("DVC wasted %v, physical wasted %v; DVC should lose less", dvc.TotalWasted, phys.TotalWasted)
	}
}

func TestTraceSubmission(t *testing.T) {
	b := newBed(t, 9, 8, DefaultConfig(Physical))
	trace := []workload.JobSpec{
		job("j0", 2, sim.Minute, 10*sim.Second),
		job("j1", 4, sim.Minute, 20*sim.Second),
		job("j2", 1, sim.Minute, 30*sim.Second),
	}
	b.rm.SubmitTrace(trace)
	b.runUntilDone(t, sim.Hour)
	if s := b.rm.Stats(); s.Completed != 3 {
		t.Fatalf("stats %+v", s)
	}
	for _, j := range b.rm.Jobs() {
		if j.SubmitAt < 10*sim.Second {
			t.Fatalf("job submitted before its arrival: %v", j.SubmitAt)
		}
	}
}

func TestGeneratedMixCompletes(t *testing.T) {
	b := newBed(t, 10, 8, DefaultConfig(Physical))
	cfg := workload.MixConfig{
		Count:       8,
		ArrivalMean: 20 * sim.Second,
		Widths:      []int{1, 2, 4},
		WorkMin:     30 * sim.Second,
		WorkMax:     2 * sim.Minute,
	}
	trace := workload.Generate(b.k.Rand(), cfg)
	if len(trace) != 8 {
		t.Fatalf("trace size %d", len(trace))
	}
	b.rm.SubmitTrace(trace)
	b.runUntilDone(t, 4*sim.Hour)
	if s := b.rm.Stats(); s.Completed != 8 {
		t.Fatalf("stats %+v", s)
	}
}

func TestBackendStrings(t *testing.T) {
	if Physical.String() != "physical" || DVC.String() != "dvc" {
		t.Fatal("backend strings")
	}
	if Queued.String() != "Queued" || Failed.String() != "Failed" {
		t.Fatal("state strings")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	b := newBed(t, 11, 4, DefaultConfig(Physical))
	b.rm.Submit(job("j0", 2, 2*sim.Minute, 0))
	b.runUntilDone(t, sim.Hour)
	s := b.rm.Stats()
	// 2 nodes busy for ~2 minutes on a 4-node site.
	if s.BusyNodeTime < 3*sim.Minute || s.BusyNodeTime > 6*sim.Minute {
		t.Fatalf("busy node-time %v, want ~4m", s.BusyNodeTime)
	}
	util := s.Utilization(4, s.Makespan)
	if util < 0.3 || util > 0.7 {
		t.Fatalf("utilization %.2f, want ~0.5", util)
	}
	if got := (Stats{}).Utilization(0, 0); got != 0 {
		t.Fatalf("degenerate utilization %v", got)
	}
}

func TestUtilizationIncludesRunningJobs(t *testing.T) {
	b := newBed(t, 12, 4, DefaultConfig(Physical))
	b.rm.Submit(job("j0", 4, 10*sim.Minute, 0))
	b.k.RunFor(5 * sim.Minute)
	s := b.rm.Stats()
	if s.BusyNodeTime < 15*sim.Minute {
		t.Fatalf("mid-run busy node-time %v, want ~20m", s.BusyNodeTime)
	}
}

func TestStackMatchingPhysical(t *testing.T) {
	b := newBed(t, 13, 4, DefaultConfig(Physical))
	b.site.SetClusterStack("alpha", "rhel4-mpich")
	// A job built for a different stack cannot run natively anywhere.
	spec := job("j0", 2, sim.Minute, 0)
	spec.Stack = "suse9-lam"
	b.rm.Submit(spec)
	// A matching job runs fine.
	ok := job("j1", 2, sim.Minute, 0)
	ok.Stack = "rhel4-mpich"
	b.rm.Submit(ok)
	b.k.RunFor(5 * sim.Minute)
	jobs := b.rm.Jobs()
	var mismatched, matched *Job
	for _, j := range jobs {
		if j.Spec.ID == "j0" {
			mismatched = j
		} else {
			matched = j
		}
	}
	if mismatched.State != Queued {
		t.Fatalf("mismatched-stack job state %v, want permanently Queued", mismatched.State)
	}
	if matched.State != Completed {
		t.Fatalf("matching-stack job state %v", matched.State)
	}
}

func TestStackIgnoredUnderDVC(t *testing.T) {
	// The same mismatched job runs under DVC: the VM carries its stack.
	b := newBed(t, 14, 4, DefaultConfig(DVC))
	b.site.SetClusterStack("alpha", "rhel4-mpich")
	spec := job("j0", 2, sim.Minute, 0)
	spec.Stack = "suse9-lam"
	b.rm.Submit(spec)
	b.runUntilDone(t, 2*sim.Hour)
	if s := b.rm.Stats(); s.Completed != 1 {
		t.Fatalf("DVC did not run the foreign-stack job: %+v", s)
	}
}
