package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dvc/internal/sim"
)

func TestGenerateRespectsConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := MixConfig{
		Count:       50,
		ArrivalMean: 30 * sim.Second,
		Widths:      []int{1, 2, 4},
		WorkMin:     sim.Minute,
		WorkMax:     5 * sim.Minute,
	}
	jobs := Generate(rng, cfg)
	if len(jobs) != 50 {
		t.Fatalf("count %d", len(jobs))
	}
	var prev sim.Time = -1
	seen := map[int]bool{}
	for i, j := range jobs {
		if j.Arrival < prev {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		prev = j.Arrival
		if j.Work < cfg.WorkMin || j.Work >= cfg.WorkMax {
			t.Fatalf("work %v out of range", j.Work)
		}
		seen[j.Width] = true
		ok := false
		for _, w := range cfg.Widths {
			if j.Width == w {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("width %d not in choices", j.Width)
		}
		if j.ID == "" {
			t.Fatal("empty job id")
		}
	}
	if len(seen) < 2 {
		t.Fatal("width distribution degenerate")
	}
}

func TestWidthWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := MixConfig{
		Count:        2000,
		ArrivalMean:  sim.Second,
		Widths:       []int{1, 8},
		WidthWeights: []float64{9, 1},
		WorkMin:      sim.Minute,
		WorkMax:      2 * sim.Minute,
	}
	jobs := Generate(rng, cfg)
	narrow := 0
	for _, j := range jobs {
		if j.Width == 1 {
			narrow++
		}
	}
	if narrow < 1600 || narrow > 1980 {
		t.Fatalf("weighted draw: %d/2000 narrow, want ~1800", narrow)
	}
}

func TestDefaultMix(t *testing.T) {
	cfg := DefaultMix(7)
	if cfg.Count != 7 || len(cfg.Widths) == 0 || cfg.WorkMax <= cfg.WorkMin {
		t.Fatalf("bad default mix %+v", cfg)
	}
}

func TestBSPAppSliceCount(t *testing.T) {
	a := NewBSPApp(95 * sim.Second)
	if a.Slices != 9 {
		t.Fatalf("95s of work at 10s slices = %d slices, want 9", a.Slices)
	}
	tiny := NewBSPApp(sim.Second)
	if tiny.Slices != 1 {
		t.Fatal("minimum one slice")
	}
}

func TestBSPProgress(t *testing.T) {
	a := NewBSPApp(50 * sim.Second)
	a.I = 3
	if a.Progress() != 30*sim.Second {
		t.Fatalf("progress %v", a.Progress())
	}
}

// Property: generation is deterministic for a seed.
func TestPropertyGenerateDeterministic(t *testing.T) {
	f := func(seed int64, countRaw uint8) bool {
		count := int(countRaw%20) + 1
		cfg := DefaultMix(count)
		a := Generate(rand.New(rand.NewSource(seed)), cfg)
		b := Generate(rand.New(rand.NewSource(seed)), cfg)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := Generate(rng, DefaultMix(10))
	in[3].Stack = "rhel4-mpich"
	var buf bytes.Buffer
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Width != in[i].Width || out[i].Stack != in[i].Stack {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
		// Durations survive within JSON float precision (sub-microsecond).
		dw := out[i].Work - in[i].Work
		if dw < 0 {
			dw = -dw
		}
		if dw > sim.Microsecond {
			t.Fatalf("job %d work drifted %v", i, dw)
		}
	}
}

func TestReadTraceSortsByArrival(t *testing.T) {
	in := strings.NewReader(`[
		{"id":"b","width":1,"work_sec":60,"arrival_sec":50},
		{"id":"a","width":1,"work_sec":60,"arrival_sec":10}
	]`)
	out, err := ReadTrace(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].ID != "a" || out[1].ID != "b" {
		t.Fatalf("not sorted: %v %v", out[0].ID, out[1].ID)
	}
}

func TestReadTraceRejectsBadJobs(t *testing.T) {
	for name, body := range map[string]string{
		"no-id":       `[{"width":1,"work_sec":1,"arrival_sec":0}]`,
		"zero-width":  `[{"id":"x","width":0,"work_sec":1,"arrival_sec":0}]`,
		"zero-work":   `[{"id":"x","width":1,"work_sec":0,"arrival_sec":0}]`,
		"neg-arrival": `[{"id":"x","width":1,"work_sec":1,"arrival_sec":-5}]`,
		"not-json":    `{{{`,
	} {
		if _, err := ReadTrace(strings.NewReader(body)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}
