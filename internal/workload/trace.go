package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dvc/internal/sim"
)

// Trace I/O: job mixes serialise to a small JSON format so experiments
// can be re-run against externally produced traces (and synthetic traces
// can be archived next to their results).

// traceJob is the wire form of JobSpec (durations in seconds).
type traceJob struct {
	ID         string  `json:"id"`
	Width      int     `json:"width"`
	WorkSec    float64 `json:"work_sec"`
	ArrivalSec float64 `json:"arrival_sec"`
	Stack      string  `json:"stack,omitempty"`
}

// WriteTrace serialises a trace as JSON.
func WriteTrace(w io.Writer, trace []JobSpec) error {
	out := make([]traceJob, len(trace))
	for i, j := range trace {
		out[i] = traceJob{
			ID:         j.ID,
			Width:      j.Width,
			WorkSec:    j.Work.Seconds(),
			ArrivalSec: j.Arrival.Seconds(),
			Stack:      j.Stack,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadTrace parses a JSON trace, validating each job and returning the
// jobs sorted by arrival.
func ReadTrace(r io.Reader) ([]JobSpec, error) {
	var in []traceJob
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: parsing trace: %w", err)
	}
	out := make([]JobSpec, len(in))
	for i, j := range in {
		if j.ID == "" {
			return nil, fmt.Errorf("workload: trace job %d has no id", i)
		}
		if j.Width <= 0 {
			return nil, fmt.Errorf("workload: trace job %q has width %d", j.ID, j.Width)
		}
		if j.WorkSec <= 0 {
			return nil, fmt.Errorf("workload: trace job %q has work %.3f s", j.ID, j.WorkSec)
		}
		if j.ArrivalSec < 0 {
			return nil, fmt.Errorf("workload: trace job %q arrives at %.3f s", j.ID, j.ArrivalSec)
		}
		out[i] = JobSpec{
			ID:      j.ID,
			Width:   j.Width,
			Work:    sim.Time(j.WorkSec * float64(sim.Second)),
			Arrival: sim.Time(j.ArrivalSec * float64(sim.Second)),
			Stack:   j.Stack,
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Arrival < out[b].Arrival })
	return out, nil
}
