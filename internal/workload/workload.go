// Package workload generates synthetic job mixes for the resource-manager
// experiments (E8, E9) and provides a generic BSP application whose only
// parameter is how much work it does.
package workload

import (
	"encoding/gob"
	"fmt"
	"math/rand"

	"dvc/internal/mpi"
	"dvc/internal/sim"
)

func init() {
	gob.Register(&BSPApp{})
}

// JobSpec is one job in a trace.
type JobSpec struct {
	ID      string
	Width   int      // nodes required
	Work    sim.Time // per-node compute time at nominal rate
	Arrival sim.Time // submission time
	// Stack is the software environment the job was built against.
	// Physical execution requires nodes with exactly this stack (empty =
	// runs anywhere); DVC boots the stack inside the VMs instead.
	Stack string
}

// MixConfig tunes the trace generator.
type MixConfig struct {
	Count        int
	ArrivalMean  sim.Time // exponential inter-arrival
	Widths       []int    // choices, drawn uniformly
	WorkMin      sim.Time
	WorkMax      sim.Time
	WidthWeights []float64 // optional weights matching Widths
	FirstArrival sim.Time
}

// DefaultMix is a small-cluster job mix: mostly narrow jobs with some
// wide ones, minutes-scale runtimes.
func DefaultMix(count int) MixConfig {
	return MixConfig{
		Count:       count,
		ArrivalMean: 30 * sim.Second,
		Widths:      []int{1, 2, 4, 8},
		WorkMin:     sim.Minute,
		WorkMax:     10 * sim.Minute,
	}
}

// Generate draws a job trace from the config.
func Generate(rng *rand.Rand, cfg MixConfig) []JobSpec {
	jobs := make([]JobSpec, cfg.Count)
	at := cfg.FirstArrival
	for i := range jobs {
		w := cfg.Widths[pickIdx(rng, cfg.Widths, cfg.WidthWeights)]
		jobs[i] = JobSpec{
			ID:      fmt.Sprintf("job%03d", i),
			Width:   w,
			Work:    sim.Uniform(rng, cfg.WorkMin, cfg.WorkMax),
			Arrival: at,
		}
		at += sim.Exp(rng, cfg.ArrivalMean)
	}
	return jobs
}

func pickIdx(rng *rand.Rand, widths []int, weights []float64) int {
	if len(weights) != len(widths) {
		return rng.Intn(len(widths))
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(widths) - 1
}

// BSPApp is a bulk-synchronous job: Slices rounds of SliceTime compute,
// with a barrier after each round. Progress (completed slices) survives
// checkpoints, so lost work after a failure is measurable.
type BSPApp struct {
	Slices    int
	SliceTime sim.Time

	I     int
	Phase int
	Done  bool
}

// NewBSPApp builds a BSP app doing `work` of compute in ~10s slices.
func NewBSPApp(work sim.Time) *BSPApp {
	slice := 10 * sim.Second
	n := int(work / slice)
	if n < 1 {
		n = 1
	}
	return &BSPApp{Slices: n, SliceTime: slice}
}

// Step implements mpi.App.
func (a *BSPApp) Step(c *mpi.Ctx, prev mpi.Op) mpi.Op {
	for {
		if a.I >= a.Slices {
			a.Done = true
			return nil
		}
		if a.Phase == 0 {
			a.Phase = 1
			return mpi.Compute(a.SliceTime)
		}
		a.Phase = 0
		a.I++
		if c.RT.Size > 1 {
			return mpi.NewBarrier()
		}
	}
}

// Progress reports completed work.
func (a *BSPApp) Progress() sim.Time { return sim.Time(a.I) * a.SliceTime }
