package phys

import (
	"dvc/internal/sim"
)

// InjectorConfig tunes random fault injection.
type InjectorConfig struct {
	// MTBF is each node's mean time between failures (exponential).
	MTBF sim.Time
	// RepairTime is the mean time to bring a crashed node back
	// (exponential). Zero means nodes stay down.
	RepairTime sim.Time
	// PredictProb is the fraction of faults announced in advance —
	// the paper's "avoidance of job failure when hardware faults can be
	// predicted".
	PredictProb float64
	// PredictLead is how far in advance predicted faults are announced.
	PredictLead sim.Time
}

// Injector drives random node failures.
type Injector struct {
	kernel *sim.Kernel
	cfg    InjectorConfig

	// OnCrash fires when a node fails (after the node's own callbacks).
	OnCrash func(*Node)
	// OnPredict fires PredictLead before a predicted failure.
	OnPredict func(*Node, sim.Time)

	crashes  int
	predicts int
	stopped  bool
}

// NewInjector creates an injector on the kernel.
func NewInjector(k *sim.Kernel, cfg InjectorConfig) *Injector {
	return &Injector{kernel: k, cfg: cfg}
}

// Crashes reports how many node failures have been injected.
func (in *Injector) Crashes() int { return in.crashes }

// Predictions reports how many failures were announced in advance.
func (in *Injector) Predictions() int { return in.predicts }

// Stop halts future injections (already-scheduled events become no-ops).
func (in *Injector) Stop() { in.stopped = true }

// Start schedules the first failure for each node.
func (in *Injector) Start(nodes []*Node) {
	for _, n := range nodes {
		in.scheduleNext(n)
	}
}

func (in *Injector) scheduleNext(n *Node) {
	if in.cfg.MTBF <= 0 {
		return
	}
	wait := sim.Exp(in.kernel.Rand(), in.cfg.MTBF)
	in.kernel.After(wait, func() { in.fault(n) })
}

func (in *Injector) fault(n *Node) {
	if in.stopped || !n.Up() {
		return
	}
	if in.cfg.PredictProb > 0 && in.kernel.Rand().Float64() < in.cfg.PredictProb {
		in.predicts++
		if in.OnPredict != nil {
			in.OnPredict(n, in.cfg.PredictLead)
		}
		in.kernel.After(in.cfg.PredictLead, func() { in.crash(n) })
		return
	}
	in.crash(n)
}

func (in *Injector) crash(n *Node) {
	if in.stopped || !n.Up() {
		return
	}
	in.crashes++
	n.Fail()
	if in.OnCrash != nil {
		in.OnCrash(n)
	}
	if in.cfg.RepairTime > 0 {
		wait := sim.Exp(in.kernel.Rand(), in.cfg.RepairTime)
		in.kernel.After(wait, func() {
			n.Repair()
			in.scheduleNext(n)
		})
	}
}
