package phys

import (
	"strings"
	"testing"

	"dvc/internal/netsim"
	"dvc/internal/sim"
)

func buildTestTopo(t *testing.T, seed int64, spec TopoSpec) (*Site, *Topology) {
	t.Helper()
	k := sim.NewKernel(seed)
	s := DefaultSite(k)
	topo, err := BuildTopo(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	return s, topo
}

func TestBuildTopoInventory(t *testing.T) {
	spec := TopoSpec{DCs: 2, ClustersPerDC: 3, HostsPerCluster: 5}
	s, topo := buildTestTopo(t, 1, spec)
	if got := s.NodeCount(); got != 30 {
		t.Fatalf("NodeCount = %d, want 30", got)
	}
	if len(topo.Clusters) != 6 || topo.Clusters[0] != "dc00-c00" || topo.Clusters[5] != "dc01-c02" {
		t.Fatalf("cluster names %v", topo.Clusters)
	}
	if _, ok := s.Node("dc01-c02-n04"); !ok {
		t.Fatal("last generated node missing")
	}
	// Zones follow datacenters.
	if z := s.Fabric.ClusterZone("dc00-c01"); z != 0 {
		t.Fatalf("dc00-c01 zone = %d, want 0", z)
	}
	if z := s.Fabric.ClusterZone("dc01-c00"); z != 1 {
		t.Fatalf("dc01-c00 zone = %d, want 1", z)
	}
	inv := topo.Inventory()
	if !strings.Contains(inv, "cluster dc01-c02 zone=1 hosts=5") {
		t.Fatalf("inventory missing cluster line:\n%s", inv)
	}
}

// TestBuildTopoDeterministic is the generator's determinism property:
// same spec + same seed must produce an identical inventory — names,
// order, zones, profiles — and identical node listings.
func TestBuildTopoDeterministic(t *testing.T) {
	spec := TopoSpec{DCs: 2, ClustersPerDC: 3, HostsPerCluster: 7}
	s1, topo1 := buildTestTopo(t, 42, spec)
	s2, topo2 := buildTestTopo(t, 42, spec)
	if topo1.Inventory() != topo2.Inventory() {
		t.Fatalf("inventories diverge:\n%s\nvs\n%s", topo1.Inventory(), topo2.Inventory())
	}
	n1, n2 := s1.Nodes(), s2.Nodes()
	if len(n1) != len(n2) {
		t.Fatalf("node counts diverge: %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i].ID() != n2[i].ID() || n1[i].Cluster() != n2[i].Cluster() {
			t.Fatalf("node %d diverges: %s/%s vs %s/%s",
				i, n1[i].ID(), n1[i].Cluster(), n2[i].ID(), n2[i].Cluster())
		}
	}
	// The per-node clocks draw from the kernel RNG in creation order, so
	// identical builds leave identical clock errors behind.
	for i := range n1 {
		if n1[i].Clock().Error() != n2[i].Clock().Error() {
			t.Fatalf("clock error diverges at node %d", i)
		}
	}
}

// TestTopoLinkTiers pins the three-tier profile selection: intra-cluster
// beats same-DC cross-cluster beats cross-DC.
func TestTopoLinkTiers(t *testing.T) {
	spec := TopoSpec{DCs: 2, ClustersPerDC: 2, HostsPerCluster: 1}
	s, _ := buildTestTopo(t, 7, spec)
	f := s.Fabric
	f.Attach("intra-a", "dc00-c00", nil)
	f.Attach("intra-b", "dc00-c00", nil)
	f.Attach("spine-b", "dc00-c01", nil)
	f.Attach("wan-b", "dc01-c00", nil)

	intra, err := f.Delay("intra-a", "intra-b", 0)
	if err != nil {
		t.Fatal(err)
	}
	spine, err := f.Delay("intra-a", "spine-b", 0)
	if err != nil {
		t.Fatal(err)
	}
	wan, err := f.Delay("intra-a", "wan-b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(intra < spine && spine < wan) {
		t.Fatalf("latency tiers out of order: intra=%v spine=%v wan=%v", intra, spine, wan)
	}
	if intra != netsim.EthernetGigE().Latency {
		t.Fatalf("intra latency %v, want leaf profile %v", intra, netsim.EthernetGigE().Latency)
	}
	if spine != netsim.FatTreeSpine().Latency {
		t.Fatalf("spine latency %v, want %v", spine, netsim.FatTreeSpine().Latency)
	}
	if wan != netsim.MultiDatacenterWAN().Latency {
		t.Fatalf("wan latency %v, want %v", wan, netsim.MultiDatacenterWAN().Latency)
	}
}

// TestBuildTopoZones: a zone slice creates real nodes only for its own
// datacenters but registers every cluster (profile + zone) on its
// fabric, so link resolution matches the monolithic build on both sides
// of the partition boundary.
func TestBuildTopoZones(t *testing.T) {
	spec := TopoSpec{DCs: 3, ClustersPerDC: 2, HostsPerCluster: 4}
	k := sim.NewKernel(9)
	s := DefaultSite(k)
	owned, err := BuildTopoZones(s, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(owned) != 2 || owned[0] != "dc01-c00" || owned[1] != "dc01-c01" {
		t.Fatalf("owned clusters %v, want dc01's two clusters", owned)
	}
	if got := s.NodeCount(); got != 8 {
		t.Fatalf("NodeCount = %d, want 8 (one DC of nodes)", got)
	}
	if _, ok := s.Node("dc00-c00-n00"); ok {
		t.Fatal("remote datacenter's node exists locally")
	}
	// Every cluster — owned or remote — is zoned on the slice's fabric.
	for d := 0; d < 3; d++ {
		for c := 0; c < 2; c++ {
			if z := s.Fabric.ClusterZone(ClusterName(d, c)); z != d {
				t.Fatalf("%s zone = %d, want %d", ClusterName(d, c), z, d)
			}
		}
	}
	// A local port resolves the WAN profile toward a remote-only cluster
	// exactly as a monolithic fabric would.
	s.Fabric.Attach("local", "dc01-c00", nil)
	s.Fabric.Attach("probe", "dc00-c00", nil)
	wan, err := s.Fabric.Delay("local", "probe", 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := netsim.MultiDatacenterWAN().Latency; wan != want {
		t.Fatalf("cross-slice delay %v, want WAN latency %v", wan, want)
	}
	if _, err := BuildTopoZones(DefaultSite(sim.NewKernel(9)), spec, 3); err == nil {
		t.Fatal("out-of-range datacenter accepted")
	}
}

// TestZoneLookahead pins the conservative lookahead to the WAN latency —
// zones only touch over the WAN profile — and to zero when one zone owns
// everything.
func TestZoneLookahead(t *testing.T) {
	la, err := ZoneLookahead(TopoSpec{DCs: 4, ClustersPerDC: 2, HostsPerCluster: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := netsim.MultiDatacenterWAN().Latency; la != want {
		t.Fatalf("ZoneLookahead = %v, want WAN latency %v", la, want)
	}
	la, err = ZoneLookahead(TopoSpec{DCs: 1, ClustersPerDC: 4, HostsPerCluster: 1})
	if err != nil {
		t.Fatal(err)
	}
	if la != 0 {
		t.Fatalf("single-zone ZoneLookahead = %v, want 0", la)
	}
}

func TestBuildTopoRejectsBadCounts(t *testing.T) {
	k := sim.NewKernel(1)
	s := DefaultSite(k)
	if _, err := BuildTopo(s, TopoSpec{DCs: 1, ClustersPerDC: 0, HostsPerCluster: 3}); err == nil {
		t.Fatal("zero cluster count accepted")
	}
}

func TestSpecInterning(t *testing.T) {
	k := sim.NewKernel(1)
	s := DefaultSite(k)
	s.AddCluster("a", 50, DefaultSpec(), netsim.EthernetGigE())
	s.AddCluster("b", 50, DefaultSpec(), netsim.EthernetGigE())
	big := DefaultSpec()
	big.RAMBytes *= 2
	s.AddCluster("c", 50, big, netsim.EthernetGigE())
	if got := len(s.specs); got != 2 {
		t.Fatalf("interned %d specs for 150 nodes of 2 hardware classes, want 2", got)
	}
	if s.Cluster("b")[0].Spec() != DefaultSpec() {
		t.Fatal("shared spec does not round-trip")
	}
	if s.Cluster("c")[0].Spec() != big {
		t.Fatal("second spec does not round-trip")
	}
}
