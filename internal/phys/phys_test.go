package phys

import (
	"testing"

	"dvc/internal/netsim"
	"dvc/internal/sim"
)

func TestAddClusterCreatesNamedNodes(t *testing.T) {
	k := sim.NewKernel(1)
	s := DefaultSite(k)
	nodes := s.AddCluster("alpha", 4, DefaultSpec(), netsim.EthernetGigE())
	if len(nodes) != 4 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	if nodes[0].ID() != "alpha-n00" || nodes[3].ID() != "alpha-n03" {
		t.Fatalf("node ids %s..%s", nodes[0].ID(), nodes[3].ID())
	}
	if nodes[0].Cluster() != "alpha" {
		t.Fatal("wrong cluster name")
	}
	if !nodes[0].Up() {
		t.Fatal("fresh node should be up")
	}
	if n, ok := s.Node("alpha-n02"); !ok || n != nodes[2] {
		t.Fatal("Node lookup failed")
	}
}

func TestDuplicateClusterPanics(t *testing.T) {
	k := sim.NewKernel(1)
	s := DefaultSite(k)
	s.AddCluster("a", 1, DefaultSpec(), netsim.EthernetGigE())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate cluster did not panic")
		}
	}()
	s.AddCluster("a", 1, DefaultSpec(), netsim.EthernetGigE())
}

func TestNodesSortedAcrossClusters(t *testing.T) {
	k := sim.NewKernel(1)
	s := DefaultSite(k)
	s.AddCluster("beta", 2, DefaultSpec(), netsim.EthernetGigE())
	s.AddCluster("alpha", 2, DefaultSpec(), netsim.EthernetGigE())
	nodes := s.Nodes()
	if len(nodes) != 4 || nodes[0].ID() != "alpha-n00" || nodes[3].ID() != "beta-n01" {
		t.Fatalf("unexpected order: %v, %v", nodes[0].ID(), nodes[3].ID())
	}
	if got := s.ClusterNames(); got[0] != "beta" || got[1] != "alpha" {
		t.Fatalf("ClusterNames order %v", got)
	}
}

func TestFailAndRepairCallbacks(t *testing.T) {
	k := sim.NewKernel(1)
	s := DefaultSite(k)
	n := s.AddCluster("a", 1, DefaultSpec(), netsim.EthernetGigE())[0]
	crashed, repaired := 0, 0
	n.OnCrash(func() { crashed++ })
	n.OnRepair(func() { repaired++ })
	n.Fail()
	n.Fail() // idempotent
	if crashed != 1 || n.Up() {
		t.Fatalf("crashed=%d up=%v", crashed, n.Up())
	}
	n.Repair()
	n.Repair()
	if repaired != 1 || !n.Up() {
		t.Fatalf("repaired=%d up=%v", repaired, n.Up())
	}
}

func TestUpNodesFiltersFailed(t *testing.T) {
	k := sim.NewKernel(1)
	s := DefaultSite(k)
	nodes := s.AddCluster("a", 3, DefaultSpec(), netsim.EthernetGigE())
	s.AddCluster("b", 2, DefaultSpec(), netsim.EthernetGigE())
	nodes[1].Fail()
	if got := len(s.UpNodes("a")); got != 2 {
		t.Fatalf("UpNodes(a) = %d, want 2", got)
	}
	if got := len(s.UpNodes("")); got != 4 {
		t.Fatalf("UpNodes(all) = %d, want 4", got)
	}
}

func TestNTPCoversAllNodeClocks(t *testing.T) {
	k := sim.NewKernel(2)
	s := DefaultSite(k)
	s.AddCluster("a", 8, DefaultSpec(), netsim.EthernetGigE())
	s.NTP.Start()
	k.RunFor(sim.Second)
	if e := s.NTP.MaxPairwiseError(); e > 20*sim.Millisecond {
		t.Fatalf("pairwise clock error %v after NTP sync", e)
	}
}

func TestInjectorCrashesNodes(t *testing.T) {
	k := sim.NewKernel(3)
	s := DefaultSite(k)
	nodes := s.AddCluster("a", 10, DefaultSpec(), netsim.EthernetGigE())
	in := NewInjector(k, InjectorConfig{MTBF: sim.Hour})
	var crashedIDs []string
	in.OnCrash = func(n *Node) { crashedIDs = append(crashedIDs, n.ID()) }
	in.Start(nodes)
	k.RunUntil(10 * sim.Hour)
	if in.Crashes() == 0 {
		t.Fatal("no crashes in 10 node-hours x 10 nodes at 1h MTBF")
	}
	if in.Crashes() != len(crashedIDs) {
		t.Fatal("callback count mismatch")
	}
	up := 0
	for _, n := range nodes {
		if n.Up() {
			up++
		}
	}
	if up+in.Crashes() < len(nodes) {
		t.Fatal("accounting broken: some nodes neither up nor crashed")
	}
}

func TestInjectorRepairBringsNodesBack(t *testing.T) {
	k := sim.NewKernel(4)
	s := DefaultSite(k)
	nodes := s.AddCluster("a", 5, DefaultSpec(), netsim.EthernetGigE())
	in := NewInjector(k, InjectorConfig{MTBF: sim.Hour, RepairTime: 10 * sim.Minute})
	in.Start(nodes)
	k.RunUntil(100 * sim.Hour)
	if in.Crashes() < 5 {
		t.Fatalf("only %d crashes in 100h", in.Crashes())
	}
	up := 0
	for _, n := range nodes {
		if n.Up() {
			up++
		}
	}
	// With MTBF 1h and repair 10min, most nodes should be up at any time.
	if up < 3 {
		t.Fatalf("only %d/5 nodes up with fast repair", up)
	}
}

func TestInjectorPrediction(t *testing.T) {
	k := sim.NewKernel(5)
	s := DefaultSite(k)
	nodes := s.AddCluster("a", 20, DefaultSpec(), netsim.EthernetGigE())
	in := NewInjector(k, InjectorConfig{
		MTBF:        sim.Hour,
		PredictProb: 1.0,
		PredictLead: sim.Minute,
	})
	var predicted []string
	var predictAt, crashAt sim.Time
	in.OnPredict = func(n *Node, lead sim.Time) {
		predicted = append(predicted, n.ID())
		if predictAt == 0 {
			predictAt = k.Now()
		}
	}
	in.OnCrash = func(n *Node) {
		if crashAt == 0 {
			crashAt = k.Now()
		}
	}
	in.Start(nodes)
	k.RunUntil(5 * sim.Hour)
	if in.Predictions() == 0 || in.Predictions() != in.Crashes() {
		t.Fatalf("predictions=%d crashes=%d, want all predicted", in.Predictions(), in.Crashes())
	}
	if crashAt-predictAt != sim.Minute {
		t.Fatalf("lead time %v, want 1m", crashAt-predictAt)
	}
}

func TestInjectorStop(t *testing.T) {
	k := sim.NewKernel(6)
	s := DefaultSite(k)
	nodes := s.AddCluster("a", 5, DefaultSpec(), netsim.EthernetGigE())
	in := NewInjector(k, InjectorConfig{MTBF: sim.Minute})
	in.Start(nodes)
	in.Stop()
	k.RunUntil(10 * sim.Hour)
	if in.Crashes() != 0 {
		t.Fatalf("stopped injector crashed %d nodes", in.Crashes())
	}
}

func TestDefaultSpecSane(t *testing.T) {
	sp := DefaultSpec()
	if sp.RAMBytes <= 0 || sp.DiskBandwidth <= 0 || sp.GFlops <= 0 {
		t.Fatalf("bad default spec %+v", sp)
	}
}
