package phys

import (
	"fmt"
	"strings"

	"dvc/internal/netsim"
	"dvc/internal/sim"
)

// TopoSpec sizes a generated topology the way vcsim sizes a vCenter
// inventory: datacenters compose clusters compose hosts
// (dvcsim -dc/-cluster/-host). Each datacenter is a fabric zone; its
// clusters hang off a fat-tree spine, and datacenters join over a WAN
// profile — the two or three orders of magnitude beyond the paper's 26
// nodes that cluster-scale simulation needs.
type TopoSpec struct {
	// DCs is the number of datacenters (fabric zones). Minimum 1.
	DCs int
	// ClustersPerDC is the number of clusters per datacenter. Minimum 1.
	ClustersPerDC int
	// HostsPerCluster is the number of nodes per cluster. Minimum 1.
	HostsPerCluster int

	// Spec is the hardware of every generated node (zero value =
	// DefaultSpec). One interned record serves the whole topology.
	Spec Spec

	// Leaf is the intra-cluster link profile (nil = gigabit Ethernet).
	Leaf *netsim.LinkProfile
	// Spine joins clusters of the same datacenter (nil = FatTreeSpine).
	Spine *netsim.LinkProfile
	// WAN joins datacenters (nil = MultiDatacenterWAN).
	WAN *netsim.LinkProfile
}

// Nodes returns the total node count the spec generates.
func (t TopoSpec) Nodes() int { return t.DCs * t.ClustersPerDC * t.HostsPerCluster }

// normalize fills defaults and validates counts.
func (t TopoSpec) normalize() (TopoSpec, error) {
	if t.DCs <= 0 || t.ClustersPerDC <= 0 || t.HostsPerCluster <= 0 {
		return t, fmt.Errorf("phys: topology needs dc, cluster and host counts >= 1 (got %d/%d/%d)",
			t.DCs, t.ClustersPerDC, t.HostsPerCluster)
	}
	if (t.Spec == Spec{}) {
		t.Spec = DefaultSpec()
	}
	if t.Leaf == nil {
		p := netsim.EthernetGigE()
		t.Leaf = &p
	}
	if t.Spine == nil {
		p := netsim.FatTreeSpine()
		t.Spine = &p
	}
	if t.WAN == nil {
		p := netsim.MultiDatacenterWAN()
		t.WAN = &p
	}
	return t, nil
}

// Topology records what BuildTopo generated.
type Topology struct {
	Spec TopoSpec
	// Clusters holds generated cluster names in creation order
	// ("dc00-c00", "dc00-c01", ...). Node IDs follow the AddCluster
	// convention: "<cluster>-nNN".
	Clusters []string
}

// ClusterName returns the canonical generated name of cluster c in
// datacenter d.
func ClusterName(d, c int) string { return fmt.Sprintf("dc%02d-c%02d", d, c) }

// BuildTopo generates the spec's inventory into the site: one cluster per
// (datacenter, cluster) pair, every cluster zoned to its datacenter, and
// the fabric's spine/WAN profiles installed. Creation order is
// deterministic (datacenter-major), so same spec + same kernel seed means
// an identical inventory and identical downstream RNG draws.
func BuildTopo(site *Site, spec TopoSpec) (*Topology, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	site.Fabric.SetInterCluster(*spec.Spine)
	site.Fabric.SetInterZone(*spec.WAN)
	topo := &Topology{Spec: spec, Clusters: make([]string, 0, spec.DCs*spec.ClustersPerDC)}
	for d := 0; d < spec.DCs; d++ {
		for c := 0; c < spec.ClustersPerDC; c++ {
			name := ClusterName(d, c)
			site.AddCluster(name, spec.HostsPerCluster, spec.Spec, *spec.Leaf)
			if err := site.Fabric.SetClusterZone(name, d); err != nil {
				return nil, err
			}
			topo.Clusters = append(topo.Clusters, name)
		}
	}
	return topo, nil
}

// BuildTopoZones generates the slice of spec's inventory owned by the
// given datacenters into the site — one partition of a partitioned run.
// Clusters of the listed DCs are created for real (nodes, clocks, NTP);
// every other cluster is registered fabric-only (profile + zone, no
// nodes), so link-profile resolution — and therefore the cross-partition
// latency/bandwidth math on the send side — is identical on every
// partition's fabric. Registration order is the same datacenter-major
// order BuildTopo uses, restricted creation included, so a partition's
// inventory is a pure function of (spec, dcs). It returns the locally
// created cluster names in creation order.
func BuildTopoZones(site *Site, spec TopoSpec, dcs ...int) ([]string, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	local := make(map[int]bool, len(dcs))
	for _, d := range dcs {
		if d < 0 || d >= spec.DCs {
			return nil, fmt.Errorf("phys: datacenter %d out of range [0,%d)", d, spec.DCs)
		}
		local[d] = true
	}
	site.Fabric.SetInterCluster(*spec.Spine)
	site.Fabric.SetInterZone(*spec.WAN)
	var owned []string
	for d := 0; d < spec.DCs; d++ {
		for c := 0; c < spec.ClustersPerDC; c++ {
			name := ClusterName(d, c)
			if local[d] {
				site.AddCluster(name, spec.HostsPerCluster, spec.Spec, *spec.Leaf)
				owned = append(owned, name)
			} else {
				site.Fabric.AddCluster(name, *spec.Leaf)
			}
			if err := site.Fabric.SetClusterZone(name, d); err != nil {
				return nil, err
			}
		}
	}
	return owned, nil
}

// ZoneLookahead computes the conservative lookahead for a run of spec
// partitioned on datacenter (zone) boundaries: the minimum latency of
// any link profile joining clusters of different zones, extracted from
// the same profile matrix the packets will use (netsim.MinCrossLatency
// over a scratch fabric). Zero when the spec has a single datacenter —
// there is no cross-partition traffic to bound.
func ZoneLookahead(spec TopoSpec) (sim.Time, error) {
	spec, err := spec.normalize()
	if err != nil {
		return 0, err
	}
	f := netsim.NewFabric(sim.NewKernel(0))
	f.SetInterCluster(*spec.Spine)
	f.SetInterZone(*spec.WAN)
	for d := 0; d < spec.DCs; d++ {
		for c := 0; c < spec.ClustersPerDC; c++ {
			name := ClusterName(d, c)
			f.AddCluster(name, *spec.Leaf)
			if err := f.SetClusterZone(name, d); err != nil {
				return 0, err
			}
		}
	}
	return f.MinCrossLatency(f.ClusterZone), nil
}

// Inventory renders the generated topology as a deterministic multi-line
// listing (one line per cluster plus profile lines) — the property tests
// hash it, and dvcsim prints it for humans.
func (t *Topology) Inventory() string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology dc=%d cluster=%d host=%d nodes=%d\n",
		t.Spec.DCs, t.Spec.ClustersPerDC, t.Spec.HostsPerCluster, t.Spec.Nodes())
	fmt.Fprintf(&b, "leaf  %s\nspine %s\nwan   %s\n",
		profileString(*t.Spec.Leaf), profileString(*t.Spec.Spine), profileString(*t.Spec.WAN))
	for i, name := range t.Clusters {
		zone := i / t.Spec.ClustersPerDC
		fmt.Fprintf(&b, "cluster %s zone=%d hosts=%d ids=%s-n00..%s-n%02d\n",
			name, zone, t.Spec.HostsPerCluster, name, name, t.Spec.HostsPerCluster-1)
	}
	return b.String()
}

// profileString formats a link profile for the inventory listing.
func profileString(p netsim.LinkProfile) string {
	return fmt.Sprintf("{lat=%v bw=%.0fB/s loss=%g}", p.Latency, p.Bandwidth, p.LossProb)
}
