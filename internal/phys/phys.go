// Package phys models the physical substrate DVC virtualises: clusters of
// nodes with CPUs, RAM, disks and hardware clocks, plus fault injection.
//
// The paper's motivation (§1) is that hardware reliability will not
// improve, so software must hide faults. Nodes here fail — crash outright
// or with advance warning ("when hardware faults can be predicted") — and
// everything running on them dies with them.
package phys

import (
	"fmt"
	"sort"

	"dvc/internal/clock"
	"dvc/internal/netsim"
	"dvc/internal/sim"
)

// Spec describes one node's hardware.
type Spec struct {
	// RAMBytes is physical memory; it bounds the RAM of hosted VMs.
	RAMBytes int64
	// DiskBandwidth is the local/staging disk bandwidth in bytes/s,
	// which paces checkpoint image dumps.
	DiskBandwidth float64
	// GFlops is the node's compute rate, used by workloads to convert
	// flop counts into compute time.
	GFlops float64
}

// DefaultSpec matches a 2007-era dual-socket cluster node.
func DefaultSpec() Spec {
	return Spec{
		RAMBytes:      4 << 30,
		DiskBandwidth: 60e6,
		GFlops:        10,
	}
}

// Node is one physical machine.
type Node struct {
	id      string
	cluster string
	spec    Spec
	clk     *clock.Clock
	up      bool
	stack   string

	onCrash  []func()
	onRepair []func()
}

// Stack returns the node's installed software stack label (empty =
// unspecified). Jobs that need a particular stack can only run natively
// on matching nodes — the constraint DVC's per-job virtual clusters
// remove.
func (n *Node) Stack() string { return n.stack }

// ID returns the node's identifier.
func (n *Node) ID() string { return n.id }

// Cluster returns the name of the cluster the node belongs to.
func (n *Node) Cluster() string { return n.cluster }

// Spec returns the node's hardware description.
func (n *Node) Spec() Spec { return n.spec }

// Clock returns the node's hardware clock.
func (n *Node) Clock() *clock.Clock { return n.clk }

// Up reports whether the node is healthy.
func (n *Node) Up() bool { return n.up }

// OnCrash registers a callback invoked when the node fails. The
// hypervisor uses this to kill hosted domains.
func (n *Node) OnCrash(fn func()) { n.onCrash = append(n.onCrash, fn) }

// OnRepair registers a callback invoked when the node comes back.
func (n *Node) OnRepair(fn func()) { n.onRepair = append(n.onRepair, fn) }

// Fail crashes the node: everything it hosts dies.
func (n *Node) Fail() {
	if !n.up {
		return
	}
	n.up = false
	for _, fn := range n.onCrash {
		fn()
	}
}

// Repair brings the node back (empty: whatever it hosted is gone).
func (n *Node) Repair() {
	if n.up {
		return
	}
	n.up = true
	for _, fn := range n.onRepair {
		fn()
	}
}

// Site is a collection of clusters sharing a fabric — the multi-cluster
// environment DVC spans (paper Figure 1).
type Site struct {
	Kernel *sim.Kernel
	Fabric *netsim.Fabric
	NTP    *clock.NTPDaemon

	clusters map[string][]*Node
	order    []string
	nodes    map[string]*Node
	clockCfg clock.Config
}

// NewSite creates a site. The NTP daemon is created but not started;
// experiments choose whether clocks are disciplined (E1 runs without).
func NewSite(k *sim.Kernel, clockCfg clock.Config, ntpCfg clock.NTPConfig) *Site {
	return &Site{
		Kernel:   k,
		Fabric:   netsim.NewFabric(k),
		NTP:      clock.NewNTPDaemon(k, ntpCfg),
		clusters: make(map[string][]*Node),
		nodes:    make(map[string]*Node),
		clockCfg: clockCfg,
	}
}

// DefaultSite builds a site with commodity clocks and LAN NTP.
func DefaultSite(k *sim.Kernel) *Site {
	return NewSite(k, clock.DefaultConfig(), clock.DefaultNTPConfig())
}

// AddCluster creates a cluster of count identical nodes named
// "<name>-nNN", registers its link profile, and returns the nodes.
func (s *Site) AddCluster(name string, count int, spec Spec, profile netsim.LinkProfile) []*Node {
	if _, dup := s.clusters[name]; dup {
		panic(fmt.Sprintf("phys: duplicate cluster %q", name))
	}
	s.Fabric.AddCluster(name, profile)
	nodes := make([]*Node, count)
	for i := range nodes {
		n := &Node{
			id:      fmt.Sprintf("%s-n%02d", name, i),
			cluster: name,
			spec:    spec,
			clk:     clock.New(s.Kernel, s.clockCfg),
			up:      true,
		}
		s.NTP.Add(n.clk)
		nodes[i] = n
		s.nodes[n.id] = n
	}
	s.clusters[name] = nodes
	s.order = append(s.order, name)
	return nodes
}

// Cluster returns the nodes of a cluster.
func (s *Site) Cluster(name string) []*Node { return s.clusters[name] }

// SetClusterStack labels every node of a cluster with a software stack
// (OS image, MPI build, libraries). Physical jobs demand stack equality;
// virtual clusters carry their own stack and do not care.
func (s *Site) SetClusterStack(name, stack string) {
	for _, n := range s.clusters[name] {
		n.stack = stack
	}
}

// ClusterNames returns cluster names in creation order.
func (s *Site) ClusterNames() []string { return append([]string(nil), s.order...) }

// Node finds a node by ID.
func (s *Site) Node(id string) (*Node, bool) {
	n, ok := s.nodes[id]
	return n, ok
}

// Nodes returns every node, sorted by ID.
func (s *Site) Nodes() []*Node {
	ids := make([]string, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Node, len(ids))
	for i, id := range ids {
		out[i] = s.nodes[id]
	}
	return out
}

// UpNodes returns the healthy nodes of a cluster (all clusters if name
// is empty), sorted by ID.
func (s *Site) UpNodes(name string) []*Node {
	var out []*Node
	for _, n := range s.Nodes() {
		if n.up && (name == "" || n.cluster == name) {
			out = append(out, n)
		}
	}
	return out
}
